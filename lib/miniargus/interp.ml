module S = Sched.Scheduler
module CH = Cstream.Chanhub
module P = Core.Promise
module R = Core.Remote
module G = Argus.Guardian
open Tast
open Value

exception Sig_exn of string * Value.t list

exception Return_exn of Value.t

let runtime_failure fmt =
  Format.kasprintf (fun msg -> raise (Sig_exn ("failure", [ Vstr msg ]))) fmt

type process_result = Pok | Pfailed of string

type outcome = {
  output : string list;
  processes : (string * process_result) list;
  finished_at : float;
  deadlocked : string list option;
}

(* One running program. *)
type world = {
  sched : S.t;
  w_echo : bool;
  mutable out : string list;  (* newest first *)
  guardian_addr : (string, Net.address) Hashtbl.t;
  procs : (string, tproc) Hashtbl.t;
}

(* Execution context: which agent performs remote calls (one per
   process; guardians get one for nested calls from handlers). *)
type ictx = {
  world : world;
  agent : Core.Agent.t;
  handles : (string * string, (Value.t list, Value.t, string * Value.t list) R.h) Hashtbl.t;
}

type env = (string * Value.t ref) list

let bind (env : env) name v : env = (name, ref v) :: env

let lookup env name pos =
  match List.assoc_opt name env with
  | Some r -> r
  | None -> runtime_failure "line %d: unbound variable %s (interpreter bug)" pos name

let hsig_of rc : (Value.t list, Value.t, string * Value.t list) Core.Sigs.hsig =
  {
    Core.Sigs.hname = rc.rc_handler;
    arg_c = Value.args_codec rc.rc_sig.hs_params;
    res_c = Value.codec_of_ty rc.rc_sig.hs_ret;
    sig_c = Value.signal_codec rc.rc_sig.hs_sigs;
  }

let handle_for ictx rc =
  match Hashtbl.find_opt ictx.handles (rc.rc_guardian, rc.rc_handler) with
  | Some h -> h
  | None ->
      let dst =
        match Hashtbl.find_opt ictx.world.guardian_addr rc.rc_guardian with
        | Some a -> a
        | None -> runtime_failure "no such guardian %s" rc.rc_guardian
      in
      let h = R.bind ictx.agent ~dst ~gid:rc.rc_group (hsig_of rc) in
      Hashtbl.replace ictx.handles (rc.rc_guardian, rc.rc_handler) h;
      h

(* A handle for a call through a first-class port value: the
   destination comes from the value, the types from the checker. *)
let handle_for_port ictx (p : Value.port_ref) (hs : hsig_t) =
  let key = (Printf.sprintf "@%d/%s" p.Value.vp_addr p.Value.vp_group, p.Value.vp_port) in
  match Hashtbl.find_opt ictx.handles key with
  | Some h -> h
  | None ->
      let hsig : (Value.t list, Value.t, string * Value.t list) Core.Sigs.hsig =
        {
          Core.Sigs.hname = p.Value.vp_port;
          arg_c = Value.args_codec hs.hs_params;
          res_c = Value.codec_of_ty hs.hs_ret;
          sig_c = Value.signal_codec hs.hs_sigs;
        }
      in
      let h = R.bind ictx.agent ~dst:p.Value.vp_addr ~gid:p.Value.vp_group hsig in
      Hashtbl.replace ictx.handles key h;
      h

let port_of_value v =
  match v with
  | Vport p -> p
  | v -> runtime_failure "not a port value: %s" (Value.to_string v)

let outcome_value = function
  | P.Normal v -> v
  | P.Signal (name, payload) -> raise (Sig_exn (name, payload))
  | P.Unavailable reason -> raise (Sig_exn ("unavailable", [ Vstr reason ]))
  | P.Failure reason -> raise (Sig_exn ("failure", [ Vstr reason ]))

(* Immediate failures of the call forms (§3 step 1). *)
let guard_immediate f =
  try f () with
  | P.Unavailable_exn reason -> raise (Sig_exn ("unavailable", [ Vstr reason ]))
  | P.Failure_exn reason -> raise (Sig_exn ("failure", [ Vstr reason ]))

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let rec eval ictx (env : env) (e : texpr) : Value.t =
  let sched = ictx.world.sched in
  match e.tx with
  | Xint i -> Vint i
  | Xreal r -> Vreal r
  | Xstr s -> Vstr s
  | Xbool b -> Vbool b
  | Xvar name -> !(lookup env name e.txpos)
  | Xbinop (op, a, b) -> eval_binop ictx env op a b
  | Xunop (Ast.Neg, a) -> (
      match eval ictx env a with
      | Vint i -> Vint (-i)
      | Vreal r -> Vreal (-.r)
      | v -> runtime_failure "cannot negate %s" (Value.to_string v))
  | Xunop (Ast.Not, a) -> (
      match eval ictx env a with
      | Vbool b -> Vbool (not b)
      | v -> runtime_failure "not on %s" (Value.to_string v))
  | Xarray items -> Varr (Value.vec_of_list (List.map (eval ictx env) items))
  | Xrecord fields -> Vrec (List.map (fun (f, fe) -> (f, ref (eval ictx env fe))) fields)
  | Xindex (a, i) -> (
      match (eval ictx env a, eval ictx env i) with
      | Varr v, Vint idx -> (
          match Value.vec_get v idx with
          | Some x -> x
          | None -> runtime_failure "index %d out of bounds (array of %d)" idx v.len)
      | _ -> runtime_failure "bad index operation")
  | Xfield (r, f) -> (
      match eval ictx env r with
      | Vrec fields -> (
          match List.assoc_opt f fields with
          | Some v -> !v
          | None -> runtime_failure "no field %s" f)
      | v -> runtime_failure "field access on %s" (Value.to_string v))
  | Xbuiltin (name, args) -> eval_builtin ictx env e name args
  | Xcallproc (name, args) ->
      let argv = List.map (eval ictx env) args in
      call_proc ictx name argv
  | Xclaim pe -> (
      match eval ictx env pe with
      | Vpromise p -> outcome_value (P.claim p)
      | v -> runtime_failure "claim on %s" (Value.to_string v))
  | Xready pe -> (
      match eval ictx env pe with
      | Vpromise p -> Vbool (P.ready p)
      | v -> runtime_failure "ready on %s" (Value.to_string v))
  | Xrpc rc ->
      let h = handle_for ictx rc in
      let argv = List.map (eval ictx env) rc.rc_args in
      outcome_value (guard_immediate (fun () -> R.rpc h argv))
  | Xstream rc ->
      let h = handle_for ictx rc in
      let argv = List.map (eval ictx env) rc.rc_args in
      Vpromise (guard_immediate (fun () -> R.stream_call h argv))
  | Xportof rc ->
      let addr =
        match Hashtbl.find_opt ictx.world.guardian_addr rc.rc_guardian with
        | Some a -> a
        | None -> runtime_failure "no such guardian %s" rc.rc_guardian
      in
      Vport { Value.vp_addr = addr; vp_group = rc.rc_group; vp_port = rc.rc_handler }
  | Xrpc_dyn (pe, hs, args) ->
      let p = port_of_value (eval ictx env pe) in
      let h = handle_for_port ictx p hs in
      let argv = List.map (eval ictx env) args in
      outcome_value (guard_immediate (fun () -> R.rpc h argv))
  | Xstream_dyn (pe, hs, args) ->
      let p = port_of_value (eval ictx env pe) in
      let h = handle_for_port ictx p hs in
      let argv = List.map (eval ictx env) args in
      Vpromise (guard_immediate (fun () -> R.stream_call h argv))
  | Xfork (name, args) ->
      let argv = List.map (eval ictx env) args in
      let proc =
        match Hashtbl.find_opt ictx.world.procs name with
        | Some p -> p
        | None -> runtime_failure "no such proc %s" name
      in
      let declared = proc.tp_sigs in
      Vpromise
        (Core.Fork.fork sched ~name:("proc " ^ name) (fun () ->
             match call_proc ictx name argv with
             | v -> Ok v
             | exception Sig_exn (n, payload)
               when List.exists (fun s -> s.Types.sg_name = n) declared ->
                 Error (n, payload)))

and eval_binop ictx env op a b =
  match op with
  | Ast.And -> (
      match eval ictx env a with
      | Vbool false -> Vbool false
      | Vbool true -> eval ictx env b
      | v -> runtime_failure "and on %s" (Value.to_string v))
  | Ast.Or -> (
      match eval ictx env a with
      | Vbool true -> Vbool true
      | Vbool false -> eval ictx env b
      | v -> runtime_failure "or on %s" (Value.to_string v))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Concat | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le
  | Ast.Gt | Ast.Ge -> (
      let va = eval ictx env a in
      let vb = eval ictx env b in
      match (op, va, vb) with
      | Ast.Add, Vint x, Vint y -> Vint (x + y)
      | Ast.Sub, Vint x, Vint y -> Vint (x - y)
      | Ast.Mul, Vint x, Vint y -> Vint (x * y)
      | Ast.Div, Vint _, Vint 0 -> runtime_failure "division by zero"
      | Ast.Div, Vint x, Vint y -> Vint (x / y)
      | Ast.Add, Vreal x, Vreal y -> Vreal (x +. y)
      | Ast.Sub, Vreal x, Vreal y -> Vreal (x -. y)
      | Ast.Mul, Vreal x, Vreal y -> Vreal (x *. y)
      | Ast.Div, Vreal x, Vreal y -> Vreal (x /. y)
      | Ast.Concat, Vstr x, Vstr y -> Vstr (x ^ y)
      | Ast.Eq, x, y -> Vbool (Value.equal x y)
      | Ast.Neq, x, y -> Vbool (not (Value.equal x y))
      | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
      | Ast.Le, Vint x, Vint y -> Vbool (x <= y)
      | Ast.Gt, Vint x, Vint y -> Vbool (x > y)
      | Ast.Ge, Vint x, Vint y -> Vbool (x >= y)
      | Ast.Lt, Vreal x, Vreal y -> Vbool (x < y)
      | Ast.Le, Vreal x, Vreal y -> Vbool (x <= y)
      | Ast.Gt, Vreal x, Vreal y -> Vbool (x > y)
      | Ast.Ge, Vreal x, Vreal y -> Vbool (x >= y)
      | Ast.Lt, Vstr x, Vstr y -> Vbool (x < y)
      | Ast.Le, Vstr x, Vstr y -> Vbool (x <= y)
      | Ast.Gt, Vstr x, Vstr y -> Vbool (x > y)
      | Ast.Ge, Vstr x, Vstr y -> Vbool (x >= y)
      | _, x, _ -> runtime_failure "bad operands (%s)" (Value.to_string x))

and eval_builtin ictx env e name args =
  let sched = ictx.world.sched in
  let argv () = List.map (eval ictx env) args in
  match (name, argv ()) with
  | "len", [ Varr v ] -> Vint v.len
  | "len", [ Vstr s ] -> Vint (String.length s)
  | "addh", [ Varr v; x ] ->
      Value.vec_addh v x;
      Vunit
  | "put_line", [ Vstr s ] ->
      ictx.world.out <- s :: ictx.world.out;
      if ictx.world.w_echo then print_endline s;
      Vunit
  | "int_to_string", [ Vint i ] -> Vstr (string_of_int i)
  | "real_to_string", [ Vreal r ] -> Vstr (Printf.sprintf "%.1f" r)
  | "real", [ Vint i ] -> Vreal (float_of_int i)
  | "floor", [ Vreal r ] -> Vint (int_of_float (Float.floor r))
  | "sleep", [ Vreal r ] ->
      if r > 0.0 then S.sleep sched r;
      Vunit
  | "now", [] -> Vreal (S.now sched)
  | "queue", [] -> Vqueue (Sched.Bqueue.create sched)
  | "enq", [ Vqueue q; x ] ->
      Sched.Bqueue.enq q x;
      Vunit
  | "deq", [ Vqueue q ] -> Sched.Bqueue.deq q
  | _, vs ->
      runtime_failure "line %d: bad builtin %s/%d" e.txpos name (List.length vs)

and call_proc ictx name argv =
  let proc =
    match Hashtbl.find_opt ictx.world.procs name with
    | Some p -> p
    | None -> runtime_failure "no such proc %s" name
  in
  let env = List.fold_left2 (fun env (p, _) v -> bind env p v) [] proc.tp_params argv in
  match exec_stmts ictx env proc.tp_body with
  | (_ : env) -> Vunit (* fell off the end: unit-returning proc *)
  | exception Return_exn v -> v

(* ------------------------------------------------------------------ *)
(* Statement execution. Returns the extended environment so later
   statements in the same block see new variables. *)

and exec_stmts ictx env stmts : env =
  List.fold_left (fun env stmt -> exec_stmt ictx env stmt) env stmts

and exec_block ictx env stmts : unit = ignore (exec_stmts ictx env stmts : env)

and exec_stmt ictx (env : env) (stmt : tstmt) : env =
  let sched = ictx.world.sched in
  match stmt.ts with
  | TSvar (name, init) -> bind env name (eval ictx env init)
  | TSassign (lv, rhs) ->
      let v = eval ictx env rhs in
      (match lv with
      | TLvar name -> lookup env name stmt.tspos := v
      | TLindex (arr, idx) -> (
          match (eval ictx env arr, eval ictx env idx) with
          | Varr vec, Vint i ->
              if not (Value.vec_set vec i v) then
                runtime_failure "index %d out of bounds (array of %d)" i vec.len
          | _ -> runtime_failure "bad indexed assignment")
      | TLfield (r, f) -> (
          match eval ictx env r with
          | Vrec fields -> (
              match List.assoc_opt f fields with
              | Some cell -> cell := v
              | None -> runtime_failure "no field %s" f)
          | v -> runtime_failure "field assignment on %s" (Value.to_string v)));
      env
  | TSexpr e ->
      ignore (eval ictx env e : Value.t);
      env
  | TSif (branches, else_body) ->
      let rec go = function
        | [] -> ( match else_body with Some body -> exec_block ictx env body | None -> ())
        | (cond, body) :: rest -> (
            match eval ictx env cond with
            | Vbool true -> exec_block ictx env body
            | Vbool false -> go rest
            | v -> runtime_failure "if condition %s" (Value.to_string v))
      in
      go branches;
      env
  | TSwhile (cond, body) ->
      let rec loop () =
        match eval ictx env cond with
        | Vbool true ->
            exec_block ictx env body;
            loop ()
        | Vbool false -> ()
        | v -> runtime_failure "while condition %s" (Value.to_string v)
      in
      loop ();
      env
  | TSfor_range (name, first, last, body) ->
      (match (eval ictx env first, eval ictx env last) with
      | Vint lo, Vint hi ->
          for i = lo to hi do
            exec_block ictx (bind env name (Vint i)) body
          done
      | _ -> runtime_failure "bad for-range bounds");
      env
  | TSfor_each (name, arr, body) ->
      (match eval ictx env arr with
      | Varr vec ->
          (* iterate the elements present at loop start, as CLU's
             elements iterator does for a fixed array *)
          let n = vec.len in
          for i = 0 to n - 1 do
            match Value.vec_get vec i with
            | Some x -> exec_block ictx (bind env name x) body
            | None -> ()
          done
      | v -> runtime_failure "for-each over %s" (Value.to_string v));
      env
  | TSreturn None -> raise (Return_exn Vunit)
  | TSreturn (Some e) -> raise (Return_exn (eval ictx env e))
  | TSsignal (name, args) -> raise (Sig_exn (name, List.map (eval ictx env) args))
  | TSsend rc ->
      let h = handle_for ictx rc in
      let argv = List.map (eval ictx env) rc.rc_args in
      guard_immediate (fun () -> R.send h argv);
      env
  | TSsend_dyn (pe, hs, args) ->
      let p = port_of_value (eval ictx env pe) in
      let h = handle_for_port ictx p hs in
      let argv = List.map (eval ictx env) args in
      guard_immediate (fun () -> R.send h argv);
      env
  | TSflush (g, group, handler) ->
      let h = handle_for ictx { rc_guardian = g; rc_group = group; rc_handler = handler;
                                rc_sig = { hs_params = []; hs_ret = Types.Tunit; hs_sigs = [] };
                                rc_args = [] } in
      R.flush h;
      env
  | TSsynch (g, group, handler) ->
      let h = handle_for ictx { rc_guardian = g; rc_group = group; rc_handler = handler;
                                rc_sig = { hs_params = []; hs_ret = Types.Tunit; hs_sigs = [] };
                                rc_args = [] } in
      (match R.synch h with
      | Ok () -> ()
      | Error `Exception_reply -> raise (Sig_exn ("exception_reply", []))
      | Error (`Broken reason) -> raise (Sig_exn ("unavailable", [ Vstr reason ])));
      env
  | TSrestart (g, group, handler) ->
      let h = handle_for ictx { rc_guardian = g; rc_group = group; rc_handler = handler;
                                rc_sig = { hs_params = []; hs_ret = Types.Tunit; hs_sigs = [] };
                                rc_args = [] } in
      Cstream.Stream_end.restart (R.stream h);
      env
  | TScoenter arms ->
      Core.Coenter.coenter sched (List.map (fun arm () -> exec_block ictx env arm) arms);
      env
  | TSbegin body ->
      exec_block ictx env body;
      env
  | TSexcept (inner, arms) ->
      (try ignore (exec_stmt ictx env inner : env)
       with Sig_exn (name, payload) ->
         let rec dispatch = function
           | [] -> raise (Sig_exn (name, payload))
           | arm :: rest -> (
               match arm.ta_pat with
               | Ast.Aname n when n = name ->
                   let arm_env =
                     List.fold_left2
                       (fun env (p, _) v -> bind env p v)
                       env arm.ta_params payload
                   in
                   exec_block ictx arm_env arm.ta_body
               | Ast.Aname _ -> dispatch rest
               | Ast.Aothers ->
                   let description =
                     match payload with
                     | [ Vstr reason ] -> Printf.sprintf "%s: %s" name reason
                     | _ -> name
                   in
                   let arm_env =
                     match arm.ta_params with
                     | [ (p, _) ] -> bind env p (Vstr description)
                     | _ -> env
                   in
                   exec_block ictx arm_env arm.ta_body)
         in
         dispatch arms);
      env

(* Caveat: handle_for is called with a synthetic rcall for flush/synch;
   it only uses guardian/group/handler when the handle is cached, which
   it is after any real call. If flush precedes any call we still bind
   correctly because the handler name and group are accurate; only the
   codecs are dummies, and flush/synch never encode. *)

(* ------------------------------------------------------------------ *)
(* Program instantiation *)

let run_program ?(config = Net.default_config) ?chan_config ?(seed = 42) ?(echo = false)
    ?(until = 300.0) ?(crashes = []) ?(recoveries = []) (prog : tprogram) : outcome =
  let sched = S.create ~seed () in
  let net : CH.frame Net.t = Net.create sched config in
  let world =
    {
      sched;
      w_echo = echo;
      out = [];
      guardian_addr = Hashtbl.create 8;
      procs = Hashtbl.create 8;
    }
  in
  List.iter (fun p -> Hashtbl.replace world.procs p.tp_name p) prog.prog_procs;
  (* Create nodes and hubs. *)
  let guardian_hubs =
    List.map
      (fun tg ->
        let node = Net.add_node net ~name:tg.tg_name in
        Hashtbl.replace world.guardian_addr tg.tg_name (Net.address node);
        (tg, CH.create_hub ~net:(net, node) ()))
      prog.prog_guardians
  in
  let process_hubs =
    List.map
      (fun tpr ->
        let node = Net.add_node net ~name:tpr.tpr_name in
        (tpr, CH.create_hub ~net:(net, node) ()))
      prog.prog_processes
  in
  (* Fault injection: crash / recover guardian nodes at given times. *)
  let with_guardian_node gname f =
    match Hashtbl.find_opt world.guardian_addr gname with
    | Some addr -> (
        match Net.find_node net addr with Some node -> f node | None -> ())
    | None -> ()
  in
  List.iter
    (fun (gname, at_time) ->
      S.at sched at_time (fun () -> with_guardian_node gname (Net.crash net)))
    crashes;
  List.iter
    (fun (gname, at_time) ->
      S.at sched at_time (fun () -> with_guardian_node gname (Net.recover net)))
    recoveries;
  let results : (string * process_result) list ref = ref [] in
  let finished_at = ref 0.0 in
  (* Boot fiber: instantiate guardians, then start processes. *)
  ignore
    (S.spawn sched ~name:"boot" (fun () ->
         List.iter
           (fun (tg, hub) ->
             let g = G.create hub ~name:tg.tg_name in
             let gagent =
               Core.Agent.create hub ~name:(tg.tg_name ^ "-agent") ?config:chan_config ()
             in
             let gictx = { world; agent = gagent; handles = Hashtbl.create 8 } in
             (* guardian variables: shared mutable state of its handlers *)
             let genv =
               List.fold_left
                 (fun env (name, _, init) -> bind env name (eval gictx env init))
                 [] tg.tg_vars
             in
             List.iter
               (fun (group, handlers) ->
                 List.iter
                   (fun th ->
                     let hs : (Value.t list, Value.t, string * Value.t list) Core.Sigs.hsig =
                       {
                         Core.Sigs.hname = th.th_name;
                         arg_c = Value.args_codec (List.map snd th.th_params);
                         res_c = Value.codec_of_ty th.th_ret;
                         sig_c = Value.signal_codec th.th_sigs;
                       }
                     in
                     G.register g ~group hs (fun _ctx argv ->
                         let env =
                           List.fold_left2
                             (fun env (p, _) v -> bind env p v)
                             genv th.th_params argv
                         in
                         match exec_stmts gictx env th.th_body with
                         | (_ : env) -> Ok Vunit
                         | exception Return_exn v -> Ok v
                         | exception Sig_exn (n, payload)
                           when List.exists (fun s -> s.Types.sg_name = n) th.th_sigs ->
                             Error (n, payload)
                         | exception Sig_exn (n, payload) ->
                             (* universal or undeclared: becomes failure
                                at the guardian boundary *)
                             let reason =
                               match payload with
                               | [ Vstr r ] -> Printf.sprintf "%s: %s" n r
                               | _ -> n
                             in
                             raise (Failure reason)))
                   handlers)
               tg.tg_groups)
           guardian_hubs;
         (* Processes start only after every guardian is up. *)
         List.iter
           (fun (tpr, hub) ->
             let agent =
               Core.Agent.create hub ~name:(tpr.tpr_name ^ "-agent") ?config:chan_config ()
             in
             let ictx = { world; agent; handles = Hashtbl.create 8 } in
             ignore
               (S.spawn sched ~name:tpr.tpr_name (fun () ->
                    let result =
                      match exec_block ictx [] tpr.tpr_body with
                      | () -> Pok
                      | exception Return_exn _ -> Pok
                      | exception Sig_exn (n, payload) ->
                          let detail =
                            match payload with
                            | [ Vstr r ] -> Printf.sprintf "%s(%s)" n r
                            | [] -> n
                            | vs ->
                                Printf.sprintf "%s(%s)" n
                                  (String.concat ", " (List.map Value.to_string vs))
                          in
                          Pfailed ("uncaught signal " ^ detail)
                      | exception S.Terminated -> Pfailed "terminated"
                      | exception e -> Pfailed ("internal error: " ^ Printexc.to_string e)
                    in
                    results := (tpr.tpr_name, result) :: !results;
                    if S.now sched > !finished_at then finished_at := S.now sched)
                 : S.fiber))
           process_hubs));
  let deadlocked =
    match S.run ~until sched with
    | S.Completed -> None
    | S.Deadlocked fibers -> Some (List.sort compare (List.map S.fiber_name fibers))
    | S.Time_limit -> Some [ "<time limit reached>" ]
  in
  {
    output = List.rev world.out;
    processes = List.rev !results;
    finished_at = !finished_at;
    deadlocked;
  }
