(** External data representation for remote calls.

    Arguments and results of handler calls are passed by value (§3 of
    the paper, citing Herlihy & Liskov): the caller {e encodes} each
    argument into an external representation and the receiver {e
    decodes} it, possibly with user-provided code that may fail. This
    module provides the external value model, typed codecs built from
    combinators, a deterministic byte-size model (used by the network
    cost model), and hooks to inject encode/decode failures (the paper
    maps them to the [failure] exception and a receiver-side stream
    break).

    The wire itself is untyped ([value]); static typing is recovered at
    the language boundary by pairing each port with codecs — this is
    precisely the paper's split between the language-independent
    call-stream layer and the strongly typed language veneer. *)

(** A promise reference: a transmissible placeholder for the result of
    an earlier call that may not have completed yet (promise
    pipelining, see docs/PIPELINE.md). [ps_stream] is the producing
    stream's incarnation-independent identity, [ps_call] its stable
    call-id on that stream, and [ps_field] optionally selects one named
    field of a [Record] result instead of the whole value. *)
type promise_ref = { ps_stream : string; ps_call : int; ps_field : string option }

(** The external representation of transmissible values. *)
type value =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Pair of value * value
  | List of value list
  | Record of (string * value) list
  | Tagged of string * value  (** variant constructor with payload *)
  | Pref of promise_ref
      (** reference to a not-yet-claimed result of an earlier call; the
          receiver substitutes the produced value before executing *)

val wire_size : value -> int
(** Deterministic size in bytes of the encoded form. Ints and reals
    cost 8 bytes, bools 1, strings [4 + length], containers add small
    headers. Used to charge transmission costs in the simulator. *)

val pp_value : Format.formatter -> value -> unit

val equal_value : value -> value -> bool
(** Structural equality. Unlike polymorphic [=], two [Real] payloads
    that are both NaN compare equal — a decoded copy of a value must
    equal the original even when it carries NaN (dedup-cache replay
    comparison depends on this). *)

(** A typed codec between ['a] and {!value}. Encoding and decoding can
    fail (user-provided translation code may contain errors); failures
    carry a human-readable reason. *)
type 'a codec = {
  type_name : string;
  encode : 'a -> (value, string) result;
  decode : value -> ('a, string) result;
}

val encode : 'a codec -> 'a -> (value, string) result

val decode : 'a codec -> value -> ('a, string) result

(** {1 Primitive codecs} *)

val unit : unit codec

val bool : bool codec

val int : int codec

val real : float codec

val string : string codec

(** {1 Combinators} *)

val pair : 'a codec -> 'b codec -> ('a * 'b) codec

val triple : 'a codec -> 'b codec -> 'c codec -> ('a * 'b * 'c) codec

val list : 'a codec -> 'a list codec

val array : 'a codec -> 'a array codec

val option : 'a codec -> 'a option codec

val result : 'a codec -> 'b codec -> ('a, 'b) Result.t codec

val record2 : string -> (string * 'a codec) -> (string * 'b codec) -> ('a * 'b) codec
(** [record2 name (f1, c1) (f2, c2)] encodes a two-field record with
    named fields; decoding checks field names. *)

val record3 :
  string -> (string * 'a codec) -> (string * 'b codec) -> (string * 'c codec) ->
  ('a * 'b * 'c) codec

val tagged : string -> ('a -> string * value) -> (string * value -> ('a, string) result) -> 'a codec
(** Build a codec for a variant type from explicit tag functions. *)

val conv : string -> ('a -> 'b) -> ('b -> 'a) -> 'b codec -> 'a codec
(** [conv name f g c] maps a codec through a bijection (total). *)

val conv_partial :
  string -> ('a -> ('b, string) result) -> ('b -> ('a, string) result) -> 'b codec -> 'a codec
(** Like {!conv} but either direction may fail — the model for
    user-provided abstract-type translation code (§3). *)

(** {1 Failure injection}

    Used by tests and experiment E6-style scenarios to model buggy
    user translation code. *)

val failing_encode : ?reason:string -> every:int -> 'a codec -> 'a codec
(** Derived codec whose encode fails on every [every]-th use (1-based
    counting; [every = 1] always fails). *)

val failing_decode : ?reason:string -> every:int -> 'a codec -> 'a codec

(** {1 Sizing} *)

val encoded_size : 'a codec -> 'a -> int
(** [encoded_size c v] is the wire size of [v]'s encoding, or 0 when
    encoding fails. *)

(** {1 Binary wire codec}

    Compact binary serialization of {!value}: single-byte tags,
    varint-encoded ints and lengths, and a per-encoder interned string
    table so repeated record-field names and port names cost a one-byte
    reference after first use. See docs/WIRE.md for the format. Unlike
    {!wire_size} (the symbolic cost model, kept for backward-compatible
    experiments), [Bin.size] is the byte count actually shipped. *)
module Bin : sig
  val version : int
  (** Format version stamped as the first byte of every packet frame. *)

  (** {2 Encoding} *)

  type encoder
  (** A reusable encode buffer plus string-intern table. *)

  val create_encoder : unit -> encoder

  val reset : encoder -> unit
  (** Clear buffer and intern table for reuse. *)

  val length : encoder -> int

  val contents : encoder -> string

  val add_byte : encoder -> int -> unit

  val add_uvarint : encoder -> int -> unit
  (** LEB128. Negative ints (e.g. zigzag of [min_int]) are emitted as
      their 63-bit two's-complement pattern in at most 9 bytes. *)

  val add_varint : encoder -> int -> unit
  (** Zigzag-mapped signed varint. *)

  val add_string : encoder -> string -> unit
  (** Interned string reference: first occurrence is emitted inline and
      added to the table, later occurrences are a 1–2 byte reference. *)

  val add_raw_string : encoder -> string -> unit
  (** Length-prefixed bytes, never interned. *)

  val add_value : encoder -> value -> unit

  val with_encoder : (encoder -> 'a) -> 'a
  (** Run with a pooled encoder (reset before use, returned to the pool
      after). Do not retain the encoder past the callback. *)

  val to_string : value -> string
  (** One-shot encode using the pool. *)

  val size : value -> int
  (** Actual encoded byte count (dictionary-off / v1 semantics),
      computed by a counting-only mirror of the encoder — no buffer is
      filled and nothing is allocated beyond a pooled intern table.
      Always equals [String.length (to_string v)]. *)

  (** {2 Connection dictionary}

      A sender-owned string table that persists across the frames of
      one connection. Strings recurring across frames are promoted
      (dict-define on second sighting) and thereafter cost a 2–3 byte
      shared-slot reference. Attaching a dictionary switches the
      encoder to the v2 string-marker scheme — both ends must agree,
      which {!Cstream.Chanhub} negotiates per connection. [reset_dict]
      bumps the epoch (sent in every v2 frame header) so receivers
      discard stale state after an incarnation change. *)

  type dict

  val create_dict : ?cap:int -> unit -> dict
  (** [cap] bounds the number of promoted entries (default 1024). *)

  val reset_dict : dict -> unit
  (** Forget all promotions and bump the epoch. *)

  val dict_epoch : dict -> int

  val dict_size : dict -> int
  (** Currently promoted entry count. *)

  val dict_defines : dict -> int
  (** Lifetime promotion count (across resets). *)

  val dict_refs : dict -> int
  (** Lifetime shared-slot reference count (across resets). *)

  val use_dict : encoder -> dict -> unit
  (** Attach for the current frame. [reset] (and hence
      {!with_encoder}) detaches, so a pooled encoder never leaks a
      dictionary into an unrelated frame. *)

  type dict_table
  (** Receiver half: an append-only table fed by dict-defines. Keep one
      per (peer, epoch); on an epoch change, swap in a fresh table —
      never clear in place, so views over old frames stay valid. *)

  val create_dict_table : unit -> dict_table

  val dict_table_size : dict_table -> int

  (** {2 Decoding}

      Decoders never raise on malformed input: every [read_*] returns a
      [result], with bounds-checked reads, a varint length cap, string
      table range checks and a nesting-depth limit. *)

  type decoder

  val decoder : string -> decoder

  val pos : decoder -> int

  val remaining : decoder -> int

  val read_byte : decoder -> (int, string) result

  val read_uvarint : decoder -> (int, string) result

  val read_varint : decoder -> (int, string) result

  val use_dict_table : decoder -> dict_table -> unit
  (** Switch this decoder to the v2 string-marker scheme, resolving and
      feeding the given connection table. Must mirror the sender's
      {!use_dict} decision frame-for-frame. *)

  val read_string : decoder -> (string, string) result
  (** Interned reference (shares the decoder's growing table). *)

  val read_raw_string : decoder -> (string, string) result

  val read_value : decoder -> (value, string) result

  val expect_end : decoder -> (unit, string) result

  val of_string : string -> (value, string) result
  (** Decode exactly one value; trailing bytes are an error. *)
end

(** {1 Lazy frame views}

    Zero-copy read path over {!Bin}-encoded bytes. {!View.read} scans
    one value — full structural validation, cursor left after it — but
    allocates no value tree; the result is a slice that can be
    navigated (pair/list/record/tagged sub-views, one-field
    projection) or materialised into a {!value} only where a consumer
    actually needs the data. Envelope parsing, routing and
    [pipe_field] projection touch a few bytes of a large frame instead
    of decoding all of it.

    Views borrow their frame's buffer and mutable intern tables: they
    are cheap, but not safe to share across domains — call
    {!View.materialize} before handing data to a worker pool. *)
module View : sig
  type t

  type shape =
    | Vunit
    | Vbool
    | Vint
    | Vreal
    | Vstr
    | Vpair
    | Vlist
    | Vrecord
    | Vtagged
    | Vpref

  val read : Bin.decoder -> (t, string) result
  (** Scan and validate one value where the cursor stands; on success
      the cursor is past it and the slice is captured. Works with or
      without a connection dictionary attached to the decoder. *)

  val of_string : string -> (t, string) result
  (** View over a standalone encoding (trailing bytes are an error). *)

  val byte_length : t -> int
  (** Encoded size of the slice in bytes. *)

  val snapshot : t -> t
  (** A view safe to hand to another domain (docs/DOMAINS.md): the
      mutable intern and dictionary tables are copied as they stand, so
      later traffic on the connection cannot race a worker's
      projections. The frame bytes and table strings are shared —
      both are immutable — so the cost is two array copies. *)

  val shape : t -> shape
  (** Top-level constructor, from the head tag byte alone. *)

  val materialize : t -> (value, string) result
  (** Decode the whole slice into a tree. A scan-validated slice only
      fails here if the process memory was corrupted — treat [Error]
      as a bug, not as input garbage. *)

  val as_int : t -> (int, string) result

  val as_string : t -> (string, string) result

  val pair_parts : t -> (t * t, string) result

  val list_items : t -> (t list, string) result

  val list_item : t -> int -> (t option, string) result
  (** One-item projection: items before index [i] are skipped by
      structure, items after it never scanned. [Ok None] when the list
      is shorter than [i + 1]. *)

  val record_fields : t -> ((string * t) list, string) result

  val record_field : t -> string -> (t option, string) result
  (** One-field projection: earlier fields are skipped by structure,
      later fields never scanned. [Ok None] when the field is absent. *)

  val tagged_parts : t -> (string * t, string) result

  val has_prefs : t -> bool
  (** Whether the slice contains any {!Pref}. A byte-level pre-filter
      makes the common pref-free case O(memchr). *)
end
