type promise_ref = { ps_stream : string; ps_call : int; ps_field : string option }

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Pair of value * value
  | List of value list
  | Record of (string * value) list
  | Tagged of string * value
  | Pref of promise_ref

let rec wire_size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Real _ -> 8
  | Str s -> 4 + String.length s
  | Pair (a, b) -> 1 + wire_size a + wire_size b
  | List vs -> 4 + List.fold_left (fun acc v -> acc + wire_size v) 0 vs
  | Record fields ->
      4 + List.fold_left (fun acc (name, v) -> acc + String.length name + 1 + wire_size v) 0 fields
  | Tagged (tag, v) -> 1 + String.length tag + wire_size v
  | Pref r ->
      1 + String.length r.ps_stream + 8
      + (match r.ps_field with Some f -> 1 + String.length f | None -> 1)

let rec pp_value ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp_value a pp_value b
  | List vs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_value)
        vs
  | Record fields ->
      let pp_field ppf (name, v) = Format.fprintf ppf "%s = %a" name pp_value v in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_field)
        fields
  | Tagged (tag, v) -> Format.fprintf ppf "%s(%a)" tag pp_value v
  | Pref { ps_stream; ps_call; ps_field } ->
      Format.fprintf ppf "pref(%s#%d%s)" ps_stream ps_call
        (match ps_field with Some f -> "." ^ f | None -> "")

(* Structural equality with explicit float handling: polymorphic [=]
   follows IEEE semantics where [nan <> nan], so a [Real nan] payload
   would compare unequal to its own decoded copy and defeat dedup-cache
   replay comparison. Two reals are equal when IEEE-equal (which
   identifies -0. and +0.) or both NaN. *)
let rec equal_value (a : value) (b : value) =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> String.equal x y
  | Pair (a1, a2), Pair (b1, b2) -> equal_value a1 b1 && equal_value a2 b2
  | List xs, List ys -> List.equal equal_value xs ys
  | Record xs, Record ys ->
      List.equal
        (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal_value vx vy)
        xs ys
  | Tagged (tx, vx), Tagged (ty, vy) -> String.equal tx ty && equal_value vx vy
  | Pref x, Pref y ->
      String.equal x.ps_stream y.ps_stream && x.ps_call = y.ps_call
      && Option.equal String.equal x.ps_field y.ps_field
  | (Unit | Bool _ | Int _ | Real _ | Str _ | Pair _ | List _ | Record _ | Tagged _ | Pref _), _
    ->
      false

type 'a codec = {
  type_name : string;
  encode : 'a -> (value, string) result;
  decode : value -> ('a, string) result;
}

let encode c v = c.encode v

let decode c v = c.decode v

let type_error expected got =
  Error (Format.asprintf "expected %s, got %a" expected pp_value got)

let unit =
  {
    type_name = "unit";
    encode = (fun () -> Ok Unit);
    decode = (function Unit -> Ok () | v -> type_error "unit" v);
  }

let bool =
  {
    type_name = "bool";
    encode = (fun b -> Ok (Bool b));
    decode = (function Bool b -> Ok b | v -> type_error "bool" v);
  }

let int =
  {
    type_name = "int";
    encode = (fun i -> Ok (Int i));
    decode = (function Int i -> Ok i | v -> type_error "int" v);
  }

let real =
  {
    type_name = "real";
    encode = (fun r -> Ok (Real r));
    decode = (function Real r -> Ok r | v -> type_error "real" v);
  }

let string =
  {
    type_name = "string";
    encode = (fun s -> Ok (Str s));
    decode = (function Str s -> Ok s | v -> type_error "string" v);
  }

let ( let* ) = Result.bind

let pair ca cb =
  {
    type_name = Printf.sprintf "(%s * %s)" ca.type_name cb.type_name;
    encode =
      (fun (a, b) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        Ok (Pair (va, vb)));
    decode =
      (fun v ->
        match v with
        | Pair (va, vb) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            Ok (a, b)
        | v -> type_error "pair" v);
  }

let triple ca cb cc =
  {
    type_name = Printf.sprintf "(%s * %s * %s)" ca.type_name cb.type_name cc.type_name;
    encode =
      (fun (a, b, c) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        let* vc = cc.encode c in
        Ok (Pair (va, Pair (vb, vc))));
    decode =
      (fun v ->
        match v with
        | Pair (va, Pair (vb, vc)) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            let* c = cc.decode vc in
            Ok (a, b, c)
        | v -> type_error "triple" v);
  }

let list ca =
  {
    type_name = Printf.sprintf "%s list" ca.type_name;
    encode =
      (fun items ->
        let rec go acc = function
          | [] -> Ok (List (List.rev acc))
          | x :: rest -> (
              match ca.encode x with Ok v -> go (v :: acc) rest | Error e -> Error e)
        in
        go [] items);
    decode =
      (fun v ->
        match v with
        | List vs ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest -> (
                  match ca.decode x with Ok d -> go (d :: acc) rest | Error e -> Error e)
            in
            go [] vs
        | v -> type_error "list" v);
  }

let array ca =
  let cl = list ca in
  {
    type_name = Printf.sprintf "%s array" ca.type_name;
    encode = (fun arr -> cl.encode (Array.to_list arr));
    decode = (fun v -> Result.map Array.of_list (cl.decode v));
  }

let option ca =
  {
    type_name = Printf.sprintf "%s option" ca.type_name;
    encode =
      (function
      | None -> Ok (Tagged ("none", Unit))
      | Some x ->
          let* v = ca.encode x in
          Ok (Tagged ("some", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("none", Unit) -> Ok None
        | Tagged ("some", inner) -> Result.map Option.some (ca.decode inner)
        | v -> type_error "option" v);
  }

let result ca cb =
  {
    type_name = Printf.sprintf "(%s, %s) result" ca.type_name cb.type_name;
    encode =
      (function
      | Ok x ->
          let* v = ca.encode x in
          Ok (Tagged ("ok", v))
      | Error e ->
          let* v = cb.encode e in
          Ok (Tagged ("error", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("ok", inner) -> Result.map Result.ok (ca.decode inner)
        | Tagged ("error", inner) -> Result.map Result.error (cb.decode inner)
        | v -> type_error "result" v);
  }

let record2 name (f1, c1) (f2, c2) =
  {
    type_name = name;
    encode =
      (fun (a, b) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        Ok (Record [ (f1, va); (f2, vb) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb) ] when g1 = f1 && g2 = f2 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            Ok (a, b)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let record3 name (f1, c1) (f2, c2) (f3, c3) =
  {
    type_name = name;
    encode =
      (fun (a, b, c) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        let* vc = c3.encode c in
        Ok (Record [ (f1, va); (f2, vb); (f3, vc) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb); (g3, vc) ] when g1 = f1 && g2 = f2 && g3 = f3 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            let* c = c3.decode vc in
            Ok (a, b, c)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let tagged name to_tag of_tag =
  {
    type_name = name;
    encode =
      (fun x ->
        let tag, payload = to_tag x in
        Ok (Tagged (tag, payload)));
    decode =
      (fun v ->
        match v with Tagged (tag, payload) -> of_tag (tag, payload) | v -> type_error name v);
  }

let conv name f g c =
  {
    type_name = name;
    encode = (fun x -> c.encode (f x));
    decode = (fun v -> Result.map g (c.decode v));
  }

let conv_partial name f g c =
  {
    type_name = name;
    encode =
      (fun x ->
        let* y = f x in
        c.encode y);
    decode =
      (fun v ->
        let* y = c.decode v in
        g y);
  }

let failing_encode ?(reason = "injected encode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_encode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?enc";
    encode =
      (fun x ->
        incr count;
        if !count mod every = 0 then Error reason else c.encode x);
  }

let failing_decode ?(reason = "injected decode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_decode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?dec";
    decode =
      (fun v ->
        incr count;
        if !count mod every = 0 then Error reason else c.decode v);
  }

let encoded_size c v = match c.encode v with Ok enc -> wire_size enc | Error _ -> 0

(* ------------------------------------------------------------------ *)
(* Binary wire codec *)

module Bin = struct
  let version = 1

  (* Strings up to this length go through the per-encoder intern table,
     so a port name repeated across the calls of one batched packet is
     transmitted once and referenced afterwards. Longer strings are
     payload, not vocabulary: they are emitted inline. *)
  let intern_max = 64

  (* value tags (one byte each) *)
  let t_unit = 0x00
  and t_false = 0x01
  and t_true = 0x02
  and t_int = 0x03
  and t_real = 0x04
  and t_str_ref = 0x05
  and t_str_inline = 0x06
  and t_pair = 0x07
  and t_list = 0x08
  and t_record = 0x09
  and t_tagged = 0x0A
  and t_pref = 0x0B

  (* Decode refuses nesting deeper than this rather than risking a
     stack overflow on adversarial input. *)
  let max_depth = 1024

  (* --- encoder ---------------------------------------------------- *)

  type encoder = {
    e_buf : Buffer.t;
    e_strings : (string, int) Hashtbl.t;  (* interned string -> slot *)
    mutable e_next : int;  (* next intern slot *)
  }

  let create_encoder () =
    { e_buf = Buffer.create 256; e_strings = Hashtbl.create 16; e_next = 0 }

  let reset e =
    Buffer.clear e.e_buf;
    Hashtbl.reset e.e_strings;
    e.e_next <- 0

  let length e = Buffer.length e.e_buf

  let contents e = Buffer.contents e.e_buf

  let add_byte e n = Buffer.add_char e.e_buf (Char.unsafe_chr (n land 0xff))

  (* LEB128; the first iteration may see a negative int (all-ones
     pattern from zigzag of min_int) — [lsr] then makes it positive, so
     the loop terminates in at most 9 bytes for a 63-bit int. *)
  let add_uvarint e n =
    let rec go n =
      if n land lnot 0x7f = 0 then Buffer.add_char e.e_buf (Char.unsafe_chr n)
      else begin
        Buffer.add_char e.e_buf (Char.unsafe_chr (n land 0x7f lor 0x80));
        go (n lsr 7)
      end
    in
    go n

  let zigzag n = (n lsl 1) lxor (n asr 62)

  let unzigzag z = (z lsr 1) lxor (-(z land 1))

  let add_varint e n = add_uvarint e (zigzag n)

  let add_raw_string e s =
    add_uvarint e (String.length s);
    Buffer.add_string e.e_buf s

  (* String reference: [0] introduces a new intern-table entry inline,
     [k > 0] references entry [k-1] — single-pass for both sides. *)
  let add_string e s =
    match Hashtbl.find_opt e.e_strings s with
    | Some slot -> add_uvarint e (slot + 1)
    | None ->
        Hashtbl.add e.e_strings s e.e_next;
        e.e_next <- e.e_next + 1;
        add_byte e 0;
        add_raw_string e s

  let rec add_value e v =
    match v with
    | Unit -> add_byte e t_unit
    | Bool false -> add_byte e t_false
    | Bool true -> add_byte e t_true
    | Int i ->
        add_byte e t_int;
        add_varint e i
    | Real r ->
        add_byte e t_real;
        Buffer.add_int64_le e.e_buf (Int64.bits_of_float r)
    | Str s when String.length s <= intern_max ->
        add_byte e t_str_ref;
        add_string e s
    | Str s ->
        add_byte e t_str_inline;
        add_raw_string e s
    | Pair (a, b) ->
        add_byte e t_pair;
        add_value e a;
        add_value e b
    | List vs ->
        add_byte e t_list;
        add_uvarint e (List.length vs);
        List.iter (add_value e) vs
    | Record fields ->
        add_byte e t_record;
        add_uvarint e (List.length fields);
        List.iter
          (fun (name, v) ->
            add_string e name;
            add_value e v)
          fields
    | Tagged (tag, v) ->
        add_byte e t_tagged;
        add_string e tag;
        add_value e v
    | Pref { ps_stream; ps_call; ps_field } ->
        add_byte e t_pref;
        add_string e ps_stream;
        add_varint e ps_call;
        (match ps_field with
        | None -> add_byte e 0
        | Some f ->
            add_byte e 1;
            add_string e f)

  (* Encoder pool: hot paths (one encode per packet) reuse buffers and
     intern tables instead of reallocating. *)
  let pool : encoder list ref = ref []

  let pool_cap = 8

  let with_encoder f =
    let e =
      match !pool with
      | e :: rest ->
          pool := rest;
          reset e;
          e
      | [] -> create_encoder ()
    in
    Fun.protect
      ~finally:(fun () ->
        if List.compare_length_with !pool pool_cap < 0 then pool := e :: !pool)
      (fun () -> f e)

  let to_string v =
    with_encoder (fun e ->
        add_value e v;
        contents e)

  let size v =
    with_encoder (fun e ->
        add_value e v;
        length e)

  (* --- decoder ---------------------------------------------------- *)

  exception Bad of string
  (* internal only: every public read catches it and returns [Error] *)

  type decoder = {
    d_src : string;
    mutable d_pos : int;
    mutable d_table : string array;
    mutable d_count : int;
  }

  let decoder s = { d_src = s; d_pos = 0; d_table = [||]; d_count = 0 }

  let pos d = d.d_pos

  let remaining d = String.length d.d_src - d.d_pos

  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  let u8 d =
    if d.d_pos >= String.length d.d_src then bad "truncated input at byte %d" d.d_pos;
    let c = Char.code (String.unsafe_get d.d_src d.d_pos) in
    d.d_pos <- d.d_pos + 1;
    c

  let uvarint_exn d =
    let rec go shift acc =
      if shift > 56 then bad "varint longer than 9 bytes at %d" d.d_pos;
      let b = u8 d in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let raw_string_exn d =
    let len = uvarint_exn d in
    if len < 0 || len > remaining d then
      bad "string of %d bytes overruns input (%d left)" len (remaining d);
    let s = String.sub d.d_src d.d_pos len in
    d.d_pos <- d.d_pos + len;
    s

  let push_interned d s =
    if d.d_count >= Array.length d.d_table then begin
      let cap = max 8 (2 * Array.length d.d_table) in
      let bigger = Array.make cap "" in
      Array.blit d.d_table 0 bigger 0 d.d_count;
      d.d_table <- bigger
    end;
    d.d_table.(d.d_count) <- s;
    d.d_count <- d.d_count + 1

  let string_exn d =
    let n = uvarint_exn d in
    if n = 0 then begin
      let s = raw_string_exn d in
      push_interned d s;
      s
    end
    else if n - 1 < d.d_count then d.d_table.(n - 1)
    else bad "string ref %d out of table range (%d entries)" n d.d_count

  let real_exn d =
    if remaining d < 8 then bad "truncated real at byte %d" d.d_pos;
    let bits = String.get_int64_le d.d_src d.d_pos in
    d.d_pos <- d.d_pos + 8;
    Int64.float_of_bits bits

  let rec value_exn d depth =
    if depth > max_depth then bad "nesting deeper than %d" max_depth;
    let tag = u8 d in
    if tag = t_unit then Unit
    else if tag = t_false then Bool false
    else if tag = t_true then Bool true
    else if tag = t_int then Int (unzigzag (uvarint_exn d))
    else if tag = t_real then Real (real_exn d)
    else if tag = t_str_ref then Str (string_exn d)
    else if tag = t_str_inline then Str (raw_string_exn d)
    else if tag = t_pair then begin
      let a = value_exn d (depth + 1) in
      let b = value_exn d (depth + 1) in
      Pair (a, b)
    end
    else if tag = t_list then begin
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "list of %d elements overruns input" n;
      let rec go k acc =
        if k = 0 then List.rev acc else go (k - 1) (value_exn d (depth + 1) :: acc)
      in
      List (go n [])
    end
    else if tag = t_record then begin
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "record of %d fields overruns input" n;
      let rec go k acc =
        if k = 0 then List.rev acc
        else begin
          let name = string_exn d in
          let v = value_exn d (depth + 1) in
          go (k - 1) ((name, v) :: acc)
        end
      in
      Record (go n [])
    end
    else if tag = t_tagged then begin
      let tag_name = string_exn d in
      let v = value_exn d (depth + 1) in
      Tagged (tag_name, v)
    end
    else if tag = t_pref then begin
      let ps_stream = string_exn d in
      let ps_call = unzigzag (uvarint_exn d) in
      let ps_field =
        match u8 d with
        | 0 -> None
        | 1 -> Some (string_exn d)
        | b -> bad "bad promise-ref field marker 0x%02x at byte %d" b (d.d_pos - 1)
      in
      Pref { ps_stream; ps_call; ps_field }
    end
    else bad "unknown value tag 0x%02x at byte %d" tag (d.d_pos - 1)

  let wrap f d = match f d with v -> Ok v | exception Bad m -> Error m

  let read_byte d = wrap u8 d

  let read_uvarint d = wrap uvarint_exn d

  let read_varint d = wrap (fun d -> unzigzag (uvarint_exn d)) d

  let read_string d = wrap string_exn d

  let read_raw_string d = wrap raw_string_exn d

  let read_value d = wrap (fun d -> value_exn d 0) d

  let expect_end d =
    if remaining d = 0 then Ok ()
    else Error (Printf.sprintf "%d trailing bytes after value" (remaining d))

  let of_string s =
    let d = decoder s in
    match read_value d with
    | Error _ as e -> e
    | Ok v -> ( match expect_end d with Ok () -> Ok v | Error m -> Error m)
end
