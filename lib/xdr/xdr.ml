type promise_ref = { ps_stream : string; ps_call : int; ps_field : string option }

type value =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Pair of value * value
  | List of value list
  | Record of (string * value) list
  | Tagged of string * value
  | Pref of promise_ref

let rec wire_size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Real _ -> 8
  | Str s -> 4 + String.length s
  | Pair (a, b) -> 1 + wire_size a + wire_size b
  | List vs -> 4 + List.fold_left (fun acc v -> acc + wire_size v) 0 vs
  | Record fields ->
      4 + List.fold_left (fun acc (name, v) -> acc + String.length name + 1 + wire_size v) 0 fields
  | Tagged (tag, v) -> 1 + String.length tag + wire_size v
  | Pref r ->
      1 + String.length r.ps_stream + 8
      + (match r.ps_field with Some f -> 1 + String.length f | None -> 1)

let rec pp_value ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp_value a pp_value b
  | List vs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_value)
        vs
  | Record fields ->
      let pp_field ppf (name, v) = Format.fprintf ppf "%s = %a" name pp_value v in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_field)
        fields
  | Tagged (tag, v) -> Format.fprintf ppf "%s(%a)" tag pp_value v
  | Pref { ps_stream; ps_call; ps_field } ->
      Format.fprintf ppf "pref(%s#%d%s)" ps_stream ps_call
        (match ps_field with Some f -> "." ^ f | None -> "")

(* Structural equality with explicit float handling: polymorphic [=]
   follows IEEE semantics where [nan <> nan], so a [Real nan] payload
   would compare unequal to its own decoded copy and defeat dedup-cache
   replay comparison. Two reals are equal when IEEE-equal (which
   identifies -0. and +0.) or both NaN. *)
let rec equal_value (a : value) (b : value) =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> String.equal x y
  | Pair (a1, a2), Pair (b1, b2) -> equal_value a1 b1 && equal_value a2 b2
  | List xs, List ys -> List.equal equal_value xs ys
  | Record xs, Record ys ->
      List.equal
        (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal_value vx vy)
        xs ys
  | Tagged (tx, vx), Tagged (ty, vy) -> String.equal tx ty && equal_value vx vy
  | Pref x, Pref y ->
      String.equal x.ps_stream y.ps_stream && x.ps_call = y.ps_call
      && Option.equal String.equal x.ps_field y.ps_field
  | (Unit | Bool _ | Int _ | Real _ | Str _ | Pair _ | List _ | Record _ | Tagged _ | Pref _), _
    ->
      false

type 'a codec = {
  type_name : string;
  encode : 'a -> (value, string) result;
  decode : value -> ('a, string) result;
}

let encode c v = c.encode v

let decode c v = c.decode v

let type_error expected got =
  Error (Format.asprintf "expected %s, got %a" expected pp_value got)

let unit =
  {
    type_name = "unit";
    encode = (fun () -> Ok Unit);
    decode = (function Unit -> Ok () | v -> type_error "unit" v);
  }

let bool =
  {
    type_name = "bool";
    encode = (fun b -> Ok (Bool b));
    decode = (function Bool b -> Ok b | v -> type_error "bool" v);
  }

let int =
  {
    type_name = "int";
    encode = (fun i -> Ok (Int i));
    decode = (function Int i -> Ok i | v -> type_error "int" v);
  }

let real =
  {
    type_name = "real";
    encode = (fun r -> Ok (Real r));
    decode = (function Real r -> Ok r | v -> type_error "real" v);
  }

let string =
  {
    type_name = "string";
    encode = (fun s -> Ok (Str s));
    decode = (function Str s -> Ok s | v -> type_error "string" v);
  }

let ( let* ) = Result.bind

let pair ca cb =
  {
    type_name = Printf.sprintf "(%s * %s)" ca.type_name cb.type_name;
    encode =
      (fun (a, b) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        Ok (Pair (va, vb)));
    decode =
      (fun v ->
        match v with
        | Pair (va, vb) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            Ok (a, b)
        | v -> type_error "pair" v);
  }

let triple ca cb cc =
  {
    type_name = Printf.sprintf "(%s * %s * %s)" ca.type_name cb.type_name cc.type_name;
    encode =
      (fun (a, b, c) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        let* vc = cc.encode c in
        Ok (Pair (va, Pair (vb, vc))));
    decode =
      (fun v ->
        match v with
        | Pair (va, Pair (vb, vc)) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            let* c = cc.decode vc in
            Ok (a, b, c)
        | v -> type_error "triple" v);
  }

let list ca =
  {
    type_name = Printf.sprintf "%s list" ca.type_name;
    encode =
      (fun items ->
        let rec go acc = function
          | [] -> Ok (List (List.rev acc))
          | x :: rest -> (
              match ca.encode x with Ok v -> go (v :: acc) rest | Error e -> Error e)
        in
        go [] items);
    decode =
      (fun v ->
        match v with
        | List vs ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest -> (
                  match ca.decode x with Ok d -> go (d :: acc) rest | Error e -> Error e)
            in
            go [] vs
        | v -> type_error "list" v);
  }

let array ca =
  let cl = list ca in
  {
    type_name = Printf.sprintf "%s array" ca.type_name;
    encode = (fun arr -> cl.encode (Array.to_list arr));
    decode = (fun v -> Result.map Array.of_list (cl.decode v));
  }

let option ca =
  {
    type_name = Printf.sprintf "%s option" ca.type_name;
    encode =
      (function
      | None -> Ok (Tagged ("none", Unit))
      | Some x ->
          let* v = ca.encode x in
          Ok (Tagged ("some", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("none", Unit) -> Ok None
        | Tagged ("some", inner) -> Result.map Option.some (ca.decode inner)
        | v -> type_error "option" v);
  }

let result ca cb =
  {
    type_name = Printf.sprintf "(%s, %s) result" ca.type_name cb.type_name;
    encode =
      (function
      | Ok x ->
          let* v = ca.encode x in
          Ok (Tagged ("ok", v))
      | Error e ->
          let* v = cb.encode e in
          Ok (Tagged ("error", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("ok", inner) -> Result.map Result.ok (ca.decode inner)
        | Tagged ("error", inner) -> Result.map Result.error (cb.decode inner)
        | v -> type_error "result" v);
  }

let record2 name (f1, c1) (f2, c2) =
  {
    type_name = name;
    encode =
      (fun (a, b) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        Ok (Record [ (f1, va); (f2, vb) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb) ] when g1 = f1 && g2 = f2 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            Ok (a, b)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let record3 name (f1, c1) (f2, c2) (f3, c3) =
  {
    type_name = name;
    encode =
      (fun (a, b, c) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        let* vc = c3.encode c in
        Ok (Record [ (f1, va); (f2, vb); (f3, vc) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb); (g3, vc) ] when g1 = f1 && g2 = f2 && g3 = f3 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            let* c = c3.decode vc in
            Ok (a, b, c)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let tagged name to_tag of_tag =
  {
    type_name = name;
    encode =
      (fun x ->
        let tag, payload = to_tag x in
        Ok (Tagged (tag, payload)));
    decode =
      (fun v ->
        match v with Tagged (tag, payload) -> of_tag (tag, payload) | v -> type_error name v);
  }

let conv name f g c =
  {
    type_name = name;
    encode = (fun x -> c.encode (f x));
    decode = (fun v -> Result.map g (c.decode v));
  }

let conv_partial name f g c =
  {
    type_name = name;
    encode =
      (fun x ->
        let* y = f x in
        c.encode y);
    decode =
      (fun v ->
        let* y = c.decode v in
        g y);
  }

let failing_encode ?(reason = "injected encode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_encode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?enc";
    encode =
      (fun x ->
        incr count;
        if !count mod every = 0 then Error reason else c.encode x);
  }

let failing_decode ?(reason = "injected decode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_decode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?dec";
    decode =
      (fun v ->
        incr count;
        if !count mod every = 0 then Error reason else c.decode v);
  }

let encoded_size c v = match c.encode v with Ok enc -> wire_size enc | Error _ -> 0

(* ------------------------------------------------------------------ *)
(* Binary wire codec *)

module Bin = struct
  let version = 1

  (* Strings up to this length go through the per-encoder intern table,
     so a port name repeated across the calls of one batched packet is
     transmitted once and referenced afterwards. Longer strings are
     payload, not vocabulary: they are emitted inline. *)
  let intern_max = 64

  (* value tags (one byte each) *)
  let t_unit = 0x00
  and t_false = 0x01
  and t_true = 0x02
  and t_int = 0x03
  and t_real = 0x04
  and t_str_ref = 0x05
  and t_str_inline = 0x06
  and t_pair = 0x07
  and t_list = 0x08
  and t_record = 0x09
  and t_tagged = 0x0A
  and t_pref = 0x0B

  (* Decode refuses nesting deeper than this rather than risking a
     stack overflow on adversarial input. *)
  let max_depth = 1024

  (* --- connection dictionary -------------------------------------- *)

  (* A sender-owned string table that persists across the frames of one
     connection (docs/WIRE.md §Connection dictionary). A string is
     promoted the second frame it appears in: that frame carries a
     dict-define, and every later frame references the shared slot with
     a couple of bytes instead of re-shipping the bytes. The per-frame
     intern table stays authoritative inside a frame — the dictionary
     only replaces the *first* per-frame occurrence of a string.
     [reset_dict] bumps the epoch; the epoch travels in the frame
     header so a receiver discards stale state after an incarnation
     change without any extra handshake. *)
  type dict = {
    dc_slots : (string, int) Hashtbl.t;  (* promoted string -> shared slot *)
    dc_seen : (string, int) Hashtbl.t;  (* candidate -> frames seen so far *)
    mutable dc_next : int;  (* next shared slot *)
    mutable dc_epoch : int;
    dc_cap : int;  (* max promoted entries *)
    mutable dc_defines : int;  (* lifetime promotion count *)
    mutable dc_refs : int;  (* lifetime shared-slot reference count *)
  }

  let create_dict ?(cap = 1024) () =
    {
      dc_slots = Hashtbl.create 64;
      dc_seen = Hashtbl.create 64;
      dc_next = 0;
      dc_epoch = 0;
      dc_cap = max 1 cap;
      dc_defines = 0;
      dc_refs = 0;
    }

  let reset_dict dc =
    Hashtbl.reset dc.dc_slots;
    Hashtbl.reset dc.dc_seen;
    dc.dc_next <- 0;
    dc.dc_epoch <- dc.dc_epoch + 1

  let dict_epoch dc = dc.dc_epoch

  let dict_size dc = dc.dc_next

  let dict_defines dc = dc.dc_defines

  let dict_refs dc = dc.dc_refs

  (* --- encoder ---------------------------------------------------- *)

  type encoder = {
    e_buf : Buffer.t;
    e_strings : (string, int) Hashtbl.t;  (* interned string -> slot *)
    mutable e_next : int;  (* next intern slot *)
    mutable e_dict : dict option;  (* v2 frames only; cleared by [reset] *)
  }

  let create_encoder () =
    { e_buf = Buffer.create 256; e_strings = Hashtbl.create 16; e_next = 0; e_dict = None }

  let reset e =
    Buffer.clear e.e_buf;
    Hashtbl.reset e.e_strings;
    e.e_next <- 0;
    e.e_dict <- None

  let use_dict e dc = e.e_dict <- Some dc

  let length e = Buffer.length e.e_buf

  let contents e = Buffer.contents e.e_buf

  let add_byte e n = Buffer.add_char e.e_buf (Char.unsafe_chr (n land 0xff))

  (* LEB128; the first iteration may see a negative int (all-ones
     pattern from zigzag of min_int) — [lsr] then makes it positive, so
     the loop terminates in at most 9 bytes for a 63-bit int. *)
  let add_uvarint e n =
    let rec go n =
      if n land lnot 0x7f = 0 then Buffer.add_char e.e_buf (Char.unsafe_chr n)
      else begin
        Buffer.add_char e.e_buf (Char.unsafe_chr (n land 0x7f lor 0x80));
        go (n lsr 7)
      end
    in
    go n

  let zigzag n = (n lsl 1) lxor (n asr 62)

  let unzigzag z = (z lsr 1) lxor (-(z land 1))

  let add_varint e n = add_uvarint e (zigzag n)

  let add_raw_string e s =
    add_uvarint e (String.length s);
    Buffer.add_string e.e_buf s

  let frame_intern e s =
    Hashtbl.add e.e_strings s e.e_next;
    e.e_next <- e.e_next + 1

  (* String reference. v1 (no dictionary): [0] introduces a new
     intern-table entry inline, [k > 0] references entry [k-1] —
     single-pass for both sides. With a connection dictionary attached
     (v2 frames) the marker space shifts: [0] inline define, [1]
     dict-define (both sides append to the shared dictionary AND the
     per-frame table), [2] dict-ref (slot follows; the string is also
     appended to the per-frame table so later same-frame uses pay one
     byte), [m >= 3] references per-frame entry [m-3]. *)
  let add_string e s =
    match Hashtbl.find_opt e.e_strings s with
    | Some slot ->
        add_uvarint e (slot + (match e.e_dict with None -> 1 | Some _ -> 3))
    | None -> (
        match e.e_dict with
        | None ->
            frame_intern e s;
            add_byte e 0;
            add_raw_string e s
        | Some dc -> (
            match Hashtbl.find_opt dc.dc_slots s with
            | Some slot ->
                frame_intern e s;
                dc.dc_refs <- dc.dc_refs + 1;
                add_byte e 2;
                add_uvarint e slot
            | None ->
                (* Not promoted yet. The cross-frame count bumps at most
                   once per frame: a repeat inside this frame would have
                   hit the per-frame table above. *)
                let n = 1 + Option.value ~default:0 (Hashtbl.find_opt dc.dc_seen s) in
                if n >= 2 && dc.dc_next < dc.dc_cap then begin
                  Hashtbl.remove dc.dc_seen s;
                  Hashtbl.add dc.dc_slots s dc.dc_next;
                  dc.dc_next <- dc.dc_next + 1;
                  dc.dc_defines <- dc.dc_defines + 1;
                  frame_intern e s;
                  add_byte e 1;
                  add_raw_string e s
                end
                else begin
                  (* Bound the candidate table; losing counts only
                     delays promotion, it never corrupts the wire. *)
                  if Hashtbl.length dc.dc_seen > 4 * dc.dc_cap then Hashtbl.reset dc.dc_seen;
                  Hashtbl.replace dc.dc_seen s n;
                  frame_intern e s;
                  add_byte e 0;
                  add_raw_string e s
                end))

  let rec add_value e v =
    match v with
    | Unit -> add_byte e t_unit
    | Bool false -> add_byte e t_false
    | Bool true -> add_byte e t_true
    | Int i ->
        add_byte e t_int;
        add_varint e i
    | Real r ->
        add_byte e t_real;
        Buffer.add_int64_le e.e_buf (Int64.bits_of_float r)
    | Str s when String.length s <= intern_max ->
        add_byte e t_str_ref;
        add_string e s
    | Str s ->
        add_byte e t_str_inline;
        add_raw_string e s
    | Pair (a, b) ->
        add_byte e t_pair;
        add_value e a;
        add_value e b
    | List vs ->
        add_byte e t_list;
        add_uvarint e (List.length vs);
        List.iter (add_value e) vs
    | Record fields ->
        add_byte e t_record;
        add_uvarint e (List.length fields);
        List.iter
          (fun (name, v) ->
            add_string e name;
            add_value e v)
          fields
    | Tagged (tag, v) ->
        add_byte e t_tagged;
        add_string e tag;
        add_value e v
    | Pref { ps_stream; ps_call; ps_field } ->
        add_byte e t_pref;
        add_string e ps_stream;
        add_varint e ps_call;
        (match ps_field with
        | None -> add_byte e 0
        | Some f ->
            add_byte e 1;
            add_string e f)

  (* Encoder pool: hot paths (one encode per packet) reuse buffers and
     intern tables instead of reallocating. *)
  let pool : encoder list ref = ref []

  let pool_cap = 8

  let with_encoder f =
    let e =
      match !pool with
      | e :: rest ->
          pool := rest;
          reset e;
          e
      | [] -> create_encoder ()
    in
    Fun.protect
      ~finally:(fun () ->
        if List.compare_length_with !pool pool_cap < 0 then pool := e :: !pool)
      (fun () -> f e)

  let to_string v =
    with_encoder (fun e ->
        add_value e v;
        contents e)

  (* --- sizer ------------------------------------------------------ *)

  (* Counting-only mirror of [add_value]: computes the exact v1 encoded
     length without touching a buffer. Window accounting and registry
     byte budgets call this on every item, so avoiding the redundant
     encode matters. Sizes are always v1 (dictionary-off) semantics —
     for senders with a dictionary attached this over-estimates, which
     is the conservative direction for flow-control accounting. *)

  type sizer = {
    s_strings : (string, int) Hashtbl.t;
    mutable s_next : int;
    mutable s_len : int;
  }

  let uvarint_len n =
    let rec go n k = if n land lnot 0x7f = 0 then k + 1 else go (n lsr 7) (k + 1) in
    go n 0

  let size_string z s =
    match Hashtbl.find_opt z.s_strings s with
    | Some slot -> z.s_len <- z.s_len + uvarint_len (slot + 1)
    | None ->
        Hashtbl.add z.s_strings s z.s_next;
        z.s_next <- z.s_next + 1;
        z.s_len <- z.s_len + 1 + uvarint_len (String.length s) + String.length s

  let rec size_value z v =
    match v with
    | Unit | Bool _ -> z.s_len <- z.s_len + 1
    | Int i -> z.s_len <- z.s_len + 1 + uvarint_len (zigzag i)
    | Real _ -> z.s_len <- z.s_len + 9
    | Str s when String.length s <= intern_max ->
        z.s_len <- z.s_len + 1;
        size_string z s
    | Str s -> z.s_len <- z.s_len + 1 + uvarint_len (String.length s) + String.length s
    | Pair (a, b) ->
        z.s_len <- z.s_len + 1;
        size_value z a;
        size_value z b
    | List vs ->
        z.s_len <- z.s_len + 1 + uvarint_len (List.length vs);
        List.iter (size_value z) vs
    | Record fields ->
        z.s_len <- z.s_len + 1 + uvarint_len (List.length fields);
        List.iter
          (fun (name, v) ->
            size_string z name;
            size_value z v)
          fields
    | Tagged (tag, v) ->
        z.s_len <- z.s_len + 1;
        size_string z tag;
        size_value z v
    | Pref { ps_stream; ps_call; ps_field } ->
        z.s_len <- z.s_len + 1;
        size_string z ps_stream;
        z.s_len <- z.s_len + uvarint_len (zigzag ps_call) + 1;
        (match ps_field with None -> () | Some f -> size_string z f)

  let sizer_pool : sizer list ref = ref []

  let size v =
    let z =
      match !sizer_pool with
      | z :: rest ->
          sizer_pool := rest;
          Hashtbl.reset z.s_strings;
          z.s_next <- 0;
          z.s_len <- 0;
          z
      | [] -> { s_strings = Hashtbl.create 16; s_next = 0; s_len = 0 }
    in
    Fun.protect
      ~finally:(fun () ->
        if List.compare_length_with !sizer_pool pool_cap < 0 then sizer_pool := z :: !sizer_pool)
      (fun () ->
        size_value z v;
        z.s_len)

  (* --- decoder ---------------------------------------------------- *)

  exception Bad of string
  (* internal only: every public read catches it and returns [Error] *)

  (* Receiver half of the connection dictionary: an append-only string
     table shared by every frame of one (peer, epoch). Slots are never
     removed within an epoch; an epoch change swaps in a *new* table
     object, so views captured against the old epoch stay valid. *)
  type dict_table = { mutable dt_arr : string array; mutable dt_count : int }

  let create_dict_table () = { dt_arr = [||]; dt_count = 0 }

  let dict_table_size dt = dt.dt_count

  type decoder = {
    d_src : string;
    mutable d_pos : int;
    mutable d_table : string array;
    mutable d_count : int;
    mutable d_dict : dict_table option;  (* v2 frames only *)
    mutable d_replay : bool;  (* re-reading an already-scanned slice *)
  }

  let decoder s =
    { d_src = s; d_pos = 0; d_table = [||]; d_count = 0; d_dict = None; d_replay = false }

  let use_dict_table d dt = d.d_dict <- Some dt

  let pos d = d.d_pos

  let remaining d = String.length d.d_src - d.d_pos

  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  (* Cold raise kept out of line so [u8] stays small enough to inline
     into the decode/skip loops, where it runs once per byte of tags
     and varints. *)
  let truncated_at pos = bad "truncated input at byte %d" pos

  let[@inline] u8 d =
    let pos = d.d_pos in
    if pos >= String.length d.d_src then truncated_at pos;
    let c = Char.code (String.unsafe_get d.d_src pos) in
    d.d_pos <- pos + 1;
    c

  (* Top-level recursion (not a local closure) and a one-byte fast
     path: varints are read once per value on the hot decode/skip
     loops, and most of them fit in one byte. *)
  let rec uvarint_rest d shift acc =
    if shift > 56 then bad "varint longer than 9 bytes at %d" d.d_pos;
    let b = u8 d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else uvarint_rest d (shift + 7) acc

  let uvarint_exn d =
    let b = u8 d in
    if b land 0x80 = 0 then b else uvarint_rest d 7 (b land 0x7f)

  let raw_string_exn d =
    let len = uvarint_exn d in
    if len < 0 || len > remaining d then
      bad "string of %d bytes overruns input (%d left)" len (remaining d);
    let s = String.sub d.d_src d.d_pos len in
    d.d_pos <- d.d_pos + len;
    s

  let push_interned d s =
    if d.d_count >= Array.length d.d_table then begin
      let cap = max 8 (2 * Array.length d.d_table) in
      let bigger = Array.make cap "" in
      Array.blit d.d_table 0 bigger 0 d.d_count;
      d.d_table <- bigger
    end;
    d.d_table.(d.d_count) <- s;
    d.d_count <- d.d_count + 1

  let push_dict dt s =
    if dt.dt_count >= Array.length dt.dt_arr then begin
      let cap = max 16 (2 * Array.length dt.dt_arr) in
      let bigger = Array.make cap "" in
      Array.blit dt.dt_arr 0 bigger 0 dt.dt_count;
      dt.dt_arr <- bigger
    end;
    dt.dt_arr.(dt.dt_count) <- s;
    dt.dt_count <- dt.dt_count + 1

  let string_exn d =
    match d.d_dict with
    | None -> (
        let n = uvarint_exn d in
        if n = 0 then begin
          let s = raw_string_exn d in
          push_interned d s;
          s
        end
        else if n - 1 < d.d_count then d.d_table.(n - 1)
        else bad "string ref %d out of table range (%d entries)" n d.d_count)
    | Some dt ->
        let m = uvarint_exn d in
        if m = 0 then begin
          let s = raw_string_exn d in
          push_interned d s;
          s
        end
        else if m = 1 then begin
          (* Dict-define: appended to the shared table exactly once —
             replays of an already-scanned slice must not re-append. *)
          let s = raw_string_exn d in
          if not d.d_replay then push_dict dt s;
          push_interned d s;
          s
        end
        else if m = 2 then begin
          let k = uvarint_exn d in
          if k < dt.dt_count then begin
            let s = dt.dt_arr.(k) in
            push_interned d s;
            s
          end
          else bad "dict ref %d out of range (%d entries)" k dt.dt_count
        end
        else if m - 3 < d.d_count then d.d_table.(m - 3)
        else bad "string ref %d out of table range (%d entries)" (m - 3) d.d_count

  let real_exn d =
    if remaining d < 8 then bad "truncated real at byte %d" d.d_pos;
    let bits = String.get_int64_le d.d_src d.d_pos in
    d.d_pos <- d.d_pos + 8;
    Int64.float_of_bits bits

  let rec value_exn d depth =
    if depth > max_depth then bad "nesting deeper than %d" max_depth;
    let tag = u8 d in
    if tag = t_unit then Unit
    else if tag = t_false then Bool false
    else if tag = t_true then Bool true
    else if tag = t_int then Int (unzigzag (uvarint_exn d))
    else if tag = t_real then Real (real_exn d)
    else if tag = t_str_ref then Str (string_exn d)
    else if tag = t_str_inline then Str (raw_string_exn d)
    else if tag = t_pair then begin
      let a = value_exn d (depth + 1) in
      let b = value_exn d (depth + 1) in
      Pair (a, b)
    end
    else if tag = t_list then begin
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "list of %d elements overruns input" n;
      let rec go k acc =
        if k = 0 then List.rev acc else go (k - 1) (value_exn d (depth + 1) :: acc)
      in
      List (go n [])
    end
    else if tag = t_record then begin
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "record of %d fields overruns input" n;
      let rec go k acc =
        if k = 0 then List.rev acc
        else begin
          let name = string_exn d in
          let v = value_exn d (depth + 1) in
          go (k - 1) ((name, v) :: acc)
        end
      in
      Record (go n [])
    end
    else if tag = t_tagged then begin
      let tag_name = string_exn d in
      let v = value_exn d (depth + 1) in
      Tagged (tag_name, v)
    end
    else if tag = t_pref then begin
      let ps_stream = string_exn d in
      let ps_call = unzigzag (uvarint_exn d) in
      let ps_field =
        match u8 d with
        | 0 -> None
        | 1 -> Some (string_exn d)
        | b -> bad "bad promise-ref field marker 0x%02x at byte %d" b (d.d_pos - 1)
      in
      Pref { ps_stream; ps_call; ps_field }
    end
    else bad "unknown value tag 0x%02x at byte %d" tag (d.d_pos - 1)

  exception Found_pref
  (* internal to [skip_value_exn ~stop_at_pref] *)

  (* Skip past a varint payload without computing its value. Accepts
     exactly what [uvarint_exn] accepts — at most 9 bytes, the last one
     with the continuation bit clear; [last] is the position of that
     ninth byte. *)
  let rec skip_uvarint src slen pos last =
    if pos >= slen then truncated_at pos;
    if Char.code (String.unsafe_get src pos) < 0x80 then pos + 1
    else if pos >= last then bad "varint longer than 9 bytes at %d" (pos + 1)
    else skip_uvarint src slen (pos + 1) last

  (* Structural scan without materialisation: validates exactly what
     [value_exn] would and leaves the cursor after the value, but
     allocates nothing except intern-table entries (the per-frame and
     dictionary tables must see the same side effects either way, so a
     later slice of the same frame decodes identically). The scan runs
     on a local cursor — [pos] threads through as an immediate, and
     [d.d_pos] is synced only around the interned-string and varint
     reads, so the scalar-heavy common case never touches the mutable
     record. Inline — non-interned — string payloads are skipped
     without copying. *)
  let rec skip_pos d src slen stop_at_pref depth pos =
    if depth > max_depth then bad "nesting deeper than %d" max_depth;
    if pos >= slen then truncated_at pos;
    let tag = Char.code (String.unsafe_get src pos) in
    let pos = pos + 1 in
    if tag = t_unit || tag = t_false || tag = t_true then pos
    else if tag = t_int then begin
      if pos >= slen then truncated_at pos;
      if Char.code (String.unsafe_get src pos) < 0x80 then pos + 1
      else skip_uvarint src slen (pos + 1) (pos + 8)
    end
    else if tag = t_real then begin
      if slen - pos < 8 then bad "truncated real at byte %d" pos;
      pos + 8
    end
    else if tag = t_str_ref then skip_istring d src slen pos
    else if tag = t_str_inline then begin
      d.d_pos <- pos;
      let len = uvarint_exn d in
      if len < 0 || len > remaining d then
        bad "string of %d bytes overruns input (%d left)" len (remaining d);
      d.d_pos + len
    end
    else if tag = t_pair then begin
      let pos = skip_pos d src slen stop_at_pref (depth + 1) pos in
      skip_pos d src slen stop_at_pref (depth + 1) pos
    end
    else if tag = t_list then begin
      d.d_pos <- pos;
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "list of %d elements overruns input" n;
      skip_items d src slen stop_at_pref (depth + 1) n d.d_pos
    end
    else if tag = t_record then begin
      d.d_pos <- pos;
      let n = uvarint_exn d in
      if n < 0 || n > remaining d then bad "record of %d fields overruns input" n;
      skip_fields d src slen stop_at_pref (depth + 1) n d.d_pos
    end
    else if tag = t_tagged then begin
      let pos = skip_istring d src slen pos in
      skip_pos d src slen stop_at_pref (depth + 1) pos
    end
    else if tag = t_pref then begin
      if stop_at_pref then raise Found_pref;
      d.d_pos <- pos;
      ignore (string_exn d : string);
      ignore (uvarint_exn d : int);
      (match u8 d with
      | 0 -> ()
      | 1 -> ignore (string_exn d : string)
      | b -> bad "bad promise-ref field marker 0x%02x at byte %d" b (d.d_pos - 1));
      d.d_pos
    end
    else bad "unknown value tag 0x%02x at byte %d" tag (pos - 1)

  and skip_items d src slen stop_at_pref depth n pos =
    if n = 0 then pos
    else
      skip_items d src slen stop_at_pref depth (n - 1)
        (skip_pos d src slen stop_at_pref depth pos)

  and skip_fields d src slen stop_at_pref depth n pos =
    if n = 0 then pos
    else begin
      let pos = skip_istring d src slen pos in
      let pos = skip_pos d src slen stop_at_pref depth pos in
      skip_fields d src slen stop_at_pref depth (n - 1) pos
    end

  (* Skip an interned string. The common steady-state shape — a
     one-byte back-reference into a table the scan has already built —
     resolves positionally with no side effects; everything else
     (defines, dict traffic, multi-byte markers, bad refs) falls back
     to [string_exn] for identical table updates and errors. *)
  and skip_istring d src slen pos =
    if pos >= slen then truncated_at pos;
    let m = Char.code (String.unsafe_get src pos) in
    let slot =
      if m >= 0x80 then -1
      else
        match d.d_dict with
        | None -> m - 1 (* v1: marker 0 is a define; k>0 is frame slot k-1 *)
        | Some _ -> m - 3 (* v2: markers 0/1/2 have side effects; m>=3 is frame slot m-3 *)
    in
    if slot >= 0 && slot < d.d_count then pos + 1
    else begin
      d.d_pos <- pos;
      ignore (string_exn d : string);
      d.d_pos
    end

  (* The optional argument is resolved once here, not boxed per
     recursive call — the scan itself stays allocation-free. *)
  let skip_value_exn ?(stop_at_pref = false) d depth =
    d.d_pos <- skip_pos d d.d_src (String.length d.d_src) stop_at_pref depth d.d_pos

  let wrap f d = match f d with v -> Ok v | exception Bad m -> Error m

  let read_byte d = wrap u8 d

  let read_uvarint d = wrap uvarint_exn d

  let read_varint d = wrap (fun d -> unzigzag (uvarint_exn d)) d

  let read_string d = wrap string_exn d

  let read_raw_string d = wrap raw_string_exn d

  let read_value d = wrap (fun d -> value_exn d 0) d

  let expect_end d =
    if remaining d = 0 then Ok ()
    else Error (Printf.sprintf "%d trailing bytes after value" (remaining d))

  let of_string s =
    let d = decoder s in
    match read_value d with
    | Error _ as e -> e
    | Ok v -> ( match expect_end d with Ok () -> Ok v | Error m -> Error m)
end

(* ------------------------------------------------------------------ *)
(* Lazy frame views *)

module View = struct
  (* A validated slice of an encoded frame (docs/WIRE.md §Lazy views).
     [read] scans one value with [Bin.skip_value_exn] — full structural
     validation, no tree allocation — and captures everything a later
     re-read needs: the buffer, the slice bounds, the per-frame intern
     table (as it stands after the scan; replays only touch entries the
     scan itself wrote, so sharing the array is safe) and the
     connection-dictionary table, if any. Navigation and
     materialisation replay the slice through a fresh cursor with
     [d_replay] set so dictionary defines are not appended twice.

     Views share mutable intern tables with their frame and are NOT
     safe to hand to another domain: materialise first. *)

  type t = {
    v_src : string;
    v_start : int;
    v_stop : int;
    v_table : string array;  (* frame intern table, post-scan *)
    v_tcount : int;  (* intern count at [v_start] *)
    v_dict : Bin.dict_table option;
  }

  type shape =
    | Vunit
    | Vbool
    | Vint
    | Vreal
    | Vstr
    | Vpair
    | Vlist
    | Vrecord
    | Vtagged
    | Vpref

  let capture (d : Bin.decoder) start tcount =
    {
      v_src = d.Bin.d_src;
      v_start = start;
      v_stop = d.Bin.d_pos;
      v_table = d.Bin.d_table;
      v_tcount = tcount;
      v_dict = d.Bin.d_dict;
    }

  let read (d : Bin.decoder) =
    let start = d.Bin.d_pos and tcount = d.Bin.d_count in
    match Bin.skip_value_exn d 0 with
    | () -> Ok (capture d start tcount)
    | exception Bin.Bad m -> Error m

  let of_string s =
    let d = Bin.decoder s in
    match read d with
    | Error _ as e -> e
    | Ok v -> ( match Bin.expect_end d with Ok () -> Ok v | Error m -> Error m)

  let byte_length v = v.v_stop - v.v_start

  (* An immutable copy of the view's mutable surroundings: the intern
     and dictionary tables are snapshotted (their strings are immutable
     and safely shared), so the result can cross to a pool worker
     domain while the connection keeps appending to the originals.
     O(table size) pointer copies, no byte copying. *)
  let snapshot v =
    {
      v with
      v_table = Array.copy v.v_table;
      v_dict =
        Option.map
          (fun dt ->
            { Bin.dt_arr = Array.copy dt.Bin.dt_arr; dt_count = dt.Bin.dt_count })
          v.v_dict;
    }

  let replay v =
    {
      Bin.d_src = v.v_src;
      d_pos = v.v_start;
      d_table = v.v_table;
      d_count = v.v_tcount;
      d_dict = v.v_dict;
      d_replay = true;
    }

  (* The scan in [read] rejected unknown tags, so the head byte is
     total here. *)
  let shape v =
    let t = Char.code (String.unsafe_get v.v_src v.v_start) in
    if t = Bin.t_unit then Vunit
    else if t = Bin.t_false || t = Bin.t_true then Vbool
    else if t = Bin.t_int then Vint
    else if t = Bin.t_real then Vreal
    else if t = Bin.t_str_ref || t = Bin.t_str_inline then Vstr
    else if t = Bin.t_pair then Vpair
    else if t = Bin.t_list then Vlist
    else if t = Bin.t_record then Vrecord
    else if t = Bin.t_tagged then Vtagged
    else Vpref

  let materialize v = Bin.wrap (fun d -> Bin.value_exn d 0) (replay v)

  let as_int v =
    match materialize v with
    | Ok (Int i) -> Ok i
    | Ok w -> Error (Format.asprintf "expected int, got %a" pp_value w)
    | Error _ as e -> e

  let as_string v =
    match materialize v with
    | Ok (Str s) -> Ok s
    | Ok w -> Error (Format.asprintf "expected string, got %a" pp_value w)
    | Error _ as e -> e

  (* Scan one sub-value of an already-validated slice into its own
     view. Sub-views share the parent's captured tables. *)
  let sub_exn (d : Bin.decoder) =
    let start = d.Bin.d_pos and tcount = d.Bin.d_count in
    Bin.skip_value_exn d 0;
    capture d start tcount

  let pair_parts v =
    Bin.wrap
      (fun d ->
        let t = Bin.u8 d in
        if t <> Bin.t_pair then Bin.bad "expected pair, got tag 0x%02x" t;
        let a = sub_exn d in
        let b = sub_exn d in
        (a, b))
      (replay v)

  let list_items v =
    Bin.wrap
      (fun d ->
        let t = Bin.u8 d in
        if t <> Bin.t_list then Bin.bad "expected list, got tag 0x%02x" t;
        let n = Bin.uvarint_exn d in
        if n < 0 || n > Bin.remaining d then Bin.bad "list of %d elements overruns input" n;
        let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (sub_exn d :: acc) in
        go n [])
      (replay v)

  (* One-item projection: items before [i] are skipped, items after it
     never scanned. [Ok None] when the list is shorter than [i + 1]. *)
  let list_item v i =
    if i < 0 then Error (Printf.sprintf "negative list index %d" i)
    else
      Bin.wrap
        (fun d ->
          let t = Bin.u8 d in
          if t <> Bin.t_list then Bin.bad "expected list, got tag 0x%02x" t;
          let n = Bin.uvarint_exn d in
          if n < 0 || n > Bin.remaining d then Bin.bad "list of %d elements overruns input" n;
          if i >= n then None
          else begin
            for _ = 1 to i do
              Bin.skip_value_exn d 0
            done;
            Some (sub_exn d)
          end)
        (replay v)

  let record_fields v =
    Bin.wrap
      (fun d ->
        let t = Bin.u8 d in
        if t <> Bin.t_record then Bin.bad "expected record, got tag 0x%02x" t;
        let n = Bin.uvarint_exn d in
        if n < 0 || n > Bin.remaining d then Bin.bad "record of %d fields overruns input" n;
        let rec go k acc =
          if k = 0 then List.rev acc
          else begin
            let name = Bin.string_exn d in
            let fv = sub_exn d in
            go (k - 1) ((name, fv) :: acc)
          end
        in
        go n [])
      (replay v)

  (* One-field projection: earlier fields are skipped, later fields
     never scanned. *)
  let record_field v name =
    Bin.wrap
      (fun d ->
        let t = Bin.u8 d in
        if t <> Bin.t_record then Bin.bad "expected record, got tag 0x%02x" t;
        let n = Bin.uvarint_exn d in
        if n < 0 || n > Bin.remaining d then Bin.bad "record of %d fields overruns input" n;
        let rec go k =
          if k = 0 then None
          else begin
            let fname = Bin.string_exn d in
            if String.equal fname name then Some (sub_exn d)
            else begin
              Bin.skip_value_exn d 0;
              go (k - 1)
            end
          end
        in
        go n)
      (replay v)

  let tagged_parts v =
    Bin.wrap
      (fun d ->
        let t = Bin.u8 d in
        if t <> Bin.t_tagged then Bin.bad "expected tagged, got tag 0x%02x" t;
        let tag = Bin.string_exn d in
        let inner = sub_exn d in
        (tag, inner))
      (replay v)

  (* Cheap pre-filter: a promise reference can only exist where its tag
     byte occurs, so a slice without 0x0B anywhere needs no walk. *)
  let has_prefs v =
    match String.index_from_opt v.v_src v.v_start '\x0b' with
    | Some i when i < v.v_stop -> (
        match Bin.skip_value_exn ~stop_at_pref:true (replay v) 0 with
        | () -> false
        | exception Bin.Found_pref -> true
        | exception Bin.Bad _ -> false)
    | _ -> false
end
