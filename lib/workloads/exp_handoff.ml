(* Experiment E19: third-party handoff (docs/HANDOFF.md). A three-node
   delegation — A asks B for a blob, then asks C to consume it — run
   two ways on both backends (sim and loopback TCP):

   - proxy: the pre-handoff shape. A claims B's blob, then ships it to
     C itself: the payload crosses the wire twice (B->A, A->C) and the
     dependent call cannot leave before the producer's reply lands.
   - handoff: A defers B's result, forwards the dependent call straight
     to C with a handoff-annotated reference, and tells B to push the
     blob to C directly: the payload crosses once (B->C) and one full
     hop of latency disappears from every delegation.

   A third leg repeats the handoff run while the A<->B link is cut mid
   flight and the stream resubmitted: the dedup cache plus push dedup
   must keep every handler execution at exactly one ("dup execs" 0). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module G = Argus.Guardian
module GC = Cstream.Group_config
module R = Core.Remote
module P = Core.Promise
module Sup = Core.Supervisor
module T = Transport_tcp

type row = {
  r_mode : string;  (** ["proxy"], ["handoff"] or ["handoff+break"] *)
  r_backend : string;  (** ["sim"] or ["tcp"] *)
  r_calls : int;
  r_ok : bool;  (** [false]: TCP unavailable (sandbox), row is a skip *)
  r_time : float;  (** measured span of the delegation loop, seconds *)
  r_msgs : int;
  r_bytes : int;
  r_forwards : int;  (** producer-side outcome pushes (handoff_forwards) *)
  r_fallbacks : int;  (** refused handoffs that fell back to proxying *)
  r_dup_execs : int;  (** handler executions beyond the first, per key *)
}

let blob_bytes = 256

let blob_of i =
  let tag = Printf.sprintf "%04d|" i in
  tag ^ String.make (blob_bytes - String.length tag) 'x'

let blob_sig = Core.Sigs.hsig0 "blob" ~arg:Xdr.int ~res:Xdr.string

let consume_sig = Core.Sigs.hsig0 "consume" ~arg:Xdr.string ~res:Xdr.int

(* Small batches, fast retransmit: break detection inside the
   experiment's few simulated milliseconds. *)
let chan_cfg =
  {
    CH.default_config with
    CH.max_batch = 16;
    flush_interval = 0.5e-3;
    retransmit_timeout = 4e-3;
    max_retries = 3;
  }

let group_config = GC.(default |> with_reply_config chan_cfg |> with_dedup)

type world = {
  w_sched : S.t;
  w_hub : CH.hub;  (* A, the delegating client *)
  w_mid_addr : int;  (* B, the blob producer *)
  w_sink_addr : int;  (* C, the consumer / owner *)
  w_mid_execs : (int, int) Hashtbl.t;
  w_sink_execs : (string, int) Hashtbl.t;
  w_msgs : unit -> int;
  w_bytes : unit -> int;
  w_partition : (unit -> unit) option;  (* cut A<->B (sim) *)
  w_heal : (unit -> unit) option;
  w_drop_mid : (unit -> unit) option;  (* cut B's sockets (tcp) *)
  w_close : unit -> unit;
}

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let register_servers w ~mid ~sink =
  G.register_group mid ~group:"main" ~config:group_config ();
  G.register mid ~group:"main" blob_sig (fun _ctx n ->
      bump w.w_mid_execs n;
      Ok (blob_of n));
  G.register_group sink ~group:"main" ~config:group_config ();
  G.register sink ~group:"main" consume_sig (fun _ctx s ->
      bump w.w_sink_execs s;
      Ok (String.length s))

let make_sim_world () =
  let sched = S.create ~seed:42 () in
  let net = Net.create sched { Net.default_config with Net.wire_latency = 1e-3 } in
  let a = Net.add_node net ~name:"client" in
  let b = Net.add_node net ~name:"mid" in
  let c = Net.add_node net ~name:"sink" in
  let hub_a = CH.create_hub ~net:(net, a) () in
  let hub_b = CH.create_hub ~net:(net, b) () in
  let hub_c = CH.create_hub ~net:(net, c) () in
  let stats = Net.stats net in
  let w =
    {
      w_sched = sched;
      w_hub = hub_a;
      w_mid_addr = Net.address b;
      w_sink_addr = Net.address c;
      w_mid_execs = Hashtbl.create 16;
      w_sink_execs = Hashtbl.create 16;
      w_msgs = (fun () -> Sim.Stats.peek stats "msgs_sent");
      w_bytes = (fun () -> Sim.Stats.peek stats "bytes_sent");
      w_partition = Some (fun () -> Net.partition net (Net.address a) (Net.address b));
      w_heal = Some (fun () -> Net.heal net (Net.address a) (Net.address b));
      w_drop_mid = None;
      w_close = (fun () -> ());
    }
  in
  register_servers w ~mid:(G.create hub_b ~name:"mid") ~sink:(G.create hub_c ~name:"sink");
  w

let make_tcp_world () =
  let sched = S.create ~seed:42 () in
  let fab = T.create sched in
  match
    let tr_a = T.endpoint fab ~addr:0 ~name:"client" () in
    let tr_b = T.endpoint fab ~addr:1 ~name:"mid" () in
    let tr_c = T.endpoint fab ~addr:2 ~name:"sink" () in
    let hub_a = CH.create_hub ~transport:tr_a () in
    let hub_b = CH.create_hub ~transport:tr_b () in
    let hub_c = CH.create_hub ~transport:tr_c () in
    T.set_peer fab ~addr:1 (T.listen_loopback fab ~addr:1);
    T.set_peer fab ~addr:2 (T.listen_loopback fab ~addr:2);
    (hub_a, hub_b, hub_c)
  with
  | hub_a, hub_b, hub_c ->
      let stats = T.stats fab in
      let w =
        {
          w_sched = sched;
          w_hub = hub_a;
          w_mid_addr = 1;
          w_sink_addr = 2;
          w_mid_execs = Hashtbl.create 16;
          w_sink_execs = Hashtbl.create 16;
          w_msgs = (fun () -> Sim.Stats.peek stats "transport_frames_sent");
          w_bytes = (fun () -> Sim.Stats.peek stats "transport_bytes_sent");
          w_partition = None;
          w_heal = None;
          w_drop_mid = Some (fun () -> T.drop_peer_connections fab ~addr:1);
          w_close = (fun () -> T.close fab);
        }
      in
      register_servers w ~mid:(G.create hub_b ~name:"mid") ~sink:(G.create hub_c ~name:"sink");
      Ok w
  | exception Unix.Unix_error (e, _, _) ->
      T.close fab;
      Error (Unix.error_message e)

let run_world world body =
  let failed = ref None and out = ref None in
  ignore
    (S.spawn world.w_sched ~name:"e19-main" (fun () ->
         match body () with v -> out := Some v | exception e -> failed := Some e));
  (match S.run world.w_sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      failwith ("E19: deadlock: " ^ String.concat ", " (List.map S.fiber_name fs))
  | S.Time_limit -> failwith "E19: unexpected time limit");
  (match !failed with Some e -> raise e | None -> ());
  match !out with Some v -> v | None -> failwith "E19: body did not finish"

let expect_len ~what = function
  | P.Normal v when v = blob_bytes -> ()
  | P.Normal v -> Fmt.failwith "E19: %s returned %d, expected %d" what v blob_bytes
  | P.Signal _ -> Fmt.failwith "E19: %s signalled" what
  | P.Unavailable r | P.Failure r -> Fmt.failwith "E19: %s failed: %s" what r

let dup_execs w =
  let extra count = max 0 (count - 1) in
  Hashtbl.fold (fun _ c acc -> acc + extra c) w.w_mid_execs 0
  + Hashtbl.fold (fun _ c acc -> acc + extra c) w.w_sink_execs 0

(* One delegation, proxied: claim the blob here, ship it onward. *)
let delegate_proxy ~hB ~hC i =
  match R.Call.(sync (make hB i)) with
  | P.Normal blob -> expect_len ~what:(Printf.sprintf "proxy %d" i) (R.Call.(sync (make hC blob)))
  | P.Signal _ -> failwith "E19: producer signalled"
  | P.Unavailable r | P.Failure r -> failwith ("E19: producer failed: " ^ r)

(* One delegation, handed off: the blob never comes here. *)
let delegate_handoff ~hB ~hC i =
  let pf = R.Call.(submit (defer_result (make hB i))) in
  let pg = R.Call.(submit (piped hC (R.pipe pf))) in
  R.flush hC;
  expect_len ~what:(Printf.sprintf "handoff %d" i) (P.claim pg)

(* The measured loop: one warmup delegation (stream setup, dictionary
   negotiation, handoff push-channel dial), then [n] timed ones. *)
let measured world ~mode ~n =
  let ag_b = Core.Agent.create world.w_hub ~name:"e19-b" ~config:chan_cfg () in
  let ag_c = Core.Agent.create world.w_hub ~name:"e19-c" ~config:chan_cfg () in
  let hB = R.bind ag_b ~dst:world.w_mid_addr ~gid:"main" blob_sig in
  let hC = R.bind ag_c ~dst:world.w_sink_addr ~gid:"main" consume_sig in
  let delegate = match mode with `Proxy -> delegate_proxy | `Handoff -> delegate_handoff in
  delegate ~hB ~hC 0;
  let m0 = world.w_msgs () and b0 = world.w_bytes () and t0 = S.now world.w_sched in
  for i = 1 to n do
    delegate ~hB ~hC i
  done;
  (S.now world.w_sched -. t0, world.w_msgs () - m0, world.w_bytes () - b0)

(* The forced-break leg: [n] handed-off delegations all in flight, the
   A<->B path cut mid-flight, then resubmitted (manually on sim, by a
   supervisor on tcp). Exactly-once must hold at both servers. *)
let break_body world ~n () =
  let sched = world.w_sched in
  let ag_b = Core.Agent.create world.w_hub ~name:"e19-bb" ~config:chan_cfg () in
  let ag_c = Core.Agent.create world.w_hub ~name:"e19-bc" ~config:chan_cfg () in
  let hB = R.bind ag_b ~dst:world.w_mid_addr ~gid:"main" blob_sig in
  let hC = R.bind ag_c ~dst:world.w_sink_addr ~gid:"main" consume_sig in
  let m0 = world.w_msgs () and b0 = world.w_bytes () and t0 = S.now sched in
  match world.w_partition with
  | Some cut ->
      (* Sim: deterministic outage window, manual resubmission. *)
      let sB = R.stream hB in
      SE.set_preserve_on_break sB true;
      S.at sched (S.now sched +. 1.8e-3) cut;
      S.at sched (S.now sched +. 30e-3) (Option.get world.w_heal);
      let pgs =
        List.init n (fun i ->
            let pf = R.Call.(submit (defer_result (make hB i))) in
            R.Call.(submit (piped hC (R.pipe pf))))
      in
      R.flush hC;
      (* A probe into the outage so the sender notices the break. *)
      S.sleep sched 4e-3;
      let probe = R.Call.(submit (make hB 9999)) in
      R.flush hB;
      while SE.broken sB = None do
        S.sleep sched 1e-3
      done;
      while S.now sched < 32e-3 do
        S.sleep sched 1e-3
      done;
      ignore (SE.restart_resubmit sB : int);
      List.iteri (fun i pg -> expect_len ~what:(Printf.sprintf "break %d" i) (P.claim pg)) pgs;
      (match P.claim probe with
      | P.Normal _ -> ()
      | _ -> failwith "E19: probe call failed after resubmit");
      (S.now sched -. t0, world.w_msgs () - m0, world.w_bytes () - b0)
  | None ->
      (* TCP: cut every socket at B mid-loop; supervision redials and
         resubmits, the push channel redials on its next use. *)
      let sup =
        Sup.supervise_agent
          ~config:
            {
              Sup.default_config with
              Sup.backoff_base = 2e-3;
              backoff_max = 20e-3;
              backoff_jitter = 0.0;
              retry_budget = 16;
            }
          ag_b ~dst:world.w_mid_addr ~gid:"main"
      in
      let pgs =
        List.init n (fun i ->
            let pf = R.Call.(submit (defer_result (make hB i))) in
            R.Call.(submit (piped hC (R.pipe pf))))
      in
      R.flush hC;
      List.iteri
        (fun i pg ->
          if i = n / 3 then (Option.get world.w_drop_mid) ();
          expect_len ~what:(Printf.sprintf "break %d" i) (P.claim pg))
        pgs;
      Sup.stop sup;
      (S.now sched -. t0, world.w_msgs () - m0, world.w_bytes () - b0)

let peek_sched sched name = Sim.Stats.peek (S.stats sched) name

let row_of ~mode ~backend ~calls world (time, msgs, bytes) =
  {
    r_mode = mode;
    r_backend = backend;
    r_calls = calls;
    r_ok = true;
    r_time = time;
    r_msgs = msgs;
    r_bytes = bytes;
    r_forwards = peek_sched world.w_sched "handoff_forwards";
    r_fallbacks = peek_sched world.w_sched "handoff_fallbacks";
    r_dup_execs = dup_execs world;
  }

let skip ~mode ~calls reason =
  {
    r_mode = mode;
    r_backend = "tcp: skipped (" ^ reason ^ ")";
    r_calls = calls;
    r_ok = false;
    r_time = nan;
    r_msgs = 0;
    r_bytes = 0;
    r_forwards = 0;
    r_fallbacks = 0;
    r_dup_execs = 0;
  }

let sim_row ~label ~n body =
  let w = make_sim_world () in
  row_of ~mode:label ~backend:"sim" ~calls:n w (run_world w (body w ~n))

let tcp_row ~label ~n body =
  match make_tcp_world () with
  | Error reason -> skip ~mode:label ~calls:n reason
  | Ok w -> (
      match run_world w (body w ~n) with
      | result ->
          let row = row_of ~mode:label ~backend:"tcp" ~calls:n w result in
          w.w_close ();
          row
      | exception Unix.Unix_error (e, _, _) ->
          w.w_close ();
          skip ~mode:label ~calls:n (Unix.error_message e))

let loop_body mode w ~n () = measured w ~mode ~n

let e19_rows ?(n = 8) ?(n_break = 6) () =
  [
    sim_row ~label:"proxy" ~n (loop_body `Proxy);
    tcp_row ~label:"proxy" ~n (loop_body `Proxy);
    sim_row ~label:"handoff" ~n (loop_body `Handoff);
    tcp_row ~label:"handoff" ~n (loop_body `Handoff);
    sim_row ~label:"handoff+break" ~n:n_break (fun w ~n -> break_body w ~n);
    tcp_row ~label:"handoff+break" ~n:n_break (fun w ~n -> break_body w ~n);
  ]

let e19 ?(n = 8) ?(n_break = 6) () =
  let rows = e19_rows ~n ~n_break () in
  let render r =
    [
      r.r_mode;
      r.r_backend;
      Table.cell_i r.r_calls;
      (if r.r_ok then Table.cell_ms r.r_time else "-");
      (if r.r_ok then Table.cell_i r.r_msgs else "-");
      (if r.r_ok then Table.cell_i r.r_bytes else "-");
      (if r.r_ok then Table.cell_i r.r_forwards else "-");
      (if r.r_ok then Table.cell_i r.r_fallbacks else "-");
      (if r.r_ok then Table.cell_i r.r_dup_execs else "-");
    ]
  in
  Table.make ~id:"E19"
    ~title:
      (Printf.sprintf
         "third-party handoff: %d-byte blobs delegated A->B->C, proxy vs direct handoff"
         blob_bytes)
    ~header:
      [ "mode"; "backend"; "calls"; "completion"; "msgs"; "bytes"; "forwards"; "fallbacks"; "dup execs" ]
    ~notes:
      [
        "proxy claims the blob at A and re-sends it (payload crosses B->A then A->C, and the \
         dependent call waits a full round trip); handoff defers B's reply, forwards the \
         dependent call to C with an annotated reference, and B pushes the blob straight to C \
         (docs/HANDOFF.md) — strictly fewer bytes and one hop less latency per delegation on \
         the same backend";
        "'forwards' counts producer-side outcome pushes, 'fallbacks' refused handoffs that \
         fell back to proxying (0 on a clean run)";
        "handoff+break cuts the A<->B path mid-flight and resubmits (manually on sim, via a \
         supervisor over tcp): 'dup execs' counts handler executions beyond the first per \
         argument and must be 0 — exactly-once holds across handoff + resubmission";
        "tcp rows print '-' and a skip reason when the sandbox forbids sockets";
      ]
    (List.map render rows)
