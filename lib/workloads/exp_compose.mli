(** Experiments E3 and E4: stream composition (§4 of the paper). *)

val grades_fig31 : n:int -> svc:float -> produce_cost:float -> float * int
(** The Figure 3-1 program (two sequential loops) on [n] students;
    returns (completion time, lines printed). *)

val grades_fig42 : n:int -> svc:float -> produce_cost:float -> float * int
(** The Figure 4-2 program (coenter + promise queue). *)

val e3 : ?svc:float -> ?produce_cost:float -> unit -> Table.t

(** A client and three servers (reader / computer / writer) for the
    three-level cascade of §4. *)
type cascade_world = {
  cw_sched : Sched.Scheduler.t;
  cw_read : (int, int, Core.Sigs.nothing) Core.Remote.h;
  cw_compute : (int, int, Core.Sigs.nothing) Core.Remote.h;
  cw_write : (int, unit, Core.Sigs.nothing) Core.Remote.h;
  cw_cpu : Cpu.t;
  cw_written : int ref;
}

val make_cascade :
  ?group_config:Cstream.Group_config.t -> svc:float -> cores:int -> unit -> cascade_world
(** [group_config] configures all three server port groups (reply
    buffering, dedup, …; default {!Cstream.Group_config.default}). *)

val cascade_staged : cascade_world -> n:int -> filter_cost:float -> unit
(** Staged loops: all reads, then all computes, then all writes. *)

val cascade_per_stream : cascade_world -> n:int -> filter_cost:float -> unit
(** One process per stream, joined by queues (the paper's choice). *)

val cascade_per_item :
  cascade_world -> n:int -> filter_cost:float -> proc_overhead:float -> unit
(** One process per data item, sequenced per stream (§4.3). *)

val e4 : ?n:int -> ?svc:float -> ?proc_overhead:float -> unit -> Table.t
