(* Experiment E18: the zero-copy wire path (docs/WIRE.md). Two
   mechanisms, one table. The per-connection interning dictionary
   promotes strings that recur across frames into shared slots, so a
   repeated-key workload pays for each hot string once per connection
   instead of once per frame — visible as bytes/call dropping when the
   dictionary is negotiated, with the define/ref counters showing how
   much of the stream rode slot references. Lazy frame views defer
   argument decoding until a handler actually consumes the value —
   visible in the serve row as decoded == lazy (every call executes)
   and in the shed row as decoded << lazy (shed calls are rejected
   from the envelope scan alone, their argument bytes never built into
   a tree). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise

type row = {
  r_mode : string;  (** "serve" or "shed" *)
  r_dict : bool;  (** connection dictionary negotiated *)
  r_calls : int;
  r_time : float;  (** completion, simulated seconds *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_defines : int;  (** strings promoted into dictionary slots *)
  r_refs : int;  (** dictionary slot references emitted *)
  r_lazy : int;  (** calls whose args arrived as an encoded view *)
  r_forced : int;  (** argument views materialized into trees *)
  r_sheds : int;  (** calls rejected [unavailable] by the receiver *)
  r_unavail : int;  (** calls surfaced [unavailable] to the claimant *)
  r_decode_errors : int;  (** frames a receiver could not decode *)
}

(* String-keyed calls with a string reply: both directions carry
   strings that recur across frames, which is exactly the shape the
   dictionary compresses. *)
let dict_sig =
  Core.Sigs.hsig0 "dict_work" ~arg:(Xdr.pair Xdr.string Xdr.int) ~res:Xdr.string

let key_pool = 16

let key i = Printf.sprintf "shard-host-%02d.internal" (i mod key_pool)

let run_one ?(n = 400) ~mode ~dict () =
  let sched = S.create ~seed:42 () in
  (* No loss/duplication/jitter: the sim endpoint reports itself
     reliable, which is the precondition for dictionary negotiation. *)
  let net = Net.create sched { Net.default_config with Net.wire_latency = 1e-3 } in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~dict ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~dict ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let service, gcfg =
    match mode with
    | `Serve -> (0.0, Cstream.Group_config.default)
    | `Shed ->
        (* A deliberately slow handler behind a shallow shed mark:
           batched frames land 16 calls at once, the lane queue crosses
           the mark, and most calls are rejected at delivery — before
           their arguments are ever decoded. *)
        (1e-3, Cstream.Group_config.(default |> with_dedup ~cache:1024 |> with_shed 4))
  in
  G.register_group server ~group:"dict" ~config:gcfg ();
  G.register server ~group:"dict" dict_sig (fun ctx (k, _i) ->
      if service > 0.0 then S.sleep ctx.G.sched service;
      Ok k);
  let ccfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 } in
  let ok = ref 0 and unavail = ref 0 in
  let claim p =
    match P.claim p with
    | P.Normal _ -> incr ok
    | P.Unavailable _ -> incr unavail
    | P.Signal _ | P.Failure _ -> failwith "E18: unexpected outcome"
  in
  let time =
    Fixtures.timed_run sched (fun () ->
        let ag = Core.Agent.create client_hub ~name:"bench" ~config:ccfg () in
        let h = R.bind ag ~dst:(Net.address server_node) ~gid:"dict" dict_sig in
        match mode with
        | `Serve ->
            (* Rounds of one full batch, claimed before the next round
               goes out: a steady bidirectional stream, so after the
               first round-trip's hello/welcome every frame runs under
               the negotiated dictionary. *)
            let rounds = (n + 15) / 16 in
            for r = 0 to rounds - 1 do
              let m = min 16 (n - (r * 16)) in
              let ps = List.init m (fun i -> R.stream_call h (key ((r * 16) + i), (r * 16) + i)) in
              R.flush h;
              List.iter claim ps
            done
        | `Shed ->
            (* One saturating burst: batched frames land faster than the
               slow handler drains its lane, crossing the shed mark. *)
            let ps = List.init n (fun i -> R.stream_call h (key i, i)) in
            R.flush h;
            List.iter claim ps)
  in
  let net_stats = Net.stats net in
  let stats = S.stats sched in
  if Sim.Stats.peek stats "chan_decode_errors" > 0 then
    failwith "E18: receiver hit decode errors";
  if dict && Sim.Stats.peek stats "chan_dict_negotiated" = 0 then
    failwith "E18: dictionary enabled but never negotiated";
  {
    r_mode = (match mode with `Serve -> "serve" | `Shed -> "shed");
    r_dict = dict;
    r_calls = n;
    r_time = time;
    r_msgs = Sim.Stats.peek net_stats "msgs_sent";
    r_bytes = Sim.Stats.peek net_stats "bytes_sent";
    r_defines = Sim.Stats.peek stats "chan_dict_defines";
    r_refs = Sim.Stats.peek stats "chan_dict_refs";
    r_lazy = Sim.Stats.peek stats "target_lazy_args";
    r_forced = Sim.Stats.peek stats "target_args_materialized";
    r_sheds = Sim.Stats.peek stats "target_sheds";
    r_unavail = !unavail;
    r_decode_errors = Sim.Stats.peek stats "chan_decode_errors";
  }

let e18_rows ?(n = 400) () =
  List.concat_map
    (fun mode -> List.map (fun dict -> run_one ~n ~mode ~dict ()) [ false; true ])
    [ `Serve; `Shed ]

let e18 ?(n = 400) () =
  let rows = e18_rows ~n () in
  let render r =
    [
      r.r_mode;
      (if r.r_dict then "on" else "off");
      Table.cell_i r.r_calls;
      Table.cell_i r.r_msgs;
      Table.cell_i r.r_bytes;
      Table.cell_f (float_of_int r.r_bytes /. float_of_int r.r_calls);
      Table.cell_i r.r_defines;
      Table.cell_i r.r_refs;
      Table.cell_i r.r_lazy;
      Table.cell_i r.r_forced;
      Table.cell_i r.r_sheds;
      Table.cell_i r.r_unavail;
      Table.cell_i r.r_decode_errors;
      Table.cell_ms r.r_time;
    ]
  in
  Table.make ~id:"E18"
    ~title:
      (Printf.sprintf
         "zero-copy wire path: connection dictionary and lazy views for %d string-keyed \
          calls (%d distinct keys)"
         n key_pool)
    ~header:
      [
        "mode"; "dict"; "calls"; "msgs"; "bytes"; "bytes/call"; "defines"; "refs";
        "lazy args"; "args decoded"; "sheds"; "unavail"; "decode errs"; "completion";
      ]
    ~notes:
      [
        "the dictionary is negotiated per connection (hello/welcome, docs/WIRE.md) and only \
         on a reliable transport; 'defines' counts strings promoted into shared slots on \
         their second cross-frame occurrence, 'refs' the slot references that replaced \
         re-sending the bytes — bytes/call drops exactly where keys recur";
        "arguments arrive as lazy views over the frame: 'lazy args' counts calls delivered \
         still-encoded, 'args decoded' the views forced into trees for a handler. Serving \
         decodes every call; shedding rejects from the envelope scan alone, so shed calls \
         never pay the argument decode";
        "with the dictionary off, frames are byte-identical to the pre-dictionary wire \
         (the E12 golden table is the gate); 'decode errs' must be 0 on every run";
      ]
    (List.map render rows)
