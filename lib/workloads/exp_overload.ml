(* Experiment E15: overload survival under fan-in (docs/OVERLOAD.md).
   Many agents burst Zipf-skewed calls at one guardian whose capacity
   (a shared core pool) is a fraction of the offered rate — 4x
   saturation in the headline configuration. The static-window row
   admits everything the 64 KiB window allows: receiver lanes go deep,
   the shed mark is crossed, callers retry against an already-drowning
   guardian, and issue->claim latency is dominated by queueing. The
   adaptive row runs the same load with the AIMD window: receiver
   pressure riding on acks cuts each sender's window toward its floor,
   the backlog waits at the senders instead of in the lanes, and sheds
   (hence retries) mostly disappear. Latency quantiles come from
   Sim.Span issue/claim pairs under 1-in-N trace sampling; the
   exactly-once ledger (every call executed once, or surfaced
   [unavailable], never both, never twice) is checked on every run. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module SE = Cstream.Stream_end
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise

type row = {
  r_mode : string;  (** "static" or "adaptive" window *)
  r_calls : int;  (** calls issued (first attempts) *)
  r_time : float;  (** completion, simulated seconds *)
  r_p50 : float;  (** issue->claim latency quantiles, seconds *)
  r_p99 : float;
  r_p999 : float;
  r_sheds : int;  (** calls rejected [unavailable] by the receiver *)
  r_retries : int;  (** retry attempts issued after a shed *)
  r_retry_ok : int;  (** retries that eventually succeeded *)
  r_unavail : int;  (** calls surfaced [unavailable] to the claimant *)
  r_cuts : int;  (** multiplicative window decreases, all senders *)
  r_win_min : int;  (** smallest sampled window of the probe stream *)
  r_win_max : int;  (** largest sampled window of the probe stream *)
  r_lost : int;  (** calls neither executed nor surfaced — must be 0 *)
  r_dups : int;  (** duplicate executions — must be 0 *)
}

let overload_sig =
  Core.Sigs.hsig0 "overload_work" ~arg:(Xdr.pair Xdr.int Xdr.int) ~res:Xdr.int

(* Zipf(s) over [0, keys): precomputed CDF, inverse-sampled. Skew makes
   a few keys hot, so sharded lanes load unevenly and the deepest lane
   crosses the shed mark first — the realistic fan-in shape. *)
let zipf_cdf ~keys ~s =
  let w = Array.init keys (fun i -> 1.0 /. ((float_of_int (i + 1)) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make keys 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. (wi /. total);
      cdf.(i) <- !acc)
    w;
  cdf

let zipf_draw cdf rng =
  let u = Sim.Rng.float rng 1.0 in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || u <= cdf.(i) then i else go (i + 1) in
  go 0

type params = {
  agents : int;
  calls_per_agent : int;
  burst : int;  (* calls issued back-to-back per burst *)
  gap : float;  (* mean pause between an agent's bursts, seconds *)
  cores : int;
  service : float;  (* simulated handler cost, seconds *)
  shards : int;
  shed_hwm : int;
  keys : int;
  zipf_s : float;
  sample_every : int;  (* Sim.Span 1-in-N trace sampling *)
}

(* Headline scale: 16 agents each offer bursts of 32 calls every 32 ms
   (1000 calls/s per agent, 16000/s aggregate) against 4 cores x 1 ms
   service = 4000 calls/s of capacity — 4x saturation. The agent count
   and per-agent rate matter jointly: lanes are per-connection, so the
   window only protects the receiver if one sender's offered rate
   exceeds what its own window floor can deliver per RTT. *)
let default_params =
  {
    agents = 16;
    calls_per_agent = 192;
    burst = 32;
    gap = 32e-3;
    cores = 4;
    service = 1e-3;
    shards = 4;
    shed_hwm = 8;
    keys = 32;
    zipf_s = 1.2;
    sample_every = 8;
  }

let retry_policy =
  {
    R.retry_attempts = 5;
    retry_base = 10e-3;
    retry_factor = 2.0;
    retry_max_delay = 250e-3;
    retry_jitter = 0.25;
  }

let run_one ~mode ~(p : params) () =
  let sched = S.create ~seed:42 () in
  (* A WAN-ish 2 ms propagation delay: the window floor (one call in
     flight) then caps a pinned sender near 1/RTT ~ 230 calls/s, below
     its 1000/s offered rate — the window, not the burst shape, is what
     limits delivery into the lanes. *)
  let net = Net.create sched { Net.default_config with Net.wire_latency = 2e-3 } in
  let server_node = Net.add_node net ~name:"server" in
  let client_node = Net.add_node net ~name:"clients" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let cpu = Cpu.create sched ~cores:p.cores in
  (* Both rows share one config except the controller switch; the
     static row runs at the pinned 64 KiB [max_inflight_bytes]. The
     64-byte floor means a fully cut window flies one call at a time —
     the TCP one-segment minimum, scaled to our item size. *)
  let base_cfg = { CH.aimd_config with CH.window_min_bytes = 64; window_increase = 128 } in
  let chan_cfg =
    match mode with
    | `Adaptive -> base_cfg
    | `Static -> { base_cfg with CH.adaptive_window = false }
  in
  G.register_group server ~group:"hot"
    ~config:
      Cstream.Group_config.(
        default
        |> with_dedup ~cache:8192
        |> with_shards p.shards
        |> with_shed p.shed_hwm)
    ();
  (* Exactly-once ledger: each call carries a globally unique id; the
     handler must see each id at most once (sheds never execute, and a
     retry is only sent after an [unavailable] reply for an attempt
     that was never enqueued). *)
  let executed : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let dups = ref 0 in
  G.register server ~group:"hot" overload_sig (fun _ctx (_key, id) ->
      if Hashtbl.mem executed id then incr dups else Hashtbl.replace executed id ();
      Cpu.consume cpu p.service;
      Ok id);
  let spans = S.spans sched in
  Sim.Span.enable spans true;
  Sim.Span.set_sampling spans p.sample_every;
  let cdf = zipf_cdf ~keys:p.keys ~s:p.zipf_s in
  let total = p.agents * p.calls_per_agent in
  let ok = ref 0 and unavail = ref 0 in
  let win_min = ref max_int and win_max = ref 0 in
  let time =
    Fixtures.timed_run sched (fun () ->
        let group = S.Group.create sched in
        let probe_stream = ref None in
        let stopped = ref false in
        List.iteri
          (fun a () ->
            (* The paper's Figure 4-1 shape: the issuer enqueues
               promises, a claimer fiber drains them concurrently. A
               claimer is essential for honest latency here — an agent
               that only claims after issuing everything would charge
               its own (window-throttled) issue loop to every early
               call's issue->claim time. *)
            let q : (int, Core.Sigs.nothing) P.t Sched.Bqueue.t = Sched.Bqueue.create sched in
            ignore
              (S.Group.add_spawn sched group ~name:(Printf.sprintf "claimer-%d" a)
                 (fun () ->
                   try
                     while true do
                       match P.claim (Sched.Bqueue.deq q) with
                       | P.Normal _ -> incr ok
                       | P.Unavailable _ -> incr unavail
                       | P.Signal _ | P.Failure _ -> failwith "E15: unexpected outcome"
                     done
                   with Sched.Bqueue.Closed -> ())
                : S.fiber);
            ignore
              (S.Group.add_spawn sched group ~name:(Printf.sprintf "agent-%d" a)
                 (fun () ->
                   let rng = Sim.Rng.split (S.rng sched) in
                   let ag =
                     Core.Agent.create client_hub ~name:(Printf.sprintf "a%d" a)
                       ~config:chan_cfg ()
                   in
                   let h =
                     R.bind ag ~dst:(Net.address server_node) ~gid:"hot" overload_sig
                   in
                   if a = 0 then probe_stream := Some (R.stream h);
                   (* Desynchronise agent start so bursts overlap but do
                      not align on one instant. *)
                   S.sleep sched (Sim.Rng.float rng p.gap);
                   let issued = ref 0 in
                   while !issued < p.calls_per_agent do
                     let n = min p.burst (p.calls_per_agent - !issued) in
                     for i = 0 to n - 1 do
                       let id = (a * p.calls_per_agent) + !issued + i in
                       let key = zipf_draw cdf rng in
                       Sched.Bqueue.enq q (R.stream_call_retry ~policy:retry_policy h (key, id))
                     done;
                     issued := !issued + n;
                     R.flush h;
                     if !issued < p.calls_per_agent then
                       S.sleep sched (p.gap *. (0.5 +. Sim.Rng.float rng 1.0))
                   done;
                   Sched.Bqueue.close q)
                : S.fiber))
          (List.init p.agents (fun _ -> ()));
        (* Window probe: sample agent 0's live sender window while the
           run is hot — the adaptive row should touch its floor, the
           static row should never move. *)
        ignore
          (S.spawn sched ~name:"window-probe" (fun () ->
               while not !stopped do
                 (match !probe_stream with
                 | Some st ->
                     let w = SE.window_bytes st in
                     if w < !win_min then win_min := w;
                     if w > !win_max then win_max := w
                 | None -> ());
                 S.sleep sched 2e-3
               done)
            : S.fiber);
        S.Group.wait sched group;
        stopped := true)
  in
  if !dups > 0 then failwith "E15: duplicate execution detected";
  let lost = total - (!ok + !unavail) in
  if lost <> 0 then failwith "E15: lost calls (claims do not add up)";
  if !ok <> Hashtbl.length executed then failwith "E15: normal claims != executions";
  (* Issue->claim latency per sampled trace: the first Issue (the first
     attempt) paired with the Claim. Retry attempts have their own
     trace ids and no Claim, so they never pair. Only normal claims
     count — an [unavailable] surfaced after retry exhaustion resolves
     early and would flatter the overloaded row's quantiles. *)
  let issue_at : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let samples = ref [] in
  List.iter
    (fun (e : Sim.Span.event) ->
      match e.Sim.Span.ev_kind with
      | Sim.Span.Issue ->
          if not (Hashtbl.mem issue_at e.ev_trace) then
            Hashtbl.replace issue_at e.ev_trace e.ev_time
      | Sim.Span.Claim when e.ev_note = "normal" -> (
          match Hashtbl.find_opt issue_at e.ev_trace with
          | Some t0 -> samples := (e.ev_time -. t0) :: !samples
          | None -> ())
      | _ -> ())
    (Sim.Span.events spans);
  (if Sys.getenv_opt "E15_DEBUG" <> None then
     let by_kind = Hashtbl.create 8 in
     List.iter
       (fun (e : Sim.Span.event) ->
         let k = Sim.Span.kind_label e.Sim.Span.ev_kind in
         Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
       (Sim.Span.events spans);
     Hashtbl.iter (Printf.eprintf "E15 debug: %s = %d\n%!") by_kind;
     Printf.eprintf "E15 debug: pairs = %d, events = %d\n%!" (List.length !samples)
       (List.length (Sim.Span.events spans)));
  let lat = Sim.Stats.summary (S.stats sched) "e15_latency" in
  List.iter (Sim.Stats.observe lat) !samples;
  let q x = Sim.Stats.quantile lat x in
  let stats = S.stats sched in
  {
    r_mode = (match mode with `Static -> "static" | `Adaptive -> "adaptive");
    r_calls = total;
    r_time = time;
    r_p50 = q 0.50;
    r_p99 = q 0.99;
    r_p999 = q 0.999;
    r_sheds = Sim.Stats.peek stats "target_sheds";
    r_retries = Sim.Stats.peek stats "remote_unavailable_retries";
    r_retry_ok = Sim.Stats.peek stats "remote_retry_successes";
    r_unavail = !unavail;
    r_cuts = Sim.Stats.peek stats "chan_window_cuts";
    r_win_min = (if !win_min = max_int then 0 else !win_min);
    r_win_max = !win_max;
    r_lost = lost;
    r_dups = !dups;
  }

let e15_rows ?(p = default_params) () =
  [ run_one ~mode:`Static ~p (); run_one ~mode:`Adaptive ~p () ]

let e15 ?(p = default_params) () =
  let rows = e15_rows ~p () in
  let render r =
    [
      r.r_mode;
      Table.cell_i r.r_calls;
      Table.cell_ms r.r_time;
      Table.cell_ms r.r_p50;
      Table.cell_ms r.r_p99;
      Table.cell_ms r.r_p999;
      Table.cell_i r.r_sheds;
      Table.cell_i r.r_retries;
      Table.cell_i r.r_retry_ok;
      Table.cell_i r.r_unavail;
      Table.cell_i r.r_cuts;
      Printf.sprintf "%d..%d" r.r_win_min r.r_win_max;
      Table.cell_i r.r_lost;
      Table.cell_i r.r_dups;
    ]
  in
  Table.make ~id:"E15"
    ~title:
      (Printf.sprintf
         "overload survival: %d agents burst %d Zipf-keyed calls at ~4x a %d-core \
          guardian's capacity"
         p.agents (p.agents * p.calls_per_agent) p.cores)
    ~header:
      [
        "window"; "calls"; "completion"; "p50"; "p99"; "p999"; "sheds"; "retries";
        "retry ok"; "unavail"; "cuts"; "window B"; "lost"; "dups";
      ]
    ~notes:
      [
        Printf.sprintf
          "latency is issue->claim from Sim.Span pairs under 1-in-%d trace sampling \
           (docs/TRACING.md); 'static' pins the 64 KiB sender window, 'adaptive' runs the \
           AIMD controller (docs/OVERLOAD.md) against receiver pressure piggybacked on acks"
          p.sample_every;
        Printf.sprintf
          "the receiver sheds non-resubmit calls with the paper's [unavailable] once a \
           lane queue reaches %d; shed calls retry with jittered backoff (%d attempts) and \
           either succeed ('retry ok') or surface [unavailable] to the claimant ('unavail')"
          p.shed_hwm retry_policy.R.retry_attempts;
        "latency quantiles cover normal completions only; the exactly-once ledger must \
         balance on every run: lost = dups = 0 — every call executed exactly once or \
         surfaced [unavailable], never both, never twice";
        "adaptive latency is measured after window admission: the AIMD window moves the \
         backlog from receiver lanes (queueing ahead of execution) back to the senders \
         (blocking before issue), which is precisely the paper's flow-control argument";
      ]
    (List.map render rows)

(* CI smoke gate: a trimmed adaptive run must keep the exactly-once
   ledger balanced and p99 bounded. Returns (p99, lost, dups, sheds). *)
let smoke_gate () =
  let p =
    { default_params with agents = 24; calls_per_agent = 32; sample_every = 1 }
  in
  let r = run_one ~mode:`Adaptive ~p () in
  (r.r_p99, r.r_lost, r.r_dups, r.r_sheds)
