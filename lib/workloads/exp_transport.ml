(* Experiment E17: the simulator as a predictor. The same two
   workloads — E12's batched stream calls and E13's pipelined
   dependent-call chain — run twice from one binary: over the simulated
   net (Transport_sim, virtual time = the model's prediction) and over
   real loopback TCP sockets (Transport_tcp, wall-clock time = the
   measurement). Frame and byte counts must agree exactly — the stream
   layer is byte-identical above the seam — while the time columns
   compare the cost model against a real kernel (docs/TRANSPORT.md). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise
module T = Transport_tcp

type row = {
  r_workload : string;
  r_backend : string;  (** ["sim"] or ["tcp"] *)
  r_calls : int;
  r_ok : bool;  (** [false]: TCP unavailable (sandbox), row is a skip *)
  r_time : float;  (** completion, seconds: sim = predicted, tcp = measured *)
  r_msgs : int;
  r_bytes : int;
}

(* Same shapes as E12 "stream B=16" / E13 "pipelined". *)
let batch_config = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let group_config = Cstream.Group_config.(default |> with_reply_config batch_config)

type world = {
  w_sched : S.t;
  w_hub : CH.hub;  (* client side *)
  w_server_addr : int;
  w_msgs : unit -> int;
  w_bytes : unit -> int;
  w_close : unit -> unit;
}

let register_server server =
  G.register_group server ~group:"main" ~config:group_config ();
  (* Chain link n -> n + 1, so a depth-k chain from 0 must claim k. *)
  G.register server ~group:"main" Fixtures.work_sig (fun _ctx n -> Ok (n + 1))

let make_sim_world () =
  let sched = S.create ~seed:42 () in
  let net = Net.create sched { Net.default_config with Net.wire_latency = 1e-3 } in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  register_server (G.create server_hub ~name:"server");
  let stats = Net.stats net in
  {
    w_sched = sched;
    w_hub = client_hub;
    w_server_addr = Net.address server_node;
    w_msgs = (fun () -> Sim.Stats.peek stats "msgs_sent");
    w_bytes = (fun () -> Sim.Stats.peek stats "bytes_sent");
    w_close = (fun () -> ());
  }

(* Both endpoints live in one process on one fabric, but every frame
   crosses the kernel through a real loopback TCP connection. *)
let make_tcp_world () =
  let sched = S.create ~seed:42 () in
  let fab = T.create sched in
  match
    let client_tr = T.endpoint fab ~addr:0 ~name:"client" () in
    let server_tr = T.endpoint fab ~addr:1 ~name:"server" () in
    let client_hub = CH.create_hub ~transport:client_tr () in
    let server_hub = CH.create_hub ~transport:server_tr () in
    register_server (G.create server_hub ~name:"server");
    let sa = T.listen_loopback fab ~addr:1 in
    T.set_peer fab ~addr:1 sa;
    client_hub
  with
  | client_hub ->
      let stats = T.stats fab in
      Ok
        {
          w_sched = sched;
          w_hub = client_hub;
          w_server_addr = 1;
          w_msgs = (fun () -> Sim.Stats.peek stats "transport_frames_sent");
          w_bytes = (fun () -> Sim.Stats.peek stats "transport_bytes_sent");
          w_close = (fun () -> T.close fab);
        }
  | exception Unix.Unix_error (e, _, _) ->
      T.close fab;
      Error (Unix.error_message e)

(* Like Fixtures.timed_run, but measuring from body start to body end
   inside the fiber: in TCP mode stray timers (retransmit arming) may
   keep the heap busy for a few wall milliseconds after the workload is
   done, and those must not pollute the measurement. *)
let timed_body world body =
  let t0 = ref nan and t1 = ref nan in
  let failed = ref None in
  ignore
    (S.spawn world.w_sched ~name:"e17-main" (fun () ->
         t0 := S.now world.w_sched;
         (match body () with () -> () | exception e -> failed := Some e);
         t1 := S.now world.w_sched));
  (match S.run world.w_sched with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      failwith ("E17: deadlock: " ^ String.concat ", " (List.map S.fiber_name fs))
  | S.Time_limit -> failwith "E17: unexpected time limit");
  (match !failed with Some e -> raise e | None -> ());
  if Float.is_nan !t1 then failwith "E17: body did not finish";
  !t1 -. !t0

(* Polymorphic in the signal type so the matches stay exhaustive. *)
let check ~what ~expect = function
  | P.Normal v when v = expect -> ()
  | P.Normal v -> Fmt.failwith "E17: %s returned %d, expected %d" what v expect
  | P.Signal _ -> Fmt.failwith "E17: %s signalled" what
  | P.Unavailable r | P.Failure r -> Fmt.failwith "E17: %s failed: %s" what r

let stream_workload ~n world () =
  let ag = Core.Agent.create world.w_hub ~name:"e17-stream" ~config:batch_config () in
  let h = R.bind ag ~dst:world.w_server_addr ~gid:"main" Fixtures.work_sig in
  let ps = List.init n (fun i -> R.stream_call h i) in
  R.flush h;
  List.iteri
    (fun i p -> check ~what:(Printf.sprintf "stream call %d" i) ~expect:(i + 1) (P.claim p))
    ps

let chain_workload ~depth world () =
  let ag = Core.Agent.create world.w_hub ~name:"e17-chain" ~config:batch_config () in
  let h = R.bind ag ~dst:world.w_server_addr ~gid:"main" Fixtures.work_sig in
  let p = ref (R.stream_call h 0) in
  for _ = 2 to depth do
    p := R.stream_call_p h (R.pipe !p)
  done;
  R.flush h;
  check ~what:"chain" ~expect:depth (P.claim !p)

let run_workload ~workload ~calls body =
  let sim =
    let w = make_sim_world () in
    let time = timed_body w (body w) in
    {
      r_workload = workload;
      r_backend = "sim";
      r_calls = calls;
      r_ok = true;
      r_time = time;
      r_msgs = w.w_msgs ();
      r_bytes = w.w_bytes ();
    }
  in
  let skip reason =
    {
      r_workload = workload;
      r_backend = "tcp: skipped (" ^ reason ^ ")";
      r_calls = calls;
      r_ok = false;
      r_time = nan;
      r_msgs = 0;
      r_bytes = 0;
    }
  in
  let tcp =
    match make_tcp_world () with
    | Error reason -> skip reason
    | Ok w -> (
        match timed_body w (body w) with
        | time ->
            let msgs = w.w_msgs () and bytes = w.w_bytes () in
            w.w_close ();
            {
              r_workload = workload;
              r_backend = "tcp";
              r_calls = calls;
              r_ok = true;
              r_time = time;
              r_msgs = msgs;
              r_bytes = bytes;
            }
        | exception Unix.Unix_error (e, _, _) ->
            w.w_close ();
            skip (Unix.error_message e))
  in
  [ sim; tcp ]

let e17_rows ?(n = 400) ?(depth = 4) () =
  run_workload ~workload:(Printf.sprintf "stream B=16 x%d" n) ~calls:n (stream_workload ~n)
  @ run_workload ~workload:(Printf.sprintf "pipelined chain d=%d" depth) ~calls:depth
      (chain_workload ~depth)

let e17 ?(n = 400) ?(depth = 4) () =
  let rows = e17_rows ~n ~depth () in
  (* predicted time per workload, for the wall/sim column on tcp rows *)
  let predicted =
    List.filter_map (fun r -> if r.r_backend = "sim" then Some (r.r_workload, r.r_time) else None) rows
  in
  let render r =
    [
      r.r_workload;
      r.r_backend;
      Table.cell_i r.r_calls;
      (if r.r_ok then Table.cell_ms r.r_time else "-");
      (if r.r_ok then Table.cell_i r.r_msgs else "-");
      (if r.r_ok then Table.cell_i r.r_bytes else "-");
      (if r.r_ok && r.r_backend = "tcp" then
         match List.assoc_opt r.r_workload predicted with
         | Some p when p > 0.0 -> Table.cell_f (r.r_time /. p)
         | _ -> "-"
       else "-");
    ]
  in
  Table.make ~id:"E17"
    ~title:"real transport: simulated prediction vs loopback-TCP wall clock"
    ~header:[ "workload"; "backend"; "calls"; "completion"; "msgs"; "bytes"; "wall/sim" ]
    ~notes:
      [
        "the identical codec, batching, windows and supervision run over both backends \
         (docs/TRANSPORT.md); 'sim' rows are virtual-time predictions on the cost model (1 ms \
         wire latency), 'tcp' rows are wall-clock measurements over real loopback sockets in \
         real time";
        "msgs/bytes count what actually crossed each substrate (Net counters vs TCP frame \
         counters) and agree exactly: the stream layer above the transport seam is \
         byte-identical";
        "'wall/sim' below 1 means loopback beats the modelled 1 ms-latency LAN — expected; \
         the point is that packet counts transfer and times stay the same order of magnitude";
        "tcp rows print '-' and a skip reason when the sandbox forbids sockets";
      ]
    (List.map render rows)
