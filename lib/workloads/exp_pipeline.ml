(* Experiment E13: promise pipelining. A k-deep chain of dependent
   calls — each call's argument is the previous call's result — costs k
   round trips if every link is claimed before the next call is made,
   but only about one round trip if the dependent calls are transmitted
   immediately with promise-reference arguments and the receiver
   substitutes results locally (docs/PIPELINE.md). The wire columns
   show why: pipelined, the whole chain leaves in one batch. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise

type mode = Single | Claim_each | Pipelined

let mode_name = function
  | Single -> "single call"
  | Claim_each -> "claim each"
  | Pipelined -> "pipelined"

type row = {
  r_mode : string;
  r_depth : int;  (** calls in the dependency chain *)
  r_time : float;  (** completion (simulated seconds) *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_data_pkts : int;
  r_pipelined : int;  (** calls transmitted with a promise-ref argument *)
  r_substitutions : int;  (** references substituted at the receiver *)
}

(* Batching stream config: calls issued back-to-back coalesce into one
   message, which is what lets a pipelined chain travel as one packet. *)
let chain_config = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

let run_mode ~depth ~mode () =
  let pair =
    Fixtures.make_pair
      ~cfg:{ Net.default_config with Net.wire_latency = 1e-3 }
      ~group_config:Cstream.Group_config.(default |> with_reply_config chain_config)
      ()
  in
  (* Chain link: n -> n + 1, so a depth-k chain from 0 must claim k —
     proof every substitution carried the real produced value. *)
  G.register pair.Fixtures.server ~group:"main" Fixtures.work_sig (fun _ctx n -> Ok (n + 1));
  let h = Fixtures.work_handle pair ~config:chain_config ~agent:"chain" () in
  let check ~expect = function
    | P.Normal v when v = expect -> ()
    | P.Normal v -> Fmt.failwith "E13: chain returned %d, expected %d" v expect
    | P.Signal _ -> failwith "E13: chain signalled"
    | P.Unavailable r | P.Failure r -> failwith ("E13: chain failed: " ^ r)
  in
  let time =
    Fixtures.timed_run pair.Fixtures.sched (fun () ->
        match mode with
        | Single -> check ~expect:1 (R.rpc h 0)
        | Claim_each ->
            (* The baseline the paper's stream calls cannot beat: each
               link needs its predecessor's value at the caller, so each
               link is a full round trip. *)
            let v = ref 0 in
            for _ = 1 to depth do
              match R.rpc h !v with
              | P.Normal r -> v := r
              | o -> check ~expect:(!v + 1) o
            done;
            if !v <> depth then Fmt.failwith "E13: chain ended at %d, expected %d" !v depth
        | Pipelined ->
            (* All [depth] calls leave together; only the last promise
               is ever claimed here — the intermediate values never
               visit this node. *)
            let p = ref (R.stream_call h 0) in
            for _ = 2 to depth do
              p := R.stream_call_p h (R.pipe !p)
            done;
            R.flush h;
            check ~expect:depth (P.claim !p))
  in
  let net_stats = Net.stats pair.Fixtures.net in
  let sched_stats = S.stats pair.Fixtures.sched in
  {
    r_mode = mode_name mode;
    r_depth = (match mode with Single -> 1 | Claim_each | Pipelined -> depth);
    r_time = time;
    r_msgs = Sim.Stats.peek net_stats "msgs_sent";
    r_bytes = Sim.Stats.peek net_stats "bytes_sent";
    r_data_pkts = Sim.Stats.peek sched_stats "chan_data_packets";
    r_pipelined = Sim.Stats.peek sched_stats "pipelined_calls";
    r_substitutions = Sim.Stats.peek sched_stats "ref_substitutions";
  }

let e13_rows ?(depth = 4) () =
  List.map (fun mode -> run_mode ~depth ~mode ()) [ Single; Claim_each; Pipelined ]

let e13 ?(depth = 4) () =
  let rows = e13_rows ~depth () in
  let rtt =
    match rows with
    | { r_mode = "single call"; r_time; _ } :: _ -> r_time
    | _ -> assert false
  in
  let render r =
    [
      r.r_mode;
      Table.cell_i r.r_depth;
      Table.cell_ms r.r_time;
      Table.cell_f (r.r_time /. rtt);
      Table.cell_i r.r_msgs;
      Table.cell_i r.r_bytes;
      Table.cell_i r.r_data_pkts;
      Table.cell_i r.r_pipelined;
      Table.cell_i r.r_substitutions;
    ]
  in
  Table.make ~id:"E13"
    ~title:
      (Printf.sprintf "promise pipelining: %d-deep dependent-call chain (1 ms latency)" depth)
    ~header:
      [
        "mode"; "depth"; "completion"; "x RTT"; "msgs"; "bytes"; "data pkts"; "pipelined";
        "substituted";
      ]
    ~notes:
      [
        "each call's argument is the previous call's result; 'claim each' waits for every \
         link's reply before the next call, 'pipelined' transmits promise-reference arguments \
         (Xdr.Pref) immediately and the receiver substitutes results locally \
         (docs/PIPELINE.md)";
        "'x RTT' is completion relative to the single-call round trip measured in the same \
         configuration; a pipelined chain rides one batch, so it stays near 1 while 'claim \
         each' grows linearly with depth";
      ]
    (List.map render rows)
