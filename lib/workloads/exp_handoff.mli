(** Experiment E19: third-party handoff (docs/HANDOFF.md).

    A three-node delegation — A asks B for a blob, then asks C to
    consume it — measured proxied (A claims the blob and re-sends it)
    versus handed off (A forwards the dependent call to C with an
    annotated reference and B pushes the blob straight to C), on both
    the simulated net and real loopback TCP. A third leg cuts the A<->B
    path mid-flight and resubmits, checking that exactly-once execution
    survives handoff + resubmission. *)

type row = {
  r_mode : string;  (** ["proxy"], ["handoff"] or ["handoff+break"] *)
  r_backend : string;  (** ["sim"] or ["tcp"] *)
  r_calls : int;
  r_ok : bool;  (** [false]: TCP unavailable (sandbox), row is a skip *)
  r_time : float;  (** measured span of the delegation loop, seconds *)
  r_msgs : int;
  r_bytes : int;
  r_forwards : int;  (** producer-side outcome pushes *)
  r_fallbacks : int;  (** refused handoffs that fell back to proxying *)
  r_dup_execs : int;  (** handler executions beyond the first, per key *)
}

val blob_bytes : int
(** Payload size of the delegated blob (the quantity that crosses the
    wire once under handoff and twice under proxying). *)

val e19_rows : ?n:int -> ?n_break:int -> unit -> row list
(** Raw rows, for tests and the benchmark harness. [n] timed
    delegations per clean leg (default 8, after one untimed warmup),
    [n_break] in-flight delegations in the forced-break leg (default
    6). *)

val e19 : ?n:int -> ?n_break:int -> unit -> Table.t
