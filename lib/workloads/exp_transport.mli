(** E17: the simulator as predictor — the E12/E13 workloads over the
    simulated net and over real loopback TCP, side by side
    (docs/TRANSPORT.md). *)

type row = {
  r_workload : string;
  r_backend : string;  (** ["sim"] or ["tcp"] *)
  r_calls : int;
  r_ok : bool;  (** [false]: TCP unavailable (sandbox), row is a skip *)
  r_time : float;  (** completion, seconds: sim = predicted, tcp = measured *)
  r_msgs : int;
  r_bytes : int;
}

val e17_rows : ?n:int -> ?depth:int -> unit -> row list
(** Four rows: stream batch (sim, tcp), pipelined chain (sim, tcp).
    [n] stream calls (default 400), chain depth [depth] (default 4). *)

val e17 : ?n:int -> ?depth:int -> unit -> Table.t
