(** E16: fibers vs domains — real OCaml 5 parallelism under the shard
    lanes (docs/DOMAINS.md).

    The E14 workload with {e physical} work: handler bodies burn
    calibrated wall-clock CPU ({!Cpu.Real}) instead of charging virtual
    time. The fibers row keeps everything on the simulator domain (the
    lanes' concurrency is simulated, so real work serialises); the
    domains rows offload each handler body onto a {!Sched.Pool} of
    1/2/4/8 worker domains. Ordering and exactly-once invariants are
    asserted on every row. Wall-clock numbers — interpret against the
    machine stanza in BENCH_domains.json. *)

type row = {
  r_mode : string;
  r_pool : int;
  r_lanes : int;
  r_calls : int;
  r_wall : float;
  r_throughput : float;
  r_speedup : float;
  r_ordered : bool;
  r_lost : int;
  r_dups : int;
}

val e16_rows :
  ?n:int ->
  ?keys:int ->
  ?lanes:int ->
  ?service:float ->
  ?pool_sizes:int list ->
  unit ->
  row list
(** One fibers row plus one domains row per pool size (defaults: 64
    calls of 1 ms real CPU each over 16 keys into 8 lanes, pools
    1/2/4/8), speedups normalised to the 1-domain pool row. Calibrates
    the spin kernel once per call. *)

val e16 :
  ?n:int ->
  ?keys:int ->
  ?lanes:int ->
  ?service:float ->
  ?pool_sizes:int list ->
  unit ->
  Table.t

val speedup_4v1 : ?n:int -> ?service:float -> unit -> float
(** Domains-at-4 over domains-at-1 wall-clock — the acceptance gate
    (>= 2 on a machine with >= 4 cores; ~1 below that). *)
