type mode = Virtual | Real of float

type t = {
  sched : Sched.Scheduler.t;
  sem : Sched.Semaphore.t;
  n : int;
  mode : mode;
}

(* The calibrated kernel: a branch-free integer LCG the optimizer
   cannot remove or vectorize away, ~1ns/iteration. Returning the final
   state keeps the loop observable. *)
let spin iters =
  let x = ref 1 in
  for _ = 1 to iters do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !x

let calibrate ?(budget = 0.05) () =
  if budget <= 0.0 then invalid_arg "Cpu.calibrate: budget must be positive";
  let chunk = 200_000 in
  (* Warm up out of the measurement so the first chunk's page faults
     and frequency ramp don't depress the rate. *)
  ignore (spin chunk : int);
  let t0 = Unix.gettimeofday () in
  let sink = ref 0 in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < budget do
    sink := !sink lxor spin chunk;
    iters := !iters + chunk
  done;
  ignore !sink;
  float_of_int !iters /. (Unix.gettimeofday () -. t0)

let burn ~rate dt =
  if rate <= 0.0 then invalid_arg "Cpu.burn: rate must be positive";
  if dt > 0.0 then ignore (spin (int_of_float (rate *. dt)) : int)

let create ?(mode = Virtual) sched ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  (match mode with
  | Real rate when rate <= 0.0 -> invalid_arg "Cpu.create: calibrated rate must be positive"
  | Real _ | Virtual -> ());
  { sched; sem = Sched.Semaphore.create sched cores; n = cores; mode }

let consume t dt =
  match t.mode with
  | Virtual ->
      if dt > 0.0 then
        Sched.Semaphore.with_permit t.sem (fun () -> Sched.Scheduler.sleep t.sched dt)
  | Real rate ->
      (* Physical computation: no permits, no virtual time — the only
         limit is the hardware, which is the point. Safe on any domain,
         so offloaded handlers (docs/DOMAINS.md) can call it. *)
      burn ~rate dt

let cores t = t.n

let mode t = t.mode
