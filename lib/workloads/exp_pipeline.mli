(** Experiment E13 — promise pipelining: a k-deep dependent-call chain
    completes in about one round trip when dependent calls carry
    promise-reference arguments ({!Xdr.Pref}), against k round trips
    when every link is claimed before the next call (docs/PIPELINE.md). *)

type row = {
  r_mode : string;
  r_depth : int;  (** calls in the dependency chain *)
  r_time : float;  (** completion (simulated seconds) *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_data_pkts : int;
  r_pipelined : int;  (** calls transmitted with a promise-ref argument *)
  r_substitutions : int;  (** references substituted at the receiver *)
}

val e13_rows : ?depth:int -> unit -> row list
(** The raw measurements: single-call round trip, claim-each chain and
    pipelined chain (default depth 4). Used by the bench JSON emitter. *)

val e13 : ?depth:int -> unit -> Table.t
