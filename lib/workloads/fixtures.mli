(** Standard simulated deployments used by experiments and examples. *)

(** A client node facing a single server guardian that provides the
    [work] handler ([int -> int], configurable service time). *)
type pair = {
  sched : Sched.Scheduler.t;
  net : Cstream.Chanhub.frame Net.t;
  client_node : Net.node;
  server_node : Net.node;
  client_hub : Cstream.Chanhub.hub;
  server : Argus.Guardian.t;
}

val work_sig : (int, int, Core.Sigs.nothing) Core.Sigs.hsig
(** [work: port (int) returns (int)] — replies with its argument. *)

val make_pair :
  ?cfg:Net.config ->
  ?seed:int ->
  ?service:float ->
  ?group_config:Cstream.Group_config.t ->
  ?ack_delay:float ->
  unit ->
  pair
(** Build the two-node world; [service] is the handler's per-call
    compute time, [group_config] the server group's whole
    {!Cstream.Group_config.t} (reply buffering, ordering, dedup,
    shards), [ack_delay] (default 0: disabled) enables ack piggybacking
    on both hubs — see {!Cstream.Chanhub.create_hub}. *)

val work_handle :
  pair -> ?config:Cstream.Chanhub.config -> agent:string -> unit ->
  (int, int, Core.Sigs.nothing) Core.Remote.h
(** A fresh agent on the client bound to the server's [work] port. *)

(** The grades deployment of the paper's running example: a client, a
    grades database guardian and a printer guardian on three nodes. *)
type grades_world = {
  g_sched : Sched.Scheduler.t;
  g_net : Cstream.Chanhub.frame Net.t;
  g_client_node : Net.node;
  g_db_node : Net.node;
  g_printer_node : Net.node;
  g_client_hub : Cstream.Chanhub.hub;
  g_db : Argus.Guardian.t;
  g_printer : Argus.Guardian.t;
  g_printed : string list ref;  (** lines, newest first *)
  g_db_busy : (float * float) list ref;
      (** busy intervals of the database handler (for timelines) *)
  g_print_busy : (float * float) list ref;
}

val record_grade_sig : (string * int, float, Core.Sigs.nothing) Core.Sigs.hsig

val print_sig : (string, unit, Core.Sigs.nothing) Core.Sigs.hsig

val make_grades_world :
  ?cfg:Net.config ->
  ?seed:int ->
  ?db_service:float ->
  ?print_service:float ->
  ?group_config:Cstream.Group_config.t ->
  unit ->
  grades_world

val students : int -> (string * int) list
(** [n] (name, grade) pairs in alphabetical name order, grades
    deterministic. *)

val db_handle :
  grades_world -> ?config:Cstream.Chanhub.config -> agent:string -> unit ->
  (string * int, float, Core.Sigs.nothing) Core.Remote.h

val print_handle :
  grades_world -> ?config:Cstream.Chanhub.config -> agent:string -> unit ->
  (string, unit, Core.Sigs.nothing) Core.Remote.h

(** {1 Timing helper} *)

val timed_run : Sched.Scheduler.t -> (unit -> unit) -> float
(** Spawn the body as the main fiber, run to quiescence, and return the
    virtual time at which the body finished (which may be earlier than
    the final event — e.g. dangling retransmit timers). Raises
    [Failure] on deadlock or if the body raised. *)

exception Deadlock of string list
(** Raised by {!timed_run} when the run deadlocks; carries the names of
    the stuck fibers. *)
