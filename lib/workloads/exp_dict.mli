(** Experiment E18 — the zero-copy wire path: the per-connection
    interning dictionary (bytes/call for repeated-string workloads) and
    lazy frame views (arguments decoded only when a handler consumes
    them; shed calls never decoded). See docs/WIRE.md. *)

type row = {
  r_mode : string;  (** "serve" or "shed" *)
  r_dict : bool;  (** connection dictionary negotiated *)
  r_calls : int;
  r_time : float;  (** completion, simulated seconds *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_defines : int;  (** strings promoted into dictionary slots *)
  r_refs : int;  (** dictionary slot references emitted *)
  r_lazy : int;  (** calls whose args arrived as an encoded view *)
  r_forced : int;  (** argument views materialized into trees *)
  r_sheds : int;  (** calls rejected [unavailable] by the receiver *)
  r_unavail : int;  (** calls surfaced [unavailable] to the claimant *)
  r_decode_errors : int;  (** frames a receiver could not decode *)
}

val run_one :
  ?n:int -> mode:[ `Serve | `Shed ] -> dict:bool -> unit -> row
(** One (workload, dictionary) cell. Raises [Failure] if a receiver
    hit decode errors, or if [dict] was requested but never
    negotiated. *)

val e18_rows : ?n:int -> unit -> row list
(** Every (mode × dict on/off) combination, [n] calls each (default
    400). Used by the bench JSON emitter. *)

val e18 : ?n:int -> unit -> Table.t
