(** E14: sharded port-group execution — partition-keyed parallel
    dispatch at the receiver (docs/SHARDING.md).

    A CPU-bound guardian group is driven by one stream of (key, op)
    calls, with the group sharded across 1/2/4/8 worker lanes keyed by
    the call's key. The independent-key series shows call throughput
    scaling with the lane count; the same-key series shows per-key call
    order is preserved (all calls collapse onto one lane) and the
    per-stream reply-order guarantee never bends. *)

type row = {
  r_series : string;
  r_shards : int;
  r_calls : int;
  r_time : float;
  r_throughput : float;
  r_speedup : float;
  r_dispatches : int;
  r_queue_hwm : int;
  r_imbalance : int;
  r_ordered : bool;
}

val e14_rows :
  ?n:int -> ?service:float -> ?cores:int -> ?shard_counts:int list -> unit -> row list
(** Both series (defaults: 240 calls of 1 ms CPU each on 8 simulated
    cores, shard counts 1/2/4/8), speedups normalised to each series'
    1-shard row. *)

val e14 : ?n:int -> ?service:float -> ?cores:int -> ?shard_counts:int list -> unit -> Table.t

val speedup_8v1 : unit -> float
(** Independent-key throughput at 8 shards over 1 shard — the
    acceptance gate (must be >= 3). *)
