(** Experiment E12 — the binary wire: packets per call, bytes per call
    and ack piggybacking for RPC vs stream vs send (§2's message
    economy, measured over actual encoded sizes; see docs/WIRE.md). *)

type row = {
  r_mode : string;
  r_piggyback : bool;
  r_calls : int;
  r_time : float;  (** completion (simulated seconds) *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_data_pkts : int;
  r_ack_pkts : int;  (** standalone Ack packets *)
  r_piggybacked : int;  (** acks that rode on reverse-direction Data *)
  r_standalone : int;  (** acks that needed their own packet *)
  r_decode_errors : int;  (** frames that failed to decode at a receiver *)
}

val calls_per_data_pkt : row -> float
(** Call + reply items per Data packet, halved — i.e. how many {e
    calls} one data packet carries on average across both directions. *)

val e12_rows : ?n:int -> unit -> row list
(** The raw measurements: every (mode × piggyback on/off) combination,
    [n] calls each (default 400). Used by the bench JSON emitter. *)

val e12 : ?n:int -> unit -> Table.t
