(* Experiments E1, E2, E9: the call-stream performance claims of §2.

   E1 — throughput of N calls: RPC vs stream calls at several batch
   sizes and network latencies. The paper claims streams beat RPC
   because (a) the caller does not wait per call and (b) buffering
   amortises the per-message kernel overhead.

   E2 — messages and bytes on the wire for RPC / stream / send.

   E9 — reply latency under passive buffering vs flush vs synch. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise

type mode = Rpc | Stream of int | Send_mode of int

let mode_name = function
  | Rpc -> "RPC"
  | Stream b -> Printf.sprintf "stream B=%d" b
  | Send_mode b -> Printf.sprintf "send B=%d" b

let chan_config = function
  | Rpc -> CH.rpc_config
  | Stream b | Send_mode b -> { CH.default_config with CH.max_batch = b; flush_interval = 1e-3 }

(* One run: N calls of the given mode; returns (completion time, msgs,
   bytes). *)
let run_calls ~latency ~mode ~n ~service =
  let cfg = { Net.default_config with Net.wire_latency = latency } in
  let ccfg = chan_config mode in
  let pair =
    Fixtures.make_pair ~cfg ~service
      ~group_config:Cstream.Group_config.(default |> with_reply_config ccfg)
      ()
  in
  let h = Fixtures.work_handle pair ~config:ccfg ~agent:"bench" () in
  let time =
    Fixtures.timed_run pair.Fixtures.sched (fun () ->
        match mode with
        | Rpc ->
            for i = 1 to n do
              match R.rpc h i with
              | P.Normal _ -> ()
              | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "rpc failed"
            done
        | Stream _ ->
            for i = 1 to n do
              ignore (R.stream_call h i : (int, Core.Sigs.nothing) P.t)
            done;
            (match R.synch h with
            | Ok () -> ()
            | Error _ -> failwith "stream broke")
        | Send_mode _ ->
            for i = 1 to n do
              R.send h i
            done;
            (match R.synch h with
            | Ok () -> ()
            | Error _ -> failwith "stream broke"))
  in
  let stats = Net.stats pair.Fixtures.net in
  let msgs = Sim.Stats.count (Sim.Stats.counter stats "msgs_sent") in
  let bytes = Sim.Stats.count (Sim.Stats.counter stats "bytes_sent") in
  (time, msgs, bytes)

let e1 ?(n = 400) ?(service = 50e-6) () =
  let latencies = [ 0.1e-3; 1e-3; 10e-3 ] in
  let modes = [ Rpc; Stream 1; Stream 4; Stream 16; Stream 64 ] in
  let rows = ref [] in
  List.iter
    (fun latency ->
      let rpc_time = ref nan in
      List.iter
        (fun mode ->
          let time, msgs, _ = run_calls ~latency ~mode ~n ~service in
          if mode = Rpc then rpc_time := time;
          let speedup = !rpc_time /. time in
          rows :=
            [
              Printf.sprintf "%.1f" (latency *. 1e3);
              mode_name mode;
              Table.cell_ms time;
              Table.cell_f (float_of_int n /. time);
              Table.cell_i msgs;
              Printf.sprintf "%.1fx" speedup;
            ]
            :: !rows)
        modes)
    latencies;
  Table.make ~id:"E1" ~title:(Printf.sprintf "%d calls: RPC vs stream calls (service %.0f us)" n (service *. 1e6))
    ~header:[ "latency"; "mode"; "completion"; "calls/s"; "msgs"; "vs RPC" ]
    ~notes:
      [
        "paper claim (§2, §5): streams allow the caller to run in parallel with the call and \
         amortise kernel overhead over several calls; the gap over RPC grows with latency and \
         batch size";
      ]
    (List.rev !rows)

let e2 ?(n = 400) () =
  let latency = 1e-3 in
  let modes = [ Rpc; Stream 16; Send_mode 16 ] in
  let rows =
    List.map
      (fun mode ->
        let _, msgs, bytes = run_calls ~latency ~mode ~n ~service:0.0 in
        [
          mode_name mode;
          Table.cell_i msgs;
          Table.cell_i bytes;
          Table.cell_f (float_of_int msgs /. float_of_int n);
          Table.cell_f (float_of_int bytes /. float_of_int n);
        ])
      modes
  in
  Table.make ~id:"E2" ~title:(Printf.sprintf "wire cost of %d calls" n)
    ~header:[ "mode"; "msgs"; "bytes"; "msgs/call"; "bytes/call" ]
    ~notes:
      [
        "paper claim (§2): buffering amortises message overheads over several calls; sends \
         omit normal reply values";
      ]
    rows

let e9 () =
  let rows = ref [] in
  List.iter
    (fun flush_interval ->
      List.iter
        (fun mode ->
          let ccfg =
            { CH.default_config with CH.max_batch = 1000; flush_interval }
          in
          let pair =
            Fixtures.make_pair
              ~group_config:Cstream.Group_config.(default |> with_reply_config CH.rpc_config)
              ()
          in
          let h = Fixtures.work_handle pair ~config:ccfg ~agent:"bench" () in
          let ready_at = ref nan in
          let time =
            Fixtures.timed_run pair.Fixtures.sched (fun () ->
                let p = R.stream_call h 1 in
                (match mode with
                | `Passive -> ()
                | `Flush -> R.flush h
                | `Synch -> (
                    match R.synch h with Ok () -> () | Error _ -> failwith "broke"));
                ignore (P.claim p : (int, Core.Sigs.nothing) P.outcome);
                ready_at := S.now pair.Fixtures.sched)
          in
          ignore time;
          rows :=
            [
              Printf.sprintf "%.0f" (flush_interval *. 1e3);
              (match mode with `Passive -> "buffered (timer)" | `Flush -> "flush" | `Synch -> "synch");
              Table.cell_ms !ready_at;
            ]
            :: !rows)
        [ `Passive; `Flush; `Synch ])
    [ 1e-3; 5e-3; 20e-3 ];
  Table.make ~id:"E9" ~title:"reply latency of one stream call: passive buffering vs flush vs synch"
    ~header:[ "flush timer (ms)"; "mode"; "reply ready at" ]
    ~notes:
      [
        "paper claim (§2): the system sends buffered calls eventually; flush merely speeds \
         this up, synch additionally waits for completion";
      ]
    (List.rev !rows)
