module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise
module G = Argus.Guardian

let stream_cfg = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

(* --- A1: receiver execution discipline ----------------------------- *)

(* Service times alternate between fast and slow so that concurrent
   execution visibly reorders completions. *)
let service_of i = if i mod 5 = 0 then 2e-3 else 0.2e-3

let run_discipline ~ordered ~n =
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let cnode = Net.add_node net ~name:"client" in
  let snode = Net.add_node net ~name:"server" in
  let chub = CH.create_hub ~net:(net, cnode) () in
  let shub = CH.create_hub ~net:(net, snode) () in
  let server = G.create shub ~name:"server" in
  G.register_group server ~group:"main"
    ~config:Cstream.Group_config.(default |> with_reply_config stream_cfg |> with_ordered ordered)
    ();
  let executed = ref [] in
  G.register server ~group:"main" Fixtures.work_sig (fun ctx i ->
      S.sleep ctx.G.sched (service_of i);
      executed := i :: !executed;
      Ok i);
  let reply_inversions = ref 0 in
  let last_reply = ref (-1) in
  let time =
    Fixtures.timed_run sched (fun () ->
        let agent = Core.Agent.create chub ~name:"bench" ~config:stream_cfg () in
        let h = R.bind agent ~dst:(Net.address snode) ~gid:"main" Fixtures.work_sig in
        let promises =
          List.init n (fun i ->
              let p = R.stream_call h i in
              P.on_ready p (fun _ ->
                  (* replies must become ready in call order either way *)
                  if i < !last_reply then incr reply_inversions;
                  if i > !last_reply then last_reply := i);
              p)
        in
        R.flush h;
        List.iter (fun p -> ignore (P.claim p : (int, Core.Sigs.nothing) P.outcome)) promises)
  in
  let executed = List.rev !executed in
  let exec_inversions =
    let rec count prev = function
      | [] -> 0
      | i :: rest -> (if i < prev then 1 else 0) + count (max prev i) rest
    in
    count (-1) executed
  in
  (time, exec_inversions, !reply_inversions)

let a1 ?(n = 50) () =
  let rows =
    List.map
      (fun ordered ->
        let time, exec_inv, reply_inv = run_discipline ~ordered ~n in
        [
          (if ordered then "in order (paper default)" else "concurrent (override)");
          Table.cell_ms time;
          Table.cell_i exec_inv;
          Table.cell_i reply_inv;
        ])
      [ true; false ]
  in
  Table.make ~id:"A1"
    ~title:
      (Printf.sprintf
         "ablation: receiver execution discipline, %d calls with uneven service times" n)
    ~header:[ "execution"; "completion"; "exec inversions"; "reply inversions" ]
    ~notes:
      [
        "§2.1: by default \"the Argus system will delay its execution until all earlier \
         calls on its stream have completed\"; the footnoted override executes calls \
         concurrently — faster under uneven service times, but the calls no longer appear \
         to happen in call order (exec inversions > 0). Reply order is preserved either \
         way, so promises still become ready in call order.";
      ]
    rows

(* --- A2: buffering policy ------------------------------------------ *)

let a2 ?(n = 200) () =
  let policies =
    [
      ("size only (B=16)", { CH.default_config with CH.max_batch = 16; flush_interval = infinity });
      ("timer only (1 ms)", { CH.default_config with CH.max_batch = 100000; flush_interval = 1e-3 });
      ("timer only (5 ms)", { CH.default_config with CH.max_batch = 100000; flush_interval = 5e-3 });
      ("size + timer (default)", { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 });
    ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        (* The ablation varies the sender's call buffering only; replies
           use the default policy (a size-only reply buffer would hold
           the final partial batch forever and hang synch). *)
        let pair =
          Fixtures.make_pair ~service:50e-6
            ~group_config:Cstream.Group_config.(default |> with_reply_config stream_cfg)
            ()
        in
        let h = Fixtures.work_handle pair ~config:cfg ~agent:"bench" () in
        let time =
          Fixtures.timed_run pair.Fixtures.sched (fun () ->
              for i = 1 to n do
                ignore (R.stream_call h i : (int, Core.Sigs.nothing) P.t)
              done;
              match R.synch h with
              | Ok () -> ()
              | Error _ -> failwith "stream broke")
        in
        let msgs =
          Sim.Stats.count (Sim.Stats.counter (Net.stats pair.Fixtures.net) "msgs_sent")
        in
        [ name; Table.cell_ms time; Table.cell_i msgs ])
      policies
  in
  Table.make ~id:"A2" ~title:(Printf.sprintf "ablation: sender buffering policy, %d calls" n)
    ~header:[ "policy"; "completion"; "msgs" ]
    ~notes:
      [
        "§2: \"stream calls and their replies are buffered and sent when convenient\" — a \
         size trigger alone leaves stragglers to the explicit flush/synch, a timer alone \
         trades latency for batching, and the combination (the default here) gets both.";
      ]
    rows
