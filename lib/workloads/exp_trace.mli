(** Causal trace dumps (docs/TRACING.md): deterministic scenarios run
    with the scheduler's {!Sim.Span} store enabled, rendered as
    per-promise timelines plus a per-stream gantt. Backing for the
    [experiments --trace] flag and the CI trace artifact. *)

val render_pipelined : ?depth:int -> unit -> string
(** A pipelined dependent-call chain (default depth 4, as E13): one
    trace per link; the dump asserts the last link traversed every
    pipelined edge (issue → … → park → substitute → execute → reply →
    claim) and says so in the output. *)

val render_resubmit : ?seed:int -> ?n:int -> ?horizon:float -> unit -> string
(** A small chaos run ({!Exp_chaos.trace_story}): the timelines of the
    calls that crossed a stream incarnation. *)

val dump : ?depth:int -> ?seed:int -> ?n:int -> ?horizon:float -> unit -> string
(** Both scenarios, concatenated. *)

val render_diff : ?depth:int -> unit -> string
(** The {!Sim.Span.diff} tool demonstrated twice, backing
    [experiments --trace-diff] (docs/TRACING.md): two same-seed runs of
    the pipelined chain diff empty (determinism), and pipelined vs
    claim-each-link differ by the park/substitute edges only the
    pipelined run takes. Emits a WARNING line (the CI gate) if either
    expectation fails. *)
