(** Causal trace dumps (docs/TRACING.md): deterministic scenarios run
    with the scheduler's {!Sim.Span} store enabled, rendered as
    per-promise timelines plus a per-stream gantt. Backing for the
    [experiments --trace] flag and the CI trace artifact. *)

val render_pipelined : ?depth:int -> unit -> string
(** A pipelined dependent-call chain (default depth 4, as E13): one
    trace per link; the dump asserts the last link traversed every
    pipelined edge (issue → … → park → substitute → execute → reply →
    claim) and says so in the output. *)

val render_resubmit : ?seed:int -> ?n:int -> ?horizon:float -> unit -> string
(** A small chaos run ({!Exp_chaos.trace_story}): the timelines of the
    calls that crossed a stream incarnation. *)

val dump : ?depth:int -> ?seed:int -> ?n:int -> ?horizon:float -> unit -> string
(** Both scenarios, concatenated. *)
