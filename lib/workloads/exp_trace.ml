(* Causal trace dumps (docs/TRACING.md): small deterministic scenarios
   run with the scheduler's span store enabled, rendered as per-promise
   timelines and a per-stream gantt. Driven by `experiments --trace`
   (and archived as a CI artifact); the chaos gate prints the
   companion {!Exp_chaos.trace_story} when an invariant breaks. *)

module S = Sched.Scheduler
module P = Core.Promise
module R = Core.Remote
module CH = Cstream.Chanhub
module G = Argus.Guardian

(* Batching config matching E13: a pipelined chain coalesces into one
   message, so the timelines show one Transmit per packet, not per
   call. *)
let chain_config = { CH.default_config with CH.max_batch = 16; flush_interval = 1e-3 }

(* E13's pipelined chain, traced: a root call plus [depth - 1]
   dependent calls, each referencing the previous not-yet-ready result
   ({!Remote.pipe}). Returns the span store and the last link's trace
   id. The group executes unordered (the §2.1 override) with a real
   per-call service time, so each dependent call dispatches while its
   producer is still executing and genuinely {e parks}: its timeline
   shows the full pipelined story — issue → enqueue → transmit →
   deliver → dispatch → park → substitute → execute → reply → claim. *)
let pipelined_chain ?(depth = 4) () =
  let pair =
    Fixtures.make_pair
      ~cfg:{ Net.default_config with Net.wire_latency = 1e-3 }
      ~group_config:
        Cstream.Group_config.(
          default |> with_reply_config chain_config |> with_ordered false)
      ()
  in
  let spans = S.spans pair.Fixtures.sched in
  Sim.Span.enable spans true;
  G.register pair.Fixtures.server ~group:"main" Fixtures.work_sig (fun ctx n ->
      S.sleep ctx.G.sched 2e-3;
      Ok (n + 1));
  let last = ref None in
  ignore
    (Fixtures.timed_run pair.Fixtures.sched (fun () ->
         let h = Fixtures.work_handle pair ~config:chain_config ~agent:"tracer" () in
         let p = ref (R.stream_call h 0) in
         for _ = 2 to depth do
           p := R.stream_call_p h (R.pipe !p)
         done;
         R.flush h;
         (match P.claim !p with
         | P.Normal v when v = depth -> ()
         | P.Normal v -> failwith (Printf.sprintf "chain returned %d, wanted %d" v depth)
         | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "pipelined chain failed");
         last := P.trace !p)
      : float);
  (spans, !last)

(* The edges a pipelined dependent call must traverse, in order; the
   dump asserts the last link saw every one of them, so the rendered
   story is also a checked invariant. *)
let pipelined_edges =
  Sim.Span.
    [ Issue; Enqueue; Transmit; Deliver; Dispatch; Park; Substitute; Exec_begin; Exec_end;
      Reply; Ack; Claim ]

let render_pipelined ?depth () =
  let spans, last = pipelined_chain ?depth () in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "== trace: pipelined dependent-call chain (one trace per link; dependents park at \
     the receiver until their producer replies) ==\n\n";
  List.iter
    (fun tid ->
      Buffer.add_string buf (Sim.Span.timeline spans ~trace:tid);
      Buffer.add_char buf '\n')
    (Sim.Span.trace_ids spans);
  Buffer.add_string buf (Sim.Span.gantt spans);
  (match last with
  | None -> Buffer.add_string buf "\nWARNING: last link carried no trace id\n"
  | Some tid ->
      let missing =
        List.filter (fun k -> not (Sim.Span.has spans ~trace:tid k)) pipelined_edges
      in
      if missing = [] then
        Printf.bprintf buf
          "\nlast link (trace %d) traversed every pipelined edge: %s\n" tid
          (String.concat " -> " (List.map Sim.Span.kind_label pipelined_edges))
      else
        Printf.bprintf buf "\nWARNING: last link (trace %d) is missing edges: %s\n" tid
          (String.concat ", " (List.map Sim.Span.kind_label missing)));
  Buffer.contents buf

(* Crash + resubmit, traced: the chaos scenario at a small scale. The
   interesting timelines are the calls whose trace ids survive a break
   and reappear on the next incarnation. *)
let render_resubmit ?(seed = 1000) ?(n = 40) ?(horizon = 0.6) () =
  Exp_chaos.trace_story ~seed ~n ~horizon ()

let dump ?depth ?seed ?n ?horizon () =
  render_pipelined ?depth () ^ "\n" ^ render_resubmit ?seed ?n ?horizon ()

(* --- two-run diff (Sim.Span.diff, `experiments --trace-diff`) ------- *)

(* The same chain with every link claimed before the next is issued: no
   references cross the wire, so dependents never park or substitute at
   the receiver. Diffed against the pipelined run, those are exactly
   the edges that should show up left-only. *)
let claim_each_chain ?(depth = 4) () =
  let pair =
    Fixtures.make_pair
      ~cfg:{ Net.default_config with Net.wire_latency = 1e-3 }
      ~group_config:
        Cstream.Group_config.(
          default |> with_reply_config chain_config |> with_ordered false)
      ()
  in
  let spans = S.spans pair.Fixtures.sched in
  Sim.Span.enable spans true;
  G.register pair.Fixtures.server ~group:"main" Fixtures.work_sig (fun ctx n ->
      S.sleep ctx.G.sched 2e-3;
      Ok (n + 1));
  ignore
    (Fixtures.timed_run pair.Fixtures.sched (fun () ->
         let h = Fixtures.work_handle pair ~config:chain_config ~agent:"tracer" () in
         let v = ref 0 in
         for _ = 1 to depth do
           let p = R.stream_call h !v in
           R.flush h;
           match P.claim p with
           | P.Normal r -> v := r
           | P.Signal _ | P.Unavailable _ | P.Failure _ ->
               failwith "claim-each chain failed"
         done;
         if !v <> depth then
           failwith (Printf.sprintf "chain returned %d, wanted %d" !v depth))
      : float);
  spans

(* Both demonstrations of the diff tool, WARNING-gated like the dump:
   two same-seed runs of the pipelined chain must take identical edges
   (the determinism story, the same property test/test_domains.ml
   regresses), and pipelined-vs-claim-each must differ by at least the
   park/substitute edges only the pipelined run takes. *)
let render_diff ?(depth = 4) () =
  let buf = Buffer.create 4096 in
  let spans_a, _ = pipelined_chain ~depth () in
  let spans_b, _ = pipelined_chain ~depth () in
  let same = Sim.Span.diff spans_a spans_b in
  Buffer.add_string buf
    "== trace diff: pipelined chain vs itself (same seed, run twice) ==\n\n";
  Printf.bprintf buf "%s\n" (Format.asprintf "%a" Sim.Span.pp_diff same);
  if same <> [] then
    Buffer.add_string buf "WARNING: two same-seed runs took different edges\n";
  let spans_claim = claim_each_chain ~depth () in
  let delta = Sim.Span.diff spans_a spans_claim in
  Buffer.add_string buf
    "\n== trace diff: pipelined chain (left) vs claim-each-link chain (right) ==\n\n";
  Printf.bprintf buf "%s\n" (Format.asprintf "%a" Sim.Span.pp_diff delta);
  let left_has kind =
    List.exists
      (fun (side, e) -> side = `Left && e.Sim.Span.ev_kind = kind)
      delta
  in
  if left_has Sim.Span.Park && left_has Sim.Span.Substitute then
    Buffer.add_string buf
      "pipelined-only edges present: dependents park and substitute at the receiver; \
       the claim-each run round-trips instead\n"
  else
    Buffer.add_string buf
      "WARNING: expected left-only park/substitute edges in the pipelined run\n";
  Buffer.contents buf
