(* Experiments E3 and E4: stream composition (§4).

   E3 — the grades pipeline: Figure 3-1 (two sequential loops) vs
   Figure 4-2 (coenter with a promise queue). The win comes from
   overlapping the production of inputs with recording and printing.

   E4 — a three-level read/compute/write cascade: staged loops vs
   process-per-stream vs process-per-item, on 1 and 4 CPUs, with cheap
   and expensive filters (§4.3's discussion). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise

let stream_cfg = { CH.default_config with CH.max_batch = 8; flush_interval = 1e-3 }

(* --- E3 ----------------------------------------------------------- *)

(* [produce_cost] models reading the next student record from local
   storage — the incremental "elements" iterator of Figure 3-1. *)

let grades_fig31 ~n ~svc ~produce_cost =
  let w =
    Fixtures.make_grades_world ~db_service:svc ~print_service:svc
      ~group_config:Cstream.Group_config.(default |> with_reply_config stream_cfg)
      ()
  in
  let students = Fixtures.students n in
  let time =
    Fixtures.timed_run w.Fixtures.g_sched (fun () ->
        let record_grade = Fixtures.db_handle w ~config:stream_cfg ~agent:"c-db" () in
        let print = Fixtures.print_handle w ~config:stream_cfg ~agent:"c-pr" () in
        (* loop 1: produce each record, stream record_grade, keep promise *)
        let averages =
          List.map
            (fun s ->
              S.sleep w.Fixtures.g_sched produce_cost;
              R.stream_call record_grade s)
            students
        in
        R.flush record_grade;
        (* loop 2: claim in order, stream print *)
        List.iter2
          (fun (stu, _) avg_p ->
            match P.claim avg_p with
            | P.Normal avg -> R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg)
            | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "record failed")
          students averages;
        match R.synch print with Ok () -> () | Error _ -> failwith "print failed")
  in
  (time, List.length !(w.Fixtures.g_printed))

let grades_fig42 ~n ~svc ~produce_cost =
  let w =
    Fixtures.make_grades_world ~db_service:svc ~print_service:svc
      ~group_config:Cstream.Group_config.(default |> with_reply_config stream_cfg)
      ()
  in
  let students = Fixtures.students n in
  let time =
    Fixtures.timed_run w.Fixtures.g_sched (fun () ->
        let record_grade = Fixtures.db_handle w ~config:stream_cfg ~agent:"c-db" () in
        let print = Fixtures.print_handle w ~config:stream_cfg ~agent:"c-pr" () in
        Core.Compose.producer_consumer w.Fixtures.g_sched
          ~produce:(fun emit ->
            List.iter
              (fun (stu, g) ->
                S.sleep w.Fixtures.g_sched produce_cost;
                emit (stu, R.stream_call record_grade (stu, g)))
              students;
            R.flush record_grade;
            match R.synch record_grade with
            | Ok () -> ()
            | Error _ -> failwith "cannot_record")
          ~consume:(fun (stu, avg_p) ->
            match P.claim avg_p with
            | P.Normal avg -> R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg)
            | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "record failed")
          ();
        match R.synch print with Ok () -> () | Error _ -> failwith "print failed")
  in
  (time, List.length !(w.Fixtures.g_printed))

let e3 ?(svc = 0.3e-3) ?(produce_cost = 0.3e-3) () =
  let rows =
    List.concat_map
      (fun n ->
        let t31, printed31 = grades_fig31 ~n ~svc ~produce_cost in
        let t42, printed42 = grades_fig42 ~n ~svc ~produce_cost in
        assert (printed31 = n && printed42 = n);
        [
          [
            Table.cell_i n;
            Table.cell_ms t31;
            Table.cell_ms t42;
            Printf.sprintf "%.2fx" (t31 /. t42);
          ];
        ])
      [ 10; 100; 500 ]
  in
  Table.make ~id:"E3"
    ~title:
      (Printf.sprintf
         "grades pipeline: Figure 3-1 (sequential loops) vs Figure 4-2 (coenter); services %.1f \
          ms, record production %.1f ms"
         (svc *. 1e3) (produce_cost *. 1e3))
    ~header:[ "students"; "fig 3-1"; "fig 4-2"; "speedup" ]
    ~notes:
      [
        "paper claim (§4): running the loops concurrently overlaps recording with printing; \
         \"this overlapping becomes more important as the number of calls increases\"";
      ]
    rows

(* --- E4 ----------------------------------------------------------- *)

(* Three servers: read () -> int, compute int -> int, write int -> (). *)
type cascade_world = {
  cw_sched : S.t;
  cw_read : (int, int, Core.Sigs.nothing) R.h;
  cw_compute : (int, int, Core.Sigs.nothing) R.h;
  cw_write : (int, unit, Core.Sigs.nothing) R.h;
  cw_cpu : Cpu.t;
  cw_written : int ref;
}

let read_sig = Core.Sigs.hsig0 "read" ~arg:Xdr.int ~res:Xdr.int

let compute_sig = Core.Sigs.hsig0 "compute" ~arg:Xdr.int ~res:Xdr.int

let write_sig = Core.Sigs.hsig0 "write" ~arg:Xdr.int ~res:Xdr.unit

let make_cascade ?group_config ~svc ~cores () =
  let gc = Option.value group_config ~default:Cstream.Group_config.default in
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let client = Net.add_node net ~name:"client" in
  let client_hub = CH.create_hub ~net:(net, client) () in
  let mk_server name =
    let node = Net.add_node net ~name in
    let hub = CH.create_hub ~net:(net, node) () in
    (node, Argus.Guardian.create hub ~name)
  in
  let rnode, reader = mk_server "reader" in
  let cnode, computer = mk_server "computer" in
  let wnode, writer = mk_server "writer" in
  let written = ref 0 in
  Argus.Guardian.register_group reader ~group:"io" ~config:gc ();
  Argus.Guardian.register_group computer ~group:"calc" ~config:gc ();
  Argus.Guardian.register_group writer ~group:"io" ~config:gc ();
  Argus.Guardian.register reader ~group:"io" read_sig (fun ctx i ->
      S.sleep ctx.Argus.Guardian.sched svc;
      Ok (i * 3));
  Argus.Guardian.register computer ~group:"calc" compute_sig (fun ctx a ->
      S.sleep ctx.Argus.Guardian.sched svc;
      Ok (a + 1));
  Argus.Guardian.register writer ~group:"io" write_sig (fun ctx _ ->
      S.sleep ctx.Argus.Guardian.sched svc;
      incr written;
      Ok ());
  let bind gid node s ag =
    let agent = Core.Agent.create client_hub ~name:ag ~config:stream_cfg () in
    R.bind agent ~dst:(Net.address node) ~gid s
  in
  {
    cw_sched = sched;
    cw_read = bind "io" rnode read_sig "a-read";
    cw_compute = bind "calc" cnode compute_sig "a-compute";
    cw_write = bind "io" wnode write_sig "a-write";
    cw_cpu = Cpu.create sched ~cores;
    cw_written = written;
  }

let claim_int p =
  match P.claim p with
  | P.Normal v -> v
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "cascade call failed"

(* Staged loops: all reads started, then claim+filter+compute for all,
   then claim+filter+write for all (the structure §4 criticises). *)
let cascade_staged cw ~n ~filter_cost =
  let filter x =
    Cpu.consume cw.cw_cpu filter_cost;
    x
  in
  let reads = List.init n (fun i -> R.stream_call cw.cw_read i) in
  R.flush cw.cw_read;
  let computes = List.map (fun p -> R.stream_call cw.cw_compute (filter (claim_int p))) reads in
  R.flush cw.cw_compute;
  let writes = List.map (fun p -> R.stream_call cw.cw_write (filter (claim_int p))) computes in
  R.flush cw.cw_write;
  List.iter (fun p -> match P.claim p with P.Normal () -> () | _ -> failwith "write failed") writes

(* Process-per-stream: three concurrent loops joined by queues. *)
let cascade_per_stream cw ~n ~filter_cost =
  let filter x =
    Cpu.consume cw.cw_cpu filter_cost;
    x
  in
  Core.Compose.pipeline3 cw.cw_sched
    ~stage1:(fun emit ->
      for i = 0 to n - 1 do
        emit (R.stream_call cw.cw_read i)
      done;
      R.flush cw.cw_read;
      match R.synch cw.cw_read with Ok () -> () | Error _ -> failwith "read failed")
    ~stage2:(fun read_p emit ->
      emit (R.stream_call cw.cw_compute (filter (claim_int read_p))))
    ~stage3:(fun compute_p ->
      ignore (R.stream_call cw.cw_write (filter (claim_int compute_p)) : (unit, _) P.t))
    ();
  match R.synch cw.cw_write with Ok () -> () | Error _ -> failwith "write failed"

(* Process-per-item: one process moves each item through the cascade;
   sequencers keep per-stream call order; [proc_overhead] models the
   management burden of the many processes (§4.3). *)
let cascade_per_item cw ~n ~filter_cost ~proc_overhead =
  let filter x =
    Cpu.consume cw.cw_cpu filter_cost;
    x
  in
  Core.Compose.per_item cw.cw_sched
    ~items:(List.init n Fun.id)
    ~nstages:3
    ~stages:(fun item i seqs ->
      Cpu.consume cw.cw_cpu proc_overhead;
      let read_p = Core.Sequencer.with_turn seqs.(0) i (fun () -> R.stream_call cw.cw_read item) in
      let a = filter (claim_int read_p) in
      let compute_p =
        Core.Sequencer.with_turn seqs.(1) i (fun () -> R.stream_call cw.cw_compute a)
      in
      let b = filter (claim_int compute_p) in
      let write_p = Core.Sequencer.with_turn seqs.(2) i (fun () -> R.stream_call cw.cw_write b) in
      match P.claim write_p with P.Normal () -> () | _ -> failwith "write failed");
  ()

let e4 ?(n = 100) ?(svc = 0.2e-3) ?(proc_overhead = 0.05e-3) () =
  let variants =
    [
      ("staged loops", fun cw ~filter_cost -> cascade_staged cw ~n ~filter_cost);
      ("per-stream", fun cw ~filter_cost -> cascade_per_stream cw ~n ~filter_cost);
      ("per-item", fun cw ~filter_cost -> cascade_per_item cw ~n ~filter_cost ~proc_overhead);
    ]
  in
  let rows = ref [] in
  List.iter
    (fun filter_cost ->
      List.iter
        (fun cores ->
          List.iter
            (fun (vname, run) ->
              let cw = make_cascade ~svc ~cores () in
              let time = Fixtures.timed_run cw.cw_sched (fun () -> run cw ~filter_cost) in
              assert (!(cw.cw_written) = n);
              rows :=
                [
                  Printf.sprintf "%.1f" (filter_cost *. 1e3);
                  Table.cell_i cores;
                  vname;
                  Table.cell_ms time;
                ]
                :: !rows)
            variants)
        [ 1; 4 ])
    [ 0.0; 0.5e-3 ];
  Table.make ~id:"E4"
    ~title:
      (Printf.sprintf
         "read/compute/write cascade, %d items, %.1f ms services, %.2f ms per-item process \
          overhead"
         n (svc *. 1e3) (proc_overhead *. 1e3))
    ~header:[ "filter (ms)"; "CPUs"; "structure"; "completion" ]
    ~notes:
      [
        "paper claim (§4.3): per-stream beats staged loops by overlapping the levels; \
         process-per-item only pays off when filters are lengthy and the machine is a \
         multiprocessor, otherwise its process burden makes it slower";
      ]
    (List.rev !rows)
