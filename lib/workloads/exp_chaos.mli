(** E7: chaos workload — exactly-once across stream incarnations.

    A supervised client hammers a deduplicating counter guardian while
    a seeded {!Fault} scenario crashes its node, partitions the network
    and injects loss bursts. Per seed, the invariants are: no
    acknowledged increment lost, no increment applied twice, every
    accepted call resolved, and service restored by the supervisor
    alone (see [docs/FAULTS.md]). *)

type run_result = {
  r_accepted : int;
  r_rejected : int;
  r_normal : int;
  r_unavail : int;
  r_unresolved : int;
  r_doubly : int;
  r_lost : int;
  r_breaks : int;
  r_restarts : int;
  r_replays : int;
  r_restored : bool;
}

val run_one : seed:int -> n:int -> horizon:float -> run_result
(** One seeded run: [n] increments paced over [horizon] simulated
    seconds of chaos. *)

val e7 : ?seeds:int -> ?n:int -> ?horizon:float -> unit -> Table.t
(** The reportable table: one row per seed (defaults: 10 seeds, 200
    increments, 2 s horizon). *)

val check : ?seeds:int -> ?n:int -> ?horizon:float -> unit -> bool
(** [true] iff every seed upholds all four invariants; the [@chaos]
    test alias gates on this. A violated seed is re-run with the
    {!Sim.Span} store enabled and its {!trace_story} printed to stderr,
    so the failing assertion arrives with the causal timelines that
    explain it. *)

val trace_story :
  ?max_timelines:int -> seed:int -> n:int -> horizon:float -> unit -> string
(** Re-run one seed with causal tracing enabled (docs/TRACING.md) and
    render the timelines of the calls that crossed an incarnation —
    resubmitted after a break, dedup-joined onto an in-flight
    duplicate, or replayed from the dedup cache — followed by the
    per-stream gantt. [max_timelines] (default 8) bounds the timelines
    shown. *)
