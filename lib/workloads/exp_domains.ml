(* Experiment E16: fibers vs domains on the E14-shaped workload
   (docs/DOMAINS.md). E14's 5.8x at 8 lanes is simulated speedup: shard
   lanes are cooperative fibers multiplexed on one OS thread, so with
   real (wall-clock) work they serialise no matter how many lanes the
   group has. This experiment runs the same one-stream, many-key,
   CPU-bound workload with handler bodies doing {e physical} work
   (Cpu.Real — a calibrated spin kernel) and compares:

   - "fibers": lanes only, everything on the simulator domain;
   - "domains": the same lanes offloading each handler body onto a
     Sched.Pool of 1/2/4/8 worker domains (Group_config.with_offload).

   Wall-clock completion is the measurement; per-key call order,
   per-stream reply order, and the exactly-once ledger (0 lost, 0
   duplicate calls) are checked on every row — the offload moves only
   the handler body, never the ordering machinery. On an N-core
   machine the domains series drops toward serial/N; the machine
   stanza in BENCH_domains.json records the cores the numbers were
   taken on. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise

type row = {
  r_mode : string;  (** "fibers" or "domains" *)
  r_pool : int;  (** worker domains (0 on the fibers row) *)
  r_lanes : int;  (** shard lanes in the receiving group *)
  r_calls : int;
  r_wall : float;  (** wall-clock completion, seconds *)
  r_throughput : float;  (** calls per wall-clock second *)
  r_speedup : float;  (** vs the 1-domain pool row *)
  r_ordered : bool;  (** every key saw its calls in call order *)
  r_lost : int;  (** calls never executed — must be 0 *)
  r_dups : int;  (** duplicate (key, op) executions — must be 0 *)
}

let domains_sig =
  Core.Sigs.hsig0 "domain_work" ~arg:(Xdr.pair Xdr.int Xdr.int) ~res:Xdr.int

(* Deep batches so the wire feeds the lanes faster than they drain. *)
let chan_cfg = { CH.default_config with CH.max_batch = 32; flush_interval = 0.5e-3 }

(* One run: [n] calls over [keys] distinct keys into a [lanes]-sharded
   group whose handler burns [service] seconds of real work; [pool]
   decides fibers (None) vs domains (Some p). Returns the row with
   [r_speedup] unfilled. *)
let run_one ~mode ~pool ~lanes ~n ~keys ~service ~rate () =
  let sched = S.create ~seed:42 () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let cpu = Cpu.create ~mode:(Cpu.Real rate) sched ~cores:lanes in
  let pool_t = Option.map (fun p -> Sched.Pool.create sched ~domains:p) pool in
  let config =
    let base =
      Cstream.Group_config.(default |> with_reply_config chan_cfg |> with_shards lanes)
    in
    match pool_t with
    | Some p -> Cstream.Group_config.with_offload p base
    | None -> base
  in
  G.register_group server ~group:"hot" ~config ();
  (* Per-key order book. With offload, handler bodies touch it from
     several worker domains at once (different keys — same-key calls
     stay serialised by their lane), so it is mutex-guarded. *)
  let book_m = Stdlib.Mutex.create () in
  let seen : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let ordered = ref true in
  G.register server ~group:"hot" domains_sig (fun _ctx (key, op) ->
      Stdlib.Mutex.lock book_m;
      (match Hashtbl.find_opt seen key with
      | Some (last :: _) when last >= op -> ordered := false
      | _ -> ());
      Hashtbl.replace seen key (op :: Option.value ~default:[] (Hashtbl.find_opt seen key));
      Stdlib.Mutex.unlock book_m;
      Cpu.consume cpu service;
      Ok op);
  let wall0 = Unix.gettimeofday () in
  ignore
    (Fixtures.timed_run sched (fun () ->
         let ag = Core.Agent.create client_hub ~name:"load" ~config:chan_cfg () in
         let h = R.bind ag ~dst:(Net.address server_node) ~gid:"hot" domains_sig in
         let promises =
           List.init n (fun i -> R.stream_call h (i mod keys, i / keys))
         in
         R.flush h;
         List.iter
           (fun p ->
             match P.claim p with
             | P.Normal _ -> ()
             | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "E16: call failed")
           promises)
      : float);
  let wall = Unix.gettimeofday () -. wall0 in
  Option.iter Sched.Pool.shutdown pool_t;
  (* The exactly-once ledger: every (key, op) issued appears in the
     book exactly once, in increasing op order per key. *)
  let executed = Hashtbl.fold (fun _ ops acc -> acc + List.length ops) seen 0 in
  let dups =
    Hashtbl.fold
      (fun _ ops acc ->
        let sorted = List.sort_uniq compare ops in
        acc + (List.length ops - List.length sorted))
      seen 0
  in
  {
    r_mode = mode;
    r_pool = (match pool with Some p -> p | None -> 0);
    r_lanes = lanes;
    r_calls = n;
    r_wall = wall;
    r_throughput = float_of_int n /. wall;
    r_speedup = 1.0 (* filled in against the 1-domain row below *);
    r_ordered = !ordered;
    r_lost = n - executed + dups;
    r_dups = dups;
  }

let e16_rows ?(n = 64) ?(keys = 16) ?(lanes = 8) ?(service = 1e-3)
    ?(pool_sizes = [ 1; 2; 4; 8 ]) () =
  let rate = Cpu.calibrate () in
  let fibers = run_one ~mode:"fibers" ~pool:None ~lanes ~n ~keys ~service ~rate () in
  let domains =
    List.map
      (fun p -> run_one ~mode:"domains" ~pool:(Some p) ~lanes ~n ~keys ~service ~rate ())
      pool_sizes
  in
  let rows = fibers :: domains in
  (* Normalise to the 1-domain pool row: it pays the full offload
     machinery with no parallelism, so it is the honest baseline for
     the domains series (and close to the fibers row). *)
  match List.find_opt (fun r -> r.r_pool = 1) rows with
  | None -> rows
  | Some base -> List.map (fun r -> { r with r_speedup = base.r_wall /. r.r_wall }) rows

let e16 ?n ?keys ?lanes ?service ?pool_sizes () =
  let rows = e16_rows ?n ?keys ?lanes ?service ?pool_sizes () in
  let render r =
    [
      r.r_mode;
      (if r.r_pool = 0 then "-" else Table.cell_i r.r_pool);
      Table.cell_i r.r_lanes;
      Table.cell_i r.r_calls;
      Table.cell_ms r.r_wall;
      Table.cell_f r.r_throughput;
      Table.cell_f r.r_speedup;
      (if r.r_ordered then "yes" else "NO");
      Table.cell_i r.r_lost;
      Table.cell_i r.r_dups;
    ]
  in
  Table.make ~id:"E16"
    ~title:
      (Printf.sprintf
         "multicore lanes: real CPU-bound handlers, fibers vs domain pool (wall-clock, %d \
          cores available)"
         (Domain.recommended_domain_count ()))
    ~header:
      [
        "mode"; "pool"; "lanes"; "calls"; "completion"; "calls/s"; "speedup"; "per-key order";
        "lost"; "dups";
      ]
    ~notes:
      [
        "the E14 workload with physical work: handlers burn calibrated wall-clock CPU \
         (Cpu.Real) instead of charging virtual time; 'fibers' runs them on the simulator \
         domain, 'domains' offloads each body onto a Sched.Pool (docs/DOMAINS.md)";
        "speedup is against the 1-domain pool row; on a single-core machine the series is \
         flat — physical parallelism needs physical cores (the machine stanza in \
         BENCH_domains.json records how many this run had)";
        "per-key call order, per-stream reply order and the exactly-once ledger (lost = \
         dups = 0) are asserted on every row: the offload moves only the handler body";
      ]
    (List.map render rows)

(* The acceptance gate: domains at 4 vs domains at 1 on the same
   workload. >= 2 on a >= 4-core machine; ~1 on fewer cores. *)
let speedup_4v1 ?(n = 64) ?(service = 1e-3) () =
  let rows = e16_rows ~n ~service ~pool_sizes:[ 1; 4 ] () in
  match List.filter (fun r -> r.r_mode = "domains") rows with
  | [ _; r4 ] -> r4.r_speedup
  | _ -> assert false
