module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote

type pair = {
  sched : S.t;
  net : CH.frame Net.t;
  client_node : Net.node;
  server_node : Net.node;
  client_hub : CH.hub;
  server : G.t;
}

let work_sig = Core.Sigs.hsig0 "work" ~arg:Xdr.int ~res:Xdr.int

let make_pair ?(cfg = Net.default_config) ?(seed = 42) ?(service = 0.0) ?group_config
    ?(ack_delay = 0.0) () =
  let sched = S.create ~seed () in
  let net = Net.create sched cfg in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~ack_delay ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~ack_delay ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  (match group_config with
  | Some gc -> G.register_group server ~group:"main" ~config:gc ()
  | None -> ());
  G.register server ~group:"main" work_sig (fun ctx n ->
      if service > 0.0 then S.sleep ctx.G.sched service;
      Ok n);
  { sched; net; client_node; server_node; client_hub; server }

let work_handle pair ?config ~agent () =
  let ag = Core.Agent.create pair.client_hub ~name:agent ?config () in
  R.bind ag ~dst:(Net.address pair.server_node) ~gid:"main" work_sig

type grades_world = {
  g_sched : S.t;
  g_net : CH.frame Net.t;
  g_client_node : Net.node;
  g_db_node : Net.node;
  g_printer_node : Net.node;
  g_client_hub : CH.hub;
  g_db : G.t;
  g_printer : G.t;
  g_printed : string list ref;
  g_db_busy : (float * float) list ref;
  g_print_busy : (float * float) list ref;
}

let record_grade_sig =
  Core.Sigs.hsig0 "record_grade" ~arg:(Xdr.pair Xdr.string Xdr.int) ~res:Xdr.real

let print_sig = Core.Sigs.hsig0 "print" ~arg:Xdr.string ~res:Xdr.unit

let make_grades_world ?(cfg = Net.default_config) ?(seed = 42) ?(db_service = 0.0)
    ?(print_service = 0.0) ?group_config () =
  let sched = S.create ~seed () in
  let net = Net.create sched cfg in
  let g_client_node = Net.add_node net ~name:"client" in
  let g_db_node = Net.add_node net ~name:"db" in
  let g_printer_node = Net.add_node net ~name:"printer" in
  let g_client_hub = CH.create_hub ~net:(net, g_client_node) () in
  let db_hub = CH.create_hub ~net:(net, g_db_node) () in
  let printer_hub = CH.create_hub ~net:(net, g_printer_node) () in
  let g_db = G.create db_hub ~name:"grades-db" in
  let g_printer = G.create printer_hub ~name:"printer" in
  (match group_config with
  | Some gc ->
      G.register_group g_db ~group:"grades" ~config:gc ();
      G.register_group g_printer ~group:"output" ~config:gc ()
  | None -> ());
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let g_db_busy = ref [] and g_print_busy = ref [] in
  let busy intervals ctx dt =
    let start = S.now ctx.G.sched in
    if dt > 0.0 then S.sleep ctx.G.sched dt;
    intervals := (start, S.now ctx.G.sched) :: !intervals
  in
  G.register g_db ~group:"grades" record_grade_sig (fun ctx (stu, grade) ->
      busy g_db_busy ctx db_service;
      let count, total = Option.value ~default:(0, 0) (Hashtbl.find_opt totals stu) in
      let count = count + 1 and total = total + grade in
      Hashtbl.replace totals stu (count, total);
      Ok (float_of_int total /. float_of_int count));
  let g_printed = ref [] in
  G.register g_printer ~group:"output" print_sig (fun ctx line ->
      busy g_print_busy ctx print_service;
      g_printed := line :: !g_printed;
      Ok ());
  {
    g_sched = sched;
    g_net = net;
    g_client_node;
    g_db_node;
    g_printer_node;
    g_client_hub;
    g_db;
    g_printer;
    g_printed;
    g_db_busy;
    g_print_busy;
  }

let students n =
  List.init n (fun i -> (Printf.sprintf "stu%05d" i, 50 + ((i * 7919) mod 50)))

let db_handle w ?config ~agent () =
  let ag = Core.Agent.create w.g_client_hub ~name:agent ?config () in
  R.bind ag ~dst:(Net.address w.g_db_node) ~gid:"grades" record_grade_sig

let print_handle w ?config ~agent () =
  let ag = Core.Agent.create w.g_client_hub ~name:agent ?config () in
  R.bind ag ~dst:(Net.address w.g_printer_node) ~gid:"output" print_sig

exception Deadlock of string list

let timed_run sched body =
  let finished_at = ref nan in
  let failed = ref None in
  ignore
    (S.spawn sched ~name:"experiment-main" (fun () ->
         (match body () with () -> () | exception e -> failed := Some e);
         finished_at := S.now sched));
  (match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked fs -> raise (Deadlock (List.map S.fiber_name fs))
  | S.Time_limit -> failwith "timed_run: time limit");
  (match !failed with Some e -> raise e | None -> ());
  if Float.is_nan !finished_at then failwith "timed_run: body did not finish";
  !finished_at
