(* Experiment E6: what happens when a stream breaks mid-composition
   (§2, §4.1, §4.2).

   The grades pipeline runs while the database node crashes partway
   through. The fork-structured program (Figure 4-1) hangs: the
   printing process waits forever on the promise queue — our runtime
   detects the deadlock. The coenter-structured program (Figure 4-2)
   terminates the whole group and surfaces the exception; we measure
   how long cleanup takes after the break is detected. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise

(* Fast break detection so the break lands mid-production. *)
let stream_cfg =
  {
    CH.default_config with
    CH.max_batch = 4;
    flush_interval = 0.5e-3;
    retransmit_timeout = 2e-3;
    max_retries = 3;
  }

type result_row = { variant : string; outcome : string; cleanup : string }

(* Crash the db node at [crash_at] seconds into the run. *)
let run_variant ~variant ~n ~crash_at =
  let svc = 0.5e-3 in
  let w =
    Fixtures.make_grades_world ~db_service:svc ~print_service:svc
      ~group_config:Cstream.Group_config.(default |> with_reply_config stream_cfg)
      ()
  in
  let students = Fixtures.students n in
  S.at w.Fixtures.g_sched crash_at (fun () -> Net.crash w.Fixtures.g_net w.Fixtures.g_db_node);
  let break_seen = ref nan in
  let record_break record_grade =
    Cstream.Stream_end.on_break (R.stream record_grade) (fun _ ->
        break_seen := S.now w.Fixtures.g_sched)
  in
  let produce record_grade emit =
    List.iter
      (fun (stu, g) ->
        S.sleep w.Fixtures.g_sched 0.2e-3;
        emit (stu, R.stream_call record_grade (stu, g)))
      students;
    R.flush record_grade;
    match R.synch record_grade with
    | Ok () -> ()
    | Error _ -> failwith "cannot_record"
  in
  let consume print (stu, avg_p) =
    match P.claim avg_p with
    | P.Normal avg -> R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg)
    | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "cannot_record"
  in
  match variant with
  | `Coenter -> (
      let outcome = ref "completed (unexpected)" in
      let finished_at = ref nan in
      match
        Fixtures.timed_run w.Fixtures.g_sched (fun () ->
            let record_grade = Fixtures.db_handle w ~config:stream_cfg ~agent:"c-db" () in
            let print = Fixtures.print_handle w ~config:stream_cfg ~agent:"c-pr" () in
            record_break record_grade;
            (try
               Core.Compose.producer_consumer w.Fixtures.g_sched
                 ~produce:(produce record_grade) ~consume:(consume print) ()
             with Failure m | P.Unavailable_exn m ->
               outcome := "exception: " ^ m);
            finished_at := S.now w.Fixtures.g_sched)
      with
      | _t ->
          {
            variant = "coenter (fig 4-2)";
            outcome = !outcome;
            cleanup =
              (if Float.is_nan !break_seen then "-"
               else Table.cell_ms (!finished_at -. !break_seen));
          }
      | exception Fixtures.Deadlock _ ->
          { variant = "coenter (fig 4-2)"; outcome = "DEADLOCK (unexpected)"; cleanup = "-" })
  | `Fork -> (
      match
        Fixtures.timed_run w.Fixtures.g_sched (fun () ->
            let record_grade = Fixtures.db_handle w ~config:stream_cfg ~agent:"c-db" () in
            let print = Fixtures.print_handle w ~config:stream_cfg ~agent:"c-pr" () in
            record_break record_grade;
            let aveq = Sched.Bqueue.create w.Fixtures.g_sched in
            let p1 =
              Core.Fork.fork w.Fixtures.g_sched ~name:"use_db" (fun () ->
                  try
                    produce record_grade (fun x -> Sched.Bqueue.enq aveq x);
                    Ok ()
                  with Failure _ | P.Unavailable_exn _ | P.Failure_exn _ ->
                    Error `Cannot_record)
            in
            let p2 =
              Core.Fork.fork w.Fixtures.g_sched ~name:"do_print" (fun () ->
                  (* A tolerant printer: prints whatever it can get,
                     and expects one queue item per student — so when
                     the recording process gives up early, it parks on
                     the empty queue forever (§4.1). *)
                  List.iter
                    (fun _ ->
                      let stu, avg_p = Sched.Bqueue.deq aveq in
                      let avg =
                        match P.claim avg_p with
                        | P.Normal avg -> avg
                        | P.Signal _ | P.Unavailable _ | P.Failure _ -> nan
                      in
                      R.stream_call_ print (Printf.sprintf "%s: %.1f" stu avg))
                    students;
                  Ok ())
            in
            ignore (P.claim p1 : (unit, _) P.outcome);
            ignore (P.claim p2 : (unit, _) P.outcome))
      with
      | _t -> { variant = "forks (fig 4-1)"; outcome = "completed (unexpected)"; cleanup = "-" }
      | exception Fixtures.Deadlock names ->
          {
            variant = "forks (fig 4-1)";
            outcome =
              Printf.sprintf "HANGS: %s blocked forever"
                (String.concat ", "
                   (List.filter (fun n -> n = "do_print" || n = "use_db") names));
            cleanup = "never";
          })

let e6 ?(n = 100) ?(crash_at = 8e-3) () =
  let rows =
    List.map
      (fun variant ->
        let r = run_variant ~variant ~n ~crash_at in
        [ r.variant; r.outcome; r.cleanup ])
      [ `Fork; `Coenter ]
  in
  Table.make ~id:"E6"
    ~title:
      (Printf.sprintf "grades pipeline with db crash at %.0f ms (%d students)" (crash_at *. 1e3)
         n)
    ~header:[ "structure"; "outcome"; "cleanup after break" ]
    ~notes:
      [
        "paper claims: broken streams surface as unavailable/failure exceptions (§2); the \
         fork composition can hang forever (§4.1); the coenter terminates the group and \
         propagates the exception (§4.2)";
      ]
    rows
