(* Experiment E12: the wire itself. With the binary codec every byte
   charged by the simulator is a byte that would really travel, so the
   paper's §2 message-economy claim becomes measurable end to end:
   packets per call, bytes per call, calls per packet — RPC vs stream
   vs send — and on top of that what ack piggybacking and Nagle-style
   adaptive flushing buy on the bidirectional call/reply workload. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise

type mode = Rpc | Stream of int | Send_mode of int | Adaptive

let mode_name = function
  | Rpc -> "RPC"
  | Stream b -> Printf.sprintf "stream B=%d" b
  | Send_mode b -> Printf.sprintf "send B=%d" b
  | Adaptive -> "stream adaptive"

let chan_config = function
  | Rpc -> CH.rpc_config
  | Stream b | Send_mode b -> { CH.default_config with CH.max_batch = b; flush_interval = 1e-3 }
  | Adaptive -> CH.adaptive_config

type row = {
  r_mode : string;
  r_piggyback : bool;
  r_calls : int;
  r_time : float;  (** completion (simulated seconds) *)
  r_msgs : int;  (** network messages of any kind *)
  r_bytes : int;  (** actual encoded bytes on the wire *)
  r_data_pkts : int;
  r_ack_pkts : int;  (** standalone Ack packets *)
  r_piggybacked : int;  (** acks that rode on reverse-direction Data *)
  r_standalone : int;  (** acks that needed their own packet *)
  r_decode_errors : int;  (** frames that failed to decode at a receiver *)
}

let calls_per_data_pkt r =
  (* Call items and reply items both count; divide by 2 to get calls. *)
  if r.r_data_pkts = 0 then 0.0
  else float_of_int r.r_calls *. 2.0 /. float_of_int r.r_data_pkts

let run_mode ?(n = 400) ~mode ~piggyback () =
  let ack_delay = if piggyback then 1e-3 else 0.0 in
  let ccfg = chan_config mode in
  let pair =
    Fixtures.make_pair
      ~cfg:{ Net.default_config with Net.wire_latency = 1e-3 }
      ~service:0.0
      ~group_config:Cstream.Group_config.(default |> with_reply_config ccfg)
      ~ack_delay ()
  in
  let h = Fixtures.work_handle pair ~config:ccfg ~agent:"bench" () in
  let time =
    Fixtures.timed_run pair.Fixtures.sched (fun () ->
        (match mode with
        | Rpc ->
            for i = 1 to n do
              match R.rpc h i with
              | P.Normal _ -> ()
              | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "rpc failed"
            done
        | Stream _ | Adaptive ->
            for i = 1 to n do
              ignore (R.stream_call h i : (int, Core.Sigs.nothing) P.t)
            done
        | Send_mode _ ->
            for i = 1 to n do
              R.send h i
            done);
        match mode with
        | Rpc -> ()
        | Stream _ | Adaptive | Send_mode _ -> (
            match R.synch h with Ok () -> () | Error _ -> failwith "stream broke"))
  in
  let net_stats = Net.stats pair.Fixtures.net in
  let chan_stats = S.stats pair.Fixtures.sched in
  {
    r_mode = mode_name mode;
    r_piggyback = piggyback;
    r_calls = n;
    r_time = time;
    r_msgs = Sim.Stats.peek net_stats "msgs_sent";
    r_bytes = Sim.Stats.peek net_stats "bytes_sent";
    r_data_pkts = Sim.Stats.peek chan_stats "chan_data_packets";
    r_ack_pkts = Sim.Stats.peek chan_stats "chan_ack_packets";
    r_piggybacked = Sim.Stats.peek chan_stats "chan_piggybacked_acks";
    r_standalone = Sim.Stats.peek chan_stats "chan_standalone_acks";
    r_decode_errors = Sim.Stats.peek chan_stats "chan_decode_errors";
  }

let e12_rows ?(n = 400) () =
  List.concat_map
    (fun mode ->
      List.map (fun piggyback -> run_mode ~n ~mode ~piggyback ()) [ false; true ])
    [ Rpc; Stream 16; Send_mode 16; Adaptive ]

let e12 ?(n = 400) () =
  let rows = e12_rows ~n () in
  let render r =
    let ratio =
      let total = r.r_piggybacked + r.r_standalone in
      if total = 0 then "-"
      else Printf.sprintf "%.0f%%" (100.0 *. float_of_int r.r_piggybacked /. float_of_int total)
    in
    [
      r.r_mode;
      (if r.r_piggyback then "on" else "off");
      Table.cell_i r.r_msgs;
      Table.cell_i r.r_bytes;
      Table.cell_f (float_of_int r.r_msgs /. float_of_int r.r_calls);
      Table.cell_f (float_of_int r.r_bytes /. float_of_int r.r_calls);
      Table.cell_f (calls_per_data_pkt r);
      Table.cell_i r.r_ack_pkts;
      Table.cell_i r.r_piggybacked;
      Table.cell_i r.r_standalone;
      ratio;
      Table.cell_i r.r_decode_errors;
      Table.cell_ms r.r_time;
    ]
  in
  Table.make ~id:"E12"
    ~title:(Printf.sprintf "binary wire: packets and bytes for %d calls (1 ms latency)" n)
    ~header:
      [
        "mode"; "piggyback"; "msgs"; "bytes"; "msgs/call"; "bytes/call"; "items/data pkt";
        "ack pkts"; "piggy acks"; "solo acks"; "acks ridden"; "decode errs"; "completion";
      ]
    ~notes:
      [
        "paper claim (§2): buffering many calls into one message amortises per-message costs; \
         protocol traffic (acks) piggybacks on traffic flowing the other way";
        "bytes are actual encoded sizes (Xdr.Bin, docs/WIRE.md), not the wire_size estimate; \
         'acks ridden' is the share of acks that travelled inside reverse-direction Data \
         packets ('piggy acks') instead of standalone Ack packets ('solo acks'); 'decode \
         errs' counts frames a receiver could not decode (0 on a clean run — the \
         total-decoder gate)";
        "'stream adaptive' uses Nagle-style flushing (immediate when idle, coalesce while \
         data is in flight) with a 1 KiB batch budget and an 8 KiB in-flight window";
      ]
    (List.map render rows)
