(* Experiment E14: sharded port-group execution. The paper's call
   streams execute a stream's calls strictly in order (§2.1), so a hot
   guardian serialises every call behind one driver fiber no matter how
   many cores the node has. Sharding a group across N worker lanes
   keyed by a partition of the first argument relaxes global order to
   per-key order: calls on the same key still execute in call order
   (and replies leave in per-stream call order regardless), while
   independent keys run in parallel. The independent-key series shows
   call throughput scaling with the lane count on a CPU-bound handler;
   the same-key series shows the ordering contract is kept — all calls
   collapse onto one lane and the series stays flat (docs/SHARDING.md). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise

type row = {
  r_series : string;
  r_shards : int;
  r_calls : int;
  r_time : float;  (** completion (simulated seconds) *)
  r_throughput : float;  (** calls per simulated second *)
  r_speedup : float;  (** vs the 1-shard row of the same series *)
  r_dispatches : int;  (** sharded dispatches (0 on the 1-shard rows) *)
  r_queue_hwm : int;  (** lane queue depth high-water mark *)
  r_imbalance : int;  (** max-min lane load high-water mark *)
  r_ordered : bool;  (** every key saw its calls in call order *)
}

(* (key, op) -> op; the default shard key hashes the first Pair
   component, so this shards on [key] alone. *)
let shard_sig =
  Core.Sigs.hsig0 "shard_work" ~arg:(Xdr.pair Xdr.int Xdr.int) ~res:Xdr.int

(* Deep batches so the wire feeds the lanes faster than they drain. *)
let chan_cfg = { CH.default_config with CH.max_batch = 32; flush_interval = 0.5e-3 }

let run_one ~series ~shards ~cores ~n ~service ~keys () =
  let sched = S.create ~seed:42 () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"server" in
  let cpu = Cpu.create sched ~cores in
  G.register_group server ~group:"hot"
    ~config:Cstream.Group_config.(default |> with_reply_config chan_cfg |> with_shards shards)
    ();
  (* Per-key order book: each handler call records its op under its
     key; the series is ordered iff every key's ops arrive increasing. *)
  let seen : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let ordered = ref true in
  G.register server ~group:"hot" shard_sig (fun _ctx (key, op) ->
      (match Hashtbl.find_opt seen key with
      | Some (last :: _) when last >= op -> ordered := false
      | _ -> ());
      Hashtbl.replace seen key (op :: Option.value ~default:[] (Hashtbl.find_opt seen key));
      Cpu.consume cpu service;
      Ok op);
  let time =
    Fixtures.timed_run sched (fun () ->
        let ag = Core.Agent.create client_hub ~name:"load" ~config:chan_cfg () in
        let h = R.bind ag ~dst:(Net.address server_node) ~gid:"hot" shard_sig in
        let promises =
          List.init n (fun i ->
              let key = if keys = 1 then 0 else i mod keys in
              let op = if keys = 1 then i else i / keys in
              R.stream_call h (key, op))
        in
        R.flush h;
        List.iter
          (fun p ->
            match P.claim p with
            | P.Normal _ -> ()
            | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "E14: call failed")
          promises)
  in
  let stats = S.stats sched in
  let executed = Hashtbl.fold (fun _ ops acc -> acc + List.length ops) seen 0 in
  if executed <> n then failwith "E14: not every call executed";
  {
    r_series = series;
    r_shards = shards;
    r_calls = n;
    r_time = time;
    r_throughput = float_of_int n /. time;
    r_speedup = 1.0 (* filled in against the 1-shard row below *);
    r_dispatches = Sim.Stats.peek stats "shard_dispatches";
    r_queue_hwm = Sim.Stats.peek stats "shard_queue_hwm";
    r_imbalance = Sim.Stats.peek stats "shard_imbalance";
    r_ordered = !ordered;
  }

let series ~name ~keys ~shard_counts ~cores ~n ~service () =
  let rows =
    List.map (fun shards -> run_one ~series:name ~shards ~cores ~n ~service ~keys ()) shard_counts
  in
  match rows with
  | [] -> []
  | base :: _ -> List.map (fun r -> { r with r_speedup = base.r_time /. r.r_time }) rows

let e14_rows ?(n = 240) ?(service = 1e-3) ?(cores = 8) ?(shard_counts = [ 1; 2; 4; 8 ]) () =
  series ~name:"independent keys" ~keys:n ~shard_counts ~cores ~n ~service ()
  @ series ~name:"same key" ~keys:1 ~shard_counts ~cores ~n ~service ()

let e14 ?n ?service ?cores ?shard_counts () =
  let rows = e14_rows ?n ?service ?cores ?shard_counts () in
  let render r =
    [
      r.r_series;
      Table.cell_i r.r_shards;
      Table.cell_i r.r_calls;
      Table.cell_ms r.r_time;
      Table.cell_f r.r_throughput;
      Table.cell_f r.r_speedup;
      Table.cell_i r.r_dispatches;
      Table.cell_i r.r_queue_hwm;
      Table.cell_i r.r_imbalance;
      (if r.r_ordered then "yes" else "NO");
    ]
  in
  Table.make ~id:"E14"
    ~title:
      "sharded port group: CPU-bound calls (1 ms each, 8 cores), per-key parallel dispatch"
    ~header:
      [
        "series"; "shards"; "calls"; "completion"; "calls/s"; "speedup"; "dispatches";
        "queue hwm"; "imbalance"; "per-key order";
      ]
    ~notes:
      [
        "one stream of (key, op) calls into a group sharded across N worker lanes keyed by \
         hash of the key (docs/SHARDING.md); per-key call order and per-stream reply order \
         are preserved, independent keys execute concurrently";
        "'independent keys': every call its own key — completion drops roughly linearly in \
         the lane count until the 8 simulated cores bound it; 'same key': every call the \
         same key — all calls collapse onto one lane, the series stays flat and in order \
         (the paper's §2.1 per-stream guarantee, narrowed to the key)";
        "'queue hwm' / 'imbalance' are Sim.Stats high-water marks of lane queue depth and \
         of the spread between most- and least-loaded lane";
      ]
    (List.map render rows)

(* The acceptance gate: independent keys, 8 lanes vs 1 lane. *)
let speedup_8v1 () =
  let rows = series ~name:"independent keys" ~keys:240 ~shard_counts:[ 1; 8 ] ~cores:8 ~n:240 ~service:1e-3 () in
  match rows with
  | [ _; r8 ] -> r8.r_speedup
  | _ -> assert false
