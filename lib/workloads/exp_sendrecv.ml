(* Experiment E8: explicit send/receive vs streams with promises (§5).

   The paper argues that send/receive (Plits, *MOD) can match the
   throughput of streams but forces user code to correlate replies with
   requests by hand. Here both variants run the same workload over the
   same reliable channels; we measure completion time (expected: the
   same shape) and the user-side correlation state the send/receive
   version must maintain (promises: none). *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module R = Core.Remote
module P = Core.Promise

let batch = 16

let chan_cfg = { CH.default_config with CH.max_batch = batch; flush_interval = 1e-3 }

(* Raw send/receive: the client manually numbers requests, sends them
   on a channel, and matches numbered replies from the server's reply
   channel against a table of continuations. *)
let run_raw ~n =
  let sched = S.create () in
  let net = Net.create sched Net.default_config in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  (* server: echo each (seq, value) back on its own channel. Like the
     stream receiver, it pays kernel overhead per inbound message (so
     the comparison is about the mechanism, not the cost model). *)
  let overhead = Net.default_config.Net.kernel_overhead in
  CH.on_connect server_hub ~label:"raw-svc" (fun in_chan ->
      let back =
        CH.connect server_hub ~dst:(CH.in_src in_chan) ~label:(CH.in_key in_chan).CH.meta
          ~meta:"" chan_cfg
      in
      let work = Sched.Bqueue.create sched in
      ignore
        (S.spawn sched ~daemon:true ~name:"raw-server" (fun () ->
             let rec loop () =
               let items = Sched.Bqueue.deq work in
               S.sleep sched overhead;
               List.iter
                 (fun item -> ignore (CH.send back item : (unit, string) result))
                 items;
               loop ()
             in
             loop ()));
      CH.set_deliver in_chan (fun items -> Sched.Bqueue.enq work items));
  (* client bookkeeping *)
  let pending : (int, int S.waker) Hashtbl.t = Hashtbl.create 64 in
  let max_pending = ref 0 in
  CH.on_connect client_hub ~label:"raw-replies" (fun in_chan ->
      CH.set_deliver in_chan (fun items ->
          List.iter
            (fun item ->
              match item with
              | Xdr.Pair (Xdr.Int seq, Xdr.Int v) -> (
                  (* the burden: relate this reply to its call *)
                  match Hashtbl.find_opt pending seq with
                  | Some w ->
                      Hashtbl.remove pending seq;
                      ignore (S.wake w v : bool)
                  | None -> ())
              | _ -> ())
            items));
  let out =
    CH.connect client_hub ~dst:(Net.address server_node) ~label:"raw-svc" ~meta:"raw-replies"
      chan_cfg
  in
  let time =
    Fixtures.timed_run sched (fun () ->
        let replies = ref 0 in
        let done_waker = ref None in
        for i = 0 to n - 1 do
          ignore (CH.send out (Xdr.Pair (Xdr.Int i, Xdr.Int (i * 2))) : (unit, string) result);
          let w = ref None in
          (* register continuation *)
          ignore
            (S.spawn sched (fun () ->
                 let v =
                   S.suspend sched (fun waker ->
                       Hashtbl.replace pending i waker;
                       if Hashtbl.length pending > !max_pending then
                         max_pending := Hashtbl.length pending)
                 in
                 ignore v;
                 incr replies;
                 if !replies = n then
                   match !done_waker with
                   | Some dw -> ignore (S.wake dw () : bool)
                   | None -> ()));
          ignore w
        done;
        CH.flush_out out;
        if !replies < n then S.suspend sched (fun w -> done_waker := Some w))
  in
  (time, !max_pending)

(* The same workload through streams + promises. *)
let run_promises ~n =
  let pair =
    Fixtures.make_pair
      ~group_config:Cstream.Group_config.(default |> with_reply_config chan_cfg)
      ()
  in
  let h = Fixtures.work_handle pair ~config:chan_cfg ~agent:"bench" () in
  let time =
    Fixtures.timed_run pair.Fixtures.sched (fun () ->
        let promises = List.init n (fun i -> R.stream_call h i) in
        R.flush h;
        List.iter
          (fun p ->
            match P.claim p with
            | P.Normal _ -> ()
            | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "call failed")
          promises)
  in
  (time, 0)

let e8 ?(n = 400) () =
  let t_raw, state_raw = run_raw ~n in
  let t_p, state_p = run_promises ~n in
  Table.make ~id:"E8" ~title:(Printf.sprintf "%d calls: explicit send/receive vs streams+promises" n)
    ~header:[ "mechanism"; "completion"; "user correlation state (max entries)" ]
    ~notes:
      [
        "paper claim (§5): send/receive can reach the same throughput, but \"it is entirely \
         the responsibility of the user code to relate reply messages with the calls that \
         caused them\" — promises eliminate that table";
      ]
    [
      [ "send/receive (by hand)"; Table.cell_ms t_raw; Table.cell_i state_raw ];
      [ "streams + promises"; Table.cell_ms t_p; Table.cell_i state_p ];
    ]
