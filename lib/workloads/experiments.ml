let registry : (string * (unit -> Table.t)) list =
  [
    ("E1", fun () -> Exp_streams.e1 ());
    ("E2", fun () -> Exp_streams.e2 ());
    ("E3", fun () -> Exp_compose.e3 ());
    ("E4", fun () -> Exp_compose.e4 ());
    ("E5", fun () -> Exp_fork.e5 ());
    ("E6", fun () -> Exp_failure.e6 ());
    ("E7", fun () -> Exp_chaos.e7 ());
    ("E8", fun () -> Exp_sendrecv.e8 ());
    ("E9", fun () -> Exp_streams.e9 ());
    ("E12", fun () -> Exp_wire.e12 ());
    ("E13", fun () -> Exp_pipeline.e13 ());
    ("E14", fun () -> Exp_shard.e14 ());
    ("E15", fun () -> Exp_overload.e15 ());
    ("E16", fun () -> Exp_domains.e16 ());
    ("E17", fun () -> Exp_transport.e17 ());
    ("E18", fun () -> Exp_dict.e18 ());
    ("E19", fun () -> Exp_handoff.e19 ());
    ("A1", fun () -> Exp_ablation.a1 ());
    ("A2", fun () -> Exp_ablation.a2 ());
  ]

let all_ids = List.map fst registry

let run id =
  match List.assoc_opt (String.uppercase_ascii id) registry with
  | Some f -> f ()
  | None -> raise Not_found

let run_all () = List.map (fun (_, f) -> f ()) registry
