(** A machine with [k] processors, for experiments that distinguish
    sequential machines from multiprocessors (§4.3, §3.2).

    Two modes. [Virtual] (the default): fibers "compute" by holding one
    of [k] permits for a stretch of {e virtual} time; with one permit
    the machine serialises all computation, with many it runs them in
    parallel — deterministic, free, and only as parallel as the model
    says. [Real rate]: {!consume} spins a calibrated integer kernel for
    the equivalent {e wall-clock} time instead — physical computation
    that scales only with actual cores, built for the fibers-vs-domains
    comparison (E16, docs/DOMAINS.md). Real-mode consumption touches no
    scheduler state, so offloaded handlers may call it from pool worker
    domains. *)

type t

type mode =
  | Virtual  (** charge virtual time under a [k]-permit semaphore *)
  | Real of float
      (** spin the calibrated kernel at this many iterations/second
          (from {!calibrate}); no virtual time is charged *)

val create : ?mode:mode -> Sched.Scheduler.t -> cores:int -> t

val consume : t -> float -> unit
(** [consume cpu dt] occupies one core for [dt] seconds of virtual
    time (parks while all cores are busy) — or, in [Real] mode, burns
    [dt] seconds worth of calibrated real work on the calling domain.
    Zero or negative [dt] is a no-op. *)

val cores : t -> int

val mode : t -> mode

(** {1 The real-work kernel} *)

val calibrate : ?budget:float -> unit -> float
(** Measure the spin kernel's iterations/second on this machine by
    running it for [budget] wall-clock seconds (default 50 ms). Pass
    the result to [Real] / {!burn}. *)

val burn : rate:float -> float -> unit
(** [burn ~rate dt] spins [rate *. dt] kernel iterations — [dt] seconds
    of real CPU work at calibration [rate]. Pure computation: safe on
    any domain, no scheduler interaction. *)

val spin : int -> int
(** The kernel itself: [spin n] runs [n] LCG iterations and returns the
    final state (so the work cannot be optimized away). *)
