(* Experiment E7: cross-incarnation exactly-once under injected chaos.

   A counter guardian is hammered by a supervised client while a
   seeded fault scenario crashes the guardian's node, partitions the
   network and injects loss bursts. The client stream is supervised
   (automatic restart with backoff + resubmission of in-flight calls
   with stable call-ids); the guardian's group deduplicates on those
   call-ids. The invariant checked per seed: no increment acknowledged
   to the client is lost, and no increment is applied twice — even
   though the transport saw duplicates, retransmits and whole stream
   reincarnations. Crashes here model a stable-state guardian (§6 of
   the paper): the node is unreachable while down but its state —
   including the dedup cache — survives recovery. *)

module S = Sched.Scheduler
module CH = Cstream.Chanhub
module G = Argus.Guardian
module R = Core.Remote
module P = Core.Promise
module Sup = Core.Supervisor

let inc_sig = Core.Sigs.hsig0 "inc" ~arg:Xdr.int ~res:Xdr.int

(* Fast break detection so outages convert into stream breaks (and
   hence supervisor work) quickly. *)
let chan_cfg =
  { CH.default_config with CH.max_batch = 4; flush_interval = 0.5e-3; retransmit_timeout = 4e-3; max_retries = 3 }

let sup_cfg =
  {
    Sup.backoff_base = 5e-3;
    backoff_factor = 2.0;
    backoff_max = 0.1;
    backoff_jitter = 0.2;
    retry_budget = 10;
    open_timeout = 0.2;
  }

type run_result = {
  r_accepted : int;  (* calls the stream accepted (a promise exists) *)
  r_rejected : int;  (* calls refused at submission (stream broken) *)
  r_normal : int;
  r_unavail : int;
  r_unresolved : int;  (* promises still blocked at claim timeout *)
  r_doubly : int;  (* op-ids applied more than once: must be 0 *)
  r_lost : int;  (* acknowledged Normal but not applied exactly once: must be 0 *)
  r_breaks : int;
  r_restarts : int;
  r_replays : int;  (* receiver-side dedup cache hits *)
  r_restored : bool;  (* a probe call succeeded after the chaos, no manual restart *)
}

let run_raw ~trace ~seed ~n ~horizon =
  let sched = S.create ~seed () in
  if trace then Sim.Span.enable (S.spans sched) true;
  let net = Net.create sched (Net.lossy ~loss:0.01 ~dup:0.05 Net.default_config) in
  let client_node = Net.add_node net ~name:"client" in
  let server_node = Net.add_node net ~name:"server" in
  let client_hub = CH.create_hub ~net:(net, client_node) () in
  let server_hub = CH.create_hub ~net:(net, server_node) () in
  let server = G.create server_hub ~name:"counter" in
  G.register_group server ~group:"ctr"
    ~config:Cstream.Group_config.(default |> with_reply_config chan_cfg |> with_dedup)
    ();
  let counter = ref 0 in
  let app_counts : (int, int) Hashtbl.t = Hashtbl.create 512 in
  G.register server ~group:"ctr" inc_sig (fun ctx op ->
      S.sleep ctx.G.sched 0.3e-3;
      incr counter;
      Hashtbl.replace app_counts op
        (1 + Option.value ~default:0 (Hashtbl.find_opt app_counts op));
      Ok !counter);
  let inj = Fault.create net ~nodes:[ client_node; server_node ] in
  let scenario =
    Fault.random_scenario
      ~rng:(Sim.Rng.split (S.rng sched))
      ~victims:[ "server" ]
      ~pairs:[ ("client", "server") ]
      ~horizon ~outages:3 ~min_down:0.05 ~max_down:0.4 ~loss_bursts:1 ()
  in
  Fault.schedule inj scenario;
  let outcomes : (int, _ P.outcome) Hashtbl.t = Hashtbl.create 512 in
  let unresolved = ref 0 in
  let accepted = ref 0 and rejected = ref 0 in
  let restored = ref false in
  ignore
    (Fixtures.timed_run sched (fun () ->
         let ag = Core.Agent.create client_hub ~name:"chaos" ~config:chan_cfg () in
         let h = R.bind ag ~dst:(Net.address server_node) ~gid:"ctr" inc_sig in
         let sup =
           Sup.supervise_agent ~config:sup_cfg ag ~dst:(Net.address server_node) ~gid:"ctr"
         in
         let spacing = horizon /. float_of_int n in
         let promises = ref [] in
         for op = 0 to n - 1 do
           (match R.stream_call h op with
           | p ->
               incr accepted;
               promises := (op, p) :: !promises
           | exception P.Unavailable_exn _ ->
               (* Refused before reaching the wire (mid-backoff or open
                  breaker): definitely never executed, safe to drop. *)
               incr rejected);
           S.sleep sched spacing
         done;
         R.flush h;
         List.iter
           (fun (op, p) ->
             let o = P.claim_timeout p ~timeout:(2.0 *. horizon) in
             if P.ready p then Hashtbl.replace outcomes op o else incr unresolved)
           (List.rev !promises);
         (* Chaos is over (the scenario heals everything by 0.9 *
            horizon): the supervisor must have restored service on its
            own — probe with fresh calls, never calling restart. *)
         let attempts = ref 0 in
         while (not !restored) && !attempts < 100 do
           incr attempts;
           match R.rpc h (n + !attempts) with
           | P.Normal _ -> restored := true
           | P.Signal _ | P.Unavailable _ | P.Failure _ -> S.sleep sched 20e-3
           | exception P.Unavailable_exn _ -> S.sleep sched 20e-3
         done;
         Sup.stop sup));
  let stat name = Sim.Stats.count (Sim.Stats.counter (S.stats sched) name) in
  let doubly = Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) app_counts 0 in
  let normal = ref 0 and unavail = ref 0 and lost = ref 0 in
  for op = 0 to n - 1 do
    match Hashtbl.find_opt outcomes op with
    | Some (P.Normal _) ->
        incr normal;
        if Option.value ~default:0 (Hashtbl.find_opt app_counts op) <> 1 then incr lost
    | Some (P.Unavailable _) -> incr unavail
    | Some (P.Signal _ | P.Failure _) | None -> ()
  done;
  ( {
      r_accepted = !accepted;
      r_rejected = !rejected;
      r_normal = !normal;
      r_unavail = !unavail;
      r_unresolved = !unresolved;
      r_doubly = doubly;
      r_lost = !lost;
      r_breaks = stat "stream_breaks";
      r_restarts = stat "sup_restarts";
      r_replays = stat "target_dedup_replays";
      r_restored = !restored;
    },
    sched )

let run_one ~seed ~n ~horizon = fst (run_raw ~trace:false ~seed ~n ~horizon)

(* The causal story of one chaos run (docs/TRACING.md): the same seed
   re-run with the span store enabled, rendered as the timelines of the
   calls that crossed an incarnation — resubmitted after a break,
   joined onto an in-flight duplicate, or answered from the dedup
   cache — followed by the per-stream gantt. This is what a failing
   chaos gate prints: which call, on which incarnation, took which path
   to its reply. *)
let trace_story ?(max_timelines = 8) ~seed ~n ~horizon () =
  let r, sched = run_raw ~trace:true ~seed ~n ~horizon in
  let spans = S.spans sched in
  let all = Sim.Span.trace_ids spans in
  let crossed =
    List.filter
      (fun tid ->
        Sim.Span.has spans ~trace:tid Sim.Span.Resubmit
        || Sim.Span.has spans ~trace:tid Sim.Span.Dedup_join
        || Sim.Span.has spans ~trace:tid Sim.Span.Dedup_replay)
      all
  in
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "== causal story: chaos seed %d (%d calls; lost=%d doubly=%d unresolved=%d breaks=%d \
     restarts=%d replays=%d) ==\n\n"
    seed n r.r_lost r.r_doubly r.r_unresolved r.r_breaks r.r_restarts r.r_replays;
  Printf.bprintf buf
    "%d of %d traced calls crossed an incarnation (resubmit / dedup join / dedup replay)"
    (List.length crossed) (List.length all);
  let shown = List.filteri (fun i _ -> i < max_timelines) crossed in
  Printf.bprintf buf "; showing %d:\n\n" (List.length shown);
  List.iter
    (fun tid ->
      Buffer.add_string buf (Sim.Span.timeline spans ~trace:tid);
      Buffer.add_char buf '\n')
    shown;
  Buffer.add_string buf (Sim.Span.gantt spans);
  Buffer.contents buf

let e7 ?(seeds = 10) ?(n = 200) ?(horizon = 2.0) () =
  let rows =
    List.init seeds (fun i ->
        let seed = 1000 + (17 * i) in
        let r = run_one ~seed ~n ~horizon in
        [
          string_of_int seed;
          Table.cell_i r.r_accepted;
          Table.cell_i r.r_rejected;
          Table.cell_i r.r_normal;
          Table.cell_i r.r_unavail;
          Table.cell_i r.r_unresolved;
          Table.cell_i r.r_lost;
          Table.cell_i r.r_doubly;
          Table.cell_i r.r_breaks;
          Table.cell_i r.r_restarts;
          Table.cell_i r.r_replays;
          (if r.r_restored then "yes" else "NO");
        ])
  in
  Table.make ~id:"E7"
    ~title:
      (Printf.sprintf
         "chaos: %d increments under crash/partition/loss schedules, %d seeds (invariant: \
          lost = doubly = 0, restored = yes)"
         n seeds)
    ~header:
      [
        "seed";
        "accepted";
        "rejected";
        "normal";
        "unavail";
        "unresolved";
        "lost";
        "doubly";
        "breaks";
        "restarts";
        "dedup replays";
        "restored";
      ]
    ~notes:
      [
        "supervised stream + stable call-ids + receiver dedup give cross-incarnation \
         exactly-once: every acknowledged increment applied exactly once (lost = 0), no \
         increment applied twice (doubly = 0), despite breaks and resubmissions";
        "rejected = calls refused while the breaker was open or mid-backoff (never reached \
         the wire); unavail = in-flight calls the supervisor gave up on (applied at most \
         once)";
        "restored = a fresh call succeeds after the schedule heals, with no manual restart";
      ]
    rows

(* True iff every seed upholds the invariants — the @chaos alias and
   test_chaos gate on this. A failing seed re-runs with tracing on and
   prints its causal story to stderr, so the assertion failure arrives
   with the per-call timelines that explain it. *)
let check ?(seeds = 10) ?(n = 200) ?(horizon = 2.0) () =
  List.for_all
    (fun i ->
      let seed = 1000 + (17 * i) in
      let r = run_one ~seed ~n ~horizon in
      let ok = r.r_lost = 0 && r.r_doubly = 0 && r.r_unresolved = 0 && r.r_restored in
      if not ok then begin
        Printf.eprintf
          "chaos invariant violated at seed %d (lost=%d doubly=%d unresolved=%d \
           restored=%b); re-running traced:\n%s\n%!"
          seed r.r_lost r.r_doubly r.r_unresolved r.r_restored
          (trace_story ~seed ~n ~horizon ())
      end;
      ok)
    (List.init seeds Fun.id)
