module S = Sched.Scheduler
module CH = Cstream.Chanhub
module T = Cstream.Target
module W = Cstream.Wire
module GC = Cstream.Group_config

type t = {
  g_hub : CH.hub;
  g_name : string;
  g_sched : S.t;
  groups : (string, group_state) Hashtbl.t;
  g_pipeline : W.routcome Pipeline.Registry.t;
      (* one outcome registry per guardian, shared by all its groups, so
         a pipelined call can reference a result produced through any
         port group of the same guardian (docs/PIPELINE.md) *)
  mutable destroyed : bool;
}

and group_state = { target : T.t; ports : (string, reg) Hashtbl.t; config : GC.t }
(* [config] is the configuration the group was {e registered} with (as
   the caller supplied it, before the guardian substitutes its own
   pipelining registry), kept so a later [get_group] with a conflicting
   config fails loudly instead of silently ignoring it. *)

and reg = Reg : ('a, 'r, 'e) Core.Sigs.hsig * (ctx -> 'a -> ('r, 'e) result) -> reg

and ctx = { caller : Net.address; sched : S.t; guardian : t }

let name t = t.g_name

let address t = CH.hub_addr t.g_hub

let sched t = t.g_sched

let hub t = t.g_hub

let pipeline_registry t = t.g_pipeline

let group_names t = Hashtbl.fold (fun g _ acc -> g :: acc) t.groups [] |> List.sort compare

let port_ref t ~group ~port =
  { Core.Sigs.pr_addr = address t; pr_group = group; pr_port = port }

(* Run one handler call in its own fiber; [reply] fires exactly once
   unless the execution is orphaned (its stream died, taking the reply
   path with it). With [offload] set (docs/DOMAINS.md), the handler
   {e body} runs on a pool worker domain — the fiber parks in
   {!Sched.Pool.run} and everything around the body (decode, encode,
   reply sequencing, dedup, pipelining) stays on the simulator
   domain. *)
let run_handler t conn ~dedup ~offload ~reply (Reg (hs, impl)) ~args ~caller =
  match Xdr.decode hs.Core.Sigs.arg_c args with
  | Error reason ->
      (* §3: decode failure => failure reply, then the stream breaks. *)
      reply (W.W_failure ("could not decode: " ^ reason));
      T.break_conn conn ~reason:"argument decode failure at receiver"
  | Ok arg ->
      let fiber =
        S.spawn t.g_sched
          ~name:(Printf.sprintf "%s#%s" t.g_name hs.Core.Sigs.hname)
          ~daemon:true
          (fun () ->
            let ctx = { caller; sched = t.g_sched; guardian = t } in
            let invoke () =
              match offload with
              | None -> impl ctx arg
              | Some pool -> Sched.Pool.run pool (fun () -> impl ctx arg)
            in
            match invoke () with
            | Ok r -> (
                match Xdr.encode hs.Core.Sigs.res_c r with
                | Ok v -> reply (W.W_normal v)
                | Error reason ->
                    reply (W.W_failure ("could not encode result: " ^ reason));
                    T.break_conn conn ~reason:"result encode failure at receiver")
            | Error e -> (
                match hs.Core.Sigs.sig_c.Core.Sigs.enc_sig e with
                | Ok (sig_name, payload) -> reply (W.W_signal (sig_name, payload))
                | Error reason ->
                    reply (W.W_failure ("could not encode signal: " ^ reason));
                    T.break_conn conn ~reason:"signal encode failure at receiver")
            | exception S.Terminated -> raise S.Terminated
            | exception e ->
                (* A crashed handler body is the call's error, not the
                   stream's: reply failure and keep the stream alive. *)
                reply (W.W_failure ("handler crashed: " ^ Printexc.to_string e)))
      in
      (* Orphan destruction: if the stream goes away while the handler
         is still running, destroy the execution. With dedup on, the
         opposite is required: the execution must run to completion so
         its outcome lands in the target's cache, where the supervisor's
         resubmission of the same call-id finds it instead of executing
         the handler a second time. *)
      if not dedup then
        T.on_conn_close conn (fun () -> if S.alive fiber then S.kill t.g_sched fiber)

let dispatch t ports ~dedup ~offload conn ~seq:_ ~port ~kind:_ ~args ~reply =
  match Hashtbl.find_opt ports port with
  | None -> reply (W.W_failure "handler does not exist")
  | Some reg ->
      run_handler t conn ~dedup ~offload ~reply reg ~args ~caller:(T.conn_src conn)

let get_group t ~group ?config () =
  match Hashtbl.find_opt t.groups group with
  | Some state ->
      (* The group already exists: a config passed explicitly must be
         the one the group was registered with — returning the existing
         group while silently dropping a conflicting configuration
         hides real bugs (a dedup group that is not deduplicating, a
         sharded group running on one lane). Omitting [config] always
         passes. *)
      (match config with
      | Some gc when not (GC.equal gc state.config) ->
          invalid_arg
            (Printf.sprintf
               "Guardian.get_group: group %S of guardian %S already exists with a \
                different configuration (fields: %s)"
               group t.g_name
               (String.concat ", " (GC.diff gc state.config)))
      | Some _ | None -> ());
      state
  | None ->
      let gc = Option.value ~default:GC.default config in
      let ports = Hashtbl.create 8 in
      (* Scope the shared registry to this guardian's groups: the
         receiver uses it to fail (not park) references to streams that
         feed another guardian's disjoint registry. *)
      Pipeline.Registry.add_scope t.g_pipeline group;
      let target =
        (* The guardian always substitutes its own per-guardian
           registry for the config's [pipeline] field — outcomes must be
           visible across all of this guardian's groups. *)
        T.create t.g_hub ~gid:group
          ~config:{ gc with GC.pipeline = Some t.g_pipeline }
          (fun conn ~seq ~port ~kind ~args ~reply ->
            dispatch t ports ~dedup:gc.GC.dedup ~offload:gc.GC.offload conn ~seq ~port
              ~kind ~args ~reply)
      in
      let state = { target; ports; config = gc } in
      Hashtbl.replace t.groups group state;
      state

let register_group t ~group ?config () = ignore (get_group t ~group ?config () : group_state)

let register t ~group hs impl =
  let state = get_group t ~group () in
  Hashtbl.replace state.ports hs.Core.Sigs.hname (Reg (hs, impl))

let create ?(pipeline_cache = 1024) ?(pipeline_bytes = max_int) hub ~name =
  let g_sched = CH.hub_sched hub in
  let bytes_evicted = Sim.Stats.counter (S.stats g_sched) "registry_bytes_evicted" in
  (* A guardian's node can own forwarded calls (docs/HANDOFF.md):
     start accepting outcome pushes as soon as the guardian exists,
     not only once its first port group is registered. *)
  CH.handoff_listen hub;
  {
    g_hub = hub;
    g_name = name;
    g_sched;
    groups = Hashtbl.create 8;
    g_pipeline =
      Pipeline.Registry.create ~cap:pipeline_cache ~max_bytes:pipeline_bytes
        (* Xdr.Bin.size is a counting pass — no encode buffer is built
           to price an outcome for the byte budget. *)
        ~bytes_of:(fun o -> Xdr.Bin.size (W.outcome_value o))
        ~on_evict:(fun ~bytes -> Sim.Stats.add bytes_evicted bytes)
        ();
    destroyed = false;
  }

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    Hashtbl.iter (fun _ state -> T.close state.target) t.groups;
    Hashtbl.reset t.groups
  end
