(** Guardians: the receiving entities of Argus (§2.1).

    A guardian lives on one node and provides {e handlers}, each
    reachable through a typed port. Ports are grouped; calls arriving
    on one stream (one sending agent, one group) run strictly in call
    order — the next call starts only when the previous one has
    completed — while calls on different streams run concurrently, each
    in its own process.

    Failure semantics follow §3 of the paper:
    - arguments that fail to decode terminate the call with
      [failure "could not decode: …"] {e and break the stream};
    - results or signals that fail to encode do the same;
    - a call to an unknown port terminates with
      [failure "handler does not exist"];
    - an OCaml exception escaping a handler body terminates the call
      with [failure].

    When a stream goes away while a handler call is still running, the
    orphaned execution is destroyed (killed at its next termination
    point) — the Argus orphan-destruction guarantee in miniature.
    Groups registered with [~dedup:true] invert this: orphans run to
    completion so their outcome reaches the group's cross-incarnation
    outcome cache, where a supervisor's resubmission of the same call
    finds it (exactly-once execution; see [docs/FAULTS.md]). *)

type t

(** Per-call context passed to handler implementations. *)
type ctx = {
  caller : Net.address;  (** node the calling agent lives on *)
  sched : Sched.Scheduler.t;
  guardian : t;
}

val create :
  ?pipeline_cache:int -> ?pipeline_bytes:int -> Cstream.Chanhub.hub -> name:string -> t
(** Create a guardian on the node owning [hub]. Several guardians can
    share one node (and hub) as long as their group names differ.

    Every guardian owns one promise-pipelining outcome registry
    (docs/PIPELINE.md), shared by all its port groups: a pipelined call
    arriving at any group can reference a result produced through any
    other group of the {e same} guardian. [pipeline_cache] (default
    1024) bounds the retained outcomes, evicted oldest-first — size it
    above the maximum pipelining window (calls between a producer and
    its last dependent). [pipeline_bytes] (default unbounded) is a byte
    budget on the same store, measured in encoded wire bytes
    ({!Xdr.Bin}) of the retained outcomes: the FIFO eviction also runs
    while the byte total exceeds it, so a few bulky results cannot pin
    memory that the count cap alone would allow. Evicted bytes are
    counted in {!Sim.Stats} as [registry_bytes_evicted]. *)

val name : t -> string

val address : t -> Net.address

val sched : t -> Sched.Scheduler.t

val hub : t -> Cstream.Chanhub.hub

val pipeline_registry : t -> Cstream.Wire.routcome Pipeline.Registry.t
(** The guardian's promise-pipelining outcome registry (observability:
    {!Pipeline.Registry.known}/{!Pipeline.Registry.waiting}). *)

val register :
  t ->
  group:string ->
  ('a, 'r, 'e) Core.Sigs.hsig ->
  (ctx -> 'a -> ('r, 'e) result) ->
  unit
(** Install a handler. The group's receiving machinery is created on
    first registration of that group name. The implementation runs in
    its own fiber per call; it may sleep, make remote calls, and so on.
    Registering the same port name in the same group twice replaces the
    handler (used by tests; real guardians create ports once). *)

val register_group :
  t -> group:string -> ?config:Cstream.Group_config.t -> unit -> unit
(** Pre-create a group with the given {!Cstream.Group_config.t}
    (default {!Cstream.Group_config.default}): reply-channel buffering,
    execution discipline ([ordered = false] is the §2.1 override: calls
    on one stream run concurrently; replies stay in call order), the
    cross-incarnation dedup cache (required on the receiving side for
    {!Core.Supervisor} exactly-once semantics), and sharding
    (docs/SHARDING.md — per-key call order and per-stream reply order
    are preserved; independent keys execute in parallel). The config's
    [pipeline] field is ignored: the guardian always installs its own
    per-guardian registry so pipelined calls can reference outcomes
    produced through any of its groups (docs/PIPELINE.md).

    If the group already exists (created by an earlier [register_group]
    or first [register]), a [config] passed here must equal the one the
    group was registered with ({!Cstream.Group_config.equal} — whole
    configs are compared, [shard_key] physically since functions cannot
    be compared structurally): a conflicting config raises
    [Invalid_argument] naming the differing fields instead of being
    silently ignored. Omitting [config] always passes. *)

val port_ref : t -> group:string -> port:string -> Core.Sigs.port_ref
(** The transmissible reference to one of this guardian's ports. *)

val group_names : t -> string list

val destroy : t -> unit
(** Take the guardian down: every group closes and live streams to it
    break ("the handler's guardian does not exist"). *)
