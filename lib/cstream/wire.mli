(** Wire encoding of call and reply items carried on channels.

    A call-stream moves two kinds of items: call requests (sender to
    receiver) and replies (receiver back to sender). Both are encoded
    as {!Xdr.value}s so the channel layer stays payload-agnostic —
    mirroring the paper's split between the language-independent
    call-stream system and the typed language layer above it. *)

(** How a call wants its reply treated. [Send]s are the paper's third
    call kind: the caller only cares about abnormal termination, so a
    normal reply carries no result value (only a fixed-size completion
    marker, preserving reply ordering and [synch] while saving the
    result's bytes). *)
type kind = Call | Send

(** Outcome of a remote call as it travels on the wire. Signals carry
    the exception name and its (already encoded) arguments. *)
type routcome =
  | W_normal of Xdr.value
  | W_signal of string * Xdr.value
  | W_unavailable of string
  | W_failure of string

val pp_routcome : Format.formatter -> routcome -> unit

val stable_stream_id : src:Net.address -> reply_label:string -> string
(** The incarnation-independent identity of a sending stream, derived
    from the sender's address and the reply-channel label (with its
    trailing incarnation number stripped). Computed identically by the
    sender ({!Stream_end.stable_id}) and the receiver ({!Target}), it
    keys the receiver's dedup cache and the promise-pipelining outcome
    registry (docs/PIPELINE.md). *)

val stream_id_group : string -> string option
(** The port-group name embedded in a stable stream id — the group the
    identified stream sends its calls to. [None] if the id does not
    have the generated shape. The receiver uses this to reject a
    promise reference naming a stream that feeds a different guardian
    (whose registry is disjoint; docs/PIPELINE.md). *)

(** {1 Third-party handoff (docs/HANDOFF.md)} *)

(** An annotation riding on a call whose arguments contain a [Pref]
    produced on {e another} node: [ho_owner] is the address of the
    node that will produce the referenced outcome, [ho_stream] /
    [ho_call] identify it (stable stream id + stable call id), and
    [ho_epoch] is the forwarder's handoff protocol epoch — a receiver
    refuses a mismatched epoch and the sender falls back to proxying. *)
type handoff = { ho_owner : int; ho_stream : string; ho_call : int; ho_epoch : int }

val handoff_value : handoff -> Xdr.value

val parse_handoff : Xdr.value -> (handoff, string) result

val handoff_push_item : stream:string -> call:int -> Xdr.value -> Xdr.value
(** The outcome push the producing node sends directly to the node a
    call was forwarded to: the encoded outcome ({!outcome_value}) of
    [(stream, call)]. Carried on the reserved ["~handoff"] label. *)

val parse_handoff_push : Xdr.value -> (string * int * Xdr.value, string) result

val handoff_notice_port : string
(** ["~handoff"] — reserved port on every pipelining-enabled port
    group: a [Send] of a {!handoff_value} asking the group to push the
    identified outcome to [ho_owner]. A normal reply means accepted; an
    [unavailable] reply is a refusal and the sender proxies instead. *)

val handoff_redeem_port : string
(** ["~redeem"] — reserved port replying with the identified outcome
    itself: the claim-by-reference fallback for a refused handoff whose
    producer's reply was elided. *)

(** {1 Call items} *)

val call_item :
  ?resubmit:bool ->
  ?handoff:handoff list ->
  ?elide:bool ->
  seq:int -> cid:int -> trace:int option -> port:string -> kind:kind -> args:Xdr.value ->
  unit -> Xdr.value
(** [seq] is the per-incarnation wire sequence (resets on restart);
    [cid] is the {e stable call-id}, monotonic over the whole life of
    the sending stream end — it never resets, so the receiver can
    deduplicate calls re-submitted after a reincarnation (see
    [docs/FAULTS.md]). [trace] is the call's causal trace id
    (docs/TRACING.md), carried in an extra field only when tracing is
    enabled: with [trace:None] the encoding is byte-for-byte the
    pre-tracing wire format. [resubmit] (default [false]) marks a
    crash-recovery resubmission; a load-shedding receiver never sheds
    such a call (docs/OVERLOAD.md). [handoff] (default [[]]) lists the
    handoff annotations for foreign [Pref]s in [args]; [elide]
    (default [false]) asks the receiver to reply to a normal outcome
    with a value-free completion marker because the value travels by
    handoff push instead (docs/HANDOFF.md). All optional fields are
    omitted when unused, keeping handoff-free frames byte-identical to
    the prior format. *)

val parse_call : Xdr.value -> (int * int * string * kind * Xdr.value, string) result
(** Inverse of {!call_item}: [(seq, cid, port, kind, args)]. *)

(** {1 Reply items} *)

val outcome_value : routcome -> Xdr.value
(** The encodable form of one outcome (the payload of {!reply_item}).
    Exposed so byte budgets can size a stored outcome exactly as it
    would ship ([Xdr.Bin.size (outcome_value o)]). *)

val outcome_of_value : Xdr.value -> (routcome, string) result
(** Inverse of {!outcome_value} — a handoff push carries a bare
    outcome payload outside any reply item, so the receiving hub
    decodes it with this. *)

val reply_item : seq:int -> trace:int option -> routcome -> Xdr.value
(** Encodes the outcome; a [W_normal] reply to a [Send] should be
    constructed with {!send_ok_item} instead. With [trace:Some id] the
    reply takes a record form carrying the call's trace id so the
    return leg of the journey is traceable; [trace:None] is the
    original compact pair. *)

val send_ok_item : seq:int -> trace:int option -> Xdr.value
(** Minimal "completed normally" reply for a [Send]. *)

val parse_reply : Xdr.value -> (int * routcome, string) result
(** Accepts both reply forms; [send_ok_item] parses as [W_normal Unit]. *)

val item_trace : Xdr.value -> int option
(** The trace id carried by a call or reply item, if any. Total over
    arbitrary values — the channel layer applies it to every item it
    transmits, delivers or acknowledges (docs/TRACING.md). *)

val item_resubmit : Xdr.value -> bool
(** Whether a call item carries the resubmit marker. Total over
    arbitrary values; [false] for replies and malformed items. *)

(** {1 Lazy (view-based) parsing}

    The zero-copy receive path (docs/WIRE.md §Lazy views): the same
    item grammars, parsed over {!Xdr.View.t} slices so the argument or
    outcome payload is never decoded unless a consumer asks for it. *)

(** A parsed call envelope whose argument is still an encoded slice. *)
type call_view = {
  cv_seq : int;
  cv_cid : int;
  cv_port : string;
  cv_kind : kind;
  cv_args : Xdr.View.t;
  cv_trace : int option;
  cv_resubmit : bool;
  cv_handoff : handoff list;
  cv_elide : bool;
}

val parse_call_view : Xdr.View.t -> (call_view, string) result
(** View counterpart of {!parse_call}: materialises only the small
    envelope fields; [cv_args] stays lazy. *)

val parse_reply_view : Xdr.View.t -> (int * Xdr.View.t, string) result
(** View counterpart of {!parse_reply}: [(seq, outcome slice)]. The
    outcome is left encoded so a stale reply costs no decode; pass it
    to {!outcome_of_view} when the call is actually pending. *)

val outcome_of_view : Xdr.View.t -> (routcome, string) result
(** Materialise an outcome slice returned by {!parse_reply_view}. *)

val item_trace_view : Xdr.View.t -> int option
(** View counterpart of {!item_trace}; equally total. *)
