type kind = Call | Send

type routcome =
  | W_normal of Xdr.value
  | W_signal of string * Xdr.value
  | W_unavailable of string
  | W_failure of string

let pp_routcome ppf = function
  | W_normal v -> Format.fprintf ppf "normal(%a)" Xdr.pp_value v
  | W_signal (name, v) -> Format.fprintf ppf "signal %s(%a)" name Xdr.pp_value v
  | W_unavailable reason -> Format.fprintf ppf "unavailable(%s)" reason
  | W_failure reason -> Format.fprintf ppf "failure(%s)" reason

(* The incarnation-independent identity of a sending stream, as both
   ends compute it: the reply-channel label minus its trailing
   incarnation number, qualified by the sender's address. Promise
   references ({!Xdr.Pref}) name producing calls by this string plus
   the stable call-id, so a reference minted before a crash still
   resolves after [restart_resubmit]. *)
let stable_stream_id ~src ~reply_label =
  let prefix =
    match String.rindex_opt reply_label '/' with
    | Some i -> String.sub reply_label 0 i
    | None -> reply_label
  in
  Printf.sprintf "%d|%s" src prefix

(* A stable stream id embeds the reply label "~r/<agent>/<gid>/<dst>"
   (incarnation already stripped), so the port group the stream sends
   to can be recovered: second-to-last '/'-segment, counted from the
   end so an agent name containing '/' cannot shift it. *)
let stream_id_group id =
  match String.index_opt id '|' with
  | None -> None
  | Some i -> (
      let label = String.sub id (i + 1) (String.length id - i - 1) in
      match String.split_on_char '/' label with
      | "~r" :: rest when List.length rest >= 3 -> Some (List.nth rest (List.length rest - 2))
      | _ -> None)

(* --- third-party handoff (docs/HANDOFF.md) ------------------------ *)

(* A handoff annotation rides on a call item whose arguments reference
   a result produced on another node: it tells the receiver which node
   owns the referenced outcome so the receiver can accept the foreign
   [Pref] and wait for the owner to push the value, instead of
   rejecting the reference. [ho_epoch] is the forwarding sender's
   handoff epoch — a receiver whose notion of the protocol has moved on
   refuses mismatched epochs and the sender falls back to proxying. *)
type handoff = { ho_owner : int; ho_stream : string; ho_call : int; ho_epoch : int }

let handoff_value h =
  Xdr.Record
    [
      ("o", Xdr.Int h.ho_owner);
      ("s", Xdr.Str h.ho_stream);
      ("c", Xdr.Int h.ho_call);
      ("e", Xdr.Int h.ho_epoch);
    ]

let parse_handoff v =
  let malformed () = Error (Format.asprintf "malformed handoff: %a" Xdr.pp_value v) in
  match v with
  | Xdr.Record fields -> (
      let field name = List.assoc_opt name fields in
      match (field "o", field "s", field "c", field "e") with
      | Some (Xdr.Int owner), Some (Xdr.Str stream), Some (Xdr.Int call), Some (Xdr.Int epoch)
        ->
          Ok { ho_owner = owner; ho_stream = stream; ho_call = call; ho_epoch = epoch }
      | _ -> malformed ())
  | _ -> malformed ()

(* The outcome-push item the result's producer sends directly to the
   forwarded call's new home: "(stream, call) produced this outcome".
   Carried on the reserved "~handoff" channel label. *)
let handoff_push_item ~stream ~call ov =
  Xdr.Record [ ("s", Xdr.Str stream); ("c", Xdr.Int call); ("v", ov) ]

(* The two reserved ports every pipelining-enabled port group serves:
   "push the outcome of one of your calls to a foreign owner" and
   "reply with that outcome directly" (the fallback round trip). *)
let handoff_notice_port = "~handoff"

let handoff_redeem_port = "~redeem"

let parse_handoff_push v =
  let malformed () =
    Error (Format.asprintf "malformed handoff push: %a" Xdr.pp_value v)
  in
  match v with
  | Xdr.Record fields -> (
      let field name = List.assoc_opt name fields in
      match (field "s", field "c", field "v") with
      | Some (Xdr.Str stream), Some (Xdr.Int call), Some ov -> Ok (stream, call, ov)
      | _ -> malformed ())
  | _ -> malformed ()

let kind_tag = function Call -> "c" | Send -> "s"

let kind_of_tag = function
  | "c" -> Ok Call
  | "s" -> Ok Send
  | other -> Error (Printf.sprintf "unknown call kind %S" other)

(* The optional "t" field carries the per-call trace id (docs/TRACING.md).
   It is appended only when the sender's span store is enabled, so with
   tracing off the encoding is byte-for-byte the pre-tracing format;
   [parse_call] ignores unknown fields either way. *)
(* The optional "r" field marks a crash-recovery resubmit: load-shedding
   receivers (docs/OVERLOAD.md) must never shed these — the original
   attempt may already have executed, so the caller needs the deduped
   outcome, not [unavailable]. *)
(* The optional "h" field lists handoff annotations (one per foreign
   [Pref] in the arguments) and the optional "y" field asks the
   receiver to elide a normal result from the reply (the value will
   travel by handoff push instead). Both are appended only when used,
   so handoff-free frames stay byte-identical to the prior format. *)
let call_item ?(resubmit = false) ?(handoff = []) ?(elide = false) ~seq ~cid ~trace ~port
    ~kind ~args () =
  Xdr.Record
    ([
       ("q", Xdr.Int seq);
       ("i", Xdr.Int cid);
       ("p", Xdr.Str port);
       ("k", Xdr.Str (kind_tag kind));
       ("a", args);
     ]
    @ (match trace with Some tid -> [ ("t", Xdr.Int tid) ] | None -> [])
    @ (if resubmit then [ ("r", Xdr.Int 1) ] else [])
    @ (match handoff with
      | [] -> []
      | hs -> [ ("h", Xdr.List (List.map handoff_value hs)) ])
    @ if elide then [ ("y", Xdr.Int 1) ] else [])

(* Parse by field name, not position: a reordered-but-complete record
   (e.g. from a future encoder) must decode, and unknown extra fields
   are ignored for forward compatibility. *)
let parse_call v =
  let malformed () = Error (Format.asprintf "malformed call item: %a" Xdr.pp_value v) in
  match v with
  | Xdr.Record fields -> (
      let field name = List.assoc_opt name fields in
      match (field "q", field "i", field "p", field "k", field "a") with
      | ( Some (Xdr.Int seq),
          Some (Xdr.Int cid),
          Some (Xdr.Str port),
          Some (Xdr.Str k),
          Some args ) -> (
          match kind_of_tag k with
          | Ok kind -> Ok (seq, cid, port, kind, args)
          | Error e -> Error e)
      | _ -> malformed ())
  | _ -> malformed ()

let outcome_value = function
  | W_normal v -> Xdr.Tagged ("n", v)
  | W_signal (name, v) -> Xdr.Tagged ("g", Xdr.Pair (Xdr.Str name, v))
  | W_unavailable reason -> Xdr.Tagged ("u", Xdr.Str reason)
  | W_failure reason -> Xdr.Tagged ("f", Xdr.Str reason)

let outcome_of_value = function
  | Xdr.Tagged ("n", v) -> Ok (W_normal v)
  | Xdr.Tagged ("g", Xdr.Pair (Xdr.Str name, v)) -> Ok (W_signal (name, v))
  | Xdr.Tagged ("u", Xdr.Str reason) -> Ok (W_unavailable reason)
  | Xdr.Tagged ("f", Xdr.Str reason) -> Ok (W_failure reason)
  | Xdr.Tagged ("o", Xdr.Unit) -> Ok (W_normal Xdr.Unit)
  | v -> Error (Format.asprintf "malformed outcome: %a" Xdr.pp_value v)

(* Replies have two wire forms: the compact pair (tracing off — the
   original format) and a field-named record carrying the call's trace
   id (tracing on). [parse_reply] accepts both. *)
let reply_value ~seq ~trace ov =
  match trace with
  | None -> Xdr.Pair (Xdr.Int seq, ov)
  | Some tid -> Xdr.Record [ ("q", Xdr.Int seq); ("t", Xdr.Int tid); ("o", ov) ]

let reply_item ~seq ~trace outcome = reply_value ~seq ~trace (outcome_value outcome)

let send_ok_item ~seq ~trace = reply_value ~seq ~trace (Xdr.Tagged ("o", Xdr.Unit))

let parse_reply = function
  | Xdr.Pair (Xdr.Int seq, ov) -> (
      match outcome_of_value ov with Ok o -> Ok (seq, o) | Error e -> Error e)
  | Xdr.Record fields as v -> (
      match (List.assoc_opt "q" fields, List.assoc_opt "o" fields) with
      | Some (Xdr.Int seq), Some ov -> (
          match outcome_of_value ov with Ok o -> Ok (seq, o) | Error e -> Error e)
      | _ -> Error (Format.asprintf "malformed reply item: %a" Xdr.pp_value v))
  | v -> Error (Format.asprintf "malformed reply item: %a" Xdr.pp_value v)

(* The trace id of a call or (traced-form) reply item; [None] for the
   compact forms, for untraced items and for anything malformed. Total:
   the channel layer applies it to every item it moves. *)
let item_trace = function
  | Xdr.Record fields -> (
      match List.assoc_opt "t" fields with Some (Xdr.Int tid) -> Some tid | _ -> None)
  | _ -> None

let item_resubmit = function
  | Xdr.Record fields -> List.assoc_opt "r" fields <> None
  | _ -> false

(* --- lazy (view-based) parsing ------------------------------------ *)

(* The zero-copy receive path (docs/WIRE.md §Lazy views): envelope
   fields are tiny and are materialised individually; the argument —
   the only part that can be large — stays an un-decoded slice until a
   handler actually consumes it. *)

module V = Xdr.View

type call_view = {
  cv_seq : int;
  cv_cid : int;
  cv_port : string;
  cv_kind : kind;
  cv_args : V.t;
  cv_trace : int option;
  cv_resubmit : bool;
  cv_handoff : handoff list;
  cv_elide : bool;
}

let parse_call_view vw =
  match V.record_fields vw with
  | Error e -> Error ("malformed call item: " ^ e)
  | Ok fields -> (
      let field name = List.assoc_opt name fields in
      let int_field name =
        match field name with
        | Some f -> ( match V.as_int f with Ok i -> Some i | Error _ -> None)
        | None -> None
      in
      let str_field name =
        match field name with
        | Some f -> ( match V.as_string f with Ok s -> Some s | Error _ -> None)
        | None -> None
      in
      (* Handoff annotations are tiny envelope data: materialise the
         "h" slice (when present) and decode each entry eagerly. An
         unparsable annotation fails the whole item — the receiver
         would otherwise mis-route a foreign reference. *)
      let handoffs () =
        match field "h" with
        | None -> Ok []
        | Some hv -> (
            match V.materialize hv with
            | Error e -> Error ("malformed call item: " ^ e)
            | Ok (Xdr.List items) ->
                List.fold_left
                  (fun acc item ->
                    match (acc, parse_handoff item) with
                    | Error e, _ -> Error e
                    | Ok hs, Ok h -> Ok (h :: hs)
                    | Ok _, Error e -> Error e)
                  (Ok []) items
                |> Result.map List.rev
            | Ok v ->
                Error (Format.asprintf "malformed call item: handoff field %a" Xdr.pp_value v))
      in
      match (int_field "q", int_field "i", str_field "p", str_field "k", field "a") with
      | Some seq, Some cid, Some port, Some k, Some args -> (
          match (kind_of_tag k, handoffs ()) with
          | Ok kind, Ok hs ->
              Ok
                {
                  cv_seq = seq;
                  cv_cid = cid;
                  cv_port = port;
                  cv_kind = kind;
                  cv_args = args;
                  cv_trace = int_field "t";
                  cv_resubmit = field "r" <> None;
                  cv_handoff = hs;
                  cv_elide = field "y" <> None;
                }
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error "malformed call item: missing or mistyped envelope field")

(* Reply parsing pulls only the sequence number out of the bytes; the
   outcome slice is returned unmaterialised so stale replies (already
   completed, e.g. after a resubmit race) cost no decode at all. *)
let parse_reply_view vw =
  match V.shape vw with
  | V.Vpair -> (
      match V.pair_parts vw with
      | Error e -> Error ("malformed reply item: " ^ e)
      | Ok (s, ov) -> (
          match V.as_int s with
          | Ok seq -> Ok (seq, ov)
          | Error e -> Error ("malformed reply item: " ^ e)))
  | V.Vrecord -> (
      match V.record_fields vw with
      | Error e -> Error ("malformed reply item: " ^ e)
      | Ok fields -> (
          match (List.assoc_opt "q" fields, List.assoc_opt "o" fields) with
          | Some q, Some ov -> (
              match V.as_int q with
              | Ok seq -> Ok (seq, ov)
              | Error e -> Error ("malformed reply item: " ^ e))
          | _ -> Error "malformed reply item: missing q/o field"))
  | _ -> Error "malformed reply item: not a pair or record"

let outcome_of_view vw =
  match V.materialize vw with Ok v -> outcome_of_value v | Error e -> Error e

let item_trace_view vw =
  match V.shape vw with
  | V.Vrecord -> (
      match V.record_field vw "t" with
      | Ok (Some f) -> ( match V.as_int f with Ok tid -> Some tid | Error _ -> None)
      | _ -> None)
  | _ -> None
