(** The configuration of a receiving port group, in one value.

    Everything that used to travel as a sprawl of optional arguments
    through {!Target.create} and [Guardian.register_group] —
    reply-channel buffering, execution discipline, cross-incarnation
    dedup, sharding, promise pipelining — lives in this record. Build
    one by deriving from {!default} with the [with_*] functions:

    {[
      Group_config.(default |> with_dedup ~cache:2048 |> with_shards 4)
    ]}

    Both entry points take the whole config ([?config]); the guardian
    layer stores it per group and compares {e whole configs} with
    {!equal} when a group is re-registered, so a conflicting
    re-registration fails loudly, field-by-field ({!diff}). *)

type shard_key = port:string -> Xdr.value -> int
(** A pure partition function routing each call to an execution lane
    (docs/SHARDING.md). Purity matters: a resubmitted call must re-hash
    to its original lane. *)

type t = {
  reply_config : Chanhub.config;  (** buffering of the per-stream reply channel *)
  ordered : bool;
      (** [true] (the paper's §2.1 semantics): the next call on a stream
          starts only when the previous one has replied. [false] is the
          explicit override: calls run concurrently, replies still
          leave in call order. *)
  dedup : bool;
      (** cross-incarnation outcome cache keyed by stable call-id —
          required receiver-side for supervisor exactly-once
          (docs/FAULTS.md) *)
  dedup_cache : int;  (** retained outcomes (oldest evicted first) *)
  shards : int;
      (** execution lanes per connection; >1 relaxes in-order execution
          to per-key order (docs/SHARDING.md) *)
  shard_key : shard_key option;
      (** [None] = hash of the first argument ({!Target.default_shard_key}) *)
  pipeline : Wire.routcome Pipeline.Registry.t option;
      (** promise-pipelining outcome registry (docs/PIPELINE.md). The
          guardian layer always substitutes its own per-guardian
          registry; set this only when driving {!Target} directly. *)
  shed_hwm : int option;
      (** load-shedding high-water mark (docs/OVERLOAD.md): when a
          lane's queue reaches this depth, new non-resubmit calls are
          rejected with the paper's [unavailable] exception instead of
          queued, and acks carry a pressure signal so adaptive senders
          cut their window first. [None] (default) never sheds. *)
  offload : Sched.Pool.t option;
      (** domain pool for handler bodies (docs/DOMAINS.md): when set,
          the group's handler implementations execute on real worker
          domains via {!Sched.Pool.run} while dispatch, per-key call
          order, per-stream reply order, dedup and pipelining stay on
          the simulator domain. Offloaded handlers must follow the pool
          rules (pure computation — no scheduler calls, no remote
          calls). [None] (default) keeps everything on one domain and
          the run fully deterministic. *)
}

val default : t
(** Paper semantics: ordered, unsharded, no dedup, no pipelining,
    {!Chanhub.default_config} replies. *)

val with_reply_config : Chanhub.config -> t -> t

val with_ordered : bool -> t -> t

val with_dedup : ?cache:int -> t -> t
(** Enable the cross-incarnation outcome cache ([cache] defaults to
    1024 retained outcomes). *)

val without_dedup : t -> t

val with_shards : ?key:shard_key -> int -> t -> t
(** Set the lane count (raises [Invalid_argument] on [<= 0]); [key]
    replaces the partition function, otherwise any previously set key
    is kept. *)

val with_pipeline : Wire.routcome Pipeline.Registry.t -> t -> t

val with_shed : int -> t -> t
(** Enable load-shedding at the given per-lane queue depth (raises
    [Invalid_argument] on [<= 0]). Pick it relative to the lane's
    [shard_queue_hwm] observations: sheds begin exactly at the mark,
    and the ack pressure signal starts at half of it. *)

val with_offload : Sched.Pool.t -> t -> t
(** Execute this group's handler bodies on the pool's worker domains
    (docs/DOMAINS.md). Combine with {!with_shards}: each lane offloads
    its current call and lanes overlap on real cores. *)

val without_offload : t -> t

val equal : t -> t -> bool
(** Structural on the plain fields; {e physical} on [shard_key],
    [pipeline] and [offload] (functions, registries and pools have no
    structural equality) — so re-passing the very same config value is
    always compatible. *)

val diff : t -> t -> string list
(** Names of the fields on which the two configs disagree (empty iff
    {!equal}). *)

val pp : Format.formatter -> t -> unit
