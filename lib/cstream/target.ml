module S = Sched.Scheduler

type work =
  | Overhead  (** one arriving network message: charge kernel overhead *)
  | Exec of { seq : int; cid : int; port : string; kind : Wire.kind; args : Xdr.value }

(* Cross-incarnation dedup cache entry, keyed by (stable stream id,
   stable call-id). [In_progress] collects the reply callbacks of
   duplicate submissions that arrived while the first execution is
   still running; [Done] replays the recorded outcome. *)
type in_progress = { mutable waiters : (Wire.routcome -> unit) list }

type entry = In_progress of in_progress | Done of Wire.routcome

type t = {
  hub : Chanhub.hub;
  sched : S.t;
  t_gid : string;
  reply_config : Chanhub.config;
  t_ordered : bool;
  t_dedup : bool;
  t_cache_cap : int;
  t_cache : (string * int, entry) Hashtbl.t;
  t_done_order : (string * int) Queue.t;
  mutable t_done_count : int;
  t_registry : Wire.routcome Pipeline.Registry.t option;
      (* promise-pipelining outcome registry, possibly shared with
         other targets of the same guardian (docs/PIPELINE.md) *)
  dispatch : dispatch;
  conns : (Chanhub.key, conn) Hashtbl.t;
  mutable closed : bool;
}

and conn = {
  c_target : t;
  c_in : Chanhub.in_chan;
  c_reply : Chanhub.out_chan;
  c_stable : string;  (* incarnation-independent identity of the sending stream *)
  c_work : work Sched.Bqueue.t;
  mutable c_driver : S.fiber option;
  mutable c_broken : bool;
  mutable c_inflight : bool;  (* a call is being executed right now *)
  mutable c_breaking : string option;  (* break requested mid-call *)
  mutable c_on_close : (unit -> unit) list;
  (* unordered mode: outcomes parked until all earlier replies went out *)
  c_done : (int, Wire.kind * Wire.routcome) Hashtbl.t;
  mutable c_next_reply : int;
}

and dispatch =
  conn ->
  seq:int ->
  port:string ->
  kind:Wire.kind ->
  args:Xdr.value ->
  reply:(Wire.routcome -> unit) ->
  unit

let gid t = t.t_gid

let dedup t = t.t_dedup

let conn_src c = Chanhub.in_src c.c_in

let conn_count t = Hashtbl.length t.conns

let counter t name = Sim.Stats.counter (S.stats t.sched) name

let flush_replies c = if Chanhub.out_broken c.c_reply = None then Chanhub.flush_out c.c_reply

(* Tear down the connection without notifying the sender — used when
   the sender side is already gone (its reply channel broke). *)
let remove_conn c =
  if not c.c_broken then begin
    c.c_broken <- true;
    Hashtbl.remove c.c_target.conns (Chanhub.in_key c.c_in);
    (match c.c_driver with
    | Some fiber -> S.kill c.c_target.sched fiber
    | None -> ());
    Sched.Bqueue.close c.c_work;
    let hooks = c.c_on_close in
    c.c_on_close <- [];
    List.iter (fun f -> f ()) hooks
  end

let on_conn_close c f = if c.c_broken then f () else c.c_on_close <- f :: c.c_on_close

(* Receiver-initiated break proper: flush replies already produced
   (calls answered before the break are unaffected — the paper's
   synchronous break), then Reset the sender. *)
let do_break c reason =
  if not c.c_broken then begin
    flush_replies c;
    Chanhub.break_in c.c_in ~reason;
    remove_conn c
  end

let break_conn c ~reason =
  if c.c_inflight then begin
    (* A call is mid-execution (typically the one whose handler is
       requesting the break): wait for its reply to be emitted first. *)
    if c.c_breaking = None then c.c_breaking <- Some reason
  end
  else do_break c reason

let emit_reply c ~seq ~kind outcome =
  if not c.c_broken then begin
    let item =
      match (kind, outcome) with
      | Wire.Send, Wire.W_normal _ -> Wire.send_ok_item ~seq
      | (Wire.Call | Wire.Send), _ -> Wire.reply_item ~seq outcome
    in
    (* Back-pressure: a slow/unreachable caller bounds the reply
       channel's in-flight bytes, parking the driver fiber (in ordered
       mode) instead of growing the unacked queue without limit. A
       no-op outside fiber context or when the reply config leaves the
       window unbounded. *)
    ignore
      (Chanhub.await_window c.c_reply ~bytes:(Xdr.Bin.size item) : (unit, string) result);
    if not c.c_broken then ignore (Chanhub.send c.c_reply item : (unit, string) result)
  end

(* The sending stream's identity across restarts: its reply-channel
   label minus the trailing incarnation number, qualified by source
   address. This is what a resubmitted call's cid is stable within. *)
let stable_stream_id (key : Chanhub.key) =
  Wire.stable_stream_id ~src:key.Chanhub.src ~reply_label:key.Chanhub.meta

let remember t id outcome =
  Hashtbl.replace t.t_cache id (Done outcome);
  Queue.push id t.t_done_order;
  t.t_done_count <- t.t_done_count + 1;
  while t.t_done_count > t.t_cache_cap do
    let victim = Queue.pop t.t_done_order in
    Hashtbl.remove t.t_cache victim;
    t.t_done_count <- t.t_done_count - 1
  done

(* Promise pipelining (docs/PIPELINE.md): substitute {!Xdr.Pref}
   placeholders among [args] with the produced outcomes from the
   target's registry, parking the call until every referenced outcome
   has landed. [k] receives the fully substituted arguments; if any
   producer terminated abnormally the call completes through [reply]
   with the corresponding abnormal outcome and [k] never runs. *)
let resolve_refs c ~cid ~args ~reply k =
  let t = c.c_target in
  if not (Pipeline.has_refs args) then k args
  else begin
    let fail reason =
      Sim.Stats.incr (counter t "ref_failures");
      reply (Wire.W_failure reason)
    in
    match t.t_registry with
    | None -> fail "promise pipelining is not enabled at this port group"
    | Some reg ->
        let refs = Pipeline.refs args in
        (* Outcomes are only observable within one guardian's registry.
           A reference to a stream that feeds a different guardian on
           this node (its group is outside our registry's scope) could
           park forever — the producing call's outcome lands in a
           disjoint table. The producing group is embedded in the
           stable stream id; reject anything out of scope. *)
        if
          List.exists
            (fun (r : Xdr.promise_ref) ->
              match Wire.stream_id_group r.Xdr.ps_stream with
              | Some g -> not (Pipeline.Registry.in_scope reg g)
              | None -> true)
            refs
        then
          fail
            "pipelined reference to a call through a different guardian; claim it instead"
        else if
          (* A reference to a call on this same stream at our cid or
             later can never resolve (calls execute in stream order), so
             parking would deadlock the stream on itself. *)
          List.exists
            (fun r -> String.equal r.Xdr.ps_stream c.c_stable && r.Xdr.ps_call >= cid)
            refs
        then fail "pipelined reference to a not-earlier call on the same stream"
        else begin
          let proceed () =
            (* All referenced outcomes are in the registry now. The
               first abnormal producer (in argument order) decides the
               call's fate; otherwise every reference is replaced by
               its produced (possibly field-projected) value. *)
            let abnormal = ref None in
            List.iter
              (fun (r : Xdr.promise_ref) ->
                if !abnormal = None then
                  match Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call with
                  | Some (Wire.W_normal _) | None -> ()
                  | Some ((Wire.W_signal _ | Wire.W_unavailable _ | Wire.W_failure _) as o) ->
                      abnormal := Some o)
              refs;
            match !abnormal with
            | Some o ->
                Sim.Stats.incr (counter t "ref_failures");
                reply o
            | None -> (
                let lookup (r : Xdr.promise_ref) =
                  match Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call with
                  | Some (Wire.W_normal v) -> Pipeline.project ~field:r.Xdr.ps_field v
                  | Some _ | None -> Error "referenced outcome disappeared" (* unreachable *)
                in
                match Pipeline.substitute ~lookup args with
                | Ok args' ->
                    Sim.Stats.add (counter t "ref_substitutions") (List.length refs);
                    k args'
                | Error reason -> fail reason)
          in
          let missing =
            List.filter
              (fun (r : Xdr.promise_ref) ->
                Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call = None)
              refs
          in
          if
            (* A missing outcome at or below its stream's eviction mark
               was already produced and forgotten: it will never be
               re-recorded (only a dedup replay of the producer could,
               and that replays the cache, not the registry's past),
               so parking would hang the dependent call forever. *)
            List.exists
              (fun (r : Xdr.promise_ref) ->
                Pipeline.Registry.evicted reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call)
              missing
          then
            fail
              "referenced outcome already evicted from the pipeline registry; claim it instead"
          else if missing = [] then proceed ()
          else begin
            let remaining = ref (List.length missing) in
            let aborted = ref false in
            let deliver _o =
              (* Fires when a producer's outcome lands. The conn may
                 have died while we were parked: with dedup on, the
                 call still runs to completion — mirroring the orphan
                 rule for executing handlers — so its outcome lands in
                 the cross-incarnation cache, where the In_progress
                 entry inserted before parking is resolved and a
                 resubmitted duplicate finds the reply it joined for.
                 Without dedup the parked call dies with its conn (its
                 waiters are cancelled on close, below). *)
              if (not !aborted) && (t.t_dedup || not c.c_broken) then begin
                decr remaining;
                if !remaining = 0 then proceed ()
              end
            in
            let rec register acc = function
              | [] -> Ok acc
              | (r : Xdr.promise_ref) :: rest -> (
                  match
                    Pipeline.Registry.await reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call
                      deliver
                  with
                  | `Fired -> register acc rest
                  | `Parked w -> register (w :: acc) rest
                  | `Refused -> Error acc)
            in
            match register [] missing with
            | Error registered ->
                (* Nothing parked after all: release the waiter slots
                   already taken, and don't count an aborted park. *)
                aborted := true;
                List.iter (Pipeline.Registry.cancel reg) registered;
                fail "pipeline dependency table full"
            | Ok registered ->
                Sim.Stats.incr (counter t "parked_calls");
                if not t.t_dedup then
                  on_conn_close c (fun () ->
                      List.iter (Pipeline.Registry.cancel reg) registered)
          end
        end
  end

(* Execute one call, or don't: with dedup on, a call-id already seen is
   never re-executed — its recorded outcome is replayed (or joined, if
   the first execution is still in flight). This is what turns the
   sender's resubmission protocol into cross-incarnation exactly-once
   execution. Pipelined arguments are substituted (parking the call if
   needed) before the handler dispatches; every Call outcome is
   recorded in the pipelining registry for later dependents. *)
let exec_call c ~seq ~cid ~port ~kind ~args ~reply =
  let t = c.c_target in
  let reply =
    match t.t_registry with
    | Some reg when kind = Wire.Call ->
        fun outcome ->
          Pipeline.Registry.record reg ~stream:c.c_stable ~call:cid outcome;
          reply outcome
    | Some _ | None -> reply
  in
  let run ~reply =
    resolve_refs c ~cid ~args ~reply (fun args -> t.dispatch c ~seq ~port ~kind ~args ~reply)
  in
  if not t.t_dedup then run ~reply
  else begin
    let id = (c.c_stable, cid) in
    match Hashtbl.find_opt t.t_cache id with
    | Some (Done outcome) ->
        Sim.Stats.incr (counter t "target_dedup_replays");
        reply outcome
    | Some (In_progress w) ->
        Sim.Stats.incr (counter t "target_dedup_joins");
        w.waiters <- reply :: w.waiters
    | None ->
        let w = { waiters = [] } in
        Hashtbl.replace t.t_cache id (In_progress w);
        run ~reply:(fun outcome ->
            (* Record before replying: the outcome must outlive this
               connection so a duplicate on a later incarnation replays
               it instead of re-executing. *)
            remember t id outcome;
            let waiters = w.waiters in
            w.waiters <- [];
            List.iter (fun r -> r outcome) waiters;
            reply outcome)
  end

(* Unordered mode keeps the stream's reply-order guarantee: outcomes
   are released strictly by call sequence even though execution
   overlaps. *)
let release_in_order c =
  let rec go () =
    match Hashtbl.find_opt c.c_done c.c_next_reply with
    | Some (kind, outcome) ->
        Hashtbl.remove c.c_done c.c_next_reply;
        emit_reply c ~seq:c.c_next_reply ~kind outcome;
        c.c_next_reply <- c.c_next_reply + 1;
        go ()
    | None -> ()
  in
  go ()

(* Sequential execution of one stream's calls: the driver parks until
   the handler replies before taking the next piece of work. With
   [t_ordered = false] (the override hinted at in §2.1), calls are
   dispatched as they arrive and run concurrently; only the replies
   are sequenced. *)
let driver_loop c =
  let t = c.c_target in
  let overhead = (Chanhub.hub_net_config t.hub).Net.kernel_overhead in
  let rec loop () =
    match Sched.Bqueue.deq c.c_work with
    | Overhead ->
        if overhead > 0.0 then S.sleep t.sched overhead;
        loop ()
    | Exec { seq; cid; port; kind; args } when not t.t_ordered ->
        exec_call c ~seq ~cid ~port ~kind ~args ~reply:(fun o ->
            if not c.c_broken then begin
              Hashtbl.replace c.c_done seq (kind, o);
              release_in_order c
            end);
        loop ()
    | Exec { seq; cid; port; kind; args } -> (
        c.c_inflight <- true;
        let outcome =
          S.suspend t.sched (fun w ->
              exec_call c ~seq ~cid ~port ~kind ~args ~reply:(fun o ->
                  ignore (S.wake w o : bool)))
        in
        c.c_inflight <- false;
        emit_reply c ~seq ~kind outcome;
        match c.c_breaking with
        | Some reason ->
            c.c_breaking <- None;
            do_break c reason
        | None -> loop ())
    | exception Sched.Bqueue.Closed -> ()
  in
  loop ()

let accept t in_chan =
  let key = Chanhub.in_key in_chan in
  let reply =
    Chanhub.connect t.hub ~dst:key.Chanhub.src ~label:key.Chanhub.meta ~meta:"" t.reply_config
  in
  let c =
    {
      c_target = t;
      c_in = in_chan;
      c_reply = reply;
      c_stable = stable_stream_id key;
      c_work = Sched.Bqueue.create t.sched;
      c_driver = None;
      c_broken = false;
      c_inflight = false;
      c_breaking = None;
      c_on_close = [];
      c_done = Hashtbl.create 8;
      c_next_reply = 0;
    }
  in
  Hashtbl.replace t.conns key c;
  (* If either direction dies — the sender Reset the call channel (a
     restart) or the reply path broke — drop the connection; the
     sender side has already broken or forgotten the stream. *)
  Chanhub.on_in_break in_chan (fun _reason -> remove_conn c);
  Chanhub.on_out_break reply (fun _reason -> remove_conn c);
  Chanhub.set_deliver in_chan (fun items ->
      if not c.c_broken then begin
        Sched.Bqueue.enq c.c_work Overhead;
        List.iter
          (fun item ->
            match Wire.parse_call item with
            | Ok (seq, cid, port, kind, args) ->
                Sched.Bqueue.enq c.c_work (Exec { seq; cid; port; kind; args })
            | Error reason -> break_conn c ~reason)
          items
      end);
  let fiber =
    S.spawn t.sched ~daemon:true
      ~name:(Printf.sprintf "target:%s<-%d" t.t_gid key.Chanhub.src)
      (fun () -> driver_loop c)
  in
  c.c_driver <- Some fiber

let create hub ~gid ?(reply_config = Chanhub.default_config) ?(ordered = true) ?(dedup = false)
    ?(dedup_cache = 1024) ?pipeline dispatch =
  let t =
    {
      hub;
      sched = Chanhub.hub_sched hub;
      t_gid = gid;
      reply_config;
      t_ordered = ordered;
      t_dedup = dedup;
      t_cache_cap = dedup_cache;
      t_cache = Hashtbl.create (if dedup then 64 else 1);
      t_done_order = Queue.create ();
      t_done_count = 0;
      t_registry = pipeline;
      dispatch;
      conns = Hashtbl.create 8;
      closed = false;
    }
  in
  Chanhub.on_connect hub ~label:gid (fun in_chan -> accept t in_chan);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Chanhub.remove_acceptor t.hub ~label:t.t_gid;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (fun c -> break_conn c ~reason:"port group closed") live
  end
