module S = Sched.Scheduler

(* A call's arguments ride the work queue still encoded whenever
   nothing on the way to the handler needs their structure: dedup
   replays, sheds and joins then never pay the decode. [Materialized]
   appears when the shard router had to hash the first argument, or
   once the handler is about to run. Views are bound to the arrival
   frame's intern state and are not domain-safe, so an [Encoded]
   payload is always forced on the scheduler's domain before dispatch
   (which may hand the value to a worker domain). *)
type lazy_args = Materialized of Xdr.value | Encoded of Xdr.View.t

type work =
  | Overhead  (** one arriving network message: charge kernel overhead *)
  | Exec of {
      seq : int;
      cid : int;
      trace : int option;  (* causal trace id carried by the call item *)
      port : string;
      kind : Wire.kind;
      args : lazy_args;
      handoff : Wire.handoff list;  (* annotations for foreign Prefs in args *)
      elide : bool;  (* strip a normal result from the reply (docs/HANDOFF.md) *)
    }

(* Cross-incarnation dedup cache entry, keyed by (stable stream id,
   stable call-id). [In_progress] collects the reply callbacks of
   duplicate submissions that arrived while the first execution is
   still running; [Done] replays the recorded outcome. *)
type in_progress = { mutable waiters : (Wire.routcome -> unit) list }

type entry = In_progress of in_progress | Done of Wire.routcome

type t = {
  hub : Chanhub.hub;
  sched : S.t;
  t_gid : string;
  reply_config : Chanhub.config;
  t_ordered : bool;
  t_dedup : bool;
  t_shards : int;
  t_shed : int option;  (* load-shed high-water mark on lane queue depth *)
  t_shard_key : port:string -> Xdr.value -> int;
  t_dispatch_counts : int array;
      (* cumulative calls routed to each shard, for the imbalance stat *)
  t_cache_cap : int;
  t_cache : (string * int, entry) Hashtbl.t;
  t_done_order : (string * int) Queue.t;
  mutable t_done_count : int;
  t_registry : Wire.routcome Pipeline.Registry.t option;
      (* promise-pipelining outcome registry, possibly shared with
         other targets of the same guardian (docs/PIPELINE.md) *)
  dispatch : dispatch;
  conns : (Chanhub.key, conn) Hashtbl.t;
  mutable closed : bool;
}

and conn = {
  c_target : t;
  c_in : Chanhub.in_chan;
  c_reply : Chanhub.out_chan;
  c_stable : string;  (* incarnation-independent identity of the sending stream *)
  c_shards : shard array;  (* one execution lane per shard (docs/SHARDING.md) *)
  mutable c_broken : bool;
  mutable c_inflight : int;  (* calls being executed right now, across all lanes *)
  mutable c_breaking : string option;  (* break requested mid-call *)
  mutable c_on_close : (unit -> unit) list;
  (* sharded/unordered modes: outcomes parked until all earlier replies went out *)
  c_done : (int, Wire.kind * int option * bool * Wire.routcome) Hashtbl.t;
      (* (kind, trace, elide, outcome) *)
  mutable c_next_reply : int;
  (* reply seq -> stable call-id, for ack-tied registry release: when the
     reply channel's ack frees a reply item, the corresponding outcome can
     no longer be claimed through this stream (docs/PIPELINE.md) *)
  c_seq2cid : (int, int) Hashtbl.t;
}

and shard = {
  sh_work : work Sched.Bqueue.t;
  mutable sh_driver : S.fiber option;
}

and dispatch =
  conn ->
  seq:int ->
  port:string ->
  kind:Wire.kind ->
  args:Xdr.value ->
  reply:(Wire.routcome -> unit) ->
  unit

let gid t = t.t_gid

let dedup t = t.t_dedup

let shards t = t.t_shards

(* Default partition function: hash of the first argument, so a
   [Pair (key, payload)] argument shards on the key alone. The function
   must be pure — a resubmitted call (same stable call item, possibly a
   new stream incarnation) re-hashes to the same shard, which is what
   keeps dedup joins and per-key order stable across restarts. *)
let first_arg = function Xdr.Pair (a, _) -> a | v -> v

let default_shard_key ~port:_ args = Hashtbl.hash (first_arg args)

let shard_of t ~port args =
  if t.t_shards = 1 then 0
  else
    let k = t.t_shard_key ~port args in
    ((k mod t.t_shards) + t.t_shards) mod t.t_shards

let conn_src c = Chanhub.in_src c.c_in

let conn_count t = Hashtbl.length t.conns

let counter t name = Sim.Stats.counter (S.stats t.sched) name

(* Receiver-side span emission (docs/TRACING.md): a no-op unless the
   arriving item carried a trace id, which it only does while the
   sender's (shared) span store is enabled. *)
let span t ~kind ~trace ?stream ?call ?note () =
  match trace with
  | None -> ()
  | Some tid ->
      let sp = S.spans t.sched in
      if Sim.Span.enabled sp then
        Sim.Span.record sp ~time:(S.now t.sched) ~kind ~trace:tid
          ~node:(Chanhub.hub_addr t.hub)
          ?stream ?call ?note ()

(* Raise a counter to a new high-water mark (counters only add). *)
let bump_hwm c v = if v > Sim.Stats.count c then Sim.Stats.add c (v - Sim.Stats.count c)

let materialize_view t vw =
  Sim.Stats.incr (counter t "target_args_materialized");
  Xdr.View.materialize vw

let force_args t = function
  | Materialized v -> Ok v
  | Encoded vw -> materialize_view t vw

(* Whether any argument is a pipelined reference — answered on the
   encoded bytes (a tag-byte scan) when the args are still lazy. *)
let args_have_refs = function
  | Materialized v -> Pipeline.has_refs v
  | Encoded vw -> Xdr.View.has_prefs vw

let flush_replies c = if Chanhub.out_broken c.c_reply = None then Chanhub.flush_out c.c_reply

(* Tear down the connection without notifying the sender — used when
   the sender side is already gone (its reply channel broke). *)
let remove_conn c =
  if not c.c_broken then begin
    c.c_broken <- true;
    Hashtbl.remove c.c_target.conns (Chanhub.in_key c.c_in);
    Array.iter
      (fun sh ->
        (match sh.sh_driver with
        | Some fiber -> S.kill c.c_target.sched fiber
        | None -> ());
        Sched.Bqueue.close sh.sh_work)
      c.c_shards;
    let hooks = c.c_on_close in
    c.c_on_close <- [];
    List.iter (fun f -> f ()) hooks
  end

let on_conn_close c f = if c.c_broken then f () else c.c_on_close <- f :: c.c_on_close

(* Receiver-initiated break proper: flush replies already produced
   (calls answered before the break are unaffected — the paper's
   synchronous break), then Reset the sender. *)
let do_break c reason =
  if not c.c_broken then begin
    flush_replies c;
    Chanhub.break_in c.c_in ~reason;
    remove_conn c
  end

let break_conn c ~reason =
  if c.c_inflight > 0 then begin
    (* A call is mid-execution (typically the one whose handler is
       requesting the break): wait for its reply — with several lanes,
       for every in-flight call's reply — to be emitted first. *)
    if c.c_breaking = None then c.c_breaking <- Some reason
  end
  else do_break c reason

let emit_reply c ~seq ~kind ~trace ~elide outcome =
  if not c.c_broken then begin
    let t = c.c_target in
    (* The reply carries the call's trace id only while tracing is on,
       so the off-path reply encoding stays the compact pair. *)
    let wire_trace = if Sim.Span.enabled (S.spans t.sched) then trace else None in
    let item =
      match (kind, outcome) with
      | Wire.Send, Wire.W_normal _ -> Wire.send_ok_item ~seq ~trace:wire_trace
      | Wire.Call, Wire.W_normal _ when elide ->
          (* The value travels by handoff push (docs/HANDOFF.md); the
             reply only needs to preserve stream ordering and synch.
             Abnormal outcomes always ship in full — the caller turns
             them into its fallback push. *)
          Sim.Stats.incr (counter t "handoff_elided_replies");
          Wire.send_ok_item ~seq ~trace:wire_trace
      | (Wire.Call | Wire.Send), _ -> Wire.reply_item ~seq ~trace:wire_trace outcome
    in
    span t ~kind:Sim.Span.Reply ~trace ~stream:c.c_stable ();
    (* Back-pressure: a slow/unreachable caller bounds the reply
       channel's in-flight bytes, parking the driver fiber (in ordered
       mode) instead of growing the unacked queue without limit. A
       no-op outside fiber context or when the reply config leaves the
       window unbounded. *)
    ignore
      (Chanhub.await_window c.c_reply ~bytes:(Xdr.Bin.size item) : (unit, string) result);
    if not c.c_broken then ignore (Chanhub.send c.c_reply item : (unit, string) result)
  end

(* The sending stream's identity across restarts: its reply-channel
   label minus the trailing incarnation number, qualified by source
   address. This is what a resubmitted call's cid is stable within. *)
let stable_stream_id (key : Chanhub.key) =
  Wire.stable_stream_id ~src:key.Chanhub.src ~reply_label:key.Chanhub.meta

let remember t id outcome =
  Hashtbl.replace t.t_cache id (Done outcome);
  Queue.push id t.t_done_order;
  t.t_done_count <- t.t_done_count + 1;
  while t.t_done_count > t.t_cache_cap do
    let victim = Queue.pop t.t_done_order in
    Hashtbl.remove t.t_cache victim;
    t.t_done_count <- t.t_done_count - 1
  done

(* Promise pipelining (docs/PIPELINE.md): substitute {!Xdr.Pref}
   placeholders among [args] with the produced outcomes from the
   target's registry, parking the call until every referenced outcome
   has landed. [k] receives the fully substituted arguments; if any
   producer terminated abnormally the call completes through [reply]
   with the corresponding abnormal outcome and [k] never runs. *)
let resolve_refs c ~cid ~trace ~args ~handoffs ~reply k =
  let t = c.c_target in
  if not (args_have_refs args) then (
    (* The hot path: nothing before the handler needed the decoded
       structure, so it is forced only now, immediately before
       dispatch — and on this (scheduler) domain, never a worker's. *)
    match force_args t args with
    | Ok v -> k v
    | Error reason -> reply (Wire.W_failure ("malformed call arguments: " ^ reason)))
  else
    (* Enumerating and substituting refs needs the full value. *)
    match force_args t args with
    | Error reason -> reply (Wire.W_failure ("malformed call arguments: " ^ reason))
    | Ok args ->
    begin
    let fail reason =
      Sim.Stats.incr (counter t "ref_failures");
      reply (Wire.W_failure reason)
    in
    match t.t_registry with
    | None -> fail "promise pipelining is not enabled at this port group"
    | Some reg ->
        let refs = Pipeline.refs args in
        (* Third-party handoff (docs/HANDOFF.md): a reference covered by
           a handoff annotation names an outcome another node owns and
           will push to this hub. Mark such keys foreign — waiters may
           park on them — and arrange for the pushed outcome to land in
           the registry, firing those waiters. Re-registration after a
           resubmit is harmless: [record] is idempotent. *)
        List.iter
          (fun (h : Wire.handoff) ->
            if Pipeline.Registry.find reg ~stream:h.Wire.ho_stream ~call:h.Wire.ho_call = None
            then begin
              Pipeline.Registry.mark_foreign reg ~stream:h.Wire.ho_stream ~call:h.Wire.ho_call;
              Chanhub.handoff_expect t.hub ~stream:h.Wire.ho_stream ~call:h.Wire.ho_call
                (fun ov ->
                  match Wire.outcome_of_value ov with
                  | Ok o ->
                      Pipeline.Registry.record reg ~stream:h.Wire.ho_stream
                        ~call:h.Wire.ho_call o
                  | Error _ -> ())
            end)
          handoffs;
        if handoffs <> [] then
          span t ~kind:Sim.Span.Handoff ~trace ~stream:c.c_stable ~call:cid
            ~note:(Printf.sprintf "%d foreign ref(s) accepted" (List.length handoffs))
            ();
        (* Outcomes are only observable within one guardian's registry.
           A reference to a stream that feeds a different guardian on
           this node (its group is outside our registry's scope) could
           park forever — the producing call's outcome lands in a
           disjoint table. The producing group is embedded in the
           stable stream id; reject anything out of scope — unless the
           key is foreign-owned (or its pushed outcome already landed):
           then another node feeds it and the scope argument does not
           apply. *)
        let foreign (r : Xdr.promise_ref) =
          Pipeline.Registry.is_foreign reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call
          || Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call <> None
        in
        if
          List.exists
            (fun (r : Xdr.promise_ref) ->
              (not (foreign r))
              &&
              match Wire.stream_id_group r.Xdr.ps_stream with
              | Some g -> not (Pipeline.Registry.in_scope reg g)
              | None -> true)
            refs
        then
          fail
            "pipelined reference to a call through a different guardian; claim it instead"
        else if
          (* A reference to a call on this same stream at our cid or
             later can never resolve (calls execute in stream order), so
             parking would deadlock the stream on itself. *)
          List.exists
            (fun r -> String.equal r.Xdr.ps_stream c.c_stable && r.Xdr.ps_call >= cid)
            refs
        then fail "pipelined reference to a not-earlier call on the same stream"
        else begin
          let proceed () =
            (* All referenced outcomes are in the registry now. The
               first abnormal producer (in argument order) decides the
               call's fate; otherwise every reference is replaced by
               its produced (possibly field-projected) value. *)
            let abnormal = ref None in
            List.iter
              (fun (r : Xdr.promise_ref) ->
                if !abnormal = None then
                  match Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call with
                  | Some (Wire.W_normal _) | None -> ()
                  | Some ((Wire.W_signal _ | Wire.W_unavailable _ | Wire.W_failure _) as o) ->
                      abnormal := Some o)
              refs;
            match !abnormal with
            | Some o ->
                Sim.Stats.incr (counter t "ref_failures");
                reply o
            | None -> (
                let lookup (r : Xdr.promise_ref) =
                  match Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call with
                  | Some (Wire.W_normal v) -> Pipeline.project ~field:r.Xdr.ps_field v
                  | Some _ | None -> Error "referenced outcome disappeared" (* unreachable *)
                in
                match Pipeline.substitute ~lookup args with
                | Ok args' ->
                    Sim.Stats.add (counter t "ref_substitutions") (List.length refs);
                    span t ~kind:Sim.Span.Substitute ~trace ~stream:c.c_stable ~call:cid
                      ~note:(Printf.sprintf "%d ref(s)" (List.length refs))
                      ();
                    k args'
                | Error reason -> fail reason)
          in
          let missing =
            List.filter
              (fun (r : Xdr.promise_ref) ->
                Pipeline.Registry.find reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call = None)
              refs
          in
          if
            (* A missing outcome at or below its stream's eviction mark
               was already produced and forgotten: it will never be
               re-recorded (only a dedup replay of the producer could,
               and that replays the cache, not the registry's past),
               so parking would hang the dependent call forever. *)
            List.exists
              (fun (r : Xdr.promise_ref) ->
                Pipeline.Registry.evicted reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call)
              missing
          then
            fail
              "referenced outcome already evicted from the pipeline registry; claim it instead"
          else if missing = [] then proceed ()
          else begin
            let remaining = ref (List.length missing) in
            let aborted = ref false in
            let deliver _o =
              (* Fires when a producer's outcome lands. The conn may
                 have died while we were parked: with dedup on, the
                 call still runs to completion — mirroring the orphan
                 rule for executing handlers — so its outcome lands in
                 the cross-incarnation cache, where the In_progress
                 entry inserted before parking is resolved and a
                 resubmitted duplicate finds the reply it joined for.
                 Without dedup the parked call dies with its conn (its
                 waiters are cancelled on close, below). *)
              if (not !aborted) && (t.t_dedup || not c.c_broken) then begin
                decr remaining;
                if !remaining = 0 then proceed ()
              end
            in
            let rec register acc = function
              | [] -> Ok acc
              | (r : Xdr.promise_ref) :: rest -> (
                  match
                    Pipeline.Registry.await reg ~stream:r.Xdr.ps_stream ~call:r.Xdr.ps_call
                      deliver
                  with
                  | `Fired -> register acc rest
                  | `Parked w -> register (w :: acc) rest
                  | `Refused -> Error acc)
            in
            match register [] missing with
            | Error registered ->
                (* Nothing parked after all: release the waiter slots
                   already taken, and don't count an aborted park. *)
                aborted := true;
                List.iter (Pipeline.Registry.cancel reg) registered;
                fail "pipeline dependency table full"
            | Ok registered ->
                Sim.Stats.incr (counter t "parked_calls");
                span t ~kind:Sim.Span.Park ~trace ~stream:c.c_stable ~call:cid
                  ~note:(Printf.sprintf "%d outcome(s) missing" (List.length missing))
                  ();
                if not t.t_dedup then
                  on_conn_close c (fun () ->
                      List.iter (Pipeline.Registry.cancel reg) registered)
          end
        end
  end

(* Reserved ports of the third-party handoff protocol
   (docs/HANDOFF.md). Both are handled here, inside the normal work
   path — so they keep their place in the stream's reply order — and
   {e before} the dedup cache, so a resubmitted notice re-runs and
   re-forwards (the push side absorbs the duplicate). *)
let handoff_notice_port = Wire.handoff_notice_port

let handoff_redeem_port = Wire.handoff_redeem_port

(* Validate a notice/redeem item and hand the producer's registry to
   [k]. The registry checks mirror resolve_refs: an absent registry, an
   out-of-scope stream or an evicted outcome can never be served. *)
let with_handoff_target c ~what ~check_epoch ~args ~reply k =
  let t = c.c_target in
  match force_args t args with
  | Error reason -> reply (Wire.W_failure (Printf.sprintf "malformed %s: %s" what reason))
  | Ok v -> (
      match Wire.parse_handoff v with
      | Error e -> reply (Wire.W_failure e)
      | Ok ho ->
          let refuse reason =
            Sim.Stats.incr (counter t "handoff_refusals");
            reply (Wire.W_unavailable (Printf.sprintf "%s refused: %s" what reason))
          in
          if check_epoch && ho.Wire.ho_epoch <> Chanhub.handoff_epoch t.hub then
            refuse
              (Printf.sprintf "epoch mismatch (theirs %d, ours %d)" ho.Wire.ho_epoch
                 (Chanhub.handoff_epoch t.hub))
          else
            match t.t_registry with
            | None -> refuse "pipelining is not enabled at this port group"
            | Some reg ->
                if
                  match Wire.stream_id_group ho.Wire.ho_stream with
                  | Some g -> not (Pipeline.Registry.in_scope reg g)
                  | None -> true
                then refuse "stream feeds a different guardian"
                else if
                  Pipeline.Registry.evicted reg ~stream:ho.Wire.ho_stream
                    ~call:ho.Wire.ho_call
                then refuse "outcome already evicted"
                else k reg ho)

(* "The call at (stream, call) on your node was forwarded to [owner]:
   push its outcome there." Accepting replies normally (a [Send]'s ok
   marker); the push fires as soon as the outcome exists. *)
let handle_handoff_notice c ~trace ~args ~reply =
  let t = c.c_target in
  with_handoff_target c ~what:"handoff" ~check_epoch:true ~args ~reply (fun reg ho ->
      let push o =
        span t ~kind:Sim.Span.Handoff ~trace ~stream:ho.Wire.ho_stream ~call:ho.Wire.ho_call
          ~note:(Printf.sprintf "push -> n%d" ho.Wire.ho_owner)
          ();
        Chanhub.handoff_push t.hub ~dst:ho.Wire.ho_owner ~stream:ho.Wire.ho_stream
          ~call:ho.Wire.ho_call (Wire.outcome_value o)
      in
      match
        Pipeline.Registry.await reg ~stream:ho.Wire.ho_stream ~call:ho.Wire.ho_call push
      with
      | `Fired | `Parked _ -> reply (Wire.W_normal Xdr.Unit)
      | `Refused ->
          Sim.Stats.incr (counter t "handoff_refusals");
          reply (Wire.W_unavailable "handoff refused: dependency table full"))

(* Claim-by-reference: reply with the outcome of (stream, call) itself.
   The proxy-equivalent fallback a caller uses when its handoff was
   refused after the producer's reply was already elided. *)
let handle_handoff_redeem c ~trace:_ ~args ~reply =
  with_handoff_target c ~what:"redeem" ~check_epoch:false ~args ~reply (fun reg ho ->
      match
        Pipeline.Registry.await reg ~stream:ho.Wire.ho_stream ~call:ho.Wire.ho_call reply
      with
      | `Fired | `Parked _ -> ()
      | `Refused ->
          Sim.Stats.incr (counter (c.c_target) "handoff_refusals");
          reply (Wire.W_unavailable "redeem refused: dependency table full"))

(* Execute one call, or don't: with dedup on, a call-id already seen is
   never re-executed — its recorded outcome is replayed (or joined, if
   the first execution is still in flight). This is what turns the
   sender's resubmission protocol into cross-incarnation exactly-once
   execution. Pipelined arguments are substituted (parking the call if
   needed) before the handler dispatches; every Call outcome is
   recorded in the pipelining registry for later dependents. *)
let exec_call c ~seq ~cid ~trace ~port ~kind ~args ~handoff ~reply =
  let t = c.c_target in
  if String.equal port handoff_notice_port then handle_handoff_notice c ~trace ~args ~reply
  else if String.equal port handoff_redeem_port then
    handle_handoff_redeem c ~trace ~args ~reply
  else begin
  let reply =
    match t.t_registry with
    | Some reg when kind = Wire.Call ->
        fun outcome ->
          Pipeline.Registry.record reg ~stream:c.c_stable ~call:cid outcome;
          reply outcome
    | Some _ | None -> reply
  in
  let run ~reply =
    resolve_refs c ~cid ~trace ~args ~handoffs:handoff ~reply (fun args ->
        span t ~kind:Sim.Span.Exec_begin ~trace ~stream:c.c_stable ~call:cid ~note:port ();
        t.dispatch c ~seq ~port ~kind ~args
          ~reply:(fun outcome ->
            span t ~kind:Sim.Span.Exec_end ~trace ~stream:c.c_stable ~call:cid ();
            reply outcome))
  in
  if not t.t_dedup then run ~reply
  else begin
    let id = (c.c_stable, cid) in
    match Hashtbl.find_opt t.t_cache id with
    | Some (Done outcome) ->
        Sim.Stats.incr (counter t "target_dedup_replays");
        span t ~kind:Sim.Span.Dedup_replay ~trace ~stream:c.c_stable ~call:cid ();
        reply outcome
    | Some (In_progress w) ->
        Sim.Stats.incr (counter t "target_dedup_joins");
        span t ~kind:Sim.Span.Dedup_join ~trace ~stream:c.c_stable ~call:cid ();
        w.waiters <- reply :: w.waiters
    | None ->
        let w = { waiters = [] } in
        Hashtbl.replace t.t_cache id (In_progress w);
        run ~reply:(fun outcome ->
            (* Record before replying: the outcome must outlive this
               connection so a duplicate on a later incarnation replays
               it instead of re-executing. *)
            remember t id outcome;
            let waiters = w.waiters in
            w.waiters <- [];
            List.iter (fun r -> r outcome) waiters;
            reply outcome)
  end
  end

(* Unordered mode keeps the stream's reply-order guarantee: outcomes
   are released strictly by call sequence even though execution
   overlaps. *)
let release_in_order c =
  let rec go () =
    match Hashtbl.find_opt c.c_done c.c_next_reply with
    | Some (kind, trace, elide, outcome) ->
        Hashtbl.remove c.c_done c.c_next_reply;
        emit_reply c ~seq:c.c_next_reply ~kind ~trace ~elide outcome;
        c.c_next_reply <- c.c_next_reply + 1;
        go ()
    | None -> ()
  in
  go ()

(* Sequential execution of one lane's calls: the driver parks until
   the handler replies before taking the next piece of work. With one
   shard this is the paper's per-stream order; with several, each lane
   keeps that discipline for its own partition of the key space while
   lanes run concurrently (docs/SHARDING.md), and replies are parked in
   [c_done] so they still leave in call order. With [t_ordered = false]
   (the override hinted at in §2.1), calls are dispatched as they
   arrive and run concurrently; only the replies are sequenced. *)
let driver_loop c sh =
  let t = c.c_target in
  let overhead = Chanhub.hub_recv_overhead t.hub in
  (* Only the single-lane ordered mode may emit straight from the
     driver: any overlap in execution can scramble completion order, so
     replies go through the in-order parking table instead. Shedding
     also forces the parking table — a shed outcome is produced at
     delivery time, out of band of the driver, and must still leave in
     call order. *)
  let direct = t.t_ordered && t.t_shards = 1 && t.t_shed = None in
  let park_reply ~seq ~kind ~trace ~elide o =
    if not c.c_broken then begin
      Hashtbl.replace c.c_done seq (kind, trace, elide, o);
      release_in_order c
    end
  in
  let rec loop () =
    match Sched.Bqueue.deq sh.sh_work with
    | Overhead ->
        if overhead > 0.0 then S.sleep t.sched overhead;
        loop ()
    | Exec _ when c.c_breaking <> None ->
        (* A break is pending: work queued behind the in-flight calls
           is discarded, as it would be by the break itself. *)
        loop ()
    | Exec { seq; cid; trace; port; kind; args; handoff; elide } when not t.t_ordered ->
        exec_call c ~seq ~cid ~trace ~port ~kind ~args ~handoff
          ~reply:(park_reply ~seq ~kind ~trace ~elide);
        loop ()
    | Exec { seq; cid; trace; port; kind; args; handoff; elide } -> (
        c.c_inflight <- c.c_inflight + 1;
        let outcome =
          S.suspend t.sched (fun w ->
              exec_call c ~seq ~cid ~trace ~port ~kind ~args ~handoff ~reply:(fun o ->
                  ignore (S.wake w o : bool)))
        in
        c.c_inflight <- c.c_inflight - 1;
        if direct then emit_reply c ~seq ~kind ~trace ~elide outcome
        else park_reply ~seq ~kind ~trace ~elide outcome;
        match c.c_breaking with
        | Some reason when c.c_inflight = 0 ->
            c.c_breaking <- None;
            do_break c reason
        | Some _ | None -> loop ())
    | exception Sched.Bqueue.Closed -> ()
  in
  loop ()

let accept t in_chan =
  let key = Chanhub.in_key in_chan in
  let reply =
    Chanhub.connect t.hub ~dst:key.Chanhub.src ~label:key.Chanhub.meta ~meta:"" t.reply_config
  in
  let c =
    {
      c_target = t;
      c_in = in_chan;
      c_reply = reply;
      c_stable = stable_stream_id key;
      c_shards =
        Array.init t.t_shards (fun _ ->
            { sh_work = Sched.Bqueue.create t.sched; sh_driver = None });
      c_broken = false;
      c_inflight = 0;
      c_breaking = None;
      c_on_close = [];
      c_done = Hashtbl.create 8;
      c_next_reply = 0;
      c_seq2cid = Hashtbl.create 8;
    }
  in
  Hashtbl.replace t.conns key c;
  (* If either direction dies — the sender Reset the call channel (a
     restart) or the reply path broke — drop the connection; the
     sender side has already broken or forgotten the stream. *)
  Chanhub.on_in_break in_chan (fun _reason -> remove_conn c);
  Chanhub.on_out_break reply (fun _reason -> remove_conn c);
  (* Overload signalling (docs/OVERLOAD.md): acks on the call channel
     carry the deepest lane's queue depth relative to the shed mark, so
     adaptive senders cut their window before sheds begin. *)
  (match t.t_shed with
  | None -> ()
  | Some hwm ->
      Chanhub.set_pressure in_chan (fun () ->
          let depth =
            Array.fold_left (fun acc sh -> max acc (Sched.Bqueue.length sh.sh_work)) 0 c.c_shards
          in
          if depth >= hwm then 2 else if 2 * depth >= hwm then 1 else 0));
  (* Ack-tied registry release (docs/PIPELINE.md): once the reply
     channel's cumulative ack covers a Call's reply item, no live
     stream can still claim or reference that outcome through this
     connection — mark it preferentially evictable. *)
  (match t.t_registry with
  | None -> ()
  | Some reg ->
      Chanhub.on_ack reply (fun items ->
          List.iter
            (fun item ->
              match Wire.parse_reply item with
              | Ok (seq, _) -> (
                  match Hashtbl.find_opt c.c_seq2cid seq with
                  | Some cid ->
                      Hashtbl.remove c.c_seq2cid seq;
                      Pipeline.Registry.mark_releasable reg ~stream:c.c_stable ~call:cid
                  | None -> ())
              | Error _ -> ())
            items));
  Chanhub.set_deliver_views in_chan (fun items ->
      if not c.c_broken then begin
        (* The cost model charges kernel overhead once per arriving
           network message; every lane the message feeds charges it
           before that message's calls so the sleep delays them all,
           while concurrent lanes absorb it in parallel. Lane 0 always
           pays (preserving the single-lane behaviour exactly). *)
        Sched.Bqueue.enq c.c_shards.(0).sh_work Overhead;
        let touched = Array.make t.t_shards false in
        touched.(0) <- true;
        List.iter
          (fun item ->
            if not c.c_broken then
              match Wire.parse_call_view item with
              | Ok cv -> (
                  let seq = cv.Wire.cv_seq and cid = cv.Wire.cv_cid in
                  let port = cv.Wire.cv_port and kind = cv.Wire.cv_kind in
                  let trace = cv.Wire.cv_trace in
                  (* The shard router hashes the first argument, so with
                     several lanes the value is materialised here; on a
                     single lane the arguments stay encoded and ride the
                     work queue as a view. *)
                  let routed =
                    if t.t_shards = 1 then (
                      Sim.Stats.incr (counter t "target_lazy_args");
                      Ok (Encoded cv.Wire.cv_args, 0))
                    else
                      match materialize_view t cv.Wire.cv_args with
                      | Ok v -> Ok (Materialized v, shard_of t ~port v)
                      | Error reason -> Error reason
                  in
                  match routed with
                  | Error reason -> break_conn c ~reason
                  | Ok (args, s) ->
                  let lane = c.c_shards.(s) in
                  let shed =
                    (* Load-shedding (docs/OVERLOAD.md): a lane at its
                       high-water mark rejects the call with the paper's
                       [unavailable] — a typed, immediately-claimable
                       failure instead of an unbounded queue. Resubmits
                       are exempt: the original may already have
                       executed, so the caller must reach the dedup
                       cache, not be turned away. The call never touches
                       exec_call — no cache entry, no registry record —
                       so at-most-once execution is untouched. *)
                    match t.t_shed with
                    | Some hwm
                      when Sched.Bqueue.length lane.sh_work >= hwm
                           && not cv.Wire.cv_resubmit ->
                        true
                    | Some _ | None -> false
                  in
                  if shed then begin
                    Sim.Stats.incr (counter t "target_sheds");
                    span t ~kind:Sim.Span.Shed ~trace ~stream:c.c_stable ~call:cid
                      ~note:(Printf.sprintf "lane %d depth %d" s (Sched.Bqueue.length lane.sh_work))
                      ();
                    Hashtbl.replace c.c_done seq
                      (kind, trace, false, Wire.W_unavailable "overloaded: call shed by receiver");
                    release_in_order c
                  end
                  else begin
                  if not touched.(s) then begin
                    touched.(s) <- true;
                    Sched.Bqueue.enq lane.sh_work Overhead
                  end;
                  span t ~kind:Sim.Span.Dispatch ~trace ~stream:c.c_stable ~call:cid
                    ~note:(Printf.sprintf "lane %d/%d" s t.t_shards)
                    ();
                  (* Elided calls skip the ack-tied release map: the
                     reply carries no outcome, so its ack proves
                     nothing about who may still redeem the result. *)
                  if kind = Wire.Call && t.t_registry <> None && not cv.Wire.cv_elide then
                    Hashtbl.replace c.c_seq2cid seq cid;
                  Sched.Bqueue.enq lane.sh_work
                    (Exec
                       {
                         seq;
                         cid;
                         trace;
                         port;
                         kind;
                         args;
                         handoff = cv.Wire.cv_handoff;
                         elide = cv.Wire.cv_elide;
                       });
                  if t.t_shards > 1 then begin
                    Sim.Stats.incr (counter t "shard_dispatches");
                    t.t_dispatch_counts.(s) <- t.t_dispatch_counts.(s) + 1;
                    bump_hwm (counter t "shard_queue_hwm") (Sched.Bqueue.length lane.sh_work);
                    let mx = Array.fold_left max 0 t.t_dispatch_counts in
                    let mn = Array.fold_left min max_int t.t_dispatch_counts in
                    bump_hwm (counter t "shard_imbalance") (mx - mn)
                  end
                  end)
              | Error reason -> break_conn c ~reason)
          items
      end);
  Array.iteri
    (fun k sh ->
      let name =
        if t.t_shards = 1 then Printf.sprintf "target:%s<-%d" t.t_gid key.Chanhub.src
        else Printf.sprintf "target:%s<-%d#%d" t.t_gid key.Chanhub.src k
      in
      sh.sh_driver <- Some (S.spawn t.sched ~daemon:true ~name (fun () -> driver_loop c sh)))
    c.c_shards

let create hub ~gid ?(config = Group_config.default) dispatch =
  if config.Group_config.shards <= 0 then
    invalid_arg "Target.create: shards must be positive";
  let t =
    {
      hub;
      sched = Chanhub.hub_sched hub;
      t_gid = gid;
      reply_config = config.Group_config.reply_config;
      t_ordered = config.Group_config.ordered;
      t_dedup = config.Group_config.dedup;
      t_shards = config.Group_config.shards;
      t_shed = config.Group_config.shed_hwm;
      t_shard_key =
        Option.value config.Group_config.shard_key ~default:default_shard_key;
      t_dispatch_counts = Array.make config.Group_config.shards 0;
      t_cache_cap = config.Group_config.dedup_cache;
      t_cache = Hashtbl.create (if config.Group_config.dedup then 64 else 1);
      t_done_order = Queue.create ();
      t_done_count = 0;
      t_registry = config.Group_config.pipeline;
      dispatch;
      conns = Hashtbl.create 8;
      closed = false;
    }
  in
  (* Receiving a handoff push needs no per-group state, but the hub
     only listens once someone on this node can be an owner — any port
     group (or guardian) being created is that signal. *)
  Chanhub.handoff_listen hub;
  Chanhub.on_connect hub ~label:gid (fun in_chan -> accept t in_chan);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Chanhub.remove_acceptor t.hub ~label:t.t_gid;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter (fun c -> break_conn c ~reason:"port group closed") live
  end
