(** Reliable, ordered, batching message channels over the lossy {!Net}.

    Call-streams promise "exactly-once, ordered delivery" (§2 of the
    paper) on top of a network that can lose, duplicate and delay
    messages. This module supplies that guarantee as unidirectional
    {e channels}: sequence numbers, cumulative acknowledgements,
    go-back-n retransmission and duplicate suppression. The stream
    layer composes two channels (calls one way, replies the other) into
    one call-stream.

    Buffering also lives here: a channel accumulates items and sends
    them as one network message when any of (a) [max_batch] items or
    [max_batch_bytes] encoded bytes are waiting, (b) [flush_interval]
    has elapsed since the first waiting item, (c) [flush_on_idle] is
    set and nothing is in flight (Nagle-style: first item goes out
    immediately, later items coalesce while the wire is busy), or
    (d) the user flushes explicitly — "stream calls and their replies
    are buffered and sent when convenient".

    Packets travel as {!frame}s — compact binary strings produced by
    {!Xdr.Bin} (see docs/WIRE.md) — so every byte count the simulator
    charges is the actual encoded size. Cumulative acks piggyback on
    reverse-direction Data packets when the hub is given an
    [ack_delay]; a delayed standalone Ack is the fallback. A sender-
    side sliding window ([max_inflight_bytes]) lets a slow receiver
    back-pressure callers through {!await_window}.

    Each node owns a {e hub} that multiplexes all channel endpoints on
    that node. Channels are identified by (source address, label,
    index); the label doubles as the rendezvous name — a hub registers
    a factory per label and inbound channels with that label are
    accepted by it. The [meta] string rides along for the stream layer
    (it carries the reply-channel label). *)

type hub
(** Per-node endpoint multiplexer. *)

type out_chan
(** Sending end of a channel (lives on the source node). *)

type in_chan
(** Receiving end of a channel (lives on the destination node). *)

type key = { src : Net.address; label : string; idx : int; meta : string }

type ack_entry = {
  a_key : key;
  a_upto : int;  (** cumulative: every seq [<= a_upto] is acknowledged *)
  a_pressure : int;
      (** receiver queue-depth signal riding on the ack: [0] relaxed,
          [1] approaching the shed high-water mark, [2] at or over it.
          Senders with an adaptive window treat [2] as congestion
          (multiplicative decrease) and [1] as "hold growth". *)
}

type packet =
  | Data of {
      key : key;
      first_seq : int;
      acks : ack_entry list;
          (** cumulative acks for reverse-direction channels,
              piggybacked on this data packet *)
      items : Xdr.value list;
    }
  | Ack of { acks : ack_entry list }
  | Reset of { key : key; reason : string }

type frame = string
(** A packet encoded for the wire: what actually travels through
    {!Net}. *)

val encode_packet : packet -> frame

val decode_packet : frame -> (packet, string) result
(** Total: malformed frames yield [Error], never an exception. *)

val packet_bytes : packet -> int
(** Actual encoded size of the packet in bytes
    ([String.length (encode_packet p)]). *)

type config = {
  max_batch : int;  (** flush after this many buffered items *)
  max_batch_bytes : int;  (** … or this many buffered encoded bytes *)
  flush_interval : float;
      (** flush this long after the first buffered item (seconds);
          [infinity] disables timed flushing *)
  flush_on_idle : bool;
      (** Nagle-style: flush immediately whenever nothing is awaiting
          an ack; while data is in flight, buffer up to the other
          limits *)
  retransmit_timeout : float;
  max_retries : int;  (** consecutive unanswered retransmits before break *)
  max_inflight_bytes : int;
      (** sliding-window budget: {!await_window} blocks while this many
          encoded bytes are buffered or unacked. With
          [adaptive_window] this is the window {e ceiling}. *)
  adaptive_window : bool;
      (** AIMD flow control (docs/OVERLOAD.md): the live window starts
          at [window_min_bytes], grows by [window_increase] bytes per
          clean ack round, and is cut multiplicatively on retransmit,
          ack-RTT inflation, or receiver pressure — at most once per
          outstanding flight. *)
  window_min_bytes : int;  (** adaptive window floor (and start value) *)
  window_increase : int;  (** additive increase per clean ack, bytes *)
  window_decrease : float;  (** multiplicative cut factor, in (0, 1) *)
  rtt_inflation : float;
      (** an ack RTT above [rtt_inflation *. rtt_ewma] counts as
          congestion; must exceed 1 *)
}

val default_config : config
(** [max_batch = 8], [max_batch_bytes = 4096], [flush_interval = 2 ms],
    [flush_on_idle = false], [retransmit_timeout = 50 ms],
    [max_retries = 10], [max_inflight_bytes = max_int] (window
    disabled). *)

val rpc_config : config
(** No buffering: every item is sent immediately ([max_batch = 1]) —
    "RPCs and their replies are sent over the network immediately". *)

val adaptive_config : config
(** Nagle-style adaptive batching: [flush_on_idle = true] with
    [max_batch = 64], [max_batch_bytes = 1024] and an 8 KiB in-flight
    window — low latency when idle, aggressive coalescing under load.
    Pair with a hub [ack_delay] to enable ack piggybacking. The window
    is still static; see {!aimd_config} for the adaptive variant. *)

val aimd_config : config
(** {!adaptive_config} plus AIMD flow control: [adaptive_window = true]
    with a 64 KiB ceiling, 512 B floor, +256 B additive increase and a
    0.5 multiplicative cut (docs/OVERLOAD.md). *)

(** {1 Hubs} *)

val create_hub :
  ?ack_delay:float ->
  ?dict:bool ->
  ?transport:Transport.t ->
  ?net:frame Net.t * Net.node ->
  unit ->
  hub
(** Create a hub on an endpoint and install it as the endpoint's
    receiver and peer watch. Pass {e exactly one} of [~transport] (any
    {!Transport.t} — docs/TRANSPORT.md) or [~net] (a simulated node:
    shorthand for [~transport:(Transport_sim.endpoint net node)]);
    anything else raises [Invalid_argument].

    [ack_delay] (default [0.], i.e. disabled) holds acks back for that
    many seconds hoping a reverse-direction Data packet will carry
    them; whatever is still pending when the timer fires goes out as
    one standalone Ack packet. Keep it well under the senders'
    [retransmit_timeout]. A transport peer-down breaks every channel to
    or from that peer, with the incoming ends tombstoned exactly as a
    [Reset] would be — so a retransmit arriving over a fresh connection
    is refused rather than resurrecting the old incarnation.

    [dict] (default [false]) opts this hub's {e sending} side into the
    per-connection interning dictionary (docs/WIRE.md §Connection
    dictionary): strings recurring across frames to one peer are
    promoted into a shared table and thereafter cost a short
    reference. The feature is negotiated — a hello/welcome exchange
    per peer — so a peer that predates it keeps receiving
    byte-identical v1 frames; receiving v2 frames needs no opt-in.
    Requires a {!Transport.t.reliable} endpoint (exactly-once, FIFO);
    on an unreliable one the flag is ignored. A transport peer-down
    resets the dictionary (epoch bump), so calls resubmitted after an
    incarnation change decode against a fresh table. *)

val create_hub_tr : ?ack_delay:float -> ?dict:bool -> Transport.t -> hub
  [@@deprecated "use create_hub ~transport instead"]
(** Thin alias for [create_hub ~transport]. *)

val hub_addr : hub -> Net.address
(** This hub's transport address (the node address in sim mode). *)

val hub_sched : hub -> Sched.Scheduler.t
(** The hub's scheduler. Channel-layer counters are recorded in this
    scheduler's {!Sim.Stats} registry — [chan_retransmits],
    [chan_dup_items_suppressed], [chan_out_breaks], [chan_in_breaks],
    [chan_data_packets], [chan_ack_packets], [chan_reset_packets],
    [chan_wire_bytes], [chan_items_sent], [chan_piggybacked_acks],
    [chan_standalone_acks], [chan_decode_errors],
    [chan_window_cuts], [chan_dict_hellos], [chan_dict_negotiated],
    [chan_dict_defines], [chan_dict_refs] — plus the [chan_rtt]
    summary of clean ack RTT samples — and break events in its
    {!Sim.Trace}. *)

val on_connect : hub -> label:string -> (in_chan -> unit) -> unit
(** Register the acceptor for inbound channels labelled [label]. The
    acceptor must call {!set_deliver} before returning; items from the
    first packet are delivered right after it returns. Inbound data for
    an unregistered label is answered with a [Reset]. *)

val remove_acceptor : hub -> label:string -> unit

(** {1 Sending end} *)

val connect : hub -> dst:Net.address -> label:string -> meta:string -> config -> out_chan
(** Open a channel to the hub at [dst]. No handshake message is sent;
    the first data packet establishes the channel at the receiver. *)

val send : out_chan -> Xdr.value -> (unit, string) result
(** Buffer one item for ordered delivery. [Error reason] means the
    channel is (already) broken — a break racing a buffered send is a
    normal condition under churn, not a programming error, so it is
    reported as a value rather than an exception. [send] itself never
    blocks; callers that want window back-pressure call
    {!await_window} first. *)

val await_window : out_chan -> bytes:int -> (unit, string) result
(** Block the calling fiber until the channel can admit [bytes] more
    encoded bytes under [max_inflight_bytes] (buffered + unacked), or
    the channel breaks ([Error reason] — whatever was in flight is
    void anyway). Returns immediately outside fiber context. Callers
    must invoke this {e before} claiming a sequence number: blocking
    after would let a later call overtake on the channel. *)

val inflight_bytes : out_chan -> int
(** Encoded bytes currently buffered plus sent-but-unacked. *)

val window_bytes : out_chan -> int
(** The live sender window. Equal to [max_inflight_bytes] for a static
    config; moved between [window_min_bytes] and [max_inflight_bytes]
    by the AIMD controller for an adaptive one. *)

val rtt_ewma : out_chan -> float
(** Exponentially weighted moving average of observed ack RTTs
    (alpha 0.125, Karn-filtered: retransmitted items contribute no
    sample). [0.] until the first clean sample. *)

val on_ack : out_chan -> (Xdr.value list -> unit) -> unit
(** Install a hook fired once per cumulative ack with the items the ack
    freed, oldest first. The pipelining outcome registry uses this to
    learn when a call item can no longer be retransmitted — its outcome
    becomes safely evictable (docs/PIPELINE.md). At most one hook. *)

val flush_out : out_chan -> unit
(** Transmit everything buffered now. *)

val out_key : out_chan -> key

val out_broken : out_chan -> string option
(** Reason the channel broke, if it did. *)

val on_out_break : out_chan -> (string -> unit) -> unit
(** Register a break callback (fires at most once, in scheduler
    context). Several callbacks may be registered. *)

val break_out : out_chan -> reason:string -> unit
(** Break locally (e.g. stream restart): pending items are dropped and
    a [Reset] is pushed to the receiver so it discards state. *)

val unacked_count : out_chan -> int
(** Items sent but not yet acknowledged plus items still buffered. *)

(** {1 Receiving end} *)

val set_deliver : in_chan -> (Xdr.value list -> unit) -> unit
(** Install the in-order delivery callback. Each invocation passes the
    items of one arriving network message (so the receiver can charge
    per-message costs); concatenated across calls the items appear
    exactly once, in send order. Items are materialised from their
    frame slices for this callback; use {!set_deliver_views} for the
    zero-copy path. *)

val set_deliver_views : in_chan -> (Xdr.View.t list -> unit) -> unit
(** Like {!set_deliver}, but items arrive as validated
    {!Xdr.View.t} slices of the frame buffer — nothing is decoded
    until the callback asks for it (docs/WIRE.md §Lazy views). The
    views borrow frame state and are not domain-safe: materialise
    before offloading. The last [set_deliver]/[set_deliver_views]
    call wins. *)

val in_key : in_chan -> key

val in_src : in_chan -> Net.address

val set_pressure : in_chan -> (unit -> int) -> unit
(** Install the receiver queue-depth probe sampled when this channel
    acks: the probe returns [0] (relaxed), [1] (approaching the shed
    mark) or [2] (at/over it), and the value rides on the ack as
    {!ack_entry.a_pressure}. Without a probe every ack reports [0]. *)

val break_in : in_chan -> reason:string -> unit
(** Receiver-initiated break: discard further data and tell the sender
    (it observes the reason via {!on_out_break}). *)

val in_broken : in_chan -> string option

val on_in_break : in_chan -> (string -> unit) -> unit
(** Register a callback fired when this receiving end is broken — by
    {!break_in} locally or by a [Reset] from the sender (e.g. a stream
    restart). Fires immediately if already broken. *)

(** {1 Third-party handoff (docs/HANDOFF.md)}

    When a call is forwarded to the node that will consume a pipelined
    result, the result's producer pushes the outcome {e directly} to
    that node on a dedicated ["~handoff"]-labelled channel (one per
    destination peer, opened lazily over the transport's usual dial
    path). The receiving hub buffers pushes that arrive before anyone
    expects them — the buffer doubles as the dedup record, so a push
    replayed after a crash joins the first copy instead of
    re-resolving. Counters: [handoff_forwards] (outcomes pushed),
    [handoff_streams_opened] (push channels dialled),
    [handoff_dedup_joins] (replayed pushes absorbed). *)

val handoff_epoch : hub -> int
(** This hub's handoff protocol epoch, stamped into every handoff
    annotation it forwards. A producer refuses an annotation whose
    epoch differs from its own ({!set_handoff_epoch} simulates an
    upgraded/downgraded peer in tests), and the forwarder falls back
    to proxying the value itself. *)

val set_handoff_epoch : hub -> int -> unit

val handoff_listen : hub -> unit
(** Accept outcome pushes on this hub (idempotent). {!Guardian.create}
    calls this, so any node that hosts handlers can be the target of a
    forwarded call. *)

val handoff_push : hub -> dst:Net.address -> stream:string -> call:int -> Xdr.value -> unit
(** Push the encoded outcome ({!Wire.outcome_value}) of [(stream,
    call)] to the hub at [dst], dialling the push channel if needed. A
    push to this hub's own address is delivered locally. *)

val handoff_expect : hub -> stream:string -> call:int -> (Xdr.value -> unit) -> unit
(** Register interest in a pushed outcome: the callback fires with the
    encoded outcome as soon as it is available — immediately, when a
    push already arrived. *)

(** {1 Transport access} *)

val hub_recv_overhead : hub -> float
(** Seconds of kernel overhead to charge per received message — the
    receiver layer bills it as processing time. Reads the transport's
    live cost model at call time: the simulated backend reports the
    current {!Net.config}'s [kernel_overhead] (the fault layer mutates
    it mid-run), a real backend reports [0.] because its costs are
    already wall-clock. *)

val hub_transport : hub -> Transport.t
(** The transport endpoint this hub multiplexes. *)
