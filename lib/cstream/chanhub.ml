module S = Sched.Scheduler
module B = Xdr.Bin

type key = { src : Net.address; label : string; idx : int; meta : string }

type ack_entry = {
  a_key : key;
  a_upto : int;  (* cumulative: everything up to this seq arrived *)
  a_pressure : int;
      (* receiver queue-depth signal for the acked channel: 0 = fine,
         1 = approaching the shed mark, 2 = at/over it (load-shedding
         imminent or underway). Senders treat >= 2 as congestion. *)
}

type packet =
  | Data of {
      key : key;
      first_seq : int;
      acks : ack_entry list;  (* piggybacked cumulative acks *)
      items : Xdr.value list;
    }
  | Ack of { acks : ack_entry list }
  | Reset of { key : key; reason : string }

type frame = string

(* ------------------------------------------------------------------ *)
(* Packet frame codec. Layout: version byte, packet tag (1 = Data,
   2 = Ack, 3 = Reset), then the packet body. Every string — channel
   labels, meta, record field names inside items — goes through one
   intern table per frame, so a batch of calls to the same port pays
   for the port name once. *)

let encode_key e (k : key) =
  B.add_uvarint e k.src;
  B.add_string e k.label;
  B.add_uvarint e k.idx;
  B.add_string e k.meta

let encode_ack e (a : ack_entry) =
  encode_key e a.a_key;
  (* upto is -1 for "nothing received yet", hence signed *)
  B.add_varint e a.a_upto;
  B.add_uvarint e a.a_pressure

(* One pooled encoder per frame: the whole batch — envelope, acks and
   every item — shares a buffer and intern table, so a multi-item
   flush costs one encoder, not one per item. *)
let encode_packet_body e p =
  match p with
  | Data { key; first_seq; acks; items } ->
      B.add_byte e 1;
      encode_key e key;
      B.add_uvarint e first_seq;
      B.add_uvarint e (List.length acks);
      List.iter (encode_ack e) acks;
      B.add_uvarint e (List.length items);
      List.iter (B.add_value e) items
  | Ack { acks } ->
      B.add_byte e 2;
      B.add_uvarint e (List.length acks);
      List.iter (encode_ack e) acks
  | Reset { key; reason } ->
      B.add_byte e 3;
      encode_key e key;
      B.add_raw_string e reason

let encode_packet p =
  B.with_encoder (fun e ->
      B.add_byte e B.version;
      encode_packet_body e p;
      B.contents e)

(* v2 frames: same packet grammar, but the header carries the
   dictionary epoch and every interned string uses the shifted marker
   scheme (docs/WIRE.md §Connection dictionary). Only emitted to a
   peer that answered our dict-hello. *)
let dict_version = 2

let encode_packet_dict dc p =
  B.with_encoder (fun e ->
      B.use_dict e dc;
      B.add_byte e dict_version;
      B.add_uvarint e (B.dict_epoch dc);
      encode_packet_body e p;
      B.contents e)

(* Dictionary negotiation control frames, always v1-encoded: tag 4 is
   hello (sender offers epoch), tag 5 welcome (receiver accepts). A
   pre-dictionary peer answers a hello with a decode error on its own
   side and never welcomes, so the sender keeps speaking v1 — old
   peers see byte-identical Data frames. *)
let encode_dict_ctrl ~tag ~epoch =
  B.with_encoder (fun e ->
      B.add_byte e B.version;
      B.add_byte e tag;
      B.add_uvarint e epoch;
      B.contents e)

let ( let* ) = Result.bind

let decode_key d =
  let* src = B.read_uvarint d in
  let* label = B.read_string d in
  let* idx = B.read_uvarint d in
  let* meta = B.read_string d in
  Ok { src; label; idx; meta }

let decode_acks d =
  let* n = B.read_uvarint d in
  if n < 0 || n > B.remaining d then Error "ack count overruns input"
  else
    let rec go k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* key = decode_key d in
        let* upto = B.read_varint d in
        let* pressure = B.read_uvarint d in
        go (k - 1) ({ a_key = key; a_upto = upto; a_pressure = pressure } :: acc)
    in
    go n []

let decode_packet frame =
  let d = B.decoder frame in
  let* v = B.read_byte d in
  if v <> B.version then Error (Printf.sprintf "unsupported wire version %d" v)
  else
    let* tag = B.read_byte d in
    let* p =
      match tag with
      | 1 ->
          let* key = decode_key d in
          let* first_seq = B.read_uvarint d in
          let* acks = decode_acks d in
          let* n = B.read_uvarint d in
          if n < 0 || n > B.remaining d then Error "item count overruns input"
          else
            let rec go k acc =
              if k = 0 then Ok (List.rev acc)
              else
                let* item = B.read_value d in
                go (k - 1) (item :: acc)
            in
            let* items = go n [] in
            Ok (Data { key; first_seq; acks; items })
      | 2 ->
          let* acks = decode_acks d in
          Ok (Ack { acks })
      | 3 ->
          let* key = decode_key d in
          let* reason = B.read_raw_string d in
          Ok (Reset { key; reason })
      | t -> Error (Printf.sprintf "unknown packet tag %d" t)
    in
    let* () = B.expect_end d in
    Ok p

let packet_bytes p = String.length (encode_packet p)

(* ------------------------------------------------------------------ *)

type config = {
  max_batch : int;
  max_batch_bytes : int;
  flush_interval : float;
  flush_on_idle : bool;
  retransmit_timeout : float;
  max_retries : int;
  max_inflight_bytes : int;
  adaptive_window : bool;
  window_min_bytes : int;
  window_increase : int;
  window_decrease : float;
  rtt_inflation : float;
}

let default_config =
  {
    max_batch = 8;
    max_batch_bytes = 4096;
    flush_interval = 2e-3;
    flush_on_idle = false;
    retransmit_timeout = 50e-3;
    max_retries = 10;
    max_inflight_bytes = max_int;
    adaptive_window = false;
    window_min_bytes = 512;
    window_increase = 256;
    window_decrease = 0.5;
    rtt_inflation = 2.0;
  }

let rpc_config = { default_config with max_batch = 1; flush_interval = 0.0 }

let adaptive_config =
  {
    default_config with
    max_batch = 64;
    max_batch_bytes = 1024;
    flush_interval = 2e-3;
    flush_on_idle = true;
    max_inflight_bytes = 8192;
  }

(* AIMD flow control (docs/OVERLOAD.md): the live window starts at
   [window_min_bytes] and moves between the min clamp and
   [max_inflight_bytes] under the controller in [handle_ack] /
   [arm_retransmit]. *)
let aimd_config =
  { adaptive_config with adaptive_window = true; max_inflight_bytes = 64 * 1024 }

type unacked = {
  u_seq : int;
  u_size : int;
  u_item : Xdr.value;
  mutable u_sent_at : float;  (* time of the most recent transmission *)
  mutable u_retx : bool;  (* retransmitted at least once: no RTT sample (Karn) *)
}

type out_chan = {
  o_hub : hub;
  o_key : key;
  o_dst : Net.address;
  o_cfg : config;
  mutable o_next_seq : int;  (* seq of the next item accepted by [send] *)
  mutable o_buf : (Xdr.value * int) list;  (* reversed: newest first; item, encoded size *)
  mutable o_buf_len : int;
  mutable o_buf_bytes : int;
  mutable o_unacked : unacked list;  (* oldest first *)
  mutable o_inflight_bytes : int;
  mutable o_acked_upto : int;
  mutable o_retries : int;
  mutable o_window : int;  (* live AIMD window; pinned to max_inflight_bytes when static *)
  mutable o_rtt_ewma : float;  (* 0.0 until the first clean sample *)
  mutable o_cut_barrier : int;
      (* seq outstanding at the last multiplicative decrease: no second
         cut until it is acked, so one congested flight costs one cut *)
  mutable o_broken : string option;
  mutable o_on_break : (string -> unit) list;
  mutable o_on_ack : (Xdr.value list -> unit) option;
  mutable o_flush_gen : int;
  mutable o_retx_gen : int;
  mutable o_retx_armed : bool;
  mutable o_retx_timer : S.timer option;
      (* heap handle for the armed timer: cancelled eagerly on disarm so
         a realtime run never waits out a timer that can only no-op *)
  o_waiters : unit S.waker Queue.t;  (* fibers parked in await_window *)
}

and deliver =
  | Deliver_values of (Xdr.value list -> unit)
  | Deliver_views of (Xdr.View.t list -> unit)

and in_chan = {
  i_hub : hub;
  i_key : key;
  mutable i_expected : int;
  mutable i_deliver : deliver option;
  mutable i_pressure : (unit -> int) option;  (* receiver queue-depth probe for acks *)
  mutable i_broken : string option;
  mutable i_on_break : (string -> unit) list;
}

and pending_acks = {
  p_acks : (key, int * int) Hashtbl.t;  (* per reverse channel: max upto, max pressure *)
  mutable p_armed : bool;  (* delayed standalone-Ack timer pending *)
}

and out_dict = {
  od_dict : B.dict;
  mutable od_on : bool;  (* peer welcomed the current epoch: emit v2 *)
  mutable od_helloed : bool;  (* hello sent for the current epoch *)
}

and hub = {
  h_tr : Transport.t;
  h_sched : S.t;
  h_ack_delay : float;
  h_dict : bool;  (* offer the connection dictionary to peers *)
  h_outs : (key, out_chan) Hashtbl.t;
  h_ins : (key, in_chan) Hashtbl.t;
  h_acceptors : (string, in_chan -> unit) Hashtbl.t;
  h_dead : (key, string) Hashtbl.t;
  h_pending : (Net.address, pending_acks) Hashtbl.t;
  h_dict_out : (Net.address, out_dict) Hashtbl.t;  (* sender state per peer *)
  h_dict_in : (Net.address, int * B.dict_table) Hashtbl.t;  (* (epoch, table) per peer *)
  mutable h_next_idx : int;
  (* Third-party handoff state (docs/HANDOFF.md): outcome pushes travel
     on dedicated "~handoff"-labelled channels, one per destination
     peer, opened lazily. Pushes that arrive before anyone expects them
     wait in a bounded early buffer (they double as the dedup record
     for replayed pushes). *)
  mutable h_ho_epoch : int;
  h_ho_pushes : (Net.address, out_chan) Hashtbl.t;
  h_ho_expect : (string * int, (Xdr.value -> unit) list) Hashtbl.t;
  h_ho_early : (string * int, Xdr.value) Hashtbl.t;
  h_ho_order : (string * int) Queue.t;
  mutable h_ho_listening : bool;
}

let hub_addr h = h.h_tr.Transport.addr

let hub_sched h = h.h_sched

let out_key o = o.o_key

let out_broken o = o.o_broken

let on_out_break o f =
  match o.o_broken with
  | Some reason ->
      (* Already broken: fire immediately so late registrants still learn. *)
      f reason
  | None -> o.o_on_break <- f :: o.o_on_break

let unacked_count o = o.o_buf_len + List.length o.o_unacked

let inflight_bytes o = o.o_buf_bytes + o.o_inflight_bytes

let window_bytes o = o.o_window

let rtt_ewma o = o.o_rtt_ewma

let on_ack o f = o.o_on_ack <- Some f

let in_key i = i.i_key

let in_src i = i.i_key.src

let set_deliver i f = i.i_deliver <- Some (Deliver_values f)

let set_deliver_views i f = i.i_deliver <- Some (Deliver_views f)

let set_pressure i f = i.i_pressure <- Some f

let probe_pressure i = match i.i_pressure with Some f -> max 0 (f ()) | None -> 0

let in_broken i = i.i_broken

let on_in_break i f =
  match i.i_broken with Some reason -> f reason | None -> i.i_on_break <- f :: i.i_on_break

let mark_in_broken i reason =
  if i.i_broken = None then begin
    Sim.Stats.incr (Sim.Stats.counter (S.stats i.i_hub.h_sched) "chan_in_breaks");
    i.i_broken <- Some reason;
    let hooks = i.i_on_break in
    i.i_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let hub_counter hub name = Sim.Stats.counter (S.stats hub.h_sched) name

let hub_trace hub fmt = Sim.Trace.recordf (S.trace hub.h_sched) ~time:(S.now hub.h_sched) fmt

(* Causal tracing (docs/TRACING.md): every item that carries a trace id
   gets a span at each transport edge. Items without one — all of them,
   when tracing is off — cost a single branch here. *)
let span_items hub kind ?note items =
  let spans = S.spans hub.h_sched in
  if Sim.Span.enabled spans then
    List.iter
      (fun item ->
        match Wire.item_trace item with
        | Some tid ->
            Sim.Span.record spans ~time:(S.now hub.h_sched) ~kind ~trace:tid
              ~node:hub.h_tr.Transport.addr ?note ()
        | None -> ())
      items

(* Receive-path twin of [span_items]: the trace id is projected out of
   the slice without materialising the item. *)
let span_views hub kind ?note items =
  let spans = S.spans hub.h_sched in
  if Sim.Span.enabled spans then
    List.iter
      (fun vw ->
        match Wire.item_trace_view vw with
        | Some tid ->
            Sim.Span.record spans ~time:(S.now hub.h_sched) ~kind ~trace:tid
              ~node:hub.h_tr.Transport.addr ?note ()
        | None -> ())
      items

(* Sender dictionary state for [dst]; created lazily on first use.
   Dictionaries need cross-frame agreement, so hubs only offer them on
   a reliable transport (see {!Transport.t.reliable}) — [h_dict]
   already folds that in. *)
let dict_out hub dst =
  if not hub.h_dict then None
  else
    match Hashtbl.find_opt hub.h_dict_out dst with
    | Some od -> Some od
    | None ->
        let od = { od_dict = B.create_dict (); od_on = false; od_helloed = false } in
        Hashtbl.replace hub.h_dict_out dst od;
        Some od

let transmit hub ~dst packet =
  let frame =
    match dict_out hub dst with
    | None -> encode_packet packet
    | Some od ->
        if not od.od_helloed then begin
          (* Offer once per epoch, ahead of the first frame so the
             welcome can only refer to state the peer has seen. *)
          od.od_helloed <- true;
          Sim.Stats.incr (hub_counter hub "chan_dict_hellos");
          let hf = encode_dict_ctrl ~tag:4 ~epoch:(B.dict_epoch od.od_dict) in
          Sim.Stats.add (hub_counter hub "chan_wire_bytes") (String.length hf);
          hub.h_tr.Transport.send ~dst hf
        end;
        if od.od_on then begin
          let d0 = B.dict_defines od.od_dict and r0 = B.dict_refs od.od_dict in
          let f = encode_packet_dict od.od_dict packet in
          Sim.Stats.add (hub_counter hub "chan_dict_defines") (B.dict_defines od.od_dict - d0);
          Sim.Stats.add (hub_counter hub "chan_dict_refs") (B.dict_refs od.od_dict - r0);
          f
        end
        else encode_packet packet
  in
  let bytes = String.length frame in
  Sim.Stats.add (hub_counter hub "chan_wire_bytes") bytes;
  (match packet with
  | Data { items; _ } ->
      Sim.Stats.incr (hub_counter hub "chan_data_packets");
      Sim.Stats.add (hub_counter hub "chan_items_sent") (List.length items)
  | Ack _ -> Sim.Stats.incr (hub_counter hub "chan_ack_packets")
  | Reset _ -> Sim.Stats.incr (hub_counter hub "chan_reset_packets"));
  hub.h_tr.Transport.send ~dst frame

(* --- delayed acks and piggybacking -------------------------------- *)

let pending_for hub dst =
  match Hashtbl.find_opt hub.h_pending dst with
  | Some p -> p
  | None ->
      let p = { p_acks = Hashtbl.create 4; p_armed = false } in
      Hashtbl.replace hub.h_pending dst p;
      p

let drain_pending hub dst =
  match Hashtbl.find_opt hub.h_pending dst with
  | None -> []
  | Some p ->
      let acks =
        Hashtbl.fold
          (fun k (upto, pressure) acc ->
            { a_key = k; a_upto = upto; a_pressure = pressure } :: acc)
          p.p_acks []
      in
      Hashtbl.reset p.p_acks;
      acks

(* Acks waiting for [dst] hitch a ride on this Data packet. *)
let take_piggyback hub ~dst =
  let acks = drain_pending hub dst in
  if acks <> [] then Sim.Stats.add (hub_counter hub "chan_piggybacked_acks") (List.length acks);
  acks

(* Acknowledge [upto] on [key]'s reverse path. With no ack delay the
   standalone Ack goes out immediately (the pre-piggybacking
   behaviour). With a delay, the ack is parked hoping a reverse-
   direction Data packet picks it up; a timer bounds how long the
   sender waits (it must come well under the retransmit timeout). *)
let post_ack hub ~dst ~key ~upto ~pressure =
  if hub.h_ack_delay <= 0.0 then begin
    Sim.Stats.incr (hub_counter hub "chan_standalone_acks");
    transmit hub ~dst (Ack { acks = [ { a_key = key; a_upto = upto; a_pressure = pressure } ] })
  end
  else begin
    let p = pending_for hub dst in
    (match Hashtbl.find_opt p.p_acks key with
    | Some (prev_upto, prev_pressure) ->
        Hashtbl.replace p.p_acks key (max prev_upto upto, max prev_pressure pressure)
    | None -> Hashtbl.replace p.p_acks key (upto, pressure));
    if not p.p_armed then begin
      p.p_armed <- true;
      S.after hub.h_sched hub.h_ack_delay (fun () ->
          p.p_armed <- false;
          let acks = drain_pending hub dst in
          if acks <> [] then begin
            Sim.Stats.add (hub_counter hub "chan_standalone_acks") (List.length acks);
            transmit hub ~dst (Ack { acks })
          end)
    end
  end

(* --- sending end -------------------------------------------------- *)

let wake_waiters o =
  (* Wake everyone; each re-checks the window and re-parks if it is
     still full, preserving FIFO order through the queue. *)
  while not (Queue.is_empty o.o_waiters) do
    ignore (S.wake (Queue.pop o.o_waiters) ())
  done

let mark_broken o reason =
  if o.o_broken = None then begin
    Sim.Stats.incr (hub_counter o.o_hub "chan_out_breaks");
    hub_trace o.o_hub "chan: out %s->%d broken: %s" o.o_key.label o.o_dst reason;
    o.o_broken <- Some reason;
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_buf_bytes <- 0;
    o.o_unacked <- [];
    o.o_inflight_bytes <- 0;
    o.o_flush_gen <- o.o_flush_gen + 1;
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    (match o.o_retx_timer with Some tm -> S.cancel_timer tm | None -> ());
    o.o_retx_timer <- None;
    wake_waiters o;
    let hooks = o.o_on_break in
    o.o_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let break_out o ~reason =
  if o.o_broken = None then begin
    (* Tell the receiver to discard its end before we forget the
       channel; the Reset itself may be lost, in which case the
       receiver end lingers harmlessly until a retransmit hits the
       tombstone on our side. *)
    transmit o.o_hub ~dst:o.o_dst (Reset { key = o.o_key; reason });
    mark_broken o reason
  end

(* --- AIMD window controller (docs/OVERLOAD.md) -------------------- *)

(* Multiplicative decrease, at most once per outstanding flight: after
   a cut, everything that was in the air at cut time must be acked
   before the next cut, so one congestion episode costs one halving
   instead of collapsing the window to the floor. *)
let cut_window o ~why =
  if o.o_cfg.adaptive_window && o.o_acked_upto >= o.o_cut_barrier then begin
    let next =
      max o.o_cfg.window_min_bytes
        (int_of_float (float_of_int o.o_window *. o.o_cfg.window_decrease))
    in
    if next < o.o_window then begin
      o.o_window <- next;
      Sim.Stats.incr (hub_counter o.o_hub "chan_window_cuts");
      hub_trace o.o_hub "chan: out %s->%d window cut to %dB (%s)" o.o_key.label o.o_dst
        o.o_window why
    end;
    o.o_cut_barrier <- o.o_next_seq - 1
  end

let grow_window o =
  if o.o_cfg.adaptive_window && o.o_window < o.o_cfg.max_inflight_bytes then
    o.o_window <- min o.o_cfg.max_inflight_bytes (o.o_window + o.o_cfg.window_increase)

(* The timer is anchored to the oldest unacked item: further sends do
   not push it back, so a dead peer is detected after at most
   [retransmit_timeout * (max_retries + 1)] even under a continuous
   call stream. *)
let rec arm_retransmit o =
  if o.o_broken = None && o.o_unacked <> [] && not o.o_retx_armed then begin
    o.o_retx_armed <- true;
    o.o_retx_gen <- o.o_retx_gen + 1;
    let gen = o.o_retx_gen in
    let tm =
      S.after_cancellable o.o_hub.h_sched o.o_cfg.retransmit_timeout (fun () ->
        if gen = o.o_retx_gen then begin
          o.o_retx_armed <- false;
          o.o_retx_timer <- None;
          if o.o_broken = None && o.o_unacked <> [] then begin
            o.o_retries <- o.o_retries + 1;
            if o.o_retries > o.o_cfg.max_retries then
              mark_broken o "retransmit limit exceeded: peer unreachable"
            else begin
              Sim.Stats.incr (hub_counter o.o_hub "chan_retransmits");
              cut_window o ~why:"retransmit";
              let first_seq =
                match o.o_unacked with u :: _ -> u.u_seq | [] -> assert false
              in
              (* Re-send only: the bytes are already counted in
                 [o_inflight_bytes] from their first transmission, so a
                 retransmit — including one racing a receiver shed —
                 must not charge the window a second time. *)
              let now = S.now o.o_hub.h_sched in
              let items =
                List.map
                  (fun u ->
                    u.u_retx <- true;
                    u.u_sent_at <- now;
                    u.u_item)
                  o.o_unacked
              in
              let acks = take_piggyback o.o_hub ~dst:o.o_dst in
              transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; acks; items });
              span_items o.o_hub Sim.Span.Retransmit
                ~note:(Printf.sprintf "try %d -> n%d" o.o_retries o.o_dst)
                items;
              arm_retransmit o
            end
          end
        end)
    in
    o.o_retx_timer <- Some tm
  end

let flush_out o =
  if o.o_broken = None && o.o_buf <> [] then begin
    let entries = List.rev o.o_buf in
    let first_seq = o.o_next_seq - o.o_buf_len in
    let batch_bytes = o.o_buf_bytes in
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_buf_bytes <- 0;
    o.o_flush_gen <- o.o_flush_gen + 1;
    let now = S.now o.o_hub.h_sched in
    o.o_unacked <-
      o.o_unacked
      @ List.mapi
          (fun i (item, size) ->
            { u_seq = first_seq + i; u_size = size; u_item = item; u_sent_at = now; u_retx = false })
          entries;
    o.o_inflight_bytes <- o.o_inflight_bytes + batch_bytes;
    let items = List.map fst entries in
    let acks = take_piggyback o.o_hub ~dst:o.o_dst in
    transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; acks; items });
    span_items o.o_hub Sim.Span.Transmit ~note:(Printf.sprintf "-> n%d" o.o_dst) items;
    arm_retransmit o
  end

(* Window has room for [bytes] more. When nothing at all is pending the
   answer is always yes, so a single item larger than the whole window
   still goes through (alone) instead of deadlocking. [o_window] is the
   live bound: pinned to [max_inflight_bytes] for a static config,
   moved by the AIMD controller for an adaptive one. *)
let window_admits o bytes =
  inflight_bytes o = 0 || inflight_bytes o + bytes <= o.o_window

let await_window o ~bytes =
  match o.o_broken with
  | Some reason -> Error reason
  | None ->
      if window_admits o bytes || S.current o.o_hub.h_sched = None then Ok ()
      else begin
        let rec wait () =
          S.suspend o.o_hub.h_sched (fun w -> Queue.add w o.o_waiters);
          match o.o_broken with
          | Some reason -> Error reason
          | None -> if window_admits o bytes then Ok () else wait ()
        in
        wait ()
      end

let send o item =
  match o.o_broken with
  | Some reason -> Error reason
  | None ->
      let size = B.size item in
      o.o_buf <- (item, size) :: o.o_buf;
      o.o_buf_len <- o.o_buf_len + 1;
      o.o_buf_bytes <- o.o_buf_bytes + size;
      o.o_next_seq <- o.o_next_seq + 1;
      if
        o.o_buf_len >= o.o_cfg.max_batch
        || o.o_buf_bytes >= o.o_cfg.max_batch_bytes
        || (o.o_cfg.flush_on_idle && o.o_unacked = [])
      then flush_out o
      else if o.o_buf_len = 1 && o.o_cfg.flush_interval < infinity then begin
        if o.o_cfg.flush_interval <= 0.0 then flush_out o
        else begin
          o.o_flush_gen <- o.o_flush_gen + 1;
          let gen = o.o_flush_gen in
          S.after o.o_hub.h_sched o.o_cfg.flush_interval (fun () ->
              if gen = o.o_flush_gen then flush_out o)
        end
      end;
      Ok ()

let handle_ack o ~upto ~pressure =
  if o.o_broken = None && upto > o.o_acked_upto then begin
    o.o_acked_upto <- upto;
    let freed = ref 0 in
    let freed_items = ref [] in
    let rtt_sample = ref nan in
    let freed_retx = ref false in
    let now = S.now o.o_hub.h_sched in
    o.o_unacked <-
      List.filter
        (fun u ->
          if u.u_seq <= upto then begin
            freed := !freed + u.u_size;
            freed_items := u.u_item :: !freed_items;
            if u.u_retx then freed_retx := true
            else rtt_sample := now -. u.u_sent_at;
            false
          end
          else true)
        o.o_unacked;
    let freed_items = List.rev !freed_items in
    span_items o.o_hub Sim.Span.Ack freed_items;
    o.o_inflight_bytes <- o.o_inflight_bytes - !freed;
    o.o_retries <- 0;
    (* AIMD step. The RTT sample comes from the newest freed item that
       was never retransmitted (Karn: retransmitted items give no
       sample — the ack could match either copy). Receiver pressure or
       a clearly inflated RTT cuts the window; an unremarkable ack with
       a relaxed receiver grows it by one additive step. *)
    if o.o_cfg.adaptive_window then begin
      let congested =
        Float.is_nan !rtt_sample = false
        && o.o_rtt_ewma > 0.0
        && !rtt_sample > o.o_cfg.rtt_inflation *. o.o_rtt_ewma
      in
      if pressure >= 2 then cut_window o ~why:"receiver pressure"
      else if congested then cut_window o ~why:"rtt inflation"
      else if pressure = 0 && not !freed_retx then grow_window o;
      if Float.is_nan !rtt_sample = false then begin
        Sim.Stats.observe (Sim.Stats.summary (S.stats o.o_hub.h_sched) "chan_rtt") !rtt_sample;
        o.o_rtt_ewma <-
          (if o.o_rtt_ewma <= 0.0 then !rtt_sample
           else (0.875 *. o.o_rtt_ewma) +. (0.125 *. !rtt_sample))
      end
    end;
    (match o.o_on_ack with Some f -> f freed_items | None -> ());
    (* restart the timer for the (new) oldest unacked item *)
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    (match o.o_retx_timer with Some tm -> S.cancel_timer tm | None -> ());
    o.o_retx_timer <- None;
    if o.o_unacked <> [] then arm_retransmit o;
    if !freed > 0 then wake_waiters o;
    (* Nagle release: the wire went idle — ship what accumulated while
       the previous batch was in flight. *)
    if o.o_cfg.flush_on_idle && o.o_unacked = [] && o.o_buf <> [] then flush_out o
  end

let break_in i ~reason =
  let hub = i.i_hub in
  if Hashtbl.mem hub.h_ins i.i_key then begin
    Hashtbl.remove hub.h_ins i.i_key;
    Hashtbl.replace hub.h_dead i.i_key reason;
    transmit hub ~dst:i.i_key.src (Reset { key = i.i_key; reason })
  end;
  mark_in_broken i reason

(* Items arrive as validated views; a value-based consumer gets them
   materialised here, a view-based one (the zero-copy target/stream
   paths) receives the slices untouched. Materialisation of a
   scan-validated slice cannot fail — [filter_map] only guards against
   memory corruption. *)
let deliver_fresh i fresh =
  match i.i_deliver with
  | Some (Deliver_views f) -> f fresh
  | Some (Deliver_values f) ->
      f (List.filter_map (fun vw -> Result.to_option (Xdr.View.materialize vw)) fresh)
  | None -> ()

let handle_data hub ~key ~first_seq ~items =
  match Hashtbl.find_opt hub.h_dead key with
  | Some reason ->
      (* The channel was broken here earlier; keep telling the sender. *)
      transmit hub ~dst:key.src (Reset { key; reason })
  | None ->
      let chan =
        match Hashtbl.find_opt hub.h_ins key with
        | Some i -> Some i
        | None -> (
            match Hashtbl.find_opt hub.h_acceptors key.label with
            | None ->
                transmit hub ~dst:key.src (Reset { key; reason = "no such port group" });
                None
            | Some acceptor ->
                let i =
                  {
                    i_hub = hub;
                    i_key = key;
                    i_expected = 0;
                    i_deliver = None;
                    i_pressure = None;
                    i_broken = None;
                    i_on_break = [];
                  }
                in
                Hashtbl.replace hub.h_ins key i;
                acceptor i;
                Some i)
      in
      match chan with
      | None -> ()
      | Some i ->
          let count = List.length items in
          if first_seq > i.i_expected then
            (* Gap: go-back-n — drop and re-ack what we have. *)
            post_ack hub ~dst:key.src ~key ~upto:(i.i_expected - 1)
              ~pressure:(probe_pressure i)
          else begin
            let skip = i.i_expected - first_seq in
            if skip > 0 then
              Sim.Stats.add (hub_counter hub "chan_dup_items_suppressed") (min skip count);
            let fresh = if skip >= count then [] else List.filteri (fun idx _ -> idx >= skip) items in
            if fresh <> [] then begin
              i.i_expected <- i.i_expected + List.length fresh;
              span_views hub Sim.Span.Deliver ~note:(Printf.sprintf "from n%d" key.src) fresh;
              deliver_fresh i fresh
            end;
            post_ack hub ~dst:key.src ~key ~upto:(i.i_expected - 1)
              ~pressure:(probe_pressure i)
          end

let handle_reset hub ~key ~reason =
  (match Hashtbl.find_opt hub.h_outs key with
  | Some o ->
      Hashtbl.remove hub.h_outs key;
      mark_broken o reason
  | None -> ());
  match Hashtbl.find_opt hub.h_ins key with
  | Some i ->
      Hashtbl.remove hub.h_ins key;
      Hashtbl.replace hub.h_dead key reason;
      mark_in_broken i reason
  | None -> ()

let handle_acks hub acks =
  List.iter
    (fun a ->
      match Hashtbl.find_opt hub.h_outs a.a_key with
      | Some o -> handle_ack o ~upto:a.a_upto ~pressure:a.a_pressure
      | None -> ())
    acks

(* Inbound frames, decoded lazily: Data items become views, not trees.
   The variant is internal — the public {!decode_packet} (v1, fully
   materialised) is unchanged for tools and tests. *)
type inbound =
  | I_data of { key : key; first_seq : int; acks : ack_entry list; items : Xdr.View.t list }
  | I_ack of ack_entry list
  | I_reset of { key : key; reason : string }
  | I_hello of int  (* peer offers its dictionary, payload = epoch *)
  | I_welcome of int  (* peer accepted ours *)

(* Receiver dictionary table for [(src, epoch)]; an epoch change swaps
   in a fresh table (views over old frames keep the old one alive). *)
let dict_in hub src epoch =
  match Hashtbl.find_opt hub.h_dict_in src with
  | Some (e, dt) when e = epoch -> dt
  | _ ->
      let dt = B.create_dict_table () in
      Hashtbl.replace hub.h_dict_in src (epoch, dt);
      dt

let decode_inbound hub ~src frame =
  let d = B.decoder frame in
  let* v = B.read_byte d in
  let* () =
    if v = B.version then Ok ()
    else if v = dict_version then
      let* epoch = B.read_uvarint d in
      Ok (B.use_dict_table d (dict_in hub src epoch))
    else Error (Printf.sprintf "unsupported wire version %d" v)
  in
  let* tag = B.read_byte d in
  let* p =
    match tag with
    | 1 ->
        let* key = decode_key d in
        let* first_seq = B.read_uvarint d in
        let* acks = decode_acks d in
        let* n = B.read_uvarint d in
        if n < 0 || n > B.remaining d then Error "item count overruns input"
        else
          let rec go k acc =
            if k = 0 then Ok (List.rev acc)
            else
              let* item = Xdr.View.read d in
              go (k - 1) (item :: acc)
          in
          let* items = go n [] in
          Ok (I_data { key; first_seq; acks; items })
    | 2 ->
        let* acks = decode_acks d in
        Ok (I_ack acks)
    | 3 ->
        let* key = decode_key d in
        let* reason = B.read_raw_string d in
        Ok (I_reset { key; reason })
    | 4 ->
        let* epoch = B.read_uvarint d in
        Ok (I_hello epoch)
    | 5 ->
        let* epoch = B.read_uvarint d in
        Ok (I_welcome epoch)
    | t -> Error (Printf.sprintf "unknown packet tag %d" t)
  in
  let* () = B.expect_end d in
  Ok p

let receive hub ~src frame =
  match decode_inbound hub ~src frame with
  | Error _ ->
      (* Corrupt frame: drop it; go-back-n retransmission recovers. *)
      Sim.Stats.incr (hub_counter hub "chan_decode_errors")
  | Ok (I_data { key; first_seq; acks; items }) ->
      (* Acks ride in front of the data they share a packet with. *)
      handle_acks hub acks;
      handle_data hub ~key ~first_seq ~items
  | Ok (I_ack acks) -> handle_acks hub acks
  | Ok (I_reset { key; reason }) -> handle_reset hub ~key ~reason
  | Ok (I_hello epoch) ->
      (* Any hub can decode v2 frames; accepting costs one table. *)
      ignore (dict_in hub src epoch : B.dict_table);
      let f = encode_dict_ctrl ~tag:5 ~epoch in
      Sim.Stats.add (hub_counter hub "chan_wire_bytes") (String.length f);
      hub.h_tr.Transport.send ~dst:src f
  | Ok (I_welcome epoch) -> (
      match Hashtbl.find_opt hub.h_dict_out src with
      | Some od when od.od_helloed && B.dict_epoch od.od_dict = epoch ->
          if not od.od_on then begin
            od.od_on <- true;
            Sim.Stats.incr (hub_counter hub "chan_dict_negotiated")
          end
      | _ -> ())

(* The transport told us every connection to [peer] is gone: break each
   channel touching it so supervision (stream restart + resubmit) takes
   over. Incoming ends are tombstoned exactly as a Reset would, so a
   stale retransmit arriving over a fresh connection is answered with
   Reset rather than resurrecting the old incarnation. Only real
   transports fire this; the simulated net has no connections. *)
let peer_down hub ~peer ~reason =
  let reason = Printf.sprintf "connection to n%d lost: %s" peer reason in
  (* Dictionary state is connection-scoped: the next incarnation must
     start from an empty table on both ends, so reset (epoch bump) on
     our sending side and drop the peer's receive table — resubmitted
     calls then decode against a fresh dictionary. *)
  (match Hashtbl.find_opt hub.h_dict_out peer with
  | Some od ->
      B.reset_dict od.od_dict;
      od.od_on <- false;
      od.od_helloed <- false
  | None -> ());
  Hashtbl.remove hub.h_dict_in peer;
  let outs =
    Hashtbl.fold (fun _ o acc -> if o.o_dst = peer then o :: acc else acc) hub.h_outs []
  in
  List.iter
    (fun o ->
      Hashtbl.remove hub.h_outs o.o_key;
      mark_broken o reason)
    outs;
  let ins =
    Hashtbl.fold (fun _ i acc -> if i.i_key.src = peer then i :: acc else acc) hub.h_ins []
  in
  List.iter
    (fun i ->
      Hashtbl.remove hub.h_ins i.i_key;
      Hashtbl.replace hub.h_dead i.i_key reason;
      mark_in_broken i reason)
    ins

let create_hub_on ?(ack_delay = 0.0) ?(dict = false) tr =
  let hub =
    {
      h_tr = tr;
      h_sched = tr.Transport.sched;
      h_ack_delay = ack_delay;
      (* Dictionary frames need every frame delivered exactly once and
         in order; on an unreliable endpoint the request is dropped
         rather than negotiated. *)
      h_dict = dict && tr.Transport.reliable;
      h_outs = Hashtbl.create 16;
      h_ins = Hashtbl.create 16;
      h_acceptors = Hashtbl.create 16;
      h_dead = Hashtbl.create 16;
      h_pending = Hashtbl.create 4;
      h_dict_out = Hashtbl.create 4;
      h_dict_in = Hashtbl.create 4;
      h_next_idx = 0;
      h_ho_epoch = 0;
      h_ho_pushes = Hashtbl.create 4;
      h_ho_expect = Hashtbl.create 16;
      h_ho_early = Hashtbl.create 16;
      h_ho_order = Queue.create ();
      h_ho_listening = false;
    }
  in
  tr.Transport.set_receiver (fun ~src frame -> receive hub ~src frame);
  tr.Transport.set_peer_watch (fun ~peer ~reason -> peer_down hub ~peer ~reason);
  hub

let create_hub ?ack_delay ?dict ?transport ?net () =
  match (transport, net) with
  | Some tr, None -> create_hub_on ?ack_delay ?dict tr
  | None, Some (n, node) -> create_hub_on ?ack_delay ?dict (Transport_sim.endpoint n node)
  | Some _, Some _ | None, None ->
      invalid_arg "Chanhub.create_hub: pass exactly one of ~transport / ~net"

let create_hub_tr ?ack_delay ?dict tr = create_hub ?ack_delay ?dict ~transport:tr ()

let on_connect hub ~label acceptor = Hashtbl.replace hub.h_acceptors label acceptor

let remove_acceptor hub ~label = Hashtbl.remove hub.h_acceptors label

let connect hub ~dst ~label ~meta cfg =
  if cfg.max_batch <= 0 then invalid_arg "Chanhub.connect: max_batch must be positive";
  if cfg.max_batch_bytes <= 0 then
    invalid_arg "Chanhub.connect: max_batch_bytes must be positive";
  if cfg.max_inflight_bytes <= 0 then
    invalid_arg "Chanhub.connect: max_inflight_bytes must be positive";
  if cfg.adaptive_window then begin
    if cfg.window_min_bytes <= 0 || cfg.window_min_bytes > cfg.max_inflight_bytes then
      invalid_arg "Chanhub.connect: window_min_bytes must be in (0, max_inflight_bytes]";
    if cfg.window_increase <= 0 then
      invalid_arg "Chanhub.connect: window_increase must be positive";
    if cfg.window_decrease <= 0.0 || cfg.window_decrease >= 1.0 then
      invalid_arg "Chanhub.connect: window_decrease must be in (0, 1)";
    if cfg.rtt_inflation <= 1.0 then
      invalid_arg "Chanhub.connect: rtt_inflation must exceed 1"
  end;
  let key = { src = hub.h_tr.Transport.addr; label; idx = hub.h_next_idx; meta } in
  hub.h_next_idx <- hub.h_next_idx + 1;
  let o =
    {
      o_hub = hub;
      o_key = key;
      o_dst = dst;
      o_cfg = cfg;
      o_next_seq = 0;
      o_buf = [];
      o_buf_len = 0;
      o_buf_bytes = 0;
      o_unacked = [];
      o_inflight_bytes = 0;
      o_acked_upto = -1;
      o_window = (if cfg.adaptive_window then cfg.window_min_bytes else cfg.max_inflight_bytes);
      o_rtt_ewma = 0.0;
      o_cut_barrier = -1;
      o_on_ack = None;
      o_retries = 0;
      o_broken = None;
      o_on_break = [];
      o_flush_gen = 0;
      o_retx_gen = 0;
      o_retx_armed = false;
      o_retx_timer = None;
      o_waiters = Queue.create ();
    }
  in
  Hashtbl.replace hub.h_outs key o;
  o

let hub_recv_overhead h = h.h_tr.Transport.recv_overhead ()

let hub_transport h = h.h_tr

(* --- third-party handoff (docs/HANDOFF.md) ------------------------ *)

(* How many unclaimed early pushes a hub keeps. Entries also serve as
   the push dedup record, so the cap bounds both memory and the window
   in which a replayed push is recognised as a duplicate. *)
let handoff_early_cap = 4096

let handoff_label = "~handoff"

let handoff_epoch hub = hub.h_ho_epoch

let set_handoff_epoch hub e = hub.h_ho_epoch <- e

(* One pushed outcome landed (or was replayed). First sighting is
   buffered and wakes whoever already expects the key; a repeat is the
   exactly-once machinery absorbing a replay. *)
let handle_push hub (stream, call, ov) =
  let key = (stream, call) in
  if Hashtbl.mem hub.h_ho_early key then
    Sim.Stats.incr (hub_counter hub "handoff_dedup_joins")
  else begin
    if Queue.length hub.h_ho_order >= handoff_early_cap then begin
      let victim = Queue.pop hub.h_ho_order in
      Hashtbl.remove hub.h_ho_early victim
    end;
    Hashtbl.replace hub.h_ho_early key ov;
    Queue.push key hub.h_ho_order;
    match Hashtbl.find_opt hub.h_ho_expect key with
    | None -> ()
    | Some ks ->
        Hashtbl.remove hub.h_ho_expect key;
        List.iter (fun k -> k ov) (List.rev ks)
  end

let handoff_listen hub =
  if not hub.h_ho_listening then begin
    hub.h_ho_listening <- true;
    on_connect hub ~label:handoff_label (fun i ->
        set_deliver i (fun items ->
            List.iter
              (fun item ->
                match Wire.parse_handoff_push item with
                | Ok push -> handle_push hub push
                | Error e -> hub_trace hub "handoff: malformed push dropped: %s" e)
              items))
  end

let handoff_expect hub ~stream ~call k =
  match Hashtbl.find_opt hub.h_ho_early (stream, call) with
  | Some ov -> k ov
  | None ->
      let key = (stream, call) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt hub.h_ho_expect key) in
      Hashtbl.replace hub.h_ho_expect key (k :: existing)

let handoff_push hub ~dst ~stream ~call ov =
  Sim.Stats.incr (hub_counter hub "handoff_forwards");
  if dst = hub_addr hub then
    (* Producer and forwarded call share a node: no wire leg. *)
    handle_push hub (stream, call, ov)
  else begin
    let o =
      match Hashtbl.find_opt hub.h_ho_pushes dst with
      | Some o when o.o_broken = None -> o
      | _ ->
          let o = connect hub ~dst ~label:handoff_label ~meta:"" rpc_config in
          Sim.Stats.incr (hub_counter hub "handoff_streams_opened");
          Hashtbl.replace hub.h_ho_pushes dst o;
          on_out_break o (fun _ ->
              match Hashtbl.find_opt hub.h_ho_pushes dst with
              | Some o' when o' == o -> Hashtbl.remove hub.h_ho_pushes dst
              | _ -> ());
          o
    in
    (* A send on a just-broken channel is lost with the peer it was for;
       exactly-once is preserved by the fallback pushes the claimant's
       side makes on abnormal outcomes. *)
    (match send o (Wire.handoff_push_item ~stream ~call ov) with
    | Ok () -> ()
    | Error _ -> ());
    flush_out o
  end
