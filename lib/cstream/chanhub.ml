module S = Sched.Scheduler

type key = { src : Net.address; label : string; idx : int; meta : string }

type packet =
  | Data of { key : key; first_seq : int; items : Xdr.value list }
  | Ack of { key : key; upto : int }
  | Reset of { key : key; reason : string }

let key_bytes k = 16 + String.length k.label + String.length k.meta

let packet_bytes = function
  | Data { key; items; _ } ->
      8 + key_bytes key
      + List.fold_left (fun acc item -> acc + 8 + Xdr.wire_size item) 0 items
  | Ack { key; _ } -> 8 + key_bytes key
  | Reset { key; reason } -> 8 + key_bytes key + String.length reason

type config = {
  max_batch : int;
  flush_interval : float;
  retransmit_timeout : float;
  max_retries : int;
}

let default_config =
  { max_batch = 8; flush_interval = 2e-3; retransmit_timeout = 50e-3; max_retries = 10 }

let rpc_config = { default_config with max_batch = 1; flush_interval = 0.0 }

type out_chan = {
  o_hub : hub;
  o_key : key;
  o_dst : Net.address;
  o_cfg : config;
  mutable o_next_seq : int;  (* seq of the next item accepted by [send] *)
  mutable o_buf : Xdr.value list;  (* reversed: newest first *)
  mutable o_buf_len : int;
  mutable o_unacked : (int * Xdr.value) list;  (* oldest first *)
  mutable o_acked_upto : int;
  mutable o_retries : int;
  mutable o_broken : string option;
  mutable o_on_break : (string -> unit) list;
  mutable o_flush_gen : int;
  mutable o_retx_gen : int;
  mutable o_retx_armed : bool;
}

and in_chan = {
  i_hub : hub;
  i_key : key;
  mutable i_expected : int;
  mutable i_deliver : (Xdr.value list -> unit) option;
  mutable i_broken : string option;
  mutable i_on_break : (string -> unit) list;
}

and hub = {
  h_net : packet Net.t;
  h_node : Net.node;
  h_sched : S.t;
  h_outs : (key, out_chan) Hashtbl.t;
  h_ins : (key, in_chan) Hashtbl.t;
  h_acceptors : (string, in_chan -> unit) Hashtbl.t;
  h_dead : (key, string) Hashtbl.t;
  mutable h_next_idx : int;
}

let hub_node h = h.h_node

let hub_sched h = h.h_sched

let out_key o = o.o_key

let out_broken o = o.o_broken

let on_out_break o f =
  match o.o_broken with
  | Some reason ->
      (* Already broken: fire immediately so late registrants still learn. *)
      f reason
  | None -> o.o_on_break <- f :: o.o_on_break

let unacked_count o = o.o_buf_len + List.length o.o_unacked

let in_key i = i.i_key

let in_src i = i.i_key.src

let set_deliver i f = i.i_deliver <- Some f

let in_broken i = i.i_broken

let on_in_break i f =
  match i.i_broken with Some reason -> f reason | None -> i.i_on_break <- f :: i.i_on_break

let mark_in_broken i reason =
  if i.i_broken = None then begin
    Sim.Stats.incr (Sim.Stats.counter (S.stats i.i_hub.h_sched) "chan_in_breaks");
    i.i_broken <- Some reason;
    let hooks = i.i_on_break in
    i.i_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let transmit hub ~dst packet =
  Net.send hub.h_net ~src:hub.h_node ~dst ~bytes_:(packet_bytes packet) packet

let hub_counter hub name = Sim.Stats.counter (S.stats hub.h_sched) name

let hub_trace hub fmt = Sim.Trace.recordf (S.trace hub.h_sched) ~time:(S.now hub.h_sched) fmt

let mark_broken o reason =
  if o.o_broken = None then begin
    Sim.Stats.incr (hub_counter o.o_hub "chan_out_breaks");
    hub_trace o.o_hub "chan: out %s->%d broken: %s" o.o_key.label o.o_dst reason;
    o.o_broken <- Some reason;
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_unacked <- [];
    o.o_flush_gen <- o.o_flush_gen + 1;
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    let hooks = o.o_on_break in
    o.o_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let break_out o ~reason =
  if o.o_broken = None then begin
    (* Tell the receiver to discard its end before we forget the
       channel; the Reset itself may be lost, in which case the
       receiver end lingers harmlessly until a retransmit hits the
       tombstone on our side. *)
    transmit o.o_hub ~dst:o.o_dst (Reset { key = o.o_key; reason });
    mark_broken o reason
  end

(* The timer is anchored to the oldest unacked item: further sends do
   not push it back, so a dead peer is detected after at most
   [retransmit_timeout * (max_retries + 1)] even under a continuous
   call stream. *)
let rec arm_retransmit o =
  if o.o_broken = None && o.o_unacked <> [] && not o.o_retx_armed then begin
    o.o_retx_armed <- true;
    o.o_retx_gen <- o.o_retx_gen + 1;
    let gen = o.o_retx_gen in
    S.after o.o_hub.h_sched o.o_cfg.retransmit_timeout (fun () ->
        if gen = o.o_retx_gen then begin
          o.o_retx_armed <- false;
          if o.o_broken = None && o.o_unacked <> [] then begin
            o.o_retries <- o.o_retries + 1;
            if o.o_retries > o.o_cfg.max_retries then
              mark_broken o "retransmit limit exceeded: peer unreachable"
            else begin
              Sim.Stats.incr (hub_counter o.o_hub "chan_retransmits");
              let first_seq = match o.o_unacked with (s, _) :: _ -> s | [] -> assert false in
              let items = List.map snd o.o_unacked in
              transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; items });
              arm_retransmit o
            end
          end
        end)
  end

let flush_out o =
  if o.o_broken = None && o.o_buf <> [] then begin
    let items = List.rev o.o_buf in
    let first_seq = o.o_next_seq - o.o_buf_len in
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_flush_gen <- o.o_flush_gen + 1;
    o.o_unacked <- o.o_unacked @ List.mapi (fun i item -> (first_seq + i, item)) items;
    transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; items });
    arm_retransmit o
  end

let send o item =
  match o.o_broken with
  | Some reason -> Error reason
  | None ->
      o.o_buf <- item :: o.o_buf;
      o.o_buf_len <- o.o_buf_len + 1;
      o.o_next_seq <- o.o_next_seq + 1;
      if o.o_buf_len >= o.o_cfg.max_batch then flush_out o
      else if o.o_buf_len = 1 && o.o_cfg.flush_interval < infinity then begin
        if o.o_cfg.flush_interval <= 0.0 then flush_out o
        else begin
          o.o_flush_gen <- o.o_flush_gen + 1;
          let gen = o.o_flush_gen in
          S.after o.o_hub.h_sched o.o_cfg.flush_interval (fun () ->
              if gen = o.o_flush_gen then flush_out o)
        end
      end;
      Ok ()

let handle_ack o ~upto =
  if o.o_broken = None && upto > o.o_acked_upto then begin
    o.o_acked_upto <- upto;
    o.o_unacked <- List.filter (fun (s, _) -> s > upto) o.o_unacked;
    o.o_retries <- 0;
    (* restart the timer for the (new) oldest unacked item *)
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    if o.o_unacked <> [] then arm_retransmit o
  end

let break_in i ~reason =
  let hub = i.i_hub in
  if Hashtbl.mem hub.h_ins i.i_key then begin
    Hashtbl.remove hub.h_ins i.i_key;
    Hashtbl.replace hub.h_dead i.i_key reason;
    transmit hub ~dst:i.i_key.src (Reset { key = i.i_key; reason })
  end;
  mark_in_broken i reason

let handle_data hub ~key ~first_seq ~items =
  match Hashtbl.find_opt hub.h_dead key with
  | Some reason ->
      (* The channel was broken here earlier; keep telling the sender. *)
      transmit hub ~dst:key.src (Reset { key; reason })
  | None ->
      let chan =
        match Hashtbl.find_opt hub.h_ins key with
        | Some i -> Some i
        | None -> (
            match Hashtbl.find_opt hub.h_acceptors key.label with
            | None ->
                transmit hub ~dst:key.src (Reset { key; reason = "no such port group" });
                None
            | Some acceptor ->
                let i =
                  {
                    i_hub = hub;
                    i_key = key;
                    i_expected = 0;
                    i_deliver = None;
                    i_broken = None;
                    i_on_break = [];
                  }
                in
                Hashtbl.replace hub.h_ins key i;
                acceptor i;
                Some i)
      in
      match chan with
      | None -> ()
      | Some i ->
          let count = List.length items in
          if first_seq > i.i_expected then
            (* Gap: go-back-n — drop and re-ack what we have. *)
            transmit hub ~dst:key.src (Ack { key; upto = i.i_expected - 1 })
          else begin
            let skip = i.i_expected - first_seq in
            if skip > 0 then
              Sim.Stats.add (hub_counter hub "chan_dup_items_suppressed") (min skip count);
            let fresh = if skip >= count then [] else List.filteri (fun idx _ -> idx >= skip) items in
            if fresh <> [] then begin
              i.i_expected <- i.i_expected + List.length fresh;
              match i.i_deliver with
              | Some f -> f fresh
              | None -> ()
            end;
            transmit hub ~dst:key.src (Ack { key; upto = i.i_expected - 1 })
          end

let handle_reset hub ~key ~reason =
  (match Hashtbl.find_opt hub.h_outs key with
  | Some o ->
      Hashtbl.remove hub.h_outs key;
      mark_broken o reason
  | None -> ());
  match Hashtbl.find_opt hub.h_ins key with
  | Some i ->
      Hashtbl.remove hub.h_ins key;
      Hashtbl.replace hub.h_dead key reason;
      mark_in_broken i reason
  | None -> ()

let receive hub ~src:_ packet =
  match packet with
  | Data { key; first_seq; items } -> handle_data hub ~key ~first_seq ~items
  | Ack { key; upto } -> (
      match Hashtbl.find_opt hub.h_outs key with
      | Some o -> handle_ack o ~upto
      | None -> ())
  | Reset { key; reason } -> handle_reset hub ~key ~reason

let create_hub net node =
  let hub =
    {
      h_net = net;
      h_node = node;
      h_sched = Net.sched net;
      h_outs = Hashtbl.create 16;
      h_ins = Hashtbl.create 16;
      h_acceptors = Hashtbl.create 16;
      h_dead = Hashtbl.create 16;
      h_next_idx = 0;
    }
  in
  Net.set_receiver net node (fun ~src packet -> receive hub ~src packet);
  hub

let on_connect hub ~label acceptor = Hashtbl.replace hub.h_acceptors label acceptor

let remove_acceptor hub ~label = Hashtbl.remove hub.h_acceptors label

let connect hub ~dst ~label ~meta cfg =
  if cfg.max_batch <= 0 then invalid_arg "Chanhub.connect: max_batch must be positive";
  let key = { src = Net.address hub.h_node; label; idx = hub.h_next_idx; meta } in
  hub.h_next_idx <- hub.h_next_idx + 1;
  let o =
    {
      o_hub = hub;
      o_key = key;
      o_dst = dst;
      o_cfg = cfg;
      o_next_seq = 0;
      o_buf = [];
      o_buf_len = 0;
      o_unacked = [];
      o_acked_upto = -1;
      o_retries = 0;
      o_broken = None;
      o_on_break = [];
      o_flush_gen = 0;
      o_retx_gen = 0;
      o_retx_armed = false;
    }
  in
  Hashtbl.replace hub.h_outs key o;
  o

let hub_net_config h = Net.config h.h_net
