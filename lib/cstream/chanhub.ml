module S = Sched.Scheduler
module B = Xdr.Bin

type key = { src : Net.address; label : string; idx : int; meta : string }

type packet =
  | Data of {
      key : key;
      first_seq : int;
      acks : (key * int) list;  (* piggybacked cumulative acks *)
      items : Xdr.value list;
    }
  | Ack of { acks : (key * int) list }
  | Reset of { key : key; reason : string }

type frame = string

(* ------------------------------------------------------------------ *)
(* Packet frame codec. Layout: version byte, packet tag (1 = Data,
   2 = Ack, 3 = Reset), then the packet body. Every string — channel
   labels, meta, record field names inside items — goes through one
   intern table per frame, so a batch of calls to the same port pays
   for the port name once. *)

let encode_key e (k : key) =
  B.add_uvarint e k.src;
  B.add_string e k.label;
  B.add_uvarint e k.idx;
  B.add_string e k.meta

let encode_ack e ((k, upto) : key * int) =
  encode_key e k;
  (* upto is -1 for "nothing received yet", hence signed *)
  B.add_varint e upto

let encode_packet p =
  B.with_encoder (fun e ->
      B.add_byte e B.version;
      (match p with
      | Data { key; first_seq; acks; items } ->
          B.add_byte e 1;
          encode_key e key;
          B.add_uvarint e first_seq;
          B.add_uvarint e (List.length acks);
          List.iter (encode_ack e) acks;
          B.add_uvarint e (List.length items);
          List.iter (B.add_value e) items
      | Ack { acks } ->
          B.add_byte e 2;
          B.add_uvarint e (List.length acks);
          List.iter (encode_ack e) acks
      | Reset { key; reason } ->
          B.add_byte e 3;
          encode_key e key;
          B.add_raw_string e reason);
      B.contents e)

let ( let* ) = Result.bind

let decode_key d =
  let* src = B.read_uvarint d in
  let* label = B.read_string d in
  let* idx = B.read_uvarint d in
  let* meta = B.read_string d in
  Ok { src; label; idx; meta }

let decode_acks d =
  let* n = B.read_uvarint d in
  if n < 0 || n > B.remaining d then Error "ack count overruns input"
  else
    let rec go k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* key = decode_key d in
        let* upto = B.read_varint d in
        go (k - 1) ((key, upto) :: acc)
    in
    go n []

let decode_packet frame =
  let d = B.decoder frame in
  let* v = B.read_byte d in
  if v <> B.version then Error (Printf.sprintf "unsupported wire version %d" v)
  else
    let* tag = B.read_byte d in
    let* p =
      match tag with
      | 1 ->
          let* key = decode_key d in
          let* first_seq = B.read_uvarint d in
          let* acks = decode_acks d in
          let* n = B.read_uvarint d in
          if n < 0 || n > B.remaining d then Error "item count overruns input"
          else
            let rec go k acc =
              if k = 0 then Ok (List.rev acc)
              else
                let* item = B.read_value d in
                go (k - 1) (item :: acc)
            in
            let* items = go n [] in
            Ok (Data { key; first_seq; acks; items })
      | 2 ->
          let* acks = decode_acks d in
          Ok (Ack { acks })
      | 3 ->
          let* key = decode_key d in
          let* reason = B.read_raw_string d in
          Ok (Reset { key; reason })
      | t -> Error (Printf.sprintf "unknown packet tag %d" t)
    in
    let* () = B.expect_end d in
    Ok p

let packet_bytes p = String.length (encode_packet p)

(* ------------------------------------------------------------------ *)

type config = {
  max_batch : int;
  max_batch_bytes : int;
  flush_interval : float;
  flush_on_idle : bool;
  retransmit_timeout : float;
  max_retries : int;
  max_inflight_bytes : int;
}

let default_config =
  {
    max_batch = 8;
    max_batch_bytes = 4096;
    flush_interval = 2e-3;
    flush_on_idle = false;
    retransmit_timeout = 50e-3;
    max_retries = 10;
    max_inflight_bytes = max_int;
  }

let rpc_config = { default_config with max_batch = 1; flush_interval = 0.0 }

let adaptive_config =
  {
    max_batch = 64;
    max_batch_bytes = 1024;
    flush_interval = 2e-3;
    flush_on_idle = true;
    retransmit_timeout = 50e-3;
    max_retries = 10;
    max_inflight_bytes = 8192;
  }

type out_chan = {
  o_hub : hub;
  o_key : key;
  o_dst : Net.address;
  o_cfg : config;
  mutable o_next_seq : int;  (* seq of the next item accepted by [send] *)
  mutable o_buf : (Xdr.value * int) list;  (* reversed: newest first; item, encoded size *)
  mutable o_buf_len : int;
  mutable o_buf_bytes : int;
  mutable o_unacked : (int * int * Xdr.value) list;  (* oldest first; seq, size, item *)
  mutable o_inflight_bytes : int;
  mutable o_acked_upto : int;
  mutable o_retries : int;
  mutable o_broken : string option;
  mutable o_on_break : (string -> unit) list;
  mutable o_flush_gen : int;
  mutable o_retx_gen : int;
  mutable o_retx_armed : bool;
  o_waiters : unit S.waker Queue.t;  (* fibers parked in await_window *)
}

and in_chan = {
  i_hub : hub;
  i_key : key;
  mutable i_expected : int;
  mutable i_deliver : (Xdr.value list -> unit) option;
  mutable i_broken : string option;
  mutable i_on_break : (string -> unit) list;
}

and pending_acks = {
  p_acks : (key, int) Hashtbl.t;  (* per reverse channel: max upto seen *)
  mutable p_armed : bool;  (* delayed standalone-Ack timer pending *)
}

and hub = {
  h_net : frame Net.t;
  h_node : Net.node;
  h_sched : S.t;
  h_ack_delay : float;
  h_outs : (key, out_chan) Hashtbl.t;
  h_ins : (key, in_chan) Hashtbl.t;
  h_acceptors : (string, in_chan -> unit) Hashtbl.t;
  h_dead : (key, string) Hashtbl.t;
  h_pending : (Net.address, pending_acks) Hashtbl.t;
  mutable h_next_idx : int;
}

let hub_node h = h.h_node

let hub_sched h = h.h_sched

let out_key o = o.o_key

let out_broken o = o.o_broken

let on_out_break o f =
  match o.o_broken with
  | Some reason ->
      (* Already broken: fire immediately so late registrants still learn. *)
      f reason
  | None -> o.o_on_break <- f :: o.o_on_break

let unacked_count o = o.o_buf_len + List.length o.o_unacked

let inflight_bytes o = o.o_buf_bytes + o.o_inflight_bytes

let in_key i = i.i_key

let in_src i = i.i_key.src

let set_deliver i f = i.i_deliver <- Some f

let in_broken i = i.i_broken

let on_in_break i f =
  match i.i_broken with Some reason -> f reason | None -> i.i_on_break <- f :: i.i_on_break

let mark_in_broken i reason =
  if i.i_broken = None then begin
    Sim.Stats.incr (Sim.Stats.counter (S.stats i.i_hub.h_sched) "chan_in_breaks");
    i.i_broken <- Some reason;
    let hooks = i.i_on_break in
    i.i_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let hub_counter hub name = Sim.Stats.counter (S.stats hub.h_sched) name

let hub_trace hub fmt = Sim.Trace.recordf (S.trace hub.h_sched) ~time:(S.now hub.h_sched) fmt

(* Causal tracing (docs/TRACING.md): every item that carries a trace id
   gets a span at each transport edge. Items without one — all of them,
   when tracing is off — cost a single branch here. *)
let span_items hub kind ?note items =
  let spans = S.spans hub.h_sched in
  if Sim.Span.enabled spans then
    List.iter
      (fun item ->
        match Wire.item_trace item with
        | Some tid ->
            Sim.Span.record spans ~time:(S.now hub.h_sched) ~kind ~trace:tid
              ~node:(Net.address hub.h_node) ?note ()
        | None -> ())
      items

let transmit hub ~dst packet =
  let frame = encode_packet packet in
  let bytes = String.length frame in
  Sim.Stats.add (hub_counter hub "chan_wire_bytes") bytes;
  (match packet with
  | Data { items; _ } ->
      Sim.Stats.incr (hub_counter hub "chan_data_packets");
      Sim.Stats.add (hub_counter hub "chan_items_sent") (List.length items)
  | Ack _ -> Sim.Stats.incr (hub_counter hub "chan_ack_packets")
  | Reset _ -> Sim.Stats.incr (hub_counter hub "chan_reset_packets"));
  Net.send hub.h_net ~src:hub.h_node ~dst ~bytes_:bytes frame

(* --- delayed acks and piggybacking -------------------------------- *)

let pending_for hub dst =
  match Hashtbl.find_opt hub.h_pending dst with
  | Some p -> p
  | None ->
      let p = { p_acks = Hashtbl.create 4; p_armed = false } in
      Hashtbl.replace hub.h_pending dst p;
      p

let drain_pending hub dst =
  match Hashtbl.find_opt hub.h_pending dst with
  | None -> []
  | Some p ->
      let acks = Hashtbl.fold (fun k upto acc -> (k, upto) :: acc) p.p_acks [] in
      Hashtbl.reset p.p_acks;
      acks

(* Acks waiting for [dst] hitch a ride on this Data packet. *)
let take_piggyback hub ~dst =
  let acks = drain_pending hub dst in
  if acks <> [] then Sim.Stats.add (hub_counter hub "chan_piggybacked_acks") (List.length acks);
  acks

(* Acknowledge [upto] on [key]'s reverse path. With no ack delay the
   standalone Ack goes out immediately (the pre-piggybacking
   behaviour). With a delay, the ack is parked hoping a reverse-
   direction Data packet picks it up; a timer bounds how long the
   sender waits (it must come well under the retransmit timeout). *)
let post_ack hub ~dst ~key ~upto =
  if hub.h_ack_delay <= 0.0 then begin
    Sim.Stats.incr (hub_counter hub "chan_standalone_acks");
    transmit hub ~dst (Ack { acks = [ (key, upto) ] })
  end
  else begin
    let p = pending_for hub dst in
    (match Hashtbl.find_opt p.p_acks key with
    | Some prev when prev >= upto -> ()
    | _ -> Hashtbl.replace p.p_acks key upto);
    if not p.p_armed then begin
      p.p_armed <- true;
      S.after hub.h_sched hub.h_ack_delay (fun () ->
          p.p_armed <- false;
          let acks = drain_pending hub dst in
          if acks <> [] then begin
            Sim.Stats.add (hub_counter hub "chan_standalone_acks") (List.length acks);
            transmit hub ~dst (Ack { acks })
          end)
    end
  end

(* --- sending end -------------------------------------------------- *)

let wake_waiters o =
  (* Wake everyone; each re-checks the window and re-parks if it is
     still full, preserving FIFO order through the queue. *)
  while not (Queue.is_empty o.o_waiters) do
    ignore (S.wake (Queue.pop o.o_waiters) ())
  done

let mark_broken o reason =
  if o.o_broken = None then begin
    Sim.Stats.incr (hub_counter o.o_hub "chan_out_breaks");
    hub_trace o.o_hub "chan: out %s->%d broken: %s" o.o_key.label o.o_dst reason;
    o.o_broken <- Some reason;
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_buf_bytes <- 0;
    o.o_unacked <- [];
    o.o_inflight_bytes <- 0;
    o.o_flush_gen <- o.o_flush_gen + 1;
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    wake_waiters o;
    let hooks = o.o_on_break in
    o.o_on_break <- [];
    List.iter (fun f -> f reason) hooks
  end

let break_out o ~reason =
  if o.o_broken = None then begin
    (* Tell the receiver to discard its end before we forget the
       channel; the Reset itself may be lost, in which case the
       receiver end lingers harmlessly until a retransmit hits the
       tombstone on our side. *)
    transmit o.o_hub ~dst:o.o_dst (Reset { key = o.o_key; reason });
    mark_broken o reason
  end

(* The timer is anchored to the oldest unacked item: further sends do
   not push it back, so a dead peer is detected after at most
   [retransmit_timeout * (max_retries + 1)] even under a continuous
   call stream. *)
let rec arm_retransmit o =
  if o.o_broken = None && o.o_unacked <> [] && not o.o_retx_armed then begin
    o.o_retx_armed <- true;
    o.o_retx_gen <- o.o_retx_gen + 1;
    let gen = o.o_retx_gen in
    S.after o.o_hub.h_sched o.o_cfg.retransmit_timeout (fun () ->
        if gen = o.o_retx_gen then begin
          o.o_retx_armed <- false;
          if o.o_broken = None && o.o_unacked <> [] then begin
            o.o_retries <- o.o_retries + 1;
            if o.o_retries > o.o_cfg.max_retries then
              mark_broken o "retransmit limit exceeded: peer unreachable"
            else begin
              Sim.Stats.incr (hub_counter o.o_hub "chan_retransmits");
              let first_seq = match o.o_unacked with (s, _, _) :: _ -> s | [] -> assert false in
              let items = List.map (fun (_, _, item) -> item) o.o_unacked in
              let acks = take_piggyback o.o_hub ~dst:o.o_dst in
              transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; acks; items });
              span_items o.o_hub Sim.Span.Retransmit
                ~note:(Printf.sprintf "try %d -> n%d" o.o_retries o.o_dst)
                items;
              arm_retransmit o
            end
          end
        end)
  end

let flush_out o =
  if o.o_broken = None && o.o_buf <> [] then begin
    let entries = List.rev o.o_buf in
    let first_seq = o.o_next_seq - o.o_buf_len in
    let batch_bytes = o.o_buf_bytes in
    o.o_buf <- [];
    o.o_buf_len <- 0;
    o.o_buf_bytes <- 0;
    o.o_flush_gen <- o.o_flush_gen + 1;
    o.o_unacked <-
      o.o_unacked @ List.mapi (fun i (item, size) -> (first_seq + i, size, item)) entries;
    o.o_inflight_bytes <- o.o_inflight_bytes + batch_bytes;
    let items = List.map fst entries in
    let acks = take_piggyback o.o_hub ~dst:o.o_dst in
    transmit o.o_hub ~dst:o.o_dst (Data { key = o.o_key; first_seq; acks; items });
    span_items o.o_hub Sim.Span.Transmit ~note:(Printf.sprintf "-> n%d" o.o_dst) items;
    arm_retransmit o
  end

(* Window has room for [bytes] more. When nothing at all is pending the
   answer is always yes, so a single item larger than the whole window
   still goes through (alone) instead of deadlocking. *)
let window_admits o bytes =
  inflight_bytes o = 0 || inflight_bytes o + bytes <= o.o_cfg.max_inflight_bytes

let await_window o ~bytes =
  match o.o_broken with
  | Some reason -> Error reason
  | None ->
      if window_admits o bytes || S.current o.o_hub.h_sched = None then Ok ()
      else begin
        let rec wait () =
          S.suspend o.o_hub.h_sched (fun w -> Queue.add w o.o_waiters);
          match o.o_broken with
          | Some reason -> Error reason
          | None -> if window_admits o bytes then Ok () else wait ()
        in
        wait ()
      end

let send o item =
  match o.o_broken with
  | Some reason -> Error reason
  | None ->
      let size = B.size item in
      o.o_buf <- (item, size) :: o.o_buf;
      o.o_buf_len <- o.o_buf_len + 1;
      o.o_buf_bytes <- o.o_buf_bytes + size;
      o.o_next_seq <- o.o_next_seq + 1;
      if
        o.o_buf_len >= o.o_cfg.max_batch
        || o.o_buf_bytes >= o.o_cfg.max_batch_bytes
        || (o.o_cfg.flush_on_idle && o.o_unacked = [])
      then flush_out o
      else if o.o_buf_len = 1 && o.o_cfg.flush_interval < infinity then begin
        if o.o_cfg.flush_interval <= 0.0 then flush_out o
        else begin
          o.o_flush_gen <- o.o_flush_gen + 1;
          let gen = o.o_flush_gen in
          S.after o.o_hub.h_sched o.o_cfg.flush_interval (fun () ->
              if gen = o.o_flush_gen then flush_out o)
        end
      end;
      Ok ()

let handle_ack o ~upto =
  if o.o_broken = None && upto > o.o_acked_upto then begin
    o.o_acked_upto <- upto;
    let freed = ref 0 in
    let freed_items = ref [] in
    o.o_unacked <-
      List.filter
        (fun (s, size, item) ->
          if s <= upto then begin
            freed := !freed + size;
            freed_items := item :: !freed_items;
            false
          end
          else true)
        o.o_unacked;
    span_items o.o_hub Sim.Span.Ack (List.rev !freed_items);
    o.o_inflight_bytes <- o.o_inflight_bytes - !freed;
    o.o_retries <- 0;
    (* restart the timer for the (new) oldest unacked item *)
    o.o_retx_gen <- o.o_retx_gen + 1;
    o.o_retx_armed <- false;
    if o.o_unacked <> [] then arm_retransmit o;
    if !freed > 0 then wake_waiters o;
    (* Nagle release: the wire went idle — ship what accumulated while
       the previous batch was in flight. *)
    if o.o_cfg.flush_on_idle && o.o_unacked = [] && o.o_buf <> [] then flush_out o
  end

let break_in i ~reason =
  let hub = i.i_hub in
  if Hashtbl.mem hub.h_ins i.i_key then begin
    Hashtbl.remove hub.h_ins i.i_key;
    Hashtbl.replace hub.h_dead i.i_key reason;
    transmit hub ~dst:i.i_key.src (Reset { key = i.i_key; reason })
  end;
  mark_in_broken i reason

let handle_data hub ~key ~first_seq ~items =
  match Hashtbl.find_opt hub.h_dead key with
  | Some reason ->
      (* The channel was broken here earlier; keep telling the sender. *)
      transmit hub ~dst:key.src (Reset { key; reason })
  | None ->
      let chan =
        match Hashtbl.find_opt hub.h_ins key with
        | Some i -> Some i
        | None -> (
            match Hashtbl.find_opt hub.h_acceptors key.label with
            | None ->
                transmit hub ~dst:key.src (Reset { key; reason = "no such port group" });
                None
            | Some acceptor ->
                let i =
                  {
                    i_hub = hub;
                    i_key = key;
                    i_expected = 0;
                    i_deliver = None;
                    i_broken = None;
                    i_on_break = [];
                  }
                in
                Hashtbl.replace hub.h_ins key i;
                acceptor i;
                Some i)
      in
      match chan with
      | None -> ()
      | Some i ->
          let count = List.length items in
          if first_seq > i.i_expected then
            (* Gap: go-back-n — drop and re-ack what we have. *)
            post_ack hub ~dst:key.src ~key ~upto:(i.i_expected - 1)
          else begin
            let skip = i.i_expected - first_seq in
            if skip > 0 then
              Sim.Stats.add (hub_counter hub "chan_dup_items_suppressed") (min skip count);
            let fresh = if skip >= count then [] else List.filteri (fun idx _ -> idx >= skip) items in
            if fresh <> [] then begin
              i.i_expected <- i.i_expected + List.length fresh;
              span_items hub Sim.Span.Deliver ~note:(Printf.sprintf "from n%d" key.src) fresh;
              match i.i_deliver with
              | Some f -> f fresh
              | None -> ()
            end;
            post_ack hub ~dst:key.src ~key ~upto:(i.i_expected - 1)
          end

let handle_reset hub ~key ~reason =
  (match Hashtbl.find_opt hub.h_outs key with
  | Some o ->
      Hashtbl.remove hub.h_outs key;
      mark_broken o reason
  | None -> ());
  match Hashtbl.find_opt hub.h_ins key with
  | Some i ->
      Hashtbl.remove hub.h_ins key;
      Hashtbl.replace hub.h_dead key reason;
      mark_in_broken i reason
  | None -> ()

let handle_acks hub acks =
  List.iter
    (fun (key, upto) ->
      match Hashtbl.find_opt hub.h_outs key with
      | Some o -> handle_ack o ~upto
      | None -> ())
    acks

let receive hub ~src:_ frame =
  match decode_packet frame with
  | Error _ ->
      (* Corrupt frame: drop it; go-back-n retransmission recovers. *)
      Sim.Stats.incr (hub_counter hub "chan_decode_errors")
  | Ok (Data { key; first_seq; acks; items }) ->
      (* Acks ride in front of the data they share a packet with. *)
      handle_acks hub acks;
      handle_data hub ~key ~first_seq ~items
  | Ok (Ack { acks }) -> handle_acks hub acks
  | Ok (Reset { key; reason }) -> handle_reset hub ~key ~reason

let create_hub ?(ack_delay = 0.0) net node =
  let hub =
    {
      h_net = net;
      h_node = node;
      h_sched = Net.sched net;
      h_ack_delay = ack_delay;
      h_outs = Hashtbl.create 16;
      h_ins = Hashtbl.create 16;
      h_acceptors = Hashtbl.create 16;
      h_dead = Hashtbl.create 16;
      h_pending = Hashtbl.create 4;
      h_next_idx = 0;
    }
  in
  Net.set_receiver net node (fun ~src frame -> receive hub ~src frame);
  hub

let on_connect hub ~label acceptor = Hashtbl.replace hub.h_acceptors label acceptor

let remove_acceptor hub ~label = Hashtbl.remove hub.h_acceptors label

let connect hub ~dst ~label ~meta cfg =
  if cfg.max_batch <= 0 then invalid_arg "Chanhub.connect: max_batch must be positive";
  if cfg.max_batch_bytes <= 0 then
    invalid_arg "Chanhub.connect: max_batch_bytes must be positive";
  if cfg.max_inflight_bytes <= 0 then
    invalid_arg "Chanhub.connect: max_inflight_bytes must be positive";
  let key = { src = Net.address hub.h_node; label; idx = hub.h_next_idx; meta } in
  hub.h_next_idx <- hub.h_next_idx + 1;
  let o =
    {
      o_hub = hub;
      o_key = key;
      o_dst = dst;
      o_cfg = cfg;
      o_next_seq = 0;
      o_buf = [];
      o_buf_len = 0;
      o_buf_bytes = 0;
      o_unacked = [];
      o_inflight_bytes = 0;
      o_acked_upto = -1;
      o_retries = 0;
      o_broken = None;
      o_on_break = [];
      o_flush_gen = 0;
      o_retx_gen = 0;
      o_retx_armed = false;
      o_waiters = Queue.create ();
    }
  in
  Hashtbl.replace hub.h_outs key o;
  o

let hub_net_config h = Net.config h.h_net
