(** The receiving end of call-streams: a port group.

    A target accepts every stream addressed to its group name and, per
    stream, executes arriving calls strictly in call order — "the Argus
    system will delay its execution until all earlier calls on its
    stream have completed" (§2.1). Calls on {e different} streams run
    concurrently (each connection has its own driver fiber).

    The per-message kernel overhead of the cost model is charged here
    as processing time: the driver sleeps [kernel_overhead] once per
    arriving network message before executing its calls, which is what
    makes batching amortise overhead in the experiments.

    Replies are sent back on a dedicated reply channel per stream,
    buffered according to [reply_config]. Normal replies to [Send]
    calls carry no result value.

    With [~dedup:true] the group additionally keeps a bounded cache of
    completed call outcomes keyed by the sender's {e stable call-id}
    (see {!Wire.call_item} and [docs/FAULTS.md]): a call the group has
    already executed — typically resubmitted by a supervisor after a
    stream break — is answered from the cache instead of being run
    again, giving exactly-once {e execution} across stream
    incarnations.

    {b Third-party handoff} (docs/HANDOFF.md): a group with pipelining
    enabled also serves two reserved ports. ["~handoff"] (a [Send])
    asks it to push the outcome of one of its recorded calls to a
    foreign owner node; ["~redeem"] (a [Call]) replies with that
    outcome directly — the claim-by-reference fallback. Both run in the
    stream's normal work order and {e ahead} of the dedup cache, so a
    resubmitted notice re-forwards to the same owner. On the owner
    side, an arriving call whose [Pref] arguments carry handoff
    annotations registers those foreign outcomes with the group's
    registry (bypassing the single-guardian scope check) and parks
    until the pushes arrive. *)

type t

type conn
(** One incoming stream (one sender agent). *)

type dispatch =
  conn ->
  seq:int ->
  port:string ->
  kind:Wire.kind ->
  args:Xdr.value ->
  reply:(Wire.routcome -> unit) ->
  unit
(** Invoked in scheduler context for each call, once the previous call
    on the same stream has replied. The implementation must not block;
    it should start the real work (typically spawning a fiber) and
    arrange for [reply] to be called exactly once. The next call on the
    stream is dispatched only after [reply] fires. *)

val create : Chanhub.hub -> gid:string -> ?config:Group_config.t -> dispatch -> t
(** Register the port group [gid] on this hub, configured by [config]
    (default {!Group_config.default} — the paper's semantics). The
    config's fields:

    [ordered = true] is the paper's semantics: the next call on a
    stream starts only when the previous one has replied. [false] is
    the "explicit override" hinted at in §2.1: calls on one stream
    execute concurrently, while replies are still released in call
    order so the stream's reply-ordering guarantee (and
    promise-readiness order) is preserved. Used by the
    receiver-ordering ablation.

    [shards] (default 1) partitions each stream's execution across that
    many concurrent lanes, keyed by [shard_key] (default
    {!default_shard_key}). The paper's in-order guarantee is relaxed to
    {e per-key} order: two calls whose keys map to the same shard still
    execute strictly in call order, while calls on different shards
    overlap (docs/SHARDING.md). Replies are nevertheless released in
    call order, so the stream's reply-order guarantee (and
    promise-readiness order) is unchanged. [shard_key] must be a pure
    function of its arguments: a resubmitted call re-hashes to the same
    shard, which is what keeps dedup joins and per-key order stable
    across stream incarnations. Sharded dispatch is counted in
    {!Sim.Stats} as [shard_dispatches], with high-water marks
    [shard_queue_hwm] (lane queue depth) and [shard_imbalance] (spread
    between the most- and least-loaded lane's cumulative dispatches).

    [dedup] (default [false]) enables the cross-incarnation outcome
    cache; [dedup_cache] (default 1024) bounds the number of retained
    outcomes, evicted oldest-first. Choose it larger than the maximum
    number of calls a supervisor can have in flight across a restart.
    Dedup hits are counted in {!Sim.Stats} as [target_dedup_replays]
    (outcome replayed from cache) and [target_dedup_joins] (duplicate
    arrived while the first execution was still running).

    [pipeline] enables promise pipelining (docs/PIPELINE.md): every
    [Call] outcome is recorded in the given registry keyed by the
    sender's (stable stream id, stable call-id), and arguments
    containing {!Xdr.Pref} references are resolved against it before
    dispatch — parking the call until every referenced outcome has
    landed, propagating the first abnormal producer outcome without
    executing the handler. Pass the {e same} registry to every group of
    one guardian so calls can reference results produced through other
    groups on the same node. Events are counted in {!Sim.Stats} as
    [parked_calls], [ref_substitutions] and [ref_failures].

    While the scheduler's {!Sim.Span} store is enabled, the target also
    records the receiver half of each traced call's causal timeline —
    dispatch (with its lane), park/substitute, execution begin/end,
    dedup join/replay, and the reply (docs/TRACING.md). *)

val gid : t -> string

val dedup : t -> bool
(** Whether this group deduplicates on stable call-ids. The guardian
    layer must not destroy orphaned handler executions when it does —
    the recorded outcome is the dedup protocol's whole point. *)

val shards : t -> int
(** Number of execution lanes per connection (1 = unsharded). *)

val default_shard_key : port:string -> Xdr.value -> int
(** The default partition function: [Hashtbl.hash] of the first
    argument ([Pair (a, _)] shards on [a]; any other shape on the whole
    value). Deterministic across incarnations. *)

val conn_src : conn -> Net.address
(** Node address of the sending agent. *)

val conn_count : t -> int
(** Live incoming streams. *)

val break_conn : conn -> reason:string -> unit
(** Receiver-initiated stream break (§2): pending replies are flushed
    first (so a reply already produced — e.g. the [failure] reply for a
    call whose arguments would not decode — still reaches the sender),
    then the sender is told the stream is broken and further calls are
    discarded. This is the paper's {e synchronous} break: calls already
    replied to are unaffected. *)

val flush_replies : conn -> unit

val on_conn_close : conn -> (unit -> unit) -> unit
(** Run a hook when this connection goes away for any reason (break
    from either side, group close). The guardian layer uses this to
    destroy orphaned handler executions. Fires immediately if the
    connection is already gone. *)

val close : t -> unit
(** Unregister the group and break every live connection. *)
