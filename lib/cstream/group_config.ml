type shard_key = port:string -> Xdr.value -> int

type t = {
  reply_config : Chanhub.config;
  ordered : bool;
  dedup : bool;
  dedup_cache : int;
  shards : int;
  shard_key : shard_key option;
  pipeline : Wire.routcome Pipeline.Registry.t option;
  shed_hwm : int option;
  offload : Sched.Pool.t option;
}

let default =
  {
    reply_config = Chanhub.default_config;
    ordered = true;
    dedup = false;
    dedup_cache = 1024;
    shards = 1;
    shard_key = None;
    pipeline = None;
    shed_hwm = None;
    offload = None;
  }

let with_reply_config reply_config t = { t with reply_config }

let with_ordered ordered t = { t with ordered }

let with_dedup ?(cache = 1024) t = { t with dedup = true; dedup_cache = cache }

let without_dedup t = { t with dedup = false }

let with_shards ?key shards t =
  if shards <= 0 then invalid_arg "Group_config.with_shards: shards must be positive";
  { t with shards; shard_key = (match key with Some _ -> key | None -> t.shard_key) }

let with_pipeline reg t = { t with pipeline = Some reg }

let with_shed hwm t =
  if hwm <= 0 then invalid_arg "Group_config.with_shed: high-water mark must be positive";
  { t with shed_hwm = Some hwm }

let with_offload pool t = { t with offload = Some pool }

let without_offload t = { t with offload = None }

(* Whole-config equality, used by {!Guardian.get_group} to detect a
   conflicting re-registration. The functional/abstract fields
   ([shard_key], [pipeline]) compare physically: re-passing the same
   value is compatible, a different one conflicts — functions have no
   structural equality to offer. *)
let equal a b =
  a.reply_config = b.reply_config
  && a.ordered = b.ordered
  && a.dedup = b.dedup
  && a.dedup_cache = b.dedup_cache
  && a.shards = b.shards
  && a.shed_hwm = b.shed_hwm
  && (match (a.shard_key, b.shard_key) with
     | None, None -> true
     | Some f, Some g -> f == g
     | None, Some _ | Some _, None -> false)
  && (match (a.pipeline, b.pipeline) with
     | None, None -> true
     | Some r, Some s -> r == s
     | None, Some _ | Some _, None -> false)
  &&
  match (a.offload, b.offload) with
  | None, None -> true
  | Some p, Some q -> p == q
  | None, Some _ | Some _, None -> false

(* The field names on which two configs disagree — the payload of a
   conflict error message. *)
let diff a b =
  List.filter_map
    (fun (name, differs) -> if differs then Some name else None)
    [
      ("reply_config", a.reply_config <> b.reply_config);
      ("ordered", a.ordered <> b.ordered);
      ("dedup", a.dedup <> b.dedup);
      ("dedup_cache", a.dedup_cache <> b.dedup_cache);
      ("shards", a.shards <> b.shards);
      ("shed_hwm", a.shed_hwm <> b.shed_hwm);
      ( "shard_key",
        match (a.shard_key, b.shard_key) with
        | None, None -> false
        | Some f, Some g -> not (f == g)
        | None, Some _ | Some _, None -> true );
      ( "pipeline",
        match (a.pipeline, b.pipeline) with
        | None, None -> false
        | Some r, Some s -> not (r == s)
        | None, Some _ | Some _, None -> true );
      ( "offload",
        match (a.offload, b.offload) with
        | None, None -> false
        | Some p, Some q -> not (p == q)
        | None, Some _ | Some _, None -> true );
    ]

let pp ppf t =
  Format.fprintf ppf
    "{ordered=%b; dedup=%b; dedup_cache=%d; shards=%d; shard_key=%s; pipeline=%s; \
     shed_hwm=%s; offload=%s}"
    t.ordered t.dedup t.dedup_cache t.shards
    (match t.shard_key with Some _ -> "<fn>" | None -> "default")
    (match t.pipeline with Some _ -> "<registry>" | None -> "none")
    (match t.shed_hwm with Some h -> string_of_int h | None -> "off")
    (match t.offload with
    | Some p -> Printf.sprintf "<pool:%d>" (Sched.Pool.size p)
    | None -> "off")
