(** The sending end of a call-stream.

    A stream connects one agent (a sending activity) to one port group
    (§2): calls made on it are delivered to the receiver exactly once,
    in order, and their replies come back in call order. The stream
    buffers calls per its channel {!Chanhub.config} ("sent when
    convenient"); {!flush} forces transmission; {!synch} additionally
    waits for all earlier calls to complete and reports whether any of
    them terminated exceptionally.

    Breaking and reincarnation follow §2: when the system gives up on
    delivery (retransmit exhaustion, receiver crash, receiver-initiated
    break), every outstanding call completes with
    [W_unavailable]/[W_failure] and further calls fail immediately
    until {!restart}.

    {b Supervision extensions} (see [docs/FAULTS.md]): each call also
    carries a {e stable call-id} that is monotonic over the whole life
    of the stream end and never resets. A supervisor can opt into
    {!set_preserve_on_break}, in which case a break leaves outstanding
    calls pending, and {!restart_resubmit} replays them — with their
    original call-ids — on the next incarnation, letting a deduplicating
    receiver execute each call exactly once across incarnations.
    Stream-level events are counted in the scheduler's {!Sim.Stats}
    ([stream_breaks], [stream_restarts], [stream_resubmitted_calls])
    and recorded in its {!Sim.Trace}. *)

type t

val create :
  Chanhub.hub ->
  agent:string ->
  dst:Net.address ->
  gid:string ->
  ?config:Chanhub.config ->
  unit ->
  t
(** Open a stream from this node's [agent] to the port group named
    [gid] on node [dst]. The [agent] name must be unique within the
    hub per (dst, gid) — it names the reply rendezvous. *)

val agent : t -> string

val gid : t -> string

val dst : t -> Net.address
(** The node this stream's port group lives on. *)

val stable_id : t -> string
(** The stream's incarnation-independent identity as the receiver sees
    it ({!Wire.stable_stream_id}) — the stream half of a transmissible
    {!Xdr.promise_ref}. Constant across {!restart}s. *)

val sched : t -> Sched.Scheduler.t

val hub : t -> Chanhub.hub
(** The hub this stream's channels run over — the language layer uses
    it to reach the handoff push/expect machinery (docs/HANDOFF.md). *)

val broken : t -> string option
(** Why the stream is broken, or [None] while it is usable. *)

val incarnation : t -> int
(** Restarts so far; 0 for a fresh stream. *)

val call :
  t -> port:string -> kind:Wire.kind -> args:Xdr.value ->
  on_reply:(Wire.routcome -> unit) -> (unit, string) result
(** Issue a call. [Error reason] means the stream is already broken —
    the paper's "call fails and signals immediately, and no promise is
    created". Otherwise [on_reply] fires exactly once, later, in
    scheduler context; replies fire in call order. *)

val call_cid :
  t -> port:string -> kind:Wire.kind -> args:Xdr.value ->
  on_reply:(Wire.routcome -> unit) -> (int, string) result
(** {!call}, returning the stable call-id assigned to the call. Paired
    with {!stable_id} it names this call's future outcome in a
    transmissible {!Xdr.promise_ref} (promise pipelining,
    docs/PIPELINE.md). *)

val call_traced :
  ?handoff:Wire.handoff list ->
  ?elide:bool ->
  t -> port:string -> kind:Wire.kind -> args:Xdr.value ->
  on_reply:(Wire.routcome -> unit) -> (int * int, string) result
(** {!call_cid}, additionally returning the call's causal trace id
    ([cid, trace]). The trace id is allocated here at issue
    ({!Sim.Span.next_trace}), kept across {!restart_resubmit}, and
    carried in the wire item while the scheduler's span store is
    enabled (docs/TRACING.md) — the language layer stamps it on the
    promise so {!Core.Promise} can record the claim edge.

    [handoff] annotates foreign [Pref]s in [args] and [elide] asks the
    receiver to strip a normal result from the reply (third-party
    handoff, docs/HANDOFF.md); both ride every resubmission of the
    call, so a replay re-forwards to the same owner. *)

val flush : t -> unit
(** Transmit buffered call requests now (§2's [flush]). *)

val window_bytes : t -> int
(** Live sender window of the current incarnation's call channel
    ({!Chanhub.window_bytes}): the AIMD-controlled bound when the
    stream config sets [adaptive_window], else [max_inflight_bytes]. *)

val rtt_ewma : t -> float
(** Smoothed ack RTT of the current incarnation's call channel
    ({!Chanhub.rtt_ewma}); [0.] until the first clean sample. *)

val inflight_bytes : t -> int
(** Unacked bytes charged against the window right now
    ({!Chanhub.inflight_bytes}). Must return to [0] at quiescence —
    retransmits (including ones racing a receiver shed) re-send items
    without re-charging them, so a nonzero steady-state reading is a
    window-accounting bug. *)

val synch : t -> (unit, [ `Exception_reply | `Broken of string ]) result
(** Flush, then park the calling fiber until every call made before
    this point has completed (§2's [synch]). [Ok] means they all
    terminated normally; [`Exception_reply] that at least one
    terminated with an exception since the last synch (matching the
    paper, it does not say which); [`Broken] that the stream broke
    while (or before) waiting. Must run in fiber context. *)

val outstanding : t -> int
(** Calls issued whose replies have not yet arrived. *)

val restart : t -> unit
(** Break (if not already broken) and reincarnate: outstanding calls
    complete with [W_unavailable] (exactly once each, even if a
    supervisor had preserved them); subsequent calls use a fresh
    incarnation of the stream. *)

val on_break : t -> (string -> unit) -> unit
(** Register a callback fired when the current incarnation breaks (at
    most once per incarnation; fires immediately if already broken). *)

(** {1 Supervision support} *)

val set_preserve_on_break : t -> bool -> unit
(** With [true] (default [false]), a break does {e not} resolve
    outstanding calls with [unavailable]; they stay pending for
    {!restart_resubmit}. Whoever sets this owns their fate and must
    eventually either resubmit or {!fail_pending} — otherwise claimants
    wait forever (or until their {!Promise.claim_timeout}). *)

val restart_resubmit : t -> int
(** Reincarnate a broken stream {e keeping} its outstanding calls:
    they are re-keyed into the new incarnation's sequence space and
    re-sent with their original stable call-ids, so a receiver created
    with [~dedup:true] executes each at most once across incarnations.
    Returns the number of calls resubmitted. Raises [Invalid_argument]
    if the stream is not broken. *)

val fail_pending : t -> reason:string -> unit
(** Resolve every still-outstanding call with [W_unavailable reason],
    in call order, each exactly once — used by supervisors giving up
    after exhausting their retry budget. *)

val on_progress : t -> (unit -> unit) -> unit
(** [f] runs each time a reply for an outstanding call arrives — proof
    the current incarnation is live. Supervisors use it to close their
    circuit breaker. At most one hook (last registration wins). *)
