module S = Sched.Scheduler

type pending = {
  p_cid : int;
  p_trace : int;  (* causal trace id; survives resubmission with the cid *)
  p_port : string;
  p_kind : Wire.kind;
  p_args : Xdr.value;
  p_handoff : Wire.handoff list;  (* annotations replayed verbatim on resubmit *)
  p_elide : bool;
  p_on_reply : Wire.routcome -> unit;
}

type t = {
  hub : Chanhub.hub;
  sched : S.t;
  s_agent : string;
  s_dst : Net.address;
  s_gid : string;
  s_cfg : Chanhub.config;
  mutable chan : Chanhub.out_chan;
  mutable incarnation : int;
  mutable s_broken : string option;
  pending : (int, pending) Hashtbl.t;
  mutable next_seq : int;
  mutable next_cid : int;  (* stable call-ids: never reset, even across restarts *)
  mutable completed_upto : int;
  mutable exn_since_synch : bool;
  mutable synch_waiters : (int * unit S.waker) list;
  mutable break_hooks : (string -> unit) list;
  mutable preserve_on_break : bool;
  mutable progress_hook : (unit -> unit) option;
}

let agent t = t.s_agent

let sched t = t.sched

let gid t = t.s_gid

let dst t = t.s_dst

let broken t = t.s_broken

let incarnation t = t.incarnation

let outstanding t = Hashtbl.length t.pending

let set_preserve_on_break t b = t.preserve_on_break <- b

let on_progress t f = t.progress_hook <- Some f

let counter t name = Sim.Stats.counter (S.stats t.sched) name

let trace t fmt = Sim.Trace.recordf (S.trace t.sched) ~time:(S.now t.sched) fmt

let spans t = S.spans t.sched

let node_addr t = Chanhub.hub_addr t.hub

let hub t = t.hub

let reply_label_for ~agent ~gid ~dst ~incarnation =
  Printf.sprintf "~r/%s/%s/%d/%d" agent gid dst incarnation

let reply_label t =
  reply_label_for ~agent:t.s_agent ~gid:t.s_gid ~dst:t.s_dst ~incarnation:t.incarnation

(* As the receiver will compute it from our reply-channel label — the
   address half is this hub's node, the label half drops the
   incarnation suffix, so the id survives restarts. *)
let stable_id t =
  Wire.stable_stream_id
    ~src:(Chanhub.hub_addr t.hub)
    ~reply_label:(reply_label t)

let span t ~kind ~trace ~call ?note () =
  let sp = spans t in
  if Sim.Span.sampled sp trace then
    Sim.Span.record sp ~time:(S.now t.sched) ~kind ~trace ~node:(node_addr t)
      ~stream:(stable_id t) ~call ?note ()

let wake_satisfied_synchers t =
  let ready, waiting =
    List.partition (fun (target, _) -> t.completed_upto >= target) t.synch_waiters
  in
  t.synch_waiters <- waiting;
  List.iter (fun (_, w) -> ignore (S.wake w () : bool)) ready

let complete t seq outcome =
  match Hashtbl.find_opt t.pending seq with
  | None -> () (* stale reply after a break resolved everything *)
  | Some p ->
      Hashtbl.remove t.pending seq;
      if seq > t.completed_upto then t.completed_upto <- seq;
      (match outcome with
      | Wire.W_normal _ -> ()
      | Wire.W_signal _ | Wire.W_unavailable _ | Wire.W_failure _ ->
          t.exn_since_synch <- true);
      p.p_on_reply outcome;
      wake_satisfied_synchers t

(* Resolve every still-outstanding call with [unavailable] (in call
   order, each exactly once) — the terminal fate of in-flight calls
   when nobody will retry them. *)
let fail_pending t ~reason =
  if Hashtbl.length t.pending > 0 then begin
    let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.pending [] in
    let seqs = List.sort compare seqs in
    List.iter (fun seq -> complete t seq (Wire.W_unavailable reason)) seqs
  end;
  t.completed_upto <- t.next_seq - 1;
  wake_satisfied_synchers t

let handle_break t reason =
  if t.s_broken = None then begin
    t.s_broken <- Some reason;
    Sim.Stats.incr (counter t "stream_breaks");
    trace t "stream %s->%s/%d inc=%d break: %s" t.s_agent t.s_gid t.s_dst t.incarnation reason;
    if Sim.Span.enabled (spans t) then
      Hashtbl.iter
        (fun _ p -> span t ~kind:Sim.Span.Break ~trace:p.p_trace ~call:p.p_cid ~note:reason ())
        t.pending;
    (* Outstanding calls will never get replies on this incarnation.
       Default (§2): complete them with [unavailable] — "we rely on the
       language to cause the calls to terminate with an exception".
       Under supervision ([preserve_on_break]) they are kept pending so
       a reincarnation can re-submit them with their stable call-ids;
       the supervisor calls {!fail_pending} if it gives up. *)
    if not t.preserve_on_break then fail_pending t ~reason:("stream broken: " ^ reason)
    else wake_satisfied_synchers t;
    let hooks = t.break_hooks in
    t.break_hooks <- [];
    List.iter (fun f -> f reason) hooks
  end

(* Replies arrive as lazy views: the cheap envelope scan yields the
   seq, and the outcome bytes are only decoded when that seq is still
   pending. Stale replies (after a break resolved everything, or a
   resubmit raced a late original) cost an integer read, not a full
   outcome materialisation. *)
let deliver_replies t items =
  List.iter
    (fun vw ->
      match Wire.parse_reply_view vw with
      | Ok (seq, ovw) ->
          if Hashtbl.mem t.pending seq then (
            match Wire.outcome_of_view ovw with
            | Ok outcome ->
                complete t seq outcome;
                (* A reply made it back: the stream demonstrably works.
                   Supervisors use this to close their circuit breaker. *)
                (match t.progress_hook with Some f -> f () | None -> ())
            | Error _ -> handle_break t "malformed reply from receiver")
      | Error _ ->
          (* A malformed reply means our peer is garbage; break. *)
          handle_break t "malformed reply from receiver")
    items

(* Wire an incarnation's channel and reply acceptor to [t]. The channel
   itself is created by the caller (it does not need [t]). *)
let attach t chan =
  let label = reply_label t in
  Chanhub.on_connect t.hub ~label (fun in_chan ->
      Chanhub.set_deliver_views in_chan (fun items -> deliver_replies t items));
  Chanhub.on_out_break chan (fun reason -> handle_break t reason);
  t.chan <- chan

let create hub ~agent ~dst ~gid ?(config = Chanhub.default_config) () =
  let label = reply_label_for ~agent ~gid ~dst ~incarnation:0 in
  let chan = Chanhub.connect hub ~dst ~label:gid ~meta:label config in
  let t =
    {
      hub;
      sched = Chanhub.hub_sched hub;
      s_agent = agent;
      s_dst = dst;
      s_gid = gid;
      s_cfg = config;
      chan;
      incarnation = 0;
      s_broken = None;
      pending = Hashtbl.create 32;
      next_seq = 0;
      next_cid = 0;
      completed_upto = -1;
      exn_since_synch = false;
      synch_waiters = [];
      break_hooks = [];
      preserve_on_break = false;
      progress_hook = None;
    }
  in
  attach t chan;
  t

let call_traced ?(handoff = []) ?(elide = false) t ~port ~kind ~args ~on_reply =
  match t.s_broken with
  | Some reason -> Error reason
  | None -> (
      (* The trace id is allocated at issue and kept for the call's
         whole life, across resubmissions; it rides the wire only while
         tracing is on AND the id passes the 1-in-N sampling filter
         (docs/TRACING.md), so the off-path encoding is unchanged and a
         sampled-out call records nothing anywhere. *)
      let tid = Sim.Span.next_trace (spans t) in
      let wire_trace = if Sim.Span.sampled (spans t) tid then Some tid else None in
      (* Reserve window space BEFORE claiming a sequence number: a fiber
         that blocked after taking its seq would let later calls enter
         the channel first and violate in-call-order delivery. The size
         probe uses the current seq; if another fiber wins the race
         while we are parked, the item is rebuilt below (the varint seq
         may change its length by a byte or two). *)
      let probe_seq = t.next_seq and probe_cid = t.next_cid in
      let probe =
        Wire.call_item ~handoff ~elide ~seq:probe_seq ~cid:probe_cid ~trace:wire_trace ~port
          ~kind ~args ()
      in
      match Chanhub.await_window t.chan ~bytes:(Xdr.Bin.size probe) with
      | Error reason -> Error reason
      | Ok () ->
      match t.s_broken with
      | Some reason -> Error reason
      | None ->
      let seq = t.next_seq and cid = t.next_cid in
      t.next_seq <- seq + 1;
      t.next_cid <- cid + 1;
      Hashtbl.replace t.pending seq
        {
          p_cid = cid;
          p_trace = tid;
          p_port = port;
          p_kind = kind;
          p_args = args;
          p_handoff = handoff;
          p_elide = elide;
          p_on_reply = on_reply;
        };
      let item =
        if seq = probe_seq then probe
        else Wire.call_item ~handoff ~elide ~seq ~cid ~trace:wire_trace ~port ~kind ~args ()
      in
      span t ~kind:Sim.Span.Issue ~trace:tid ~call:cid ~note:port ();
      (match Chanhub.send t.chan item with
      | Ok () ->
          span t ~kind:Sim.Span.Enqueue ~trace:tid ~call:cid ();
          Ok (cid, tid)
      | Error reason ->
          (* Unreachable in practice: a channel break reports to
             [handle_break] synchronously, so [s_broken] would be set.
             Kept total in case break notification ever becomes lazy. *)
          Hashtbl.remove t.pending seq;
          t.next_seq <- seq;
          Error reason))

let call_cid t ~port ~kind ~args ~on_reply =
  Result.map fst (call_traced t ~port ~kind ~args ~on_reply)

let call t ~port ~kind ~args ~on_reply =
  Result.map (fun (_ : int) -> ()) (call_cid t ~port ~kind ~args ~on_reply)

let flush t = if t.s_broken = None then Chanhub.flush_out t.chan

let window_bytes t = Chanhub.window_bytes t.chan

let rtt_ewma t = Chanhub.rtt_ewma t.chan

let inflight_bytes t = Chanhub.inflight_bytes t.chan

let synch t =
  match t.s_broken with
  | Some reason -> Error (`Broken reason)
  | None ->
      flush t;
      let target = t.next_seq - 1 in
      if t.completed_upto < target then
        S.suspend t.sched (fun w -> t.synch_waiters <- (target, w) :: t.synch_waiters);
      (match t.s_broken with
      | Some reason -> Error (`Broken reason)
      | None ->
          if t.exn_since_synch then begin
            t.exn_since_synch <- false;
            Error `Exception_reply
          end
          else Ok ())

let on_break t f =
  match t.s_broken with Some reason -> f reason | None -> t.break_hooks <- f :: t.break_hooks

(* Shared tail of both restart flavours: bump the incarnation and open
   its fresh channel pair. *)
let reincarnate t =
  Chanhub.remove_acceptor t.hub ~label:(reply_label t);
  t.incarnation <- t.incarnation + 1;
  t.s_broken <- None;
  let label = reply_label t in
  let chan = Chanhub.connect t.hub ~dst:t.s_dst ~label:t.s_gid ~meta:label t.s_cfg in
  attach t chan

let restart t =
  (match t.s_broken with
  | None ->
      (* A restart of a live stream is "a break done by the system at
         the sender at that moment" (§2). *)
      Chanhub.break_out t.chan ~reason:"restarted by sender";
      handle_break t "restarted by sender"
  | Some _ -> ());
  (* Under supervision the break left in-flight calls pending; a manual
     restart abandons them — each resolves [unavailable] exactly once. *)
  (match t.s_broken with
  | Some reason -> fail_pending t ~reason:("stream broken: " ^ reason)
  | None -> ());
  Sim.Stats.incr (counter t "stream_restarts");
  trace t "stream %s->%s/%d restart (fresh incarnation %d)" t.s_agent t.s_gid t.s_dst
    (t.incarnation + 1);
  t.next_seq <- 0;
  t.completed_upto <- -1;
  t.exn_since_synch <- false;
  reincarnate t

let restart_resubmit t =
  match t.s_broken with
  | None -> invalid_arg "Stream_end.restart_resubmit: stream is not broken"
  | Some _ ->
      (* Re-key the surviving in-flight calls into the new incarnation's
         seq space (preserving call order and their stable cids), then
         replay them. Replies already received form a contiguous prefix,
         so the pending seqs are exactly [completed_upto+1 .. next_seq-1]. *)
      let pend = Hashtbl.fold (fun seq p acc -> (seq, p) :: acc) t.pending [] in
      let pend = List.sort (fun (a, _) (b, _) -> compare a b) pend in
      let shift = t.completed_upto + 1 in
      Hashtbl.reset t.pending;
      List.iteri (fun i (_, p) -> Hashtbl.replace t.pending i p) pend;
      t.synch_waiters <- List.map (fun (target, w) -> (target - shift, w)) t.synch_waiters;
      t.next_seq <- List.length pend;
      t.completed_upto <- -1;
      Sim.Stats.incr (counter t "stream_restarts");
      Sim.Stats.add (counter t "stream_resubmitted_calls") (List.length pend);
      trace t "stream %s->%s/%d resubmit restart: incarnation %d, %d calls replayed"
        t.s_agent t.s_gid t.s_dst (t.incarnation + 1) (List.length pend);
      reincarnate t;
      let wire_trace p =
        if Sim.Span.sampled (spans t) p.p_trace then Some p.p_trace else None
      in
      List.iteri
        (fun i (_, p) ->
          span t ~kind:Sim.Span.Resubmit ~trace:p.p_trace ~call:p.p_cid
            ~note:(Printf.sprintf "incarnation %d" t.incarnation) ();
          (* Marked [resubmit] so a load-shedding receiver lets it
             through to the dedup cache rather than rejecting it. *)
          ignore
            (Chanhub.send t.chan
               (Wire.call_item ~resubmit:true ~handoff:p.p_handoff ~elide:p.p_elide ~seq:i
                  ~cid:p.p_cid ~trace:(wire_trace p) ~port:p.p_port ~kind:p.p_kind
                  ~args:p.p_args ())
              : (unit, string) result))
        pend;
      if pend <> [] then Chanhub.flush_out t.chan;
      wake_satisfied_synchers t;
      List.length pend
