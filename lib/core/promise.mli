(** Promises: strongly typed placeholders for values that arrive later.

    This is the paper's central data type (§3). A promise is created in
    the {e blocked} state when an asynchronous call is made; when the
    call completes the promise becomes {e ready} with an immutable
    value describing the call's outcome — its normal result, one of the
    declared exceptions, or one of the two universal exceptions
    [unavailable] (transient: communication impossible right now) and
    [failure] (permanent: the call is an error).

    The promise type carries both the result type ['a] and the type
    ['e] of the declared exceptions, so claiming is completely
    type-safe — no runtime tag checks, which is the paper's key
    advantage over MultiLisp futures (§3.3). ['e] is typically a user
    variant with one constructor per [signals] clause.

    A promise may be claimed any number of times, from any fiber; every
    claim returns the same outcome. Once ready, a promise never changes
    again. *)

type ('a, 'e) outcome =
  | Normal of 'a  (** the call terminated normally *)
  | Signal of 'e  (** the call terminated with a declared exception *)
  | Unavailable of string
      (** the system could not complete the call now (broken stream,
          unreachable node); retrying immediately is pointless *)
  | Failure of string
      (** the call is a permanent error (no such handler, encode or
          decode failure, crashed forked procedure) *)

type ('a, 'e) t
(** A promise for an ['a], which may instead signal an ['e]. *)

val create : Sched.Scheduler.t -> ('a, 'e) t
(** A fresh blocked promise. Use {!resolve} to make it ready. *)

val resolve : ('a, 'e) t -> ('a, 'e) outcome -> unit
(** Make the promise ready. Raises [Invalid_argument] if it is already
    ready — a promise's value never changes. *)

val ready : ('a, 'e) t -> bool
(** The paper's [ready] operation: [true] once the outcome is set. *)

val claim : ('a, 'e) t -> ('a, 'e) outcome
(** The paper's [claim] operation: park the calling fiber until the
    promise is ready, then return its outcome. Must run in fiber
    context when the promise is still blocked. *)

val peek : ('a, 'e) t -> ('a, 'e) outcome option
(** The outcome if ready, without blocking. *)

val claim_timeout : ('a, 'e) t -> timeout:float -> ('a, 'e) outcome
(** {!claim}, but wait at most [timeout] (simulated) seconds: if the
    promise is still blocked then, return
    [Unavailable "claim deadline exceeded: …"] instead of parking
    forever. The promise itself is {e not} resolved — a later claim can
    still get the real outcome if it ever arrives. This is how
    claimants of promises orphaned by a broken-but-supervised stream
    degrade gracefully instead of hanging while the supervisor is mid
    backoff (see [docs/FAULTS.md]). *)

val claim_deadline : ('a, 'e) t -> deadline:float -> ('a, 'e) outcome
(** {!claim_timeout} against an absolute scheduler time. *)

exception Unavailable_exn of string

exception Failure_exn of string

val claim_normal : ('a, 'e) t -> on_signal:('e -> 'a) -> 'a
(** Claim and return the normal result; declared exceptions are handled
    by [on_signal]; [unavailable]/[failure] raise {!Unavailable_exn} /
    {!Failure_exn}. This mirrors the paper's

    {v y: real := pt$claim(x) except when foo: ... end v} *)

(** {1 Combinators (extension)}

    The paper stops at [claim]/[ready]; these conveniences are standard
    in every descendant of promises and are used by the examples. *)

val on_ready : ('a, 'e) t -> (('a, 'e) outcome -> unit) -> unit
(** Run a callback (in scheduler context) when the promise becomes
    ready; immediately if it already is. *)

val map : Sched.Scheduler.t -> ('a -> 'b) -> ('a, 'e) t -> ('b, 'e) t
(** Transform the normal result; other outcomes pass through. *)

val both : Sched.Scheduler.t -> ('a, 'e) t -> ('b, 'e) t -> ('a * 'b, 'e) t
(** Ready when both are; the first non-normal outcome (in argument
    order) wins. *)

val all : Sched.Scheduler.t -> ('a, 'e) t list -> ('a list, 'e) t
(** Ready when all are, preserving order. *)

val resolved : Sched.Scheduler.t -> ('a, 'e) outcome -> ('a, 'e) t
(** An already-ready promise. *)

(** {1 Origin (promise pipelining)}

    A promise born from a stream call remembers which call produced it,
    so {!Remote.pipe} can mint a transmissible {!Xdr.promise_ref}
    naming the not-yet-ready result (docs/PIPELINE.md). *)

type origin = {
  og_stream : string;  (** producing stream's stable id ({!Stream_end.stable_id}) *)
  og_call : int;  (** the producing call's stable call-id *)
  og_dst : int;  (** node the producing call executes on *)
}

val set_origin : ('a, 'e) t -> origin -> unit
(** Stamp the producing call's identity. Raises [Invalid_argument] if
    already stamped — a promise has one producer. *)

val origin : ('a, 'e) t -> origin option
(** [None] for promises not born from a stream call (combinators,
    {!resolved}, forked local procedures) — those cannot be piped. *)

(** {1 Causal tracing (docs/TRACING.md)}

    A promise born from a stream call also remembers the call's trace
    id, so claiming it can record the final edge of the call's causal
    timeline in the scheduler's {!Sim.Span} store. *)

val set_trace : ('a, 'e) t -> int -> unit
(** Stamp the producing call's trace id (done by {!Remote} at issue). *)

val trace : ('a, 'e) t -> int option
(** [None] for promises not born from a stream call. *)

(** {1 Wire face (third-party handoff, docs/HANDOFF.md)}

    A promise born from a stream call also keeps its producer's
    {e wire-level} face: the raw {!Cstream.Wire.routcome} as it arrived
    (the typed outcome above is its decode), the home stream the call
    went out on, and whether the reply was elided. {!Remote.Call} uses
    these to forward a pipelined result to the node that consumes it —
    the claimant-side machinery never needs them. *)

val set_home : ('a, 'e) t -> Cstream.Stream_end.t -> unit
(** Stamp the stream the producing call went out on (done by {!Remote}
    at issue). *)

val home : ('a, 'e) t -> Cstream.Stream_end.t option
(** [None] for promises not born from a stream call. *)

val set_elided : ('a, 'e) t -> unit
(** Mark the producer's reply as elided ({!Remote.Call.defer_result}):
    the typed state will never hold the real value — only the
    producer's registry does, reachable by handoff or redeem. *)

val elided : ('a, 'e) t -> bool

val put_wire : ('a, 'e) t -> Cstream.Wire.routcome -> unit
(** Deposit the producer's wire outcome and fire {!on_wire} hooks in
    registration order. Unlike {!resolve}, duplicates are silently
    dropped (first wins) — a handoff fallback path may race the real
    reply. *)

val on_wire : ('a, 'e) t -> (Cstream.Wire.routcome -> unit) -> unit
(** Run a callback when the wire outcome is known; immediately if it
    already is. *)

val wire : ('a, 'e) t -> Cstream.Wire.routcome option
