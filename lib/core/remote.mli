(** Typed remote calls: the paper's three call forms, returning typed
    promises.

    A handle [('a, 'r, 'e) h] binds a typed signature to an agent's
    stream. The three call forms are:

    - {!stream_call} — [x: pt := stream h(3)]: buffered, asynchronous,
      returns a blocked promise (§3);
    - {!send} — fire-and-forget except for abnormal replies, no promise
      (§2, §3: "sends do not show up explicitly in Argus; a stream call
      to a handler with no normal results is made as a send" — here the
      choice is explicit);
    - {!rpc} — ordinary remote procedure call: transmitted immediately,
      caller waits for the outcome.

    Immediate failures follow the paper's semantics exactly: if
    argument encoding fails or the stream is already broken, the call
    raises ({!Promise.Failure_exn} / {!Promise.Unavailable_exn}) and
    {e no promise is created}. A wounded fiber may not start remote
    calls (§4.2): the call raises {!Sched.Scheduler.Terminated}. *)

type ('a, 'r, 'e) h
(** A handler of signature [('a, 'r, 'e)] reachable over one agent's
    stream. *)

val bind :
  Agent.t -> dst:Net.address -> gid:string -> ('a, 'r, 'e) Sigs.hsig -> ('a, 'r, 'e) h
(** Bind a signature to the agent's stream to group [gid] at [dst]. *)

val bind_ref : Agent.t -> Sigs.port_ref -> ('a, 'r, 'e) Sigs.hsig -> ('a, 'r, 'e) h
(** Bind to a transmitted port reference; the signature's own port name
    is replaced by the reference's. *)

val hsig : ('a, 'r, 'e) h -> ('a, 'r, 'e) Sigs.hsig

val stream : ('a, 'r, 'e) h -> Cstream.Stream_end.t

(** {1 Call forms} *)

val stream_call : ('a, 'r, 'e) h -> 'a -> ('r, 'e) Promise.t
(** Make a stream call; the promise becomes ready when the reply
    arrives (or the stream breaks). Promises for earlier calls on the
    same stream become ready first. *)

val stream_call_ : ('a, 'r, 'e) h -> 'a -> unit
(** Stream call as a statement — "the program need not create a
    promise" (§3): the reply is still decoded and then discarded. *)

val send : ('a, 'r, 'e) h -> 'a -> unit
(** A send: the result value is discarded at the receiver; abnormal
    termination is observable through {!synch}. *)

val rpc : ('a, 'r, 'e) h -> 'a -> ('r, 'e) Promise.outcome
(** Flush and wait for this call's outcome (fiber context only). *)

(** {1 Retry on [unavailable] (docs/OVERLOAD.md)} *)

type retry_policy = {
  retry_attempts : int;  (** total attempts, including the first *)
  retry_base : float;  (** first backoff delay, seconds *)
  retry_factor : float;  (** exponential growth per attempt *)
  retry_max_delay : float;  (** backoff cap, seconds *)
  retry_jitter : float;  (** +- fractional spread on each delay *)
}

val default_retry_policy : retry_policy
(** 4 attempts, 5 ms base, doubling, 500 ms cap, 20% jitter. *)

val stream_call_retry :
  ?policy:retry_policy -> ?deadline:float -> ('a, 'r, 'e) h -> 'a -> ('r, 'e) Promise.t
(** {!stream_call} that retries [unavailable] outcomes — load sheds,
    broken streams — with jittered exponential backoff, up to
    [retry_attempts] total attempts. Each attempt is a {e fresh} call
    (fresh stable call-id): a shed call never executed, so this is
    retry, not crash-driven resubmission, and receiver-side
    at-most-once holds per attempt. A retry whose earliest landing time
    would pass [deadline] (absolute, for use with
    {!Promise.claim_deadline}) is not sent; the promise resolves
    [Unavailable] immediately. The promise carries the first attempt's
    trace id but {e no} origin — piping it would reference a
    possibly-never-executed call. Never raises
    {!Promise.Unavailable_exn}; issue-time refusals feed the same
    retry loop. Counted as [remote_unavailable_retries],
    [remote_retry_successes] and [remote_retry_exhausted]. *)

(** {1 Promise pipelining}

    Calling on a not-yet-ready result (docs/PIPELINE.md): {!pipe}
    converts a promise born from a stream call into an argument that is
    transmitted {e by reference} — an {!Xdr.promise_ref} naming the
    producing call — so a dependent call leaves immediately, without
    waiting (or paying a round trip) for the producer's reply. The
    receiver substitutes the produced value before executing; if the
    producer terminates abnormally, the dependent call completes with
    the same abnormal outcome and never executes.

    Both calls must target the same node, and the destination port
    groups must belong to the same guardian (they share the outcome
    registry). Referencing across nodes raises {!Promise.Failure_exn}
    at the call site. *)

type 'a arg
(** An argument for a handler taking ['a]: either a value, or a
    reference to a promised result of type ['a]. *)

val arg : 'a -> 'a arg
(** An ordinary by-value argument. *)

val pipe : ('a, _) Promise.t -> 'a arg
(** Use a promised result as an argument. Already-ready promises pass
    their value (or abnormal outcome) directly; blocked ones become a
    {!Xdr.promise_ref}. Raises [Invalid_argument] if the promise was
    not born from a stream call ({!Promise.origin} is [None]). *)

val pipe_field : (_, _) Promise.t -> field:string -> 'a arg
(** Use one field of a promised record result as an argument — the
    untyped escape hatch for calls that consume part of a result. The
    caller asserts the field's encoding matches the consuming handler's
    argument type; a wrong assertion surfaces as a decode [failure] at
    the receiver, and a missing field or non-record result as a
    [failure] reply to the dependent call. *)

val stream_call_p : ('a, 'r, 'e) h -> 'a arg -> ('r, 'e) Promise.t
(** {!stream_call}, accepting a pipelineable argument. A reference to a
    producer that already terminated with [unavailable]/[failure]
    yields an already-ready promise with that same outcome — nothing is
    transmitted. Pipelined transmissions are counted in {!Sim.Stats} as
    [pipelined_calls] (sender side); receiver-side events appear as
    [parked_calls], [ref_substitutions] and [ref_failures]. *)

(** {1 Stream control (per handle)} *)

val flush : ('a, 'r, 'e) h -> unit
(** §2's [flush h]: transmit buffered calls on [h]'s stream now. *)

val synch : ('a, 'r, 'e) h -> (unit, [ `Exception_reply | `Broken of string ]) result
(** §2's [synch h]: flush, wait for all earlier calls on the stream to
    complete, and report whether any of them (since the last synch)
    terminated with an exception. *)

(** {1 The unified call builder}

    One entry point subsuming the per-variant functions above — build a
    plan, refine it, submit it:

    {[
      (* stream_call h v *)        Call.(submit (make h v))
      (* stream_call_ h v *)       Call.(detach (make h v))
      (* send h v *)               Call.(detach (as_send (make h v)))
      (* rpc h v *)                Call.(sync (make h v))
      (* stream_call_retry h v *)  Call.(submit (with_retry (make h v)))
      (* stream_call_p h a *)      Call.(submit (piped h a))
    ]}

    The builder is also where {b third-party handoff}
    (docs/HANDOFF.md) lives, on by default: submitting a plan whose
    {!pipe}d argument references a call on a {e different} node no
    longer raises — the dependent call is forwarded to that node with
    its reference annotated, the producer is told to push the outcome
    there directly, and one full proxy hop of latency and bytes
    disappears. If the producer's node refuses (epoch mismatch, no
    registry, table full) or its stream breaks, this node falls back to
    relaying the outcome itself — the exactly-once and
    abnormal-propagation semantics are those of the proxy it replaces.
    Counted in {!Sim.Stats} as [handoff_calls] (forwarded plans) and
    [handoff_fallbacks] (refusals that fell back); producer/owner-side
    events appear as [handoff_forwards], [handoff_streams_opened],
    [handoff_dedup_joins] and [handoff_refusals]. *)

module Call : sig
  type ('a, 'r, 'e) plan
  (** An unsent call: handle + argument + delivery refinements. Plans
      are immutable values — refining one returns a new plan, so a
      partially-applied plan can be reused. *)

  val make : ('a, 'r, 'e) h -> 'a -> ('a, 'r, 'e) plan
  (** A plan for an ordinary by-value call. *)

  val piped : ('a, 'r, 'e) h -> 'a arg -> ('a, 'r, 'e) plan
  (** A plan whose argument may be a {!pipe}d promise reference. *)

  val as_send : ('a, 'r, 'e) plan -> ('a, 'r, 'e) plan
  (** Deliver as a send: no result, abnormal termination observable
      through {!synch}. Submit with {!detach}. *)

  val with_retry :
    ?policy:retry_policy -> ?deadline:float -> ('a, 'r, 'e) plan -> ('a, 'r, 'e) plan
  (** Retry [unavailable] outcomes as {!stream_call_retry} does.
      Applies only to plain by-value call plans ({!submit} raises
      [Invalid_argument] otherwise): each attempt is a fresh call, so a
      piped, deferred or send plan cannot be retried. *)

  val allow_handoff : bool -> ('a, 'r, 'e) plan -> ('a, 'r, 'e) plan
  (** Enable ([true], the default) or disable third-party handoff for
      this plan. With [false], a cross-node reference raises
      {!Promise.Failure_exn} exactly as the pre-handoff API did. *)

  val defer_result : ('a, 'r, 'e) plan -> ('a, 'r, 'e) plan
  (** Ask the receiver to strip the normal result from the reply
      (docs/HANDOFF.md): the promise can be {!pipe}d — and handed off
      without this node ever carrying the value — but {e not} claimed
      for it; claiming yields a [Failure] marker. Abnormal outcomes
      still arrive in full. *)

  val submit : ('a, 'r, 'e) plan -> ('r, 'e) Promise.t
  (** Issue the call; the promise resolves as the plan dictates. Raises
      [Invalid_argument] for a send plan (no promise — use {!detach}). *)

  val detach : ('a, 'r, 'e) plan -> unit
  (** Issue without a promise: the statement form for calls, the only
      form for sends. *)

  val sync : ('a, 'r, 'e) plan -> ('r, 'e) Promise.outcome
  (** {!submit}, {!flush}, {!Promise.claim} — the RPC form (fiber
      context only). *)
end
