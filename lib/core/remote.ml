module S = Sched.Scheduler
module SE = Cstream.Stream_end
module W = Cstream.Wire

type ('a, 'r, 'e) h = {
  h_sig : ('a, 'r, 'e) Sigs.hsig;
  h_stream : SE.t;
  h_sched : S.t;
}

let bind agent ~dst ~gid hs =
  { h_sig = hs; h_stream = Agent.stream_to agent ~dst ~gid; h_sched = Agent.sched agent }

let bind_ref agent pref hs =
  let hs = { hs with Sigs.hname = pref.Sigs.pr_port } in
  bind agent ~dst:pref.Sigs.pr_addr ~gid:pref.Sigs.pr_group hs

let hsig h = h.h_sig

let stream h = h.h_stream

let decode_outcome (hs : ('a, 'r, 'e) Sigs.hsig) (w : W.routcome) : ('r, 'e) Promise.outcome =
  match w with
  | W.W_normal v -> (
      match Xdr.decode hs.Sigs.res_c v with
      | Ok r -> Promise.Normal r
      | Error reason -> Promise.Failure ("could not decode: " ^ reason))
  | W.W_signal (sig_name, payload) -> (
      match hs.Sigs.sig_c.Sigs.dec_sig (sig_name, payload) with
      | Ok e -> Promise.Signal e
      | Error reason -> Promise.Failure ("could not decode signal: " ^ reason))
  | W.W_unavailable reason -> Promise.Unavailable reason
  | W.W_failure reason -> Promise.Failure reason

(* Put one already-encoded call on the stream: wounded-fiber check,
   stream-broken check. On success returns the stable call-id and the
   call's causal trace id, and [on_reply] will fire exactly once. *)
let start_encoded ?handoff ?elide h ~kind ~args ~on_reply =
  if S.wounded h.h_sched then
    (* "It cannot make any remote calls at such a point" (§4.2). *)
    raise S.Terminated;
  match
    SE.call_traced ?handoff ?elide h.h_stream ~port:h.h_sig.Sigs.hname ~kind ~args ~on_reply
  with
  | Ok ids -> ids
  | Error reason -> raise (Promise.Unavailable_exn reason)

(* Shared front half of the typed call forms: encode, then transmit. *)
let start_call ?elide h ~kind arg ~on_reply =
  match Xdr.encode h.h_sig.Sigs.arg_c arg with
  | Error reason -> raise (Promise.Failure_exn ("encoding failed: " ^ reason))
  | Ok args -> start_encoded ?elide h ~kind ~args ~on_reply

(* A promise born here can be piped into a later call on the same node
   (remember which call produces it), forwarded to another node
   (remember the home stream), and claimed under tracing (stamp the
   call's trace id so the claim edge lands in its timeline). *)
let stamp_origin h p (cid, tid) =
  Promise.set_origin p
    { Promise.og_stream = SE.stable_id h.h_stream; og_call = cid; og_dst = SE.dst h.h_stream };
  Promise.set_trace p tid;
  Promise.set_home p h.h_stream

let stream_call h arg =
  let p = Promise.create h.h_sched in
  let ids =
    start_call h ~kind:W.Call arg ~on_reply:(fun w ->
        Promise.put_wire p w;
        Promise.resolve p (decode_outcome h.h_sig w))
  in
  stamp_origin h p ids;
  p

let stream_call_ h arg =
  ignore
    (start_call h ~kind:W.Call arg ~on_reply:(fun w ->
         (* Decoded and discarded, as §3 specifies for statement form. *)
         ignore (decode_outcome h.h_sig w : _ Promise.outcome))
      : int * int)

let send h arg = ignore (start_call h ~kind:W.Send arg ~on_reply:(fun _ -> ()) : int * int)

(* {2 Promise pipelining (docs/PIPELINE.md)} *)

type ref_arg = {
  ar_origin : Promise.origin;
  ar_field : string option;
  ar_home : SE.t option;  (* the stream the producing call went out on *)
  ar_watch : (W.routcome -> unit) -> unit;
      (* register for the producer's wire outcome — the handoff
         machinery's hook for pushing it to a foreign owner *)
  ar_elided : bool;  (* the producer's reply carries no value *)
}

type 'a arg =
  | Arg_now of 'a  (* ordinary by-value argument *)
  | Arg_ref of ref_arg
  | Arg_dead of W.routcome
      (* the producer already terminated abnormally: the dependent call
         completes with the same outcome without ever being sent *)

let arg v = Arg_now v

let ref_of_promise ~what p ~field =
  match Promise.origin p with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Remote.%s: promise was not born from a stream call (no origin to reference)" what)
  | Some og ->
      Arg_ref
        {
          ar_origin = og;
          ar_field = field;
          ar_home = Promise.home p;
          ar_watch = Promise.on_wire p;
          ar_elided = Promise.elided p;
        }

let pipe p =
  if Promise.elided p then
    (* A deferred result never has a local value; its typed state is a
       marker, so only a real abnormal wire outcome short-circuits. *)
    match Promise.wire p with
    | Some ((W.W_unavailable _ | W.W_failure _) as w) -> Arg_dead w
    | Some (W.W_normal _ | W.W_signal _) | None -> ref_of_promise ~what:"pipe" p ~field:None
  else
    match Promise.peek p with
    | Some (Promise.Normal v) -> Arg_now v
    | Some (Promise.Unavailable r) -> Arg_dead (W.W_unavailable r)
    | Some (Promise.Failure r) -> Arg_dead (W.W_failure r)
    | Some (Promise.Signal _) | None ->
        (* A ready signal still goes by reference: its wire encoding was
           recorded at the receiver, which propagates it to the dependent
           call — we cannot re-encode a decoded ['e] here. *)
        ref_of_promise ~what:"pipe" p ~field:None

let pipe_field (p : _ Promise.t) ~field =
  if Promise.elided p then
    match Promise.wire p with
    | Some ((W.W_unavailable _ | W.W_failure _) as w) -> Arg_dead w
    | Some (W.W_normal _ | W.W_signal _) | None ->
        ref_of_promise ~what:"pipe_field" p ~field:(Some field)
  else
    match Promise.peek p with
    | Some (Promise.Unavailable r) -> Arg_dead (W.W_unavailable r)
    | Some (Promise.Failure r) -> Arg_dead (W.W_failure r)
    | Some (Promise.Normal _ | Promise.Signal _) | None ->
        ref_of_promise ~what:"pipe_field" p ~field:(Some field)

(* The dependent call of a same-node pipelined reference. *)
let issue_ref ?handoff h ~origin ~field =
  let args =
    Xdr.Pref
      {
        Xdr.ps_stream = origin.Promise.og_stream;
        ps_call = origin.Promise.og_call;
        ps_field = field;
      }
  in
  let p = Promise.create h.h_sched in
  let ids =
    start_encoded ?handoff h ~kind:W.Call ~args ~on_reply:(fun w ->
        Promise.put_wire p w;
        Promise.resolve p (decode_outcome h.h_sig w))
  in
  stamp_origin h p ids;
  Sim.Stats.incr (Sim.Stats.counter (S.stats h.h_sched) "pipelined_calls");
  p

let stream_call_p h a =
  match a with
  | Arg_now v -> stream_call h v
  | Arg_dead w ->
      (* "The producer's fate is the dependent's fate": complete
         abnormally right here, transmitting nothing. *)
      Promise.resolved h.h_sched (decode_outcome h.h_sig w)
  | Arg_ref { ar_origin; ar_field; _ } ->
      (* The sender can only validate the node: which guardian a group
         belongs to is receiver-local knowledge. A same-node reference
         that crosses guardians (disjoint registries) is rejected by
         the receiver's scope check with the same "claim it instead"
         failure, instead of parking forever. *)
      if ar_origin.Promise.og_dst <> SE.dst h.h_stream then
        raise
          (Promise.Failure_exn
             "pipelined argument references a call on a different node; claim it instead")
      else issue_ref h ~origin:ar_origin ~field:ar_field

let flush h = SE.flush h.h_stream

(* {2 Retry-on-unavailable (docs/OVERLOAD.md)} *)

type retry_policy = {
  retry_attempts : int;
  retry_base : float;
  retry_factor : float;
  retry_max_delay : float;
  retry_jitter : float;
}

let default_retry_policy =
  {
    retry_attempts = 4;
    retry_base = 5e-3;
    retry_factor = 2.0;
    retry_max_delay = 0.5;
    retry_jitter = 0.2;
  }

let retry_delay policy rng ~attempt =
  let raw = policy.retry_base *. (policy.retry_factor ** float_of_int (attempt - 1)) in
  let capped = Float.min raw policy.retry_max_delay in
  (* Jitter decorrelates callers shed by the same overloaded lane —
     a synchronized retry herd would just be shed again. Drawn from an
     RNG split off the scheduler's so runs replay from the seed. *)
  let spread = policy.retry_jitter *. ((2.0 *. Sim.Rng.float rng 1.0) -. 1.0) in
  Float.max 0.0 (capped *. (1.0 +. spread))

let stream_call_retry ?(policy = default_retry_policy) ?deadline h arg =
  if policy.retry_attempts <= 0 then
    invalid_arg "Remote.stream_call_retry: retry_attempts must be positive";
  let sched = h.h_sched in
  let p = Promise.create sched in
  let rng = Sim.Rng.split (S.rng sched) in
  let counter name = Sim.Stats.counter (S.stats sched) name in
  let resolve w = Promise.resolve p (decode_outcome h.h_sig w) in
  (* Each attempt is a fresh call with a fresh stable call-id: a shed
     call never executed, so this is retry, not resubmission — dedup is
     not implicated and receiver-side at-most-once holds per attempt.
     (Crash-driven [restart_resubmit] is the opposite: same cid,
     because the original may have executed.) The promise carries the
     first attempt's trace id but no origin: piping it would mint a
     reference to a possibly-shed, never-executed call. *)
  let rec attempt n =
    let on_reply = function
      | W.W_unavailable reason -> next n reason
      | w ->
          if n > 1 then Sim.Stats.incr (counter "remote_retry_successes");
          resolve w
    in
    match
      try `Issued (start_call h ~kind:W.Call arg ~on_reply)
      with Promise.Unavailable_exn reason -> `Refused reason
    with
    | `Issued ((_ : int), tid) -> if n = 1 then Promise.set_trace p tid
    | `Refused reason -> next n reason
  and next n reason =
    let give_up () =
      Sim.Stats.incr (counter "remote_retry_exhausted");
      resolve (W.W_unavailable reason)
    in
    if n >= policy.retry_attempts then give_up ()
    else begin
      let delay = retry_delay policy rng ~attempt:n in
      let in_time =
        match deadline with None -> true | Some d -> S.now sched +. delay < d
      in
      (* A retry that cannot land before the claimant's deadline is
         pointless; surface [unavailable] now instead. *)
      if not in_time then give_up ()
      else begin
        Sim.Stats.incr (counter "remote_unavailable_retries");
        S.after sched delay (fun () ->
            attempt (n + 1);
            flush h)
      end
    end
  in
  attempt 1;
  p

let rpc h arg =
  let p = stream_call h arg in
  flush h;
  Promise.claim p

let synch h = SE.synch h.h_stream

(* {2 The unified call builder (docs/HANDOFF.md)} *)

module CH = Cstream.Chanhub

(* A call issued with reply elision: the receiver strips the normal
   result from the reply, so the promise's typed state is only ever a
   deferred-result marker (or a real abnormal outcome). *)
let issue_elided h v =
  let p = Promise.create h.h_sched in
  Promise.set_elided p;
  let ids =
    start_call ~elide:true h ~kind:W.Call v ~on_reply:(fun w ->
        match w with
        | W.W_normal _ ->
            (* the elision marker, not a value — the real result lives
               only in the producer's registry *)
            Promise.resolve p
              (Promise.Failure
                 "result deferred (Remote.Call.defer_result): pipe it, do not claim")
        | W.W_signal _ | W.W_unavailable _ | W.W_failure _ ->
            Promise.put_wire p w;
            Promise.resolve p (decode_outcome h.h_sig w))
  in
  stamp_origin h p ids;
  p

module Call = struct
  type ('a, 'r, 'e) plan = {
    c_h : ('a, 'r, 'e) h;
    c_arg : 'a arg;
    c_kind : W.kind;
    c_retry : (retry_policy option * float option) option;
    c_handoff : bool;
    c_elide : bool;
  }

  let piped h a =
    { c_h = h; c_arg = a; c_kind = W.Call; c_retry = None; c_handoff = true; c_elide = false }

  let make h v = piped h (Arg_now v)

  let as_send b = { b with c_kind = W.Send }

  let with_retry ?policy ?deadline b = { b with c_retry = Some (policy, deadline) }

  let allow_handoff flag b = { b with c_handoff = flag }

  let defer_result b = { b with c_elide = true }

  (* Third-party handoff (docs/HANDOFF.md): the dependent call goes
     straight to the node that will consume the result — the owner —
     with its foreign reference annotated; the producer is told (the
     notice) to push the outcome to the owner directly; and if anything
     on that path refuses, this node falls back to relaying the outcome
     itself, which is exactly the proxy the handoff replaced. *)
  let submit_handoff b r home =
    let h = b.c_h in
    let sched = h.h_sched in
    let counter name = Sim.Stats.counter (S.stats sched) name in
    let hub = SE.hub home in
    let owner = SE.dst h.h_stream in
    let stream = r.ar_origin.Promise.og_stream and call = r.ar_origin.Promise.og_call in
    let ann =
      { W.ho_owner = owner; ho_stream = stream; ho_call = call; ho_epoch = CH.handoff_epoch hub }
    in
    let p = issue_ref ~handoff:[ ann ] h ~origin:r.ar_origin ~field:r.ar_field in
    Sim.Stats.incr (counter "handoff_calls");
    (match Promise.trace p with
    | Some tid ->
        let sp = S.spans sched in
        if Sim.Span.enabled sp then
          Sim.Span.record sp ~time:(S.now sched) ~kind:Sim.Span.Handoff ~trace:tid ~stream
            ~call
            ~note:(Printf.sprintf "forward -> n%d" owner)
            ()
    | None -> ());
    (* At most one outcome crosses to the owner from this node; the
       owner's registry also dedups, so racing the producer's own push
       is harmless. *)
    let pushed = ref false in
    let push w =
      if not !pushed then begin
        pushed := true;
        CH.handoff_push hub ~dst:owner ~stream ~call (W.outcome_value w)
      end
    in
    (* If the producer's stream dies, nobody else can tell the owner —
       always relay abnormal outcomes from here so the forwarded call
       inherits the producer's fate instead of parking forever. *)
    r.ar_watch (function
      | (W.W_unavailable _ | W.W_failure _) as w -> push w
      | W.W_normal _ | W.W_signal _ -> ());
    let fall_back () =
      Sim.Stats.incr (counter "handoff_fallbacks");
      if r.ar_elided then
        (* the value exists only in the producer's registry: redeem it
           by reference — the proxy-equivalent round trip — and relay *)
        match
          SE.call_traced home ~port:W.handoff_redeem_port ~kind:W.Call
            ~args:(W.handoff_value ann) ~on_reply:push
        with
        | Ok _ -> SE.flush home
        | Error reason -> push (W.W_unavailable ("handoff fallback: " ^ reason))
      else
        (* the producer's reply still comes here: relay it on arrival *)
        r.ar_watch push
    in
    (match
       SE.call_traced home ~port:W.handoff_notice_port ~kind:W.Send
         ~args:(W.handoff_value ann)
         ~on_reply:(function
           | W.W_normal _ -> () (* accepted: the producer's node pushes *)
           | W.W_signal _ | W.W_unavailable _ | W.W_failure _ -> fall_back ())
     with
    | Ok _ ->
        (* the notice must not sit in the buffer behind nothing: the
           owner is already parked on it *)
        SE.flush home
    | Error _ ->
        (* home stream already broken: the producer's outcome can only
           be what the break resolved it to *)
        r.ar_watch push);
    p

  let submit b =
    match b.c_kind with
    | W.Send -> invalid_arg "Remote.Call.submit: a send has no promise; use detach"
    | W.Call -> (
        match b.c_retry with
        | Some (policy, deadline) -> (
            match b.c_arg with
            | Arg_now v when not b.c_elide -> stream_call_retry ?policy ?deadline b.c_h v
            | Arg_now _ | Arg_ref _ | Arg_dead _ ->
                invalid_arg "Remote.Call.submit: with_retry applies only to plain by-value calls")
        | None -> (
            match b.c_arg with
            | Arg_now v when b.c_elide -> issue_elided b.c_h v
            | Arg_now v -> stream_call b.c_h v
            | Arg_dead w -> Promise.resolved b.c_h.h_sched (decode_outcome b.c_h.h_sig w)
            | Arg_ref r ->
                if r.ar_origin.Promise.og_dst = SE.dst b.c_h.h_stream then
                  stream_call_p b.c_h b.c_arg
                else (
                  match (b.c_handoff, r.ar_home) with
                  | true, Some home -> submit_handoff b r home
                  | false, _ | true, None ->
                      (* same failure the pre-handoff API raised *)
                      stream_call_p b.c_h b.c_arg)))

  let detach b =
    match b.c_retry with
    | Some _ -> invalid_arg "Remote.Call.detach: with_retry needs a promise; use submit"
    | None -> (
        match (b.c_kind, b.c_arg) with
        | W.Send, Arg_now v -> send b.c_h v
        | W.Send, Arg_dead _ -> ()
        | W.Send, Arg_ref _ ->
            invalid_arg "Remote.Call.detach: a send cannot take a pipelined argument"
        | W.Call, Arg_now v when not b.c_elide -> stream_call_ b.c_h v
        | W.Call, _ -> ignore (submit b : _ Promise.t))

  let sync b =
    let p = submit b in
    flush b.c_h;
    Promise.claim p
end
