module S = Sched.Scheduler
module SE = Cstream.Stream_end
module W = Cstream.Wire

type ('a, 'r, 'e) h = {
  h_sig : ('a, 'r, 'e) Sigs.hsig;
  h_stream : SE.t;
  h_sched : S.t;
}

let bind agent ~dst ~gid hs =
  { h_sig = hs; h_stream = Agent.stream_to agent ~dst ~gid; h_sched = Agent.sched agent }

let bind_ref agent pref hs =
  let hs = { hs with Sigs.hname = pref.Sigs.pr_port } in
  bind agent ~dst:pref.Sigs.pr_addr ~gid:pref.Sigs.pr_group hs

let hsig h = h.h_sig

let stream h = h.h_stream

let decode_outcome (hs : ('a, 'r, 'e) Sigs.hsig) (w : W.routcome) : ('r, 'e) Promise.outcome =
  match w with
  | W.W_normal v -> (
      match Xdr.decode hs.Sigs.res_c v with
      | Ok r -> Promise.Normal r
      | Error reason -> Promise.Failure ("could not decode: " ^ reason))
  | W.W_signal (sig_name, payload) -> (
      match hs.Sigs.sig_c.Sigs.dec_sig (sig_name, payload) with
      | Ok e -> Promise.Signal e
      | Error reason -> Promise.Failure ("could not decode signal: " ^ reason))
  | W.W_unavailable reason -> Promise.Unavailable reason
  | W.W_failure reason -> Promise.Failure reason

(* Put one already-encoded call on the stream: wounded-fiber check,
   stream-broken check. On success returns the stable call-id and the
   call's causal trace id, and [on_reply] will fire exactly once. *)
let start_encoded h ~kind ~args ~on_reply =
  if S.wounded h.h_sched then
    (* "It cannot make any remote calls at such a point" (§4.2). *)
    raise S.Terminated;
  match SE.call_traced h.h_stream ~port:h.h_sig.Sigs.hname ~kind ~args ~on_reply with
  | Ok ids -> ids
  | Error reason -> raise (Promise.Unavailable_exn reason)

(* Shared front half of the typed call forms: encode, then transmit. *)
let start_call h ~kind arg ~on_reply =
  match Xdr.encode h.h_sig.Sigs.arg_c arg with
  | Error reason -> raise (Promise.Failure_exn ("encoding failed: " ^ reason))
  | Ok args -> start_encoded h ~kind ~args ~on_reply

(* A promise born here can be piped into a later call on the same node
   (remember which call produces it) and claimed under tracing (stamp
   the call's trace id so the claim edge lands in its timeline). *)
let stamp_origin h p (cid, tid) =
  Promise.set_origin p
    { Promise.og_stream = SE.stable_id h.h_stream; og_call = cid; og_dst = SE.dst h.h_stream };
  Promise.set_trace p tid

let stream_call h arg =
  let p = Promise.create h.h_sched in
  let ids =
    start_call h ~kind:W.Call arg ~on_reply:(fun w -> Promise.resolve p (decode_outcome h.h_sig w))
  in
  stamp_origin h p ids;
  p

let stream_call_ h arg =
  ignore
    (start_call h ~kind:W.Call arg ~on_reply:(fun w ->
         (* Decoded and discarded, as §3 specifies for statement form. *)
         ignore (decode_outcome h.h_sig w : _ Promise.outcome))
      : int * int)

let send h arg = ignore (start_call h ~kind:W.Send arg ~on_reply:(fun _ -> ()) : int * int)

(* {2 Promise pipelining (docs/PIPELINE.md)} *)

type 'a arg =
  | Arg_now of 'a  (* ordinary by-value argument *)
  | Arg_ref of { ar_origin : Promise.origin; ar_field : string option }
  | Arg_dead of W.routcome
      (* the producer already terminated abnormally: the dependent call
         completes with the same outcome without ever being sent *)

let arg v = Arg_now v

let pipe p =
  match Promise.peek p with
  | Some (Promise.Normal v) -> Arg_now v
  | Some (Promise.Unavailable r) -> Arg_dead (W.W_unavailable r)
  | Some (Promise.Failure r) -> Arg_dead (W.W_failure r)
  | Some (Promise.Signal _) | None -> (
      (* A ready signal still goes by reference: its wire encoding was
         recorded at the receiver, which propagates it to the dependent
         call — we cannot re-encode a decoded ['e] here. *)
      match Promise.origin p with
      | None ->
          invalid_arg
            "Remote.pipe: promise was not born from a stream call (no origin to reference)"
      | Some og -> Arg_ref { ar_origin = og; ar_field = None })

let pipe_field (p : _ Promise.t) ~field =
  match Promise.peek p with
  | Some (Promise.Unavailable r) -> Arg_dead (W.W_unavailable r)
  | Some (Promise.Failure r) -> Arg_dead (W.W_failure r)
  | Some (Promise.Normal _ | Promise.Signal _) | None -> (
      match Promise.origin p with
      | None ->
          invalid_arg
            "Remote.pipe_field: promise was not born from a stream call (no origin to reference)"
      | Some og -> Arg_ref { ar_origin = og; ar_field = Some field })

let stream_call_p h a =
  match a with
  | Arg_now v -> stream_call h v
  | Arg_dead w ->
      (* "The producer's fate is the dependent's fate": complete
         abnormally right here, transmitting nothing. *)
      Promise.resolved h.h_sched (decode_outcome h.h_sig w)
  | Arg_ref { ar_origin; ar_field } ->
      (* The sender can only validate the node: which guardian a group
         belongs to is receiver-local knowledge. A same-node reference
         that crosses guardians (disjoint registries) is rejected by
         the receiver's scope check with the same "claim it instead"
         failure, instead of parking forever. *)
      if ar_origin.Promise.og_dst <> SE.dst h.h_stream then
        raise
          (Promise.Failure_exn
             "pipelined argument references a call on a different node; claim it instead")
      else begin
        let args =
          Xdr.Pref
            {
              Xdr.ps_stream = ar_origin.Promise.og_stream;
              ps_call = ar_origin.Promise.og_call;
              ps_field = ar_field;
            }
        in
        let p = Promise.create h.h_sched in
        let ids =
          start_encoded h ~kind:W.Call ~args ~on_reply:(fun w ->
              Promise.resolve p (decode_outcome h.h_sig w))
        in
        stamp_origin h p ids;
        Sim.Stats.incr (Sim.Stats.counter (S.stats h.h_sched) "pipelined_calls");
        p
      end

let flush h = SE.flush h.h_stream

(* {2 Retry-on-unavailable (docs/OVERLOAD.md)} *)

type retry_policy = {
  retry_attempts : int;
  retry_base : float;
  retry_factor : float;
  retry_max_delay : float;
  retry_jitter : float;
}

let default_retry_policy =
  {
    retry_attempts = 4;
    retry_base = 5e-3;
    retry_factor = 2.0;
    retry_max_delay = 0.5;
    retry_jitter = 0.2;
  }

let retry_delay policy rng ~attempt =
  let raw = policy.retry_base *. (policy.retry_factor ** float_of_int (attempt - 1)) in
  let capped = Float.min raw policy.retry_max_delay in
  (* Jitter decorrelates callers shed by the same overloaded lane —
     a synchronized retry herd would just be shed again. Drawn from an
     RNG split off the scheduler's so runs replay from the seed. *)
  let spread = policy.retry_jitter *. ((2.0 *. Sim.Rng.float rng 1.0) -. 1.0) in
  Float.max 0.0 (capped *. (1.0 +. spread))

let stream_call_retry ?(policy = default_retry_policy) ?deadline h arg =
  if policy.retry_attempts <= 0 then
    invalid_arg "Remote.stream_call_retry: retry_attempts must be positive";
  let sched = h.h_sched in
  let p = Promise.create sched in
  let rng = Sim.Rng.split (S.rng sched) in
  let counter name = Sim.Stats.counter (S.stats sched) name in
  let resolve w = Promise.resolve p (decode_outcome h.h_sig w) in
  (* Each attempt is a fresh call with a fresh stable call-id: a shed
     call never executed, so this is retry, not resubmission — dedup is
     not implicated and receiver-side at-most-once holds per attempt.
     (Crash-driven [restart_resubmit] is the opposite: same cid,
     because the original may have executed.) The promise carries the
     first attempt's trace id but no origin: piping it would mint a
     reference to a possibly-shed, never-executed call. *)
  let rec attempt n =
    let on_reply = function
      | W.W_unavailable reason -> next n reason
      | w ->
          if n > 1 then Sim.Stats.incr (counter "remote_retry_successes");
          resolve w
    in
    match
      try `Issued (start_call h ~kind:W.Call arg ~on_reply)
      with Promise.Unavailable_exn reason -> `Refused reason
    with
    | `Issued ((_ : int), tid) -> if n = 1 then Promise.set_trace p tid
    | `Refused reason -> next n reason
  and next n reason =
    let give_up () =
      Sim.Stats.incr (counter "remote_retry_exhausted");
      resolve (W.W_unavailable reason)
    in
    if n >= policy.retry_attempts then give_up ()
    else begin
      let delay = retry_delay policy rng ~attempt:n in
      let in_time =
        match deadline with None -> true | Some d -> S.now sched +. delay < d
      in
      (* A retry that cannot land before the claimant's deadline is
         pointless; surface [unavailable] now instead. *)
      if not in_time then give_up ()
      else begin
        Sim.Stats.incr (counter "remote_unavailable_retries");
        S.after sched delay (fun () ->
            attempt (n + 1);
            flush h)
      end
    end
  in
  attempt 1;
  p

let rpc h arg =
  let p = stream_call h arg in
  flush h;
  Promise.claim p

let synch h = SE.synch h.h_stream
