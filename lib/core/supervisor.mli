(** Stream supervision: automatic reincarnation with backoff and a
    circuit breaker.

    The paper leaves recovery to the programmer: a broken stream stays
    broken until somebody calls [restart], and every call in flight at
    the break terminates with [unavailable] (§2). A supervisor automates
    that recovery loop for one {!Cstream.Stream_end.t}:

    - on break it reincarnates the stream after an exponential backoff
      with jitter, {e re-submitting} the calls that were in flight
      (with their stable call-ids, so a [~dedup:true] receiver executes
      each at most once — cross-incarnation exactly-once);
    - after [retry_budget] consecutive reincarnations without a single
      reply it trips {e open}: in-flight calls resolve [unavailable],
      new calls fail fast, and after [open_timeout] a single {e
      half-open} probe incarnation is tried — a reply closes the
      breaker, another break re-opens it.

    State machine: [Closed] ⟶ (break · budget exhausted) ⟶ [Open] ⟶
    (open_timeout) ⟶ [Half_open] ⟶ reply ⟶ [Closed], or break ⟶
    [Open]. Any reply also resets the attempt counter. See
    [docs/FAULTS.md] for the full protocol, including why receiver-side
    dedup is required for exactly-once.

    Transitions are recorded in the scheduler's {!Sim.Trace}; counters
    [sup_restarts], [sup_opens], [sup_probes], [sup_closes] land in its
    {!Sim.Stats}. All delays draw jitter from an RNG split off the
    scheduler's, so runs stay reproducible from the seed. *)

type t

type breaker_state = Closed | Open | Half_open

val pp_breaker_state : Format.formatter -> breaker_state -> unit

type config = {
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_factor : float;  (** multiplier per consecutive failure *)
  backoff_max : float;  (** delay cap, seconds *)
  backoff_jitter : float;
      (** relative spread: the delay is scaled by a uniform factor in
          [1 ± backoff_jitter] *)
  retry_budget : int;
      (** consecutive reincarnations without any reply before the
          breaker trips open (must be ≥ 1) *)
  open_timeout : float;  (** seconds in [Open] before a half-open probe *)
}

val default_config : config
(** [backoff_base = 10 ms], [factor = 2], [max = 2 s], [jitter = 0.2],
    [retry_budget = 8], [open_timeout = 5 s]. *)

val supervise : ?config:config -> Cstream.Stream_end.t -> t
(** Take over recovery for [stream]: puts it in preserve-on-break mode
    and installs the break/progress hooks. At most one supervisor per
    stream. While the supervisor is backing off (or open) the stream is
    broken, so new calls fail immediately with [unavailable] — use
    {!Promise.claim_timeout} on outstanding promises if claimants must
    not wait out a long outage. *)

val supervise_agent : ?config:config -> Agent.t -> dst:Net.address -> gid:string -> t
(** Supervise the agent's stream to that port group (opening it if
    needed). *)

val stream : t -> Cstream.Stream_end.t

val state : t -> breaker_state

val restarts : t -> int
(** Reincarnations performed so far (backoff retries plus probes). *)

val on_state_change : t -> (breaker_state -> unit) -> unit
(** At most one hook (last registration wins); called on every breaker
    transition. *)

val stop : t -> unit
(** Stop supervising: the stream returns to the paper's manual
    semantics (breaks resolve in-flight calls with [unavailable]); if
    it is currently broken, still-pending calls resolve now. *)
