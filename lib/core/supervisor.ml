module S = Sched.Scheduler
module SE = Cstream.Stream_end

type breaker_state = Closed | Open | Half_open

let pp_breaker_state ppf s =
  Format.pp_print_string ppf
    (match s with Closed -> "closed" | Open -> "open" | Half_open -> "half-open")

type config = {
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  backoff_jitter : float;
  retry_budget : int;
  open_timeout : float;
}

let default_config =
  {
    backoff_base = 10e-3;
    backoff_factor = 2.0;
    backoff_max = 2.0;
    backoff_jitter = 0.2;
    retry_budget = 8;
    open_timeout = 5.0;
  }

type t = {
  sup_sched : S.t;
  sup_stream : SE.t;
  cfg : config;
  rng : Sim.Rng.t;
  mutable state : breaker_state;
  mutable attempts : int;  (* consecutive reincarnations with no reply seen *)
  mutable restarts_total : int;
  mutable stopped : bool;
  mutable on_state : (breaker_state -> unit) option;
}

let stream t = t.sup_stream

let state t = t.state

let restarts t = t.restarts_total

let on_state_change t f = t.on_state <- Some f

let counter t name = Sim.Stats.counter (S.stats t.sup_sched) name

let trace t fmt = Sim.Trace.recordf (S.trace t.sup_sched) ~time:(S.now t.sup_sched) fmt

let set_state t s =
  if t.state <> s then begin
    t.state <- s;
    trace t "supervisor %s->%s: %a" (SE.agent t.sup_stream) (SE.gid t.sup_stream)
      pp_breaker_state s;
    match t.on_state with Some f -> f s | None -> ()
  end

let backoff_delay t =
  let raw = t.cfg.backoff_base *. (t.cfg.backoff_factor ** float_of_int (t.attempts - 1)) in
  let capped = Float.min raw t.cfg.backoff_max in
  (* Jitter decorrelates herds of supervisors restarting after one
     partition heals; drawn from an RNG split off the scheduler's so
     runs stay reproducible from the seed. *)
  let spread = t.cfg.backoff_jitter *. ((2.0 *. Sim.Rng.float t.rng 1.0) -. 1.0) in
  Float.max 0.0 (capped *. (1.0 +. spread))

let do_restart t =
  if (not t.stopped) && SE.broken t.sup_stream <> None then begin
    t.restarts_total <- t.restarts_total + 1;
    Sim.Stats.incr (counter t "sup_restarts");
    ignore (SE.restart_resubmit t.sup_stream : int)
  end

let rec arm t =
  SE.on_break t.sup_stream (fun reason -> if not t.stopped then handle_break t reason)

and handle_break t reason =
  t.attempts <- t.attempts + 1;
  if t.state = Half_open || t.attempts > t.cfg.retry_budget then begin
    (* Budget exhausted (or the probe incarnation died): trip the
       breaker. In-flight calls resolve [unavailable] now — each may
       have executed at most once at the receiver — and new calls fail
       fast until the next probe. *)
    Sim.Stats.incr (counter t "sup_opens");
    trace t "supervisor %s->%s: open (attempt %d, break: %s)" (SE.agent t.sup_stream)
      (SE.gid t.sup_stream) t.attempts reason;
    set_state t Open;
    SE.fail_pending t.sup_stream ~reason:("circuit open: " ^ reason);
    S.after t.sup_sched t.cfg.open_timeout (fun () ->
        if (not t.stopped) && t.state = Open then begin
          Sim.Stats.incr (counter t "sup_probes");
          set_state t Half_open;
          t.attempts <- t.cfg.retry_budget;  (* one strike on the probe re-opens *)
          do_restart t;
          arm t
        end)
  end
  else begin
    let delay = backoff_delay t in
    trace t "supervisor %s->%s: restart in %.4fs (attempt %d/%d, break: %s)"
      (SE.agent t.sup_stream) (SE.gid t.sup_stream) delay t.attempts t.cfg.retry_budget reason;
    S.after t.sup_sched delay (fun () ->
        if (not t.stopped) && t.state <> Open then begin
          do_restart t;
          arm t
        end)
  end

let supervise ?(config = default_config) stream_ =
  if config.retry_budget < 1 then invalid_arg "Supervisor.supervise: retry_budget must be >= 1";
  let sched = SE.sched stream_ in
  let t =
    {
      sup_sched = sched;
      sup_stream = stream_;
      cfg = config;
      rng = Sim.Rng.split (S.rng sched);
      state = Closed;
      attempts = 0;
      restarts_total = 0;
      stopped = false;
      on_state = None;
    }
  in
  SE.set_preserve_on_break stream_ true;
  SE.on_progress stream_ (fun () ->
      (* A reply proves the incarnation works: reset the budget and
         close the breaker. *)
      t.attempts <- 0;
      if t.state <> Closed then begin
        Sim.Stats.incr (counter t "sup_closes");
        set_state t Closed
      end);
  arm t;
  t

let supervise_agent ?config agent ~dst ~gid =
  supervise ?config (Agent.stream_to agent ~dst ~gid)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    SE.set_preserve_on_break t.sup_stream false;
    (match SE.broken t.sup_stream with
    | Some reason -> SE.fail_pending t.sup_stream ~reason:("stream broken: " ^ reason)
    | None -> ());
    set_state t Closed
  end
