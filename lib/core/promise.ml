module S = Sched.Scheduler

type ('a, 'e) outcome =
  | Normal of 'a
  | Signal of 'e
  | Unavailable of string
  | Failure of string

type ('a, 'e) state =
  | Blocked of (('a, 'e) outcome -> unit) list  (* waiting callbacks, newest first *)
  | Ready of ('a, 'e) outcome

(* Where a promise came from, when it was born from a stream call: the
   producing stream's incarnation-independent identity, the stable
   call-id, and the destination node. Enough to mint a transmissible
   {!Xdr.promise_ref} naming the not-yet-ready result (promise
   pipelining, docs/PIPELINE.md). *)
type origin = { og_stream : string; og_call : int; og_dst : int }

type ('a, 'e) t = {
  sched : S.t;
  mutable state : ('a, 'e) state;
  mutable origin : origin option;
  mutable trace : int option;
      (* causal trace id of the producing call (docs/TRACING.md) *)
  mutable wire : Cstream.Wire.routcome option;
      (* the producing call's outcome as it arrived on the wire, kept
         apart from [state]: the typed state is a decode of this — or a
         deferred-result marker when the reply was elided
         (docs/HANDOFF.md) *)
  mutable wire_hooks : (Cstream.Wire.routcome -> unit) list;  (* newest first *)
  mutable home : Cstream.Stream_end.t option;
      (* the stream the producing call went out on *)
  mutable elided : bool;
      (* the producer was asked to strip the normal result from its
         reply: [state] never holds the real value, only the registry
         at the producer does *)
}

exception Unavailable_exn of string

exception Failure_exn of string

let create sched =
  {
    sched;
    state = Blocked [];
    origin = None;
    trace = None;
    wire = None;
    wire_hooks = [];
    home = None;
    elided = false;
  }

let resolved sched outcome =
  {
    sched;
    state = Ready outcome;
    origin = None;
    trace = None;
    wire = None;
    wire_hooks = [];
    home = None;
    elided = false;
  }

let set_origin p origin =
  match p.origin with
  | Some _ -> invalid_arg "Promise.set_origin: origin already set"
  | None -> p.origin <- Some origin

let origin p = p.origin

let set_trace p tid = p.trace <- Some tid

let trace p = p.trace

let set_home p se = p.home <- Some se

let home p = p.home

let set_elided p = p.elided <- true

let elided p = p.elided

let wire p = p.wire

(* First arrival wins, like [resolve] — but duplicates are ignored
   rather than rejected: a handoff fallback path may race the real
   reply for the same call. *)
let put_wire p w =
  match p.wire with
  | Some _ -> ()
  | None ->
      p.wire <- Some w;
      let hooks = p.wire_hooks in
      p.wire_hooks <- [];
      List.iter (fun hook -> hook w) (List.rev hooks)

let on_wire p hook =
  match p.wire with Some w -> hook w | None -> p.wire_hooks <- hook :: p.wire_hooks

(* The claim edge closes a traced call's timeline: the moment some
   fiber actually obtained the outcome. The claimant's node is not
   known at this layer, so the span carries none. The note names the
   outcome's termination kind so post-run analysis (e.g. E15's latency
   quantiles) can keep normal completions apart from [unavailable]
   ones without re-running the claimants. *)
let outcome_note = function
  | Normal _ -> "normal"
  | Signal _ -> "signal"
  | Unavailable _ -> "unavailable"
  | Failure _ -> "failure"

let record_claim p ?note () =
  match p.trace with
  | None -> ()
  | Some tid ->
      let sp = S.spans p.sched in
      if Sim.Span.enabled sp then
        Sim.Span.record sp ~time:(S.now p.sched) ~kind:Sim.Span.Claim ~trace:tid ?note ()

let ready p = match p.state with Ready _ -> true | Blocked _ -> false

let peek p = match p.state with Ready o -> Some o | Blocked _ -> None

let resolve p outcome =
  match p.state with
  | Ready _ -> invalid_arg "Promise.resolve: already ready (a promise's value never changes)"
  | Blocked hooks ->
      p.state <- Ready outcome;
      List.iter (fun hook -> hook outcome) (List.rev hooks)

let on_ready p hook =
  match p.state with
  | Ready o -> hook o
  | Blocked hooks -> p.state <- Blocked (hook :: hooks)

let claim p =
  match p.state with
  | Ready o ->
      record_claim p ~note:(outcome_note o) ();
      o
  | Blocked _ ->
      let o =
        S.suspend p.sched (fun w -> on_ready p (fun o -> ignore (S.wake w o : bool)))
      in
      record_claim p ~note:(outcome_note o) ();
      o

let claim_deadline p ~deadline =
  match p.state with
  | Ready o ->
      record_claim p ~note:(outcome_note o) ();
      o
  | Blocked _ ->
      if S.now p.sched >= deadline then
        Unavailable "claim deadline exceeded: promise still blocked"
      else
        (* First wake wins: S.wake returns false once the waker has
           fired, so the loser (outcome arrival or timer) is a no-op.
           The promise itself stays blocked on timeout — claiming is
           what gave up, not the call. *)
        let o =
          S.suspend p.sched (fun w ->
              on_ready p (fun o -> ignore (S.wake w o : bool));
              S.at p.sched deadline (fun () ->
                  ignore
                    (S.wake w (Unavailable "claim deadline exceeded: promise still blocked")
                      : bool)))
        in
        (match p.state with
        | Ready _ -> record_claim p ~note:(outcome_note o) ()
        | Blocked _ -> record_claim p ~note:"deadline exceeded" ());
        o

let claim_timeout p ~timeout = claim_deadline p ~deadline:(S.now p.sched +. timeout)

let claim_normal p ~on_signal =
  match claim p with
  | Normal v -> v
  | Signal e -> on_signal e
  | Unavailable reason -> raise (Unavailable_exn reason)
  | Failure reason -> raise (Failure_exn reason)

let map sched f p =
  let q = create sched in
  on_ready p (fun o ->
      resolve q
        (match o with
        | Normal v -> Normal (f v)
        | Signal e -> Signal e
        | Unavailable r -> Unavailable r
        | Failure r -> Failure r));
  q

let both sched pa pb =
  let q = create sched in
  on_ready pa (fun oa ->
      on_ready pb (fun ob ->
          resolve q
            (match (oa, ob) with
            | Normal a, Normal b -> Normal (a, b)
            | (Signal _ | Unavailable _ | Failure _), _ -> (
                match oa with
                | Signal e -> Signal e
                | Unavailable r -> Unavailable r
                | Failure r -> Failure r
                | Normal _ -> assert false)
            | Normal _, (Signal e) -> Signal e
            | Normal _, Unavailable r -> Unavailable r
            | Normal _, Failure r -> Failure r)));
  q

let all sched ps =
  let q = create sched in
  let n = List.length ps in
  if n = 0 then resolve q (Normal [])
  else begin
    let remaining = ref n in
    let failed = ref None in
    let results = Array.make n None in
    List.iteri
      (fun i p ->
        on_ready p (fun o ->
            (match o with
            | Normal v -> results.(i) <- Some v
            | Signal _ | Unavailable _ | Failure _ ->
                if !failed = None then failed := Some o);
            decr remaining;
            if !remaining = 0 then
              match !failed with
              | Some (Signal e) -> resolve q (Signal e)
              | Some (Unavailable r) -> resolve q (Unavailable r)
              | Some (Failure r) -> resolve q (Failure r)
              | Some (Normal _) | None ->
                  let values =
                    Array.to_list results
                    |> List.map (function Some v -> v | None -> assert false)
                  in
                  resolve q (Normal values)))
      ps
  end;
  q
