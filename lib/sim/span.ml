type kind =
  | Issue
  | Enqueue
  | Transmit
  | Retransmit
  | Deliver
  | Dispatch
  | Park
  | Substitute
  | Exec_begin
  | Exec_end
  | Reply
  | Ack
  | Claim
  | Break
  | Resubmit
  | Dedup_join
  | Dedup_replay
  | Shed
  | Handoff

let kind_label = function
  | Issue -> "issue"
  | Enqueue -> "enqueue"
  | Transmit -> "transmit"
  | Retransmit -> "retransmit"
  | Deliver -> "deliver"
  | Dispatch -> "dispatch"
  | Park -> "park"
  | Substitute -> "substitute"
  | Exec_begin -> "exec-begin"
  | Exec_end -> "exec-end"
  | Reply -> "reply"
  | Ack -> "ack"
  | Claim -> "claim"
  | Break -> "break"
  | Resubmit -> "resubmit"
  | Dedup_join -> "dedup-join"
  | Dedup_replay -> "dedup-replay"
  | Shed -> "shed"
  | Handoff -> "handoff"

(* One letter per kind for the Gantt rows. Mnemonic where possible;
   lifecycle pairs use upper/lower case (X/x = execute begin/end,
   T/t = transmit/retransmit). *)
let kind_letter = function
  | Issue -> 'I'
  | Enqueue -> 'Q'
  | Transmit -> 'T'
  | Retransmit -> 't'
  | Deliver -> 'D'
  | Dispatch -> 'd'
  | Park -> 'P'
  | Substitute -> 'S'
  | Exec_begin -> 'X'
  | Exec_end -> 'x'
  | Reply -> 'R'
  | Ack -> 'A'
  | Claim -> 'C'
  | Break -> 'B'
  | Resubmit -> 'r'
  | Dedup_join -> 'J'
  | Dedup_replay -> 'j'
  | Shed -> 'h'
  | Handoff -> 'H'

type event = {
  ev_time : float;
  ev_kind : kind;
  ev_trace : int;
  ev_node : int;
  ev_stream : string;
  ev_call : int;
  ev_note : string;
}

let dummy =
  { ev_time = 0.0; ev_kind = Issue; ev_trace = -1; ev_node = -1; ev_stream = ""; ev_call = -1; ev_note = "" }

(* Per-domain ring buffer (docs/DOMAINS.md): every domain that records
   gets its own ring, written without any lock, so offloaded handler
   bodies on pool worker domains never contend with the simulator
   domain's hot path. Each record carries a ticket from one shared
   atomic sequence; {!events} merges the rings in ticket order, which
   on a single domain is exactly insertion order — the pre-domain
   behaviour, byte for byte. *)
type ring = {
  mutable r_records : (event * int) array;  (* (event, global ticket) *)
  mutable r_next : int;
  mutable r_filled : bool;
}

type t = {
  capacity : int;
  mutable rings : ring option array;  (* index = domain id; grown under [rings_m] *)
  rings_m : Mutex.t;
  mutable on : bool;
  seq : int Atomic.t;  (* merge tickets *)
  trace_ctr : int Atomic.t;  (* monotonic, never reset — ids stay unique across restarts *)
  mutable sample_every : int;  (* 1-in-N trace sampling; 1 = record everything *)
}

let create ?(capacity = 16384) () =
  {
    capacity = max 1 capacity;
    rings = [||];
    rings_m = Mutex.create ();
    on = false;
    seq = Atomic.make 0;
    trace_ctr = Atomic.make 0;
    sample_every = 1;
  }

let enable t b = t.on <- b

let enabled t = t.on

let next_trace t = Atomic.fetch_and_add t.trace_ctr 1

let set_sampling t n =
  if n <= 0 then invalid_arg "Span.set_sampling: n must be positive";
  t.sample_every <- n

let sampling t = t.sample_every

(* Deterministic 1-in-N filter keyed on the trace id: every layer that
   sees the same call agrees on whether it is sampled, with no shared
   state beyond the id itself. Events without a trace id (trace < 0)
   only exist on already-sampled paths, so they pass. *)
let sampled t trace =
  t.on && (t.sample_every <= 1 || trace < 0 || trace mod t.sample_every = 0)

(* This domain's ring, creating (and growing the index array) on first
   use. A slot is only ever written by its own domain; the array itself
   is copied/replaced under the mutex, and a stale read of the old
   array still finds the same rings in the slots it covers. *)
let rec ring_for t =
  let d = (Domain.self () :> int) in
  let arr = t.rings in
  if d < Array.length arr then
    match arr.(d) with Some r -> r | None -> install t d
  else install t d

and install t d =
  Mutex.lock t.rings_m;
  let arr = t.rings in
  if d >= Array.length arr then begin
    let grown = Array.make (d + 8) None in
    Array.blit arr 0 grown 0 (Array.length arr);
    t.rings <- grown
  end;
  (match t.rings.(d) with
  | None ->
      t.rings.(d) <- Some { r_records = Array.make t.capacity (dummy, 0); r_next = 0; r_filled = false }
  | Some _ -> ());
  Mutex.unlock t.rings_m;
  ring_for t

let record t ~time ~kind ~trace ?(node = -1) ?(stream = "") ?(call = -1) ?(note = "") () =
  if sampled t trace then begin
    let r = ring_for t in
    let ticket = Atomic.fetch_and_add t.seq 1 in
    r.r_records.(r.r_next) <-
      ( {
          ev_time = time;
          ev_kind = kind;
          ev_trace = trace;
          ev_node = node;
          ev_stream = stream;
          ev_call = call;
          ev_note = note;
        },
        ticket );
    r.r_next <- (r.r_next + 1) mod t.capacity;
    if r.r_next = 0 then r.r_filled <- true
  end

let ring_events r =
  if not r.r_filled then Array.to_list (Array.sub r.r_records 0 r.r_next)
  else
    let cap = Array.length r.r_records in
    let older = Array.sub r.r_records r.r_next (cap - r.r_next) in
    let newer = Array.sub r.r_records 0 r.r_next in
    Array.to_list (Array.append older newer)

(* Merge every domain's ring in ticket order. Reading while another
   domain is still recording is safe but not linearizable — call it
   after the offloaded work has quiesced (experiments read after the
   run completes). *)
let events t =
  Mutex.lock t.rings_m;
  let rings = Array.to_list t.rings in
  Mutex.unlock t.rings_m;
  let all =
    List.concat_map (function None -> [] | Some r -> ring_events r) rings
  in
  List.sort (fun (_, s1) (_, s2) -> compare s1 s2) all |> List.map fst

let clear t =
  Mutex.lock t.rings_m;
  Array.iter
    (function
      | None -> ()
      | Some r ->
          r.r_next <- 0;
          r.r_filled <- false)
    t.rings;
  Mutex.unlock t.rings_m

let events_of t ~trace = List.filter (fun e -> e.ev_trace = trace) (events t)

(* Distinct trace ids in order of first appearance (the order calls
   were issued, ring truncation aside). *)
let trace_ids t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun e ->
      if e.ev_trace < 0 || Hashtbl.mem seen e.ev_trace then None
      else begin
        Hashtbl.replace seen e.ev_trace ();
        Some e.ev_trace
      end)
    (events t)

let has t ~trace kind = List.exists (fun e -> e.ev_kind = kind) (events_of t ~trace)

let pp_event ppf e =
  Format.fprintf ppf "[%12.6f] %-12s" e.ev_time (kind_label e.ev_kind);
  if e.ev_node >= 0 then Format.fprintf ppf " n%d" e.ev_node else Format.fprintf ppf " --";
  if e.ev_call >= 0 then Format.fprintf ppf " cid=%d" e.ev_call;
  if e.ev_stream <> "" then Format.fprintf ppf " %s" e.ev_stream;
  if e.ev_note <> "" then Format.fprintf ppf " (%s)" e.ev_note

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* The per-promise causal story: every event of one trace id, oldest
   first, with the delta to the previous event so waits stand out. *)
let timeline t ~trace =
  let evs = events_of t ~trace in
  let b = Buffer.create 256 in
  let stream =
    match List.find_opt (fun e -> e.ev_stream <> "") evs with
    | Some e -> Printf.sprintf "  stream %s" e.ev_stream
    | None -> ""
  in
  let call =
    match List.find_opt (fun e -> e.ev_call >= 0) evs with
    | Some e -> Printf.sprintf "  cid %d" e.ev_call
    | None -> ""
  in
  Buffer.add_string b (Printf.sprintf "trace %d%s%s\n" trace stream call);
  let prev = ref None in
  List.iter
    (fun e ->
      let delta =
        match !prev with
        | None -> String.make 12 ' '
        | Some p -> Printf.sprintf "+%9.6f  " (e.ev_time -. p)
      in
      prev := Some e.ev_time;
      Buffer.add_string b (Format.asprintf "  %s%a\n" delta pp_event e))
    evs;
  Buffer.contents b

(* Gantt-style text: one row per trace, grouped by sending stream,
   events placed on a shared time axis. '-' fills a trace's live
   interval; letters mark events (see {!kind_letter}). *)
let gantt ?(width = 64) t =
  let evs = events t in
  let b = Buffer.create 1024 in
  (match evs with
  | [] -> Buffer.add_string b "(no spans recorded)\n"
  | _ ->
      let tmin = List.fold_left (fun a e -> Float.min a e.ev_time) infinity evs in
      let tmax = List.fold_left (fun a e -> Float.max a e.ev_time) neg_infinity evs in
      let span = Float.max (tmax -. tmin) 1e-12 in
      let col time =
        let c = int_of_float (float_of_int (width - 1) *. ((time -. tmin) /. span)) in
        max 0 (min (width - 1) c)
      in
      (* trace -> stream it was issued on (first nonempty stream seen) *)
      let stream_of = Hashtbl.create 64 in
      List.iter
        (fun e ->
          if e.ev_trace >= 0 && e.ev_stream <> "" && not (Hashtbl.mem stream_of e.ev_trace)
          then Hashtbl.replace stream_of e.ev_trace e.ev_stream)
        evs;
      let ids = trace_ids t in
      let by_stream = Hashtbl.create 8 in
      let streams = ref [] in
      List.iter
        (fun id ->
          let s =
            match Hashtbl.find_opt stream_of id with Some s -> s | None -> "(no stream)"
          in
          if not (Hashtbl.mem by_stream s) then begin
            Hashtbl.replace by_stream s [];
            streams := s :: !streams
          end;
          Hashtbl.replace by_stream s (id :: Hashtbl.find by_stream s))
        ids;
      Buffer.add_string b
        (Printf.sprintf "time axis: %.6fs .. %.6fs (%d cols)\n" tmin tmax width);
      Buffer.add_string b
        "legend: I issue  Q enqueue  T transmit  t retransmit  D deliver  d dispatch\n";
      Buffer.add_string b
        "        P park  S substitute  X/x exec  R reply  A ack  C claim  B break  \
         r resubmit  J/j dedup join/replay  h shed  H handoff\n";
      List.iter
        (fun s ->
          Buffer.add_string b (Printf.sprintf "stream %s\n" s);
          List.iter
            (fun id ->
              let row = Bytes.make width ' ' in
              let tevs = events_of t ~trace:id in
              (match tevs with
              | [] -> ()
              | _ ->
                  let first = col (List.hd tevs).ev_time in
                  let last =
                    col (List.fold_left (fun a e -> Float.max a e.ev_time) neg_infinity tevs)
                  in
                  for i = first to last do
                    Bytes.set row i '-'
                  done;
                  List.iter
                    (fun e -> Bytes.set row (col e.ev_time) (kind_letter e.ev_kind))
                    tevs);
              Buffer.add_string b
                (Printf.sprintf "  t%-4d |%s|\n" id (Bytes.to_string row)))
            (List.rev (Hashtbl.find by_stream s)))
        (List.rev !streams));
  Buffer.contents b

let dump ppf t =
  List.iter (fun id -> Format.fprintf ppf "%s@." (timeline t ~trace:id)) (trace_ids t)

(* ------------------------------------------------------------------ *)
(* Two-run diff (docs/TRACING.md): which edges did one run take that
   the other did not? Events are compared as a multiset on their causal
   identity — kind, trace, node, stream, call — ignoring timestamps
   (two runs never agree on those) and notes (they embed depths and
   lane loads). Trace ids are allocated deterministically in issue
   order, so same-workload runs line up trace-for-trace. *)

type side = [ `Left | `Right ]

let diff_key e = (e.ev_kind, e.ev_trace, e.ev_node, e.ev_stream, e.ev_call)

(* Events of [main] not matched by an event of [other], in [main]'s
   order; multiplicity counts (three retransmits vs one leaves two). *)
let unmatched main other =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun e ->
      let k = diff_key e in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    other;
  List.filter
    (fun e ->
      let k = diff_key e in
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 ->
          Hashtbl.replace tbl k (n - 1);
          false
      | Some _ | None -> true)
    main

let diff a b =
  let ea = events a and eb = events b in
  List.map (fun e -> (`Left, e)) (unmatched ea eb)
  @ List.map (fun e -> (`Right, e)) (unmatched eb ea)

let pp_diff ppf entries =
  match entries with
  | [] -> Format.fprintf ppf "no differences: both runs took the same edges@."
  | _ ->
      List.iter
        (fun ((side : side), e) ->
          Format.fprintf ppf "%s %a@."
            (match side with `Left -> "left-only " | `Right -> "right-only")
            pp_event e)
        entries
