(* Counters are [Atomic.t] so offloaded handler bodies running on pool
   worker domains (docs/DOMAINS.md) can bump them concurrently with the
   simulator domain; on a single domain the atomic ops are equivalent
   to the old plain mutations, so deterministic runs are unchanged.
   Registration tables and summaries (which mutate several fields per
   observation) are guarded by a per-registry / per-summary mutex —
   uncontended in the pool-off case. *)

type counter = int Atomic.t

type summary = {
  s_m : Mutex.t;
  mutable samples : float list;
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sorted_cache : float array option;
}

type t = {
  t_m : Mutex.t;
  counters_tbl : (string, counter) Hashtbl.t;
  summaries_tbl : (string, summary) Hashtbl.t;
}

let locked m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

let create () =
  {
    t_m = Mutex.create ();
    counters_tbl = Hashtbl.create 16;
    summaries_tbl = Hashtbl.create 16;
  }

let counter t name =
  locked t.t_m (fun () ->
      match Hashtbl.find_opt t.counters_tbl name with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add t.counters_tbl name c;
          c)

let incr c = Atomic.incr c

let add c k = ignore (Atomic.fetch_and_add c k : int)

let count c = Atomic.get c

let peek t name =
  locked t.t_m (fun () ->
      match Hashtbl.find_opt t.counters_tbl name with
      | Some c -> Atomic.get c
      | None -> 0)

let fresh_summary () =
  {
    s_m = Mutex.create ();
    samples = [];
    count = 0;
    total = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    sorted_cache = None;
  }

let summary t name =
  locked t.t_m (fun () ->
      match Hashtbl.find_opt t.summaries_tbl name with
      | Some s -> s
      | None ->
          let s = fresh_summary () in
          Hashtbl.add t.summaries_tbl name s;
          s)

let observe s x =
  locked s.s_m (fun () ->
      s.samples <- x :: s.samples;
      s.count <- s.count + 1;
      s.total <- s.total +. x;
      if x < s.min_v then s.min_v <- x;
      if x > s.max_v then s.max_v <- x;
      s.sorted_cache <- None)

let n s = s.count

let mean s = if s.count = 0 then nan else s.total /. float_of_int s.count

let min_value s = if s.count = 0 then nan else s.min_v

let max_value s = if s.count = 0 then nan else s.max_v

let sorted s =
  locked s.s_m (fun () ->
      match s.sorted_cache with
      | Some a -> a
      | None ->
          let a = Array.of_list s.samples in
          Array.sort compare a;
          s.sorted_cache <- Some a;
          a)

let quantile s q =
  if s.count = 0 then nan
  else begin
    let a = sorted s in
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let idx = int_of_float (ceil (q *. float_of_int (Array.length a))) - 1 in
    let idx = if idx < 0 then 0 else idx in
    a.(idx)
  end

let counters t =
  locked t.t_m (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) t.counters_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summaries t =
  locked t.t_m (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.summaries_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  locked t.t_m (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) t.counters_tbl;
      Hashtbl.iter
        (fun _ s ->
          locked s.s_m (fun () ->
              s.samples <- [];
              s.count <- 0;
              s.total <- 0.0;
              s.min_v <- infinity;
              s.max_v <- neg_infinity;
              s.sorted_cache <- None))
        t.summaries_tbl)

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters t);
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%s: n=%d mean=%.6g min=%.6g p50=%.6g p99=%.6g max=%.6g@." name
        (n s) (mean s) (min_value s) (quantile s 0.5) (quantile s 0.99) (max_value s))
    (summaries t)
