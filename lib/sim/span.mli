(** Structured causal-trace events (spans) for call lifecycles.

    Where {!Trace} is a ring of free-form strings, a span store keeps
    {e typed} events — each tagged with a per-call trace id, the node
    that emitted it, and optionally the sending stream's stable id and
    stable call-id — so the full journey of one promise (issue →
    transmit → deliver → dispatch → execute → reply → ack → claim,
    docs/TRACING.md) can be reconstructed and rendered after a run.

    Recording is off by default; when disabled the store allocates no
    event buffer and {!record} costs one branch. Trace-id allocation
    ({!next_trace}) works even while disabled so ids stay stable when
    tracing is toggled mid-run.

    Domain-safe (docs/DOMAINS.md): each recording domain gets its own
    lock-free ring buffer, created on first use; {!events} merges the
    rings on a shared atomic ticket order. On a single domain that
    order {e is} insertion order, so deterministic runs render
    identically to the pre-domain store. *)

(** One lifecycle edge of a traced call. [Dispatch] notes the shard
    lane; [Park]/[Substitute] are the pipelining edges; [Break],
    [Resubmit], [Dedup_join] and [Dedup_replay] tell the
    exactly-once-across-incarnations story (docs/FAULTS.md). *)
type kind =
  | Issue  (** trace id allocated; call accepted by the sending stream *)
  | Enqueue  (** call item buffered into the out channel *)
  | Transmit  (** item left the sending node in a Data packet *)
  | Retransmit  (** item re-sent by the go-back-n timer *)
  | Deliver  (** item arrived (fresh, in order) at the receiving hub *)
  | Dispatch  (** call routed to an execution lane (note = lane) *)
  | Park  (** pipelined call waiting on a not-yet-produced outcome *)
  | Substitute  (** promise references replaced by produced values *)
  | Exec_begin  (** handler dispatch started *)
  | Exec_end  (** handler produced its outcome *)
  | Reply  (** reply item sent toward the caller *)
  | Ack  (** item acknowledged back to its sender *)
  | Claim  (** a claimant obtained the promise's outcome *)
  | Break  (** the call's stream broke while it was outstanding *)
  | Resubmit  (** call replayed on a new incarnation (same trace id) *)
  | Dedup_join  (** duplicate joined a still-running first execution *)
  | Dedup_replay  (** duplicate answered from the outcome cache *)
  | Shed  (** receiver rejected the call with [unavailable] under load
              (docs/OVERLOAD.md) *)
  | Handoff
      (** third-party handoff edge: the call (or its outcome) was
          forwarded toward the node that owns the pipelined result
          (docs/HANDOFF.md) *)

type event = {
  ev_time : float;
  ev_kind : kind;
  ev_trace : int;
  ev_node : int;  (** emitting node's address, [-1] if not node-bound *)
  ev_stream : string;  (** stable stream id ({!Wire.stable_stream_id}-shaped), [""] unknown *)
  ev_call : int;  (** stable call-id, [-1] unknown *)
  ev_note : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] keeps the last [capacity] events {e per
    recording domain} (default 16384). No buffer is allocated until a
    domain first records. *)

val enable : t -> bool -> unit

val enabled : t -> bool

val next_trace : t -> int
(** Allocate a fresh per-call trace id. Monotonic and never reset, so a
    resubmitted call keeps a globally unique id for its whole life. *)

val set_sampling : t -> int -> unit
(** [set_sampling t n] records only traces whose id satisfies
    [trace mod n = 0] — deterministic 1-in-N sampling so tracing stays
    affordable at fan-in scale (docs/TRACING.md). Sampled-out calls
    record nothing anywhere: the sending stream also omits the wire
    trace field for them, so the receiver stays silent too. [n = 1]
    (the default) records everything. Raises [Invalid_argument] on
    [n <= 0]. *)

val sampling : t -> int
(** The current 1-in-N sampling divisor. *)

val sampled : t -> int -> bool
(** [sampled t trace]: the store is enabled and [trace] passes the
    sampling filter. Events with no trace id ([trace < 0]) pass —
    they only arise on paths already gated by a sampled call. *)

val record :
  t ->
  time:float ->
  kind:kind ->
  trace:int ->
  ?node:int ->
  ?stream:string ->
  ?call:int ->
  ?note:string ->
  unit ->
  unit
(** Append an event when enabled and the trace is sampled; otherwise do
    nothing. *)

val events : t -> event list
(** All retained events, oldest first. *)

val events_of : t -> trace:int -> event list

val trace_ids : t -> int list
(** Distinct trace ids, in order of first retained event. *)

val has : t -> trace:int -> kind -> bool
(** Whether the trace has at least one event of this kind. *)

val clear : t -> unit

val kind_label : kind -> string

val kind_letter : kind -> char
(** The one-character Gantt mark for this kind. *)

val pp_event : Format.formatter -> event -> unit

val timeline : t -> trace:int -> string
(** The per-promise causal story: every event of one trace, oldest
    first, with inter-event deltas. *)

val gantt : ?width:int -> t -> string
(** Gantt-style text: one row per trace, grouped by sending stream, on
    a shared time axis (default 64 columns). *)

val dump : Format.formatter -> t -> unit
(** Every trace's {!timeline}, in first-appearance order. *)

(** {1 Two-run diff}

    Which edges did one run take that the other did not
    (docs/TRACING.md)? Because trace ids are allocated
    deterministically in issue order, two runs of the same workload
    line up trace-for-trace, and the diff of their span stores is the
    causal delta — e.g. the [break]/[resubmit]/[dedup-replay] edges
    only the chaos run took. *)

type side = [ `Left | `Right ]

val diff : t -> t -> (side * event) list
(** [diff a b] compares the two stores as multisets keyed on
    (kind, trace, node, stream, call) — timestamps and notes are
    ignored, multiplicity counts (three retransmits against one leaves
    two). Returns [a]'s unmatched events tagged [`Left] in [a]'s order,
    then [b]'s tagged [`Right]; empty iff the runs took identical
    edges. *)

val pp_diff : Format.formatter -> (side * event) list -> unit
