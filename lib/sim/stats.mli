(** Counters and summary statistics collected during a simulation run.

    Experiments report message counts, bytes on wire and latency
    distributions; this module is the common sink for all of them.

    Domain-safe (docs/DOMAINS.md): counters are atomic, registration
    and summaries are mutex-guarded, so offloaded handler bodies on
    pool worker domains may record concurrently with the simulator
    domain. Single-domain runs behave exactly as before. *)

type counter
(** Monotonic integer counter ([Atomic.t] underneath — safe to bump
    from any domain). *)

type summary
(** Streaming summary of float samples (count/mean/min/max plus the raw
    samples for exact quantiles — simulations are small enough that
    retaining samples is fine). *)

type t
(** A registry of named counters and summaries. *)

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] finds or creates the counter called [name]. *)

val incr : counter -> unit

val add : counter -> int -> unit

val count : counter -> int

val peek : t -> string -> int
(** [peek t name] reads the counter called [name] without creating it;
    0 when it was never registered. *)

val summary : t -> string -> summary
(** [summary t name] finds or creates the summary called [name]. *)

val observe : summary -> float -> unit

val n : summary -> int

val mean : summary -> float
(** Mean of the observed samples; [nan] when empty. *)

val min_value : summary -> float

val max_value : summary -> float

val quantile : summary -> float -> float
(** [quantile s q] with [q] in [\[0,1\]]; nearest-rank on the sorted
    samples; [nan] when empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val summaries : t -> (string * summary) list
(** All summaries, sorted by name. *)

val reset : t -> unit
(** Zero every counter and drop every sample, keeping registrations. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of the whole registry. *)
