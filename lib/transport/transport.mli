(** The transport seam (docs/TRANSPORT.md).

    `Chanhub` builds reliable ordered channels out of unreliable frame
    delivery; this interface is everything it needs from below — send
    an encoded frame to a node address, get frames delivered upward,
    hear about peers going away, and know the per-frame receive
    overhead to charge. Two backends implement it:

    - {!Transport_sim} wraps the simulated {!Net} byte-identically —
      every existing experiment and test runs through it unchanged;
    - {!Transport_tcp} runs the same frames, length-prefixed, over real
      Unix/TCP sockets and drives the scheduler in real time.

    A transport endpoint is a plain record of closures rather than a
    functor or first-class module: the stream layer stores one per hub
    and calls through it on the hot path, and a flat record keeps that
    call a single indirect jump. *)

type address = int
(** Node address. The sim backend uses {!Net.address} values; the TCP
    backend maps addresses to socket addresses through its address
    book. One address space per world, whichever backend carries it. *)

type frame = string
(** An encoded packet, opaque to the transport. The stream layer's
    codec ({!Chanhub}) produces it; byte counts for accounting and cost
    models are its [String.length]. *)

type t = {
  addr : address;  (** this endpoint's own address *)
  node_name : string;  (** human name for traces and errors *)
  backend : string;  (** ["sim"] or ["tcp"]; shown in E17 tables *)
  sched : Sched.Scheduler.t;  (** the scheduler delivering upcalls *)
  stats : Sim.Stats.t;
      (** byte/frame accounting: the sim backend exposes the network's
          registry ([msgs_sent], [bytes_sent], ...); the TCP backend
          maintains [transport_frames_sent], [transport_bytes_sent],
          [transport_frames_received], [transport_bytes_received]. *)
  send : dst:address -> frame -> unit;
      (** Fire-and-forget, never blocks, may silently drop (unreachable
          peer, mid-dial failure); the stream layer's retransmission
          recovers. Delivery order per (src, dst) pair is FIFO while
          the connection (or simulated link) lives. *)
  set_receiver : (src:address -> frame -> unit) -> unit;
      (** Install the upcall for frames addressed here. Always invoked
          in scheduler context; installing again replaces. *)
  set_peer_watch : (peer:address -> reason:string -> unit) -> unit;
      (** Install the connection-down upcall. The sim backend never
          fires it (the simulated net has no connections — loss and
          partitions surface as silence, crashes via {!Fault}); the TCP
          backend fires it in scheduler context when a connection to
          [peer] drops, so stream breaks map onto the existing
          break → supervision → resubmit path. *)
  recv_overhead : unit -> float;
      (** Seconds of kernel overhead the receive path should charge per
          frame. The sim backend reads the live {!Net.config} at call
          time (the fault layer mutates it mid-run); the TCP backend
          returns [0.0] — real costs are already real. *)
  realtime : bool;
      (** Whether this endpoint's scheduler runs on the wall clock
          ({!Sched.Scheduler.set_realtime_driver}). *)
  reliable : bool;
      (** Whether every sent frame is delivered exactly once, in
          per-(src, dst) FIFO order — no loss, duplication or
          reordering. Decided once at endpoint creation; stateful wire
          optimisations that need cross-frame agreement (the
          {!Chanhub} connection dictionary) are only negotiated on a
          reliable endpoint. TCP is reliable by construction; the sim
          backend is reliable iff its {!Net.config} injects no
          loss/duplication/jitter at creation time (a config later
          mutated into lossiness — the {!Fault} layer — must not be
          combined with dictionary-enabled hubs). *)
}

val account_send : t -> int -> unit
(** Bump [transport_frames_sent] / [transport_bytes_sent] in the
    endpoint's registry. Backends whose substrate does not already
    count (TCP) call this per outgoing frame. *)

val account_recv : t -> int -> unit
(** Bump [transport_frames_received] / [transport_bytes_received]. *)
