let endpoint net node =
  let recv = ref (fun ~src:_ _ -> ()) in
  Net.set_receiver net node (fun ~src frame -> !recv ~src frame);
  {
    Transport.addr = Net.address node;
    node_name = Net.node_name node;
    backend = "sim";
    sched = Net.sched net;
    stats = Net.stats net;
    send =
      (fun ~dst frame ->
        Net.send net ~src:node ~dst ~bytes_:(String.length frame) frame);
    set_receiver = (fun f -> recv := f);
    set_peer_watch = (fun _ -> ());
    recv_overhead = (fun () -> (Net.config net).Net.kernel_overhead);
    realtime = false;
    reliable =
      (let c = Net.config net in
       c.Net.loss_rate = 0.0 && c.Net.duplicate_rate = 0.0 && c.Net.jitter = 0.0);
  }
