(** The real backend: {!Transport.t} over Unix/TCP sockets
    (docs/TRANSPORT.md).

    A {!fabric} owns every socket one process uses: listeners, dialed
    and accepted connections, an address book mapping transport
    addresses to socket addresses, and a self-pipe. Creating a fabric
    attaches a real-time driver to the scheduler
    ({!Sched.Scheduler.set_realtime_driver}): the scheduler's idle
    waits become a [select] over the fabric's descriptors, received
    frames are delivered to endpoint receivers in scheduler context,
    and the clock is the wall clock (continuing from the scheduler's
    current time at {!create}).

    Wire format: each connection starts with an 8-byte hello —
    ["PRS1"] then the dialer's address, big-endian 32-bit — followed by
    frames as a big-endian 32-bit length prefix and that many payload
    bytes. Connections are dialed lazily on first send to a peer and
    reused in both directions (replies ride the accepted connection, so
    a pure client never listens). A connection error or EOF closes the
    connection and fires the affected endpoints' peer watch — the
    stream layer's break → supervision → resubmit machinery takes over,
    and the next send simply dials again.

    Sends to a peer with no address-book entry and no live connection
    are dropped silently, like a lossy network: go-back-n
    retransmission recovers once the peer is reachable. *)

type fabric

val create : Sched.Scheduler.t -> fabric
(** Make a fabric and attach its real-time driver to the scheduler.
    One fabric per scheduler; the driver stays attached until
    {!close}. *)

val sched : fabric -> Sched.Scheduler.t

val stats : fabric -> Sim.Stats.t
(** The fabric's own registry: [transport_frames_sent],
    [transport_bytes_sent], [transport_frames_received],
    [transport_bytes_received], [transport_conns_opened],
    [transport_conns_lost], [transport_dial_failures]. Every endpoint
    of the fabric shares it. *)

val endpoint : fabric -> addr:Transport.address -> ?name:string -> unit -> Transport.t
(** Create the endpoint for transport address [addr] on this fabric.
    Multiple endpoints per fabric are fine (and how a single-process
    test hosts both ends over real loopback sockets). *)

val set_peer : fabric -> addr:Transport.address -> Unix.sockaddr -> unit
(** Address-book entry: dial [addr] at this socket address. *)

val listen : fabric -> addr:Transport.address -> Unix.sockaddr -> Unix.sockaddr
(** Bind + listen for endpoint [addr]; returns the actually bound
    address (useful with port 0). Accepted connections deliver to
    [addr]'s endpoint. *)

val listen_loopback : fabric -> addr:Transport.address -> Unix.sockaddr
(** [listen fabric ~addr] on 127.0.0.1 with an ephemeral port. *)

val listen_fd : fabric -> addr:Transport.address -> Unix.file_descr -> unit
(** Adopt an already-listening socket (e.g. bound by a parent before
    [fork] so the child inherits it — examples/tcp_pingpong.ml). *)

val drop_peer_connections : fabric -> addr:Transport.address -> unit
(** Chaos hook: forcibly close every live connection to peer [addr],
    firing peer watches here and EOF at the other end — a mid-stream
    break for exactly-once tests. *)

val set_max_chunk : fabric -> int -> unit
(** Test hook: cap every [read]/[write] syscall at this many bytes
    (default 65536) to force partial reads and short writes through the
    framing layer. *)

val close : fabric -> unit
(** Close every socket, detach the real-time driver, and return the
    scheduler to virtual time. Idempotent. *)
