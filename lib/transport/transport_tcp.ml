module S = Sched.Scheduler

let hello_magic = "PRS1"

let hello_len = 8 (* magic + BE32 dialer address *)

let max_frame = 1 lsl 26 (* sanity bound; a corrupt length prefix must not OOM us *)

(* --- big-endian 32-bit helpers ------------------------------------ *)

let be32_get s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let be32_put n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

type ep = {
  e_addr : int;
  e_name : string;
  mutable e_recv : src:int -> string -> unit;
  mutable e_watch : peer:int -> reason:string -> unit;
}

type conn = {
  c_fd : Unix.file_descr;
  c_ep : ep; (* local endpoint this connection delivers to *)
  mutable c_peer : int; (* -1 on an accepted connection until its hello *)
  mutable c_racc : string; (* unparsed received bytes *)
  mutable c_wpend : string; (* queued unwritten bytes (short writes) *)
  mutable c_closed : bool;
}

type fabric = {
  f_sched : S.t;
  f_stats : Sim.Stats.t;
  f_eps : (int, ep) Hashtbl.t;
  f_book : (int, Unix.sockaddr) Hashtbl.t; (* address book for dialing *)
  mutable f_listeners : (Unix.file_descr * ep) list;
  mutable f_conns : conn list;
  f_wake_r : Unix.file_descr; (* self-pipe: inject/wakeup breaks select *)
  f_wake_w : Unix.file_descr;
  f_epoch : float; (* gettimeofday at create minus scheduler time then *)
  mutable f_max_chunk : int;
  mutable f_closed : bool;
}

let sched fab = fab.f_sched

let stats fab = fab.f_stats

let counter fab name = Sim.Stats.counter fab.f_stats name

(* --- connection lifecycle ----------------------------------------- *)

let conn_down fab c reason =
  if not c.c_closed then begin
    c.c_closed <- true;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    fab.f_conns <- List.filter (fun c' -> c' != c) fab.f_conns;
    Sim.Stats.incr (counter fab "transport_conns_lost");
    if c.c_peer >= 0 then c.c_ep.e_watch ~peer:c.c_peer ~reason
  end

let rec try_flush fab c =
  if (not c.c_closed) && c.c_wpend <> "" then begin
    let n = min (String.length c.c_wpend) fab.f_max_chunk in
    match Unix.write_substring c.c_fd c.c_wpend 0 n with
    | written ->
        c.c_wpend <- String.sub c.c_wpend written (String.length c.c_wpend - written);
        if written > 0 && c.c_wpend <> "" then try_flush fab c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        () (* kernel buffer full; select watches writability while c_wpend <> "" *)
    | exception Unix.Unix_error (e, _, _) ->
        conn_down fab c ("write: " ^ Unix.error_message e)
  end

let enqueue fab c payload =
  c.c_wpend <- c.c_wpend ^ payload;
  try_flush fab c

let find_conn fab ep dst =
  List.find_opt (fun c -> (not c.c_closed) && c.c_ep == ep && c.c_peer = dst) fab.f_conns

let dial fab ep dst =
  match Hashtbl.find_opt fab.f_book dst with
  | None -> None
  | Some sa -> (
      match Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ ->
          Sim.Stats.incr (counter fab "transport_dial_failures");
          None
      | fd -> (
          match
            (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
            (* Blocking connect: the intended targets are loopback /
               LAN listeners where this is instantaneous. *)
            Unix.connect fd sa;
            Unix.set_nonblock fd
          with
          | () ->
              let c =
                { c_fd = fd; c_ep = ep; c_peer = dst; c_racc = ""; c_wpend = ""; c_closed = false }
              in
              fab.f_conns <- c :: fab.f_conns;
              Sim.Stats.incr (counter fab "transport_conns_opened");
              enqueue fab c (hello_magic ^ be32_put ep.e_addr);
              Some c
          | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Sim.Stats.incr (counter fab "transport_dial_failures");
              None))

let send fab ep ~dst frame =
  if not fab.f_closed then
    let c =
      match find_conn fab ep dst with Some c -> Some c | None -> dial fab ep dst
    in
    match c with
    | None -> () (* unreachable peer: drop, like a lossy net; retransmit recovers *)
    | Some c ->
        Sim.Stats.incr (counter fab "transport_frames_sent");
        Sim.Stats.add (counter fab "transport_bytes_sent") (String.length frame);
        enqueue fab c (be32_put (String.length frame) ^ frame)

(* --- receive path -------------------------------------------------- *)

let rec parse fab c =
  if not c.c_closed then
    if c.c_peer < 0 then begin
      (* Accepted connection: first bytes must be the dialer's hello. *)
      if String.length c.c_racc >= hello_len then
        if String.sub c.c_racc 0 4 <> hello_magic then conn_down fab c "bad hello"
        else begin
          c.c_peer <- be32_get c.c_racc 4;
          c.c_racc <- String.sub c.c_racc hello_len (String.length c.c_racc - hello_len);
          parse fab c
        end
    end
    else begin
      let len = String.length c.c_racc in
      if len >= 4 then begin
        let flen = be32_get c.c_racc 0 in
        if flen > max_frame then conn_down fab c "oversized frame"
        else if len >= 4 + flen then begin
          let frame = String.sub c.c_racc 4 flen in
          c.c_racc <- String.sub c.c_racc (4 + flen) (len - 4 - flen);
          Sim.Stats.incr (counter fab "transport_frames_received");
          Sim.Stats.add (counter fab "transport_bytes_received") flen;
          c.c_ep.e_recv ~src:c.c_peer frame;
          parse fab c
        end
      end
    end

let handle_readable fab c =
  if not c.c_closed then begin
    let want = fab.f_max_chunk in
    let buf = Bytes.create want in
    match Unix.read c.c_fd buf 0 want with
    | 0 -> conn_down fab c "connection closed by peer"
    | n ->
        c.c_racc <- c.c_racc ^ Bytes.sub_string buf 0 n;
        parse fab c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> conn_down fab c ("read: " ^ Unix.error_message e)
  end

let accept_conn fab lfd ep =
  match Unix.accept lfd with
  | fd, _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Unix.set_nonblock fd;
      let c = { c_fd = fd; c_ep = ep; c_peer = -1; c_racc = ""; c_wpend = ""; c_closed = false } in
      fab.f_conns <- c :: fab.f_conns;
      Sim.Stats.incr (counter fab "transport_conns_opened")
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let drain_wake fab =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fab.f_wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* The scheduler's [rt_wait]: one select round over everything the
   fabric owns, delivering frames / accepting / flushing in scheduler
   context before returning to the run loop. *)
let service fab timeout =
  if not fab.f_closed then begin
    let rfds =
      fab.f_wake_r
      :: (List.map fst fab.f_listeners @ List.map (fun c -> c.c_fd) fab.f_conns)
    in
    let wfds = List.filter_map (fun c -> if c.c_wpend <> "" then Some c.c_fd else None) fab.f_conns in
    let tmo = match timeout with None -> -1.0 | Some d -> if d < 0.0 then 0.0 else d in
    match Unix.select rfds wfds [] tmo with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | r, w, _ ->
        if List.mem fab.f_wake_r r then drain_wake fab;
        List.iter
          (fun (lfd, ep) -> if List.mem lfd r then accept_conn fab lfd ep)
          fab.f_listeners;
        (* Snapshot: handlers may close connections and mutate f_conns. *)
        let conns = fab.f_conns in
        List.iter (fun c -> if List.mem c.c_fd w then try_flush fab c) conns;
        List.iter (fun c -> if (not c.c_closed) && List.mem c.c_fd r then handle_readable fab c) conns
  end

let wakeup fab =
  if not fab.f_closed then
    try ignore (Unix.write_substring fab.f_wake_w "!" 0 1 : int)
    with Unix.Unix_error _ -> () (* pipe full (wakeup already pending) or closing *)

(* --- construction -------------------------------------------------- *)

let create sched =
  (* A write to a connection the peer already closed must surface as
     EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let fab =
    {
      f_sched = sched;
      f_stats = Sim.Stats.create ();
      f_eps = Hashtbl.create 4;
      f_book = Hashtbl.create 4;
      f_listeners = [];
      f_conns = [];
      f_wake_r = wake_r;
      f_wake_w = wake_w;
      (* The wall clock continues from the scheduler's current time, so
         timers armed before the fabric existed stay meaningful. *)
      f_epoch = Unix.gettimeofday () -. S.now sched;
      f_max_chunk = 65536;
      f_closed = false;
    }
  in
  S.set_realtime_driver sched
    ~clock:(fun () -> Unix.gettimeofday () -. fab.f_epoch)
    ~wait:(fun tmo -> service fab tmo)
    ~wakeup:(fun () -> wakeup fab);
  fab

let endpoint fab ~addr ?name () =
  let name = match name with Some n -> n | None -> Printf.sprintf "tcp-%d" addr in
  let ep =
    {
      e_addr = addr;
      e_name = name;
      e_recv = (fun ~src:_ _ -> ());
      e_watch = (fun ~peer:_ ~reason:_ -> ());
    }
  in
  Hashtbl.replace fab.f_eps addr ep;
  {
    Transport.addr;
    node_name = name;
    backend = "tcp";
    sched = fab.f_sched;
    stats = fab.f_stats;
    send = (fun ~dst frame -> send fab ep ~dst frame);
    set_receiver = (fun f -> ep.e_recv <- f);
    set_peer_watch = (fun f -> ep.e_watch <- f);
    recv_overhead = (fun () -> 0.0);
    realtime = true;
    reliable = true;
  }

let set_peer fab ~addr sa = Hashtbl.replace fab.f_book addr sa

let ep_of fab addr =
  match Hashtbl.find_opt fab.f_eps addr with
  | Some ep -> ep
  | None -> invalid_arg (Printf.sprintf "Transport_tcp: no endpoint with address %d" addr)

let listen_fd fab ~addr fd =
  let ep = ep_of fab addr in
  Unix.set_nonblock fd;
  fab.f_listeners <- (fd, ep) :: fab.f_listeners

let listen fab ~addr sa =
  let ep = ep_of fab addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd sa;
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fab.f_listeners <- (fd, ep) :: fab.f_listeners;
  Unix.getsockname fd

let listen_loopback fab ~addr =
  listen fab ~addr (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))

let drop_peer_connections fab ~addr =
  let victims = List.filter (fun c -> c.c_peer = addr) fab.f_conns in
  List.iter (fun c -> conn_down fab c "connection forcibly closed") victims

let set_max_chunk fab n =
  if n <= 0 then invalid_arg "Transport_tcp.set_max_chunk: must be positive";
  fab.f_max_chunk <- n

let close fab =
  if not fab.f_closed then begin
    fab.f_closed <- true;
    S.clear_realtime_driver fab.f_sched;
    List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) fab.f_listeners;
    fab.f_listeners <- [];
    List.iter
      (fun c ->
        if not c.c_closed then begin
          c.c_closed <- true;
          try Unix.close c.c_fd with Unix.Unix_error _ -> ()
        end)
      fab.f_conns;
    fab.f_conns <- [];
    (try Unix.close fab.f_wake_r with Unix.Unix_error _ -> ());
    (try Unix.close fab.f_wake_w with Unix.Unix_error _ -> ())
  end
