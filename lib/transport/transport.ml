type address = int

type frame = string

type t = {
  addr : address;
  node_name : string;
  backend : string;
  sched : Sched.Scheduler.t;
  stats : Sim.Stats.t;
  send : dst:address -> frame -> unit;
  set_receiver : (src:address -> frame -> unit) -> unit;
  set_peer_watch : (peer:address -> reason:string -> unit) -> unit;
  recv_overhead : unit -> float;
  realtime : bool;
  reliable : bool;
}

let account_send t bytes =
  Sim.Stats.incr (Sim.Stats.counter t.stats "transport_frames_sent");
  Sim.Stats.add (Sim.Stats.counter t.stats "transport_bytes_sent") bytes

let account_recv t bytes =
  Sim.Stats.incr (Sim.Stats.counter t.stats "transport_frames_received");
  Sim.Stats.add (Sim.Stats.counter t.stats "transport_bytes_received") bytes
