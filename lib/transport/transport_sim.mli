(** The simulated backend: {!Transport.t} over {!Net}.

    A thin adapter — [send] is exactly the [Net.send] call `Chanhub`
    used to make (same [bytes_], same frame value), the receiver is the
    node's {!Net.set_receiver} upcall, and [recv_overhead] reads the
    live config's [kernel_overhead] at call time so fault-layer config
    mutations keep working. Byte counts, delivery order, loss, and
    virtual-time costs are identical to the pre-seam behavior; the
    regression in test/test_transport.ml holds E12's published figures
    to the digit. *)

val endpoint : Transport.frame Net.t -> Net.node -> Transport.t
(** [endpoint net node] wraps [node] as a transport endpoint. Installs
    the net receiver for [node]; frames arrive at whatever receiver the
    endpoint's [set_receiver] installed last. [set_peer_watch] is a
    no-op: the simulated net has no connections to lose. *)
