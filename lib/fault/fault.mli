(** Deterministic fault injection for the simulated network.

    A {e scenario} is a declarative schedule of fault actions on the
    scheduler clock — crash/recover nodes (by name), partition/heal
    pairs, and temporary loss or jitter bursts that mutate the live
    {!Net.config} and restore the baseline when they end. Scheduling a
    scenario before [S.run] makes the whole run — including every
    injected fault — reproducible from the scheduler seed alone; there
    is no wall-clock or hidden randomness anywhere in the layer.

    Applied actions are counted in the scheduler's {!Sim.Stats}
    ([fault_crashes], [fault_recoveries], [fault_partitions],
    [fault_heals], [fault_loss_bursts], [fault_jitter_bursts]) and each
    is recorded in its {!Sim.Trace}.

    Used by the chaos experiment (E7) and the supervision tests; see
    [docs/FAULTS.md]. *)

type action =
  | Crash of string  (** crash the node with this {!Net.node_name} *)
  | Recover of string
  | Partition of string * string  (** cut both directions between two nodes *)
  | Heal of string * string
  | Loss_burst of { rate : float; duration : float }
      (** set the network's loss rate to [rate] for [duration] seconds,
          then restore the rate in force when the burst began *)
  | Jitter_burst of { jitter : float; duration : float }
      (** likewise for the jitter knob *)

type step = { at : float; action : action }

type scenario = step list

val pp_action : Format.formatter -> action -> unit

val pp_step : Format.formatter -> step -> unit

val pp_scenario : Format.formatter -> scenario -> unit

type t
(** An injector bound to one network and its named nodes. *)

val create : 'msg Net.t -> nodes:Net.node list -> t
(** The injector can drive exactly the given nodes; referring to any
    other node name in a step raises [Invalid_argument] when the step
    fires. *)

val apply : t -> action -> unit
(** Apply one action now. *)

val schedule : t -> scenario -> unit
(** Register every step with the scheduler ({!Sched.Scheduler.at}).
    Call before (or during) [run]; steps in the past fire immediately
    per [at]'s clamping. Overlapping bursts of the same knob restore in
    completion order — the usual scenario keeps them disjoint. *)

val random_scenario :
  rng:Sim.Rng.t ->
  victims:string list ->
  ?pairs:(string * string) list ->
  horizon:float ->
  ?outages:int ->
  ?min_down:float ->
  ?max_down:float ->
  ?loss_bursts:int ->
  unit ->
  scenario
(** Generate a reproducible scenario for a run of [horizon] seconds:
    [outages] (default 4) sequential, non-overlapping outages — each
    either a crash of a random victim or, when [pairs] is non-empty
    (and a coin flip picks it), a partition of a random pair — with
    downtime drawn from [[min_down, max_down]] (defaults 0.05 s/0.5 s),
    all healed by [0.9 * horizon] so the tail of the run is fault-free;
    plus [loss_bursts] (default 0) short loss bursts at random times.
    Determinism comes from [rng]; split it off the scheduler's RNG (or
    seed it directly) for seed-reproducible chaos. *)
