module S = Sched.Scheduler

type action =
  | Crash of string
  | Recover of string
  | Partition of string * string
  | Heal of string * string
  | Loss_burst of { rate : float; duration : float }
  | Jitter_burst of { jitter : float; duration : float }

type step = { at : float; action : action }

type scenario = step list

let pp_action ppf = function
  | Crash n -> Format.fprintf ppf "crash %s" n
  | Recover n -> Format.fprintf ppf "recover %s" n
  | Partition (a, b) -> Format.fprintf ppf "partition %s|%s" a b
  | Heal (a, b) -> Format.fprintf ppf "heal %s|%s" a b
  | Loss_burst { rate; duration } -> Format.fprintf ppf "loss-burst %.2f for %.3fs" rate duration
  | Jitter_burst { jitter; duration } ->
      Format.fprintf ppf "jitter-burst %.4fs for %.3fs" jitter duration

let pp_step ppf { at; action } = Format.fprintf ppf "@[t=%.4f %a@]" at pp_action action

let pp_scenario ppf steps =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_step) steps

(* The injector is monomorphic in the network's message type: it closes
   over the handful of Net operations it drives, so one [t] works for
   any ['msg Net.t]. *)
type t = {
  f_sched : S.t;
  f_node : string -> Net.node;
  f_addr : string -> Net.address;
  f_crash : Net.node -> unit;
  f_recover : Net.node -> unit;
  f_partition : Net.address -> Net.address -> unit;
  f_heal : Net.address -> Net.address -> unit;
  f_update_config : (Net.config -> Net.config) -> unit;
}

let create net ~nodes =
  let tbl = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace tbl (Net.node_name n) n) nodes;
  let node name =
    match Hashtbl.find_opt tbl name with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Fault.create: unknown node %S" name)
  in
  {
    f_sched = Net.sched net;
    f_node = node;
    f_addr = (fun name -> Net.address (node name));
    f_crash = Net.crash net;
    f_recover = Net.recover net;
    f_partition = Net.partition net;
    f_heal = Net.heal net;
    f_update_config = Net.update_config net;
  }

let counter t name = Sim.Stats.counter (S.stats t.f_sched) name

let trace t fmt = Sim.Trace.recordf (S.trace t.f_sched) ~time:(S.now t.f_sched) fmt

let apply t action =
  trace t "fault: %a" pp_action action;
  match action with
  | Crash name ->
      Sim.Stats.incr (counter t "fault_crashes");
      t.f_crash (t.f_node name)
  | Recover name ->
      Sim.Stats.incr (counter t "fault_recoveries");
      t.f_recover (t.f_node name)
  | Partition (a, b) ->
      Sim.Stats.incr (counter t "fault_partitions");
      t.f_partition (t.f_addr a) (t.f_addr b)
  | Heal (a, b) ->
      Sim.Stats.incr (counter t "fault_heals");
      t.f_heal (t.f_addr a) (t.f_addr b)
  | Loss_burst { rate; duration } ->
      Sim.Stats.incr (counter t "fault_loss_bursts");
      let baseline = ref 0.0 in
      t.f_update_config (fun cfg ->
          baseline := cfg.Net.loss_rate;
          { cfg with Net.loss_rate = rate });
      S.after t.f_sched duration (fun () ->
          trace t "fault: loss-burst over, restore %.3f" !baseline;
          t.f_update_config (fun cfg -> { cfg with Net.loss_rate = !baseline }))
  | Jitter_burst { jitter; duration } ->
      Sim.Stats.incr (counter t "fault_jitter_bursts");
      let baseline = ref 0.0 in
      t.f_update_config (fun cfg ->
          baseline := cfg.Net.jitter;
          { cfg with Net.jitter });
      S.after t.f_sched duration (fun () ->
          trace t "fault: jitter-burst over, restore %.4f" !baseline;
          t.f_update_config (fun cfg -> { cfg with Net.jitter = !baseline }))

let schedule t scenario =
  List.iter
    (fun { at; action } ->
      if at < 0.0 then invalid_arg "Fault.schedule: negative step time";
      S.at t.f_sched at (fun () -> apply t action))
    scenario

(* Outages are laid out in sequential per-outage slots so they never
   overlap and every one heals before [0.95 * horizon] — the workload's
   tail is fault-free, giving supervisors room to converge so the
   invariant check measures recovery, not mid-outage state. *)
let random_scenario ~rng ~victims ?(pairs = []) ~horizon ?(outages = 4) ?(min_down = 0.05)
    ?(max_down = 0.5) ?(loss_bursts = 0) () =
  if victims = [] && pairs = [] then
    invalid_arg "Fault.random_scenario: no victims and no partition pairs";
  if outages < 0 || loss_bursts < 0 then invalid_arg "Fault.random_scenario: negative count";
  let t0 = 0.05 *. horizon in
  let t_end = 0.9 *. horizon in
  let span = if outages = 0 then 0.0 else (t_end -. t0) /. float_of_int outages in
  let outage_steps =
    List.concat
      (List.init outages (fun i ->
           let slot = t0 +. (float_of_int i *. span) in
           let start = slot +. Sim.Rng.float rng (0.3 *. span) in
           let down = min_down +. Sim.Rng.float rng (Float.max 1e-9 (max_down -. min_down)) in
           let stop = Float.min (start +. down) (slot +. (0.95 *. span)) in
           let use_partition = pairs <> [] && (victims = [] || Sim.Rng.bool rng) in
           if use_partition then begin
             let a, b = Sim.Rng.pick rng (Array.of_list pairs) in
             [ { at = start; action = Partition (a, b) }; { at = stop; action = Heal (a, b) } ]
           end
           else begin
             let v = Sim.Rng.pick rng (Array.of_list victims) in
             [ { at = start; action = Crash v }; { at = stop; action = Recover v } ]
           end))
  in
  let burst_steps =
    List.init loss_bursts (fun _ ->
        let at = t0 +. Sim.Rng.float rng (Float.max 1e-9 (t_end -. t0)) in
        let rate = 0.2 +. Sim.Rng.float rng 0.4 in
        let duration = Float.min (0.05 *. horizon) (Float.max min_down (0.02 *. horizon)) in
        { at; action = Loss_burst { rate; duration } })
  in
  List.sort (fun a b -> compare a.at b.at) (outage_steps @ burst_steps)
