(** Promise pipelining: the value-plumbing half of [docs/PIPELINE.md].

    A pipelined call carries {!Xdr.Pref} placeholders among its
    arguments — references to results of earlier calls that may not
    have completed yet. This module provides the receiver-side
    machinery that is independent of the stream layer:

    - {!refs}/{!has_refs} scan an argument tree for unresolved
      references;
    - {!substitute} replaces every reference with its produced value
      (projecting a named [Record] field when the reference asks for
      one);
    - {!Registry} is the bounded outcome store, keyed by (stable
      stream id, stable call-id), that produced outcomes land in and
      that parked dependent calls wait on.

    The registry is polymorphic in the outcome type so this library
    sits below the stream layer: [Cstream.Target] instantiates it at
    [Wire.routcome]. *)

val refs : Xdr.value -> Xdr.promise_ref list
(** All promise references in the tree, first-occurrence order,
    duplicates removed. [[]] for ordinary argument values. *)

val has_refs : Xdr.value -> bool

val project : field:string option -> Xdr.value -> (Xdr.value, string) result
(** Apply a reference's field selector to a produced value: [None]
    returns the value itself; [Some f] requires a [Record] with a
    field [f] and returns that field's value. *)

val project_view : field:string option -> Xdr.View.t -> (Xdr.value, string) result
(** {!project} against a still-encoded outcome: [Some f] decodes only
    the selected field's slice ({!Xdr.View.record_field} — earlier
    fields are skipped by structure, later ones never scanned); [None]
    materializes the whole slice. Same error messages as {!project}. *)

val substitute :
  lookup:(Xdr.promise_ref -> (Xdr.value, string) result) ->
  Xdr.value ->
  (Xdr.value, string) result
(** Replace every {!Xdr.Pref} leaf using [lookup] (which receives the
    reference {e including} its field selector and must perform the
    projection, typically via {!project}). The first lookup error
    aborts the substitution. *)

(** Bounded outcome registry with parked waiters.

    [record] is called for every completed call; [await] is how a
    dependent call parks until the outcome it references lands. Both
    sides are bounded: completed outcomes are evicted beyond [cap] —
    preferring outcomes whose reply was acknowledged back to the
    producer stream ({!mark_releasable}: no live stream can still
    reference them), then FIFO age — and at most [max_waiters]
    callbacks may be parked at once
    (beyond that {!await} refuses, and the caller fails the dependent
    call instead of queueing without limit). A parked waiter holds its
    slot until it fires or is {!cancel}led — callers that abandon a
    parked call (a dead connection, a partially registered dependency
    set) must cancel, or abandoned entries leak slots until the table
    refuses all comers. *)
module Registry : sig
  type 'o t

  type waiter
  (** Handle on one parked callback, for {!cancel}. *)

  val create :
    ?cap:int ->
    ?max_waiters:int ->
    ?max_bytes:int ->
    ?bytes_of:('o -> int) ->
    ?on_evict:(bytes:int -> unit) ->
    unit ->
    'o t
  (** [cap] (default 1024) bounds remembered outcomes; [max_waiters]
      (default 4096) bounds parked callbacks.

      [max_bytes] (default unbounded) is a byte budget alongside the
      count cap: outcomes are sized by [bytes_of] (default [fun _ -> 0],
      i.e. budget off) when recorded, and the same FIFO eviction runs
      while the remembered total exceeds the budget. The stream layer
      passes the encoded wire size ({!Xdr.Bin}) so a few bulky results
      cannot pin the registry's memory the way the count cap alone
      would allow. [on_evict] fires once per evicted outcome with its
      recorded size (used to feed the [registry_bytes_evicted]
      counter). *)

  val record : 'o t -> stream:string -> call:int -> 'o -> unit
  (** Store the outcome of (stream, call) and fire any waiters parked
      on it. A second record for the same key is ignored — an outcome
      never changes (dedup replays re-record the same value). *)

  val find : 'o t -> stream:string -> call:int -> 'o option

  val await :
    'o t -> stream:string -> call:int -> ('o -> unit) -> [ `Fired | `Parked of waiter | `Refused ]
  (** Park [k] until (stream, call) has an outcome. [`Fired]: the
      outcome was already present and [k] ran synchronously.
      [`Parked w]: [k] will run when the outcome lands, unless
      [cancel w] first. [`Refused]: the waiter table is full; nothing
      was parked. *)

  val cancel : 'o t -> waiter -> unit
  (** Release a parked waiter's slot without firing it. A no-op if the
      waiter already fired (or was cancelled before). *)

  val mark_releasable : 'o t -> stream:string -> call:int -> unit
  (** Declare that no live stream can still reference (stream, call) —
      the receiver saw the cumulative ack covering its reply item — so
      its outcome is a {e preferred} eviction victim. Eviction still
      only runs when a budget ([cap] / [max_bytes]) is exceeded; acked
      outcomes are simply chosen before un-acked FIFO victims. A no-op
      for unknown keys. *)

  val acked_evictions : 'o t -> int
  (** How many evictions chose an acked ({!mark_releasable}) victim
      rather than falling back to FIFO age. *)

  val evicted : 'o t -> stream:string -> call:int -> bool
  (** Whether (stream, call) is absent {e and} at or below the highest
      call id evicted from this stream's remembered outcomes — i.e. its
      outcome was plausibly recorded once and has been forgotten, so an
      [await] would never fire. Callers should fail such references
      instead of parking. (With out-of-order recording a still-running
      call below the eviction mark is indistinguishable from an evicted
      one; the conservative answer is still to fail.) *)

  val add_scope : 'o t -> string -> unit
  (** Declare a producer namespace (for the stream layer: a port-group
      name of the owning guardian) whose outcomes land in this
      registry. *)

  val in_scope : 'o t -> string -> bool
  (** Whether a namespace was declared via {!add_scope}. References to
      producers outside every declared scope can never resolve here and
      should be failed rather than parked. *)

  val mark_foreign : 'o t -> stream:string -> call:int -> unit
  (** Declare (stream, call) {e foreign-owned} (docs/HANDOFF.md): its
      outcome will be produced on another node and pushed into this
      registry over a third-party stream, so waiters may park on it
      even though no local producer feeds the key. The mark is cleared
      when the outcome is {!record}ed. *)

  val is_foreign : 'o t -> stream:string -> call:int -> bool

  val known : 'o t -> int
  (** Outcomes currently remembered. *)

  val bytes : 'o t -> int
  (** Total [bytes_of] size of the remembered outcomes. *)

  val waiting : 'o t -> int
  (** Callbacks currently parked. *)
end
