let rec fold_refs acc v =
  match v with
  | Xdr.Unit | Xdr.Bool _ | Xdr.Int _ | Xdr.Real _ | Xdr.Str _ -> acc
  | Xdr.Pref r -> if List.exists (fun r' -> r' = r) acc then acc else r :: acc
  | Xdr.Pair (a, b) -> fold_refs (fold_refs acc a) b
  | Xdr.List vs -> List.fold_left fold_refs acc vs
  | Xdr.Record fields -> List.fold_left (fun acc (_, v) -> fold_refs acc v) acc fields
  | Xdr.Tagged (_, v) -> fold_refs acc v

let refs v = List.rev (fold_refs [] v)

let rec has_refs = function
  | Xdr.Unit | Xdr.Bool _ | Xdr.Int _ | Xdr.Real _ | Xdr.Str _ -> false
  | Xdr.Pref _ -> true
  | Xdr.Pair (a, b) -> has_refs a || has_refs b
  | Xdr.List vs -> List.exists has_refs vs
  | Xdr.Record fields -> List.exists (fun (_, v) -> has_refs v) fields
  | Xdr.Tagged (_, v) -> has_refs v

let project ~field v =
  match field with
  | None -> Ok v
  | Some f -> (
      match v with
      | Xdr.Record fields -> (
          match List.assoc_opt f fields with
          | Some fv -> Ok fv
          | None -> Error (Printf.sprintf "produced record has no field %S" f))
      | other ->
          Error
            (Format.asprintf "field selector %S applied to non-record result %a" f Xdr.pp_value
               other))

(* Same contract as {!project}, against an encoded outcome: with a
   field selector only the selected field's slice is decoded — earlier
   fields are skipped by structure, later ones never scanned. *)
let project_view ~field vw =
  match field with
  | None -> Xdr.View.materialize vw
  | Some f -> (
      match Xdr.View.shape vw with
      | Xdr.View.Vrecord -> (
          match Xdr.View.record_field vw f with
          | Ok (Some fv) -> Xdr.View.materialize fv
          | Ok None -> Error (Printf.sprintf "produced record has no field %S" f)
          | Error e -> Error e)
      | _ -> (
          (* Decode only to render the error — this is the failure
             path, never the projection itself. *)
          match Xdr.View.materialize vw with
          | Ok other ->
              Error
                (Format.asprintf "field selector %S applied to non-record result %a" f
                   Xdr.pp_value other)
          | Error e -> Error e))

let ( let* ) = Result.bind

let rec substitute ~lookup v =
  match v with
  | Xdr.Unit | Xdr.Bool _ | Xdr.Int _ | Xdr.Real _ | Xdr.Str _ -> Ok v
  | Xdr.Pref r -> lookup r
  | Xdr.Pair (a, b) ->
      let* a = substitute ~lookup a in
      let* b = substitute ~lookup b in
      Ok (Xdr.Pair (a, b))
  | Xdr.List vs ->
      let* vs = subst_list ~lookup vs in
      Ok (Xdr.List vs)
  | Xdr.Record fields ->
      let rec go acc = function
        | [] -> Ok (Xdr.Record (List.rev acc))
        | (name, fv) :: rest ->
            let* fv = substitute ~lookup fv in
            go ((name, fv) :: acc) rest
      in
      go [] fields
  | Xdr.Tagged (tag, tv) ->
      let* tv = substitute ~lookup tv in
      Ok (Xdr.Tagged (tag, tv))

and subst_list ~lookup = function
  | [] -> Ok []
  | v :: rest ->
      let* v = substitute ~lookup v in
      let* rest = subst_list ~lookup rest in
      Ok (v :: rest)

module Registry = struct
  type waiter = { w_key : string * int; w_id : int }

  type 'o t = {
    cap : int;
    max_waiters : int;
    max_bytes : int;
    bytes_of : 'o -> int;
    on_evict : bytes:int -> unit;
    done_ : (string * int, 'o * int) Hashtbl.t;  (* outcome, encoded size *)
    done_order : (string * int) Queue.t;
    mutable done_count : int;
    mutable byte_count : int;
    waiters : (string * int, (int * ('o -> unit)) list) Hashtbl.t;
    mutable waiter_count : int;
    mutable next_waiter : int;
    (* highest call id evicted from [done_], per stream: a missing key
       at or below this mark was (plausibly) completed and forgotten,
       so parking on it would never return. *)
    evicted_hwm : (string, int) Hashtbl.t;
    scopes : (string, unit) Hashtbl.t;
    (* Ack-tied release (docs/PIPELINE.md): outcomes whose reply item
       was cumulatively acked — no live stream can retransmit a
       reference to them — queued as preferred eviction victims, with
       [released] deduplicating marks. Lazy deletion: either queue may
       hold keys that already left [done_] through the other. *)
    releasable : (string * int) Queue.t;
    released : (string * int, unit) Hashtbl.t;
    mutable acked_evictions : int;
    (* Foreign-owned entries (docs/HANDOFF.md): the outcome will be
       produced on another node and pushed here over a third-party
       stream. Waiters may park on such keys even though no local
       producer stream feeds them; the mark is cleared when the pushed
       outcome is recorded. *)
    foreign : (string * int, unit) Hashtbl.t;
  }

  let create ?(cap = 1024) ?(max_waiters = 4096) ?(max_bytes = max_int)
      ?(bytes_of = fun _ -> 0) ?(on_evict = fun ~bytes:_ -> ()) () =
    {
      cap;
      max_waiters;
      max_bytes;
      bytes_of;
      on_evict;
      done_ = Hashtbl.create 64;
      done_order = Queue.create ();
      done_count = 0;
      byte_count = 0;
      waiters = Hashtbl.create 16;
      waiter_count = 0;
      next_waiter = 0;
      evicted_hwm = Hashtbl.create 8;
      scopes = Hashtbl.create 8;
      releasable = Queue.create ();
      released = Hashtbl.create 64;
      acked_evictions = 0;
      foreign = Hashtbl.create 8;
    }

  let known t = t.done_count

  let bytes t = t.byte_count

  let waiting t = t.waiter_count

  let find t ~stream ~call = Option.map fst (Hashtbl.find_opt t.done_ (stream, call))

  let add_scope t name = Hashtbl.replace t.scopes name ()

  let in_scope t name = Hashtbl.mem t.scopes name

  let mark_foreign t ~stream ~call = Hashtbl.replace t.foreign (stream, call) ()

  let is_foreign t ~stream ~call = Hashtbl.mem t.foreign (stream, call)

  let evicted t ~stream ~call =
    (not (Hashtbl.mem t.done_ (stream, call)))
    &&
    match Hashtbl.find_opt t.evicted_hwm stream with
    | Some hwm -> call <= hwm
    | None -> false

  let acked_evictions t = t.acked_evictions

  let mark_releasable t ~stream ~call =
    let key = (stream, call) in
    if Hashtbl.mem t.done_ key && not (Hashtbl.mem t.released key) then begin
      Hashtbl.replace t.released key ();
      Queue.push key t.releasable
    end

  (* Pick the eviction victim: prefer an outcome whose reply ack proved
     no live stream can still reference it ({!mark_releasable}) over
     pure FIFO age. Stale keys — already gone from [done_] via the
     other queue — are skipped. Termination: the caller only evicts
     while [done_count > 0], and every live key sits in [done_order]. *)
  let rec pop_victim t =
    match Queue.take_opt t.releasable with
    | Some key ->
        Hashtbl.remove t.released key;
        if Hashtbl.mem t.done_ key then begin
          t.acked_evictions <- t.acked_evictions + 1;
          key
        end
        else pop_victim t
    | None ->
        let key = Queue.pop t.done_order in
        if Hashtbl.mem t.done_ key then key else pop_victim t

  let evict_one t =
    let (vstream, vcall) as victim = pop_victim t in
    let vbytes = match Hashtbl.find_opt t.done_ victim with Some (_, b) -> b | None -> 0 in
    Hashtbl.remove t.done_ victim;
    (match Hashtbl.find_opt t.evicted_hwm vstream with
    | Some hwm when hwm >= vcall -> ()
    | Some _ | None -> Hashtbl.replace t.evicted_hwm vstream vcall);
    t.done_count <- t.done_count - 1;
    t.byte_count <- t.byte_count - vbytes;
    t.on_evict ~bytes:vbytes

  let record t ~stream ~call outcome =
    let key = (stream, call) in
    Hashtbl.remove t.foreign key;
    if not (Hashtbl.mem t.done_ key) then begin
      let size = t.bytes_of outcome in
      Hashtbl.replace t.done_ key (outcome, size);
      Queue.push key t.done_order;
      t.done_count <- t.done_count + 1;
      t.byte_count <- t.byte_count + size;
      (* Two budgets, one FIFO: whichever is exhausted first drives
         eviction. An oversized outcome can evict everything including
         itself — its waiters below still fire with the value in hand;
         only later dependents see it as evicted and fail fast. *)
      while t.done_count > t.cap || (t.byte_count > t.max_bytes && t.done_count > 0) do
        evict_one t
      done
    end;
    match Hashtbl.find_opt t.waiters key with
    | None -> ()
    | Some ks ->
        Hashtbl.remove t.waiters key;
        t.waiter_count <- t.waiter_count - List.length ks;
        List.iter (fun (_, k) -> k outcome) (List.rev ks)

  let await t ~stream ~call k =
    let key = (stream, call) in
    match Hashtbl.find_opt t.done_ key with
    | Some (o, _) ->
        k o;
        `Fired
    | None ->
        if t.waiter_count >= t.max_waiters then `Refused
        else begin
          let id = t.next_waiter in
          t.next_waiter <- id + 1;
          let existing = Option.value ~default:[] (Hashtbl.find_opt t.waiters key) in
          Hashtbl.replace t.waiters key ((id, k) :: existing);
          t.waiter_count <- t.waiter_count + 1;
          `Parked { w_key = key; w_id = id }
        end

  let cancel t w =
    match Hashtbl.find_opt t.waiters w.w_key with
    | None -> ()
    | Some ks ->
        let ks' = List.filter (fun (id, _) -> id <> w.w_id) ks in
        if List.length ks' < List.length ks then begin
          t.waiter_count <- t.waiter_count - 1;
          if ks' = [] then Hashtbl.remove t.waiters w.w_key
          else Hashtbl.replace t.waiters w.w_key ks'
        end
end
