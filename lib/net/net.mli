(** Simulated network of nodes.

    The paper's evaluation substrate was a physical network; here it is
    a deterministic discrete-event model with the cost knobs the
    paper's claims depend on:

    - a fixed {e kernel overhead} per message at each end — the cost
      that call-streams amortise by buffering several calls per
      message (§2);
    - a {e per-byte} transmission cost and a {e propagation latency};
    - optional loss and duplication (exercised by the reliable channel
      layer), partitions and node crashes (the sources of stream
      breaks).

    Payloads are polymorphic: a network instance carries one message
    type chosen by its user (the call-stream layer). *)

type 'msg t
(** A network carrying messages of type ['msg]. *)

type node
(** A node (one machine); entities/guardians live on nodes. *)

type address = int
(** Stable node identifier, assigned at {!add_node}. *)

type config = {
  kernel_overhead : float;
      (** seconds of overhead charged per message at the sending side
          and again at the receiving side *)
  wire_latency : float;  (** propagation delay, seconds *)
  per_byte : float;  (** transmission seconds per payload byte *)
  loss_rate : float;  (** probability a message is silently dropped *)
  duplicate_rate : float;  (** probability a message is delivered twice *)
  jitter : float;  (** uniform extra delay in [0, jitter) seconds *)
}

val default_config : config
(** LAN-ish defaults: 50 us kernel overhead, 1 ms latency, 1 us/byte,
    no loss, no duplication, no jitter. *)

val lossy : ?loss:float -> ?dup:float -> config -> config
(** Convenience for deriving a faulty variant of a config. *)

val create : Sched.Scheduler.t -> config -> 'msg t
(** Make a network driven by the given scheduler's clock. Loss,
    duplication and jitter draw from an RNG split off the scheduler's. *)

val sched : 'msg t -> Sched.Scheduler.t

val stats : 'msg t -> Sim.Stats.t
(** Counters maintained per network: [msgs_sent], [msgs_delivered],
    [msgs_lost], [msgs_duplicated], [msgs_dropped_crash],
    [msgs_dropped_partition], [bytes_sent], [bytes_delivered];
    summaries [delivery_delay] and [msg_bytes] (per-message wire
    size, for packets-per-call style analyses). *)

val config : 'msg t -> config
(** The network's current cost/fault knobs. The config is {e live}: the
    fault layer mutates it mid-run (loss and jitter bursts), and every
    send reads the values in force at send time. *)

val set_config : 'msg t -> config -> unit

val update_config : 'msg t -> (config -> config) -> unit
(** [update_config t f] replaces the config with [f (config t)] —
    used by {!Fault} for loss/jitter bursts that later restore the
    baseline. *)

(** {1 Nodes} *)

val add_node : 'msg t -> name:string -> node

val address : node -> address

val node_name : node -> string

val set_receiver : 'msg t -> node -> (src:address -> 'msg -> unit) -> unit
(** Install the upcall invoked (in scheduler context) when a message is
    delivered to this node. Installing again replaces the previous
    receiver. *)

val find_node : 'msg t -> address -> node option

(** {1 Sending} *)

val send : 'msg t -> src:node -> dst:address -> bytes_:int -> 'msg -> unit
(** Fire-and-forget transmission. The message is delivered to the
    destination's receiver after [2 * kernel_overhead + wire_latency +
    per_byte * bytes_ (+ jitter)], unless it is lost, a crash or
    partition intervenes, or either node is crashed now. [send] never
    blocks; CPU costs are charged by the caller if desired (see
    {!send_cost}). *)

val send_cost : config -> bytes_:int -> float
(** The sender-side cost of one message: [kernel_overhead + per_byte *
    bytes_]. The stream layer charges this to whoever triggers the
    transmission (the calling fiber for an RPC, the background flusher
    for buffered stream calls) — that asymmetry is the amortisation
    the paper describes. *)

(** {1 Failures} *)

val crash : 'msg t -> node -> unit
(** Stop the node: messages from or to it are dropped from now on;
    in-flight messages to it are dropped at delivery time. *)

val recover : 'msg t -> node -> unit

val crashed : node -> bool

val partition : 'msg t -> address -> address -> unit
(** Block traffic in both directions between two nodes. *)

val heal : 'msg t -> address -> address -> unit

val partitioned : 'msg t -> address -> address -> bool
