module S = Sched.Scheduler

type address = int

type config = {
  kernel_overhead : float;
  wire_latency : float;
  per_byte : float;
  loss_rate : float;
  duplicate_rate : float;
  jitter : float;
}

let default_config =
  {
    kernel_overhead = 50e-6;
    wire_latency = 1e-3;
    per_byte = 1e-6;
    loss_rate = 0.0;
    duplicate_rate = 0.0;
    jitter = 0.0;
  }

let lossy ?(loss = 0.05) ?(dup = 0.0) config =
  { config with loss_rate = loss; duplicate_rate = dup }

type node = { addr : address; nname : string; mutable is_crashed : bool }

type 'msg t = {
  net_sched : S.t;
  mutable cfg : config;
  net_rng : Sim.Rng.t;
  net_stats : Sim.Stats.t;
  nodes : (address, node) Hashtbl.t;
  receivers : (address, src:address -> 'msg -> unit) Hashtbl.t;
  mutable next_addr : int;
  blocked : (address * address, unit) Hashtbl.t;
  (* Links are FIFO (like a real transport): per ordered (src, dst)
     pair, delivery times never decrease, so a small message cannot
     overtake a large one sent earlier. *)
  last_delivery : (address * address, float) Hashtbl.t;
}

let create sched cfg =
  {
    net_sched = sched;
    cfg;
    net_rng = Sim.Rng.split (S.rng sched);
    net_stats = Sim.Stats.create ();
    nodes = Hashtbl.create 8;
    receivers = Hashtbl.create 8;
    next_addr = 0;
    blocked = Hashtbl.create 8;
    last_delivery = Hashtbl.create 8;
  }

let sched t = t.net_sched

let stats t = t.net_stats

let config t = t.cfg

let set_config t cfg = t.cfg <- cfg

let update_config t f = t.cfg <- f t.cfg

let add_node t ~name =
  let n = { addr = t.next_addr; nname = name; is_crashed = false } in
  t.next_addr <- t.next_addr + 1;
  Hashtbl.add t.nodes n.addr n;
  n

let address n = n.addr

let node_name n = n.nname

let find_node t addr = Hashtbl.find_opt t.nodes addr

let set_receiver t node f =
  if not (Hashtbl.mem t.nodes node.addr) then
    invalid_arg "Net.set_receiver: node not in this network";
  Hashtbl.replace t.receivers node.addr f

let pair_key a b = if a < b then (a, b) else (b, a)

let partitioned t a b = Hashtbl.mem t.blocked (pair_key a b)

let partition t a b = Hashtbl.replace t.blocked (pair_key a b) ()

let heal t a b = Hashtbl.remove t.blocked (pair_key a b)

let crash _t node = node.is_crashed <- true

let recover _t node = node.is_crashed <- false

let crashed node = node.is_crashed

let send_cost cfg ~bytes_ = cfg.kernel_overhead +. (cfg.per_byte *. float_of_int bytes_)

let counter t name = Sim.Stats.counter t.net_stats name

let deliver t ~src ~dst ~bytes_ msg sent_at =
  match find_node t dst with
  | Some n when n.is_crashed -> Sim.Stats.incr (counter t "msgs_dropped_crash")
  | None -> Sim.Stats.incr (counter t "msgs_dropped_no_receiver")
  | Some _ -> (
      match Hashtbl.find_opt t.receivers dst with
      | None -> Sim.Stats.incr (counter t "msgs_dropped_no_receiver")
      | Some f ->
          Sim.Stats.incr (counter t "msgs_delivered");
          Sim.Stats.add (counter t "bytes_delivered") bytes_;
          Sim.Stats.observe
            (Sim.Stats.summary t.net_stats "delivery_delay")
            (S.now t.net_sched -. sent_at);
          f ~src msg)

let send t ~src ~dst ~bytes_ msg =
  Sim.Stats.incr (counter t "msgs_sent");
  Sim.Stats.add (counter t "bytes_sent") bytes_;
  Sim.Stats.observe (Sim.Stats.summary t.net_stats "msg_bytes") (float_of_int bytes_);
  if src.is_crashed then Sim.Stats.incr (counter t "msgs_dropped_crash")
  else if partitioned t src.addr dst then Sim.Stats.incr (counter t "msgs_dropped_partition")
  else if Sim.Rng.chance t.net_rng t.cfg.loss_rate then Sim.Stats.incr (counter t "msgs_lost")
  else begin
    let sent_at = S.now t.net_sched in
    let schedule_delivery () =
      let delay =
        (2.0 *. t.cfg.kernel_overhead)
        +. t.cfg.wire_latency
        +. (t.cfg.per_byte *. float_of_int bytes_)
        +. (if t.cfg.jitter > 0.0 then Sim.Rng.float t.net_rng t.cfg.jitter else 0.0)
      in
      let arrival =
        let earliest =
          match Hashtbl.find_opt t.last_delivery (src.addr, dst) with
          | Some last -> Float.max (sent_at +. delay) last
          | None -> sent_at +. delay
        in
        Hashtbl.replace t.last_delivery (src.addr, dst) earliest;
        earliest
      in
      S.at t.net_sched arrival (fun () ->
          (* A partition that appears while the message is in flight
             loses it. *)
          if partitioned t src.addr dst then
            Sim.Stats.incr (counter t "msgs_dropped_partition")
          else deliver t ~src:src.addr ~dst ~bytes_ msg sent_at)
    in
    schedule_delivery ();
    if Sim.Rng.chance t.net_rng t.cfg.duplicate_rate then begin
      Sim.Stats.incr (counter t "msgs_duplicated");
      schedule_delivery ()
    end
  end
