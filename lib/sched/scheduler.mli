(** Cooperative fiber scheduler over virtual (simulated) time.

    This is the process machinery the paper assumes from the Argus
    runtime: many lightweight processes per entity, groups of processes
    that can be terminated together (the basis of [coenter]), critical
    sections that delay termination ("wounding", §4.2 of the paper),
    and a virtual clock so experiments measure deterministic simulated
    time rather than wall-clock noise.

    Everything runs on a single OS thread. Fibers are implemented with
    OCaml 5 effect handlers; suspension points are explicit ({!suspend},
    {!yield}, {!sleep} and the synchronisation modules built on them).
    Runs are deterministic: fibers are scheduled FIFO and simultaneous
    events fire in scheduling order. *)

type t
(** A scheduler instance: run queue, event queue, virtual clock. *)

type fiber
(** A lightweight process. *)

type group
(** A set of fibers that can be terminated together. *)

type 'a waker
(** A one-shot capability to resume one suspended fiber. *)

exception Terminated
(** Raised inside a fiber when it has been killed (wounded) and reaches
    a point where termination is allowed. User code should normally let
    it propagate. *)

type fiber_result =
  | Finished  (** the body returned normally *)
  | Failed of exn  (** the body raised an exception other than {!Terminated} *)
  | Killed  (** the fiber was terminated by {!kill} or group termination *)

type outcome =
  | Completed  (** no runnable fibers, no pending events, no live fibers *)
  | Deadlocked of fiber list
      (** quiescent but some fibers are still blocked — e.g. the
          fork-composition termination problem of §4.1 *)
  | Time_limit  (** the [until] bound was reached first *)

(** {1 Construction and the main loop} *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a scheduler whose RNG and trace are fresh.
    The clock starts at [0.0]. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Sim.Rng.t

val stats : t -> Sim.Stats.t

val trace : t -> Sim.Trace.t

val spans : t -> Sim.Span.t
(** The scheduler's causal-trace span store ({!Sim.Span},
    docs/TRACING.md). One scheduler underlies every simulated node, so
    enabling it turns on call-lifecycle tracing for the whole world —
    and only then do call/reply wire items carry trace ids. *)

val run : ?until:float -> t -> outcome
(** [run t] executes fibers and events until quiescence. It may be
    called again after more fibers or events are added. *)

(** {1 Fibers} *)

val spawn :
  t ->
  ?name:string ->
  ?daemon:bool ->
  ?group:group ->
  ?on_exit:(fiber_result -> unit) ->
  (unit -> unit) ->
  fiber
(** [spawn t body] creates a runnable fiber. [on_exit] fires exactly
    once, in scheduler context, when the fiber ends for any reason.
    [daemon] fibers (default [false]) are service loops — e.g. a
    stream receiver waiting for the next call — that may stay parked
    forever: they do not keep {!run} alive and do not count as
    deadlocked. *)

val current : t -> fiber option
(** The fiber currently executing, or [None] in scheduler context. *)

val kill : t -> fiber -> unit
(** Request termination. A suspended fiber outside any critical section
    is discontinued immediately (it observes {!Terminated} at its
    suspension point); otherwise the fiber is wounded and dies at its
    next termination point. Killing a finished fiber is a no-op. *)

val fiber_id : fiber -> int

val fiber_name : fiber -> string

val fiber_result : fiber -> fiber_result option
(** [None] while the fiber is still live. *)

val alive : fiber -> bool

(** {1 Suspension points} *)

val suspend : t -> ('a waker -> unit) -> 'a
(** [suspend t register] parks the current fiber, passes a fresh waker
    to [register], and returns the value later passed to {!wake}. Must
    be called from fiber context. Checks for wounding before parking
    and after resuming. *)

val wake : 'a waker -> 'a -> bool
(** [wake w v] resumes the parked fiber with value [v]. Returns [false]
    (and does nothing) if the waker was already used or its fiber was
    killed meanwhile — callers that hand out resources on wake must
    retry with another waiter when this returns [false]. May be called
    from any context. *)

val wake_exn : 'a waker -> exn -> bool
(** Like {!wake} but the suspension point raises. *)

val waker_alive : 'a waker -> bool

val yield : t -> unit
(** Reschedule the current fiber behind the rest of the run queue. *)

val sleep : t -> float -> unit
(** Park the current fiber for the given amount of virtual time. *)

(** {1 Scheduler-context events} *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time f] runs [f] in scheduler context at virtual [time]
    (clamped to now if in the past). *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t dt f] is [at t (now t +. dt) f]. *)

type timer
(** A handle to a scheduled event that can be cancelled. *)

val at_cancellable : t -> float -> (unit -> unit) -> timer
(** Like {!at}, returning a handle. *)

val after_cancellable : t -> float -> (unit -> unit) -> timer
(** Like {!after}, returning a handle. *)

val cancel_timer : timer -> unit
(** Prevent the event from firing (idempotent; a no-op once it has
    fired). Cancellation is immediate for scheduling decisions: the run
    loops skip dead entries, so in realtime mode a cancelled timer no
    longer holds the horizon — without this, an acked retransmit timer
    would make the scheduler wait out its full wall-clock delay before
    quiescing. *)

val timer_alive : timer -> bool
(** [false] once cancelled or fired. *)

(** {1 External wakeups (worker domains)}

    The one thread-safe door into the scheduler (docs/DOMAINS.md): a
    worker domain never touches scheduler state directly; it hands a
    thunk to {!inject} and the main loop runs it on the scheduler's own
    domain, where it may freely call {!wake}/{!wake_exn}. {!Pool} is
    the intended client. *)

val inject : t -> (unit -> unit) -> unit
(** [inject t thunk] enqueues [thunk] to run in scheduler context on
    the scheduler's domain. Safe to call from any domain. The main loop
    only polls the injection queue while at least one external hold is
    outstanding — pair every cross-domain completion with
    {!hold_external}/{!release_external}, as {!Pool.run} does. *)

val hold_external : t -> unit
(** Declare one outstanding external completion. While holds are
    outstanding the main loop drains injected thunks, and when it runs
    out of runnable fibers it {e blocks} for the next injection instead
    of advancing virtual time or declaring deadlock — offloaded work is
    instantaneous on the simulated clock. Scheduler-domain only. *)

val release_external : t -> unit
(** Drop one hold; call from the injected completion thunk (hence on
    the scheduler domain). *)

val external_held : t -> int
(** Outstanding external holds; 0 whenever no pool is in use — and then
    the run loop is exactly the deterministic single-domain loop. *)

(** {1 Real-time driver (real transports)}

    A real transport (docs/TRANSPORT.md) replaces virtual time with the
    wall clock: {!run} stops jumping the clock to the next timer and
    instead reads [clock], fires timers that have come due, and parks in
    [wait] — the transport's poll/select loop — whenever nothing is
    runnable. [wait] runs in scheduler context and may deliver received
    frames (i.e. invoke receive callbacks that {!wake} fibers) before
    returning. [wakeup] must be thread-safe; {!inject} calls it so
    cross-domain completions break a concurrent [wait]. Deadlock
    detection is disabled while a driver is attached — a parked fiber
    may always be woken by the network — so bound server-style runs with
    [?until]. Virtual-time semantics are byte-identical when no driver
    is attached. *)

val set_realtime_driver :
  t ->
  clock:(unit -> float) ->
  wait:(float option -> unit) ->
  wakeup:(unit -> unit) ->
  unit
(** Attach a driver. [clock ()] is the wall clock expressed in
    scheduler-time seconds (it must be [>= now t] at attach time so the
    clock never runs backwards). [wait (Some d)] services I/O for at
    most [d] seconds; [wait None] blocks until some external event. *)

val clear_realtime_driver : t -> unit
(** Detach; {!run} returns to the deterministic virtual-time loop. *)

val realtime : t -> bool
(** Whether a real-time driver is currently attached. *)

(** {1 Critical sections (wounding)} *)

val enter_critical : t -> unit
(** Increment the current fiber's critical-section count; while it is
    positive the fiber cannot be terminated (§4.2). *)

val exit_critical : t -> unit
(** Decrement the count; if it reaches zero and the fiber was wounded
    meanwhile, raises {!Terminated} here. *)

val critical : t -> (unit -> 'a) -> 'a
(** [critical t f] runs [f] inside a critical section, restoring the
    count on any exit. *)

val wounded : t -> bool
(** Whether the current fiber has been asked to terminate. A wounded
    fiber is "greatly restricted" (§4.2): the stream layer refuses to
    start remote calls from it. *)

val in_critical : t -> bool

(** {1 Groups} *)

module Group : sig
  val create : t -> group

  val add_spawn :
    t -> group -> ?name:string -> ?on_exit:(fiber_result -> unit) -> (unit -> unit) -> fiber
  (** Spawn a fiber as a member of the group. *)

  val members : group -> fiber list
  (** Live members. *)

  val live_count : group -> int

  val terminate : ?except:fiber -> t -> group -> unit
  (** Kill every live member (except [except], typically the caller). *)

  val wait : t -> group -> unit
  (** Park the calling fiber until the group has no live members.
      Returns immediately when it is already empty. *)
end
