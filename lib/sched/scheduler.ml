exception Terminated

type fiber_result = Finished | Failed of exn | Killed

(* Real-time driver (docs/TRANSPORT.md): when a real transport is
   attached the wall clock replaces virtual time. [rt_clock] reads the
   wall clock in scheduler-time seconds; [rt_wait (Some d)] blocks at
   most [d] seconds servicing real I/O (it may deliver frames, i.e.
   call receive callbacks, in scheduler context); [rt_wait None] blocks
   until some real event arrives; [rt_wakeup] is thread-safe and breaks
   a concurrent [rt_wait] (the transport's self-pipe). *)
type realtime_driver = {
  rt_clock : unit -> float;
  rt_wait : float option -> unit;
  rt_wakeup : unit -> unit;
}

(* Heap entries carry a liveness flag so a cancelled timer can be
   skipped instead of waited for. Virtual time never cared (a stale
   no-op firing is free), but in realtime mode the run loop would
   otherwise block for the full wall-clock delay of a timer whose
   purpose has already passed — e.g. a retransmit timer for a batch
   that was acked microseconds after it was armed. *)
type event = { mutable ev_alive : bool; ev_fn : unit -> unit }

type timer = event

type t = {
  mutable time : float;
  run_q : (unit -> unit) Queue.t;
  events : event Sim.Heap.t;
  mutable cur : fiber option;
  mutable live : int;
  live_tbl : (int, fiber) Hashtbl.t;
  mutable next_fid : int;
  mutable next_gid : int;
  sched_rng : Sim.Rng.t;
  sched_stats : Sim.Stats.t;
  sched_trace : Sim.Trace.t;
  sched_spans : Sim.Span.t;
  (* External-wakeup path (docs/DOMAINS.md): thunks pushed by worker
     domains, drained by the main loop on the scheduler's own domain so
     no scheduler state is ever touched from another domain. The mutex
     guards only [injected]; [external_held] is read and written on the
     scheduler domain alone (holds are taken in fiber context and
     released from an injected thunk). *)
  inj_m : Stdlib.Mutex.t;
  inj_cv : Stdlib.Condition.t;
  injected : (unit -> unit) Queue.t;
  mutable external_held : int;
  (* Written under [inj_m] so that [inject], which may run on another
     thread, reads a consistent value when deciding whether to kick the
     transport's wakeup pipe as well as the condition variable. *)
  mutable rt_driver : realtime_driver option;
}

and fiber = {
  fid : int;
  fname : string;
  mutable fstate : fstate;
  mutable fkilled : bool;
  mutable fcritical : int;
  mutable fwaiting : packed_waker option;
  mutable fresult : fiber_result option;
  fdaemon : bool;
  mutable fgroup : group option;
  mutable fon_exit : (fiber_result -> unit) list;
}

and fstate = Runnable | Running | Suspended | Done

and 'a waker = {
  mutable wcont : ('a, unit) Effect.Deep.continuation option;
  wfiber : fiber;
  wsched : t;
}

and packed_waker = Packed : 'a waker -> packed_waker

and group = {
  gid : int;
  gsched : t;
  mutable gmembers : fiber list;
  mutable gwaiters : unit waker list;
}

type outcome = Completed | Deadlocked of fiber list | Time_limit

type _ Effect.t += Suspend : t * ('a waker -> unit) -> 'a Effect.t

let create ?(seed = 42) () =
  {
    time = 0.0;
    run_q = Queue.create ();
    events = Sim.Heap.create ();
    cur = None;
    live = 0;
    live_tbl = Hashtbl.create 64;
    next_fid = 0;
    next_gid = 0;
    sched_rng = Sim.Rng.create ~seed;
    sched_stats = Sim.Stats.create ();
    sched_trace = Sim.Trace.create ();
    sched_spans = Sim.Span.create ();
    inj_m = Stdlib.Mutex.create ();
    inj_cv = Stdlib.Condition.create ();
    injected = Queue.create ();
    external_held = 0;
    rt_driver = None;
  }

let now t = t.time

let rng t = t.sched_rng

let stats t = t.sched_stats

let trace t = t.sched_trace

let spans t = t.sched_spans

let current t = t.cur

let fiber_id f = f.fid

let fiber_name f = f.fname

let fiber_result f = f.fresult

let alive f = f.fresult = None

let tracef t fmt = Sim.Trace.recordf t.sched_trace ~time:t.time fmt

(* Group bookkeeping is internal; the public [Group] module wraps it. *)
let group_remove t g fiber =
  g.gmembers <- List.filter (fun f -> f.fid <> fiber.fid) g.gmembers;
  if g.gmembers = [] then begin
    let waiters = g.gwaiters in
    g.gwaiters <- [];
    List.iter
      (fun w ->
        (* wake is defined below; forward reference avoided by inlining
           the resume here via the run queue. *)
        match w.wcont with
        | None -> ()
        | Some k ->
            w.wcont <- None;
            w.wfiber.fwaiting <- None;
            w.wfiber.fstate <- Runnable;
            Queue.push
              (fun () ->
                t.cur <- Some w.wfiber;
                w.wfiber.fstate <- Running;
                Effect.Deep.continue k ())
              t.run_q)
      waiters
  end

let finish t fiber result =
  assert (fiber.fresult = None);
  fiber.fstate <- Done;
  fiber.fresult <- Some result;
  fiber.fwaiting <- None;
  if not fiber.fdaemon then t.live <- t.live - 1;
  Hashtbl.remove t.live_tbl fiber.fid;
  tracef t "fiber %d (%s) %s" fiber.fid fiber.fname
    (match result with
    | Finished -> "finished"
    | Failed _ -> "failed"
    | Killed -> "killed");
  (match fiber.fgroup with Some g -> group_remove t g fiber | None -> ());
  let hooks = fiber.fon_exit in
  fiber.fon_exit <- [];
  List.iter (fun hook -> hook result) hooks

let spawn t ?(name = "fiber") ?(daemon = false) ?group ?on_exit body =
  let fiber =
    {
      fid = t.next_fid;
      fname = name;
      fstate = Runnable;
      fkilled = false;
      fcritical = 0;
      fwaiting = None;
      fresult = None;
      fdaemon = daemon;
      fgroup = group;
      fon_exit = (match on_exit with None -> [] | Some h -> [ h ]);
    }
  in
  t.next_fid <- t.next_fid + 1;
  if not daemon then t.live <- t.live + 1;
  Hashtbl.add t.live_tbl fiber.fid fiber;
  (match group with Some g -> g.gmembers <- fiber :: g.gmembers | None -> ());
  tracef t "spawn fiber %d (%s)" fiber.fid name;
  let thunk () =
    if fiber.fkilled then begin
      t.cur <- Some fiber;
      finish t fiber Killed
    end
    else begin
      t.cur <- Some fiber;
      fiber.fstate <- Running;
      Effect.Deep.match_with body ()
        {
          retc = (fun () -> finish t fiber Finished);
          exnc =
            (fun e ->
              match e with
              | Terminated -> finish t fiber Killed
              | e -> finish t fiber (Failed e));
          effc =
            (fun (type b) (eff : b Effect.t) ->
              match eff with
              | Suspend (_, register) ->
                  Some
                    (fun (k : (b, unit) Effect.Deep.continuation) ->
                      let waker = { wcont = Some k; wfiber = fiber; wsched = t } in
                      fiber.fstate <- Suspended;
                      fiber.fwaiting <- Some (Packed waker);
                      register waker)
              | _ -> None);
        }
    end
  in
  Queue.push thunk t.run_q;
  fiber

let check_wounded t =
  match t.cur with
  | Some f when f.fkilled && f.fcritical = 0 -> raise Terminated
  | Some _ | None -> ()

let suspend t register =
  (match t.cur with
  | None -> invalid_arg "Scheduler.suspend: not in fiber context"
  | Some _ -> ());
  check_wounded t;
  let v = Effect.perform (Suspend (t, register)) in
  check_wounded t;
  v

let wake w v =
  match w.wcont with
  | None -> false
  | Some k ->
      let t = w.wsched in
      if w.wfiber.fkilled && w.wfiber.fcritical = 0 then begin
        (* The fiber was killed while parked; it will be (or has been)
           discontinued by [kill]. Refuse delivery so callers retry. *)
        false
      end
      else begin
        w.wcont <- None;
        w.wfiber.fwaiting <- None;
        w.wfiber.fstate <- Runnable;
        Queue.push
          (fun () ->
            t.cur <- Some w.wfiber;
            w.wfiber.fstate <- Running;
            Effect.Deep.continue k v)
          t.run_q;
        true
      end

let wake_exn w e =
  match w.wcont with
  | None -> false
  | Some k ->
      let t = w.wsched in
      w.wcont <- None;
      w.wfiber.fwaiting <- None;
      w.wfiber.fstate <- Runnable;
      Queue.push
        (fun () ->
          t.cur <- Some w.wfiber;
          w.wfiber.fstate <- Running;
          Effect.Deep.discontinue k e)
        t.run_q;
      true

let waker_alive w = w.wcont <> None

let kill _t fiber =
  match fiber.fstate with
  | Done -> ()
  | Running | Runnable -> fiber.fkilled <- true
  | Suspended ->
      fiber.fkilled <- true;
      if fiber.fcritical = 0 then begin
        match fiber.fwaiting with
        | None -> ()
        | Some (Packed w) -> ignore (wake_exn w Terminated : bool)
      end

let yield t = suspend t (fun w -> ignore (wake w () : bool))

let at_cancellable t time f =
  let time = if time < t.time then t.time else time in
  let ev = { ev_alive = true; ev_fn = f } in
  Sim.Heap.push t.events ~prio:time ev;
  ev

let at t time f = ignore (at_cancellable t time f : timer)

let after t dt f = at t (t.time +. dt) f

let after_cancellable t dt f = at_cancellable t (t.time +. dt) f

let cancel_timer tm = tm.ev_alive <- false

let timer_alive tm = tm.ev_alive

(* Pop any leading cancelled events so peek-based decisions (horizon
   waits, deadlock detection, completion) never key off a dead timer. *)
let rec drop_cancelled t =
  match Sim.Heap.peek t.events with
  | Some (_, ev) when not ev.ev_alive ->
      ignore (Sim.Heap.pop t.events : (float * event) option);
      drop_cancelled t
  | _ -> ()

let sleep t dt = suspend t (fun w -> after t dt (fun () -> ignore (wake w () : bool)))

let enter_critical t =
  match t.cur with
  | None -> invalid_arg "Scheduler.enter_critical: not in fiber context"
  | Some f -> f.fcritical <- f.fcritical + 1

let exit_critical t =
  match t.cur with
  | None -> invalid_arg "Scheduler.exit_critical: not in fiber context"
  | Some f ->
      assert (f.fcritical > 0);
      f.fcritical <- f.fcritical - 1;
      if f.fcritical = 0 && f.fkilled then raise Terminated

let critical t f =
  enter_critical t;
  match f () with
  | v ->
      exit_critical t;
      v
  | exception e ->
      (* Leave the critical section even on exception; if the fiber was
         wounded meanwhile, Terminated supersedes the user exception. *)
      exit_critical t;
      raise e

let wounded t = match t.cur with None -> false | Some f -> f.fkilled

let in_critical t = match t.cur with None -> false | Some f -> f.fcritical > 0

let live_fibers t =
  Hashtbl.fold (fun _ f acc -> if f.fdaemon then acc else f :: acc) t.live_tbl []

(* ------------------------------------------------------------------ *)
(* External wakeups (docs/DOMAINS.md). [inject] is the only scheduler
   entry point that may be called from another domain: it enqueues a
   thunk under the injection mutex and signals the main loop, which
   runs the thunk on the scheduler's own domain — so an injected thunk
   may call [wake]/[wake_exn] and touch any scheduler state. *)

let inject t thunk =
  Stdlib.Mutex.lock t.inj_m;
  Queue.push thunk t.injected;
  Stdlib.Condition.signal t.inj_cv;
  let rt = t.rt_driver in
  Stdlib.Mutex.unlock t.inj_m;
  (* In realtime mode the main loop blocks in the transport's [rt_wait]
     (a select), not on [inj_cv]; kick its self-pipe so the injection is
     noticed promptly. *)
  match rt with None -> () | Some rt -> rt.rt_wakeup ()

let hold_external t = t.external_held <- t.external_held + 1

let release_external t =
  assert (t.external_held > 0);
  t.external_held <- t.external_held - 1

let external_held t = t.external_held

(* Pop every pending injected thunk (under the mutex), run them outside
   it. Returns whether anything ran. *)
let drain_injected t =
  Stdlib.Mutex.lock t.inj_m;
  let n = Queue.length t.injected in
  let thunks = if n = 0 then [] else List.of_seq (Queue.to_seq t.injected) in
  Queue.clear t.injected;
  Stdlib.Mutex.unlock t.inj_m;
  List.iter
    (fun thunk ->
      thunk ();
      t.cur <- None)
    thunks;
  n > 0

(* Nothing runnable but external work is outstanding: block (no busy
   wait) until a worker domain injects its completion. *)
let wait_injected t =
  Stdlib.Mutex.lock t.inj_m;
  while Queue.is_empty t.injected do
    Stdlib.Condition.wait t.inj_cv t.inj_m
  done;
  Stdlib.Mutex.unlock t.inj_m

(* ------------------------------------------------------------------ *)
(* Real-time mode (docs/TRANSPORT.md). Attaching a driver swaps the
   event loop: instead of jumping the virtual clock to the next timer,
   the loop reads the wall clock, fires timers that have come due, and
   otherwise parks inside the driver's [rt_wait] — which is where real
   I/O (TCP frames) is serviced and delivered. Deadlock detection is
   necessarily lost: a parked fiber may always be woken by the network,
   so quiescence with live fibers just blocks. The virtual-time loop
   below is untouched when no driver is attached. *)

let set_realtime_driver t ~clock ~wait ~wakeup =
  Stdlib.Mutex.lock t.inj_m;
  t.rt_driver <- Some { rt_clock = clock; rt_wait = wait; rt_wakeup = wakeup };
  Stdlib.Mutex.unlock t.inj_m

let clear_realtime_driver t =
  Stdlib.Mutex.lock t.inj_m;
  t.rt_driver <- None;
  Stdlib.Mutex.unlock t.inj_m

let realtime t = t.rt_driver <> None

(* How many run-queue thunks may execute between zero-timeout I/O
   polls, so a busy run queue cannot starve the sockets. *)
let rt_poll_budget = 64

let run_realtime ?until t rt =
  let rec loop budget =
    ignore (drain_injected t : bool);
    let wall = rt.rt_clock () in
    if wall > t.time then t.time <- wall;
    match until with
    | Some u when t.time >= u -> Time_limit
    | _ ->
        if not (Queue.is_empty t.run_q) then begin
          let thunk = Queue.pop t.run_q in
          thunk ();
          t.cur <- None;
          if budget <= 1 then begin
            rt.rt_wait (Some 0.0);
            loop rt_poll_budget
          end
          else loop (budget - 1)
        end
        else begin
          drop_cancelled t;
          match Sim.Heap.peek t.events with
          | Some (time, _) when time <= t.time ->
              (match Sim.Heap.pop t.events with
              | Some (time, ev) ->
                  if time > t.time then t.time <- time;
                  ev.ev_alive <- false;
                  ev.ev_fn ()
              | None -> assert false);
              t.cur <- None;
              loop rt_poll_budget
          | next ->
              let next_ev = match next with Some (tm, _) -> Some tm | None -> None in
              let horizon =
                match (next_ev, until) with
                | Some a, Some b -> Some (Float.min a b)
                | (Some _ as h), None | None, (Some _ as h) -> h
                | None, None -> None
              in
              (match horizon with
              | Some h ->
                  rt.rt_wait (Some (Float.max 0.0 (h -. t.time)));
                  loop rt_poll_budget
              | None ->
                  if t.live > 0 || t.external_held > 0 then begin
                    (* Parked fibers can still be woken by the network
                       or a worker domain: block in the driver until
                       either says so. *)
                    rt.rt_wait None;
                    loop rt_poll_budget
                  end
                  else Completed)
        end
  in
  loop rt_poll_budget

let run ?until t =
  let rec loop () =
    (* Worker-domain completions interleave with the run queue; with no
       external holds outstanding the queue is provably empty and this
       is one uncontended lock per iteration. *)
    if t.external_held > 0 then ignore (drain_injected t : bool);
    if not (Queue.is_empty t.run_q) then begin
      let thunk = Queue.pop t.run_q in
      thunk ();
      t.cur <- None;
      loop ()
    end
    else if t.external_held > 0 then begin
      (* Virtual time never advances while an offloaded closure is in
         flight: offloaded work is instantaneous on the simulated clock
         (docs/DOMAINS.md), and timers (retransmission, flush) must not
         fire "during" it. Block until a completion arrives. *)
      wait_injected t;
      loop ()
    end
    else begin
      drop_cancelled t;
      match Sim.Heap.peek t.events with
      | None -> if t.live > 0 then Deadlocked (live_fibers t) else Completed
      | Some (time, _) -> (
          match until with
          | Some u when time > u ->
              t.time <- u;
              Time_limit
          | Some _ | None ->
              (match Sim.Heap.pop t.events with
              | Some (time, ev) ->
                  if time > t.time then t.time <- time;
                  ev.ev_alive <- false;
                  ev.ev_fn ()
              | None -> assert false);
              t.cur <- None;
              loop ())
    end
  in
  match t.rt_driver with Some rt -> run_realtime ?until t rt | None -> loop ()

module Group = struct
  let create t =
    let g = { gid = t.next_gid; gsched = t; gmembers = []; gwaiters = [] } in
    t.next_gid <- t.next_gid + 1;
    g

  let add_spawn t g ?name ?on_exit body = spawn t ?name ~group:g ?on_exit body

  let members g = g.gmembers

  let live_count g = List.length g.gmembers

  let terminate ?except t g =
    let victims =
      match except with
      | None -> g.gmembers
      | Some f -> List.filter (fun m -> m.fid <> f.fid) g.gmembers
    in
    List.iter (fun f -> kill t f) victims

  let wait t g =
    if g.gmembers <> [] then suspend t (fun w -> g.gwaiters <- w :: g.gwaiters)
end
