(** A pool of OCaml 5 worker domains under the simulator
    (docs/DOMAINS.md).

    Shard lanes are cooperative fibers multiplexed on one OS thread, so
    their concurrency is simulated. A pool turns CPU-bound pieces of a
    handler into {e physical} parallelism: {!run} suspends the calling
    fiber, ships the closure to a worker domain, and resumes the fiber
    through the scheduler's thread-safe injection queue
    ({!Scheduler.inject}) when the closure finishes. Scheduler state is
    only ever touched on the scheduler's own domain.

    Rules for offloaded closures (docs/DOMAINS.md): they run outside
    fiber context on another domain, so they must not call the
    scheduler (no [sleep]/[suspend]/[spawn]), claim promises, issue
    remote calls, or touch simulator state. Pure computation plus
    domain-safe telemetry ({!Sim.Stats} counters are atomic) only.

    While any offload is in flight the simulated clock is frozen:
    offloaded work is instantaneous in virtual time. A simulation that
    never touches a pool never pays for one (and stays byte-for-byte
    deterministic — the injection queue is provably empty). *)

type t

val create : Scheduler.t -> domains:int -> t
(** [create sched ~domains] spawns [domains] worker domains ready to
    take work. Raises [Invalid_argument] on [domains <= 0]. Workers
    live until {!shutdown}. *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] executes [f ()] on a worker domain while the calling
    fiber is parked; returns [f]'s value, or re-raises its exception,
    at the suspension point. Must be called from fiber context on the
    pool's scheduler. If the fiber is killed while parked, the
    closure's result is dropped (the closure itself is not stopped).
    Raises [Invalid_argument] after {!shutdown}. *)

val size : t -> int
(** The number of worker domains. *)

val sched : t -> Scheduler.t

val shutdown : t -> unit
(** Finish jobs already submitted, then stop and join every worker.
    Idempotent. Call from outside fiber context (or from a fiber that
    is not itself offloading); blocks the whole domain until workers
    exit. *)
