(* A pool of OCaml 5 worker domains under the simulator's scheduler
   (docs/DOMAINS.md). Fibers ship CPU-bound closures to real cores with
   {!run}; completions come back through the scheduler's injection
   queue, so all scheduler state stays on its own domain. *)

type job = Job : { work : unit -> 'a; deliver : ('a, exn) result -> unit } -> job

type t = {
  p_sched : Scheduler.t;
  jobs : job Queue.t;  (* guarded by [m] *)
  m : Stdlib.Mutex.t;
  cv : Stdlib.Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  p_size : int;
}

let size t = t.p_size

let sched t = t.p_sched

(* Take jobs until [stopping] with the queue empty; a closing pool
   still finishes every job already submitted (fibers are parked on
   them). The closure runs outside the lock; its result — value or
   exception, [Terminated] included, workers have no kill path — is
   shipped back whole and re-raised (or returned) at the fiber's
   suspension point. *)
let worker_loop t =
  let rec next () =
    Stdlib.Mutex.lock t.m;
    let rec take () =
      match Queue.take_opt t.jobs with
      | Some j ->
          Stdlib.Mutex.unlock t.m;
          Some j
      | None ->
          if t.stopping then begin
            Stdlib.Mutex.unlock t.m;
            None
          end
          else begin
            Stdlib.Condition.wait t.cv t.m;
            take ()
          end
    in
    match take () with
    | None -> ()
    | Some (Job { work; deliver }) ->
        let res = match work () with v -> Ok v | exception e -> Error e in
        Scheduler.inject t.p_sched (fun () -> deliver res);
        next ()
  in
  next ()

let create sched ~domains =
  if domains <= 0 then invalid_arg "Pool.create: domains must be positive";
  let t =
    {
      p_sched = sched;
      jobs = Queue.create ();
      m = Stdlib.Mutex.create ();
      cv = Stdlib.Condition.create ();
      stopping = false;
      workers = [];
      p_size = domains;
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t job =
  Stdlib.Mutex.lock t.m;
  if t.stopping then begin
    Stdlib.Mutex.unlock t.m;
    invalid_arg "Pool.run: pool is shut down"
  end;
  Queue.push job t.jobs;
  Stdlib.Condition.signal t.cv;
  Stdlib.Mutex.unlock t.m

let run t work =
  (match Scheduler.current t.p_sched with
  | None -> invalid_arg "Pool.run: not in fiber context"
  | Some _ -> ());
  (* Checked here, in fiber context, so the caller sees the exception at
     its own call site — not from inside the suspend callback on the
     scheduler loop. [shutdown] runs on this same domain, so the flag
     cannot flip between this check and the submit below. *)
  let stopping =
    Stdlib.Mutex.lock t.m;
    let s = t.stopping in
    Stdlib.Mutex.unlock t.m;
    s
  in
  if stopping then invalid_arg "Pool.run: pool is shut down";
  (* The hold keeps the main loop listening for our completion (and
     freezes virtual time around the offload); it is released by the
     injected thunk below, on the scheduler domain, whether the closure
     returned, raised, or the fiber was killed while parked (wake then
     returns false — the result is dropped, the hold is not). *)
  Scheduler.hold_external t.p_sched;
  Scheduler.suspend t.p_sched (fun w ->
      submit t
        (Job
           {
             work;
             deliver =
               (fun res ->
                 Scheduler.release_external t.p_sched;
                 match res with
                 | Ok v -> ignore (Scheduler.wake w v : bool)
                 | Error e -> ignore (Scheduler.wake_exn w e : bool));
           }))

let shutdown t =
  Stdlib.Mutex.lock t.m;
  if t.stopping then Stdlib.Mutex.unlock t.m
  else begin
    t.stopping <- true;
    Stdlib.Condition.broadcast t.cv;
    Stdlib.Mutex.unlock t.m;
    let workers = t.workers in
    t.workers <- [];
    List.iter Domain.join workers
  end
