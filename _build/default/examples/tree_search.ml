(* Forked promises in recursive data structures (§3.2): a binary search
   tree whose nodes are promises. Construction proceeds in parallel
   (one forked process per subtree) and searches can run WHILE the
   tree is still being built — a search that reaches a node that
   cannot be claimed yet simply waits for the promise.

   Run with: dune exec examples/tree_search.exe *)

module S = Sched.Scheduler
module P = Core.Promise

type tree = Node of ((int * tree * tree) option, Core.Sigs.nothing) P.t

let node_cost = 0.2e-3

(* Build the subtree for keys in [lo, hi] — each node in its own forked
   process, consuming CPU time from the shared pool. *)
let rec build sched cpu lo hi =
  if lo > hi then Node (P.resolved sched (P.Normal None))
  else
    Node
      (Core.Fork.fork sched (fun () ->
           Workloads.Cpu.consume cpu node_cost;
           let mid = (lo + hi) / 2 in
           Ok (Some (mid, build sched cpu lo (mid - 1), build sched cpu (mid + 1) hi))))

let rec search (Node p) key =
  match P.claim p with
  | P.Normal None -> false
  | P.Normal (Some (k, l, r)) ->
      if key = k then true else if key < k then search l key else search r key
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> false

let () =
  let sched = S.create () in
  let cpu = Workloads.Cpu.create sched ~cores:8 in
  let n = 127 in
  ignore
    (S.spawn sched (fun () ->
         Printf.printf "building tree of %d promise nodes on %d CPUs...\n" n
           (Workloads.Cpu.cores cpu);
         let tree = build sched cpu 0 (n - 1) in
         (* Searches fire immediately, racing construction. *)
         let keys = [ 0; 1; 63; 100; 126; 500 ] in
         Core.Coenter.coenter_foreach sched keys (fun key ->
             let hit = search tree key in
             Printf.printf "[%6.2f ms] search %3d -> %b\n" (S.now sched *. 1e3) key hit);
         Printf.printf "[%6.2f ms] all searches answered\n" (S.now sched *. 1e3)));
  match S.run sched with
  | S.Completed -> print_endline "done."
  | S.Deadlocked _ -> print_endline "deadlock!"
  | S.Time_limit -> ()
