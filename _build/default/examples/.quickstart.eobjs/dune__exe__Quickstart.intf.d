examples/quickstart.mli:
