examples/cascade.ml: Core Printf Sched Workloads
