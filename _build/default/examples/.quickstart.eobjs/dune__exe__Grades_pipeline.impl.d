examples/grades_pipeline.ml: Core Float List Printf Sched Workloads
