examples/cascade.mli:
