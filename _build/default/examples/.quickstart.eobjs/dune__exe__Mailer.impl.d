examples/mailer.ml: Argus Core Cstream Hashtbl List Net Option Printf Sched String Xdr
