examples/window.ml: Argus Core Cstream Net Printf Sched Xdr
