examples/grades_pipeline.mli:
