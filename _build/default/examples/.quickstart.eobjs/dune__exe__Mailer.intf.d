examples/mailer.mli:
