examples/window.mli:
