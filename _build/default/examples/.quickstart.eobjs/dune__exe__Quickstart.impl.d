examples/quickstart.ml: Argus Core Cstream List Net Printf Sched Xdr
