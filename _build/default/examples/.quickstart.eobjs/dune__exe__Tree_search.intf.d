examples/tree_search.mli:
