examples/tree_search.ml: Core Printf Sched Workloads
