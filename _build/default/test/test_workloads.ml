(* Tests for the experiment harness: the table renderer, the CPU
   model, the fixtures, and — most importantly — that each experiment
   runs and its results have the shape the paper claims (these are the
   reproduction's acceptance tests). *)

module S = Sched.Scheduler
module W = Workloads

let check = Alcotest.check

(* --- Table --------------------------------------------------------- *)

let test_table_render () =
  let t =
    W.Table.make ~id:"T" ~title:"demo" ~header:[ "a"; "bb" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Format.asprintf "%a" W.Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0);
  check Alcotest.bool "aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "333  4 ") lines)

let test_table_cells () =
  check Alcotest.string "ms" "1.500 ms" (W.Table.cell_ms 1.5e-3);
  check Alcotest.string "int" "42" (W.Table.cell_i 42);
  check Alcotest.string "float whole" "3" (W.Table.cell_f 3.0);
  check Alcotest.string "nan" "-" (W.Table.cell_f nan)

(* --- Timeline ------------------------------------------------------ *)

let test_timeline_render () =
  let lines =
    W.Timeline.render ~width:10 ~t_end:1.0
      [ ("a", [ (0.0, 0.5) ]); ("b", [ (0.5, 1.0) ]) ]
  in
  check Alcotest.int "two rows + axis" 3 (List.length lines);
  let row0 = List.nth lines 0 in
  check Alcotest.bool "first half busy" true
    (String.length row0 > 12
    && String.sub row0 12 5 = "#####"
    && String.sub row0 18 4 = "....")

let test_timeline_utilisation () =
  check (Alcotest.float 1e-9) "half" 0.5 (W.Timeline.utilisation ~t_end:1.0 [ (0.0, 0.5) ]);
  check (Alcotest.float 1e-9) "overlaps merged" 0.6
    (W.Timeline.utilisation ~t_end:1.0 [ (0.0, 0.5); (0.3, 0.6) ]);
  check (Alcotest.float 1e-9) "clamped to window" 1.0
    (W.Timeline.utilisation ~t_end:1.0 [ (-1.0, 2.0) ]);
  check (Alcotest.float 1e-9) "empty" 0.0 (W.Timeline.utilisation ~t_end:1.0 [])

let test_grades_overlap_measured () =
  (* The §4 claim, measured on busy intervals: under the coenter, the
     db's and printer's busy time overlaps substantially; under the
     Figure 3-1 loops it barely does. *)
  let svc = 0.3e-3 and produce = 0.3e-3 and n = 150 in
  let students = W.Fixtures.students n in
  let measure body =
    let w = W.Fixtures.make_grades_world ~db_service:svc ~print_service:svc () in
    let t_end = W.Fixtures.timed_run w.W.Fixtures.g_sched (fun () -> body w) in
    let u xs = W.Timeline.utilisation ~t_end xs in
    let db = !(w.W.Fixtures.g_db_busy) and pr = !(w.W.Fixtures.g_print_busy) in
    u db +. u pr -. u (db @ pr)
  in
  let fig31 w =
    let record_grade = W.Fixtures.db_handle w ~agent:"c-db" () in
    let print = W.Fixtures.print_handle w ~agent:"c-pr" () in
    let ps =
      List.map
        (fun s ->
          S.sleep w.W.Fixtures.g_sched produce;
          Core.Remote.stream_call record_grade s)
        students
    in
    Core.Remote.flush record_grade;
    List.iter2
      (fun (stu, _) p ->
        let avg = Core.Promise.claim_normal p ~on_signal:(fun _ -> nan) in
        Core.Remote.stream_call_ print (Printf.sprintf "%s %.1f" stu avg))
      students ps;
    match Core.Remote.synch print with Ok () -> () | Error _ -> failwith "print"
  in
  let fig42 w =
    let record_grade = W.Fixtures.db_handle w ~agent:"c-db" () in
    let print = W.Fixtures.print_handle w ~agent:"c-pr" () in
    Core.Compose.producer_consumer w.W.Fixtures.g_sched
      ~produce:(fun emit ->
        List.iter
          (fun (stu, g) ->
            S.sleep w.W.Fixtures.g_sched produce;
            emit (stu, Core.Remote.stream_call record_grade (stu, g)))
          students;
        Core.Remote.flush record_grade;
        match Core.Remote.synch record_grade with Ok () -> () | Error _ -> failwith "db")
      ~consume:(fun (stu, p) ->
        let avg = Core.Promise.claim_normal p ~on_signal:(fun _ -> nan) in
        Core.Remote.stream_call_ print (Printf.sprintf "%s %.1f" stu avg))
      ();
    match Core.Remote.synch print with Ok () -> () | Error _ -> failwith "print"
  in
  let o31 = measure fig31 and o42 = measure fig42 in
  check Alcotest.bool "coenter overlaps db and printer much more" true (o42 > 2.0 *. o31)

(* --- Cpu ----------------------------------------------------------- *)

let test_cpu_serialises () =
  let sched = S.create () in
  let cpu = W.Cpu.create sched ~cores:1 in
  for _ = 1 to 3 do
    ignore (S.spawn sched (fun () -> W.Cpu.consume cpu 1.0))
  done;
  ignore (S.run sched : S.outcome);
  check (Alcotest.float 1e-9) "serialised" 3.0 (S.now sched)

let test_cpu_parallelises () =
  let sched = S.create () in
  let cpu = W.Cpu.create sched ~cores:3 in
  for _ = 1 to 3 do
    ignore (S.spawn sched (fun () -> W.Cpu.consume cpu 1.0))
  done;
  ignore (S.run sched : S.outcome);
  check (Alcotest.float 1e-9) "parallel" 1.0 (S.now sched)

let test_cpu_zero_cost_noop () =
  let sched = S.create () in
  let cpu = W.Cpu.create sched ~cores:1 in
  ignore (S.spawn sched (fun () -> W.Cpu.consume cpu 0.0));
  ignore (S.run sched : S.outcome);
  check (Alcotest.float 1e-9) "free" 0.0 (S.now sched)

(* --- Fixtures ------------------------------------------------------ *)

let test_fixture_pair_roundtrip () =
  let pair = W.Fixtures.make_pair ~service:1e-3 () in
  let h = W.Fixtures.work_handle pair ~agent:"t" () in
  let got = ref None in
  let time =
    W.Fixtures.timed_run pair.W.Fixtures.sched (fun () -> got := Some (Core.Remote.rpc h 7))
  in
  check Alcotest.bool "echoed" true (!got = Some (Core.Promise.Normal 7));
  check Alcotest.bool "took at least the service time" true (time >= 1e-3)

let test_fixture_students_sorted_deterministic () =
  let s1 = W.Fixtures.students 10 and s2 = W.Fixtures.students 10 in
  check Alcotest.bool "deterministic" true (s1 = s2);
  let names = List.map fst s1 in
  check Alcotest.bool "sorted" true (List.sort compare names = names)

let test_timed_run_detects_deadlock () =
  let pair = W.Fixtures.make_pair () in
  match
    W.Fixtures.timed_run pair.W.Fixtures.sched (fun () ->
        ignore (S.suspend pair.W.Fixtures.sched (fun _ -> ()) : unit))
  with
  | (_ : float) -> Alcotest.fail "expected Deadlock"
  | exception W.Fixtures.Deadlock _ -> ()

(* --- Experiments: shapes of the paper's claims --------------------- *)

let find_row table pred =
  match List.find_opt pred table.W.Table.rows with
  | Some r -> r
  | None -> Alcotest.failf "row not found in %s" table.W.Table.id

let cell row i = List.nth row i

let ms_of_cell s = Scanf.sscanf s "%f ms" Fun.id

let test_e1_streams_beat_rpc () =
  let t = W.Exp_streams.e1 ~n:100 () in
  (* at 1 ms latency, every stream mode beats RPC, and larger batches
     send fewer messages *)
  let rpc = find_row t (fun r -> cell r 0 = "1.0" && cell r 1 = "RPC") in
  let b16 = find_row t (fun r -> cell r 0 = "1.0" && cell r 1 = "stream B=16") in
  check Alcotest.bool "stream faster" true
    (ms_of_cell (cell b16 2) < ms_of_cell (cell rpc 2));
  check Alcotest.bool "fewer messages" true
    (int_of_string (cell b16 4) < int_of_string (cell rpc 4))

let test_e2_bytes_shrink () =
  let t = W.Exp_streams.e2 ~n:100 () in
  let rpc = find_row t (fun r -> cell r 0 = "RPC") in
  let stream = find_row t (fun r -> cell r 0 = "stream B=16") in
  let send = find_row t (fun r -> cell r 0 = "send B=16") in
  let bytes r = int_of_string (cell r 2) in
  check Alcotest.bool "stream < rpc bytes" true (bytes stream < bytes rpc);
  check Alcotest.bool "send <= stream bytes" true (bytes send <= bytes stream)

let test_e3_overlap_grows () =
  let t = W.Exp_compose.e3 ~svc:0.3e-3 ~produce_cost:0.3e-3 () in
  let speedup n =
    let r = find_row t (fun r -> cell r 0 = string_of_int n) in
    Scanf.sscanf (cell r 3) "%fx" Fun.id
  in
  check Alcotest.bool "500 students speedup > 1.3" true (speedup 500 > 1.3);
  check Alcotest.bool "overlap grows with N" true (speedup 500 >= speedup 10)

let test_e4_per_item_only_wins_on_multiprocessor () =
  let t = W.Exp_compose.e4 ~n:60 () in
  let time filter cpus structure =
    let r =
      find_row t (fun r -> cell r 0 = filter && cell r 1 = cpus && cell r 2 = structure)
    in
    ms_of_cell (cell r 3)
  in
  (* per-stream never loses to staged loops *)
  check Alcotest.bool "per-stream <= staged (cheap filters)" true
    (time "0.0" "1" "per-stream" <= time "0.0" "1" "staged loops");
  (* expensive filters + 4 CPUs: per-item wins *)
  check Alcotest.bool "per-item wins on multiprocessor" true
    (time "0.5" "4" "per-item" < time "0.5" "4" "per-stream");
  (* but not on one CPU *)
  check Alcotest.bool "per-item no better on 1 CPU" true
    (time "0.5" "1" "per-item" >= time "0.5" "1" "per-stream" -. 1e-9)

let test_e5_forked_tree_scales () =
  let t = W.Exp_fork.e5 ~n:63 ~searches:10 () in
  let time cpus variant =
    let r = find_row t (fun r -> cell r 0 = cpus && cell r 1 = variant) in
    ms_of_cell (cell r 2)
  in
  check Alcotest.bool "16 CPUs much faster than 1" true
    (time "16" "forked promises" *. 4.0 < time "1" "forked promises");
  check Alcotest.bool "sequential does not scale" true
    (abs_float (time "16" "sequential" -. time "1" "sequential") < 1e-9)

let test_e6_fork_hangs_coenter_does_not () =
  let t = W.Exp_failure.e6 ~n:60 ~crash_at:2e-3 () in
  let fork_row = find_row t (fun r -> cell r 0 = "forks (fig 4-1)") in
  let coenter_row = find_row t (fun r -> cell r 0 = "coenter (fig 4-2)") in
  check Alcotest.bool "fork version hangs" true
    (String.length (cell fork_row 1) >= 5 && String.sub (cell fork_row 1) 0 5 = "HANGS");
  check Alcotest.bool "coenter version raises" true
    (String.length (cell coenter_row 1) >= 9
    && String.sub (cell coenter_row 1) 0 9 = "exception")

let test_e8_throughput_comparable () =
  let t = W.Exp_sendrecv.e8 ~n:200 () in
  let raw = find_row t (fun r -> cell r 0 = "send/receive (by hand)") in
  let prom = find_row t (fun r -> cell r 0 = "streams + promises") in
  let t_raw = ms_of_cell (cell raw 1) and t_prom = ms_of_cell (cell prom 1) in
  check Alcotest.bool "same ballpark (within 2x)" true
    (t_prom < 2.0 *. t_raw && t_raw < 2.0 *. t_prom);
  check Alcotest.bool "promises keep no user table" true (cell prom 2 = "0");
  check Alcotest.bool "send/receive tracks every call" true
    (int_of_string (cell raw 2) = 200)

let test_e9_flush_beats_timer () =
  let t = W.Exp_streams.e9 () in
  let latency timer mode =
    let r = find_row t (fun r -> cell r 0 = timer && cell r 1 = mode) in
    ms_of_cell (cell r 2)
  in
  check Alcotest.bool "flush beats 20ms timer" true
    (latency "20" "flush" < latency "20" "buffered (timer)");
  check Alcotest.bool "timer latency grows with interval" true
    (latency "20" "buffered (timer)" > latency "1" "buffered (timer)")

let test_a1_override_trades_order_for_time () =
  let t = W.Exp_ablation.a1 ~n:30 () in
  let row name = find_row t (fun r -> cell r 0 = name) in
  let ordered = row "in order (paper default)" in
  let conc = row "concurrent (override)" in
  check Alcotest.bool "override faster" true
    (ms_of_cell (cell conc 1) < ms_of_cell (cell ordered 1));
  check Alcotest.int "ordered executes in order" 0 (int_of_string (cell ordered 2));
  check Alcotest.bool "override reorders execution" true (int_of_string (cell conc 2) > 0);
  check Alcotest.int "replies stay ordered (paper default)" 0
    (int_of_string (cell ordered 3));
  check Alcotest.int "replies stay ordered (override)" 0 (int_of_string (cell conc 3))

let test_a2_policies () =
  let t = W.Exp_ablation.a2 ~n:100 () in
  let msgs name = int_of_string (cell (find_row t (fun r -> cell r 0 = name)) 2) in
  check Alcotest.bool "timer-only batches more than size-only" true
    (msgs "timer only (1 ms)" <= msgs "size only (B=16)")

let test_registry_runs_everything () =
  check Alcotest.bool "ids" true (W.Experiments.all_ids <> []);
  (* only check id dispatch (full runs are covered above) *)
  match W.Experiments.run "nope" with
  | (_ : W.Table.t) -> Alcotest.fail "unknown id accepted"
  | exception Not_found -> ()

let suite =
  [
    ( "table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "cells" `Quick test_table_cells;
      ] );
    ( "timeline",
      [
        Alcotest.test_case "render" `Quick test_timeline_render;
        Alcotest.test_case "utilisation" `Quick test_timeline_utilisation;
        Alcotest.test_case "grades overlap measured" `Quick test_grades_overlap_measured;
      ] );
    ( "cpu",
      [
        Alcotest.test_case "serialises" `Quick test_cpu_serialises;
        Alcotest.test_case "parallelises" `Quick test_cpu_parallelises;
        Alcotest.test_case "zero cost" `Quick test_cpu_zero_cost_noop;
      ] );
    ( "fixtures",
      [
        Alcotest.test_case "pair roundtrip" `Quick test_fixture_pair_roundtrip;
        Alcotest.test_case "students deterministic" `Quick
          test_fixture_students_sorted_deterministic;
        Alcotest.test_case "timed_run detects deadlock" `Quick test_timed_run_detects_deadlock;
      ] );
    ( "experiment-shapes",
      [
        Alcotest.test_case "E1: streams beat RPC" `Quick test_e1_streams_beat_rpc;
        Alcotest.test_case "E2: bytes shrink" `Quick test_e2_bytes_shrink;
        Alcotest.test_case "E3: overlap grows" `Quick test_e3_overlap_grows;
        Alcotest.test_case "E4: per-item needs multiprocessor" `Quick
          test_e4_per_item_only_wins_on_multiprocessor;
        Alcotest.test_case "E5: forked tree scales" `Quick test_e5_forked_tree_scales;
        Alcotest.test_case "E6: fork hangs, coenter doesn't" `Quick
          test_e6_fork_hangs_coenter_does_not;
        Alcotest.test_case "E8: comparable throughput, no user table" `Quick
          test_e8_throughput_comparable;
        Alcotest.test_case "E9: flush beats timer" `Quick test_e9_flush_beats_timer;
        Alcotest.test_case "A1: ordering ablation" `Quick
          test_a1_override_trades_order_for_time;
        Alcotest.test_case "A2: buffering ablation" `Quick test_a2_policies;
        Alcotest.test_case "registry" `Quick test_registry_runs_everything;
      ] );
  ]

let () = Alcotest.run "workloads" suite
