(* Tests for the simulation substrate: heap, rng, stats, trace. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_empty () =
  let h : int Sim.Heap.t = Sim.Heap.create () in
  check Alcotest.bool "empty" true (Sim.Heap.is_empty h);
  check Alcotest.int "length" 0 (Sim.Heap.length h);
  check Alcotest.bool "pop none" true (Sim.Heap.pop h = None);
  check Alcotest.bool "peek none" true (Sim.Heap.peek h = None)

let test_heap_order () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h ~prio:3.0 "c";
  Sim.Heap.push h ~prio:1.0 "a";
  Sim.Heap.push h ~prio:2.0 "b";
  check Alcotest.(option (pair (float 0.0) string)) "peek" (Some (1.0, "a")) (Sim.Heap.peek h);
  check Alcotest.(option (pair (float 0.0) string)) "pop a" (Some (1.0, "a")) (Sim.Heap.pop h);
  check Alcotest.(option (pair (float 0.0) string)) "pop b" (Some (2.0, "b")) (Sim.Heap.pop h);
  check Alcotest.(option (pair (float 0.0) string)) "pop c" (Some (3.0, "c")) (Sim.Heap.pop h);
  check Alcotest.bool "drained" true (Sim.Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun s -> Sim.Heap.push h ~prio:5.0 s) [ "first"; "second"; "third" ];
  let order = List.map snd (Sim.Heap.to_list h) in
  check Alcotest.(list string) "insertion order on ties" [ "first"; "second"; "third" ] order

let test_heap_interleaved () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h ~prio:2.0 2;
  Sim.Heap.push h ~prio:1.0 1;
  check Alcotest.(option (pair (float 0.0) int)) "pop min" (Some (1.0, 1)) (Sim.Heap.pop h);
  Sim.Heap.push h ~prio:0.5 0;
  check Alcotest.(option (pair (float 0.0) int)) "new min" (Some (0.5, 0)) (Sim.Heap.pop h);
  check Alcotest.(option (pair (float 0.0) int)) "rest" (Some (2.0, 2)) (Sim.Heap.pop h)

let test_heap_clear () =
  let h = Sim.Heap.create () in
  for i = 1 to 100 do
    Sim.Heap.push h ~prio:(float_of_int i) i
  done;
  check Alcotest.int "length 100" 100 (Sim.Heap.length h);
  Sim.Heap.clear h;
  check Alcotest.bool "cleared" true (Sim.Heap.is_empty h);
  Sim.Heap.push h ~prio:1.0 7;
  check Alcotest.(option (pair (float 0.0) int)) "usable after clear" (Some (1.0, 7))
    (Sim.Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun prios ->
      let h = Sim.Heap.create () in
      List.iteri (fun i p -> Sim.Heap.push h ~prio:p i) prios;
      let rec drain last =
        match Sim.Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_heap_preserves_elements =
  QCheck.Test.make ~name:"heap is a permutation" ~count:200
    QCheck.(list (pair (float_bound_exclusive 100.0) small_int))
    (fun entries ->
      let h = Sim.Heap.create () in
      List.iter (fun (p, v) -> Sim.Heap.push h ~prio:p v) entries;
      let popped = List.map snd (Sim.Heap.to_list h) in
      List.sort compare popped = List.sort compare (List.map snd entries))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let sa = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  check Alcotest.bool "different seeds differ" true (sa <> sb)

let test_rng_split_independence () =
  let a = Sim.Rng.create ~seed:3 in
  let b = Sim.Rng.split a in
  let sa = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  check Alcotest.bool "split streams differ" true (sa <> sb)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Sim.Rng.create ~seed in
      let v = Sim.Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float in bounds" ~count:500 QCheck.small_int (fun seed ->
      let r = Sim.Rng.create ~seed in
      let v = Sim.Rng.float r 3.5 in
      v >= 0.0 && v < 3.5)

let test_rng_chance_extremes () =
  let r = Sim.Rng.create ~seed:11 in
  for _ = 1 to 20 do
    check Alcotest.bool "p=0 never" false (Sim.Rng.chance r 0.0);
    check Alcotest.bool "p=1 always" true (Sim.Rng.chance r 1.0)
  done

let test_rng_chance_rate () =
  let r = Sim.Rng.create ~seed:12 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sim.Rng.chance r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create ~seed:13 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Sim.Rng.exponential r ~mean:2.0
  done;
  let mean = !total /. float_of_int n in
  check Alcotest.bool "mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.create ~seed:14 in
  let arr = Array.init 100 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counters () =
  let t = Sim.Stats.create () in
  let c = Sim.Stats.counter t "msgs" in
  Sim.Stats.incr c;
  Sim.Stats.incr c;
  Sim.Stats.add c 5;
  check Alcotest.int "count" 7 (Sim.Stats.count c);
  let c' = Sim.Stats.counter t "msgs" in
  Sim.Stats.incr c';
  check Alcotest.int "same counter by name" 8 (Sim.Stats.count c)

let test_stats_summary () =
  let t = Sim.Stats.create () in
  let s = Sim.Stats.summary t "lat" in
  List.iter (Sim.Stats.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "n" 4 (Sim.Stats.n s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Sim.Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Sim.Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 4.0 (Sim.Stats.max_value s);
  check (Alcotest.float 1e-9) "median" 2.0 (Sim.Stats.quantile s 0.5);
  check (Alcotest.float 1e-9) "q1.0" 4.0 (Sim.Stats.quantile s 1.0);
  check (Alcotest.float 1e-9) "q0.0" 1.0 (Sim.Stats.quantile s 0.0)

let test_stats_empty_summary () =
  let t = Sim.Stats.create () in
  let s = Sim.Stats.summary t "nothing" in
  check Alcotest.bool "mean nan" true (Float.is_nan (Sim.Stats.mean s));
  check Alcotest.bool "quantile nan" true (Float.is_nan (Sim.Stats.quantile s 0.5))

let test_stats_reset () =
  let t = Sim.Stats.create () in
  let c = Sim.Stats.counter t "c" in
  let s = Sim.Stats.summary t "s" in
  Sim.Stats.incr c;
  Sim.Stats.observe s 1.0;
  Sim.Stats.reset t;
  check Alcotest.int "counter zeroed" 0 (Sim.Stats.count c);
  check Alcotest.int "summary emptied" 0 (Sim.Stats.n s)

let test_stats_listing () =
  let t = Sim.Stats.create () in
  ignore (Sim.Stats.counter t "b");
  ignore (Sim.Stats.counter t "a");
  check
    Alcotest.(list (pair string int))
    "sorted by name"
    [ ("a", 0); ("b", 0) ]
    (Sim.Stats.counters t)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 100.0))
    (fun samples ->
      let t = Sim.Stats.create () in
      let s = Sim.Stats.summary t "x" in
      List.iter (Sim.Stats.observe s) samples;
      Sim.Stats.quantile s 0.25 <= Sim.Stats.quantile s 0.5
      && Sim.Stats.quantile s 0.5 <= Sim.Stats.quantile s 0.9)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_by_default () =
  let tr = Sim.Trace.create () in
  Sim.Trace.record tr ~time:1.0 "hidden";
  check Alcotest.int "no records" 0 (List.length (Sim.Trace.to_list tr))

let test_trace_records_in_order () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable tr true;
  Sim.Trace.record tr ~time:1.0 "a";
  Sim.Trace.recordf tr ~time:2.0 "b %d" 42;
  check
    Alcotest.(list (pair (float 0.0) string))
    "ordered" [ (1.0, "a"); (2.0, "b 42") ] (Sim.Trace.to_list tr)

let test_trace_ring_wraps () =
  let tr = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.enable tr true;
  List.iter (fun i -> Sim.Trace.record tr ~time:(float_of_int i) (string_of_int i)) [ 1; 2; 3; 4; 5 ];
  let msgs = List.map snd (Sim.Trace.to_list tr) in
  check Alcotest.(list string) "last 3 kept" [ "3"; "4"; "5" ] msgs

let test_trace_clear () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable tr true;
  Sim.Trace.record tr ~time:0.0 "x";
  Sim.Trace.clear tr;
  check Alcotest.int "cleared" 0 (List.length (Sim.Trace.to_list tr))

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "pops in priority order" `Quick test_heap_order;
        Alcotest.test_case "FIFO on equal priorities" `Quick test_heap_fifo_ties;
        Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
        QCheck_alcotest.to_alcotest prop_heap_preserves_elements;
      ] );
    ( "rng",
      [
        Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        Alcotest.test_case "chance rate" `Quick test_rng_chance_rate;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        QCheck_alcotest.to_alcotest prop_rng_int_bounds;
        QCheck_alcotest.to_alcotest prop_rng_float_bounds;
      ] );
    ( "stats",
      [
        Alcotest.test_case "counters" `Quick test_stats_counters;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "empty summary" `Quick test_stats_empty_summary;
        Alcotest.test_case "reset" `Quick test_stats_reset;
        Alcotest.test_case "listing sorted" `Quick test_stats_listing;
        QCheck_alcotest.to_alcotest prop_quantile_monotone;
      ] );
    ( "trace",
      [
        Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
        Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
        Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
        Alcotest.test_case "clear" `Quick test_trace_clear;
      ] );
  ]

let () = Alcotest.run "sim" suite
