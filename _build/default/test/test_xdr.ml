(* Tests for the external data representation: codec round trips,
   combinators, sizing, and failure injection. *)

let check = Alcotest.check

let roundtrip codec v =
  match Xdr.encode codec v with
  | Error e -> Alcotest.failf "encode failed: %s" e
  | Ok enc -> (
      match Xdr.decode codec enc with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok v' -> v')

let test_primitives_roundtrip () =
  check Alcotest.unit "unit" () (roundtrip Xdr.unit ());
  check Alcotest.bool "bool" true (roundtrip Xdr.bool true);
  check Alcotest.int "int" (-42) (roundtrip Xdr.int (-42));
  check (Alcotest.float 0.0) "real" 3.25 (roundtrip Xdr.real 3.25);
  check Alcotest.string "string" "héllo\nworld" (roundtrip Xdr.string "héllo\nworld")

let test_combinators_roundtrip () =
  check Alcotest.(pair int string) "pair" (1, "x") (roundtrip Xdr.(pair int string) (1, "x"));
  check Alcotest.(list int) "list" [ 1; 2; 3 ] (roundtrip Xdr.(list int) [ 1; 2; 3 ]);
  check Alcotest.(list int) "empty list" [] (roundtrip Xdr.(list int) []);
  check Alcotest.(array bool) "array" [| true; false |]
    (roundtrip Xdr.(array bool) [| true; false |]);
  check Alcotest.(option int) "some" (Some 5) (roundtrip Xdr.(option int) (Some 5));
  check Alcotest.(option int) "none" None (roundtrip Xdr.(option int) None);
  check Alcotest.(result int string) "ok" (Ok 1) (roundtrip Xdr.(result int string) (Ok 1));
  check Alcotest.(result int string) "error" (Error "e")
    (roundtrip Xdr.(result int string) (Error "e"))

let test_triple_and_records () =
  let c3 = Xdr.(triple int string bool) in
  check Alcotest.bool "triple" true (roundtrip c3 (1, "a", true) = (1, "a", true));
  let rc = Xdr.(record2 "point" ("x", int) ("y", int)) in
  check Alcotest.(pair int int) "record2" (3, 4) (roundtrip rc (3, 4));
  let rc3 = Xdr.(record3 "p3" ("a", int) ("b", string) ("c", real)) in
  check Alcotest.bool "record3" true (roundtrip rc3 (1, "b", 2.5) = (1, "b", 2.5))

let test_conv () =
  (* a codec for a custom sum type via conv_partial *)
  let parity =
    Xdr.conv_partial "parity"
      (fun p -> Ok (match p with `Even -> 0 | `Odd -> 1))
      (function 0 -> Ok `Even | 1 -> Ok `Odd | n -> Error (string_of_int n))
      Xdr.int
  in
  check Alcotest.bool "conv roundtrip" true (roundtrip parity `Odd = `Odd);
  match Xdr.decode parity (Xdr.Int 7) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial decode should fail on 7"

let test_type_errors_reported () =
  (match Xdr.decode Xdr.int (Xdr.Str "nope") with
  | Error msg -> check Alcotest.bool "mentions expectation" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "wrong shape accepted");
  match Xdr.decode Xdr.(list int) (Xdr.List [ Xdr.Int 1; Xdr.Bool true ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "heterogeneous list accepted"

let test_wire_size_model () =
  check Alcotest.int "int" 8 (Xdr.wire_size (Xdr.Int 1));
  check Alcotest.int "bool" 1 (Xdr.wire_size (Xdr.Bool true));
  check Alcotest.int "string" (4 + 5) (Xdr.wire_size (Xdr.Str "hello"));
  check Alcotest.bool "list adds header" true
    (Xdr.wire_size (Xdr.List [ Xdr.Int 1; Xdr.Int 2 ]) = 4 + 16);
  check Alcotest.bool "bigger strings cost more" true
    (Xdr.wire_size (Xdr.Str (String.make 100 'x')) > Xdr.wire_size (Xdr.Str "x"))

let test_encoded_size () =
  check Alcotest.int "via codec" 8 (Xdr.encoded_size Xdr.int 7);
  let failing = Xdr.failing_encode ~every:1 Xdr.int in
  check Alcotest.int "failure sizes to 0" 0 (Xdr.encoded_size failing 7)

let test_failing_encode_every () =
  let c = Xdr.failing_encode ~every:3 Xdr.int in
  let results = List.init 6 (fun i -> Result.is_ok (Xdr.encode c i)) in
  check Alcotest.(list bool) "every third fails" [ true; true; false; true; true; false ]
    results

let test_failing_decode_every () =
  let c = Xdr.failing_decode ~every:2 ~reason:"boom" Xdr.int in
  let results = List.init 4 (fun _ -> Result.is_ok (Xdr.decode c (Xdr.Int 1))) in
  check Alcotest.(list bool) "every second fails" [ true; false; true; false ] results

let test_pp_value () =
  let s = Format.asprintf "%a" Xdr.pp_value (Xdr.Record [ ("a", Xdr.Int 1) ]) in
  check Alcotest.bool "prints" true (String.length s > 0)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"int codec roundtrips" ~count:500 QCheck.int (fun i ->
      roundtrip Xdr.int i = i)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string codec roundtrips" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 64) Gen.printable)
    (fun s -> roundtrip Xdr.string s = s)

let prop_nested_roundtrip =
  QCheck.Test.make ~name:"nested structures roundtrip" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 10)
              (pair small_int (list_of_size (Gen.int_range 0 5) small_string)))
    (fun v ->
      let codec = Xdr.(list (pair int (list string))) in
      roundtrip codec v = v)

let prop_wire_size_positive =
  QCheck.Test.make ~name:"wire size is positive and monotone in list length" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let enc xs = match Xdr.encode Xdr.(list int) xs with Ok v -> v | Error _ -> Xdr.Unit in
      let s = Xdr.wire_size (enc xs) in
      s > 0 && Xdr.wire_size (enc (0 :: xs)) > s)

let suite =
  [
    ( "codecs",
      [
        Alcotest.test_case "primitives roundtrip" `Quick test_primitives_roundtrip;
        Alcotest.test_case "combinators roundtrip" `Quick test_combinators_roundtrip;
        Alcotest.test_case "triple and records" `Quick test_triple_and_records;
        Alcotest.test_case "conv / conv_partial" `Quick test_conv;
        Alcotest.test_case "type errors reported" `Quick test_type_errors_reported;
        QCheck_alcotest.to_alcotest prop_int_roundtrip;
        QCheck_alcotest.to_alcotest prop_string_roundtrip;
        QCheck_alcotest.to_alcotest prop_nested_roundtrip;
      ] );
    ( "sizing",
      [
        Alcotest.test_case "wire size model" `Quick test_wire_size_model;
        Alcotest.test_case "encoded_size" `Quick test_encoded_size;
        QCheck_alcotest.to_alcotest prop_wire_size_positive;
      ] );
    ( "failure-injection",
      [
        Alcotest.test_case "failing encode" `Quick test_failing_encode_every;
        Alcotest.test_case "failing decode" `Quick test_failing_decode_every;
        Alcotest.test_case "pp" `Quick test_pp_value;
      ] );
  ]

let () = Alcotest.run "xdr" suite
