test/test_miniargus.mli:
