test/test_xdr.mli:
