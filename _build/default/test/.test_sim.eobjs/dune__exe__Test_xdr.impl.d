test/test_xdr.ml: Alcotest Format Gen List QCheck QCheck_alcotest Result String Xdr
