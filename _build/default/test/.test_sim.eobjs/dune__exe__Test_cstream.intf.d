test/test_cstream.mli:
