test/test_futures.ml: Alcotest Format Futures_baseline List QCheck QCheck_alcotest Sched
