test/test_futures.mli:
