test/test_guardian.ml: Alcotest Argus Array Core Cstream Hashtbl List Net Option Printf Sched String Xdr
