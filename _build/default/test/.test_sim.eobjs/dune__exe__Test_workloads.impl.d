test/test_workloads.ml: Alcotest Core Format Fun List Printf Scanf Sched String Workloads
