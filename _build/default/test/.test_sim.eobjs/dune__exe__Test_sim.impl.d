test/test_sim.ml: Alcotest Array Float Fun Gen List QCheck QCheck_alcotest Sim
