test/test_cstream.ml: Alcotest Cstream Gen List Net QCheck QCheck_alcotest Sched Sim String Xdr
