test/test_miniargus.ml: Alcotest Cstream List Miniargus Printf QCheck QCheck_alcotest String
