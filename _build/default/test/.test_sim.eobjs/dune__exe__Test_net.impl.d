test/test_net.ml: Alcotest List Net QCheck QCheck_alcotest Sched Sim
