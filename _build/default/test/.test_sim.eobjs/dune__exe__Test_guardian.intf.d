test/test_guardian.mli:
