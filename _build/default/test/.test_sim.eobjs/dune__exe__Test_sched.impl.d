test/test_sched.ml: Alcotest Float Gen List Option QCheck QCheck_alcotest Sched Sim String
