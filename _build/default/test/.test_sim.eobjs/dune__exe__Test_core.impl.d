test/test_core.ml: Alcotest Array Core Cstream List Sched String
