(* Tests for the simulated network: delivery, cost model, FIFO links,
   loss/duplication, crashes and partitions. *)

module S = Sched.Scheduler

let check = Alcotest.check

type msg = M of int

let make ?(cfg = Net.default_config) ?(seed = 1) () =
  let sched = S.create ~seed () in
  let net : msg Net.t = Net.create sched cfg in
  let a = Net.add_node net ~name:"a" in
  let b = Net.add_node net ~name:"b" in
  (sched, net, a, b)

let run sched = ignore (S.run sched : S.outcome)

let test_delivery () =
  let sched, net, a, b = make () in
  let got = ref [] in
  Net.set_receiver net b (fun ~src (M i) -> got := (src, i) :: !got);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:10 (M 1);
  run sched;
  check Alcotest.(list (pair int int)) "delivered with src" [ (Net.address a, 1) ] !got

let test_delivery_delay () =
  let cfg =
    { Net.default_config with Net.kernel_overhead = 1e-3; wire_latency = 5e-3; per_byte = 1e-4 }
  in
  let sched, net, a, b = make ~cfg () in
  let at = ref 0.0 in
  Net.set_receiver net b (fun ~src:_ _ -> at := S.now sched);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:10 (M 1);
  run sched;
  (* 2 * 1ms overhead + 5ms latency + 10 bytes * 0.1ms = 8ms *)
  check (Alcotest.float 1e-9) "cost model" 8e-3 !at

let test_send_cost () =
  let cfg = { Net.default_config with Net.kernel_overhead = 2e-3; per_byte = 1e-4 } in
  check (Alcotest.float 1e-12) "send_cost" (2e-3 +. (100.0 *. 1e-4))
    (Net.send_cost cfg ~bytes_:100)

let test_fifo_no_overtaking () =
  (* A small message sent after a large one must not arrive first. *)
  let sched, net, a, b = make () in
  let got = ref [] in
  Net.set_receiver net b (fun ~src:_ (M i) -> got := i :: !got);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:100_000 (M 1);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 2);
  run sched;
  check Alcotest.(list int) "FIFO link" [ 1; 2 ] (List.rev !got)

let test_crash_drops () =
  let sched, net, a, b = make () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  Net.crash net b;
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  run sched;
  check Alcotest.int "dropped at crashed node" 0 !got;
  check Alcotest.int "counted" 1
    (Sim.Stats.count (Sim.Stats.counter (Net.stats net) "msgs_dropped_crash"));
  Net.recover net b;
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 2);
  run sched;
  check Alcotest.int "delivered after recovery" 1 !got

let test_crashed_sender_drops () =
  let sched, net, a, b = make () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  Net.crash net a;
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  run sched;
  check Alcotest.int "nothing sent from crashed node" 0 !got

let test_inflight_lost_on_crash () =
  (* A message in flight when the destination crashes is lost. *)
  let sched, net, a, b = make () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  (* crash before the ~1.1ms delivery *)
  S.at sched 0.5e-3 (fun () -> Net.crash net b);
  run sched;
  check Alcotest.int "in-flight message dropped" 0 !got

let test_partition_blocks_both_ways () =
  let sched, net, a, b = make () in
  let got_b = ref 0 and got_a = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got_b);
  Net.set_receiver net a (fun ~src:_ _ -> incr got_a);
  Net.partition net (Net.address a) (Net.address b);
  check Alcotest.bool "partitioned" true (Net.partitioned net (Net.address a) (Net.address b));
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  Net.send net ~src:b ~dst:(Net.address a) ~bytes_:1 (M 2);
  run sched;
  check Alcotest.int "a->b blocked" 0 !got_b;
  check Alcotest.int "b->a blocked" 0 !got_a;
  Net.heal net (Net.address a) (Net.address b);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 3);
  run sched;
  check Alcotest.int "healed" 1 !got_b

let test_partition_mid_flight () =
  let sched, net, a, b = make () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  S.at sched 0.5e-3 (fun () -> Net.partition net (Net.address a) (Net.address b));
  run sched;
  check Alcotest.int "in-flight message lost to partition" 0 !got

let test_loss_rate_statistics () =
  let cfg = Net.lossy ~loss:0.5 Net.default_config in
  let sched, net, a, b = make ~cfg () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  let n = 2000 in
  for i = 1 to n do
    Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M i)
  done;
  run sched;
  let rate = float_of_int !got /. float_of_int n in
  check Alcotest.bool "about half arrive" true (rate > 0.44 && rate < 0.56)

let test_duplicates_delivered_twice () =
  let cfg = Net.lossy ~loss:0.0 ~dup:1.0 Net.default_config in
  let sched, net, a, b = make ~cfg () in
  let got = ref 0 in
  Net.set_receiver net b (fun ~src:_ _ -> incr got);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  run sched;
  check Alcotest.int "delivered twice" 2 !got

let test_stats_counters () =
  let sched, net, a, b = make () in
  Net.set_receiver net b (fun ~src:_ _ -> ());
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:25 (M 1);
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:15 (M 2);
  run sched;
  let c name = Sim.Stats.count (Sim.Stats.counter (Net.stats net) name) in
  check Alcotest.int "msgs_sent" 2 (c "msgs_sent");
  check Alcotest.int "msgs_delivered" 2 (c "msgs_delivered");
  check Alcotest.int "bytes_sent" 40 (c "bytes_sent")

let test_no_receiver_counted () =
  let sched, net, a, b = make () in
  Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M 1);
  run sched;
  check Alcotest.int "dropped (no receiver)" 1
    (Sim.Stats.count (Sim.Stats.counter (Net.stats net) "msgs_dropped_no_receiver"))

let test_deterministic_with_seed () =
  let deliveries seed =
    let cfg = Net.lossy ~loss:0.3 { Net.default_config with Net.jitter = 1e-3 } in
    let sched, net, a, b = make ~cfg ~seed () in
    let got = ref [] in
    Net.set_receiver net b (fun ~src:_ (M i) -> got := (i, S.now sched) :: !got);
    for i = 1 to 50 do
      Net.send net ~src:a ~dst:(Net.address b) ~bytes_:i (M i)
    done;
    run sched;
    !got
  in
  check Alcotest.bool "same seed, same run" true (deliveries 7 = deliveries 7);
  check Alcotest.bool "different seed, different run" true (deliveries 7 <> deliveries 8)

let prop_jitter_never_reorders =
  QCheck.Test.make ~name:"FIFO preserved under jitter for any seed" ~count:50 QCheck.small_int
    (fun seed ->
      let cfg = { Net.default_config with Net.jitter = 5e-3 } in
      let sched, net, a, b = make ~cfg ~seed () in
      let got = ref [] in
      Net.set_receiver net b (fun ~src:_ (M i) -> got := i :: !got);
      for i = 1 to 30 do
        Net.send net ~src:a ~dst:(Net.address b) ~bytes_:1 (M i)
      done;
      run sched;
      List.rev !got = List.init 30 (fun i -> i + 1))

let suite =
  [
    ( "delivery",
      [
        Alcotest.test_case "basic" `Quick test_delivery;
        Alcotest.test_case "cost model delay" `Quick test_delivery_delay;
        Alcotest.test_case "send_cost" `Quick test_send_cost;
        Alcotest.test_case "FIFO link" `Quick test_fifo_no_overtaking;
        QCheck_alcotest.to_alcotest prop_jitter_never_reorders;
      ] );
    ( "failures",
      [
        Alcotest.test_case "crash drops" `Quick test_crash_drops;
        Alcotest.test_case "crashed sender" `Quick test_crashed_sender_drops;
        Alcotest.test_case "in-flight lost on crash" `Quick test_inflight_lost_on_crash;
        Alcotest.test_case "partition both ways" `Quick test_partition_blocks_both_ways;
        Alcotest.test_case "partition mid-flight" `Quick test_partition_mid_flight;
        Alcotest.test_case "loss rate" `Quick test_loss_rate_statistics;
        Alcotest.test_case "duplication" `Quick test_duplicates_delivered_twice;
      ] );
    ( "accounting",
      [
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
        Alcotest.test_case "no receiver counted" `Quick test_no_receiver_counted;
        Alcotest.test_case "deterministic per seed" `Quick test_deterministic_with_seed;
      ] );
  ]

let () = Alcotest.run "net" suite
