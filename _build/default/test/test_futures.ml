(* Tests for the MultiLisp-style futures baseline (§3.3): dynamic
   checking, implicit touching, and exception-as-error-value
   propagation (including the loss of context the paper criticises). *)

module S = Sched.Scheduler
module F = Futures_baseline

let check = Alcotest.check

let run_ok sched =
  match S.run sched with
  | S.Completed -> ()
  | S.Deadlocked _ -> Alcotest.fail "deadlock"
  | S.Time_limit -> Alcotest.fail "time limit"

let test_plain_arithmetic () =
  check Alcotest.bool "int add" true (F.add (F.Int 2) (F.Int 3) = F.Int 5);
  check Alcotest.bool "real add" true (F.add (F.Real 1.5) (F.Real 2.0) = F.Real 3.5);
  check Alcotest.bool "mixed promotes" true (F.add (F.Int 1) (F.Real 0.5) = F.Real 1.5);
  check Alcotest.bool "sub" true (F.sub (F.Int 5) (F.Int 3) = F.Int 2);
  check Alcotest.bool "mul" true (F.mul (F.Int 4) (F.Int 6) = F.Int 24);
  check Alcotest.bool "lt" true (F.lt (F.Int 1) (F.Int 2) = F.Bool true);
  check Alcotest.bool "eq" true (F.eq (F.Str "a") (F.Str "a") = F.Bool true)

let test_type_errors_become_error_values () =
  match F.add (F.Int 1) (F.Str "x") with
  | F.Err _ -> ()
  | v -> Alcotest.failf "expected error value, got %s" (Format.asprintf "%a" F.pp v)

let test_future_resolves_and_touches () =
  let sched = S.create () in
  let result = ref F.Nil in
  ignore
    (S.spawn sched (fun () ->
         let fut =
           F.future sched (fun () ->
               S.sleep sched 1.0;
               F.Int 21)
         in
         (* using the future in arithmetic touches it implicitly *)
         result := F.mul fut (F.Int 2)));
  run_ok sched;
  check Alcotest.bool "implicit claim" true (!result = F.Int 42)

let test_touch_blocks_until_resolved () =
  let sched = S.create () in
  let at = ref 0.0 in
  let fut, resolve = F.make_unresolved sched in
  ignore
    (S.spawn sched (fun () ->
         ignore (F.touch fut : F.dyn);
         at := S.now sched));
  ignore
    (S.spawn sched (fun () ->
         S.sleep sched 2.0;
         resolve (F.Int 1)));
  run_ok sched;
  check (Alcotest.float 1e-9) "blocked until resolution" 2.0 !at

let test_chained_futures_touch_through () =
  let sched = S.create () in
  let f1, r1 = F.make_unresolved sched in
  let f2, r2 = F.make_unresolved sched in
  r2 (F.Int 9);
  r1 f2; (* a future resolving to another future *)
  check Alcotest.bool "touch chases chains" true (F.touch f1 = F.Int 9)

let test_cons_is_nonstrict () =
  let sched = S.create () in
  let fut, _resolve = F.make_unresolved sched in
  (* cons does not touch: building a list of pending futures is fine *)
  let lst = F.cons fut F.Nil in
  check Alcotest.bool "car returns the untouched future" true (F.is_future (F.car lst))

let test_exception_becomes_error_value () =
  let sched = S.create () in
  let out = ref F.Nil in
  ignore
    (S.spawn sched (fun () ->
         let fut = F.future sched (fun () -> failwith "deep inside the computation") in
         (* The paper's §3.3 point: by the time the error is observed,
            the surrounding expression has swallowed the context — the
            consumer only sees an opaque error value. *)
         out := F.add (F.mul fut (F.Int 2)) (F.Int 1)));
  run_ok sched;
  match !out with
  | F.Err _ -> ()
  | v -> Alcotest.failf "expected propagated error value, got %s" (Format.asprintf "%a" F.pp v)

let test_error_value_propagates_through_sum () =
  let sched = S.create () in
  let fut, resolve = F.make_unresolved sched in
  resolve (F.Err "bad element");
  let lst = F.dyn_of_int_list [ 1; 2; 3 ] in
  let with_err = F.cons fut lst in
  match F.sum_list with_err with
  | F.Err _ -> ()
  | v -> Alcotest.failf "sum over error should be error, got %s" (Format.asprintf "%a" F.pp v)

let test_sum_list () =
  check Alcotest.bool "sum" true (F.sum_list (F.dyn_of_int_list [ 1; 2; 3; 4 ]) = F.Int 10);
  check Alcotest.bool "empty" true (F.sum_list F.Nil = F.Int 0)

let test_double_resolution_rejected () =
  let sched = S.create () in
  let _fut, resolve = F.make_unresolved sched in
  resolve (F.Int 1);
  match resolve (F.Int 2) with
  | () -> Alcotest.fail "double resolution should be rejected"
  | exception Invalid_argument _ -> ()

let test_many_futures_parallel () =
  let sched = S.create () in
  let total = ref F.Nil in
  ignore
    (S.spawn sched (fun () ->
         let futs =
           List.init 50 (fun i ->
               F.future sched (fun () ->
                   S.sleep sched 1.0;
                   F.Int i))
         in
         let lst = List.fold_right F.cons futs F.Nil in
         total := F.sum_list lst));
  run_ok sched;
  check Alcotest.bool "sum of 0..49" true (!total = F.Int 1225);
  ()

let prop_sum_matches_plain =
  QCheck.Test.make ~name:"future sum equals plain sum" ~count:100 QCheck.(list small_int)
    (fun xs ->
      F.sum_list (F.dyn_of_int_list xs) = F.Int (List.fold_left ( + ) 0 xs))

let suite =
  [
    ( "dynamic-ops",
      [
        Alcotest.test_case "plain arithmetic" `Quick test_plain_arithmetic;
        Alcotest.test_case "type errors become error values" `Quick
          test_type_errors_become_error_values;
        Alcotest.test_case "sum_list" `Quick test_sum_list;
        QCheck_alcotest.to_alcotest prop_sum_matches_plain;
      ] );
    ( "futures",
      [
        Alcotest.test_case "resolve + implicit touch" `Quick test_future_resolves_and_touches;
        Alcotest.test_case "touch blocks" `Quick test_touch_blocks_until_resolved;
        Alcotest.test_case "touch chases chains" `Quick test_chained_futures_touch_through;
        Alcotest.test_case "cons is non-strict" `Quick test_cons_is_nonstrict;
        Alcotest.test_case "double resolution rejected" `Quick test_double_resolution_rejected;
        Alcotest.test_case "many futures in parallel" `Quick test_many_futures_parallel;
      ] );
    ( "error-values (§3.3)",
      [
        Alcotest.test_case "exception becomes error value" `Quick
          test_exception_becomes_error_value;
        Alcotest.test_case "error propagates through sum" `Quick
          test_error_value_propagates_through_sum;
      ] );
  ]

let () = Alcotest.run "futures_baseline" suite
