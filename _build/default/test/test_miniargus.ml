(* Tests for the Mini-Argus language: lexer, parser (with a pretty-
   printer round-trip property), the type checker's promise/signal
   rules, and end-to-end interpreted semantics. *)

module MA = Miniargus
module I = MA.Interp

let check = Alcotest.check

(* Helpers *)

let parse_ok src =
  match MA.Run.parse src with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "parse failed: %s" (MA.Run.error_to_string e)

let type_error src =
  match MA.Run.check src with
  | Error { phase = `Type; message; _ } -> message
  | Error e -> Alcotest.failf "expected type error, got: %s" (MA.Run.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a type error, program was accepted"

let checks_ok src =
  match MA.Run.check src with
  | Ok t -> t
  | Error e -> Alcotest.failf "check failed: %s" (MA.Run.error_to_string e)

let run_ok ?config ?chan_config ?crashes src =
  match MA.Run.run ?config ?chan_config ?crashes src with
  | Ok outcome ->
      (match outcome.I.deadlocked with
      | Some fs -> Alcotest.failf "program hangs: %s" (String.concat ", " fs)
      | None -> ());
      List.iter
        (fun (p, r) ->
          match r with
          | I.Pok -> ()
          | I.Pfailed m -> Alcotest.failf "process %s failed: %s" p m)
        outcome.I.processes;
      outcome
  | Error e -> Alcotest.failf "run failed: %s" (MA.Run.error_to_string e)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

(* A small server used by many programs below. *)
let echo_guardian =
  {|
guardian svc
  group ops
    handler double(n: int) returns (int)
      return n * 2
    end
    handler fail(n: int) returns (int) signals (too_big(int))
      if n > 100 then
        signal too_big(100)
      end
      return n
    end
  end
end
|}

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basics () =
  let toks = MA.Lexer.tokens_of_string "var x := 3 % comment\n y" in
  let kinds = List.map fst toks in
  check Alcotest.bool "tokens" true
    (kinds
    = [ MA.Token.KW_VAR; MA.Token.IDENT "x"; MA.Token.ASSIGN; MA.Token.INT 3;
        MA.Token.IDENT "y"; MA.Token.EOF ])

let test_lexer_numbers_and_strings () =
  let toks = MA.Lexer.tokens_of_string {|3.25 10 "hi\n" 1e3|} in
  let kinds = List.map fst toks in
  check Alcotest.bool "literals" true
    (kinds
    = [ MA.Token.REAL 3.25; MA.Token.INT 10; MA.Token.STRING "hi\n"; MA.Token.REAL 1000.0;
        MA.Token.EOF ])

let test_lexer_operators () =
  let toks = MA.Lexer.tokens_of_string ":= ~= <= >= .. . = ^" in
  let kinds = List.map fst toks in
  check Alcotest.bool "operators" true
    (kinds
    = [ MA.Token.ASSIGN; MA.Token.NEQ; MA.Token.LE; MA.Token.GE; MA.Token.DOTDOT;
        MA.Token.DOT; MA.Token.EQ; MA.Token.CARET; MA.Token.EOF ])

let test_lexer_error () =
  match MA.Lexer.tokens_of_string "a # b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception MA.Lexer.Error (_, _) -> ()

let test_lexer_unterminated_string () =
  match MA.Lexer.tokens_of_string "\"oops" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception MA.Lexer.Error (msg, _) ->
      check Alcotest.bool "message" true (contains msg "unterminated")

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_expr_precedence () =
  let e = MA.Parser.parse_expr_string "1 + 2 * 3" in
  match e.MA.Ast.e with
  | MA.Ast.Ebinop (MA.Ast.Add, _, { MA.Ast.e = MA.Ast.Ebinop (MA.Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "precedence: * binds tighter than +"

let test_parse_postfix_chain () =
  let e = MA.Parser.parse_expr_string "a[1].f(2)" in
  match e.MA.Ast.e with
  | MA.Ast.Eapply ({ MA.Ast.e = MA.Ast.Efield ({ MA.Ast.e = MA.Ast.Eindex _; _ }, "f"); _ }, _)
    ->
      ()
  | _ -> Alcotest.fail "postfix chain shape"

let test_parse_stream_fork () =
  let e = MA.Parser.parse_expr_string "stream g.h(1)" in
  (match e.MA.Ast.e with
  | MA.Ast.Estream _ -> ()
  | _ -> Alcotest.fail "stream");
  let e = MA.Parser.parse_expr_string "fork p(1, 2)" in
  match e.MA.Ast.e with MA.Ast.Efork _ -> () | _ -> Alcotest.fail "fork"

let test_parse_program_shapes () =
  let prog =
    parse_ok
      {|
type pt = promise returns (real) signals (oops(string))
guardian g
  var count: int := 0
  group grp
    handler h(x: int) returns (int) signals (e1(string), e2)
      return x
    end
  end
end
proc p(q: queue[int]) returns (int)
  return deq(q)
end
process main
  var x := 1
  if x > 0 then
    x := x - 1
  elseif x = 0 then
    x := 5
  else
    x := 0
  end
  while x > 0 do
    x := x - 1
  end
  for i in 1 .. 3 do
    x := x + i
  end
  coenter
  action
    x := 1
  action
    x := 2
  end
end
|}
  in
  check Alcotest.int "four items" 4 (List.length prog)

let test_parse_except_attaches () =
  let prog =
    parse_ok
      {|
process main
  begin
    var y := 1
  end except
  when oops(s: string):
    put_line(s)
  when others:
    put_line("?")
  end
end
|}
  in
  match prog with
  | [ MA.Ast.Iprocess { MA.Ast.prc_body = [ { MA.Ast.s = MA.Ast.Sexcept (_, arms); _ } ]; _ } ]
    ->
      check Alcotest.int "two arms" 2 (List.length arms)
  | _ -> Alcotest.fail "expected one process with one except statement"

let test_parse_error_reports_line () =
  match MA.Run.parse "process main\n  var x := (1 +\nend" with
  | Error { phase = `Parse; line; _ } -> check Alcotest.bool "line recorded" true (line >= 2)
  | Error _ | Ok _ -> Alcotest.fail "expected parse error"

(* Round-trip: parse (pretty (parse src)) gives the same AST with
   positions erased. *)
let strip_program prog =
  (* compare via the pretty-printer itself: print, reparse, print *)
  let p1 = MA.Pretty.program_to_string prog in
  let p2 = MA.Pretty.program_to_string (parse_ok p1) in
  (p1, p2)

let test_pretty_roundtrip_fixed () =
  List.iter
    (fun src ->
      let p1, p2 = strip_program (parse_ok src) in
      check Alcotest.string "roundtrip fixpoint" p1 p2)
    [
      echo_guardian;
      {|
process main
  var a: array[record[g: int, s: string]] := [{g = 1, s = "x"}]
  var q: queue[promise returns (real)] := queue()
  for e in a do
    put_line(e.s ^ int_to_string(e.g))
  end
end
|};
      {|
proc f(x: int) returns (int) signals (neg)
  if x < 0 then
    signal neg
  end
  return x * x
end
process main
  var p := fork f(3)
  var r := 0
  begin
    r := claim(p)
  end except
  when neg:
    r := 0
  when others:
    r := -1
  end
end
|};
    ]

(* ------------------------------------------------------------------ *)
(* Type checker: acceptance *)

let test_check_figures () =
  let read path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  List.iter
    (fun f ->
      ignore
        (checks_ok (read ("../examples/argus/" ^ f)) : MA.Tast.tprogram))
    [ "grades_fig31.arg"; "grades_fig41.arg"; "grades_fig42.arg"; "mailer.arg";
      "cascade.arg"; "parallel_fib.arg"; "breaks.arg"; "broker.arg"; "windows.arg" ]

let test_check_promise_type_from_stream () =
  ignore
    (checks_ok
       (echo_guardian
       ^ {|
process main
  var p: promise returns (int) := stream svc.double(3)
  var x: int := 0
  x := claim(p) except when others: x := -1 end
end
|})
      : MA.Tast.tprogram)

(* Type checker: rejections — each an essential rule. *)

let test_reject_wrong_arg_type () =
  let msg =
    type_error (echo_guardian ^ {|
process main
  var p := stream svc.double("three")
end
|})
  in
  check Alcotest.bool "mentions type" true (contains msg "expected int")

let test_reject_claim_non_promise () =
  let msg = type_error {|
process main
  var x := claim(3)
end
|} in
  check Alcotest.bool "claim wants promise" true (contains msg "claim expects a promise")

let test_reject_promise_mismatch () =
  let msg =
    type_error
      (echo_guardian
     ^ {|
process main
  var p: promise returns (real) := stream svc.double(3)
end
|})
  in
  check Alcotest.bool "promise types differ" true (contains msg "declared")

let test_reject_unhandled_signal_in_process () =
  (* claim can raise too_big, which a process cannot let escape. *)
  let msg =
    type_error
      (echo_guardian
     ^ {|
process main
  var p := stream svc.fail(200)
  var x := claim(p)
end
|})
  in
  check Alcotest.bool "signal must be handled" true (contains msg "too_big")

let test_accept_handled_signal () =
  ignore
    (checks_ok
       (echo_guardian
      ^ {|
process main
  var p := stream svc.fail(200)
  var x := 0
  begin
    x := claim(p)
  end except
  when too_big(limit: int):
    x := limit
  when others:
    x := -1
  end
end
|})
      : MA.Tast.tprogram)

let test_reject_undeclared_signal_in_handler () =
  let msg =
    type_error
      {|
guardian g
  group grp
    handler h(x: int) returns (int)
      signal oops("bad")
      return x
    end
  end
end
process main
end
|}
  in
  check Alcotest.bool "must declare" true (contains msg "oops")

let test_reject_wrong_arm_payload () =
  let msg =
    type_error
      (echo_guardian
     ^ {|
process main
  var p := stream svc.fail(1)
  var x := 0
  begin
    x := claim(p)
  end except
  when too_big(limit: string):
    put_line(limit)
  when others:
    x := -1
  end
end
|})
  in
  check Alcotest.bool "payload type mismatch" true (contains msg "too_big")

let test_reject_impossible_arm () =
  let msg =
    type_error
      {|
process main
  begin
    var x := 1
  end except
  when ghost:
    put_line("never")
  end
end
|}
  in
  check Alcotest.bool "impossible arm rejected" true (contains msg "cannot signal")

let test_reject_promise_in_handler_signature () =
  let msg =
    type_error
      {|
guardian g
  group grp
    handler h(p: promise returns (int)) returns (int)
      return 0
    end
  end
end
process main
end
|}
  in
  check Alcotest.bool "promises not transmissible" true (contains msg "transmissible")

let test_reject_declaring_unavailable () =
  let msg =
    type_error
      {|
guardian g
  group grp
    handler h(x: int) returns (int) signals (unavailable(string))
      return x
    end
  end
end
process main
end
|}
  in
  check Alcotest.bool "universal signals implicit" true (contains msg "unavailable")

let test_reject_unknown_handler () =
  let msg = type_error (echo_guardian ^ {|
process main
  var x := svc.nope(1)
end
|}) in
  check Alcotest.bool "unknown handler" true (contains msg "no handler")

let test_reject_handler_ref_as_value () =
  let msg = type_error (echo_guardian ^ {|
process main
  var x := svc.double
end
|}) in
  check Alcotest.bool "handler as value" true (contains msg "used as a value")

let test_reject_empty_array_without_annotation () =
  let msg = type_error {|
process main
  var a := []
end
|} in
  check Alcotest.bool "needs annotation" true (contains msg "annotate")

let test_reject_synch_exception_unhandled () =
  let msg =
    type_error (echo_guardian ^ {|
process main
  synch svc.double
end
|})
  in
  check Alcotest.bool "exception_reply must be handled" true (contains msg "exception_reply")

let test_reject_guardian_var_remote_init () =
  let msg =
    type_error
      (echo_guardian
     ^ {|
guardian other
  var x: int := svc.double(1)
  group grp
    handler h(y: int) returns (int)
      return y
    end
  end
end
process main
end
|})
  in
  check Alcotest.bool "no remote calls in guardian init" true (contains msg "remote")

let test_reject_fork_non_proc () =
  let msg = type_error {|
process main
  var p := fork put_line("x")
end
|} in
  check Alcotest.bool "fork wants proc" true (contains msg "proc")

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_run_rpc_and_stream () =
  let outcome =
    run_ok
      (echo_guardian
     ^ {|
process main
  var direct: int := 0
  direct := svc.double(21) except when others: direct := -1 end
  put_line("rpc: " ^ int_to_string(direct))
  var promises: array[promise returns (int)] := []
  for i in 1 .. 3 do
    addh(promises, stream svc.double(i))
  end
  flush svc.double
  for i in 0 .. len(promises) - 1 do
    var v: int := 0
    v := claim(promises[i]) except when others: v := -1 end
    put_line("stream: " ^ int_to_string(v))
  end
end
|})
  in
  check Alcotest.(list string) "output"
    [ "rpc: 42"; "stream: 2"; "stream: 4"; "stream: 6" ]
    outcome.I.output

let test_run_typed_signal () =
  let outcome =
    run_ok
      (echo_guardian
     ^ {|
process main
  var x := 0
  begin
    x := svc.fail(200)
  end except
  when too_big(limit: int):
    put_line("limit is " ^ int_to_string(limit))
  when others:
    put_line("?")
  end
end
|})
  in
  check Alcotest.(list string) "typed signal caught" [ "limit is 100" ] outcome.I.output

let test_run_guardian_state_is_shared () =
  let outcome =
    run_ok
      {|
guardian counter
  var count: int := 0
  group ops
    handler bump() returns (int)
      count := count + 1
      return count
    end
  end
end
process main
  var a := 0
  var b := 0
  a := counter.bump() except when others: a := -1 end
  b := counter.bump() except when others: b := -1 end
  put_line(int_to_string(a) ^ "," ^ int_to_string(b))
end
|}
  in
  check Alcotest.(list string) "state persists across calls" [ "1,2" ] outcome.I.output

let test_run_ready_and_ordering () =
  (* promise i ready implies promise i-1 ready (checked in-language) *)
  let outcome =
    run_ok
      (echo_guardian
     ^ {|
process main
  var a: array[promise returns (int)] := []
  for i in 1 .. 5 do
    addh(a, stream svc.double(i))
  end
  flush svc.double
  var v := 0
  v := claim(a[4]) except when others: v := -1 end
  % the last promise is ready, so all earlier ones must be too
  var all_ready := true
  for i in 0 .. 4 do
    if not ready(a[i]) then
      all_ready := false
    end
  end
  if all_ready then
    put_line("ordered")
  else
    put_line("OUT OF ORDER")
  end
end
|})
  in
  check Alcotest.(list string) "readiness order" [ "ordered" ] outcome.I.output

let test_run_fork_and_claim () =
  let outcome =
    run_ok
      {|
proc fib(n: int) returns (int)
  if n < 2 then
    return n
  end
  var a := fork fib(n - 1)
  var b := fork fib(n - 2)
  var x := 0
  var y := 0
  x := claim(a) except when others: x := 0 end
  y := claim(b) except when others: y := 0 end
  return x + y
end
process main
  var p := fork fib(10)
  var v := 0
  v := claim(p) except when others: v := -1 end
  put_line(int_to_string(v))
end
|}
  in
  check Alcotest.(list string) "parallel fib" [ "55" ] outcome.I.output

let test_run_proc_signal_via_fork () =
  let outcome =
    run_ok
      {|
proc risky(n: int) returns (int) signals (nope(string))
  if n > 5 then
    signal nope("too big")
  end
  return n
end
process main
  var p := fork risky(10)
  var v := 0
  begin
    v := claim(p)
  end except
  when nope(why: string):
    put_line("signalled: " ^ why)
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "fork signal" [ "signalled: too big" ] outcome.I.output

let test_run_coenter_group_termination () =
  let outcome =
    run_ok
      {|
proc boom() signals (bang)
  sleep(0.001)
  signal bang
end
process main
  var survived := false
  begin
    coenter
    action
      sleep(100.0)
      survived := true
    action
      boom()
    end
  end except
  when bang:
    put_line("bang terminated the group")
  when others:
    put_line("?")
  end
  if survived then
    put_line("SIBLING SURVIVED")
  end
end
|}
  in
  check Alcotest.(list string) "group termination" [ "bang terminated the group" ]
    outcome.I.output

let test_run_queue_pipeline () =
  let outcome =
    run_ok
      (echo_guardian
     ^ {|
process main
  var q: queue[promise returns (int)] := queue()
  coenter
  action
    for i in 1 .. 4 do
      enq(q, stream svc.double(i))
    end
    flush svc.double
  action
    for i in 1 .. 4 do
      var v := 0
      v := claim(deq(q)) except when others: v := -1 end
      put_line(int_to_string(v))
    end
  end
end
|})
  in
  check Alcotest.(list string) "pipeline output" [ "2"; "4"; "6"; "8" ] outcome.I.output

let test_run_crash_gives_unavailable () =
  let outcome =
    match
      MA.Run.run
        ~chan_config:
          { Cstream.Chanhub.default_config with retransmit_timeout = 2e-3; max_retries = 2 }
        ~crashes:[ ("svc", 0.0) ]
        (echo_guardian
       ^ {|
process main
  var x := 0
  begin
    x := svc.double(1)
  end except
  when unavailable(why: string):
    put_line("unavailable")
  when others(d: string):
    put_line("other: " ^ d)
  end
end
|})
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "run failed: %s" (MA.Run.error_to_string e)
  in
  check Alcotest.(list string) "unavailable surfaced" [ "unavailable" ] outcome.I.output

let test_run_fig41_hang_detected () =
  let read path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let src = read "../examples/argus/grades_fig41.arg" in
  match
    MA.Run.run
      ~chan_config:
        { Cstream.Chanhub.default_config with retransmit_timeout = 2e-3; max_retries = 3 }
      ~crashes:[ ("db", 0.002) ] src
  with
  | Ok outcome -> (
      match outcome.I.deadlocked with
      | Some fibers ->
          check Alcotest.bool "do_print is stuck" true
            (List.exists (fun f -> contains f "do_print") fibers)
      | None -> Alcotest.fail "expected the Figure 4-1 termination problem")
  | Error e -> Alcotest.failf "run failed: %s" (MA.Run.error_to_string e)

let test_run_fig42_terminates_cleanly () =
  let read path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let src = read "../examples/argus/grades_fig42.arg" in
  match
    MA.Run.run
      ~chan_config:
        { Cstream.Chanhub.default_config with retransmit_timeout = 2e-3; max_retries = 3 }
      ~crashes:[ ("db", 0.002) ] src
  with
  | Ok outcome ->
      check Alcotest.bool "no deadlock" true (outcome.I.deadlocked = None);
      check Alcotest.bool "exception reported" true
        (List.exists (fun l -> contains l "pipeline stopped") outcome.I.output)
  | Error e -> Alcotest.failf "run failed: %s" (MA.Run.error_to_string e)

let test_run_handler_crash_is_failure () =
  let outcome =
    run_ok
      {|
guardian g
  group grp
    handler div(a: int, b: int) returns (int)
      return a / b
    end
  end
end
process main
  var x := 0
  begin
    x := g.div(1, 0)
  end except
  when failure(why: string):
    put_line("failure caught")
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "failure surfaced" [ "failure caught" ] outcome.I.output

let read_example f =
  let path = "../examples/argus/" ^ f in
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_run_cascade_example () =
  let outcome = run_ok (read_example "cascade.arg") in
  check Alcotest.(list string) "all items written" [ "items written: 20" ] outcome.I.output

let test_run_parallel_fib_example () =
  let outcome = run_ok (read_example "parallel_fib.arg") in
  check Alcotest.bool "fib(12)" true
    (List.mem "fib(12) = 144" outcome.I.output);
  check Alcotest.bool "signal path" true
    (List.mem "fib(-3) signalled negative, as declared" outcome.I.output)

let test_run_mailer_example () =
  let outcome = run_ok (read_example "mailer.arg") in
  check Alcotest.bool "c1 sees ben's mail" true
    (List.mem "c1 sees 1 message(s) for ben" outcome.I.output);
  check Alcotest.bool "bounce detected via synch" true
    (List.mem "c1: some mail bounced (exception_reply from synch)" outcome.I.output)

let test_run_broker_ports_example () =
  let outcome = run_ok (read_example "broker.arg") in
  check Alcotest.(list string) "ports transmitted and used"
    [ "square: 49, 81"; "double: 14, 18"; "directory signalled unknown(cube)" ]
    outcome.I.output

let test_reject_port_type_mismatch () =
  let msg =
    type_error
      {|
guardian w
  group jobs
    handler work(n: int) returns (int)
      return n
    end
  end
end
process main
  var p: port (string) returns (int) := port w.work
end
|}
  in
  check Alcotest.bool "port signature mismatch" true (contains msg "declared")

let test_reject_port_call_bad_args () =
  let msg =
    type_error
      {|
guardian w
  group jobs
    handler work(n: int) returns (int)
      return n
    end
  end
end
process main
  var p: port (int) returns (int) := port w.work
  var x := 0
  x := p("seven") except when others: x := -1 end
end
|}
  in
  check Alcotest.bool "port call arg types checked" true (contains msg "expected int")

let test_port_in_handler_signature_allowed () =
  (* ports ARE transmissible — unlike promises *)
  ignore
    (checks_ok
       {|
guardian w
  group jobs
    handler work(n: int) returns (int)
      return n
    end
    handler reflect() returns (port (int) returns (int))
      return port w.work
    end
  end
end
process main
end
|}
      : MA.Tast.tprogram)

let test_run_port_roundtrip_through_wire () =
  let outcome =
    run_ok
      {|
guardian w
  group jobs
    handler work(n: int) returns (int)
      return n * 3
    end
    handler reflect() returns (port (int) returns (int))
      return port w.work
    end
  end
end
process main
  var p: port (int) returns (int) := port w.work
  var q: port (int) returns (int) := p
  var x := 0
  begin
    q := w.reflect()
    x := q(14)
  end except when others: x := -1 end
  put_line(int_to_string(x))
end
|}
  in
  check Alcotest.(list string) "transmitted port usable" [ "42" ] outcome.I.output

let test_run_windows_example () =
  let outcome = run_ok (read_example "windows.arg") in
  check Alcotest.bool "window output present" true
    (List.mem "[w0] booting" outcome.I.output && List.mem "[w1] hello from chat" outcome.I.output);
  check Alcotest.bool "pool exhaustion signalled" true
    (List.mem "third window refused, as declared" outcome.I.output);
  (* output to one window stays in order *)
  let w0 = List.filter (fun l -> String.length l >= 4 && String.sub l 0 4 = "[w0]") outcome.I.output in
  check Alcotest.(list string) "w0 ordered" [ "[w0] <log>"; "[w0] booting"; "[w0] ready" ] w0

let test_run_breaks_example_restart_recovers () =
  match
    MA.Run.run
      ~chan_config:
        { Cstream.Chanhub.default_config with retransmit_timeout = 2e-3; max_retries = 3 }
      ~crashes:[ ("store", 0.005) ]
      ~recoveries:[ ("store", 0.050) ]
      (read_example "breaks.arg")
  with
  | Ok outcome ->
      check Alcotest.bool "no hang" true (outcome.I.deadlocked = None);
      check Alcotest.(list string) "full break/restart lifecycle"
        [
          "before crash: put -> 1";
          "during crash: unavailable, as expected";
          "after restart: put -> 2";
        ]
        outcome.I.output
  | Error e -> Alcotest.failf "run failed: %s" (MA.Run.error_to_string e)

let test_run_send_and_synch () =
  let outcome =
    run_ok
      {|
guardian logsvc
  var lines: int := 0
  group logging
    handler log(line: string)
      lines := lines + 1
    end
    handler count() returns (int)
      return lines
    end
  end
end
process main
  for i in 1 .. 5 do
    send logsvc.log("entry " ^ int_to_string(i))
  end
  begin
    synch logsvc.log
    var n := 0
    n := logsvc.count() except when others: n := -1 end
    put_line(int_to_string(n))
  end except
  when exception_reply:
    put_line("a send failed")
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "sends completed before synch returned" [ "5" ] outcome.I.output

let test_reject_arity_mismatch () =
  let msg = type_error (echo_guardian ^ {|
process main
  var x := svc.double(1, 2)
end
|}) in
  check Alcotest.bool "arity" true (contains msg "argument")

let test_reject_assignment_type_mismatch () =
  let msg = type_error {|
process main
  var x := 1
  x := "one"
end
|} in
  check Alcotest.bool "assignment types" true (contains msg "assignment")

let test_reject_unknown_type_name () =
  let msg = type_error {|
process main
  var x: mystery := 1
end
|} in
  check Alcotest.bool "unknown type" true (contains msg "mystery")

let test_reject_duplicate_handler () =
  let msg =
    type_error
      {|
guardian g
  group a
    handler h(x: int) returns (int)
      return x
    end
  end
  group b
    handler h(x: int) returns (int)
      return x
    end
  end
end
process main
end
|}
  in
  check Alcotest.bool "duplicate handler" true (contains msg "twice")

let test_reject_process_return_value () =
  let msg = type_error {|
process main
  return 3
end
|} in
  check Alcotest.bool "process returns nothing" true (contains msg "process")

let test_reject_queue_in_signature () =
  let msg =
    type_error
      {|
guardian g
  group a
    handler h(q: queue[int]) returns (int)
      return 0
    end
  end
end
process main
end
|}
  in
  check Alcotest.bool "queues not transmissible" true (contains msg "transmissible")

let test_reject_mixed_arithmetic () =
  let msg = type_error {|
process main
  var x := 1 + 2.5
end
|} in
  check Alcotest.bool "no implicit int/real mixing" true (contains msg "arithmetic")

let test_pretty_roundtrip_port_restart () =
  let src =
    {|
guardian w
  group jobs
    handler work(n: int) returns (int)
      return n
    end
  end
end
process main
  var p: port (int) returns (int) := port w.work
  restart w.work
  send w.work(1)
  var x := 0
  x := p(2) except when others: x := -1 end
end
|}
  in
  let p1, p2 = strip_program (parse_ok src) in
  check Alcotest.string "roundtrip fixpoint (ports, restart)" p1 p2

let test_run_guardian_calls_guardian () =
  (* A handler making its own remote calls (the proxy/aggregator
     pattern): the proxy guardian forwards to a backend over its own
     agent's stream. *)
  let outcome =
    run_ok
      {|
guardian backend
  group calc
    handler compute(n: int) returns (int)
      sleep(0.0005)
      return n * n
    end
  end
end

guardian proxy
  var calls: int := 0
  group front
    handler ask(n: int) returns (int)
      calls := calls + 1
      var r := 0
      r := backend.compute(n) except when others: signal failure("backend down") end
      return r + 1000
    end
  end
end

process main
  var a := 0
  var b := 0
  a := proxy.ask(4) except when others: a := -1 end
  b := proxy.ask(6) except when others: b := -1 end
  put_line(int_to_string(a) ^ " " ^ int_to_string(b))
end
|}
  in
  check Alcotest.(list string) "proxied results" [ "1016 1036" ] outcome.I.output

(* ------------------------------------------------------------------ *)
(* Language semantics (no network involved) *)

let test_sem_arithmetic_and_strings () =
  let outcome =
    run_ok
      {|
process main
  var i := (2 + 3) * 4 - 10 / 2
  var r := (1.5 + 2.5) * 2.0
  var s := "a" ^ "b" ^ int_to_string(i)
  put_line(s ^ " " ^ real_to_string(r) ^ " " ^ int_to_string(floor(3.9)))
end
|}
  in
  check Alcotest.(list string) "arith" [ "ab15 8.0 3" ] outcome.I.output

let test_sem_records_and_arrays_mutate () =
  let outcome =
    run_ok
      {|
type point = record[x: int, y: int]
process main
  var p: point := {x = 1, y = 2}
  p.x := 10
  var pts: array[point] := [p]
  addh(pts, {x = 3, y = 4})
  pts[1].y := 40
  % records are shared, not copied: p and pts[0] are the same object
  pts[0].x := 99
  put_line(int_to_string(p.x) ^ " " ^ int_to_string(pts[1].y) ^ " " ^ int_to_string(len(pts)))
end
|}
  in
  check Alcotest.(list string) "mutation and sharing" [ "99 40 2" ] outcome.I.output

let test_sem_control_flow () =
  let outcome =
    run_ok
      {|
process main
  var total := 0
  for i in 1 .. 5 do
    if i = 3 then
      total := total + 100
    elseif i > 3 then
      total := total + 10
    else
      total := total + 1
    end
  end
  var n := 3
  while n > 0 do
    total := total + 1000
    n := n - 1
  end
  put_line(int_to_string(total))
end
|}
  in
  check Alcotest.(list string) "if/elseif/while/for" [ "3122" ] outcome.I.output

let test_sem_short_circuit () =
  let outcome =
    run_ok
      {|
proc noisy(v: bool) returns (bool)
  put_line("evaluated")
  return v
end
process main
  if false and noisy(true) then
    put_line("?")
  end
  if true or noisy(true) then
    put_line("short-circuited")
  end
end
|}
  in
  check Alcotest.(list string) "and/or do not evaluate rhs" [ "short-circuited" ]
    outcome.I.output

let test_sem_division_by_zero_failure () =
  let outcome =
    run_ok
      {|
process main
  var x := 0
  begin
    x := 1 / x
  end except
  when failure(why: string):
    put_line("failure: " ^ why)
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "div by zero" [ "failure: division by zero" ] outcome.I.output

let test_sem_index_out_of_bounds () =
  let outcome =
    run_ok
      {|
process main
  var a: array[int] := [1, 2]
  var x := 0
  begin
    x := a[5]
  end except
  when failure(why: string):
    put_line("caught")
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "oob" [ "caught" ] outcome.I.output

let test_sem_for_each_empty () =
  let outcome =
    run_ok
      {|
process main
  var a: array[int] := []
  var hits := 0
  for x in a do
    hits := hits + 1
  end
  put_line(int_to_string(hits))
end
|}
  in
  check Alcotest.(list string) "empty iteration" [ "0" ] outcome.I.output

let test_sem_shadowing_scopes () =
  let outcome =
    run_ok
      {|
process main
  var x := 1
  begin
    var x := 2
    put_line(int_to_string(x))
  end
  put_line(int_to_string(x))
end
|}
  in
  check Alcotest.(list string) "block scoping" [ "2"; "1" ] outcome.I.output

let test_sem_nested_except_rethrow () =
  let outcome =
    run_ok
      {|
proc thrower() signals (inner)
  signal inner
end
process main
  begin
    begin
      thrower()
    end except
    when others:
      % handle and raise a different problem
      signal failure("translated")
    end
  end except
  when failure(why: string):
    put_line("outer saw: " ^ why)
  when others:
    put_line("?")
  end
end
|}
  in
  check Alcotest.(list string) "nested handlers" [ "outer saw: translated" ] outcome.I.output

let test_sem_now_and_sleep () =
  let outcome =
    run_ok
      {|
process main
  var t0 := now()
  sleep(0.25)
  var t1 := now()
  if t1 - t0 >= 0.25 then
    put_line("time advanced")
  end
end
|}
  in
  check Alcotest.(list string) "virtual time" [ "time advanced" ] outcome.I.output

(* Differential property: random integer expressions evaluate to the
   same value in Mini-Argus as in OCaml. The generator produces the
   source text and the expected value together. *)
let gen_int_expr =
  QCheck.Gen.(
    let rec go depth =
      if depth = 0 then map (fun i -> (string_of_int i, i)) (int_range 0 20)
      else
        frequency
          [
            (1, map (fun i -> (string_of_int i, i)) (int_range 0 20));
            ( 2,
              map2
                (fun (sa, va) (sb, vb) -> (Printf.sprintf "(%s + %s)" sa sb, va + vb))
                (go (depth - 1)) (go (depth - 1)) );
            ( 2,
              map2
                (fun (sa, va) (sb, vb) -> (Printf.sprintf "(%s - %s)" sa sb, va - vb))
                (go (depth - 1)) (go (depth - 1)) );
            ( 1,
              map2
                (fun (sa, va) (sb, vb) -> (Printf.sprintf "(%s * %s)" sa sb, va * vb))
                (go (depth - 1)) (go (depth - 1)) );
            ( 1,
              map2
                (fun (sa, va) (sb, vb) ->
                  ( Printf.sprintf "(if %s < %s then %s else %s end)" sa sb sa sb,
                    if va < vb then va else vb ))
                (go (depth - 1)) (go (depth - 1))
              |> map (fun (s, v) ->
                     (* if-expressions are statements in Mini-Argus, so
                        route them through min-like arithmetic instead *)
                     ignore s;
                     (string_of_int v, v)) );
          ]
    in
    go 3)

let prop_interp_matches_ocaml_arithmetic =
  QCheck.Test.make ~name:"interpreter agrees with OCaml on integer arithmetic" ~count:60
    (QCheck.make gen_int_expr)
    (fun (src_expr, expected) ->
      let program =
        Printf.sprintf "process main
  put_line(int_to_string(%s))
end
" src_expr
      in
      match MA.Run.run program with
      | Ok outcome -> outcome.I.output = [ string_of_int expected ]
      | Error _ -> false)

(* Property: pretty-printing any parsed-then-printed program is a
   fixpoint (idempotent printer), over generated simple programs. *)
let gen_program =
  QCheck.Gen.(
    let small_ident = oneofl [ "a"; "b"; "c"; "x" ] in
    let lit = map (fun i -> string_of_int i) (int_range 0 99) in
    let expr = oneof [ lit; small_ident ] in
    let stmt =
      oneof
        [
          map2 (fun v e -> Printf.sprintf "  var %s := %s\n" v e) small_ident expr;
          map (fun e -> Printf.sprintf "  put_line(int_to_string(%s))\n" e) lit;
          map2 (fun c e -> Printf.sprintf "  if %s > 0 then\n    var y := %s\n  end\n" c e) lit
            expr;
        ]
    in
    map
      (fun stmts -> "process main\n" ^ String.concat "" stmts ^ "end\n")
      (list_size (int_range 1 5) stmt))

let prop_pretty_idempotent =
  QCheck.Test.make ~name:"pretty is a fixpoint on parsed programs" ~count:100
    (QCheck.make gen_program)
    (fun src ->
      match MA.Run.parse src with
      | Error _ -> QCheck.assume_fail ()
      | Ok prog ->
          let p1 = MA.Pretty.program_to_string prog in
          let p2 =
            match MA.Run.parse p1 with
            | Ok prog2 -> MA.Pretty.program_to_string prog2
            | Error _ -> "<reparse failed>"
          in
          p1 = p2)

let suite =
  [
    ( "lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "numbers and strings" `Quick test_lexer_numbers_and_strings;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "bad character" `Quick test_lexer_error;
        Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated_string;
      ] );
    ( "parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
        Alcotest.test_case "postfix chain" `Quick test_parse_postfix_chain;
        Alcotest.test_case "stream/fork" `Quick test_parse_stream_fork;
        Alcotest.test_case "program shapes" `Quick test_parse_program_shapes;
        Alcotest.test_case "except attaches" `Quick test_parse_except_attaches;
        Alcotest.test_case "errors carry lines" `Quick test_parse_error_reports_line;
        Alcotest.test_case "pretty roundtrip (fixed programs)" `Quick
          test_pretty_roundtrip_fixed;
        QCheck_alcotest.to_alcotest prop_pretty_idempotent;
        QCheck_alcotest.to_alcotest prop_interp_matches_ocaml_arithmetic;
      ] );
    ( "typecheck",
      [
        Alcotest.test_case "the paper's figures check" `Quick test_check_figures;
        Alcotest.test_case "stream call has promise type" `Quick
          test_check_promise_type_from_stream;
        Alcotest.test_case "reject wrong argument type" `Quick test_reject_wrong_arg_type;
        Alcotest.test_case "reject claim of non-promise" `Quick test_reject_claim_non_promise;
        Alcotest.test_case "reject promise type mismatch" `Quick test_reject_promise_mismatch;
        Alcotest.test_case "reject unhandled signal in process" `Quick
          test_reject_unhandled_signal_in_process;
        Alcotest.test_case "accept handled signal" `Quick test_accept_handled_signal;
        Alcotest.test_case "reject undeclared signal in handler" `Quick
          test_reject_undeclared_signal_in_handler;
        Alcotest.test_case "reject wrong arm payload" `Quick test_reject_wrong_arm_payload;
        Alcotest.test_case "reject impossible arm" `Quick test_reject_impossible_arm;
        Alcotest.test_case "reject promise in handler signature" `Quick
          test_reject_promise_in_handler_signature;
        Alcotest.test_case "reject declaring unavailable" `Quick
          test_reject_declaring_unavailable;
        Alcotest.test_case "reject unknown handler" `Quick test_reject_unknown_handler;
        Alcotest.test_case "reject handler ref as value" `Quick
          test_reject_handler_ref_as_value;
        Alcotest.test_case "reject bare []" `Quick test_reject_empty_array_without_annotation;
        Alcotest.test_case "reject unhandled exception_reply" `Quick
          test_reject_synch_exception_unhandled;
        Alcotest.test_case "reject remote call in guardian init" `Quick
          test_reject_guardian_var_remote_init;
        Alcotest.test_case "reject fork of non-proc" `Quick test_reject_fork_non_proc;
        Alcotest.test_case "reject port type mismatch" `Quick test_reject_port_type_mismatch;
        Alcotest.test_case "reject port call bad args" `Quick test_reject_port_call_bad_args;
        Alcotest.test_case "ports transmissible in signatures" `Quick
          test_port_in_handler_signature_allowed;
        Alcotest.test_case "reject arity mismatch" `Quick test_reject_arity_mismatch;
        Alcotest.test_case "reject assignment type mismatch" `Quick
          test_reject_assignment_type_mismatch;
        Alcotest.test_case "reject unknown type" `Quick test_reject_unknown_type_name;
        Alcotest.test_case "reject duplicate handler" `Quick test_reject_duplicate_handler;
        Alcotest.test_case "reject process return value" `Quick
          test_reject_process_return_value;
        Alcotest.test_case "reject queue in signature" `Quick test_reject_queue_in_signature;
        Alcotest.test_case "reject mixed arithmetic" `Quick test_reject_mixed_arithmetic;
        Alcotest.test_case "pretty roundtrip: ports and restart" `Quick
          test_pretty_roundtrip_port_restart;
      ] );
    ( "semantics",
      [
        Alcotest.test_case "arithmetic and strings" `Quick test_sem_arithmetic_and_strings;
        Alcotest.test_case "records/arrays mutate and share" `Quick
          test_sem_records_and_arrays_mutate;
        Alcotest.test_case "control flow" `Quick test_sem_control_flow;
        Alcotest.test_case "short-circuit and/or" `Quick test_sem_short_circuit;
        Alcotest.test_case "division by zero" `Quick test_sem_division_by_zero_failure;
        Alcotest.test_case "index out of bounds" `Quick test_sem_index_out_of_bounds;
        Alcotest.test_case "for-each over empty" `Quick test_sem_for_each_empty;
        Alcotest.test_case "block scoping" `Quick test_sem_shadowing_scopes;
        Alcotest.test_case "nested except + retranslate" `Quick test_sem_nested_except_rethrow;
        Alcotest.test_case "now and sleep" `Quick test_sem_now_and_sleep;
      ] );
    ( "interp",
      [
        Alcotest.test_case "rpc and stream calls" `Quick test_run_rpc_and_stream;
        Alcotest.test_case "typed signal" `Quick test_run_typed_signal;
        Alcotest.test_case "guardian state shared" `Quick test_run_guardian_state_is_shared;
        Alcotest.test_case "readiness ordering" `Quick test_run_ready_and_ordering;
        Alcotest.test_case "fork + claim (parallel fib)" `Quick test_run_fork_and_claim;
        Alcotest.test_case "proc signal via fork" `Quick test_run_proc_signal_via_fork;
        Alcotest.test_case "coenter group termination" `Quick
          test_run_coenter_group_termination;
        Alcotest.test_case "queue pipeline" `Quick test_run_queue_pipeline;
        Alcotest.test_case "crash gives unavailable" `Quick test_run_crash_gives_unavailable;
        Alcotest.test_case "figure 4-1 hang detected" `Quick test_run_fig41_hang_detected;
        Alcotest.test_case "figure 4-2 terminates cleanly" `Quick
          test_run_fig42_terminates_cleanly;
        Alcotest.test_case "handler crash is failure" `Quick test_run_handler_crash_is_failure;
        Alcotest.test_case "send and synch" `Quick test_run_send_and_synch;
        Alcotest.test_case "guardian calls guardian (proxy)" `Quick
          test_run_guardian_calls_guardian;
        Alcotest.test_case "cascade.arg end-to-end" `Quick test_run_cascade_example;
        Alcotest.test_case "parallel_fib.arg end-to-end" `Quick
          test_run_parallel_fib_example;
        Alcotest.test_case "mailer.arg end-to-end" `Quick test_run_mailer_example;
        Alcotest.test_case "breaks.arg: break, restart, recover" `Quick
          test_run_breaks_example_restart_recovers;
        Alcotest.test_case "broker.arg: first-class ports" `Quick
          test_run_broker_ports_example;
        Alcotest.test_case "windows.arg: the §2 window system" `Quick
          test_run_windows_example;
        Alcotest.test_case "port roundtrip through the wire" `Quick
          test_run_port_roundtrip_through_wire;
      ] );
  ]

let () = Alcotest.run "miniargus" suite
