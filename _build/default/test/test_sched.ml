(* Tests for the fiber scheduler: suspension, virtual time, groups,
   wounding/critical sections, and the synchronisation primitives. *)

module S = Sched.Scheduler

let check = Alcotest.check

let run_ok t =
  match S.run t with
  | S.Completed -> ()
  | S.Deadlocked fs ->
      Alcotest.failf "deadlock with %d live fibers" (List.length fs)
  | S.Time_limit -> Alcotest.fail "unexpected time limit"

(* ------------------------------------------------------------------ *)
(* Basic fiber execution *)

let test_spawn_runs () =
  let t = S.create () in
  let hit = ref false in
  ignore (S.spawn t (fun () -> hit := true));
  run_ok t;
  check Alcotest.bool "body ran" true !hit

let test_spawn_order_fifo () =
  let t = S.create () in
  let order = ref [] in
  let note x = order := x :: !order in
  ignore (S.spawn t (fun () -> note "a"));
  ignore (S.spawn t (fun () -> note "b"));
  ignore (S.spawn t (fun () -> note "c"));
  run_ok t;
  check Alcotest.(list string) "FIFO" [ "a"; "b"; "c" ] (List.rev !order)

let test_yield_interleaves () =
  let t = S.create () in
  let order = ref [] in
  let worker name =
    S.yield t;
    order := (name ^ "1") :: !order;
    S.yield t;
    order := (name ^ "2") :: !order
  in
  ignore (S.spawn t (fun () -> worker "a"));
  ignore (S.spawn t (fun () -> worker "b"));
  run_ok t;
  check Alcotest.(list string) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !order)

let test_fiber_result_finished () =
  let t = S.create () in
  let f = S.spawn t (fun () -> ()) in
  check Alcotest.bool "alive before run" true (S.alive f);
  run_ok t;
  check Alcotest.bool "finished" true (S.fiber_result f = Some S.Finished)

let test_fiber_result_failed () =
  let t = S.create () in
  let f = S.spawn t (fun () -> failwith "boom") in
  ignore (S.run t);
  match S.fiber_result f with
  | Some (S.Failed (Failure msg)) -> check Alcotest.string "exn kept" "boom" msg
  | _ -> Alcotest.fail "expected Failed"

let test_on_exit_fires_once () =
  let t = S.create () in
  let fires = ref 0 in
  ignore (S.spawn t ~on_exit:(fun _ -> incr fires) (fun () -> S.yield t));
  run_ok t;
  check Alcotest.int "one exit hook call" 1 !fires

(* ------------------------------------------------------------------ *)
(* Virtual time *)

let test_sleep_advances_clock () =
  let t = S.create () in
  let seen = ref (-1.0) in
  ignore
    (S.spawn t (fun () ->
         S.sleep t 1.5;
         seen := S.now t));
  run_ok t;
  check (Alcotest.float 1e-9) "time advanced" 1.5 !seen

let test_sleep_ordering () =
  let t = S.create () in
  let order = ref [] in
  ignore
    (S.spawn t (fun () ->
         S.sleep t 2.0;
         order := "late" :: !order));
  ignore
    (S.spawn t (fun () ->
         S.sleep t 1.0;
         order := "early" :: !order));
  run_ok t;
  check Alcotest.(list string) "by wakeup time" [ "early"; "late" ] (List.rev !order)

let test_at_event_fires () =
  let t = S.create () in
  let fired_at = ref (-1.0) in
  S.at t 3.0 (fun () -> fired_at := S.now t);
  run_ok t;
  check (Alcotest.float 1e-9) "event time" 3.0 !fired_at

let test_at_past_clamped () =
  let t = S.create () in
  let order = ref [] in
  ignore
    (S.spawn t (fun () ->
         S.sleep t 5.0;
         (* schedule "in the past" *)
         S.at t 1.0 (fun () -> order := S.now t :: !order)));
  run_ok t;
  check Alcotest.(list (float 1e-9)) "clamped to now" [ 5.0 ] !order

let test_run_until () =
  let t = S.create () in
  let hits = ref 0 in
  ignore
    (S.spawn t (fun () ->
         let rec loop () =
           S.sleep t 1.0;
           incr hits;
           loop ()
         in
         loop ()));
  (match S.run ~until:10.5 t with
  | S.Time_limit -> ()
  | S.Completed | S.Deadlocked _ -> Alcotest.fail "expected time limit");
  check Alcotest.int "ten ticks" 10 !hits;
  check (Alcotest.float 1e-9) "clock at limit" 10.5 (S.now t)

let test_simultaneous_events_fifo () =
  let t = S.create () in
  let order = ref [] in
  S.at t 1.0 (fun () -> order := "first" :: !order);
  S.at t 1.0 (fun () -> order := "second" :: !order);
  run_ok t;
  check Alcotest.(list string) "scheduling order" [ "first"; "second" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Suspend / wake *)

let test_suspend_wake_value () =
  let t = S.create () in
  let got = ref 0 in
  let saved = ref None in
  ignore (S.spawn t (fun () -> got := S.suspend t (fun w -> saved := Some w)));
  ignore
    (S.spawn t (fun () ->
         match !saved with
         | Some w -> check Alcotest.bool "delivered" true (S.wake w 42)
         | None -> Alcotest.fail "waker not registered"));
  run_ok t;
  check Alcotest.int "value passed" 42 !got

let test_wake_twice_is_noop () =
  let t = S.create () in
  let saved = ref None in
  ignore (S.spawn t (fun () -> ignore (S.suspend t (fun w -> saved := Some w) : int)));
  ignore
    (S.spawn t (fun () ->
         let w = Option.get !saved in
         check Alcotest.bool "first wake ok" true (S.wake w 1);
         check Alcotest.bool "second wake refused" false (S.wake w 2)));
  run_ok t

let test_wake_exn () =
  let t = S.create () in
  let saved = ref None in
  let caught = ref "" in
  ignore
    (S.spawn t (fun () ->
         try ignore (S.suspend t (fun w -> saved := Some w) : int)
         with Failure m -> caught := m));
  ignore (S.spawn t (fun () -> ignore (S.wake_exn (Option.get !saved) (Failure "bang") : bool)));
  run_ok t;
  check Alcotest.string "exception delivered" "bang" !caught

(* ------------------------------------------------------------------ *)
(* Kill, wounding, critical sections *)

let test_kill_suspended_fiber () =
  let t = S.create () in
  let cleaned = ref false in
  let victim =
    S.spawn t (fun () ->
        match S.suspend t (fun _ -> ()) with
        | () -> ()
        | exception S.Terminated ->
            cleaned := true;
            raise S.Terminated)
  in
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         S.kill t victim));
  run_ok t;
  check Alcotest.bool "observed Terminated" true !cleaned;
  check Alcotest.bool "killed result" true (S.fiber_result victim = Some S.Killed)

let test_kill_before_first_run () =
  let t = S.create () in
  let ran = ref false in
  let victim = S.spawn t (fun () -> ran := true) in
  S.kill t victim;
  run_ok t;
  check Alcotest.bool "never ran" false !ran;
  check Alcotest.bool "killed" true (S.fiber_result victim = Some S.Killed)

let test_kill_running_takes_effect_at_next_point () =
  let t = S.create () in
  let reached_after = ref false in
  let victim =
    S.spawn t (fun () ->
        S.yield t;
        (* killed while runnable: the yield return path raises *)
        reached_after := true)
  in
  ignore (S.spawn t (fun () -> S.kill t victim));
  run_ok t;
  check Alcotest.bool "did not continue" false !reached_after

let test_critical_section_delays_kill () =
  let t = S.create () in
  let order = ref [] in
  let victim =
    S.spawn t (fun () ->
        S.enter_critical t;
        S.yield t;
        (* killed here, but protected *)
        S.yield t;
        order := "still alive in critical" :: !order;
        (try S.exit_critical t
         with S.Terminated ->
           order := "died on exit" :: !order;
           raise S.Terminated);
        order := "unreachable" :: !order)
  in
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         S.kill t victim));
  run_ok t;
  check
    Alcotest.(list string)
    "wound deferred to critical exit"
    [ "still alive in critical"; "died on exit" ]
    (List.rev !order)

let test_wounded_flag () =
  let t = S.create () in
  let observed = ref false in
  let victim =
    S.spawn t (fun () ->
        S.enter_critical t;
        S.yield t;
        observed := S.wounded t;
        S.exit_critical t)
  in
  ignore (S.spawn t (fun () -> S.kill t victim));
  ignore (S.run t);
  check Alcotest.bool "wounded observed" true !observed

let test_kill_finished_noop () =
  let t = S.create () in
  let f = S.spawn t (fun () -> ()) in
  run_ok t;
  S.kill t f;
  check Alcotest.bool "still finished" true (S.fiber_result f = Some S.Finished)

(* ------------------------------------------------------------------ *)
(* Deadlock detection *)

let test_deadlock_detected () =
  let t = S.create () in
  ignore (S.spawn t ~name:"stuck" (fun () -> ignore (S.suspend t (fun _ -> ()) : unit)));
  match S.run t with
  | S.Deadlocked [ f ] -> check Alcotest.string "the stuck fiber" "stuck" (S.fiber_name f)
  | S.Deadlocked fs -> Alcotest.failf "expected 1 stuck fiber, got %d" (List.length fs)
  | S.Completed | S.Time_limit -> Alcotest.fail "expected deadlock"

(* ------------------------------------------------------------------ *)
(* Groups *)

let test_group_wait () =
  let t = S.create () in
  let g = S.Group.create t in
  let done_count = ref 0 in
  for i = 1 to 3 do
    ignore
      (S.Group.add_spawn t g (fun () ->
           S.sleep t (float_of_int i);
           incr done_count))
  done;
  let waited = ref false in
  ignore
    (S.spawn t (fun () ->
         S.Group.wait t g;
         check Alcotest.int "all members done" 3 !done_count;
         waited := true));
  run_ok t;
  check Alcotest.bool "waiter resumed" true !waited

let test_group_wait_empty () =
  let t = S.create () in
  let g = S.Group.create t in
  let passed = ref false in
  ignore
    (S.spawn t (fun () ->
         S.Group.wait t g;
         passed := true));
  run_ok t;
  check Alcotest.bool "immediate return" true !passed

let test_group_terminate () =
  let t = S.create () in
  let g = S.Group.create t in
  let survivors = ref 0 in
  for _ = 1 to 3 do
    ignore
      (S.Group.add_spawn t g (fun () ->
           S.sleep t 100.0;
           incr survivors))
  done;
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         S.Group.terminate t g;
         S.Group.wait t g));
  run_ok t;
  check Alcotest.int "no survivors" 0 !survivors

let test_group_terminate_except_self () =
  let t = S.create () in
  let g = S.Group.create t in
  let log = ref [] in
  let rec sibling () =
    S.sleep t 100.0;
    sibling ()
  in
  ignore (S.Group.add_spawn t g ~name:"sib1" sibling);
  ignore (S.Group.add_spawn t g ~name:"sib2" sibling);
  ignore
    (S.Group.add_spawn t g ~name:"killer" (fun () ->
         S.yield t;
         (match S.current t with
         | Some self -> S.Group.terminate ~except:self t g
         | None -> Alcotest.fail "no current fiber");
         log := "killer survived" :: !log));
  run_ok t;
  check Alcotest.(list string) "killer survives" [ "killer survived" ] !log

let test_group_members_shrink () =
  let t = S.create () in
  let g = S.Group.create t in
  ignore (S.Group.add_spawn t g (fun () -> ()));
  ignore (S.Group.add_spawn t g (fun () -> S.sleep t 1.0));
  check Alcotest.int "two live" 2 (S.Group.live_count g);
  run_ok t;
  check Alcotest.int "none live" 0 (S.Group.live_count g)

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_exclusion () =
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Sched.Mutex.with_lock m (fun () ->
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        S.sleep t 1.0;
        decr inside)
  in
  for _ = 1 to 4 do
    ignore (S.spawn t worker)
  done;
  run_ok t;
  check Alcotest.int "never two holders" 1 !max_inside

let test_mutex_fifo () =
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let order = ref [] in
  let worker name =
    Sched.Mutex.with_lock m (fun () ->
        order := name :: !order;
        S.sleep t 1.0)
  in
  List.iter (fun n -> ignore (S.spawn t (fun () -> worker n))) [ "a"; "b"; "c" ];
  run_ok t;
  check Alcotest.(list string) "FIFO handover" [ "a"; "b"; "c" ] (List.rev !order)

let test_mutex_unlock_unlocked () =
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let raised = ref false in
  ignore
    (S.spawn t (fun () ->
         try Sched.Mutex.unlock m with Invalid_argument _ -> raised := true));
  run_ok t;
  check Alcotest.bool "invalid unlock rejected" true !raised

let test_mutex_protects_against_kill () =
  (* A fiber killed while holding the lock finishes its critical
     section first (the paper's data-safety rule). *)
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let finished_critical = ref false in
  let victim =
    S.spawn t (fun () ->
        Sched.Mutex.lock m;
        S.yield t;
        (* killed here *)
        finished_critical := true;
        Sched.Mutex.unlock m)
  in
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         S.kill t victim));
  run_ok t;
  check Alcotest.bool "critical work completed before death" true !finished_critical;
  check Alcotest.bool "lock released" false (Sched.Mutex.locked m)

(* ------------------------------------------------------------------ *)
(* Condition *)

let test_condition_signal () =
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let c = Sched.Condition.create t in
  let ready = ref false and seen = ref false in
  ignore
    (S.spawn t (fun () ->
         Sched.Mutex.with_lock m (fun () ->
             while not !ready do
               Sched.Condition.wait c m
             done;
             seen := true)));
  ignore
    (S.spawn t (fun () ->
         S.sleep t 1.0;
         Sched.Mutex.with_lock m (fun () -> ready := true);
         Sched.Condition.signal c));
  run_ok t;
  check Alcotest.bool "woken after signal" true !seen

let test_condition_broadcast () =
  let t = S.create () in
  let m = Sched.Mutex.create t in
  let c = Sched.Condition.create t in
  let ready = ref false and woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (S.spawn t (fun () ->
           Sched.Mutex.with_lock m (fun () ->
               while not !ready do
                 Sched.Condition.wait c m
               done;
               incr woken)))
  done;
  ignore
    (S.spawn t (fun () ->
         S.sleep t 1.0;
         Sched.Mutex.with_lock m (fun () -> ready := true);
         Sched.Condition.broadcast c));
  run_ok t;
  check Alcotest.int "all woken" 3 !woken

(* ------------------------------------------------------------------ *)
(* Bqueue *)

let test_bqueue_fifo () =
  let t = S.create () in
  let q = Sched.Bqueue.create t in
  let got = ref [] in
  ignore (S.spawn t (fun () -> List.iter (Sched.Bqueue.enq q) [ 1; 2; 3 ]));
  ignore
    (S.spawn t (fun () ->
         for _ = 1 to 3 do
           got := Sched.Bqueue.deq q :: !got
         done));
  run_ok t;
  check Alcotest.(list int) "FIFO" [ 1; 2; 3 ] (List.rev !got)

let test_bqueue_deq_blocks () =
  let t = S.create () in
  let q = Sched.Bqueue.create t in
  let got_at = ref (-1.0) in
  ignore
    (S.spawn t (fun () ->
         ignore (Sched.Bqueue.deq q : int);
         got_at := S.now t));
  ignore
    (S.spawn t (fun () ->
         S.sleep t 2.0;
         Sched.Bqueue.enq q 7));
  run_ok t;
  check (Alcotest.float 1e-9) "consumer waited" 2.0 !got_at

let test_bqueue_capacity_blocks_producer () =
  let t = S.create () in
  let q = Sched.Bqueue.create ~capacity:2 t in
  let produced = ref 0 in
  ignore
    (S.spawn t (fun () ->
         for i = 1 to 4 do
           Sched.Bqueue.enq q i;
           produced := i
         done));
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         check Alcotest.int "producer blocked at capacity" 2 !produced;
         for _ = 1 to 4 do
           ignore (Sched.Bqueue.deq q : int)
         done));
  run_ok t;
  check Alcotest.int "all produced eventually" 4 !produced

let test_bqueue_close_unblocks_consumer () =
  let t = S.create () in
  let q : int Sched.Bqueue.t = Sched.Bqueue.create t in
  let closed_seen = ref false in
  ignore
    (S.spawn t (fun () ->
         match Sched.Bqueue.deq q with
         | _ -> ()
         | exception Sched.Bqueue.Closed -> closed_seen := true));
  ignore
    (S.spawn t (fun () ->
         S.sleep t 1.0;
         Sched.Bqueue.close q));
  run_ok t;
  check Alcotest.bool "Closed raised" true !closed_seen

let test_bqueue_close_drains_remaining () =
  let t = S.create () in
  let q = Sched.Bqueue.create t in
  let got = ref [] in
  ignore
    (S.spawn t (fun () ->
         Sched.Bqueue.enq q 1;
         Sched.Bqueue.enq q 2;
         Sched.Bqueue.close q));
  ignore
    (S.spawn t (fun () ->
         let rec loop () =
           match Sched.Bqueue.deq q with
           | v ->
               got := v :: !got;
               loop ()
           | exception Sched.Bqueue.Closed -> ()
         in
         loop ()));
  run_ok t;
  check Alcotest.(list int) "existing elements still delivered" [ 1; 2 ] (List.rev !got)

let test_bqueue_killed_consumer_does_not_lose_element () =
  let t = S.create () in
  let q = Sched.Bqueue.create t in
  let got = ref [] in
  let victim = S.spawn t (fun () -> got := ("victim", Sched.Bqueue.deq q) :: !got) in
  ignore (S.spawn t (fun () -> got := ("other", Sched.Bqueue.deq q) :: !got));
  ignore
    (S.spawn t (fun () ->
         S.yield t;
         S.kill t victim;
         Sched.Bqueue.enq q 42));
  run_ok t;
  check
    Alcotest.(list (pair string int))
    "element went to the live consumer" [ ("other", 42) ] !got

(* ------------------------------------------------------------------ *)
(* Semaphore *)

let test_semaphore_limits_concurrency () =
  let t = S.create () in
  let sem = Sched.Semaphore.create t 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    ignore
      (S.spawn t (fun () ->
           Sched.Semaphore.with_permit sem (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               S.sleep t 1.0;
               decr inside)))
  done;
  run_ok t;
  check Alcotest.int "at most 2 inside" 2 !max_inside

let test_semaphore_models_parallel_speedup () =
  (* 4 unit-time jobs: 2 CPUs finish at t=2, 1 CPU at t=4. *)
  let elapsed cpus =
    let t = S.create () in
    let sem = Sched.Semaphore.create t cpus in
    for _ = 1 to 4 do
      ignore
        (S.spawn t (fun () -> Sched.Semaphore.with_permit sem (fun () -> S.sleep t 1.0)))
    done;
    run_ok t;
    S.now t
  in
  check (Alcotest.float 1e-9) "1 cpu" 4.0 (elapsed 1);
  check (Alcotest.float 1e-9) "2 cpus" 2.0 (elapsed 2);
  check (Alcotest.float 1e-9) "4 cpus" 1.0 (elapsed 4)

let test_trace_records_lifecycle () =
  let t = S.create () in
  Sim.Trace.enable (S.trace t) true;
  ignore (S.spawn t ~name:"traced" (fun () -> S.sleep t 1.0));
  run_ok t;
  let records = List.map snd (Sim.Trace.to_list (S.trace t)) in
  let has needle =
    List.exists
      (fun r ->
        let nr = String.length r and nn = String.length needle in
        let rec scan i = i + nn <= nr && (String.sub r i nn = needle || scan (i + 1)) in
        scan 0)
      records
  in
  check Alcotest.bool "spawn traced" true (has "spawn");
  check Alcotest.bool "finish traced" true (has "finished")

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_sleep_sum =
  QCheck.Test.make ~name:"sequential sleeps sum exactly" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (float_bound_exclusive 10.0))
    (fun sleeps ->
      let t = S.create () in
      ignore (S.spawn t (fun () -> List.iter (S.sleep t) sleeps));
      (match S.run t with S.Completed -> () | _ -> failwith "not completed");
      let expect = List.fold_left ( +. ) 0.0 sleeps in
      abs_float (S.now t -. expect) < 1e-6)

let prop_random_fiber_programs_complete =
  (* Random forests of fibers doing random sleeps and yields: the run
     always completes, and the clock ends at the longest fiber's total
     sleep (fibers run concurrently from t=0). *)
  QCheck.Test.make ~name:"random fiber programs complete; clock = max total sleep" ~count:80
    QCheck.(list_of_size (Gen.int_range 1 8)
              (list_of_size (Gen.int_range 0 6) (int_range 0 100)))
    (fun programs ->
      let t = S.create () in
      List.iter
        (fun steps ->
          ignore
            (S.spawn t (fun () ->
                 List.iter
                   (fun ms ->
                     if ms mod 3 = 0 then S.yield t
                     else S.sleep t (float_of_int ms *. 1e-3))
                   steps)))
        programs;
      match S.run t with
      | S.Completed ->
          let expected =
            List.fold_left
              (fun acc steps ->
                let total =
                  List.fold_left
                    (fun acc ms ->
                      if ms mod 3 = 0 then acc else acc +. (float_of_int ms *. 1e-3))
                    0.0 steps
                in
                Float.max acc total)
              0.0 programs
          in
          abs_float (S.now t -. expected) < 1e-9
      | S.Deadlocked _ | S.Time_limit -> false)

let prop_bqueue_order_preserved =
  QCheck.Test.make ~name:"bqueue preserves order under concurrency" ~count:100
    QCheck.(list small_int)
    (fun items ->
      let t = S.create () in
      let q = Sched.Bqueue.create t in
      let out = ref [] in
      ignore
        (S.spawn t (fun () ->
             List.iter
               (fun v ->
                 Sched.Bqueue.enq q v;
                 S.yield t)
               items;
             Sched.Bqueue.close q));
      ignore
        (S.spawn t (fun () ->
             let rec loop () =
               match Sched.Bqueue.deq q with
               | v ->
                   out := v :: !out;
                   loop ()
               | exception Sched.Bqueue.Closed -> ()
             in
             loop ()));
      (match S.run t with S.Completed -> () | _ -> failwith "not completed");
      List.rev !out = items)

let suite =
  [
    ( "fibers",
      [
        Alcotest.test_case "spawn runs body" `Quick test_spawn_runs;
        Alcotest.test_case "spawn order FIFO" `Quick test_spawn_order_fifo;
        Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
        Alcotest.test_case "result finished" `Quick test_fiber_result_finished;
        Alcotest.test_case "result failed keeps exn" `Quick test_fiber_result_failed;
        Alcotest.test_case "on_exit fires once" `Quick test_on_exit_fires_once;
      ] );
    ( "time",
      [
        Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
        Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
        Alcotest.test_case "at fires at time" `Quick test_at_event_fires;
        Alcotest.test_case "past events clamped" `Quick test_at_past_clamped;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "simultaneous events FIFO" `Quick test_simultaneous_events_fifo;
        Alcotest.test_case "trace records lifecycle" `Quick test_trace_records_lifecycle;
        QCheck_alcotest.to_alcotest prop_sleep_sum;
        QCheck_alcotest.to_alcotest prop_random_fiber_programs_complete;
      ] );
    ( "suspend-wake",
      [
        Alcotest.test_case "value delivery" `Quick test_suspend_wake_value;
        Alcotest.test_case "double wake is no-op" `Quick test_wake_twice_is_noop;
        Alcotest.test_case "wake with exception" `Quick test_wake_exn;
      ] );
    ( "kill",
      [
        Alcotest.test_case "kill suspended" `Quick test_kill_suspended_fiber;
        Alcotest.test_case "kill before first run" `Quick test_kill_before_first_run;
        Alcotest.test_case "kill runnable" `Quick test_kill_running_takes_effect_at_next_point;
        Alcotest.test_case "critical section delays kill" `Quick test_critical_section_delays_kill;
        Alcotest.test_case "wounded flag" `Quick test_wounded_flag;
        Alcotest.test_case "kill finished no-op" `Quick test_kill_finished_noop;
        Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      ] );
    ( "groups",
      [
        Alcotest.test_case "wait" `Quick test_group_wait;
        Alcotest.test_case "wait on empty" `Quick test_group_wait_empty;
        Alcotest.test_case "terminate" `Quick test_group_terminate;
        Alcotest.test_case "terminate except self" `Quick test_group_terminate_except_self;
        Alcotest.test_case "members shrink" `Quick test_group_members_shrink;
      ] );
    ( "mutex",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_mutex_exclusion;
        Alcotest.test_case "FIFO handover" `Quick test_mutex_fifo;
        Alcotest.test_case "unlock when unlocked" `Quick test_mutex_unlock_unlocked;
        Alcotest.test_case "kill deferred while held" `Quick test_mutex_protects_against_kill;
      ] );
    ( "condition",
      [
        Alcotest.test_case "signal" `Quick test_condition_signal;
        Alcotest.test_case "broadcast" `Quick test_condition_broadcast;
      ] );
    ( "bqueue",
      [
        Alcotest.test_case "FIFO" `Quick test_bqueue_fifo;
        Alcotest.test_case "deq blocks" `Quick test_bqueue_deq_blocks;
        Alcotest.test_case "capacity blocks producer" `Quick test_bqueue_capacity_blocks_producer;
        Alcotest.test_case "close unblocks consumer" `Quick test_bqueue_close_unblocks_consumer;
        Alcotest.test_case "close drains remaining" `Quick test_bqueue_close_drains_remaining;
        Alcotest.test_case "killed consumer loses nothing" `Quick
          test_bqueue_killed_consumer_does_not_lose_element;
        QCheck_alcotest.to_alcotest prop_bqueue_order_preserved;
      ] );
    ( "semaphore",
      [
        Alcotest.test_case "limits concurrency" `Quick test_semaphore_limits_concurrency;
        Alcotest.test_case "models parallel speedup" `Quick test_semaphore_models_parallel_speedup;
      ] );
  ]

let () = Alcotest.run "sched" suite
