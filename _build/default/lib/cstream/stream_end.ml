module S = Sched.Scheduler

type pending = { p_on_reply : Wire.routcome -> unit }

type t = {
  hub : Chanhub.hub;
  sched : S.t;
  s_agent : string;
  s_dst : Net.address;
  s_gid : string;
  s_cfg : Chanhub.config;
  mutable chan : Chanhub.out_chan;
  mutable incarnation : int;
  mutable s_broken : string option;
  pending : (int, pending) Hashtbl.t;
  mutable next_seq : int;
  mutable completed_upto : int;
  mutable exn_since_synch : bool;
  mutable synch_waiters : (int * unit S.waker) list;
  mutable break_hooks : (string -> unit) list;
}

let agent t = t.s_agent

let gid t = t.s_gid

let broken t = t.s_broken

let outstanding t = Hashtbl.length t.pending

let reply_label_for ~agent ~gid ~dst ~incarnation =
  Printf.sprintf "~r/%s/%s/%d/%d" agent gid dst incarnation

let reply_label t =
  reply_label_for ~agent:t.s_agent ~gid:t.s_gid ~dst:t.s_dst ~incarnation:t.incarnation

let wake_satisfied_synchers t =
  let ready, waiting =
    List.partition (fun (target, _) -> t.completed_upto >= target) t.synch_waiters
  in
  t.synch_waiters <- waiting;
  List.iter (fun (_, w) -> ignore (S.wake w () : bool)) ready

let complete t seq outcome =
  match Hashtbl.find_opt t.pending seq with
  | None -> () (* stale reply after a break resolved everything *)
  | Some p ->
      Hashtbl.remove t.pending seq;
      if seq > t.completed_upto then t.completed_upto <- seq;
      (match outcome with
      | Wire.W_normal _ -> ()
      | Wire.W_signal _ | Wire.W_unavailable _ | Wire.W_failure _ ->
          t.exn_since_synch <- true);
      p.p_on_reply outcome;
      wake_satisfied_synchers t

let handle_break t reason =
  if t.s_broken = None then begin
    t.s_broken <- Some reason;
    (* Outstanding calls will never get replies: complete them (in call
       order) with [unavailable] — "we rely on the language to cause
       the calls to terminate with an exception" (§2). *)
    let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.pending [] in
    let seqs = List.sort compare seqs in
    List.iter
      (fun seq -> complete t seq (Wire.W_unavailable ("stream broken: " ^ reason)))
      seqs;
    t.completed_upto <- t.next_seq - 1;
    wake_satisfied_synchers t;
    let hooks = t.break_hooks in
    t.break_hooks <- [];
    List.iter (fun f -> f reason) hooks
  end

let deliver_replies t items =
  List.iter
    (fun item ->
      match Wire.parse_reply item with
      | Ok (seq, outcome) -> complete t seq outcome
      | Error _ ->
          (* A malformed reply means our peer is garbage; break. *)
          handle_break t "malformed reply from receiver")
    items

(* Wire an incarnation's channel and reply acceptor to [t]. The channel
   itself is created by the caller (it does not need [t]). *)
let attach t chan =
  let label = reply_label t in
  Chanhub.on_connect t.hub ~label (fun in_chan ->
      Chanhub.set_deliver in_chan (fun items -> deliver_replies t items));
  Chanhub.on_out_break chan (fun reason -> handle_break t reason);
  t.chan <- chan

let create hub ~agent ~dst ~gid ?(config = Chanhub.default_config) () =
  let label = reply_label_for ~agent ~gid ~dst ~incarnation:0 in
  let chan = Chanhub.connect hub ~dst ~label:gid ~meta:label config in
  let t =
    {
      hub;
      sched = Chanhub.hub_sched hub;
      s_agent = agent;
      s_dst = dst;
      s_gid = gid;
      s_cfg = config;
      chan;
      incarnation = 0;
      s_broken = None;
      pending = Hashtbl.create 32;
      next_seq = 0;
      completed_upto = -1;
      exn_since_synch = false;
      synch_waiters = [];
      break_hooks = [];
    }
  in
  attach t chan;
  t

let call t ~port ~kind ~args ~on_reply =
  match t.s_broken with
  | Some reason -> Error reason
  | None ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Hashtbl.replace t.pending seq { p_on_reply = on_reply };
      Chanhub.send t.chan (Wire.call_item ~seq ~port ~kind ~args);
      Ok ()

let flush t = if t.s_broken = None then Chanhub.flush_out t.chan

let synch t =
  match t.s_broken with
  | Some reason -> Error (`Broken reason)
  | None ->
      flush t;
      let target = t.next_seq - 1 in
      if t.completed_upto < target then
        S.suspend t.sched (fun w -> t.synch_waiters <- (target, w) :: t.synch_waiters);
      (match t.s_broken with
      | Some reason -> Error (`Broken reason)
      | None ->
          if t.exn_since_synch then begin
            t.exn_since_synch <- false;
            Error `Exception_reply
          end
          else Ok ())

let on_break t f =
  match t.s_broken with Some reason -> f reason | None -> t.break_hooks <- f :: t.break_hooks

let restart t =
  (match t.s_broken with
  | None ->
      (* A restart of a live stream is "a break done by the system at
         the sender at that moment" (§2). *)
      Chanhub.break_out t.chan ~reason:"restarted by sender";
      handle_break t "restarted by sender"
  | Some _ -> ());
  Chanhub.remove_acceptor t.hub ~label:(reply_label t);
  t.incarnation <- t.incarnation + 1;
  t.s_broken <- None;
  t.next_seq <- 0;
  t.completed_upto <- -1;
  t.exn_since_synch <- false;
  let label = reply_label t in
  let chan = Chanhub.connect t.hub ~dst:t.s_dst ~label:t.s_gid ~meta:label t.s_cfg in
  attach t chan
