lib/cstream/chanhub.mli: Net Sched Xdr
