lib/cstream/stream_end.ml: Chanhub Hashtbl List Net Printf Sched Wire
