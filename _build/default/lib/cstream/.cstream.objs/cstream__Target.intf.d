lib/cstream/target.mli: Chanhub Net Wire Xdr
