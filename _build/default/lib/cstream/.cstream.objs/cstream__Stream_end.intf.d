lib/cstream/stream_end.mli: Chanhub Net Wire Xdr
