lib/cstream/chanhub.ml: Hashtbl List Net Sched String Xdr
