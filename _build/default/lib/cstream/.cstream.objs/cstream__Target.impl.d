lib/cstream/target.ml: Chanhub Hashtbl List Net Printf Sched Wire Xdr
