lib/cstream/wire.mli: Format Xdr
