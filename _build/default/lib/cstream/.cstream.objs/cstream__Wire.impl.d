lib/cstream/wire.ml: Format Printf Xdr
