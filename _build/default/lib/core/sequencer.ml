module S = Sched.Scheduler

type t = {
  sched : S.t;
  mutable turn : int;
  mutable waiters : (int * unit S.waker) list;
}

let create sched = { sched; turn = 0; waiters = [] }

let current t = t.turn

let admit t =
  let ready, waiting = List.partition (fun (i, _) -> i = t.turn) t.waiters in
  t.waiters <- waiting;
  List.iter (fun (_, w) -> ignore (S.wake w () : bool)) ready

let enter t i =
  if i < t.turn then invalid_arg "Sequencer.enter: turn already passed";
  while t.turn < i do
    S.suspend t.sched (fun w -> t.waiters <- (i, w) :: t.waiters)
  done

let leave t i =
  if i <> t.turn then invalid_arg "Sequencer.leave: not the current turn";
  t.turn <- t.turn + 1;
  admit t

let with_turn t i f =
  enter t i;
  match f () with
  | v ->
      leave t i;
      v
  | exception e ->
      (* Pass the turn on even on failure so the cascade does not jam;
         the caller decides whether to abort the whole composition. *)
      if t.turn = i then leave t i;
      raise e
