(** Turn-taking for the process-per-item composition style (§4.3).

    When each data item is moved through a cascade by its own process,
    "synchronization is needed to ensure that the calls on each stream
    were made in order". A sequencer hands out turns by item index:
    process [i] may proceed through a stage only after process [i-1]
    has passed it. *)

type t

val create : Sched.Scheduler.t -> t
(** A sequencer whose next turn is index 0. *)

val enter : t -> int -> unit
(** [enter t i] parks the calling fiber until it is turn [i]. *)

val leave : t -> int -> unit
(** [leave t i] ends turn [i] and admits turn [i+1]. Must be called
    with the current turn. *)

val with_turn : t -> int -> (unit -> 'a) -> 'a
(** [with_turn t i f] brackets [f] with {!enter}/{!leave}; [leave] runs
    on any exit. *)

val current : t -> int
