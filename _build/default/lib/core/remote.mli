(** Typed remote calls: the paper's three call forms, returning typed
    promises.

    A handle [('a, 'r, 'e) h] binds a typed signature to an agent's
    stream. The three call forms are:

    - {!stream_call} — [x: pt := stream h(3)]: buffered, asynchronous,
      returns a blocked promise (§3);
    - {!send} — fire-and-forget except for abnormal replies, no promise
      (§2, §3: "sends do not show up explicitly in Argus; a stream call
      to a handler with no normal results is made as a send" — here the
      choice is explicit);
    - {!rpc} — ordinary remote procedure call: transmitted immediately,
      caller waits for the outcome.

    Immediate failures follow the paper's semantics exactly: if
    argument encoding fails or the stream is already broken, the call
    raises ({!Promise.Failure_exn} / {!Promise.Unavailable_exn}) and
    {e no promise is created}. A wounded fiber may not start remote
    calls (§4.2): the call raises {!Sched.Scheduler.Terminated}. *)

type ('a, 'r, 'e) h
(** A handler of signature [('a, 'r, 'e)] reachable over one agent's
    stream. *)

val bind :
  Agent.t -> dst:Net.address -> gid:string -> ('a, 'r, 'e) Sigs.hsig -> ('a, 'r, 'e) h
(** Bind a signature to the agent's stream to group [gid] at [dst]. *)

val bind_ref : Agent.t -> Sigs.port_ref -> ('a, 'r, 'e) Sigs.hsig -> ('a, 'r, 'e) h
(** Bind to a transmitted port reference; the signature's own port name
    is replaced by the reference's. *)

val hsig : ('a, 'r, 'e) h -> ('a, 'r, 'e) Sigs.hsig

val stream : ('a, 'r, 'e) h -> Cstream.Stream_end.t

(** {1 Call forms} *)

val stream_call : ('a, 'r, 'e) h -> 'a -> ('r, 'e) Promise.t
(** Make a stream call; the promise becomes ready when the reply
    arrives (or the stream breaks). Promises for earlier calls on the
    same stream become ready first. *)

val stream_call_ : ('a, 'r, 'e) h -> 'a -> unit
(** Stream call as a statement — "the program need not create a
    promise" (§3): the reply is still decoded and then discarded. *)

val send : ('a, 'r, 'e) h -> 'a -> unit
(** A send: the result value is discarded at the receiver; abnormal
    termination is observable through {!synch}. *)

val rpc : ('a, 'r, 'e) h -> 'a -> ('r, 'e) Promise.outcome
(** Flush and wait for this call's outcome (fiber context only). *)

(** {1 Stream control (per handle)} *)

val flush : ('a, 'r, 'e) h -> unit
(** §2's [flush h]: transmit buffered calls on [h]'s stream now. *)

val synch : ('a, 'r, 'e) h -> (unit, [ `Exception_reply | `Broken of string ]) result
(** §2's [synch h]: flush, wait for all earlier calls on the stream to
    complete, and report whether any of them (since the last synch)
    terminated with an exception. *)
