(** Typed handler signatures.

    A port is strongly typed (§2): it names its argument type, result
    type and the exceptions it may signal, e.g.

    {v port (int) returns (real) signals (e1(char), e2) v}

    In this embedding a signature is a value of type [('a, 'r, 'e)
    hsig] packaging the port name with codecs for ['a] and ['r] and a
    {!signal_codec} for the declared-exception variant ['e]. The
    universal exceptions [unavailable] and [failure] are not part of
    ['e]; every call can raise them and they appear as the
    corresponding {!Promise.outcome} constructors. *)

(** Encodes a declared-exception variant to and from (name, payload)
    pairs on the wire. Encoding may fail (user translation code), in
    which case the call terminates with [failure] and, at the receiver,
    the stream breaks (§3). *)
type 'e signal_codec = {
  enc_sig : 'e -> (string * Xdr.value, string) result;
  dec_sig : string * Xdr.value -> ('e, string) result;
}

type nothing = |
(** Uninhabited: the ['e] of a handler with no [signals] clause. *)

val no_signals : nothing signal_codec

val signals :
  ('e -> (string * Xdr.value, string) result) ->
  (string * Xdr.value -> ('e, string) result) ->
  'e signal_codec

val signal_case :
  name:string -> 'p Xdr.codec -> inj:('p -> 'e) -> proj:('e -> 'p option) ->
  ('e signal_codec -> 'e signal_codec)
(** Build a signal codec one case at a time, starting from
    {!empty_signals}:

    {[
      type err = No_such_user of string | Quota_exceeded
      let err_codec =
        Sigs.(empty_signals
              |> signal_case ~name:"no_such_user" Xdr.string
                   ~inj:(fun u -> No_such_user u)
                   ~proj:(function No_such_user u -> Some u | _ -> None)
              |> signal_case ~name:"quota_exceeded" Xdr.unit
                   ~inj:(fun () -> Quota_exceeded)
                   ~proj:(function Quota_exceeded -> Some () | _ -> None))
    ]} *)

val empty_signals : 'e signal_codec
(** Rejects everything; extend with {!signal_case}. *)

(** A typed handler signature: port name plus codecs. *)
type ('a, 'r, 'e) hsig = {
  hname : string;
  arg_c : 'a Xdr.codec;
  res_c : 'r Xdr.codec;
  sig_c : 'e signal_codec;
}

val hsig :
  string -> arg:'a Xdr.codec -> res:'r Xdr.codec -> ?signals_c:'e signal_codec -> unit ->
  ('a, 'r, 'e) hsig

val hsig0 : string -> arg:'a Xdr.codec -> res:'r Xdr.codec -> ('a, 'r, nothing) hsig
(** Signature of a handler with no declared signals. *)

(** {1 Port references}

    "Ports may be sent as arguments and results of remote calls" (§2).
    A {!port_ref} is the transmissible identity of a port: node
    address, group name, port name. The window-system example uses
    this to hand out per-window ports. *)

type port_ref = { pr_addr : Net.address; pr_group : string; pr_port : string }

val port_ref_codec : port_ref Xdr.codec
