(** Agents: the sending ends of streams.

    "We use agents to identify activities; agents define the sending
    ends of streams. An agent has a unique name and belongs to a single
    entity" (§2). All calls an agent makes to ports in one group travel
    on one stream and are therefore sequenced; calls by different
    agents — even to the same group — use different streams and can be
    processed concurrently at the receiver.

    An agent lazily opens one {!Cstream.Stream_end.t} per (destination,
    group) and reuses it for every call. *)

type t

val create : Cstream.Chanhub.hub -> name:string -> ?config:Cstream.Chanhub.config -> unit -> t
(** [config] sets the buffering/retransmission parameters of every
    stream this agent opens. *)

val name : t -> string

val sched : t -> Sched.Scheduler.t

val hub : t -> Cstream.Chanhub.hub

val stream_to : t -> dst:Net.address -> gid:string -> Cstream.Stream_end.t
(** The agent's stream to that port group (opened on first use). If the
    previous incarnation broke it is {e not} restarted automatically
    here; see {!restart_to}. *)

val restart_to : t -> dst:Net.address -> gid:string -> unit
(** Restart the agent's stream to that group (§2's restart). *)

val flush_all : t -> unit
(** Flush every stream this agent has open. *)
