type 'e signal_codec = {
  enc_sig : 'e -> (string * Xdr.value, string) result;
  dec_sig : string * Xdr.value -> ('e, string) result;
}

type nothing = |

let no_signals =
  {
    enc_sig = (fun (x : nothing) -> match x with _ -> .);
    dec_sig = (fun (name, _) -> Error (Printf.sprintf "undeclared signal %S" name));
  }

let signals enc_sig dec_sig = { enc_sig; dec_sig }

let empty_signals =
  {
    enc_sig = (fun _ -> Error "no signal case matches");
    dec_sig = (fun (name, _) -> Error (Printf.sprintf "undeclared signal %S" name));
  }

let signal_case ~name payload_c ~inj ~proj base =
  {
    enc_sig =
      (fun e ->
        match proj e with
        | Some p -> (
            match Xdr.encode payload_c p with
            | Ok v -> Ok (name, v)
            | Error reason -> Error reason)
        | None -> base.enc_sig e);
    dec_sig =
      (fun (got_name, payload) ->
        if got_name = name then
          match Xdr.decode payload_c payload with
          | Ok p -> Ok (inj p)
          | Error reason -> Error reason
        else base.dec_sig (got_name, payload));
  }

type ('a, 'r, 'e) hsig = {
  hname : string;
  arg_c : 'a Xdr.codec;
  res_c : 'r Xdr.codec;
  sig_c : 'e signal_codec;
}

let hsig name ~arg ~res ?(signals_c = empty_signals) () =
  { hname = name; arg_c = arg; res_c = res; sig_c = signals_c }

let hsig0 name ~arg ~res = { hname = name; arg_c = arg; res_c = res; sig_c = no_signals }

type port_ref = { pr_addr : Net.address; pr_group : string; pr_port : string }

let port_ref_codec =
  Xdr.conv "port_ref"
    (fun p -> (p.pr_addr, p.pr_group, p.pr_port))
    (fun (pr_addr, pr_group, pr_port) -> { pr_addr; pr_group; pr_port })
    (Xdr.triple Xdr.int Xdr.string Xdr.string)
