module SE = Cstream.Stream_end

type t = {
  a_hub : Cstream.Chanhub.hub;
  a_name : string;
  a_config : Cstream.Chanhub.config;
  streams : (Net.address * string, SE.t) Hashtbl.t;
}

let create hub ~name ?(config = Cstream.Chanhub.default_config) () =
  { a_hub = hub; a_name = name; a_config = config; streams = Hashtbl.create 8 }

let name t = t.a_name

let sched t = Cstream.Chanhub.hub_sched t.a_hub

let hub t = t.a_hub

let stream_to t ~dst ~gid =
  match Hashtbl.find_opt t.streams (dst, gid) with
  | Some stream -> stream
  | None ->
      let stream =
        SE.create t.a_hub ~agent:t.a_name ~dst ~gid ~config:t.a_config ()
      in
      Hashtbl.replace t.streams (dst, gid) stream;
      stream

let restart_to t ~dst ~gid = SE.restart (stream_to t ~dst ~gid)

let flush_all t = Hashtbl.iter (fun _ stream -> SE.flush stream) t.streams
