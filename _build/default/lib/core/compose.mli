(** Stream-composition helpers (§4).

    A cascade pipes the results of calls on one stream into calls on
    the next, with arbitrary local {e filter} computation in between.
    The paper's preferred structure is one process per stream connected
    by queues of promises, run under a coenter so the whole composition
    terminates as a group when any stage hits a problem.

    These helpers build exactly that structure. All of them must be
    called from fiber context and re-raise the first stage exception
    after group termination (coenter semantics). *)

val producer_consumer :
  Sched.Scheduler.t ->
  ?capacity:int ->
  produce:(('a -> unit) -> unit) ->
  consume:('a -> unit) ->
  unit ->
  unit
(** Two-stage composition (the grades example, Figure 4-2): [produce]
    is handed an [emit] function and runs as the first arm; each
    emitted value is consumed, in order, by [consume] running in the
    second arm. The connecting queue closes when the producer finishes,
    ending the consumer after it drains. [capacity] bounds the queue
    (back-pressure). *)

val pipeline3 :
  Sched.Scheduler.t ->
  ?capacity:int ->
  stage1:(('a -> unit) -> unit) ->
  stage2:('a -> ('b -> unit) -> unit) ->
  stage3:('b -> unit) ->
  unit ->
  unit
(** Three-stage composition (the read/compute/write cascade of §4):
    [stage2] receives each value from stage 1 together with an emit
    function for stage 3. *)

val per_item :
  Sched.Scheduler.t ->
  items:'a list ->
  stages:('a -> int -> Sequencer.t array -> unit) ->
  nstages:int ->
  unit
(** The process-per-item structure discussed (and discouraged on a
    sequential machine) in §4.3: one process per item; the process for
    item [i] must wrap its use of stage [s] in
    [Sequencer.with_turn seqs.(s) i] so calls on each stream stay in
    item order. Runs as a dynamic coenter. *)
