module S = Sched.Scheduler
module SE = Cstream.Stream_end
module W = Cstream.Wire

type ('a, 'r, 'e) h = {
  h_sig : ('a, 'r, 'e) Sigs.hsig;
  h_stream : SE.t;
  h_sched : S.t;
}

let bind agent ~dst ~gid hs =
  { h_sig = hs; h_stream = Agent.stream_to agent ~dst ~gid; h_sched = Agent.sched agent }

let bind_ref agent pref hs =
  let hs = { hs with Sigs.hname = pref.Sigs.pr_port } in
  bind agent ~dst:pref.Sigs.pr_addr ~gid:pref.Sigs.pr_group hs

let hsig h = h.h_sig

let stream h = h.h_stream

let decode_outcome (hs : ('a, 'r, 'e) Sigs.hsig) (w : W.routcome) : ('r, 'e) Promise.outcome =
  match w with
  | W.W_normal v -> (
      match Xdr.decode hs.Sigs.res_c v with
      | Ok r -> Promise.Normal r
      | Error reason -> Promise.Failure ("could not decode: " ^ reason))
  | W.W_signal (sig_name, payload) -> (
      match hs.Sigs.sig_c.Sigs.dec_sig (sig_name, payload) with
      | Ok e -> Promise.Signal e
      | Error reason -> Promise.Failure ("could not decode signal: " ^ reason))
  | W.W_unavailable reason -> Promise.Unavailable reason
  | W.W_failure reason -> Promise.Failure reason

(* Shared front half of every call form: wounded-fiber check, argument
   encoding, stream-broken check. On success the call is on the stream
   and [on_reply] will fire exactly once. *)
let start_call h ~kind arg ~on_reply =
  if S.wounded h.h_sched then
    (* "It cannot make any remote calls at such a point" (§4.2). *)
    raise S.Terminated;
  match Xdr.encode h.h_sig.Sigs.arg_c arg with
  | Error reason -> raise (Promise.Failure_exn ("encoding failed: " ^ reason))
  | Ok args -> (
      match SE.call h.h_stream ~port:h.h_sig.Sigs.hname ~kind ~args ~on_reply with
      | Ok () -> ()
      | Error reason -> raise (Promise.Unavailable_exn reason))

let stream_call h arg =
  let p = Promise.create h.h_sched in
  start_call h ~kind:W.Call arg ~on_reply:(fun w -> Promise.resolve p (decode_outcome h.h_sig w));
  p

let stream_call_ h arg =
  start_call h ~kind:W.Call arg ~on_reply:(fun w ->
      (* Decoded and discarded, as §3 specifies for statement form. *)
      ignore (decode_outcome h.h_sig w : _ Promise.outcome))

let send h arg = start_call h ~kind:W.Send arg ~on_reply:(fun _ -> ())

let flush h = SE.flush h.h_stream

let rpc h arg =
  let p = stream_call h arg in
  flush h;
  Promise.claim p

let synch h = SE.synch h.h_stream
