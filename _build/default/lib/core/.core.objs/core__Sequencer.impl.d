lib/core/sequencer.ml: List Sched
