lib/core/promise.mli: Sched
