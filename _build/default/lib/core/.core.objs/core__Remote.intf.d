lib/core/remote.mli: Agent Cstream Net Promise Sigs
