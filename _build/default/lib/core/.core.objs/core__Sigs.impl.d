lib/core/sigs.ml: Net Printf Xdr
