lib/core/agent.mli: Cstream Net Sched
