lib/core/promise.ml: Array List Sched
