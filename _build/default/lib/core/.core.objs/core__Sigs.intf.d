lib/core/sigs.mli: Net Xdr
