lib/core/sequencer.mli: Sched
