lib/core/remote.ml: Agent Cstream Promise Sched Sigs Xdr
