lib/core/fork.ml: Printexc Promise Sched
