lib/core/fork.mli: Promise Sched Sigs
