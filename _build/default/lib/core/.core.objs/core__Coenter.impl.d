lib/core/coenter.ml: List Printf Sched
