lib/core/compose.mli: Sched Sequencer
