lib/core/compose.ml: Array Coenter List Sched Sequencer
