lib/core/agent.ml: Cstream Hashtbl Net
