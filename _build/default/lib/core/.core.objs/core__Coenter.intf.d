lib/core/coenter.mli: Sched
