(** The coenter statement: structured concurrency with group
    termination (§4.2).

    [coenter sched arms] runs each arm as a process (in one group) and
    parks the caller until all of them complete. If an arm terminates
    by raising an exception, the remaining arms are terminated — each
    dies at its next termination point, delayed while it is inside a
    critical section ("wounding") — and, once the group is empty, the
    first exception re-raises in the caller, where an enclosing
    [except]-style handler can catch it.

    This is the mechanism the paper recommends for stream composition:
    unlike the fork version (Figure 4-1), a communication failure in
    one arm cannot leave another arm hanging forever on an empty queue
    (Figure 4-2 and experiment E6). *)

val coenter : Sched.Scheduler.t -> (unit -> unit) list -> unit
(** Run the arms; re-raise the first arm exception after every arm has
    finished or been terminated. Must be called from fiber context. *)

val coenter_foreach : Sched.Scheduler.t -> 'a list -> ('a -> unit) -> unit
(** The dynamic extension sketched in §4.3: one arm per element of the
    list (e.g. one process per data item in a cascade). *)
