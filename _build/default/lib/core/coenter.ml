module S = Sched.Scheduler

let run_arms sched arms =
  let group = S.Group.create sched in
  let first_exn = ref None in
  List.iteri
    (fun i arm ->
      ignore
        (S.Group.add_spawn sched group
           ~name:(Printf.sprintf "coenter-arm-%d" i)
           ~on_exit:(fun result ->
             match result with
             | S.Finished | S.Killed -> ()
             | S.Failed e ->
                 (* First failure wins; terminate the siblings so none
                    of them hangs (the arm itself has already exited). *)
                 if !first_exn = None then first_exn := Some e;
                 S.Group.terminate sched group)
           arm
          : S.fiber))
    arms;
  S.Group.wait sched group;
  match !first_exn with None -> () | Some e -> raise e

let coenter sched arms = run_arms sched arms

let coenter_foreach sched items f = run_arms sched (List.map (fun x () -> f x) items)
