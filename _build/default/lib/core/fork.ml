module S = Sched.Scheduler

let fork sched ?(name = "fork") ?group body =
  let p = Promise.create sched in
  ignore
    (S.spawn sched ~name ?group
       ~on_exit:(fun result ->
         (* Normal and signalled terminations resolve inside the body;
            anything else is mapped here. *)
         if not (Promise.ready p) then
           match result with
           | S.Finished -> Promise.resolve p (Promise.Failure "fork body did not resolve")
           | S.Failed e -> Promise.resolve p (Promise.Failure (Printexc.to_string e))
           | S.Killed -> Promise.resolve p (Promise.Failure "process terminated"))
       (fun () ->
         match body () with
         | Ok r -> Promise.resolve p (Promise.Normal r)
         | Error e -> Promise.resolve p (Promise.Signal e))
      : S.fiber);
  p

let fork_unit sched ?name ?group body =
  fork sched ?name ?group (fun () ->
      body ();
      Ok ())
