module S = Sched.Scheduler
module Bq = Sched.Bqueue

let drain queue consume =
  let rec loop () =
    match Bq.deq queue with
    | v ->
        consume v;
        loop ()
    | exception Bq.Closed -> ()
  in
  loop ()

let producer_consumer sched ?capacity ~produce ~consume () =
  let queue = Bq.create ?capacity sched in
  Coenter.coenter sched
    [
      (fun () ->
        (match produce (fun v -> Bq.enq queue v) with
        | () -> ()
        | exception e ->
            (* Close so the consumer drains and ends even when coenter
               termination is racing with it. *)
            Bq.close queue;
            raise e);
        Bq.close queue);
      (fun () -> drain queue consume);
    ]

let pipeline3 sched ?capacity ~stage1 ~stage2 ~stage3 () =
  let q12 = Bq.create ?capacity sched in
  let q23 = Bq.create ?capacity sched in
  Coenter.coenter sched
    [
      (fun () ->
        (match stage1 (fun v -> Bq.enq q12 v) with
        | () -> ()
        | exception e ->
            Bq.close q12;
            raise e);
        Bq.close q12);
      (fun () ->
        (match drain q12 (fun v -> stage2 v (fun w -> Bq.enq q23 w)) with
        | () -> ()
        | exception e ->
            Bq.close q23;
            raise e);
        Bq.close q23);
      (fun () -> drain q23 stage3);
    ]

let per_item sched ~items ~stages ~nstages =
  let seqs = Array.init nstages (fun _ -> Sequencer.create sched) in
  let indexed = List.mapi (fun i item -> (i, item)) items in
  Coenter.coenter_foreach sched indexed (fun (i, item) -> stages item i seqs)
