(** Local forks: promises for local procedure calls (§3.2).

    [fork] runs a local procedure in a new process (fiber), in parallel
    with the caller, and returns a promise for its result. Arguments
    are passed by sharing — the body is a closure over heap objects, so
    there are no lifetime problems and no encoding (§3.2).

    The body's typed interface mirrors a handler: it returns [Ok r] for
    normal termination or [Error e] for a declared signal. An escaping
    OCaml exception maps to the [failure] outcome, and termination of
    the forked process (it was killed before finishing) maps to
    [failure "process terminated"]. *)

val fork :
  Sched.Scheduler.t ->
  ?name:string ->
  ?group:Sched.Scheduler.group ->
  (unit -> ('r, 'e) result) ->
  ('r, 'e) Promise.t
(** [fork sched body] starts [body] in a fresh fiber and returns the
    promise for its outcome. [group] attaches the new process to a
    termination group (used by coenter-style structures). *)

val fork_unit :
  Sched.Scheduler.t ->
  ?name:string ->
  ?group:Sched.Scheduler.group ->
  (unit -> unit) ->
  (unit, Sigs.nothing) Promise.t
(** Convenience for bodies with no result and no declared signals. *)
