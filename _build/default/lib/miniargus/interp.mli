(** The Mini-Argus interpreter.

    A checked program is instantiated onto a simulated network: one
    node per guardian and one per process. Guardians register their
    handlers (typed via codecs derived from the checked signatures);
    each process runs as a fiber with its own agent, so all of one
    process's calls to one port group share a stream, exactly as in
    §2. The whole run is deterministic. *)

exception Sig_exn of string * Value.t list
(** A Mini-Argus exception in flight (signal name and payload). *)

type process_result =
  | Pok
  | Pfailed of string  (** uncaught signal or runtime error description *)

type outcome = {
  output : string list;  (** [put_line] lines, in order *)
  processes : (string * process_result) list;
  finished_at : float;  (** virtual time when the last process ended *)
  deadlocked : string list option;
      (** names of fibers parked forever, when the program hangs (e.g.
          the Figure 4-1 termination problem) *)
}

val run_program :
  ?config:Net.config ->
  ?chan_config:Cstream.Chanhub.config ->
  ?seed:int ->
  ?echo:bool ->
  ?until:float ->
  ?crashes:(string * float) list ->
  ?recoveries:(string * float) list ->
  Tast.tprogram ->
  outcome
(** Execute the program. [echo] prints [put_line] output as it
    happens; [until] bounds virtual time (default 300 s); [crashes]
    injects node failures — [("db", 0.008)] crashes guardian [db]'s
    node at 8 ms, breaking the streams to it — and [recoveries] bring
    crashed nodes back (guardians survive crashes, §2.1 fn. 1). *)
