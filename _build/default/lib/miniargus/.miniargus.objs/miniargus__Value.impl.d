lib/miniargus/value.ml: Array Core Format List Printf Result Sched Types Xdr
