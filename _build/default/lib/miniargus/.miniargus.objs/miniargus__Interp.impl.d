lib/miniargus/interp.ml: Argus Ast Core Cstream Float Format Hashtbl List Net Printexc Printf Sched String Tast Types Value
