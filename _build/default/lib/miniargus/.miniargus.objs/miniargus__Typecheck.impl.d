lib/miniargus/typecheck.ml: Ast Format Hashtbl List Printf Sigset String Tast Types
