lib/miniargus/token.ml: Printf
