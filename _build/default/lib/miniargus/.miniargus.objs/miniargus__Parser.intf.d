lib/miniargus/parser.mli: Ast
