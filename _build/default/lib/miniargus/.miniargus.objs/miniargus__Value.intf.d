lib/miniargus/value.mli: Core Format Sched Types Xdr
