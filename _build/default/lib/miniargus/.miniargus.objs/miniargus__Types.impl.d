lib/miniargus/types.ml: Format List String
