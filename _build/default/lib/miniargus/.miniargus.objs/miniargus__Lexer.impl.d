lib/miniargus/lexer.ml: Buffer Hashtbl Lexing List Printf Token
