lib/miniargus/parser.ml: Array Ast Lexer List Printf Token
