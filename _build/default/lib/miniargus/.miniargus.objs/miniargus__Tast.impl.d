lib/miniargus/tast.ml: Ast Types
