lib/miniargus/interp.mli: Cstream Net Tast Value
