lib/miniargus/pretty.ml: Ast Buffer List Printf String
