lib/miniargus/pretty.mli: Ast
