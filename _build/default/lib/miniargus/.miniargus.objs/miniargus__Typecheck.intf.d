lib/miniargus/typecheck.mli: Ast Tast
