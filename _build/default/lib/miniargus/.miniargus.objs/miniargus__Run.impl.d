lib/miniargus/run.ml: Ast Format Interp Lexer Parser Tast Typecheck
