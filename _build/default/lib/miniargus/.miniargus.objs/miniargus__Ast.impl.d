lib/miniargus/ast.ml:
