lib/miniargus/run.mli: Ast Cstream Format Interp Net Tast
