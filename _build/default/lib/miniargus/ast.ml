(* Abstract syntax of Mini-Argus (untyped, as parsed).

   The language is a small Argus: guardians with grouped, typed
   handlers; client processes; stream calls, sends, RPCs; promises
   with claim/ready; local procs with fork; coenter; CLU-style
   termination-model exception handling with except/when. *)

type pos = int (* source line *)

type ty_expr =
  | Tname of string  (* int, real, bool, string, null, or a typedef *)
  | Tarray of ty_expr
  | Tqueue of ty_expr
  | Trecord of (string * ty_expr) list
  | Tpromise of ty_expr option * sig_decl list
      (* promise returns (T) signals (...) — [None] returns nothing *)
  | Tport of ty_expr list * ty_expr option * sig_decl list
      (* port (T1, T2) returns (R) signals (...) — a first-class,
         transmissible reference to a handler (§2) *)

and sig_decl = { sd_name : string; sd_types : ty_expr list }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int
  | Ereal of float
  | Estr of string
  | Ebool of bool
  | Evar of string
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Earray of expr list  (* [e1, e2, ...] *)
  | Erecord of (string * expr) list  (* {f = e, ...} *)
  | Eindex of expr * expr  (* a[i] *)
  | Efield of expr * string  (* r.f — also guardian.handler before checking *)
  | Eapply of expr * expr list  (* f(args) / g.h(args) / builtins *)
  | Estream of expr  (* stream g.h(args) or stream p(args) on a port value *)
  | Efork of expr  (* fork p(args) *)
  | Eportof of expr  (* port g.h — the transmissible reference to a handler *)

type lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Lfield of expr * string

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Svar of string * ty_expr option * expr
  | Sassign of lvalue * expr
  | Sexpr of expr
  | Sif of (expr * stmt list) list * stmt list option
  | Swhile of expr * stmt list
  | Sfor_range of string * expr * expr * stmt list  (* for i in a .. b do *)
  | Sfor_each of string * expr * stmt list  (* for x in arr do *)
  | Sreturn of expr option
  | Ssignal of string * expr list
  | Ssend of expr  (* send g.h(args) *)
  | Sflush of expr  (* flush g.h *)
  | Ssynch of expr  (* synch g.h *)
  | Srestart of expr  (* restart g.h — reincarnate the stream (§2) *)
  | Scoenter of stmt list list  (* coenter action ... action ... end *)
  | Sbegin of stmt list
  | Sexcept of stmt * arm list  (* <stmt> except when ... end *)

and arm = { a_pat : arm_pat; a_params : (string * ty_expr) list; a_body : stmt list }

and arm_pat = Aname of string | Aothers

type handler_decl = {
  hd_name : string;
  hd_params : (string * ty_expr) list;
  hd_ret : ty_expr option;
  hd_sigs : sig_decl list;
  hd_body : stmt list;
  hd_pos : pos;
}

type group_decl = { grp_name : string; grp_handlers : handler_decl list }

type guardian_decl = {
  gd_name : string;
  gd_vars : (string * ty_expr option * expr) list;
  gd_groups : group_decl list;
  gd_pos : pos;
}

type proc_decl = {
  pd_name : string;
  pd_params : (string * ty_expr) list;
  pd_ret : ty_expr option;
  pd_sigs : sig_decl list;
  pd_body : stmt list;
  pd_pos : pos;
}

type process_decl = { prc_name : string; prc_body : stmt list; prc_pos : pos }

type item =
  | Itype of string * ty_expr
  | Iguardian of guardian_decl
  | Iproc of proc_decl
  | Iprocess of process_decl

type program = item list
