(* Tokens of Mini-Argus. The surface syntax is CLU/Argus-flavoured:
   `%` comments, `:=` assignment, `end`-delimited blocks. *)

type t =
  (* literals *)
  | INT of int
  | REAL of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_TYPE
  | KW_GUARDIAN
  | KW_GROUP
  | KW_HANDLER
  | KW_PROCESS
  | KW_PROC
  | KW_VAR
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ELSEIF
  | KW_END
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_IN
  | KW_RETURN
  | KW_SIGNAL
  | KW_STREAM
  | KW_SEND
  | KW_FLUSH
  | KW_SYNCH
  | KW_RESTART
  | KW_FORK
  | KW_COENTER
  | KW_ACTION
  | KW_BEGIN
  | KW_EXCEPT
  | KW_WHEN
  | KW_OTHERS
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | KW_RETURNS
  | KW_SIGNALS
  | KW_RECORD
  | KW_ARRAY
  | KW_PROMISE
  | KW_QUEUE
  | KW_PORT
  (* punctuation and operators *)
  | ASSIGN  (* := *)
  | EQ  (* = *)
  | NEQ  (* ~= *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET  (* ^ string concatenation *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | DOT
  | DOTDOT
  | EOF

let to_string = function
  | INT i -> string_of_int i
  | REAL r -> string_of_float r
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_TYPE -> "type"
  | KW_GUARDIAN -> "guardian"
  | KW_GROUP -> "group"
  | KW_HANDLER -> "handler"
  | KW_PROCESS -> "process"
  | KW_PROC -> "proc"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_ELSEIF -> "elseif"
  | KW_END -> "end"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_IN -> "in"
  | KW_RETURN -> "return"
  | KW_SIGNAL -> "signal"
  | KW_STREAM -> "stream"
  | KW_SEND -> "send"
  | KW_FLUSH -> "flush"
  | KW_SYNCH -> "synch"
  | KW_RESTART -> "restart"
  | KW_FORK -> "fork"
  | KW_COENTER -> "coenter"
  | KW_ACTION -> "action"
  | KW_BEGIN -> "begin"
  | KW_EXCEPT -> "except"
  | KW_WHEN -> "when"
  | KW_OTHERS -> "others"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_RETURNS -> "returns"
  | KW_SIGNALS -> "signals"
  | KW_RECORD -> "record"
  | KW_ARRAY -> "array"
  | KW_PROMISE -> "promise"
  | KW_QUEUE -> "queue"
  | KW_PORT -> "port"
  | ASSIGN -> ":="
  | EQ -> "="
  | NEQ -> "~="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | COLON -> ":"
  | DOT -> "."
  | DOTDOT -> ".."
  | EOF -> "<eof>"

let keyword_table =
  [
    ("type", KW_TYPE);
    ("guardian", KW_GUARDIAN);
    ("group", KW_GROUP);
    ("handler", KW_HANDLER);
    ("process", KW_PROCESS);
    ("proc", KW_PROC);
    ("var", KW_VAR);
    ("if", KW_IF);
    ("then", KW_THEN);
    ("else", KW_ELSE);
    ("elseif", KW_ELSEIF);
    ("end", KW_END);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("in", KW_IN);
    ("return", KW_RETURN);
    ("signal", KW_SIGNAL);
    ("stream", KW_STREAM);
    ("send", KW_SEND);
    ("flush", KW_FLUSH);
    ("synch", KW_SYNCH);
    ("restart", KW_RESTART);
    ("fork", KW_FORK);
    ("coenter", KW_COENTER);
    ("action", KW_ACTION);
    ("begin", KW_BEGIN);
    ("except", KW_EXCEPT);
    ("when", KW_WHEN);
    ("others", KW_OTHERS);
    ("and", KW_AND);
    ("or", KW_OR);
    ("not", KW_NOT);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("returns", KW_RETURNS);
    ("signals", KW_SIGNALS);
    ("record", KW_RECORD);
    ("array", KW_ARRAY);
    ("promise", KW_PROMISE);
    ("queue", KW_QUEUE);
    ("port", KW_PORT);
  ]
