(* Runtime values of Mini-Argus and their external representation.

   Promises and queues are runtime-only: the checker rejects them in
   handler signatures, and their codecs fail defensively. Records and
   arrays are mutable, as in CLU/Argus; arguments are passed by
   sharing locally and by value (through the codec) remotely. *)

module P = Core.Promise

type t =
  | Vunit
  | Vint of int
  | Vreal of float
  | Vbool of bool
  | Vstr of string
  | Varr of vec
  | Vrec of (string * t ref) list  (* sorted by field *)
  | Vpromise of (t, string * t list) P.t
  | Vqueue of t Sched.Bqueue.t
  | Vport of port_ref

and port_ref = { vp_addr : int; vp_group : string; vp_port : string }

and vec = { mutable items : t array; mutable len : int }

(* --- growable arrays ------------------------------------------------ *)

let vec_create () = { items = [||]; len = 0 }

let vec_of_list l =
  let items = Array.of_list l in
  { items; len = Array.length items }

let vec_get v i =
  if i < 0 || i >= v.len then None else Some v.items.(i)

let vec_set v i x =
  if i < 0 || i >= v.len then false
  else begin
    v.items.(i) <- x;
    true
  end

let vec_addh v x =
  if v.len = Array.length v.items then begin
    let cap = if v.len = 0 then 8 else 2 * v.len in
    let items = Array.make cap x in
    Array.blit v.items 0 items 0 v.len;
    v.items <- items
  end;
  v.items.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_list v = Array.to_list (Array.sub v.items 0 v.len)

(* --- printing -------------------------------------------------------- *)

let rec pp ppf = function
  | Vunit -> Format.pp_print_string ppf "()"
  | Vint i -> Format.pp_print_int ppf i
  | Vreal r -> Format.fprintf ppf "%g" r
  | Vbool b -> Format.pp_print_bool ppf b
  | Vstr s -> Format.fprintf ppf "%S" s
  | Varr v ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        (vec_to_list v)
  | Vrec fields ->
      let pp_field ppf (f, r) = Format.fprintf ppf "%s = %a" f pp !r in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_field)
        fields
  | Vpromise p -> Format.fprintf ppf "<promise %s>" (if P.ready p then "ready" else "blocked")
  | Vqueue _ -> Format.pp_print_string ppf "<queue>"
  | Vport p -> Format.fprintf ppf "<port %d/%s/%s>" p.vp_addr p.vp_group p.vp_port

let to_string v = Format.asprintf "%a" pp v

(* --- codecs derived from static types -------------------------------- *)

let rec codec_of_ty (ty : Types.ty) : t Xdr.codec =
  match ty with
  | Types.Tunit ->
      {
        Xdr.type_name = "null";
        encode = (function Vunit -> Ok Xdr.Unit | v -> Error ("not null: " ^ to_string v));
        decode = (function Xdr.Unit -> Ok Vunit | _ -> Error "expected unit");
      }
  | Types.Tint ->
      {
        Xdr.type_name = "int";
        encode = (function Vint i -> Ok (Xdr.Int i) | v -> Error ("not an int: " ^ to_string v));
        decode = (function Xdr.Int i -> Ok (Vint i) | _ -> Error "expected int");
      }
  | Types.Treal ->
      {
        Xdr.type_name = "real";
        encode =
          (function Vreal r -> Ok (Xdr.Real r) | v -> Error ("not a real: " ^ to_string v));
        decode = (function Xdr.Real r -> Ok (Vreal r) | _ -> Error "expected real");
      }
  | Types.Tbool ->
      {
        Xdr.type_name = "bool";
        encode =
          (function Vbool b -> Ok (Xdr.Bool b) | v -> Error ("not a bool: " ^ to_string v));
        decode = (function Xdr.Bool b -> Ok (Vbool b) | _ -> Error "expected bool");
      }
  | Types.Tstr ->
      {
        Xdr.type_name = "string";
        encode =
          (function Vstr s -> Ok (Xdr.Str s) | v -> Error ("not a string: " ^ to_string v));
        decode = (function Xdr.Str s -> Ok (Vstr s) | _ -> Error "expected string");
      }
  | Types.Tarr elem ->
      let ec = codec_of_ty elem in
      let lc = Xdr.list ec in
      {
        Xdr.type_name = "array";
        encode =
          (function
          | Varr v -> lc.Xdr.encode (vec_to_list v)
          | v -> Error ("not an array: " ^ to_string v));
        decode = (fun x -> Result.map (fun l -> Varr (vec_of_list l)) (lc.Xdr.decode x));
      }
  | Types.Trec fields ->
      let codecs = List.map (fun (f, t) -> (f, codec_of_ty t)) fields in
      {
        Xdr.type_name = "record";
        encode =
          (function
          | Vrec vfields ->
              let rec go acc = function
                | [] -> Ok (Xdr.Record (List.rev acc))
                | (f, c) :: rest -> (
                    match List.assoc_opt f vfields with
                    | None -> Error ("missing record field " ^ f)
                    | Some r -> (
                        match c.Xdr.encode !r with
                        | Ok v -> go ((f, v) :: acc) rest
                        | Error e -> Error e))
              in
              go [] codecs
          | v -> Error ("not a record: " ^ to_string v));
        decode =
          (function
          | Xdr.Record xfields ->
              let rec go acc = function
                | [] -> Ok (Vrec (List.rev acc))
                | (f, c) :: rest -> (
                    match List.assoc_opt f xfields with
                    | None -> Error ("missing record field " ^ f)
                    | Some x -> (
                        match c.Xdr.decode x with
                        | Ok v -> go ((f, ref v) :: acc) rest
                        | Error e -> Error e))
              in
              go [] codecs
          | _ -> Error "expected record");
      }
  | Types.Tportv _ ->
      {
        Xdr.type_name = "port";
        encode =
          (function
          | Vport p ->
              Ok (Xdr.Pair (Xdr.Int p.vp_addr, Xdr.Pair (Xdr.Str p.vp_group, Xdr.Str p.vp_port)))
          | v -> Error ("not a port: " ^ to_string v));
        decode =
          (function
          | Xdr.Pair (Xdr.Int a, Xdr.Pair (Xdr.Str g, Xdr.Str p)) ->
              Ok (Vport { vp_addr = a; vp_group = g; vp_port = p })
          | _ -> Error "expected port");
      }
  | Types.Tpromise _ ->
      {
        Xdr.type_name = "promise";
        encode = (fun _ -> Error "promises are not legal as arguments or results");
        decode = (fun _ -> Error "promises are not legal as arguments or results");
      }
  | Types.Tqueue _ ->
      {
        Xdr.type_name = "queue";
        encode = (fun _ -> Error "queues cannot be transmitted");
        decode = (fun _ -> Error "queues cannot be transmitted");
      }

(* Positional argument tuple codec for a handler signature. *)
let args_codec (param_tys : Types.ty list) : t list Xdr.codec =
  let codecs = List.map codec_of_ty param_tys in
  {
    Xdr.type_name = "args";
    encode =
      (fun vs ->
        if List.length vs <> List.length codecs then Error "arity mismatch"
        else
          let rec go acc cs vs =
            match (cs, vs) with
            | [], [] -> Ok (Xdr.List (List.rev acc))
            | c :: cs, v :: vs -> (
                match c.Xdr.encode v with Ok x -> go (x :: acc) cs vs | Error e -> Error e)
            | _ -> Error "arity mismatch"
          in
          go [] codecs vs);
    decode =
      (function
      | Xdr.List xs ->
          if List.length xs <> List.length codecs then Error "arity mismatch"
          else
            let rec go acc cs xs =
              match (cs, xs) with
              | [], [] -> Ok (List.rev acc)
              | c :: cs, x :: xs -> (
                  match c.Xdr.decode x with Ok v -> go (v :: acc) cs xs | Error e -> Error e)
              | _ -> Error "arity mismatch"
            in
            go [] codecs xs
      | _ -> Error "expected argument list");
  }

(* Signal codec for a declared signal set: payloads are positional. *)
let signal_codec (sigs : Types.signal list) : (string * t list) Core.Sigs.signal_codec =
  let payload_codec name =
    match List.find_opt (fun s -> s.Types.sg_name = name) sigs with
    | Some s -> Some (args_codec s.Types.sg_payload)
    | None -> None
  in
  {
    Core.Sigs.enc_sig =
      (fun (name, payload) ->
        match payload_codec name with
        | None -> Error (Printf.sprintf "undeclared signal %s" name)
        | Some c -> (
            match c.Xdr.encode payload with
            | Ok v -> Ok (name, v)
            | Error e -> Error e));
    dec_sig =
      (fun (name, v) ->
        match payload_codec name with
        | None -> Error (Printf.sprintf "undeclared signal %s" name)
        | Some c -> (
            match c.Xdr.decode v with Ok vs -> Ok (name, vs) | Error e -> Error e));
  }

(* Structural equality for the = operator (checker guarantees operands
   are transmissible, so promise/queue never reach here). *)
let rec equal a b =
  match (a, b) with
  | Vunit, Vunit -> true
  | Vint x, Vint y -> x = y
  | Vreal x, Vreal y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y -> x = y
  | Varr x, Varr y ->
      x.len = y.len
      && (let rec go i = i >= x.len || (equal x.items.(i) y.items.(i) && go (i + 1)) in
          go 0)
  | Vrec xs, Vrec ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (f, r) (g, s) -> f = g && equal !r !s) xs ys
  | Vport x, Vport y -> x = y
  | ( Vunit | Vint _ | Vreal _ | Vbool _ | Vstr _ | Varr _ | Vrec _ | Vpromise _ | Vqueue _
    | Vport _ ), _ ->
      false
