(** Runtime values of Mini-Argus and their external representation.

    Records and arrays are mutable and passed by sharing locally (as in
    CLU/Argus); remote transmission goes through codecs derived from
    the checked static types, so handler arguments and results travel
    by value. Promises and queues are runtime-only: the type checker
    keeps them out of handler signatures and their codecs refuse to
    encode — "promises are not legal as arguments or results" (§3). *)

type t =
  | Vunit
  | Vint of int
  | Vreal of float
  | Vbool of bool
  | Vstr of string
  | Varr of vec
  | Vrec of (string * t ref) list  (** fields sorted by name *)
  | Vpromise of (t, string * t list) Core.Promise.t
      (** the signal side carries (name, payload) *)
  | Vqueue of t Sched.Bqueue.t
  | Vport of port_ref  (** a transmissible handler reference (§2) *)

and port_ref = { vp_addr : int; vp_group : string; vp_port : string }

and vec = { mutable items : t array; mutable len : int }

(** {1 Growable arrays (CLU array essentials)} *)

val vec_create : unit -> vec

val vec_of_list : t list -> vec

val vec_get : vec -> int -> t option

val vec_set : vec -> int -> t -> bool
(** [false] when the index is out of bounds. *)

val vec_addh : vec -> t -> unit

val vec_to_list : vec -> t list

(** {1 Printing and equality} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
(** Structural; only called on transmissible values (checker-enforced). *)

(** {1 Type-directed codecs} *)

val codec_of_ty : Types.ty -> t Xdr.codec

val args_codec : Types.ty list -> t list Xdr.codec
(** Positional tuple codec for a handler's parameter list. *)

val signal_codec : Types.signal list -> (string * t list) Core.Sigs.signal_codec
(** Codec for a declared signal set; undeclared names fail to encode
    (becoming [failure] at the guardian boundary). *)
