(** Recursive-descent parser for Mini-Argus.

    Menhir is not part of the sealed toolchain, and a hand-written
    parser gives better error messages for a language this size. The
    grammar is LL(2) except for the assignment/expression-statement
    split, which is resolved by parsing a postfix expression first and
    converting it to an lvalue when [:=] follows. *)

exception Error of string * int
(** Parse error: message and source line. *)

val parse_program : string -> Ast.program
(** Parse a whole compilation unit from source text. Raises {!Error}
    or [Lexer.Error]. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (for tests). *)
