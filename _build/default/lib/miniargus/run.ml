(* Front-door of the Mini-Argus implementation: parse, check, run. *)

type error = { phase : [ `Lex | `Parse | `Type ]; message : string; line : int }

let pp_error ppf e =
  let phase = match e.phase with `Lex -> "lexical" | `Parse -> "syntax" | `Type -> "type" in
  Format.fprintf ppf "%s error, line %d: %s" phase e.line e.message

let error_to_string e = Format.asprintf "%a" pp_error e

let parse src : (Ast.program, error) result =
  match Parser.parse_program src with
  | prog -> Ok prog
  | exception Lexer.Error (message, line) -> Error { phase = `Lex; message; line }
  | exception Parser.Error (message, line) -> Error { phase = `Parse; message; line }

let check src : (Tast.tprogram, error) result =
  match parse src with
  | Error e -> Error e
  | Ok prog -> (
      match Typecheck.check_program prog with
      | tprog -> Ok tprog
      | exception Typecheck.Error (message, line) -> Error { phase = `Type; message; line })

let run ?config ?chan_config ?seed ?echo ?until ?crashes ?recoveries src :
    (Interp.outcome, error) result =
  match check src with
  | Error e -> Error e
  | Ok tprog ->
      Ok
        (Interp.run_program ?config ?chan_config ?seed ?echo ?until ?crashes ?recoveries
           tprog)

let run_file ?config ?chan_config ?seed ?echo ?until ?crashes ?recoveries path :
    (Interp.outcome, error) result =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  run ?config ?chan_config ?seed ?echo ?until ?crashes ?recoveries src
