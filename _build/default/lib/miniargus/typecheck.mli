(** Static checking of Mini-Argus programs.

    Beyond conventional type checking, the checker performs the
    signal-effect analysis that makes the paper's promises "strongly
    typed ... avoiding the need for runtime checking" (§3, §3.3):

    - every promise type carries the declared signal set of the
      handler (or forked proc) that produces it;
    - [claim] has the result type of the promise and can raise exactly
      the promise's signals plus the universal [unavailable] and
      [failure];
    - a signal may escape a handler or proc only if declared in its
      [signals] clause; it may not escape a process at all — it must
      be handled by an [except] arm (only [unavailable]/[failure],
      which any remote interaction can raise, may escape);
    - an [except when] arm whose signal cannot occur in the statement
      it guards is rejected (it is dead code or a typo);
    - handler argument/result/signal types must be transmissible — no
      promises or queues across the wire (§3).

    The result is a fully resolved {!Tast.tprogram}. *)

exception Error of string * int
(** Type error: message and source line (0 when unknown). *)

val check_program : Ast.program -> Tast.tprogram
