open Types
open Tast

exception Error of string * int

let err pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

(* ------------------------------------------------------------------ *)
(* Global environment *)

type handler_info = { hi_group : string; hi_sig : hsig_t }

type genv = {
  typedefs : (string, ty) Hashtbl.t;
  (* guardian -> handler name -> info; handler names are unique within
     a guardian across all its groups *)
  guardians : (string, (string, handler_info) Hashtbl.t) Hashtbl.t;
  procs : (string, hsig_t * (string * ty) list) Hashtbl.t;
}

(* Local variable environment: lexically scoped. *)
type env = { vars : (string * ty) list; genv : genv }

let lookup_var env name = List.assoc_opt name env.vars

let bind env name ty = { env with vars = (name, ty) :: env.vars }

let is_guardian env name = Hashtbl.mem env.genv.guardians name

(* ------------------------------------------------------------------ *)
(* Resolving type expressions *)

let rec resolve_ty genv pos (t : Ast.ty_expr) : ty =
  match t with
  | Ast.Tname "int" -> Tint
  | Ast.Tname "real" -> Treal
  | Ast.Tname "bool" -> Tbool
  | Ast.Tname "string" -> Tstr
  | Ast.Tname "null" -> Tunit
  | Ast.Tname other -> (
      match Hashtbl.find_opt genv.typedefs other with
      | Some ty -> ty
      | None -> err pos "unknown type name %s" other)
  | Ast.Tarray t -> Tarr (resolve_ty genv pos t)
  | Ast.Tqueue t -> Tqueue (resolve_ty genv pos t)
  | Ast.Trecord fields ->
      let fields = List.map (fun (f, t) -> (f, resolve_ty genv pos t)) fields in
      let sorted = sort_fields fields in
      let rec dup = function
        | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
        | [ _ ] | [] -> None
      in
      (match dup sorted with
      | Some f -> err pos "duplicate record field %s" f
      | None -> ());
      Trec sorted
  | Ast.Tpromise (ret, sigs) ->
      let ret = match ret with None -> Tunit | Some t -> resolve_ty genv pos t in
      Tpromise (ret, resolve_signals genv pos sigs)
  | Ast.Tport (params, ret, sigs) ->
      let params = List.map (resolve_ty genv pos) params in
      let ret = match ret with None -> Tunit | Some t -> resolve_ty genv pos t in
      Tportv (params, ret, resolve_signals genv pos sigs)

and resolve_signals genv pos sigs =
  let resolved =
    List.map
      (fun (s : Ast.sig_decl) ->
        if universal s.Ast.sd_name then
          err pos "%s need not be declared: every call can signal it" s.Ast.sd_name;
        { sg_name = s.Ast.sd_name; sg_payload = List.map (resolve_ty genv pos) s.Ast.sd_types })
      sigs
  in
  let sorted = sort_signals resolved in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a.sg_name = b.sg_name then Some a.sg_name else dup rest
    | [ _ ] | [] -> None
  in
  (match dup sorted with
  | Some name -> err pos "duplicate signal %s" name
  | None -> ());
  sorted

(* ------------------------------------------------------------------ *)
(* Builtins *)

(* ------------------------------------------------------------------ *)
(* Expression checking.

   [expected] enables the bidirectional cases (empty array literals,
   queue()). Returns the typed expression and the signals it can
   raise. *)

let remote_effects = Sigset.of_list [ unavailable; failure ]

let rec check_expr env (e : Ast.expr) (expected : ty option) : texpr * Sigset.t =
  let pos = e.Ast.epos in
  let ret node ty effects = ({ tx = node; tty = ty; txpos = pos }, effects) in
  match e.Ast.e with
  | Ast.Eint i -> ret (Xint i) Tint Sigset.empty
  | Ast.Ereal r -> ret (Xreal r) Treal Sigset.empty
  | Ast.Estr s -> ret (Xstr s) Tstr Sigset.empty
  | Ast.Ebool b -> ret (Xbool b) Tbool Sigset.empty
  | Ast.Evar name -> (
      match lookup_var env name with
      | Some ty -> ret (Xvar name) ty Sigset.empty
      | None ->
          if is_guardian env name then err pos "guardian %s used as a value" name
          else if Hashtbl.mem env.genv.procs name then
            err pos "proc %s used as a value (call it, or use fork)" name
          else err pos "unknown variable %s" name)
  | Ast.Ebinop (op, a, b) -> check_binop env pos op a b
  | Ast.Eunop (op, a) -> (
      let ta, ea = check_expr env a None in
      match op with
      | Ast.Neg ->
          if not (equal ta.tty Tint || equal ta.tty Treal) then
            err pos "unary - expects int or real, got %s" (to_string ta.tty);
          ret (Xunop (op, ta)) ta.tty ea
      | Ast.Not ->
          if not (equal ta.tty Tbool) then
            err pos "not expects bool, got %s" (to_string ta.tty);
          ret (Xunop (op, ta)) Tbool ea)
  | Ast.Earray items -> (
      let elem_expected =
        match expected with Some (Tarr t) -> Some t | Some _ | None -> None
      in
      match (items, elem_expected) with
      | [], None -> err pos "cannot infer the element type of []; annotate the variable"
      | [], Some t -> ret (Xarray []) (Tarr t) Sigset.empty
      | first :: rest, _ ->
          let tfirst, efirst = check_expr env first elem_expected in
          let elem_ty =
            match elem_expected with
            | Some t ->
                if not (equal tfirst.tty t) then
                  err pos "array element has type %s, expected %s" (to_string tfirst.tty)
                    (to_string t);
                t
            | None -> tfirst.tty
          in
          let trest, erest =
            List.fold_left
              (fun (acc, eff) item ->
                let ti, ei = check_expr env item (Some elem_ty) in
                if not (equal ti.tty elem_ty) then
                  err item.Ast.epos "array element has type %s, expected %s"
                    (to_string ti.tty) (to_string elem_ty);
                (ti :: acc, Sigset.union eff ei))
              ([], efirst) rest
          in
          ret (Xarray (tfirst :: List.rev trest)) (Tarr elem_ty) erest)
  | Ast.Erecord fields -> (
      let expected_fields =
        match expected with Some (Trec fs) -> Some fs | Some _ | None -> None
      in
      let checked, effects =
        List.fold_left
          (fun (acc, eff) (f, fe) ->
            let fexpected =
              match expected_fields with Some fs -> List.assoc_opt f fs | None -> None
            in
            let tf, ef = check_expr env fe fexpected in
            ((f, tf) :: acc, Sigset.union eff ef))
          ([], Sigset.empty) fields
      in
      let checked = List.rev checked in
      let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) checked in
      let rec dup = function
        | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
        | [ _ ] | [] -> None
      in
      match dup sorted with
      | Some f -> err pos "duplicate record field %s" f
      | None ->
          let ty = Trec (List.map (fun (f, t) -> (f, t.tty)) sorted) in
          (match expected with
          | Some (Trec _ as exp) when not (equal ty exp) ->
              err pos "record has type %s, expected %s" (to_string ty) (to_string exp)
          | Some _ | None -> ());
          ret (Xrecord sorted) ty effects)
  | Ast.Eindex (a, i) ->
      let ta, ea = check_expr env a None in
      let ti, ei = check_expr env i (Some Tint) in
      if not (equal ti.tty Tint) then err pos "array index must be int";
      let elem =
        match ta.tty with
        | Tarr t -> t
        | other -> err pos "indexing a non-array value of type %s" (to_string other)
      in
      ret (Xindex (ta, ti)) elem (Sigset.union ea ei)
  | Ast.Efield (base, field) -> (
      match base.Ast.e with
      | Ast.Evar g when is_guardian env g && lookup_var env g = None ->
          err pos "handler reference %s.%s used as a value (call it, stream it, or send it)" g
            field
      | _ ->
          let tb, eb = check_expr env base None in
          let field_ty =
            match tb.tty with
            | Trec fields -> (
                match List.assoc_opt field fields with
                | Some t -> t
                | None -> err pos "record %s has no field %s" (to_string tb.tty) field)
            | other -> err pos "field access on non-record type %s" (to_string other)
          in
          ret (Xfield (tb, field)) field_ty eb)
  | Ast.Eapply (callee, args) -> check_apply env pos callee args expected
  | Ast.Estream inner -> (
      match inner.Ast.e with
      | Ast.Eapply (callee, args) -> (
          match remote_callee env pos callee with
          | Some (g, h) ->
              let rc, eff = check_rcall env pos g h args in
              ret (Xstream rc) (Tpromise (rc.rc_sig.hs_ret, rc.rc_sig.hs_sigs))
                (Sigset.union eff remote_effects)
          | None -> (
              match port_callee env callee with
              | Some (tcallee, (params, ret_ty, sigs), ecallee) ->
                  let hs = { hs_params = params; hs_ret = ret_ty; hs_sigs = sigs } in
                  let targs, eff = check_args env pos "port call" params args in
                  ret
                    (Xstream_dyn (tcallee, hs, targs))
                    (Tpromise (ret_ty, sigs))
                    (Sigset.union ecallee (Sigset.union eff remote_effects))
              | None ->
                  err pos "stream expects a handler call: stream guardian.handler(...)"))
      | _ -> err pos "stream expects a handler call: stream guardian.handler(...)")
  | Ast.Efork inner -> (
      match inner.Ast.e with
      | Ast.Eapply ({ Ast.e = Ast.Evar p; _ }, args) -> (
          match Hashtbl.find_opt env.genv.procs p with
          | Some (psig, _) ->
              let targs, eff = check_args env pos ("proc " ^ p) psig.hs_params args in
              ret (Xfork (p, targs)) (Tpromise (psig.hs_ret, psig.hs_sigs)) eff
          | None -> err pos "fork expects a declared proc, %s is not one" p)
      | _ -> err pos "fork expects a proc call: fork procname(...)")
  | Ast.Eportof inner -> (
      match remote_callee env pos inner with
      | Some (g, h) ->
          let rc, _ = check_rcall env pos ~skip_args:true g h [] in
          ret (Xportof rc)
            (Tportv (rc.rc_sig.hs_params, rc.rc_sig.hs_ret, rc.rc_sig.hs_sigs))
            Sigset.empty
      | None -> err pos "port expects a handler reference: port guardian.handler")

and check_binop env pos op a b =
  let ta, ea = check_expr env a None in
  let tb, eb = check_expr env b None in
  let effects = Sigset.union ea eb in
  let both ty = equal ta.tty ty && equal tb.tty ty in
  let result_ty =
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
        if both Tint then Tint
        else if both Treal then Treal
        else
          err pos "arithmetic expects two ints or two reals, got %s and %s"
            (to_string ta.tty) (to_string tb.tty)
    | Ast.Concat ->
        if both Tstr then Tstr
        else err pos "^ expects two strings, got %s and %s" (to_string ta.tty)
               (to_string tb.tty)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        if both Tint || both Treal || both Tstr then Tbool
        else
          err pos "comparison expects two ints, reals or strings, got %s and %s"
            (to_string ta.tty) (to_string tb.tty)
    | Ast.Eq | Ast.Neq ->
        if not (equal ta.tty tb.tty) then
          err pos "= compares values of the same type, got %s and %s" (to_string ta.tty)
            (to_string tb.tty);
        if not (transmissible ta.tty) then
          err pos "values of type %s cannot be compared" (to_string ta.tty);
        Tbool
    | Ast.And | Ast.Or ->
        if both Tbool then Tbool
        else err pos "and/or expect bools, got %s and %s" (to_string ta.tty) (to_string tb.tty)
  in
  ({ tx = Xbinop (op, ta, tb); tty = result_ty; txpos = pos }, effects)

and remote_callee env _pos callee =
  match callee.Ast.e with
  | Ast.Efield ({ Ast.e = Ast.Evar g; _ }, h)
    when is_guardian env g && lookup_var env g = None ->
      Some (g, h)
  | _ -> None

and check_rcall env pos ?(skip_args = false) g h args =
  let handlers = Hashtbl.find env.genv.guardians g in
  match Hashtbl.find_opt handlers h with
  | None -> err pos "guardian %s has no handler %s" g h
  | Some info ->
      let targs, eff =
        if skip_args then ([], Sigset.empty)
        else check_args env pos (g ^ "." ^ h) info.hi_sig.hs_params args
      in
      ( { rc_guardian = g; rc_group = info.hi_group; rc_handler = h; rc_sig = info.hi_sig;
          rc_args = targs },
        eff )

and check_args env pos what param_tys args =
  if List.length param_tys <> List.length args then
    err pos "%s expects %d argument(s), got %d" what (List.length param_tys)
      (List.length args);
  List.fold_left2
    (fun (acc, eff) pty arg ->
      let targ, earg = check_expr env arg (Some pty) in
      if not (equal targ.tty pty) then
        err arg.Ast.epos "%s: argument has type %s, expected %s" what (to_string targ.tty)
          (to_string pty);
      (targ :: acc, Sigset.union eff earg))
    ([], Sigset.empty) param_tys args
  |> fun (acc, eff) -> (List.rev acc, eff)

and port_callee env callee =
  (* An expression of port type used as a callee (unless it is a
     builtin/proc/guardian name, which the callers try first). *)
  match callee.Ast.e with
  | Ast.Evar name
    when lookup_var env name = None -> None (* builtin/proc/guardian names *)
  | _ -> (
      match check_expr env callee None with
      | tc, eff -> (
          match tc.tty with Tportv (p, r, s) -> Some (tc, (p, r, s), eff) | _ -> None)
      | exception Error _ -> None)

and check_apply env pos callee args expected =
  match remote_callee env pos callee with
  | Some (g, h) ->
      (* RPC: caller waits; the handler's signals (and the universal
         exceptions) can arise here. *)
      let rc, eff = check_rcall env pos g h args in
      ( { tx = Xrpc rc; tty = rc.rc_sig.hs_ret; txpos = pos },
        Sigset.union (Sigset.union eff (Sigset.of_list rc.rc_sig.hs_sigs)) remote_effects )
  | None -> (
      match callee.Ast.e with
      | Ast.Evar name when lookup_var env name = None ->
          check_named_apply env pos name args expected
      | _ -> (
          match port_callee env callee with
          | Some (tcallee, (params, ret_ty, sigs), ecallee) ->
              let hs = { hs_params = params; hs_ret = ret_ty; hs_sigs = sigs } in
              let targs, eff = check_args env pos "port call" params args in
              ( { tx = Xrpc_dyn (tcallee, hs, targs); tty = ret_ty; txpos = pos },
                Sigset.union ecallee
                  (Sigset.union (Sigset.union eff (Sigset.of_list sigs)) remote_effects) )
          | None -> err pos "only procs, builtins, handlers and port values can be called"))

and check_named_apply env pos name args expected =
  let ret node ty effects = ({ tx = node; tty = ty; txpos = pos }, effects) in
  let one () =
    match args with
    | [ a ] -> check_expr env a None
    | _ -> err pos "%s expects exactly one argument" name
  in
  match name with
  | "claim" -> (
      let ta, ea = one () in
      match ta.tty with
      | Tpromise (r, sigs) ->
          ret (Xclaim ta) r
            (Sigset.union ea (Sigset.union (Sigset.of_list sigs) remote_effects))
      | other -> err pos "claim expects a promise, got %s" (to_string other))
  | "ready" -> (
      let ta, ea = one () in
      match ta.tty with
      | Tpromise _ -> ret (Xready ta) Tbool ea
      | other -> err pos "ready expects a promise, got %s" (to_string other))
  | "len" -> (
      let ta, ea = one () in
      match ta.tty with
      | Tarr _ | Tstr -> ret (Xbuiltin ("len", [ ta ])) Tint ea
      | other -> err pos "len expects an array or string, got %s" (to_string other))
  | "addh" -> (
      match args with
      | [ arr; item ] -> (
          let tarr, earr = check_expr env arr None in
          match tarr.tty with
          | Tarr elem ->
              let titem, eitem = check_expr env item (Some elem) in
              if not (equal titem.tty elem) then
                err pos "addh: element has type %s, array holds %s" (to_string titem.tty)
                  (to_string elem);
              ret (Xbuiltin ("addh", [ tarr; titem ])) Tunit (Sigset.union earr eitem)
          | other -> err pos "addh expects an array, got %s" (to_string other))
      | _ -> err pos "addh expects (array, element)")
  | "put_line" ->
      let ta, ea = one () in
      if not (equal ta.tty Tstr) then err pos "put_line expects a string";
      ret (Xbuiltin ("put_line", [ ta ])) Tunit ea
  | "int_to_string" ->
      let ta, ea = one () in
      if not (equal ta.tty Tint) then err pos "int_to_string expects an int";
      ret (Xbuiltin ("int_to_string", [ ta ])) Tstr ea
  | "real_to_string" ->
      let ta, ea = one () in
      if not (equal ta.tty Treal) then err pos "real_to_string expects a real";
      ret (Xbuiltin ("real_to_string", [ ta ])) Tstr ea
  | "real" ->
      let ta, ea = one () in
      if not (equal ta.tty Tint) then err pos "real expects an int";
      ret (Xbuiltin ("real", [ ta ])) Treal ea
  | "floor" ->
      let ta, ea = one () in
      if not (equal ta.tty Treal) then err pos "floor expects a real";
      ret (Xbuiltin ("floor", [ ta ])) Tint ea
  | "sleep" ->
      let ta, ea = one () in
      if not (equal ta.tty Treal) then err pos "sleep expects a real (seconds)";
      ret (Xbuiltin ("sleep", [ ta ])) Tunit ea
  | "now" ->
      if args <> [] then err pos "now expects no arguments";
      ret (Xbuiltin ("now", [])) Treal Sigset.empty
  | "queue" -> (
      if args <> [] then err pos "queue expects no arguments";
      match expected with
      | Some (Tqueue t) -> ret (Xbuiltin ("queue", [])) (Tqueue t) Sigset.empty
      | Some other ->
          err pos "queue() used where a %s is expected; annotate the variable"
            (to_string other)
      | None -> err pos "cannot infer the element type of queue(); annotate the variable")
  | "enq" -> (
      match args with
      | [ q; item ] -> (
          let tq, eq = check_expr env q None in
          match tq.tty with
          | Tqueue elem ->
              let titem, eitem = check_expr env item (Some elem) in
              if not (equal titem.tty elem) then
                err pos "enq: element has type %s, queue holds %s" (to_string titem.tty)
                  (to_string elem);
              ret (Xbuiltin ("enq", [ tq; titem ])) Tunit (Sigset.union eq eitem)
          | other -> err pos "enq expects a queue, got %s" (to_string other))
      | _ -> err pos "enq expects (queue, element)")
  | "deq" -> (
      let ta, ea = one () in
      match ta.tty with
      | Tqueue elem -> ret (Xbuiltin ("deq", [ ta ])) elem ea
      | other -> err pos "deq expects a queue, got %s" (to_string other))
  | _ -> (
      match Hashtbl.find_opt env.genv.procs name with
      | Some (psig, _) ->
          let targs, eff = check_args env pos ("proc " ^ name) psig.hs_params args in
          ( { tx = Xcallproc (name, targs); tty = psig.hs_ret; txpos = pos },
            Sigset.union eff (Sigset.of_list psig.hs_sigs) )
      | None -> err pos "unknown function %s" name)

(* ------------------------------------------------------------------ *)
(* Statement checking *)

type ctx = {
  ret_ty : ty;  (* Tunit in processes *)
  declared : signal list;  (* signals the enclosing handler/proc declares *)
  where : string;  (* for error messages *)
}

let rec check_stmts env ctx stmts : tstmt list * Sigset.t =
  (* Variable declarations extend the environment for the remainder of
     the block. *)
  match stmts with
  | [] -> ([], Sigset.empty)
  | stmt :: rest ->
      let tstmt, effects, env' = check_stmt env ctx stmt in
      let trest, erest = check_stmts env' ctx rest in
      (tstmt :: trest, Sigset.union effects erest)

and check_block env ctx stmts =
  let tstmts, effects = check_stmts env ctx stmts in
  (tstmts, effects)

and check_stmt env ctx (stmt : Ast.stmt) : tstmt * Sigset.t * env =
  let pos = stmt.Ast.spos in
  let mk node = { ts = node; tspos = pos } in
  match stmt.Ast.s with
  | Ast.Svar (name, ty_opt, init) ->
      let expected =
        match ty_opt with Some t -> Some (resolve_ty env.genv pos t) | None -> None
      in
      let tinit, einit = check_expr env init expected in
      let var_ty =
        match expected with
        | Some t ->
            if not (equal tinit.tty t) then
              err pos "variable %s declared %s but initialised with %s" name (to_string t)
                (to_string tinit.tty);
            t
        | None ->
            if equal tinit.tty Tunit then
              err pos "variable %s cannot have type null" name;
            tinit.tty
      in
      (mk (TSvar (name, tinit)), einit, bind env name var_ty)
  | Ast.Sassign (lv, rhs) ->
      let tlv, lv_ty, elv = check_lvalue env pos lv in
      let trhs, erhs = check_expr env rhs (Some lv_ty) in
      if not (equal trhs.tty lv_ty) then
        err pos "assignment of %s to a location of type %s" (to_string trhs.tty)
          (to_string lv_ty);
      (mk (TSassign (tlv, trhs)), Sigset.union elv erhs, env)
  | Ast.Sexpr e ->
      let te, ee = check_expr env e None in
      (mk (TSexpr te), ee, env)
  | Ast.Sif (branches, else_body) ->
      let tbranches, eff =
        List.fold_left
          (fun (acc, eff) (cond, body) ->
            let tcond, econd = check_expr env cond (Some Tbool) in
            if not (equal tcond.tty Tbool) then
              err cond.Ast.epos "if condition must be bool, got %s" (to_string tcond.tty);
            let tbody, ebody = check_block env ctx body in
            ((tcond, tbody) :: acc, Sigset.union eff (Sigset.union econd ebody)))
          ([], Sigset.empty) branches
      in
      let telse, eelse =
        match else_body with
        | None -> (None, Sigset.empty)
        | Some body ->
            let tbody, ebody = check_block env ctx body in
            (Some tbody, ebody)
      in
      (mk (TSif (List.rev tbranches, telse)), Sigset.union eff eelse, env)
  | Ast.Swhile (cond, body) ->
      let tcond, econd = check_expr env cond (Some Tbool) in
      if not (equal tcond.tty Tbool) then err pos "while condition must be bool";
      let tbody, ebody = check_block env ctx body in
      (mk (TSwhile (tcond, tbody)), Sigset.union econd ebody, env)
  | Ast.Sfor_range (name, first, last, body) ->
      let tfirst, efirst = check_expr env first (Some Tint) in
      let tlast, elast = check_expr env last (Some Tint) in
      if not (equal tfirst.tty Tint && equal tlast.tty Tint) then
        err pos "for-range bounds must be ints";
      let tbody, ebody = check_block (bind env name Tint) ctx body in
      ( mk (TSfor_range (name, tfirst, tlast, tbody)),
        Sigset.union efirst (Sigset.union elast ebody),
        env )
  | Ast.Sfor_each (name, arr, body) -> (
      let tarr, earr = check_expr env arr None in
      match tarr.tty with
      | Tarr elem ->
          let tbody, ebody = check_block (bind env name elem) ctx body in
          (mk (TSfor_each (name, tarr, tbody)), Sigset.union earr ebody, env)
      | other -> err pos "for-each expects an array, got %s" (to_string other))
  | Ast.Sreturn e_opt -> (
      match (e_opt, ctx.ret_ty) with
      | None, ret when equal ret Tunit -> (mk (TSreturn None), Sigset.empty, env)
      | None, ret -> err pos "%s must return a value of type %s" ctx.where (to_string ret)
      | Some _, ret when equal ret Tunit && ctx.where <> "" && String.length ctx.where > 6
                         && String.sub ctx.where 0 7 = "process" ->
          err pos "a process does not return a value"
      | Some e, ret ->
          let te, ee = check_expr env e (Some ret) in
          if not (equal te.tty ret) then
            err pos "%s returns %s but this returns %s" ctx.where (to_string ret)
              (to_string te.tty);
          (mk (TSreturn (Some te)), ee, env))
  | Ast.Ssignal (name, args) ->
      let targs, eff =
        List.fold_left
          (fun (acc, eff) a ->
            let ta, ea = check_expr env a None in
            (ta :: acc, Sigset.union eff ea))
          ([], Sigset.empty) args
      in
      let targs = List.rev targs in
      let payload = List.map (fun t -> t.tty) targs in
      if universal name then begin
        match payload with
        | [ Tstr ] -> ()
        | _ -> err pos "signal %s carries exactly one string (the reason)" name
      end;
      let this_sig = { sg_name = name; sg_payload = payload } in
      (* If the enclosing handler/proc declares this signal, the
         payload types must agree with the declaration. *)
      (match Sigset.find_name name ctx.declared with
      | Some declared ->
          if not (equal_signals [ declared ] [ this_sig ]) then
            err pos "signal %s is declared with payload (%s) but raised with (%s)" name
              (String.concat ", " (List.map to_string declared.sg_payload))
              (String.concat ", " (List.map to_string payload))
      | None -> ());
      (mk (TSsignal (name, targs)), Sigset.add this_sig eff, env)
  | Ast.Ssend e -> (
      match e.Ast.e with
      | Ast.Eapply (callee, args) -> (
          match remote_callee env pos callee with
          | Some (g, h) ->
              let rc, eff = check_rcall env pos g h args in
              (mk (TSsend rc), Sigset.union eff remote_effects, env)
          | None -> (
              match port_callee env callee with
              | Some (tcallee, (params, ret_ty, sigs), ecallee) ->
                  let hs = { hs_params = params; hs_ret = ret_ty; hs_sigs = sigs } in
                  let targs, eff = check_args env pos "port call" params args in
                  ( mk (TSsend_dyn (tcallee, hs, targs)),
                    Sigset.union ecallee (Sigset.union eff remote_effects),
                    env )
              | None -> err pos "send expects a handler call: send guardian.handler(...)"))
      | _ -> err pos "send expects a handler call: send guardian.handler(...)")
  | Ast.Sflush e ->
      let g, grp, h = flush_target env pos e in
      (mk (TSflush (g, grp, h)), Sigset.empty, env)
  | Ast.Ssynch e ->
      let g, grp, h = flush_target env pos e in
      (* synch can report exception_reply and break-related failures *)
      ( mk (TSsynch (g, grp, h)),
        Sigset.add exception_reply remote_effects,
        env )
  | Ast.Srestart e ->
      let g, grp, h = flush_target env pos e in
      (mk (TSrestart (g, grp, h)), Sigset.empty, env)
  | Ast.Scoenter arms ->
      let tarms, eff =
        List.fold_left
          (fun (acc, eff) arm ->
            let tarm, earm = check_block env ctx arm in
            (tarm :: acc, Sigset.union eff earm))
          ([], Sigset.empty) arms
      in
      (mk (TScoenter (List.rev tarms)), eff, env)
  | Ast.Sbegin body ->
      let tbody, ebody = check_block env ctx body in
      (mk (TSbegin tbody), ebody, env)
  | Ast.Sexcept (inner, arms) ->
      let tinner, einner, _ = check_stmt env ctx inner in
      let remaining = ref einner in
      let tarms, arm_eff =
        List.fold_left
          (fun (acc, eff) (arm : Ast.arm) ->
            match arm.Ast.a_pat with
            | Ast.Aothers ->
                let arm_env =
                  match arm.Ast.a_params with
                  | [] -> env
                  | [ (p, Ast.Tname "string") ] -> bind env p Tstr
                  | _ -> err pos "when others binds nothing or one string parameter"
                in
                let tparams =
                  match arm.Ast.a_params with [] -> [] | [ (p, _) ] -> [ (p, Tstr) ] | _ -> []
                in
                let tbody, ebody = check_block arm_env ctx arm.Ast.a_body in
                remaining := Sigset.empty;
                ( { ta_pat = Ast.Aothers; ta_params = tparams; ta_body = tbody } :: acc,
                  Sigset.union eff ebody )
            | Ast.Aname name ->
                let sig_info =
                  match Sigset.find_name name !remaining with
                  | Some s -> s
                  | None ->
                      if universal name then { sg_name = name; sg_payload = [ Tstr ] }
                      else
                        err pos
                          "except arm catches %s, but the statement cannot signal it" name
                in
                let params =
                  List.map
                    (fun (p, t) -> (p, resolve_ty env.genv pos t))
                    arm.Ast.a_params
                in
                let param_tys = List.map snd params in
                if List.length param_tys <> List.length sig_info.sg_payload
                   || not (List.for_all2 equal param_tys sig_info.sg_payload)
                then
                  err pos "arm for %s binds (%s) but the signal carries (%s)" name
                    (String.concat ", " (List.map to_string param_tys))
                    (String.concat ", " (List.map to_string sig_info.sg_payload));
                let arm_env =
                  List.fold_left (fun e (p, t) -> bind e p t) env params
                in
                let tbody, ebody = check_block arm_env ctx arm.Ast.a_body in
                remaining := Sigset.remove_name name !remaining;
                ( { ta_pat = Ast.Aname name; ta_params = params; ta_body = tbody } :: acc,
                  Sigset.union eff ebody ))
          ([], Sigset.empty) arms
      in
      (mk (TSexcept (tinner, List.rev tarms)), Sigset.union !remaining arm_eff, env)

and check_lvalue env pos (lv : Ast.lvalue) : tlvalue * ty * Sigset.t =
  match lv with
  | Ast.Lvar name -> (
      match lookup_var env name with
      | Some ty -> (TLvar name, ty, Sigset.empty)
      | None -> err pos "unknown variable %s" name)
  | Ast.Lindex (arr, idx) -> (
      let tarr, earr = check_expr env arr None in
      let tidx, eidx = check_expr env idx (Some Tint) in
      if not (equal tidx.tty Tint) then err pos "array index must be int";
      match tarr.tty with
      | Tarr elem -> (TLindex (tarr, tidx), elem, Sigset.union earr eidx)
      | other -> err pos "indexing a non-array value of type %s" (to_string other))
  | Ast.Lfield (base, field) -> (
      let tb, eb = check_expr env base None in
      match tb.tty with
      | Trec fields -> (
          match List.assoc_opt field fields with
          | Some t -> (TLfield (tb, field), t, eb)
          | None -> err pos "record %s has no field %s" (to_string tb.tty) field)
      | other -> err pos "field access on non-record type %s" (to_string other))

and flush_target env pos (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Efield ({ Ast.e = Ast.Evar g; _ }, h)
    when is_guardian env g && lookup_var env g = None -> (
      let handlers = Hashtbl.find env.genv.guardians g in
      match Hashtbl.find_opt handlers h with
      | Some info -> (g, info.hi_group, h)
      | None -> err pos "guardian %s has no handler %s" g h)
  | _ -> err pos "flush/synch expect a handler: flush guardian.handler"

(* ------------------------------------------------------------------ *)
(* Declarations *)

let check_escaping pos ~where ~declared effects =
  let bad =
    List.filter
      (fun s -> (not (universal s.sg_name)) && not (Sigset.mem_name s.sg_name declared))
      effects
  in
  match bad with
  | [] -> ()
  | s :: _ ->
      err pos
        "%s can signal %s but does not declare it (add a signals clause or an except arm)"
        where s.sg_name

let check_handler genv gvars (hd : Ast.handler_decl) : thandler =
  let pos = hd.Ast.hd_pos in
  let params = List.map (fun (p, t) -> (p, resolve_ty genv pos t)) hd.Ast.hd_params in
  let ret = match hd.Ast.hd_ret with None -> Tunit | Some t -> resolve_ty genv pos t in
  let sigs = resolve_signals genv pos hd.Ast.hd_sigs in
  List.iter
    (fun (p, t) ->
      if not (transmissible t) then
        err pos "handler parameter %s has non-transmissible type %s" p (to_string t))
    params;
  if not (transmissible ret) then
    err pos "handler result type %s is not transmissible" (to_string ret);
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          if not (transmissible t) then
            err pos "signal %s carries non-transmissible type %s" s.sg_name (to_string t))
        s.sg_payload)
    sigs;
  let env =
    List.fold_left (fun e (p, t) -> bind e p t)
      { vars = gvars; genv }
      params
  in
  let ctx =
    { ret_ty = ret; declared = sigs; where = Printf.sprintf "handler %s" hd.Ast.hd_name }
  in
  let body, effects = check_stmts env ctx hd.Ast.hd_body in
  check_escaping pos ~where:ctx.where ~declared:sigs effects;
  { th_name = hd.Ast.hd_name; th_params = params; th_ret = ret; th_sigs = sigs; th_body = body }

let collect_guardian_sigs genv (gd : Ast.guardian_decl) =
  let handlers = Hashtbl.create 8 in
  List.iter
    (fun grp ->
      List.iter
        (fun (hd : Ast.handler_decl) ->
          if Hashtbl.mem handlers hd.Ast.hd_name then
            err hd.Ast.hd_pos "guardian %s declares handler %s twice" gd.Ast.gd_name
              hd.Ast.hd_name;
          let params = List.map (fun (_, t) -> resolve_ty genv hd.Ast.hd_pos t) hd.Ast.hd_params in
          let ret =
            match hd.Ast.hd_ret with
            | None -> Tunit
            | Some t -> resolve_ty genv hd.Ast.hd_pos t
          in
          let sigs = resolve_signals genv hd.Ast.hd_pos hd.Ast.hd_sigs in
          Hashtbl.replace handlers hd.Ast.hd_name
            {
              hi_group = grp.Ast.grp_name;
              hi_sig = { hs_params = params; hs_ret = ret; hs_sigs = sigs };
            })
        grp.Ast.grp_handlers)
    gd.Ast.gd_groups;
  handlers

let check_program (prog : Ast.program) : tprogram =
  let genv =
    { typedefs = Hashtbl.create 16; guardians = Hashtbl.create 8; procs = Hashtbl.create 8 }
  in
  (* pass 1: typedefs in order, then guardian/proc signatures *)
  List.iter
    (function
      | Ast.Itype (name, t) ->
          if Hashtbl.mem genv.typedefs name then err 0 "type %s defined twice" name;
          Hashtbl.replace genv.typedefs name (resolve_ty genv 0 t)
      | Ast.Iguardian _ | Ast.Iproc _ | Ast.Iprocess _ -> ())
    prog;
  List.iter
    (function
      | Ast.Iguardian gd ->
          if Hashtbl.mem genv.guardians gd.Ast.gd_name then
            err gd.Ast.gd_pos "guardian %s defined twice" gd.Ast.gd_name;
          Hashtbl.replace genv.guardians gd.Ast.gd_name (collect_guardian_sigs genv gd)
      | Ast.Iproc pd ->
          if Hashtbl.mem genv.procs pd.Ast.pd_name then
            err pd.Ast.pd_pos "proc %s defined twice" pd.Ast.pd_name;
          let params =
            List.map (fun (p, t) -> (p, resolve_ty genv pd.Ast.pd_pos t)) pd.Ast.pd_params
          in
          let ret =
            match pd.Ast.pd_ret with None -> Tunit | Some t -> resolve_ty genv pd.Ast.pd_pos t
          in
          let sigs = resolve_signals genv pd.Ast.pd_pos pd.Ast.pd_sigs in
          Hashtbl.replace genv.procs pd.Ast.pd_name
            ({ hs_params = List.map snd params; hs_ret = ret; hs_sigs = sigs }, params)
      | Ast.Itype _ | Ast.Iprocess _ -> ())
    prog;
  (* pass 2: bodies *)
  let guardians = ref [] and procs = ref [] and processes = ref [] in
  List.iter
    (function
      | Ast.Itype _ -> ()
      | Ast.Iguardian gd ->
          (* guardian variables first: their initialisers must be pure
             (no remote calls during guardian creation) *)
          let env0 = { vars = []; genv } in
          let gvars_rev, env =
            List.fold_left
              (fun (acc, env) (name, ty_opt, init) ->
                let expected =
                  match ty_opt with
                  | Some t -> Some (resolve_ty genv gd.Ast.gd_pos t)
                  | None -> None
                in
                let tinit, einit = check_expr env init expected in
                if einit <> Sigset.empty then
                  err gd.Ast.gd_pos
                    "guardian variable %s: initialisation cannot make remote calls or \
                     signal"
                    name;
                let ty = match expected with Some t -> t | None -> tinit.tty in
                if not (equal tinit.tty ty) then
                  err gd.Ast.gd_pos "guardian variable %s declared %s but initialised with %s"
                    name (to_string ty) (to_string tinit.tty);
                ((name, ty, tinit) :: acc, bind env name ty))
              ([], env0) gd.Ast.gd_vars
          in
          let gvars = List.rev gvars_rev in
          let gvar_env = env.vars in
          let groups =
            List.map
              (fun grp ->
                ( grp.Ast.grp_name,
                  List.map (fun hd -> check_handler genv gvar_env hd) grp.Ast.grp_handlers ))
              gd.Ast.gd_groups
          in
          guardians := { tg_name = gd.Ast.gd_name; tg_vars = gvars; tg_groups = groups }
                       :: !guardians
      | Ast.Iproc pd ->
          let psig, params = Hashtbl.find genv.procs pd.Ast.pd_name in
          let env = List.fold_left (fun e (p, t) -> bind e p t) { vars = []; genv } params in
          let ctx =
            {
              ret_ty = psig.hs_ret;
              declared = psig.hs_sigs;
              where = Printf.sprintf "proc %s" pd.Ast.pd_name;
            }
          in
          let body, effects = check_stmts env ctx pd.Ast.pd_body in
          check_escaping pd.Ast.pd_pos ~where:ctx.where ~declared:psig.hs_sigs effects;
          procs :=
            { tp_name = pd.Ast.pd_name; tp_params = params; tp_ret = psig.hs_ret;
              tp_sigs = psig.hs_sigs; tp_body = body }
            :: !procs
      | Ast.Iprocess prc ->
          let env = { vars = []; genv } in
          let ctx =
            {
              ret_ty = Tunit;
              declared = [];
              where = Printf.sprintf "process %s" prc.Ast.prc_name;
            }
          in
          let body, effects = check_stmts env ctx prc.Ast.prc_body in
          check_escaping prc.Ast.prc_pos ~where:ctx.where ~declared:[] effects;
          processes := { tpr_name = prc.Ast.prc_name; tpr_body = body } :: !processes)
    prog;
  {
    prog_guardians = List.rev !guardians;
    prog_procs = List.rev !procs;
    prog_processes = List.rev !processes;
  }
