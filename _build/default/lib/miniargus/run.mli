(** Front door of Mini-Argus: parse, type-check, run.

    {[
      match Miniargus.Run.run_file "prog.arg" with
      | Ok outcome -> List.iter print_endline outcome.Miniargus.Interp.output
      | Error e -> prerr_endline (Miniargus.Run.error_to_string e)
    ]} *)

type error = { phase : [ `Lex | `Parse | `Type ]; message : string; line : int }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val parse : string -> (Ast.program, error) result
(** Source text to untyped AST. *)

val check : string -> (Tast.tprogram, error) result
(** Source text to checked, typed AST. *)

val run :
  ?config:Net.config ->
  ?chan_config:Cstream.Chanhub.config ->
  ?seed:int ->
  ?echo:bool ->
  ?until:float ->
  ?crashes:(string * float) list ->
  ?recoveries:(string * float) list ->
  string ->
  (Interp.outcome, error) result
(** Parse, check and execute source text (see {!Interp.run_program}
    for the options). *)

val run_file :
  ?config:Net.config ->
  ?chan_config:Cstream.Chanhub.config ->
  ?seed:int ->
  ?echo:bool ->
  ?until:float ->
  ?crashes:(string * float) list ->
  ?recoveries:(string * float) list ->
  string ->
  (Interp.outcome, error) result
