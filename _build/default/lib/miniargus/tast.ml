(* Typed abstract syntax, produced by the checker and consumed by the
   interpreter. Remote calls are fully resolved: guardian, group,
   handler and the handler's checked signature. *)

open Types

type hsig_t = { hs_params : ty list; hs_ret : ty; hs_sigs : signal list }

type rcall = {
  rc_guardian : string;
  rc_group : string;
  rc_handler : string;
  rc_sig : hsig_t;
  rc_args : texpr list;
}

and texpr = { tx : tnode; tty : ty; txpos : int }

and tnode =
  | Xint of int
  | Xreal of float
  | Xstr of string
  | Xbool of bool
  | Xvar of string
  | Xbinop of Ast.binop * texpr * texpr
  | Xunop of Ast.unop * texpr
  | Xarray of texpr list
  | Xrecord of (string * texpr) list  (* sorted by field *)
  | Xindex of texpr * texpr
  | Xfield of texpr * string
  | Xbuiltin of string * texpr list
  | Xcallproc of string * texpr list
  | Xclaim of texpr
  | Xready of texpr
  | Xrpc of rcall
  | Xstream of rcall
  | Xfork of string * texpr list  (* proc name, args *)
  | Xportof of rcall  (* port g.h — rc_args is empty *)
  | Xrpc_dyn of texpr * hsig_t * texpr list  (* call through a port value *)
  | Xstream_dyn of texpr * hsig_t * texpr list

type tlvalue = TLvar of string | TLindex of texpr * texpr | TLfield of texpr * string

type tstmt = { ts : tsnode; tspos : int }

and tsnode =
  | TSvar of string * texpr
  | TSassign of tlvalue * texpr
  | TSexpr of texpr
  | TSif of (texpr * tstmt list) list * tstmt list option
  | TSwhile of texpr * tstmt list
  | TSfor_range of string * texpr * texpr * tstmt list
  | TSfor_each of string * texpr * tstmt list
  | TSreturn of texpr option
  | TSsignal of string * texpr list
  | TSsend of rcall
  | TSsend_dyn of texpr * hsig_t * texpr list
  | TSflush of string * string * string  (* guardian, group, handler *)
  | TSsynch of string * string * string
  | TSrestart of string * string * string
  | TScoenter of tstmt list list
  | TSbegin of tstmt list
  | TSexcept of tstmt * tarm list

and tarm = { ta_pat : Ast.arm_pat; ta_params : (string * ty) list; ta_body : tstmt list }

type thandler = {
  th_name : string;
  th_params : (string * ty) list;
  th_ret : ty;
  th_sigs : signal list;
  th_body : tstmt list;
}

type tguardian = {
  tg_name : string;
  tg_vars : (string * ty * texpr) list;
  tg_groups : (string * thandler list) list;
}

type tproc = {
  tp_name : string;
  tp_params : (string * ty) list;
  tp_ret : ty;
  tp_sigs : signal list;
  tp_body : tstmt list;
}

type tprocess = { tpr_name : string; tpr_body : tstmt list }

type tprogram = {
  prog_guardians : tguardian list;
  prog_procs : tproc list;
  prog_processes : tprocess list;
}
