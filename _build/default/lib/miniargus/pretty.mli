(** Pretty-printer from the untyped AST back to Mini-Argus source.

    The printer is a fixpoint under re-parsing (checked by a property
    test): [print (parse (print (parse s))) = print (parse s)]. *)

val program_to_string : Ast.program -> string
