{
(* Lexer for Mini-Argus. Comments run from '%' to end of line, as in
   the paper's program listings. *)

open Token

exception Error of string * int (* message, line *)

let keywords = Hashtbl.create 64

let () = List.iter (fun (k, v) -> Hashtbl.replace keywords k v) Token.keyword_table

let line_of lexbuf = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
}

let digit = ['0'-'9']
let alpha = ['a'-'z' 'A'-'Z' '_']
let ident = alpha (alpha | digit)*
let real = digit+ '.' digit+ (['e' 'E'] ['+' '-']? digit+)? | digit+ ['e' 'E'] ['+' '-']? digit+

rule token = parse
  | [' ' '\t' '\r']+      { token lexbuf }
  | '\n'                  { Lexing.new_line lexbuf; token lexbuf }
  | '%' [^ '\n']*         { token lexbuf }
  | real as r             { REAL (float_of_string r) }
  | digit+ as i           { INT (int_of_string i) }
  | '"'                   { string_literal (Buffer.create 16) lexbuf }
  | ident as id           { match Hashtbl.find_opt keywords id with
                            | Some kw -> kw
                            | None -> IDENT id }
  | ":="                  { ASSIGN }
  | "~="                  { NEQ }
  | "<="                  { LE }
  | ">="                  { GE }
  | ".."                  { DOTDOT }
  | '='                   { EQ }
  | '<'                   { LT }
  | '>'                   { GT }
  | '+'                   { PLUS }
  | '-'                   { MINUS }
  | '*'                   { STAR }
  | '/'                   { SLASH }
  | '^'                   { CARET }
  | '('                   { LPAREN }
  | ')'                   { RPAREN }
  | '['                   { LBRACKET }
  | ']'                   { RBRACKET }
  | '{'                   { LBRACE }
  | '}'                   { RBRACE }
  | ','                   { COMMA }
  | ':'                   { COLON }
  | '.'                   { DOT }
  | eof                   { EOF }
  | _ as c                { raise (Error (Printf.sprintf "unexpected character %C" c,
                                          line_of lexbuf)) }

and string_literal buf = parse
  | '"'                   { STRING (Buffer.contents buf) }
  | "\\n"                 { Buffer.add_char buf '\n'; string_literal buf lexbuf }
  | "\\t"                 { Buffer.add_char buf '\t'; string_literal buf lexbuf }
  | "\\\""                { Buffer.add_char buf '"'; string_literal buf lexbuf }
  | "\\\\"                { Buffer.add_char buf '\\'; string_literal buf lexbuf }
  | '\n'                  { raise (Error ("newline in string literal", line_of lexbuf)) }
  | eof                   { raise (Error ("unterminated string literal", line_of lexbuf)) }
  | _ as c                { Buffer.add_char buf c; string_literal buf lexbuf }

{
(* Tokenize a whole string into (token, line) pairs. *)
let tokens_of_string src =
  let lexbuf = Lexing.from_string src in
  let rec go acc =
    let line = line_of lexbuf in
    match token lexbuf with
    | EOF -> List.rev ((EOF, line) :: acc)
    | t -> go ((t, line) :: acc)
  in
  go []
}
