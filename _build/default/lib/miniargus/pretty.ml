(* Pretty-printer from the untyped AST back to Mini-Argus source.
   Used by the test suite to establish parse/print round-tripping. *)

open Ast

let buf_add = Buffer.add_string

let rec pp_ty buf = function
  | Tname n -> buf_add buf n
  | Tarray t ->
      buf_add buf "array[";
      pp_ty buf t;
      buf_add buf "]"
  | Tqueue t ->
      buf_add buf "queue[";
      pp_ty buf t;
      buf_add buf "]"
  | Trecord fields ->
      buf_add buf "record[";
      List.iteri
        (fun i (f, t) ->
          if i > 0 then buf_add buf ", ";
          buf_add buf f;
          buf_add buf ": ";
          pp_ty buf t)
        fields;
      buf_add buf "]"
  | Tpromise (ret, sigs) ->
      buf_add buf "promise";
      (match ret with
      | Some t ->
          buf_add buf " returns (";
          pp_ty buf t;
          buf_add buf ")"
      | None -> ());
      pp_signals buf sigs
  | Tport (params, ret, sigs) ->
      buf_add buf "port (";
      List.iteri
        (fun i t ->
          if i > 0 then buf_add buf ", ";
          pp_ty buf t)
        params;
      buf_add buf ")";
      (match ret with
      | Some t ->
          buf_add buf " returns (";
          pp_ty buf t;
          buf_add buf ")"
      | None -> ());
      pp_signals buf sigs

and pp_signals buf sigs =
  if sigs <> [] then begin
    buf_add buf " signals (";
    List.iteri
      (fun i s ->
        if i > 0 then buf_add buf ", ";
        buf_add buf s.sd_name;
        if s.sd_types <> [] then begin
          buf_add buf "(";
          List.iteri
            (fun j t ->
              if j > 0 then buf_add buf ", ";
              pp_ty buf t)
            s.sd_types;
          buf_add buf ")"
        end)
      sigs;
    buf_add buf ")"
  end

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Concat -> "^"
  | Eq -> "="
  | Neq -> "~="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let rec pp_expr buf e =
  match e.e with
  | Eint i -> buf_add buf (string_of_int i)
  | Ereal r ->
      let s = Printf.sprintf "%.17g" r in
      let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
      buf_add buf s
  | Estr s -> buf_add buf (Printf.sprintf "%S" s)
  | Ebool true -> buf_add buf "true"
  | Ebool false -> buf_add buf "false"
  | Evar n -> buf_add buf n
  | Ebinop (op, a, b) ->
      buf_add buf "(";
      pp_expr buf a;
      buf_add buf (" " ^ binop_str op ^ " ");
      pp_expr buf b;
      buf_add buf ")"
  | Eunop (Neg, a) ->
      buf_add buf "(-";
      pp_expr buf a;
      buf_add buf ")"
  | Eunop (Not, a) ->
      buf_add buf "(not ";
      pp_expr buf a;
      buf_add buf ")"
  | Earray items ->
      buf_add buf "[";
      List.iteri
        (fun i x ->
          if i > 0 then buf_add buf ", ";
          pp_expr buf x)
        items;
      buf_add buf "]"
  | Erecord fields ->
      buf_add buf "{";
      List.iteri
        (fun i (f, x) ->
          if i > 0 then buf_add buf ", ";
          buf_add buf (f ^ " = ");
          pp_expr buf x)
        fields;
      buf_add buf "}"
  | Eindex (a, i) ->
      pp_expr buf a;
      buf_add buf "[";
      pp_expr buf i;
      buf_add buf "]"
  | Efield (r, f) ->
      pp_expr buf r;
      buf_add buf ("." ^ f)
  | Eapply (callee, args) ->
      pp_expr buf callee;
      buf_add buf "(";
      List.iteri
        (fun i a ->
          if i > 0 then buf_add buf ", ";
          pp_expr buf a)
        args;
      buf_add buf ")"
  | Estream inner ->
      buf_add buf "stream ";
      pp_expr buf inner
  | Efork inner ->
      buf_add buf "fork ";
      pp_expr buf inner
  | Eportof inner ->
      buf_add buf "port ";
      pp_expr buf inner

let rec pp_stmts buf indent stmts = List.iter (pp_stmt buf indent) stmts

and pp_stmt buf indent stmt =
  let pad = String.make (2 * indent) ' ' in
  let line s = buf_add buf (pad ^ s ^ "\n") in
  match stmt.s with
  | Svar (name, ty, init) ->
      buf_add buf (pad ^ "var " ^ name);
      (match ty with
      | Some t ->
          buf_add buf ": ";
          pp_ty buf t
      | None -> ());
      buf_add buf " := ";
      pp_expr buf init;
      buf_add buf "\n"
  | Sassign (lv, rhs) ->
      buf_add buf pad;
      (match lv with
      | Lvar n -> buf_add buf n
      | Lindex (a, i) ->
          pp_expr buf a;
          buf_add buf "[";
          pp_expr buf i;
          buf_add buf "]"
      | Lfield (r, f) ->
          pp_expr buf r;
          buf_add buf ("." ^ f));
      buf_add buf " := ";
      pp_expr buf rhs;
      buf_add buf "\n"
  | Sexpr e ->
      buf_add buf pad;
      pp_expr buf e;
      buf_add buf "\n"
  | Sif (branches, else_body) ->
      List.iteri
        (fun i (cond, body) ->
          buf_add buf (pad ^ (if i = 0 then "if " else "elseif "));
          pp_expr buf cond;
          buf_add buf " then\n";
          pp_stmts buf (indent + 1) body)
        branches;
      (match else_body with
      | Some body ->
          line "else";
          pp_stmts buf (indent + 1) body
      | None -> ());
      line "end"
  | Swhile (cond, body) ->
      buf_add buf (pad ^ "while ");
      pp_expr buf cond;
      buf_add buf " do\n";
      pp_stmts buf (indent + 1) body;
      line "end"
  | Sfor_range (name, first, last, body) ->
      buf_add buf (pad ^ "for " ^ name ^ " in ");
      pp_expr buf first;
      buf_add buf " .. ";
      pp_expr buf last;
      buf_add buf " do\n";
      pp_stmts buf (indent + 1) body;
      line "end"
  | Sfor_each (name, arr, body) ->
      buf_add buf (pad ^ "for " ^ name ^ " in ");
      pp_expr buf arr;
      buf_add buf " do\n";
      pp_stmts buf (indent + 1) body;
      line "end"
  | Sreturn None -> line "return"
  | Sreturn (Some e) ->
      buf_add buf (pad ^ "return ");
      pp_expr buf e;
      buf_add buf "\n"
  | Ssignal (name, args) ->
      buf_add buf (pad ^ "signal " ^ name);
      if args <> [] then begin
        buf_add buf "(";
        List.iteri
          (fun i a ->
            if i > 0 then buf_add buf ", ";
            pp_expr buf a)
          args;
        buf_add buf ")"
      end;
      buf_add buf "\n"
  | Ssend e ->
      buf_add buf (pad ^ "send ");
      pp_expr buf e;
      buf_add buf "\n"
  | Sflush e ->
      buf_add buf (pad ^ "flush ");
      pp_expr buf e;
      buf_add buf "\n"
  | Ssynch e ->
      buf_add buf (pad ^ "synch ");
      pp_expr buf e;
      buf_add buf "\n"
  | Srestart e ->
      buf_add buf (pad ^ "restart ");
      pp_expr buf e;
      buf_add buf "\n"
  | Scoenter arms ->
      line "coenter";
      List.iter
        (fun arm ->
          line "action";
          pp_stmts buf (indent + 1) arm)
        arms;
      line "end"
  | Sbegin body ->
      line "begin";
      pp_stmts buf (indent + 1) body;
      line "end"
  | Sexcept (inner, arms) ->
      pp_stmt buf indent inner;
      line "except";
      List.iter
        (fun arm ->
          buf_add buf (pad ^ "when ");
          (match arm.a_pat with
          | Aname n -> buf_add buf n
          | Aothers -> buf_add buf "others");
          if arm.a_params <> [] then begin
            buf_add buf "(";
            List.iteri
              (fun i (p, t) ->
                if i > 0 then buf_add buf ", ";
                buf_add buf (p ^ ": ");
                pp_ty buf t)
              arm.a_params;
            buf_add buf ")"
          end;
          buf_add buf ":\n";
          pp_stmts buf (indent + 1) arm.a_body)
        arms;
      line "end"

let pp_params buf params =
  buf_add buf "(";
  List.iteri
    (fun i (p, t) ->
      if i > 0 then buf_add buf ", ";
      buf_add buf (p ^ ": ");
      pp_ty buf t)
    params;
  buf_add buf ")"

let pp_returns buf = function
  | None -> ()
  | Some t ->
      buf_add buf " returns (";
      pp_ty buf t;
      buf_add buf ")"

let pp_item buf = function
  | Itype (name, t) ->
      buf_add buf ("type " ^ name ^ " = ");
      pp_ty buf t;
      buf_add buf "\n\n"
  | Iguardian gd ->
      buf_add buf ("guardian " ^ gd.gd_name ^ "\n");
      List.iter
        (fun (name, ty, init) ->
          buf_add buf ("  var " ^ name);
          (match ty with
          | Some t ->
              buf_add buf ": ";
              pp_ty buf t
          | None -> ());
          buf_add buf " := ";
          pp_expr buf init;
          buf_add buf "\n")
        gd.gd_vars;
      List.iter
        (fun grp ->
          buf_add buf ("  group " ^ grp.grp_name ^ "\n");
          List.iter
            (fun hd ->
              buf_add buf ("    handler " ^ hd.hd_name);
              pp_params buf hd.hd_params;
              pp_returns buf hd.hd_ret;
              pp_signals buf hd.hd_sigs;
              buf_add buf "\n";
              pp_stmts buf 3 hd.hd_body;
              buf_add buf "    end\n")
            grp.grp_handlers;
          buf_add buf "  end\n")
        gd.gd_groups;
      buf_add buf "end\n\n"
  | Iproc pd ->
      buf_add buf ("proc " ^ pd.pd_name);
      pp_params buf pd.pd_params;
      pp_returns buf pd.pd_ret;
      pp_signals buf pd.pd_sigs;
      buf_add buf "\n";
      pp_stmts buf 1 pd.pd_body;
      buf_add buf "end\n\n"
  | Iprocess prc ->
      buf_add buf ("process " ^ prc.prc_name ^ "\n");
      pp_stmts buf 1 prc.prc_body;
      buf_add buf "end\n\n"

let program_to_string prog =
  let buf = Buffer.create 1024 in
  List.iter (pp_item buf) prog;
  Buffer.contents buf
