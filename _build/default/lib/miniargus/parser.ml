open Ast
module T = Token

exception Error of string * int

(* Parser state: token array with a cursor. *)
type state = { toks : (T.t * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)


let line st = snd st.toks.(st.pos)

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let fail st msg = raise (Error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s, found %s" (T.to_string tok) (T.to_string (peek st)))

let expect_ident st =
  match peek st with
  | T.IDENT name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (T.to_string t))

(* ------------------------------------------------------------------ *)
(* Types *)

let rec parse_ty st =
  match peek st with
  | T.IDENT name ->
      advance st;
      Tname name
  | T.KW_ARRAY ->
      advance st;
      expect st T.LBRACKET;
      let t = parse_ty st in
      expect st T.RBRACKET;
      Tarray t
  | T.KW_QUEUE ->
      advance st;
      expect st T.LBRACKET;
      let t = parse_ty st in
      expect st T.RBRACKET;
      Tqueue t
  | T.KW_RECORD ->
      advance st;
      expect st T.LBRACKET;
      let rec fields acc =
        let f = expect_ident st in
        expect st T.COLON;
        let t = parse_ty st in
        if peek st = T.COMMA then begin
          advance st;
          fields ((f, t) :: acc)
        end
        else List.rev ((f, t) :: acc)
      in
      let fs = fields [] in
      expect st T.RBRACKET;
      Trecord fs
  | T.KW_PROMISE ->
      advance st;
      let ret =
        if peek st = T.KW_RETURNS then begin
          advance st;
          expect st T.LPAREN;
          let t = parse_ty st in
          expect st T.RPAREN;
          Some t
        end
        else None
      in
      let sigs = parse_signals_opt st in
      Tpromise (ret, sigs)
  | T.KW_PORT ->
      advance st;
      expect st T.LPAREN;
      let params =
        if peek st = T.RPAREN then []
        else begin
          let rec tys acc =
            let t = parse_ty st in
            if peek st = T.COMMA then begin
              advance st;
              tys (t :: acc)
            end
            else List.rev (t :: acc)
          in
          tys []
        end
      in
      expect st T.RPAREN;
      let ret =
        if peek st = T.KW_RETURNS then begin
          advance st;
          expect st T.LPAREN;
          let t = parse_ty st in
          expect st T.RPAREN;
          Some t
        end
        else None
      in
      let sigs = parse_signals_opt st in
      Tport (params, ret, sigs)
  | t -> fail st (Printf.sprintf "expected a type, found %s" (T.to_string t))

and parse_signals_opt st =
  if peek st = T.KW_SIGNALS then begin
    advance st;
    expect st T.LPAREN;
    let rec sigs acc =
      let name = expect_ident st in
      let types =
        if peek st = T.LPAREN then begin
          advance st;
          let rec tys acc =
            let t = parse_ty st in
            if peek st = T.COMMA then begin
              advance st;
              tys (t :: acc)
            end
            else List.rev (t :: acc)
          in
          let ts = tys [] in
          expect st T.RPAREN;
          ts
        end
        else []
      in
      let entry = { sd_name = name; sd_types = types } in
      if peek st = T.COMMA then begin
        advance st;
        sigs (entry :: acc)
      end
      else List.rev (entry :: acc)
    in
    let result = sigs [] in
    expect st T.RPAREN;
    result
  end
  else []

(* ------------------------------------------------------------------ *)
(* Expressions *)

let mk st node = { e = node; epos = line st }

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = T.KW_OR then begin
    let l = line st in
    advance st;
    let rhs = parse_or st in
    { e = Ebinop (Or, lhs, rhs); epos = l }
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = T.KW_AND then begin
    let l = line st in
    advance st;
    let rhs = parse_and st in
    { e = Ebinop (And, lhs, rhs); epos = l }
  end
  else lhs

and parse_cmp st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | T.EQ -> Some Eq
    | T.NEQ -> Some Neq
    | T.LT -> Some Lt
    | T.LE -> Some Le
    | T.GT -> Some Gt
    | T.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let l = line st in
      advance st;
      let rhs = parse_additive st in
      { e = Ebinop (op, lhs, rhs); epos = l }

and parse_additive st =
  let rec loop lhs =
    let op =
      match peek st with
      | T.PLUS -> Some Add
      | T.MINUS -> Some Sub
      | T.CARET -> Some Concat
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        let l = line st in
        advance st;
        let rhs = parse_multiplicative st in
        loop { e = Ebinop (op, lhs, rhs); epos = l }
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    let op = match peek st with T.STAR -> Some Mul | T.SLASH -> Some Div | _ -> None in
    match op with
    | None -> lhs
    | Some op ->
        let l = line st in
        advance st;
        let rhs = parse_unary st in
        loop { e = Ebinop (op, lhs, rhs); epos = l }
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | T.MINUS ->
      let l = line st in
      advance st;
      { e = Eunop (Neg, parse_unary st); epos = l }
  | T.KW_NOT ->
      let l = line st in
      advance st;
      { e = Eunop (Not, parse_unary st); epos = l }
  | T.KW_STREAM ->
      let l = line st in
      advance st;
      { e = Estream (parse_postfix st); epos = l }
  | T.KW_FORK ->
      let l = line st in
      advance st;
      { e = Efork (parse_postfix st); epos = l }
  | T.KW_PORT ->
      let l = line st in
      advance st;
      { e = Eportof (parse_postfix st); epos = l }
  | T.INT _ | T.REAL _ | T.STRING _ | T.IDENT _ | T.KW_TRUE | T.KW_FALSE | T.KW_QUEUE
  | T.LPAREN | T.LBRACKET | T.LBRACE ->
      parse_postfix st
  | t -> fail st (Printf.sprintf "expected an expression, found %s" (T.to_string t))

and parse_postfix st =
  let rec suffixes base =
    match peek st with
    | T.DOT ->
        let l = line st in
        advance st;
        let field = expect_ident st in
        suffixes { e = Efield (base, field); epos = l }
    | T.LBRACKET ->
        let l = line st in
        advance st;
        let idx = parse_expr st in
        expect st T.RBRACKET;
        suffixes { e = Eindex (base, idx); epos = l }
    | T.LPAREN ->
        let l = line st in
        advance st;
        let args = parse_args st in
        expect st T.RPAREN;
        suffixes { e = Eapply (base, args); epos = l }
    | _ -> base
  in
  suffixes (parse_primary st)

and parse_args st =
  if peek st = T.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if peek st = T.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []
  end

and parse_primary st =
  match peek st with
  | T.INT i ->
      let e = mk st (Eint i) in
      advance st;
      e
  | T.REAL r ->
      let e = mk st (Ereal r) in
      advance st;
      e
  | T.STRING s ->
      let e = mk st (Estr s) in
      advance st;
      e
  | T.KW_TRUE ->
      let e = mk st (Ebool true) in
      advance st;
      e
  | T.KW_FALSE ->
      let e = mk st (Ebool false) in
      advance st;
      e
  | T.IDENT name ->
      let e = mk st (Evar name) in
      advance st;
      e
  | T.KW_QUEUE ->
      (* queue is a keyword in types, but queue() is the constructor *)
      let e = mk st (Evar "queue") in
      advance st;
      e
  | T.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st T.RPAREN;
      e
  | T.LBRACKET ->
      (* array literal *)
      let l = line st in
      advance st;
      if peek st = T.RBRACKET then begin
        advance st;
        { e = Earray []; epos = l }
      end
      else begin
        let rec loop acc =
          let e = parse_expr st in
          if peek st = T.COMMA then begin
            advance st;
            loop (e :: acc)
          end
          else List.rev (e :: acc)
        in
        let items = loop [] in
        expect st T.RBRACKET;
        { e = Earray items; epos = l }
      end
  | T.LBRACE ->
      (* record literal: {f = e, ...} *)
      let l = line st in
      advance st;
      let rec loop acc =
        let f = expect_ident st in
        expect st T.EQ;
        let e = parse_expr st in
        if peek st = T.COMMA then begin
          advance st;
          loop ((f, e) :: acc)
        end
        else List.rev ((f, e) :: acc)
      in
      let fields = loop [] in
      expect st T.RBRACE;
      { e = Erecord fields; epos = l }
  | t -> fail st (Printf.sprintf "expected an expression, found %s" (T.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements *)

let to_lvalue st expr =
  match expr.e with
  | Evar name -> Lvar name
  | Eindex (a, i) -> Lindex (a, i)
  | Efield (r, f) -> Lfield (r, f)
  | Eint _ | Ereal _ | Estr _ | Ebool _ | Ebinop _ | Eunop _ | Earray _ | Erecord _
  | Eapply _ | Estream _ | Efork _ | Eportof _ ->
      fail st "this expression cannot be assigned to"

let stmt_terminator = function
  | T.KW_END | T.KW_ELSE | T.KW_ELSEIF | T.KW_WHEN | T.KW_ACTION | T.EOF -> true
  | T.KW_TYPE | T.KW_GUARDIAN | T.KW_PROC | T.KW_PROCESS -> false
  | _ -> false

let rec parse_stmts st =
  let rec loop acc =
    if stmt_terminator (peek st) then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let stmt = parse_simple_stmt st in
  (* An except clause attaches to the statement it follows. *)
  if peek st = T.KW_EXCEPT then begin
    let l = line st in
    advance st;
    let arms = parse_arms st in
    expect st T.KW_END;
    { s = Sexcept (stmt, arms); spos = l }
  end
  else stmt

and parse_arms st =
  let rec loop acc =
    if peek st = T.KW_WHEN then begin
      advance st;
      let pat, params =
        match peek st with
        | T.KW_OTHERS ->
            advance st;
            let params =
              if peek st = T.LPAREN then parse_arm_params st else []
            in
            (Aothers, params)
        | T.IDENT _ ->
            let name = expect_ident st in
            let params = if peek st = T.LPAREN then parse_arm_params st else [] in
            (Aname name, params)
        | t -> fail st (Printf.sprintf "expected signal name or others, found %s" (T.to_string t))
      in
      expect st T.COLON;
      let body = parse_stmts st in
      loop ({ a_pat = pat; a_params = params; a_body = body } :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_arm_params st =
  expect st T.LPAREN;
  let rec loop acc =
    let name = expect_ident st in
    expect st T.COLON;
    let t = parse_ty st in
    if peek st = T.COMMA then begin
      advance st;
      loop ((name, t) :: acc)
    end
    else List.rev ((name, t) :: acc)
  in
  let params = loop [] in
  expect st T.RPAREN;
  params

and parse_simple_stmt st =
  let l = line st in
  match peek st with
  | T.KW_VAR ->
      advance st;
      let name = expect_ident st in
      let ty =
        if peek st = T.COLON then begin
          advance st;
          Some (parse_ty st)
        end
        else None
      in
      expect st T.ASSIGN;
      let init = parse_expr st in
      { s = Svar (name, ty, init); spos = l }
  | T.KW_IF ->
      advance st;
      let rec branches acc =
        let cond = parse_expr st in
        expect st T.KW_THEN;
        let body = parse_stmts st in
        let acc = (cond, body) :: acc in
        match peek st with
        | T.KW_ELSEIF ->
            advance st;
            branches acc
        | T.KW_ELSE ->
            advance st;
            let else_body = parse_stmts st in
            expect st T.KW_END;
            (List.rev acc, Some else_body)
        | T.KW_END ->
            advance st;
            (List.rev acc, None)
        | t -> fail st (Printf.sprintf "expected elseif/else/end, found %s" (T.to_string t))
      in
      let bs, else_b = branches [] in
      { s = Sif (bs, else_b); spos = l }
  | T.KW_WHILE ->
      advance st;
      let cond = parse_expr st in
      expect st T.KW_DO;
      let body = parse_stmts st in
      expect st T.KW_END;
      { s = Swhile (cond, body); spos = l }
  | T.KW_FOR ->
      advance st;
      let name = expect_ident st in
      expect st T.KW_IN;
      let first = parse_expr st in
      if peek st = T.DOTDOT then begin
        advance st;
        let last = parse_expr st in
        expect st T.KW_DO;
        let body = parse_stmts st in
        expect st T.KW_END;
        { s = Sfor_range (name, first, last, body); spos = l }
      end
      else begin
        expect st T.KW_DO;
        let body = parse_stmts st in
        expect st T.KW_END;
        { s = Sfor_each (name, first, body); spos = l }
      end
  | T.KW_RETURN ->
      advance st;
      (* return takes an expression unless the next token clearly
         starts another statement or ends the block *)
      let has_value =
        match peek st with
        | T.KW_END | T.KW_ELSE | T.KW_ELSEIF | T.KW_WHEN | T.KW_ACTION | T.EOF | T.KW_VAR
        | T.KW_IF | T.KW_WHILE | T.KW_FOR | T.KW_RETURN | T.KW_SIGNAL | T.KW_SEND
        | T.KW_FLUSH | T.KW_SYNCH | T.KW_COENTER | T.KW_BEGIN | T.KW_EXCEPT ->
            false
        | _ -> true
      in
      if has_value then { s = Sreturn (Some (parse_expr st)); spos = l }
      else { s = Sreturn None; spos = l }
  | T.KW_SIGNAL ->
      advance st;
      let name = expect_ident st in
      let args =
        if peek st = T.LPAREN then begin
          advance st;
          let args = parse_args st in
          expect st T.RPAREN;
          args
        end
        else []
      in
      { s = Ssignal (name, args); spos = l }
  | T.KW_SEND ->
      advance st;
      { s = Ssend (parse_postfix st); spos = l }
  | T.KW_FLUSH ->
      advance st;
      { s = Sflush (parse_postfix st); spos = l }
  | T.KW_SYNCH ->
      advance st;
      { s = Ssynch (parse_postfix st); spos = l }
  | T.KW_RESTART ->
      advance st;
      { s = Srestart (parse_postfix st); spos = l }
  | T.KW_COENTER ->
      advance st;
      let rec arms acc =
        if peek st = T.KW_ACTION then begin
          advance st;
          let body = parse_stmts st in
          arms (body :: acc)
        end
        else begin
          expect st T.KW_END;
          List.rev acc
        end
      in
      { s = Scoenter (arms []); spos = l }
  | T.KW_BEGIN ->
      advance st;
      let body = parse_stmts st in
      expect st T.KW_END;
      { s = Sbegin body; spos = l }
  | T.KW_STREAM ->
      (* statement form: stream g.h(args) — promise discarded *)
      { s = Sexpr (parse_unary st); spos = l }
  | _ ->
      (* assignment or expression statement *)
      let e = parse_postfix st in
      if peek st = T.ASSIGN then begin
        advance st;
        let rhs = parse_expr st in
        { s = Sassign (to_lvalue st e, rhs); spos = l }
      end
      else { s = Sexpr e; spos = l }

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_params st =
  expect st T.LPAREN;
  if peek st = T.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let name = expect_ident st in
      expect st T.COLON;
      let t = parse_ty st in
      if peek st = T.COMMA then begin
        advance st;
        loop ((name, t) :: acc)
      end
      else List.rev ((name, t) :: acc)
    in
    let params = loop [] in
    expect st T.RPAREN;
    params
  end

let parse_returns_opt st =
  if peek st = T.KW_RETURNS then begin
    advance st;
    expect st T.LPAREN;
    let t = parse_ty st in
    expect st T.RPAREN;
    Some t
  end
  else None

let parse_handler st =
  let l = line st in
  expect st T.KW_HANDLER;
  let name = expect_ident st in
  let params = parse_params st in
  let ret = parse_returns_opt st in
  let sigs = parse_signals_opt st in
  let body = parse_stmts st in
  expect st T.KW_END;
  { hd_name = name; hd_params = params; hd_ret = ret; hd_sigs = sigs; hd_body = body; hd_pos = l }

let parse_group st =
  expect st T.KW_GROUP;
  let name = expect_ident st in
  let rec handlers acc =
    if peek st = T.KW_HANDLER then handlers (parse_handler st :: acc)
    else begin
      expect st T.KW_END;
      List.rev acc
    end
  in
  { grp_name = name; grp_handlers = handlers [] }

let parse_guardian st =
  let l = line st in
  expect st T.KW_GUARDIAN;
  let name = expect_ident st in
  let rec items vars groups =
    match peek st with
    | T.KW_VAR ->
        advance st;
        let vname = expect_ident st in
        let ty =
          if peek st = T.COLON then begin
            advance st;
            Some (parse_ty st)
          end
          else None
        in
        expect st T.ASSIGN;
        let init = parse_expr st in
        items ((vname, ty, init) :: vars) groups
    | T.KW_GROUP -> items vars (parse_group st :: groups)
    | T.KW_END ->
        advance st;
        (List.rev vars, List.rev groups)
    | t -> fail st (Printf.sprintf "expected var/group/end in guardian, found %s" (T.to_string t))
  in
  let vars, groups = items [] [] in
  { gd_name = name; gd_vars = vars; gd_groups = groups; gd_pos = l }

let parse_proc st =
  let l = line st in
  expect st T.KW_PROC;
  let name = expect_ident st in
  let params = parse_params st in
  let ret = parse_returns_opt st in
  let sigs = parse_signals_opt st in
  let body = parse_stmts st in
  expect st T.KW_END;
  { pd_name = name; pd_params = params; pd_ret = ret; pd_sigs = sigs; pd_body = body; pd_pos = l }

let parse_process st =
  let l = line st in
  expect st T.KW_PROCESS;
  let name = expect_ident st in
  let body = parse_stmts st in
  expect st T.KW_END;
  { prc_name = name; prc_body = body; prc_pos = l }

let parse_item st =
  match peek st with
  | T.KW_TYPE ->
      advance st;
      let name = expect_ident st in
      expect st T.EQ;
      let t = parse_ty st in
      Itype (name, t)
  | T.KW_GUARDIAN -> Iguardian (parse_guardian st)
  | T.KW_PROC -> Iproc (parse_proc st)
  | T.KW_PROCESS -> Iprocess (parse_process st)
  | t -> fail st (Printf.sprintf "expected type/guardian/proc/process, found %s" (T.to_string t))

let state_of_string src =
  let toks = Array.of_list (Lexer.tokens_of_string src) in
  { toks; pos = 0 }

let parse_program src =
  let st = state_of_string src in
  let rec loop acc = if peek st = T.EOF then List.rev acc else loop (parse_item st :: acc) in
  loop []

let parse_expr_string src =
  let st = state_of_string src in
  let e = parse_expr st in
  expect st T.EOF;
  e
