(* Checked types of Mini-Argus.

   The promise type carries both the result type and the declared
   signal set — the paper's central typing idea: "the type of the
   promise object reflects the possible results of the call, i.e., the
   type of the result in the normal case, and the names and types of
   the possible exceptions" (§3). The universal exceptions
   [unavailable] and [failure] are not part of the set; every remote
   interaction can raise them. *)

type ty =
  | Tint
  | Treal
  | Tbool
  | Tstr
  | Tunit
  | Tarr of ty
  | Tqueue of ty
  | Trec of (string * ty) list  (* fields sorted by name *)
  | Tpromise of ty * signal list  (* signals sorted by name *)
  | Tportv of ty list * ty * signal list
      (* a transmissible handler reference: params, result, signals *)

and signal = { sg_name : string; sg_payload : ty list }

let sort_fields fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields

let sort_signals sigs = List.sort (fun a b -> String.compare a.sg_name b.sg_name) sigs

let rec equal a b =
  match (a, b) with
  | Tint, Tint | Treal, Treal | Tbool, Tbool | Tstr, Tstr | Tunit, Tunit -> true
  | Tarr x, Tarr y | Tqueue x, Tqueue y -> equal x y
  | Trec xs, Trec ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (f, t) (g, u) -> f = g && equal t u) xs ys
  | Tpromise (x, sx), Tpromise (y, sy) -> equal x y && equal_signals sx sy
  | Tportv (px, rx, sx), Tportv (py, ry, sy) ->
      List.length px = List.length py
      && List.for_all2 equal px py
      && equal rx ry && equal_signals sx sy
  | ( Tint | Treal | Tbool | Tstr | Tunit | Tarr _ | Tqueue _ | Trec _ | Tpromise _
    | Tportv _ ), _ ->
      false

and equal_signals xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun a b -> a.sg_name = b.sg_name && List.length a.sg_payload = List.length b.sg_payload
                   && List.for_all2 equal a.sg_payload b.sg_payload)
       xs ys

let rec pp ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Treal -> Format.pp_print_string ppf "real"
  | Tbool -> Format.pp_print_string ppf "bool"
  | Tstr -> Format.pp_print_string ppf "string"
  | Tunit -> Format.pp_print_string ppf "null"
  | Tarr t -> Format.fprintf ppf "array[%a]" pp t
  | Tqueue t -> Format.fprintf ppf "queue[%a]" pp t
  | Trec fields ->
      let pp_field ppf (f, t) = Format.fprintf ppf "%s: %a" f pp t in
      Format.fprintf ppf "record[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_field)
        fields
  | Tpromise (t, sigs) ->
      Format.fprintf ppf "promise";
      (match t with Tunit -> () | t -> Format.fprintf ppf " returns (%a)" pp t);
      if sigs <> [] then Format.fprintf ppf " signals (%a)" pp_signals sigs
  | Tportv (params, ret, sigs) ->
      Format.fprintf ppf "port (%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        params;
      (match ret with Tunit -> () | t -> Format.fprintf ppf " returns (%a)" pp t);
      if sigs <> [] then Format.fprintf ppf " signals (%a)" pp_signals sigs

and pp_signals ppf sigs =
  let pp_sig ppf s =
    Format.pp_print_string ppf s.sg_name;
    if s.sg_payload <> [] then
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        s.sg_payload
  in
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_sig ppf sigs

let to_string t = Format.asprintf "%a" pp t

(* Values that may cross the wire: "promises are not legal as arguments
   or results" (§3); queues are local synchronisation objects. *)
let rec transmissible = function
  | Tint | Treal | Tbool | Tstr | Tunit -> true
  | Tarr t -> transmissible t
  | Trec fields -> List.for_all (fun (_, t) -> transmissible t) fields
  | Tportv _ -> true (* "ports may be sent as arguments and results" (§2) *)
  | Tqueue _ | Tpromise _ -> false

(* The two universal exceptions, always allowed to escape. *)
let unavailable = { sg_name = "unavailable"; sg_payload = [ Tstr ] }

let failure = { sg_name = "failure"; sg_payload = [ Tstr ] }

let exception_reply = { sg_name = "exception_reply"; sg_payload = [] }

let universal name = name = "unavailable" || name = "failure"

(* Signal-set operations used by the effect analysis. *)
module Sigset = struct
  type t = signal list (* sorted, unique by name *)

  let empty : t = []

  let add s set = if List.exists (fun x -> x.sg_name = s.sg_name) set then set else
      sort_signals (s :: set)

  let union a b = List.fold_left (fun acc s -> add s acc) a b

  let remove_name name set = List.filter (fun s -> s.sg_name <> name) set

  let mem_name name set = List.exists (fun s -> s.sg_name = name) set

  let find_name name set = List.find_opt (fun s -> s.sg_name = name) set

  let of_list l = List.fold_left (fun acc s -> add s acc) empty l

  let names set = List.map (fun s -> s.sg_name) set
end
