(** Experiments E1, E2, E9: the call-stream performance claims of §2
    (see DESIGN.md §4 and EXPERIMENTS.md). *)

type mode = Rpc | Stream of int | Send_mode of int  (** batch size *)

val mode_name : mode -> string

val run_calls :
  latency:float -> mode:mode -> n:int -> service:float -> float * int * int
(** One measurement: [n] calls in the given mode over a network with
    the given wire latency; returns (completion time, messages sent,
    bytes sent). *)

val e1 : ?n:int -> ?service:float -> unit -> Table.t
(** Throughput of N calls: RPC vs stream calls across batch sizes and
    latencies. *)

val e2 : ?n:int -> unit -> Table.t
(** Messages and bytes on the wire per mechanism. *)

val e9 : unit -> Table.t
(** Reply latency: passive buffering vs flush vs synch. *)
