(* Experiment E5: local forks for parallel construction and search of a
   promise-node binary tree (§3.2).

   Each tree node costs some CPU time to construct. A sequential build
   pays N * cost on one core; the forked build runs node constructions
   in parallel, bounded by the number of cores. Searches over the
   promise tree can start while the tree is still being built — they
   park on unclaimable nodes ("if a search reaches a node that cannot
   be claimed yet, it waits until the promise is ready"). *)

module S = Sched.Scheduler
module P = Core.Promise

type ptree = Node of ((int * ptree * ptree) option, Core.Sigs.nothing) P.t

let rec build_forked sched cpu ~node_cost lo hi =
  if lo > hi then Node (P.resolved sched (P.Normal None))
  else
    Node
      (Core.Fork.fork sched (fun () ->
           Cpu.consume cpu node_cost;
           let mid = (lo + hi) / 2 in
           Ok (Some (mid, build_forked sched cpu ~node_cost lo (mid - 1),
                     build_forked sched cpu ~node_cost (mid + 1) hi))))

let rec build_sequential sched cpu ~node_cost lo hi =
  if lo > hi then Node (P.resolved sched (P.Normal None))
  else begin
    Cpu.consume cpu node_cost;
    let mid = (lo + hi) / 2 in
    let l = build_sequential sched cpu ~node_cost lo (mid - 1) in
    let r = build_sequential sched cpu ~node_cost (mid + 1) hi in
    Node (P.resolved sched (P.Normal (Some (mid, l, r))))
  end

let rec search (Node p) key =
  match P.claim p with
  | P.Normal None -> false
  | P.Normal (Some (k, l, r)) ->
      if key = k then true else if key < k then search l key else search r key
  | P.Signal _ | P.Unavailable _ | P.Failure _ -> false

let run_variant ~variant ~cores ~n ~node_cost ~searches =
  let sched = S.create () in
  let cpu = Cpu.create sched ~cores in
  let build_done = ref nan and all_done = ref nan in
  let hits = ref 0 in
  let time_total =
    Fixtures.timed_run sched (fun () ->
        let tree =
          match variant with
          | `Forked -> build_forked sched cpu ~node_cost 0 (n - 1)
          | `Sequential -> build_sequential sched cpu ~node_cost 0 (n - 1)
        in
        (* Searches start immediately — against a forked tree they
           overlap construction. *)
        let rng = Sim.Rng.create ~seed:7 in
        let keys = List.init searches (fun _ -> Sim.Rng.int rng (2 * n)) in
        Core.Coenter.coenter_foreach sched keys (fun key ->
            if search tree key then incr hits);
        all_done := S.now sched;
        (* Wait for construction too (forks may outlive the searches). *)
        let rec wait_tree (Node p) =
          match P.claim p with
          | P.Normal None -> ()
          | P.Normal (Some (_, l, r)) ->
              wait_tree l;
              wait_tree r
          | P.Signal _ | P.Unavailable _ | P.Failure _ -> failwith "build failed"
        in
        wait_tree tree;
        build_done := S.now sched)
  in
  ignore time_total;
  (Float.max !build_done !all_done, !hits)

let e5 ?(n = 255) ?(node_cost = 0.1e-3) ?(searches = 50) () =
  let rows = ref [] in
  let expected_hits = ref (-1) in
  List.iter
    (fun cores ->
      List.iter
        (fun variant ->
          let time, hits = run_variant ~variant ~cores ~n ~node_cost ~searches in
          (match !expected_hits with
          | -1 -> expected_hits := hits
          | e -> assert (hits = e));
          rows :=
            [
              Table.cell_i cores;
              (match variant with `Sequential -> "sequential" | `Forked -> "forked promises");
              Table.cell_ms time;
            ]
            :: !rows)
        [ `Sequential; `Forked ])
    [ 1; 4; 16 ];
  Table.make ~id:"E5"
    ~title:
      (Printf.sprintf "promise-node binary tree: build %d nodes (%.1f ms each) + %d searches" n
         (node_cost *. 1e3) searches)
    ~header:[ "CPUs"; "build"; "completion" ]
    ~notes:
      [
        "paper claim (§3.2): forked promises allow parallel insertion and searching; \
         searches block on nodes that cannot be claimed yet";
      ]
    (List.rev !rows)
