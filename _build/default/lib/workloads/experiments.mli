(** Registry of the reproduction experiments (see DESIGN.md §4).

    Each experiment is deterministic: it builds a fresh simulated
    world, runs the workload and returns a {!Table.t}. E7 (wall-clock
    microbenchmarks of promises vs dynamically checked futures) lives
    in the bench executable because it needs real time. *)

val all_ids : string list
(** The simulated experiments, in order: E1–E6, E8, E9, plus the
    ablations A1 (receiver execution discipline) and A2 (buffering
    policy). *)

val run : string -> Table.t
(** [run "E3"] executes that experiment. Raises [Not_found] for an
    unknown id. *)

val run_all : unit -> Table.t list
(** Every simulated experiment, in id order. *)
