type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let cell_f x =
  if Float.is_nan x then "-"
  else if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let cell_ms seconds = Printf.sprintf "%.3f ms" (seconds *. 1e3)

let cell_i = string_of_int

let render ppf t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width col =
    List.fold_left
      (fun acc row -> match List.nth_opt row col with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    let cells = List.mapi (fun i w -> pad (Option.value ~default:"" (List.nth_opt row i)) w) widths in
    String.concat "  " cells
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%s@." (render_row t.header);
  let total = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Format.fprintf ppf "%s@." (String.make total '-');
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) t.rows;
  List.iter (fun note -> Format.fprintf ppf "  note: %s@." note) t.notes;
  Format.fprintf ppf "@."

let print t =
  render Format.std_formatter t;
  Format.pp_print_flush Format.std_formatter ()
