lib/workloads/exp_sendrecv.mli: Table
