lib/workloads/cpu.mli: Sched
