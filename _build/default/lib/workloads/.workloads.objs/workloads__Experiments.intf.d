lib/workloads/experiments.mli: Table
