lib/workloads/cpu.ml: Sched
