lib/workloads/experiments.ml: Exp_ablation Exp_compose Exp_failure Exp_fork Exp_sendrecv Exp_streams List String Table
