lib/workloads/exp_ablation.mli: Table
