lib/workloads/exp_compose.mli: Core Cpu Sched Table
