lib/workloads/fixtures.ml: Argus Core Cstream Float Hashtbl List Net Option Printf Sched Xdr
