lib/workloads/fixtures.mli: Argus Core Cstream Net Sched
