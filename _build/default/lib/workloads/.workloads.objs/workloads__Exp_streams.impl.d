lib/workloads/exp_streams.ml: Core Cstream Fixtures List Net Printf Sched Sim Table
