lib/workloads/exp_ablation.ml: Argus Core Cstream Fixtures List Net Printf Sched Sim Table
