lib/workloads/exp_fork.ml: Core Cpu Fixtures Float List Printf Sched Sim Table
