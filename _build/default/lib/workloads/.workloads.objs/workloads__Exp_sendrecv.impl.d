lib/workloads/exp_sendrecv.ml: Core Cstream Fixtures Hashtbl List Net Printf Sched Table Xdr
