lib/workloads/timeline.mli:
