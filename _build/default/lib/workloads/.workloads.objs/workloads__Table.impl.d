lib/workloads/table.ml: Float Format List Option Printf String
