lib/workloads/exp_compose.ml: Argus Array Core Cpu Cstream Fixtures Fun List Net Printf Sched Table Xdr
