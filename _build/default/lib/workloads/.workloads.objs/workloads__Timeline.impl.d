lib/workloads/timeline.ml: Bytes Float List Printf String
