lib/workloads/exp_failure.mli: Table
