lib/workloads/table.mli: Format
