lib/workloads/exp_streams.mli: Table
