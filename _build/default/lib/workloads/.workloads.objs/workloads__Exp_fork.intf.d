lib/workloads/exp_fork.mli: Table
