lib/workloads/exp_failure.ml: Core Cstream Fixtures Float List Net Printf Sched String Table
