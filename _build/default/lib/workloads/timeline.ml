let render ?(width = 60) ~t_end rows =
  if t_end <= 0.0 then invalid_arg "Timeline.render: t_end must be positive";
  let bucket_of time = int_of_float (float_of_int width *. time /. t_end) in
  let line (label, intervals) =
    let cells = Bytes.make width '.' in
    List.iter
      (fun (start, stop) ->
        let first = max 0 (bucket_of start) in
        let last = min (width - 1) (bucket_of stop) in
        for b = first to last do
          Bytes.set cells b '#'
        done)
      intervals;
    Printf.sprintf "%-10s |%s|" label (Bytes.to_string cells)
  in
  let axis =
    Printf.sprintf "%-10s 0%s%.1f ms" "" (String.make (width - 6) ' ') (t_end *. 1e3)
  in
  List.map line rows @ [ axis ]

let utilisation ~t_end intervals =
  if t_end <= 0.0 then 0.0
  else begin
    let sorted = List.sort compare intervals in
    let rec merge acc = function
      | [] -> List.rev acc
      | (s, e) :: rest -> (
          match acc with
          | (ps, pe) :: tail when s <= pe -> merge ((ps, Float.max pe e) :: tail) rest
          | _ -> merge ((s, e) :: acc) rest)
    in
    let merged = merge [] sorted in
    let covered =
      List.fold_left
        (fun acc (s, e) ->
          let s = Float.max 0.0 s and e = Float.min t_end e in
          acc +. Float.max 0.0 (e -. s))
        0.0 merged
    in
    covered /. t_end
  end
