(** A machine with [k] processors, for experiments that distinguish
    sequential machines from multiprocessors (§4.3, §3.2).

    Fibers "compute" by holding one of [k] permits for a stretch of
    virtual time; with one permit the machine serialises all
    computation, with many it runs them in parallel. Communication
    costs are charged elsewhere (the network model); this is only for
    local computation such as the filters of a cascade. *)

type t

val create : Sched.Scheduler.t -> cores:int -> t

val consume : t -> float -> unit
(** [consume cpu dt] occupies one core for [dt] seconds of virtual
    time (parks while all cores are busy). Zero or negative [dt] is a
    no-op. *)

val cores : t -> int
