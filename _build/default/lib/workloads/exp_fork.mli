(** Experiment E5: parallel construction and search of a promise-node
    binary tree with local forks (§3.2). *)

val e5 : ?n:int -> ?node_cost:float -> ?searches:int -> unit -> Table.t
