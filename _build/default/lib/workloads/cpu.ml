type t = { sched : Sched.Scheduler.t; sem : Sched.Semaphore.t; n : int }

let create sched ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  { sched; sem = Sched.Semaphore.create sched cores; n = cores }

let consume t dt =
  if dt > 0.0 then
    Sched.Semaphore.with_permit t.sem (fun () -> Sched.Scheduler.sleep t.sched dt)

let cores t = t.n
