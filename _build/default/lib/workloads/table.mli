(** Plain-text result tables for the experiment harness.

    Every experiment produces one table shaped like the series the
    paper's claims describe; the bench executable prints them and
    EXPERIMENTS.md records them. *)

type t = {
  id : string;  (** experiment id, e.g. "E1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** conclusions / paper-claim comparison *)
}

val make : id:string -> title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val render : Format.formatter -> t -> unit
(** Aligned columns, a rule under the header, notes at the end. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : float -> string
(** Format a float compactly (4 significant digits). *)

val cell_ms : float -> string
(** Seconds rendered as milliseconds with unit. *)

val cell_i : int -> string
