(** Experiment E8: explicit send/receive vs streams with promises (§5):
    comparable throughput, but the send/receive client must correlate
    every reply with its call by hand. *)

val e8 : ?n:int -> unit -> Table.t
