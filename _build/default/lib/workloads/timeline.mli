(** ASCII utilisation timelines.

    Renders busy intervals of several resources against a common time
    axis — the visual form of the overlap arguments in §4 of the
    paper: in the Figure 3-1 program the database and the printer are
    busy one after the other; under the Figure 4-2 coenter their busy
    periods overlap. *)

val render :
  ?width:int ->
  t_end:float ->
  (string * (float * float) list) list ->
  string list
(** [render ~t_end rows] draws one line per row: the label, then
    [width] buckets (default 60) covering [\[0, t_end\]]; a bucket is
    ['#'] if the resource was busy at any point inside it, ['.']
    otherwise. A final axis line gives the scale. *)

val utilisation : t_end:float -> (float * float) list -> float
(** Fraction of [\[0, t_end\]] covered by the intervals (they may
    overlap; overlaps are not double-counted). *)
