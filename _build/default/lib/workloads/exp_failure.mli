(** Experiment E6: a stream breaks mid-composition — the fork version
    (Figure 4-1) hangs; the coenter version (Figure 4-2) terminates the
    group and propagates the exception (§2, §4.1, §4.2). *)

val e6 : ?n:int -> ?crash_at:float -> unit -> Table.t
