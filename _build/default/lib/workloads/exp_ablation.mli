(** Ablations of design choices called out in DESIGN.md §5.

    A1 — in-order execution at the receiver (the paper's default, §2.1)
    vs the "explicit override" that lets calls on one stream run
    concurrently. The override buys completion time on uneven service
    times but gives up the sequential-execution semantics; the stream's
    reply order (and hence promise-readiness order) is preserved either
    way.

    A2 — sender-side buffering policy: flush on batch size, on a
    timer, or both (the default). *)

val a1 : ?n:int -> unit -> Table.t

val a2 : ?n:int -> unit -> Table.t
