(** Lightweight actions: all-or-nothing local computations.

    Argus runs computations as atomic transactions so that, e.g.,
    "running the recording process as an atomic transaction can ensure
    that if it is not possible to record all grades, none will be
    recorded" (§4.2). Full Argus transactions (two-phase commit, stable
    storage, distributed abort) are beyond this paper's scope; what the
    paper's examples rely on is the local all-or-nothing effect, which
    this module provides with an undo log.

    Inside [run], code registers compensations with {!on_abort} as it
    makes changes. If the body returns, the action commits and the
    compensations are dropped. If it raises — including
    {!Sched.Scheduler.Terminated} when a coenter terminates the arm —
    the compensations run in reverse order (inside a critical section,
    so wounding cannot interrupt the undo) and the exception is
    re-raised. *)

type t

val run : Sched.Scheduler.t -> (t -> 'r) -> 'r
(** Execute the body as an action. Nested actions are independent:
    an inner abort does not abort the outer action. *)

val on_abort : t -> (unit -> unit) -> unit
(** Register a compensation to perform if this action aborts. *)

val committed : t -> bool
(** True once the action has committed (useful in tests). *)
