lib/guardian/action.mli: Sched
