lib/guardian/guardian.ml: Core Cstream Hashtbl List Net Printexc Printf Sched Xdr
