lib/guardian/action.ml: List Sched
