lib/guardian/guardian.mli: Core Cstream Net Sched
