module S = Sched.Scheduler

type state = Running | Committed | Aborted

type t = { sched : S.t; mutable undo : (unit -> unit) list; mutable state : state }

let on_abort t f =
  match t.state with
  | Running -> t.undo <- f :: t.undo
  | Committed | Aborted -> invalid_arg "Action.on_abort: action already finished"

let committed t = t.state = Committed

let abort t =
  t.state <- Aborted;
  let undo = t.undo in
  t.undo <- [];
  (* Undo must not be interrupted by wounding: run it critically. The
     compensations themselves must not block. *)
  match S.current t.sched with
  | Some _ -> S.critical t.sched (fun () -> List.iter (fun f -> f ()) undo)
  | None -> List.iter (fun f -> f ()) undo

let run sched body =
  let t = { sched; undo = []; state = Running } in
  match body t with
  | r ->
      t.state <- Committed;
      t.undo <- [];
      r
  | exception e ->
      abort t;
      raise e
