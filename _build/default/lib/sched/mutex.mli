(** Mutual exclusion between fibers.

    Holding a mutex puts the fiber in a critical section, so a wounded
    fiber is not terminated until it releases the lock — exactly the
    damage-avoidance rule of §4.2 of the paper. Fibers *waiting* for a
    mutex are not in a critical section and can be terminated. *)

type t

val create : Scheduler.t -> t

val lock : t -> unit
(** Acquire, parking the fiber if the mutex is held. FIFO fairness. *)

val unlock : t -> unit
(** Release. Raises [Invalid_argument] if the mutex is not locked.
    If the releasing fiber was wounded while holding the lock, exiting
    the critical section raises {!Scheduler.Terminated} after the lock
    has been handed over. *)

val try_lock : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f] under the lock, releasing on any exit. *)

val locked : t -> bool
