(** Counting semaphore between fibers.

    Used by the workload layer to model a machine with [k] processors:
    a fiber "computes for [dt] seconds" by holding one of [k] permits
    while sleeping [dt] of virtual time. *)

type t

val create : Scheduler.t -> int -> t
(** [create sched permits] with [permits >= 0]. *)

val acquire : t -> unit
(** Take one permit, parking while none are available. FIFO. *)

val release : t -> unit
(** Return one permit. *)

val with_permit : t -> (unit -> 'a) -> 'a
(** Hold a permit for the duration of the call. *)

val available : t -> int
