(** Condition variables with Mesa semantics.

    A woken fiber re-acquires the mutex and must re-check its predicate
    in a loop, because other fibers may run between the signal and the
    resumption. *)

type t

val create : Scheduler.t -> t

val wait : t -> Mutex.t -> unit
(** Atomically release the mutex and park; on wake, re-acquire the
    mutex before returning. The caller must hold the mutex. *)

val signal : t -> unit
(** Wake one waiting fiber (if any). *)

val broadcast : t -> unit
(** Wake every waiting fiber. *)
