type t = { sched : Scheduler.t; waiters : unit Scheduler.waker Queue.t }

let create sched = { sched; waiters = Queue.create () }

let wait c m =
  if not (Mutex.locked m) then invalid_arg "Condition.wait: mutex not held";
  (* Park first, then release: registration happens inside [suspend]
     before any other fiber runs, so no wakeup can be lost. *)
  let reacquire () = Mutex.lock m in
  Mutex.unlock m;
  Scheduler.suspend c.sched (fun w -> Queue.push w c.waiters);
  reacquire ()

let rec signal c =
  match Queue.take_opt c.waiters with
  | None -> ()
  | Some w -> if not (Scheduler.wake w ()) then signal c

let broadcast c =
  let rec drain () =
    match Queue.take_opt c.waiters with
    | None -> ()
    | Some w ->
        ignore (Scheduler.wake w () : bool);
        drain ()
  in
  drain ()
