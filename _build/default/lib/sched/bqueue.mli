(** Blocking FIFO queue between fibers.

    This is the [queue\[pt\]] of the paper's Figures 4-1 and 4-2: the
    producer enqueues promises, the consumer's [deq] parks when the
    queue is empty. An optional capacity bound makes [enq] park when
    full (back-pressure for pipelines). A queue can also be [close]d,
    after which [deq] on an empty queue raises {!Closed} instead of
    parking — a convenience the paper's fork-composition lacks, which
    is exactly why its Figure 4-1 can hang (experiment E6 shows both
    behaviours). *)

type 'a t

exception Closed

val create : ?capacity:int -> Scheduler.t -> 'a t
(** Unbounded unless [capacity] is given (must be positive). *)

val enq : 'a t -> 'a -> unit
(** Append; parks while the queue is at capacity. Raises {!Closed} if
    the queue was closed. *)

val deq : 'a t -> 'a
(** Remove the oldest element; parks while the queue is empty. Raises
    {!Closed} when the queue is empty and closed. *)

val try_deq : 'a t -> 'a option
(** Non-blocking variant; [None] when empty. *)

val close : 'a t -> unit
(** No further [enq]; parked consumers beyond the remaining elements
    observe {!Closed}. Idempotent. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
