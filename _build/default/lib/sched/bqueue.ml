type 'a t = {
  sched : Scheduler.t;
  items : 'a Queue.t;
  capacity : int option;
  takers : unit Scheduler.waker Queue.t;
  putters : unit Scheduler.waker Queue.t;
  mutable closed : bool;
}

exception Closed

let create ?capacity sched =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Bqueue.create: capacity must be positive"
  | Some _ | None -> ());
  {
    sched;
    items = Queue.create ();
    capacity;
    takers = Queue.create ();
    putters = Queue.create ();
    closed = false;
  }

let rec wake_next q =
  match Queue.take_opt q with
  | None -> ()
  | Some w -> if not (Scheduler.wake w ()) then wake_next q

let full q =
  match q.capacity with None -> false | Some c -> Queue.length q.items >= c

let rec enq q v =
  if q.closed then raise Closed;
  if full q then begin
    Scheduler.suspend q.sched (fun w -> Queue.push w q.putters);
    enq q v
  end
  else begin
    Queue.push v q.items;
    wake_next q.takers
  end

let rec deq q =
  match Queue.take_opt q.items with
  | Some v ->
      wake_next q.putters;
      v
  | None ->
      if q.closed then raise Closed;
      Scheduler.suspend q.sched (fun w -> Queue.push w q.takers);
      deq q

let try_deq q =
  match Queue.take_opt q.items with
  | Some v ->
      wake_next q.putters;
      Some v
  | None -> None

let close q =
  if not q.closed then begin
    q.closed <- true;
    (* Parked consumers must observe Closed; parked producers too. *)
    let rec drain waiters =
      match Queue.take_opt waiters with
      | None -> ()
      | Some w ->
          ignore (Scheduler.wake w () : bool);
          drain waiters
    in
    drain q.takers;
    drain q.putters
  end

let is_closed q = q.closed

let length q = Queue.length q.items
