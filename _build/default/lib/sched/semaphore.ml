type t = {
  sched : Scheduler.t;
  mutable permits : int;
  waiters : unit Scheduler.waker Queue.t;
}

let create sched permits =
  if permits < 0 then invalid_arg "Semaphore.create: negative permits";
  { sched; permits; waiters = Queue.create () }

let rec acquire s =
  if s.permits > 0 then s.permits <- s.permits - 1
  else begin
    Scheduler.suspend s.sched (fun w -> Queue.push w s.waiters);
    acquire s
  end

let rec wake_next q =
  match Queue.take_opt q with
  | None -> ()
  | Some w -> if not (Scheduler.wake w ()) then wake_next q

let release s =
  s.permits <- s.permits + 1;
  wake_next s.waiters

let with_permit s f =
  acquire s;
  match f () with
  | v ->
      release s;
      v
  | exception e ->
      release s;
      raise e

let available s = s.permits
