type t = {
  sched : Scheduler.t;
  mutable held : bool;
  waiters : unit Scheduler.waker Queue.t;
}

let create sched = { sched; held = false; waiters = Queue.create () }

let rec lock m =
  if not m.held then begin
    m.held <- true;
    Scheduler.enter_critical m.sched
  end
  else begin
    Scheduler.suspend m.sched (fun w -> Queue.push w m.waiters);
    lock m
  end

let try_lock m =
  if m.held then false
  else begin
    m.held <- true;
    Scheduler.enter_critical m.sched;
    true
  end

(* Wake parked fibers until one accepts delivery; each retries [lock]. *)
let rec wake_next waiters =
  match Queue.take_opt waiters with
  | None -> ()
  | Some w -> if not (Scheduler.wake w ()) then wake_next waiters

let unlock m =
  if not m.held then invalid_arg "Mutex.unlock: not locked";
  m.held <- false;
  wake_next m.waiters;
  Scheduler.exit_critical m.sched

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

let locked m = m.held
