lib/sched/bqueue.ml: Queue Scheduler
