lib/sched/condition.mli: Mutex Scheduler
