lib/sched/semaphore.mli: Scheduler
