lib/sched/mutex.mli: Scheduler
