lib/sched/scheduler.mli: Sim
