lib/sched/semaphore.ml: Queue Scheduler
