lib/sched/scheduler.ml: Effect Hashtbl List Queue Sim
