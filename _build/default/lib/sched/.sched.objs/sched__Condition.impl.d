lib/sched/condition.ml: Mutex Queue Scheduler
