lib/sched/mutex.ml: Queue Scheduler
