lib/sched/bqueue.mli: Scheduler
