module S = Sched.Scheduler

type dyn =
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Nil
  | Cons of dyn * dyn
  | Fut of future
  | Err of string

and future = {
  f_sched : S.t;
  mutable f_state : fstate;
}

and fstate = Pending of (dyn -> unit) list | Resolved of dyn

let make_unresolved sched =
  let f = { f_sched = sched; f_state = Pending [] } in
  let resolve v =
    match f.f_state with
    | Resolved _ -> invalid_arg "Futures_baseline: future already resolved"
    | Pending hooks ->
        f.f_state <- Resolved v;
        List.iter (fun hook -> hook v) (List.rev hooks)
  in
  (Fut f, resolve)

let future sched body =
  let fut, resolve = make_unresolved sched in
  ignore
    (S.spawn sched ~name:"future" (fun () ->
         match body () with
         | v -> resolve v
         | exception S.Terminated -> raise S.Terminated
         | exception e ->
             (* "exceptions are turned into error values automatically" *)
             resolve (Err (Printexc.to_string e))))
    ;
  fut

(* The per-access dynamic check: every strict use of a value must test
   for the future tag (and possibly park) before computing. *)
let rec touch v =
  match v with
  | Fut f -> (
      match f.f_state with
      | Resolved inner -> touch inner
      | Pending _ ->
          let inner =
            S.suspend f.f_sched (fun w ->
                match f.f_state with
                | Resolved inner -> ignore (S.wake w inner : bool)
                | Pending hooks ->
                    f.f_state <- Pending ((fun res -> ignore (S.wake w res : bool)) :: hooks))
          in
          touch inner)
  | Int _ | Real _ | Str _ | Bool _ | Nil | Cons _ | Err _ -> v

let is_future = function Fut _ -> true | _ -> false

(* Error values propagate through strict operations, discarding any
   information about which operand failed — the §3.3 criticism. *)
let strict2 name f a b =
  match touch a with
  | Err _ as e -> e
  | a' -> (
      match touch b with
      | Err _ as e -> e
      | b' -> (
          match f a' b' with
          | Some v -> v
          | None -> Err (Printf.sprintf "wrong type of argument to %s" name)))

let num_op name int_op real_op =
  strict2 name (fun a b ->
      match (a, b) with
      | Int x, Int y -> Some (Int (int_op x y))
      | Real x, Real y -> Some (Real (real_op x y))
      | Int x, Real y -> Some (Real (real_op (float_of_int x) y))
      | Real x, Int y -> Some (Real (real_op x (float_of_int y)))
      | _ -> None)

let add a b = num_op "+" ( + ) ( +. ) a b

let sub a b = num_op "-" ( - ) ( -. ) a b

let mul a b = num_op "*" ( * ) ( *. ) a b

let lt a b =
  strict2 "<"
    (fun a b ->
      match (a, b) with
      | Int x, Int y -> Some (Bool (x < y))
      | Real x, Real y -> Some (Bool (x < y))
      | Int x, Real y -> Some (Bool (float_of_int x < y))
      | Real x, Int y -> Some (Bool (x < float_of_int y))
      | _ -> None)
    a b

let eq a b = strict2 "=" (fun a b -> Some (Bool (a = b))) a b

let car v =
  match touch v with
  | Err _ as e -> e
  | Cons (h, _) -> h
  | _ -> Err "wrong type of argument to car"

let cdr v =
  match touch v with
  | Err _ as e -> e
  | Cons (_, t) -> t
  | _ -> Err "wrong type of argument to cdr"

let cons a b = Cons (a, b)

let rec pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Nil -> Format.pp_print_string ppf "()"
  | Cons (h, t) -> Format.fprintf ppf "(%a . %a)" pp h pp t
  | Fut { f_state = Resolved v; _ } -> Format.fprintf ppf "#<future %a>" pp v
  | Fut { f_state = Pending _; _ } -> Format.pp_print_string ppf "#<future pending>"
  | Err m -> Format.fprintf ppf "#<error %s>" m

let dyn_of_int_list xs = List.fold_right (fun x acc -> Cons (Int x, acc)) xs Nil

let rec sum_list v =
  match touch v with
  | Nil -> Int 0
  | Err _ as e -> e
  | Cons (h, t) -> add h (sum_list t)
  | _ -> Err "wrong type of argument to sum_list"
