(** MultiLisp-style futures: the baseline promises are compared against
    in §3.3 of the paper.

    In MultiLisp "an object of any type can be a future for a value
    that will arrive later. When the value is needed in a computation
    (e.g., for an addition), it is claimed automatically". The paper
    identifies two costs, both reproduced here:

    - {e dynamic checking}: every primitive operation must inspect its
      operands' runtime tags to discover whether they are futures
      before it can proceed ({!touch} inside {!add} etc.) — promises
      avoid this entirely because the type system separates promises
      from ordinary values (benchmark E7);
    - {e exceptions become error values}: a failing computation yields
      an {!constructor:Err} value that silently propagates through
      enclosing expressions, so the program that finally observes it
      cannot tell where or why it arose (tested in the suite; compare
      the typed [Signal]/[Failure] outcomes of promises).

    Values are dynamically typed ({!dyn}); futures are just another
    runtime tag. *)

type dyn =
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Nil
  | Cons of dyn * dyn
  | Fut of future
  | Err of string  (** an exception turned into an error value *)

and future

(** {1 Creating futures} *)

val future : Sched.Scheduler.t -> (unit -> dyn) -> dyn
(** [(future e)]: evaluate [e] in a parallel process; the result is
    immediately usable as a value. An exception inside [e] becomes an
    [Err] value. *)

val make_unresolved : Sched.Scheduler.t -> dyn * (dyn -> unit)
(** A future plus its resolver, for plumbing by hand. *)

val touch : dyn -> dyn
(** Force a value: if it is a (chain of) future(s), park until resolved
    and return the underlying non-future value. Every strict primitive
    below touches its operands first — that is the per-access dynamic
    check promises eliminate. *)

val is_future : dyn -> bool

(** {1 Strict primitives (dynamic checks + error-value propagation)} *)

val add : dyn -> dyn -> dyn

val sub : dyn -> dyn -> dyn

val mul : dyn -> dyn -> dyn

val lt : dyn -> dyn -> dyn

val eq : dyn -> dyn -> dyn

val car : dyn -> dyn

val cdr : dyn -> dyn

val cons : dyn -> dyn -> dyn
(** Non-strict, like MultiLisp: does not touch its arguments. *)

val pp : Format.formatter -> dyn -> unit

val dyn_of_int_list : int list -> dyn

val sum_list : dyn -> dyn
(** Fold {!add} over a list value — the E7 workload. *)
