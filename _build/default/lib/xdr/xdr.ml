type value =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Pair of value * value
  | List of value list
  | Record of (string * value) list
  | Tagged of string * value

let rec wire_size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Real _ -> 8
  | Str s -> 4 + String.length s
  | Pair (a, b) -> 1 + wire_size a + wire_size b
  | List vs -> 4 + List.fold_left (fun acc v -> acc + wire_size v) 0 vs
  | Record fields ->
      4 + List.fold_left (fun acc (name, v) -> acc + String.length name + 1 + wire_size v) 0 fields
  | Tagged (tag, v) -> 1 + String.length tag + wire_size v

let rec pp_value ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp_value a pp_value b
  | List vs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_value)
        vs
  | Record fields ->
      let pp_field ppf (name, v) = Format.fprintf ppf "%s = %a" name pp_value v in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_field)
        fields
  | Tagged (tag, v) -> Format.fprintf ppf "%s(%a)" tag pp_value v

let equal_value (a : value) (b : value) = a = b

type 'a codec = {
  type_name : string;
  encode : 'a -> (value, string) result;
  decode : value -> ('a, string) result;
}

let encode c v = c.encode v

let decode c v = c.decode v

let type_error expected got =
  Error (Format.asprintf "expected %s, got %a" expected pp_value got)

let unit =
  {
    type_name = "unit";
    encode = (fun () -> Ok Unit);
    decode = (function Unit -> Ok () | v -> type_error "unit" v);
  }

let bool =
  {
    type_name = "bool";
    encode = (fun b -> Ok (Bool b));
    decode = (function Bool b -> Ok b | v -> type_error "bool" v);
  }

let int =
  {
    type_name = "int";
    encode = (fun i -> Ok (Int i));
    decode = (function Int i -> Ok i | v -> type_error "int" v);
  }

let real =
  {
    type_name = "real";
    encode = (fun r -> Ok (Real r));
    decode = (function Real r -> Ok r | v -> type_error "real" v);
  }

let string =
  {
    type_name = "string";
    encode = (fun s -> Ok (Str s));
    decode = (function Str s -> Ok s | v -> type_error "string" v);
  }

let ( let* ) = Result.bind

let pair ca cb =
  {
    type_name = Printf.sprintf "(%s * %s)" ca.type_name cb.type_name;
    encode =
      (fun (a, b) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        Ok (Pair (va, vb)));
    decode =
      (fun v ->
        match v with
        | Pair (va, vb) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            Ok (a, b)
        | v -> type_error "pair" v);
  }

let triple ca cb cc =
  {
    type_name = Printf.sprintf "(%s * %s * %s)" ca.type_name cb.type_name cc.type_name;
    encode =
      (fun (a, b, c) ->
        let* va = ca.encode a in
        let* vb = cb.encode b in
        let* vc = cc.encode c in
        Ok (Pair (va, Pair (vb, vc))));
    decode =
      (fun v ->
        match v with
        | Pair (va, Pair (vb, vc)) ->
            let* a = ca.decode va in
            let* b = cb.decode vb in
            let* c = cc.decode vc in
            Ok (a, b, c)
        | v -> type_error "triple" v);
  }

let list ca =
  {
    type_name = Printf.sprintf "%s list" ca.type_name;
    encode =
      (fun items ->
        let rec go acc = function
          | [] -> Ok (List (List.rev acc))
          | x :: rest -> (
              match ca.encode x with Ok v -> go (v :: acc) rest | Error e -> Error e)
        in
        go [] items);
    decode =
      (fun v ->
        match v with
        | List vs ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest -> (
                  match ca.decode x with Ok d -> go (d :: acc) rest | Error e -> Error e)
            in
            go [] vs
        | v -> type_error "list" v);
  }

let array ca =
  let cl = list ca in
  {
    type_name = Printf.sprintf "%s array" ca.type_name;
    encode = (fun arr -> cl.encode (Array.to_list arr));
    decode = (fun v -> Result.map Array.of_list (cl.decode v));
  }

let option ca =
  {
    type_name = Printf.sprintf "%s option" ca.type_name;
    encode =
      (function
      | None -> Ok (Tagged ("none", Unit))
      | Some x ->
          let* v = ca.encode x in
          Ok (Tagged ("some", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("none", Unit) -> Ok None
        | Tagged ("some", inner) -> Result.map Option.some (ca.decode inner)
        | v -> type_error "option" v);
  }

let result ca cb =
  {
    type_name = Printf.sprintf "(%s, %s) result" ca.type_name cb.type_name;
    encode =
      (function
      | Ok x ->
          let* v = ca.encode x in
          Ok (Tagged ("ok", v))
      | Error e ->
          let* v = cb.encode e in
          Ok (Tagged ("error", v)));
    decode =
      (fun v ->
        match v with
        | Tagged ("ok", inner) -> Result.map Result.ok (ca.decode inner)
        | Tagged ("error", inner) -> Result.map Result.error (cb.decode inner)
        | v -> type_error "result" v);
  }

let record2 name (f1, c1) (f2, c2) =
  {
    type_name = name;
    encode =
      (fun (a, b) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        Ok (Record [ (f1, va); (f2, vb) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb) ] when g1 = f1 && g2 = f2 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            Ok (a, b)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let record3 name (f1, c1) (f2, c2) (f3, c3) =
  {
    type_name = name;
    encode =
      (fun (a, b, c) ->
        let* va = c1.encode a in
        let* vb = c2.encode b in
        let* vc = c3.encode c in
        Ok (Record [ (f1, va); (f2, vb); (f3, vc) ]));
    decode =
      (fun v ->
        match v with
        | Record [ (g1, va); (g2, vb); (g3, vc) ] when g1 = f1 && g2 = f2 && g3 = f3 ->
            let* a = c1.decode va in
            let* b = c2.decode vb in
            let* c = c3.decode vc in
            Ok (a, b, c)
        | v -> type_error (Printf.sprintf "record %s" name) v);
  }

let tagged name to_tag of_tag =
  {
    type_name = name;
    encode =
      (fun x ->
        let tag, payload = to_tag x in
        Ok (Tagged (tag, payload)));
    decode =
      (fun v ->
        match v with Tagged (tag, payload) -> of_tag (tag, payload) | v -> type_error name v);
  }

let conv name f g c =
  {
    type_name = name;
    encode = (fun x -> c.encode (f x));
    decode = (fun v -> Result.map g (c.decode v));
  }

let conv_partial name f g c =
  {
    type_name = name;
    encode =
      (fun x ->
        let* y = f x in
        c.encode y);
    decode =
      (fun v ->
        let* y = c.decode v in
        g y);
  }

let failing_encode ?(reason = "injected encode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_encode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?enc";
    encode =
      (fun x ->
        incr count;
        if !count mod every = 0 then Error reason else c.encode x);
  }

let failing_decode ?(reason = "injected decode failure") ~every c =
  if every <= 0 then invalid_arg "Xdr.failing_decode: every must be positive";
  let count = ref 0 in
  {
    c with
    type_name = c.type_name ^ "?dec";
    decode =
      (fun v ->
        incr count;
        if !count mod every = 0 then Error reason else c.decode v);
  }

let encoded_size c v = match c.encode v with Ok enc -> wire_size enc | Error _ -> 0
