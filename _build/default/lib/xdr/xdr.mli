(** External data representation for remote calls.

    Arguments and results of handler calls are passed by value (§3 of
    the paper, citing Herlihy & Liskov): the caller {e encodes} each
    argument into an external representation and the receiver {e
    decodes} it, possibly with user-provided code that may fail. This
    module provides the external value model, typed codecs built from
    combinators, a deterministic byte-size model (used by the network
    cost model), and hooks to inject encode/decode failures (the paper
    maps them to the [failure] exception and a receiver-side stream
    break).

    The wire itself is untyped ([value]); static typing is recovered at
    the language boundary by pairing each port with codecs — this is
    precisely the paper's split between the language-independent
    call-stream layer and the strongly typed language veneer. *)

(** The external representation of transmissible values. *)
type value =
  | Unit
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Pair of value * value
  | List of value list
  | Record of (string * value) list
  | Tagged of string * value  (** variant constructor with payload *)

val wire_size : value -> int
(** Deterministic size in bytes of the encoded form. Ints and reals
    cost 8 bytes, bools 1, strings [4 + length], containers add small
    headers. Used to charge transmission costs in the simulator. *)

val pp_value : Format.formatter -> value -> unit

val equal_value : value -> value -> bool

(** A typed codec between ['a] and {!value}. Encoding and decoding can
    fail (user-provided translation code may contain errors); failures
    carry a human-readable reason. *)
type 'a codec = {
  type_name : string;
  encode : 'a -> (value, string) result;
  decode : value -> ('a, string) result;
}

val encode : 'a codec -> 'a -> (value, string) result

val decode : 'a codec -> value -> ('a, string) result

(** {1 Primitive codecs} *)

val unit : unit codec

val bool : bool codec

val int : int codec

val real : float codec

val string : string codec

(** {1 Combinators} *)

val pair : 'a codec -> 'b codec -> ('a * 'b) codec

val triple : 'a codec -> 'b codec -> 'c codec -> ('a * 'b * 'c) codec

val list : 'a codec -> 'a list codec

val array : 'a codec -> 'a array codec

val option : 'a codec -> 'a option codec

val result : 'a codec -> 'b codec -> ('a, 'b) Result.t codec

val record2 : string -> (string * 'a codec) -> (string * 'b codec) -> ('a * 'b) codec
(** [record2 name (f1, c1) (f2, c2)] encodes a two-field record with
    named fields; decoding checks field names. *)

val record3 :
  string -> (string * 'a codec) -> (string * 'b codec) -> (string * 'c codec) ->
  ('a * 'b * 'c) codec

val tagged : string -> ('a -> string * value) -> (string * value -> ('a, string) result) -> 'a codec
(** Build a codec for a variant type from explicit tag functions. *)

val conv : string -> ('a -> 'b) -> ('b -> 'a) -> 'b codec -> 'a codec
(** [conv name f g c] maps a codec through a bijection (total). *)

val conv_partial :
  string -> ('a -> ('b, string) result) -> ('b -> ('a, string) result) -> 'b codec -> 'a codec
(** Like {!conv} but either direction may fail — the model for
    user-provided abstract-type translation code (§3). *)

(** {1 Failure injection}

    Used by tests and experiment E6-style scenarios to model buggy
    user translation code. *)

val failing_encode : ?reason:string -> every:int -> 'a codec -> 'a codec
(** Derived codec whose encode fails on every [every]-th use (1-based
    counting; [every = 1] always fails). *)

val failing_decode : ?reason:string -> every:int -> 'a codec -> 'a codec

(** {1 Sizing} *)

val encoded_size : 'a codec -> 'a -> int
(** [encoded_size c v] is the wire size of [v]'s encoding, or 0 when
    encoding fails. *)
