type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits scaled into [0,1). *)
  let unit = Int64.to_float mantissa /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
