(** Lightweight event trace for debugging simulations.

    A trace is a bounded ring of timestamped strings. Tracing is off by
    default and costs one branch per call when disabled. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] keeps the last [capacity] records (default
    4096). *)

val enable : t -> bool -> unit
(** Turn recording on or off. *)

val enabled : t -> bool

val record : t -> time:float -> string -> unit
(** Append a record when enabled; otherwise do nothing. *)

val recordf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!record}. The format arguments are evaluated
    only when the trace is enabled. *)

val to_list : t -> (float * string) list
(** Records in chronological order (oldest first). *)

val clear : t -> unit

val dump : Format.formatter -> t -> unit
