(** Binary min-heap keyed by [(priority, sequence)].

    The heap is the spine of the discrete-event simulator: events are
    ordered first by virtual time and then by insertion order, so two
    events scheduled for the same instant fire in the order they were
    scheduled. This makes every simulation run deterministic. *)

type 'a t
(** Mutable min-heap holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> prio:float -> 'a -> unit
(** [push h ~prio v] inserts [v] with priority [prio]. Elements with
    equal priority pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum element with its priority,
    or [None] when the heap is empty. *)

val peek : 'a t -> (float * 'a) option
(** [peek h] is like {!pop} but leaves the element in place. *)

val clear : 'a t -> unit
(** Remove every element. *)

val to_list : 'a t -> (float * 'a) list
(** Snapshot of the contents in pop order; the heap is unchanged. Costs
    O(n log n); intended for tests and debugging. *)
