type t = {
  mutable records : (float * string) array;
  capacity : int;
  mutable next : int;
  mutable filled : bool;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  {
    records = Array.make (max 1 capacity) (0.0, "");
    capacity = max 1 capacity;
    next = 0;
    filled = false;
    on = false;
  }

let enable t b = t.on <- b

let enabled t = t.on

let record t ~time msg =
  if t.on then begin
    t.records.(t.next) <- (time, msg);
    t.next <- (t.next + 1) mod t.capacity;
    if t.next = 0 then t.filled <- true
  end

let recordf t ~time fmt =
  if t.on then Format.kasprintf (fun s -> record t ~time s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let to_list t =
  if not t.filled then Array.to_list (Array.sub t.records 0 t.next)
  else
    let older = Array.sub t.records t.next (t.capacity - t.next) in
    let newer = Array.sub t.records 0 t.next in
    Array.to_list (Array.append older newer)

let clear t =
  t.next <- 0;
  t.filled <- false

let dump ppf t =
  List.iter (fun (time, msg) -> Format.fprintf ppf "[%12.6f] %s@." time msg) (to_list t)
