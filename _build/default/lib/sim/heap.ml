type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before a b] decides heap order: earlier priority first, insertion
   order breaking ties. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap h i j =
  let tmp = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.arr.(i) h.arr.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.size && before h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let cap = Array.length h.arr in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is immediately overwritten by [push]. *)
  let dummy = h.arr.(0) in
  let arr = Array.make new_cap dummy in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let push h ~prio value =
  let entry = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.arr then
    if h.size = 0 then h.arr <- Array.make 16 entry else grow h;
  h.arr.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.arr.(0).prio, h.arr.(0).value)

let clear h =
  h.arr <- [||];
  h.size <- 0

let to_list h =
  let copy = { arr = Array.sub h.arr 0 h.size; size = h.size; next_seq = 0 } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
