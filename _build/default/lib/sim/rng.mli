(** Deterministic pseudo-random numbers (splitmix64).

    Every source of randomness in the simulator — network jitter, loss,
    workload generation — draws from an explicit [Rng.t] so that a run
    is reproducible from its seed alone. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator; both [t] and the result
    advance deterministically. Used to give each subsystem its own
    stream so adding draws in one place does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for
    service-time and inter-arrival models. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
