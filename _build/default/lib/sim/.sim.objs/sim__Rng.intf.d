lib/sim/rng.mli:
