lib/sim/stats.ml: Array Format Hashtbl List String
