lib/sim/heap.mli:
