(* Run a Mini-Argus program: parse, type-check, instantiate guardians
   and processes on a simulated network, execute deterministically.

   dune exec bin/miniargus_run.exe -- FILE [--crash g=t] [--fast-breaks] *)

let parse_crash spec =
  match String.index_opt spec '=' with
  | Some i -> (
      let name = String.sub spec 0 i in
      match float_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some time -> Ok (name, time)
      | None -> Error (`Msg "expected GUARDIAN=SECONDS, e.g. db=0.002"))
  | None -> Error (`Msg "expected GUARDIAN=SECONDS, e.g. db=0.002")

let run file crashes recoveries fast_breaks quiet =
  let chan_config =
    if fast_breaks then
      Some
        {
          Cstream.Chanhub.default_config with
          Cstream.Chanhub.retransmit_timeout = 2e-3;
          max_retries = 3;
        }
    else None
  in
  match Miniargus.Run.run_file ?chan_config ~echo:(not quiet) ~crashes ~recoveries file with
  | Error e ->
      prerr_endline (Miniargus.Run.error_to_string e);
      1
  | Ok outcome ->
      Printf.printf "-- finished at %.3f ms (virtual time)\n"
        (outcome.Miniargus.Interp.finished_at *. 1e3);
      List.iter
        (fun (p, r) ->
          Printf.printf "-- process %s: %s\n" p
            (match r with
            | Miniargus.Interp.Pok -> "ok"
            | Miniargus.Interp.Pfailed m -> m))
        outcome.Miniargus.Interp.processes;
      (match outcome.Miniargus.Interp.deadlocked with
      | Some fibers ->
          Printf.printf "-- PROGRAM HANGS: these fibers are blocked forever: %s\n"
            (String.concat ", " fibers)
      | None -> ());
      0

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Mini-Argus source file")

let crash_conv = Arg.conv (parse_crash, fun ppf (n, t) -> Format.fprintf ppf "%s=%g" n t)

let crashes_arg =
  let doc = "Crash guardian $(docv)'s node at the given virtual time (repeatable)." in
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"GUARDIAN=SECONDS" ~doc)

let recoveries_arg =
  let doc = "Recover guardian $(docv)'s node at the given virtual time (repeatable)." in
  Arg.(value & opt_all crash_conv [] & info [ "recover" ] ~docv:"GUARDIAN=SECONDS" ~doc)

let fast_breaks_arg =
  let doc = "Detect broken streams quickly (short retransmission budget)." in
  Arg.(value & flag & info [ "fast-breaks" ] ~doc)

let quiet_arg =
  let doc = "Suppress program output (put_line)." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let cmd =
  let doc = "run a Mini-Argus program on the simulated Argus runtime" in
  Cmd.v (Cmd.info "miniargus_run" ~doc)
    Term.(const run $ file_arg $ crashes_arg $ recoveries_arg $ fast_breaks_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
