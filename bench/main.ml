(* Benchmark harness for the reproduction.

   Three kinds of measurements:

   - E1-E9, E12 and the ablations: deterministic simulated-time
     experiments (the tables DESIGN.md maps to the paper's claims).
     These live in the [workloads] library; this executable prints all
     of them.

   - E10: wall-clock microbenchmarks (Bechamel) comparing typed
     promises against MultiLisp-style dynamically checked futures —
     the §3.3 claim that futures "are inefficient to implement unless
     specialized hardware is available, since every object must be
     examined each time it is accessed".

   - Wire codec: wall-clock encode/decode throughput of the binary
     {!Xdr.Bin} format at three payload sizes, written together with
     E12's messages-per-call figures to BENCH_wire.json so the perf
     trajectory is machine-readable. *)

open Bechamel
open Toolkit
module P = Core.Promise
module F = Futures_baseline

let n_items = 1000

(* --- E10 subjects --------------------------------------------------- *)

let bench_int_sum () =
  let arr = Array.init n_items Fun.id in
  Staged.stage (fun () ->
      let total = ref 0 in
      for i = 0 to n_items - 1 do
        total := !total + arr.(i)
      done;
      !total)

let bench_promise_claim_sum () =
  let sched = Sched.Scheduler.create () in
  let arr : (int, Core.Sigs.nothing) P.t array =
    Array.init n_items (fun i -> P.resolved sched (P.Normal i))
  in
  Staged.stage (fun () ->
      (* Typed: one claim per promise, then plain typed arithmetic —
         no per-operation tag checks. *)
      let total = ref 0 in
      for i = 0 to n_items - 1 do
        match P.claim arr.(i) with
        | P.Normal v -> total := !total + v
        | P.Signal _ | P.Unavailable _ | P.Failure _ -> ()
      done;
      !total)

let bench_future_touch_sum () =
  let sched = Sched.Scheduler.create () in
  let lst =
    List.init n_items (fun i ->
        let fut, resolve = F.make_unresolved sched in
        resolve (F.Int i);
        fut)
  in
  let dyn_list = List.fold_right (fun f acc -> F.Cons (f, acc)) lst F.Nil in
  Staged.stage (fun () ->
      (* Dynamic: every + must touch both operands and check tags. *)
      F.sum_list dyn_list)

let bench_promise_lifecycle () =
  let sched = Sched.Scheduler.create () in
  Staged.stage (fun () ->
      let p : (int, Core.Sigs.nothing) P.t = P.create sched in
      P.resolve p (P.Normal 42);
      match P.claim p with
      | P.Normal v -> v
      | P.Signal _ | P.Unavailable _ | P.Failure _ -> 0)

let bench_future_lifecycle () =
  let sched = Sched.Scheduler.create () in
  Staged.stage (fun () ->
      let fut, resolve = F.make_unresolved sched in
      resolve (F.Int 42);
      match F.touch fut with F.Int v -> v | _ -> 0)

(* The full suspension path: a fiber parks in claim, another resolves,
   the scheduler resumes the first — one effect capture + continue. *)
let bench_suspended_claim () =
  Staged.stage (fun () ->
      let sched = Sched.Scheduler.create () in
      let p : (int, Core.Sigs.nothing) P.t = P.create sched in
      let got = ref 0 in
      ignore
        (Sched.Scheduler.spawn sched (fun () ->
             match P.claim p with
             | P.Normal v -> got := v
             | P.Signal _ | P.Unavailable _ | P.Failure _ -> ()));
      ignore (Sched.Scheduler.spawn sched (fun () -> P.resolve p (P.Normal 7)));
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome);
      !got)

let bench_spawn_run () =
  Staged.stage (fun () ->
      let sched = Sched.Scheduler.create () in
      for _ = 1 to 10 do
        ignore (Sched.Scheduler.spawn sched (fun () -> Sched.Scheduler.yield sched))
      done;
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome))

let e10_tests =
  Test.make_grouped ~name:"E10"
    [
      Test.make ~name:(Printf.sprintf "plain int sum (%d)" n_items) (bench_int_sum ());
      Test.make
        ~name:(Printf.sprintf "promises: claim+sum (%d)" n_items)
        (bench_promise_claim_sum ());
      Test.make
        ~name:(Printf.sprintf "futures: touch+sum (%d)" n_items)
        (bench_future_touch_sum ());
      Test.make ~name:"promise create/resolve/claim" (bench_promise_lifecycle ());
      Test.make ~name:"future create/resolve/touch" (bench_future_lifecycle ());
      Test.make ~name:"sched create + blocked claim roundtrip" (bench_suspended_claim ());
      Test.make ~name:"spawn+yield+run 10 fibers" (bench_spawn_run ());
    ]

(* ns/run per subject, via OLS on the monotonic clock. *)
let measure_ns tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort compare !rows

let run_e10 () =
  let rows = measure_ns e10_tests in
  let table_rows = List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) rows in
  Workloads.Table.make ~id:"E10"
    ~title:"wall-clock: typed promises vs dynamically checked futures"
    ~header:[ "subject"; "time/run" ]
    ~notes:
      [
        "paper claim (§3.3): futures pay a dynamic check on every access; promises are \
         statically typed so claiming and using values costs no tag checks";
        "wall-clock numbers vary by machine; the shape (futures sum >> promises sum) is the \
         reproduced result";
      ]
    table_rows

(* --- wire codec bench + BENCH_wire.json ----------------------------- *)

module W = Cstream.Wire

(* Payloads shaped like real traffic at three sizes: one call item, a
   16-call batch (the string table pays off: the port name and field
   names repeat), and a bulky argument tree. *)
let wire_payloads =
  let small =
    W.call_item ~seq:12 ~cid:12 ~trace:None ~port:"work" ~kind:W.Call ~args:(Xdr.Int 42) ()
  in
  let medium =
    Xdr.List
      (List.init 16 (fun i ->
           W.call_item ~seq:i ~cid:i ~trace:None ~port:"record_grade" ~kind:W.Call
             ~args:(Xdr.Pair (Xdr.Str (Printf.sprintf "stu%05d" i), Xdr.Int (50 + i))) ()))
  in
  let large =
    Xdr.List
      (List.init 64 (fun i ->
           Xdr.Record
             [
               ("name", Xdr.Str (Printf.sprintf "student-%04d" i));
               ("grades", Xdr.List (List.init 16 (fun g -> Xdr.Int (40 + ((i * g) mod 60)))));
               ("mean", Xdr.Real (50.0 +. (float_of_int i /. 7.0)));
               ("active", Xdr.Bool (i mod 2 = 0));
             ]))
  in
  [ ("small", small); ("medium", medium); ("large", large) ]

(* Lazy views (docs/WIRE.md): the wire path hands each arriving call a
   validated view over the frame bytes, so "consume one field of a
   large frame" splits into an arrival cost and a projection cost.
   "view scan" is the arrival cost under the new path (structural
   validation, no tree); plain "decode large" above is the arrival cost
   under the old one (full tree). "view project" is what a consumer
   then pays to pull one field out of one element by slicing; its
   honest baseline is "decode project", which is what projection cost
   before views existed — build the whole tree, walk to the field. The
   acceptance gate (ISSUE 9) is view project >= 2x faster than decode
   project. *)
let wire_view_tests =
  let large = List.assoc "large" wire_payloads in
  let encoded = Xdr.Bin.to_string large in
  let sz = String.length encoded in
  let exn = function Ok x -> x | Error e -> failwith e in
  let view = exn (Xdr.View.of_string encoded) in
  [
    Test.make
      ~name:(Printf.sprintf "view scan large (%dB)" sz)
      (Staged.stage (fun () -> exn (Xdr.View.of_string encoded)));
    Test.make
      ~name:(Printf.sprintf "view project large.(32).mean (%dB)" sz)
      (Staged.stage (fun () ->
           match exn (Xdr.View.list_item view 32) with
           | None -> failwith "item missing"
           | Some item -> (
               match exn (Xdr.View.record_field item "mean") with
               | Some f -> exn (Xdr.View.materialize f)
               | None -> failwith "field missing")));
    Test.make
      ~name:(Printf.sprintf "decode project large.(32).mean (%dB)" sz)
      (Staged.stage (fun () ->
           match Xdr.Bin.of_string encoded with
           | Ok (Xdr.List items) -> (
               match List.nth items 32 with
               | Xdr.Record fields -> List.assoc "mean" fields
               | _ -> failwith "not a record")
           | _ -> failwith "decode failed"));
  ]

let wire_tests =
  Test.make_grouped ~name:"wire"
    (List.concat_map
       (fun (label, v) ->
         let encoded = Xdr.Bin.to_string v in
         [
           Test.make
             ~name:(Printf.sprintf "encode %s (%dB)" label (String.length encoded))
             (Staged.stage (fun () -> Xdr.Bin.to_string v));
           Test.make
             ~name:(Printf.sprintf "decode %s (%dB)" label (String.length encoded))
             (Staged.stage (fun () -> Xdr.Bin.of_string encoded));
         ])
       wire_payloads
    @ wire_view_tests)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Wall-clock numbers are only interpretable against the hardware they
   were taken on (the E16 fibers-vs-domains series most of all): every
   BENCH_*.json carries the machine it ran on. *)
let write_machine_stanza oc =
  Printf.fprintf oc
    "  \"machine\": { \"cores\": %d, \"ocaml\": \"%s\", \"word_size\": %d, \"os\": \"%s\" },\n"
    (Domain.recommended_domain_count ())
    (json_escape Sys.ocaml_version)
    Sys.word_size (json_escape Sys.os_type)

let write_bench_wire_json ~codec_rows ~e12_rows ~e18_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"wire\",\n";
  write_machine_stanza oc;
  out "  \"units\": { \"codec\": \"ns/op\", \"e12\": \"per call\", \"e18\": \"per call\" },\n";
  out "  \"codec\": [\n";
  let n_codec = List.length codec_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_codec - 1 then "" else ","))
    codec_rows;
  out "  ],\n";
  out "  \"e12\": [\n";
  let n_rows = List.length e12_rows in
  List.iteri
    (fun i (r : Workloads.Exp_wire.row) ->
      out
        "    { \"mode\": \"%s\", \"piggyback\": %b, \"calls\": %d, \"msgs\": %d, \"bytes\": \
         %d, \"msgs_per_call\": %.4f, \"bytes_per_call\": %.2f, \"calls_per_data_packet\": \
         %.2f, \"standalone_ack_packets\": %d, \"piggybacked_acks\": %d, \
         \"completion_ms\": %.3f }%s\n"
        (json_escape r.r_mode) r.r_piggyback r.r_calls r.r_msgs r.r_bytes
        (float_of_int r.r_msgs /. float_of_int r.r_calls)
        (float_of_int r.r_bytes /. float_of_int r.r_calls)
        (Workloads.Exp_wire.calls_per_data_pkt r)
        r.r_ack_pkts r.r_piggybacked
        (r.r_time *. 1e3)
        (if i = n_rows - 1 then "" else ","))
    e12_rows;
  out "  ],\n";
  out "  \"e18\": [\n";
  let n_e18 = List.length e18_rows in
  List.iteri
    (fun i (r : Workloads.Exp_dict.row) ->
      out
        "    { \"mode\": \"%s\", \"dict\": %b, \"calls\": %d, \"msgs\": %d, \"bytes\": %d, \
         \"bytes_per_call\": %.2f, \"dict_defines\": %d, \"dict_refs\": %d, \
         \"lazy_args\": %d, \"args_decoded\": %d, \"sheds\": %d, \"completion_ms\": %.3f \
         }%s\n"
        (json_escape r.r_mode) r.r_dict r.r_calls r.r_msgs r.r_bytes
        (float_of_int r.r_bytes /. float_of_int r.r_calls)
        r.r_defines r.r_refs r.r_lazy r.r_forced r.r_sheds
        (r.r_time *. 1e3)
        (if i = n_e18 - 1 then "" else ","))
    e18_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

(* With tracing disabled, wire items must be byte-for-byte the
   pre-tracing encodings (docs/TRACING.md) — otherwise the E12
   bytes-per-call figures in BENCH_wire.json would silently shift.
   Checked against literal copies of the original compact shapes. *)
let assert_untraced_bytes_unchanged () =
  let bin = Xdr.Bin.to_string in
  let expect what reference item =
    if bin reference <> bin item then
      failwith (Printf.sprintf "tracing-off wire regression: %s encoding changed" what)
  in
  expect "call item"
    (Xdr.Record
       [
         ("q", Xdr.Int 12);
         ("i", Xdr.Int 12);
         ("p", Xdr.Str "work");
         ("k", Xdr.Str "c");
         ("a", Xdr.Int 42);
       ])
    (W.call_item ~seq:12 ~cid:12 ~trace:None ~port:"work" ~kind:W.Call ~args:(Xdr.Int 42) ());
  expect "reply item"
    (Xdr.Pair (Xdr.Int 3, Xdr.Tagged ("n", Xdr.Int 7)))
    (W.reply_item ~seq:3 ~trace:None (W.W_normal (Xdr.Int 7)));
  expect "send-ok item"
    (Xdr.Pair (Xdr.Int 3, Xdr.Tagged ("o", Xdr.Unit)))
    (W.send_ok_item ~seq:3 ~trace:None)

(* E12 golden gate: the experiments never enable the connection
   dictionary, so their wire must be digit-for-digit the pre-dictionary
   tables — any drift means the dictionary-off path changed bytes. *)
let e12_goldens =
  [
    ("RPC", false, 1600, 68098);
    ("RPC", true, 801, 51319);
    ("stream B=16", false, 100, 14833);
    ("stream B=16", true, 52, 13361);
    ("send B=16", false, 100, 14096);
    ("send B=16", true, 52, 12624);
    ("stream adaptive", false, 48, 13077);
    ("stream adaptive", true, 29, 12520);
  ]

let assert_e12_goldens rows =
  List.iter
    (fun (mode, piggyback, msgs, bytes) ->
      match
        List.find_opt
          (fun (r : Workloads.Exp_wire.row) ->
            r.r_mode = mode && r.r_piggyback = piggyback)
          rows
      with
      | Some r when r.r_msgs = msgs && r.r_bytes = bytes -> ()
      | Some r ->
          failwith
            (Printf.sprintf
               "dictionary-off wire regression: E12 %s piggyback=%b moved to %d msgs / %d B \
                (golden: %d / %d)"
               mode piggyback r.r_msgs r.r_bytes msgs bytes)
      | None -> failwith (Printf.sprintf "E12 golden row missing: %s" mode))
    e12_goldens

let run_wire () =
  assert_untraced_bytes_unchanged ();
  let codec_rows = measure_ns wire_tests in
  let e12_rows = Workloads.Exp_wire.e12_rows () in
  assert_e12_goldens e12_rows;
  let e18_rows = Workloads.Exp_dict.e18_rows () in
  write_bench_wire_json ~codec_rows ~e12_rows ~e18_rows "BENCH_wire.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) codec_rows
  in
  Workloads.Table.make ~id:"wire" ~title:"wall-clock: binary codec encode/decode (Xdr.Bin)"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "payload sizes are actual encoded bytes; results + E12 per-call figures written to \
         BENCH_wire.json";
      ]
    table_rows

(* --- pipeline bench + BENCH_pipeline.json --------------------------- *)

(* The receiver-side costs of promise pipelining, per pipelined call:
   scanning arguments for references, substituting produced values, and
   the registry's record/await cycle. These bound the overhead a
   non-pipelined call pays for the feature existing at all (a single
   [has_refs] scan that finds nothing). *)

let pref i =
  Xdr.Pref { Xdr.ps_stream = "3|server/work"; ps_call = i; ps_field = None }

(* An argument tree shaped like a real pipelined batch: mostly plain
   values, a few references scattered at different depths. *)
let pipeline_args =
  Xdr.List
    (List.init 16 (fun i ->
         if i mod 5 = 0 then Xdr.Pair (pref i, Xdr.Int i)
         else
           Xdr.Record
             [ ("name", Xdr.Str (Printf.sprintf "item-%03d" i)); ("rank", Xdr.Int i) ]))

let plain_args =
  Xdr.List (List.init 16 (fun i -> Xdr.Pair (Xdr.Str (Printf.sprintf "s%d" i), Xdr.Int i)))

let bench_refs_scan v = Staged.stage (fun () -> Pipeline.refs v)
let bench_has_refs v = Staged.stage (fun () -> Pipeline.has_refs v)

let bench_substitute () =
  let lookup (r : Xdr.promise_ref) =
    Pipeline.project ~field:r.Xdr.ps_field (Xdr.Int (r.Xdr.ps_call * 2))
  in
  Staged.stage (fun () -> Pipeline.substitute ~lookup pipeline_args)

let bench_registry_record_find () =
  let reg : int Pipeline.Registry.t = Pipeline.Registry.create ~cap:1024 () in
  let next = ref 0 in
  Staged.stage (fun () ->
      (* Fresh key each run so [record] actually stores (repeats are
         ignored by design); FIFO eviction keeps the table at cap. *)
      incr next;
      Pipeline.Registry.record reg ~stream:"bench" ~call:!next !next;
      Pipeline.Registry.find reg ~stream:"bench" ~call:!next)

let bench_registry_await_cycle () =
  let reg : int Pipeline.Registry.t = Pipeline.Registry.create ~cap:1024 () in
  let next = ref 0 in
  let got = ref 0 in
  Staged.stage (fun () ->
      (* The parked path: await before the outcome lands, then record
         fires the callback. *)
      incr next;
      ignore
        (Pipeline.Registry.await reg ~stream:"bench" ~call:!next (fun v -> got := v)
          : [ `Fired | `Parked of Pipeline.Registry.waiter | `Refused ]);
      Pipeline.Registry.record reg ~stream:"bench" ~call:!next !next;
      !got)

let pipeline_tests =
  Test.make_grouped ~name:"pipeline"
    [
      Test.make ~name:"refs scan (16 args, 4 refs)" (bench_refs_scan pipeline_args);
      Test.make ~name:"has_refs scan (no refs)" (bench_has_refs plain_args);
      Test.make ~name:"substitute (16 args, 4 refs)" (bench_substitute ());
      Test.make ~name:"registry record+find" (bench_registry_record_find ());
      Test.make ~name:"registry await+record (parked)" (bench_registry_await_cycle ());
    ]

let write_bench_pipeline_json ~subject_rows ~e13_rows ~e19_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"pipeline\",\n";
  write_machine_stanza oc;
  out
    "  \"units\": { \"subjects\": \"ns/op\", \"e13\": \"per chain\", \"e19\": \"per \
     delegation loop\" },\n";
  out "  \"subjects\": [\n";
  let n_subj = List.length subject_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_subj - 1 then "" else ","))
    subject_rows;
  out "  ],\n";
  out "  \"e13\": [\n";
  let n_rows = List.length e13_rows in
  List.iteri
    (fun i (r : Workloads.Exp_pipeline.row) ->
      out
        "    { \"mode\": \"%s\", \"depth\": %d, \"completion_ms\": %.3f, \"msgs\": %d, \
         \"bytes\": %d, \"data_packets\": %d, \"pipelined_calls\": %d, \
         \"ref_substitutions\": %d }%s\n"
        (json_escape r.r_mode) r.r_depth (r.r_time *. 1e3) r.r_msgs r.r_bytes r.r_data_pkts
        r.r_pipelined r.r_substitutions
        (if i = n_rows - 1 then "" else ","))
    e13_rows;
  out "  ],\n";
  (* handoff vs proxy (E19): the third-party delegation A->B->C both
     ways, on both backends; skipped TCP rows record ok=false *)
  out "  \"e19\": [\n";
  let n_e19 = List.length e19_rows in
  List.iteri
    (fun i (r : Workloads.Exp_handoff.row) ->
      out
        "    { \"mode\": \"%s\", \"backend\": \"%s\", \"calls\": %d, \"ok\": %b, \
         \"completion_ms\": %.3f, \"msgs\": %d, \"bytes\": %d, \"forwards\": %d, \
         \"fallbacks\": %d, \"dup_execs\": %d }%s\n"
        (json_escape r.r_mode) (json_escape r.r_backend) r.r_calls r.r_ok
        (if r.r_ok then r.r_time *. 1e3 else 0.0)
        r.r_msgs r.r_bytes r.r_forwards r.r_fallbacks r.r_dup_execs
        (if i = n_e19 - 1 then "" else ","))
    e19_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_pipeline () =
  let subject_rows = measure_ns pipeline_tests in
  let e13_rows = Workloads.Exp_pipeline.e13_rows () in
  let e19_rows = Workloads.Exp_handoff.e19_rows () in
  (* the acceptance inequality behind E19, asserted on every bench run:
     handing off must strictly beat proxying on wire bytes *)
  (let find mode =
     List.find_opt
       (fun (r : Workloads.Exp_handoff.row) -> r.r_mode = mode && r.r_backend = "sim")
       e19_rows
   in
   match (find "proxy", find "handoff") with
   | Some proxy, Some handoff ->
       if handoff.r_bytes >= proxy.r_bytes then
         failwith
           (Printf.sprintf "E19 regression: handoff bytes %d >= proxy bytes %d"
              handoff.r_bytes proxy.r_bytes)
   | _ -> failwith "E19 regression: sim rows missing");
  write_bench_pipeline_json ~subject_rows ~e13_rows ~e19_rows "BENCH_pipeline.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) subject_rows
  in
  Workloads.Table.make ~id:"pipeline"
    ~title:"wall-clock: promise-pipelining receiver machinery"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "receiver-side per-call costs of pipelining (docs/PIPELINE.md): reference scan, \
         value substitution, bounded-registry record/await; results + E13 chain figures \
         written to BENCH_pipeline.json";
      ]
    table_rows

(* --- shard bench + BENCH_shard.json --------------------------------- *)

(* The receiver-side costs of sharded dispatch (docs/SHARDING.md): the
   partition hash every arriving call pays, and the byte-sized registry
   record path that sharded groups share. The scaling story itself is
   E14 (simulated time, deterministic); its rows ride along in the JSON
   so the perf trajectory of the tentpole is machine-readable. *)

module T = Cstream.Target

let small_call_args = Xdr.Pair (Xdr.Int 7, Xdr.Int 42)

let large_call_args =
  Xdr.Pair
    ( Xdr.Str "partition-key-with-some-length",
      Xdr.Record
        [
          ("name", Xdr.Str "student-0042");
          ("grades", Xdr.List (List.init 16 (fun g -> Xdr.Int (40 + g))));
          ("mean", Xdr.Real 57.5);
        ] )

let bench_shard_key v =
  Staged.stage (fun () -> T.default_shard_key ~port:"shard_work" v)

let bench_registry_record_sized () =
  let reg : W.routcome Pipeline.Registry.t =
    Pipeline.Registry.create ~cap:1024 ~max_bytes:(1 lsl 20)
      ~bytes_of:(fun o -> Xdr.Bin.size (W.outcome_value o))
      ()
  in
  let outcome = W.W_normal large_call_args in
  let next = ref 0 in
  Staged.stage (fun () ->
      incr next;
      Pipeline.Registry.record reg ~stream:"bench" ~call:!next outcome;
      Pipeline.Registry.find reg ~stream:"bench" ~call:!next)

let shard_tests =
  Test.make_grouped ~name:"shard"
    [
      Test.make ~name:"shard key (int pair)" (bench_shard_key small_call_args);
      Test.make ~name:"shard key (string key, record payload)"
        (bench_shard_key large_call_args);
      Test.make ~name:"registry record+find (byte-sized)" (bench_registry_record_sized ());
    ]

let write_bench_shard_json ~subject_rows ~e14_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"shard\",\n";
  write_machine_stanza oc;
  out "  \"units\": { \"subjects\": \"ns/op\", \"e14\": \"per run\" },\n";
  out "  \"subjects\": [\n";
  let n_subj = List.length subject_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_subj - 1 then "" else ","))
    subject_rows;
  out "  ],\n";
  out "  \"e14\": [\n";
  let n_rows = List.length e14_rows in
  List.iteri
    (fun i (r : Workloads.Exp_shard.row) ->
      out
        "    { \"series\": \"%s\", \"shards\": %d, \"calls\": %d, \"completion_ms\": %.3f, \
         \"calls_per_s\": %.1f, \"speedup\": %.3f, \"shard_dispatches\": %d, \
         \"queue_depth_hwm\": %d, \"imbalance_hwm\": %d, \"per_key_order\": %b }%s\n"
        (json_escape r.r_series) r.r_shards r.r_calls (r.r_time *. 1e3) r.r_throughput
        r.r_speedup r.r_dispatches r.r_queue_hwm r.r_imbalance r.r_ordered
        (if i = n_rows - 1 then "" else ","))
    e14_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_shard () =
  let subject_rows = measure_ns shard_tests in
  let e14_rows = Workloads.Exp_shard.e14_rows () in
  write_bench_shard_json ~subject_rows ~e14_rows "BENCH_shard.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) subject_rows
  in
  Workloads.Table.make ~id:"shard" ~title:"wall-clock: sharded-dispatch receiver machinery"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "per-call cost of the partition hash plus the byte-sized registry record path \
         (docs/SHARDING.md); results + E14 scaling figures written to BENCH_shard.json";
      ]
    table_rows

(* --- overload bench + BENCH_overload.json --------------------------- *)

(* Receiver/sender hot-path costs of overload survival
   (docs/OVERLOAD.md): the per-event sampling filter every span record
   pays, and the ack-tied [mark_releasable] bookkeeping the reply-ack
   hook pays per acked call. The survival story itself is E15
   (simulated time, deterministic); its static-vs-adaptive rows ride
   along in the JSON so the comparison is machine-readable. *)

let bench_span_sampled () =
  let sp = Sim.Span.create () in
  Sim.Span.enable sp true;
  Sim.Span.set_sampling sp 8;
  let next = ref 0 in
  Staged.stage (fun () ->
      incr next;
      Sim.Span.sampled sp !next)

let bench_mark_releasable () =
  let reg : W.routcome Pipeline.Registry.t = Pipeline.Registry.create ~cap:4096 () in
  for c = 0 to 2047 do
    Pipeline.Registry.record reg ~stream:"bench" ~call:c (W.W_normal (Xdr.Int c))
  done;
  let next = ref 0 in
  Staged.stage (fun () ->
      next := (!next + 1) land 2047;
      Pipeline.Registry.mark_releasable reg ~stream:"bench" ~call:!next)

let overload_tests =
  Test.make_grouped ~name:"overload"
    [
      Test.make ~name:"span sampling filter (1-in-8)" (bench_span_sampled ());
      Test.make ~name:"registry mark_releasable" (bench_mark_releasable ());
    ]

let write_bench_overload_json ~subject_rows ~e15_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"overload\",\n";
  write_machine_stanza oc;
  out "  \"units\": { \"subjects\": \"ns/op\", \"e15\": \"per run\" },\n";
  out "  \"subjects\": [\n";
  let n_subj = List.length subject_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_subj - 1 then "" else ","))
    subject_rows;
  out "  ],\n";
  out "  \"e15\": [\n";
  let n_rows = List.length e15_rows in
  List.iteri
    (fun i (r : Workloads.Exp_overload.row) ->
      out
        "    { \"window\": \"%s\", \"calls\": %d, \"completion_ms\": %.3f, \
         \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, \"sheds\": %d, \
         \"retries\": %d, \"retry_successes\": %d, \"unavailable\": %d, \
         \"window_cuts\": %d, \"window_min_bytes\": %d, \"window_max_bytes\": %d, \
         \"lost\": %d, \"duplicates\": %d }%s\n"
        (json_escape r.r_mode) r.r_calls (r.r_time *. 1e3) (r.r_p50 *. 1e3)
        (r.r_p99 *. 1e3) (r.r_p999 *. 1e3) r.r_sheds r.r_retries r.r_retry_ok r.r_unavail
        r.r_cuts r.r_win_min r.r_win_max r.r_lost r.r_dups
        (if i = n_rows - 1 then "" else ","))
    e15_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_overload () =
  let subject_rows = measure_ns overload_tests in
  let e15_rows = Workloads.Exp_overload.e15_rows () in
  write_bench_overload_json ~subject_rows ~e15_rows "BENCH_overload.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) subject_rows
  in
  Workloads.Table.make ~id:"overload"
    ~title:"wall-clock: overload-survival hot-path machinery"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "per-event cost of the span sampling filter and per-acked-call cost of the \
         registry's ack-tied eviction marking (docs/OVERLOAD.md); results + E15 \
         static-vs-adaptive figures written to BENCH_overload.json";
      ]
    table_rows

(* --- domains bench + BENCH_domains.json ----------------------------- *)

(* The machinery cost of the domain pool (docs/DOMAINS.md): a full
   Pool.run round trip — suspend the calling fiber, ship the closure to
   a worker domain, inject the wakeup back into the scheduler — next to
   the calibrated spin kernel E16's handlers burn. The scaling story
   itself is E16 (wall-clock, fibers vs pools of 1/2/4/8 domains); its
   rows ride along in the JSON, where the machine stanza says how many
   cores the numbers were taken on. *)

let write_bench_domains_json ~subject_rows ~e16_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"domains\",\n";
  write_machine_stanza oc;
  out "  \"units\": { \"subjects\": \"ns/op\", \"e16\": \"per run (wall-clock)\" },\n";
  out "  \"subjects\": [\n";
  let n_subj = List.length subject_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_subj - 1 then "" else ","))
    subject_rows;
  out "  ],\n";
  out "  \"e16\": [\n";
  let n_rows = List.length e16_rows in
  List.iteri
    (fun i (r : Workloads.Exp_domains.row) ->
      out
        "    { \"mode\": \"%s\", \"pool\": %d, \"lanes\": %d, \"calls\": %d, \
         \"completion_ms\": %.3f, \"calls_per_s\": %.1f, \"speedup\": %.3f, \
         \"per_key_order\": %b, \"lost\": %d, \"dups\": %d }%s\n"
        (json_escape r.r_mode) r.r_pool r.r_lanes r.r_calls (r.r_wall *. 1e3)
        r.r_throughput r.r_speedup r.r_ordered r.r_lost r.r_dups
        (if i = n_rows - 1 then "" else ","))
    e16_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_domains () =
  let sched = Sched.Scheduler.create () in
  let pool = Sched.Pool.create sched ~domains:1 in
  let rate = Workloads.Cpu.calibrate () in
  let tests =
    Test.make_grouped ~name:"domains"
      [
        Test.make ~name:"spin kernel (10us burn)"
          (Staged.stage (fun () -> Workloads.Cpu.burn ~rate 10e-6));
        Test.make ~name:"pool offload round-trip (1 domain)"
          (Staged.stage (fun () ->
               ignore
                 (Sched.Scheduler.spawn sched (fun () ->
                      ignore (Sched.Pool.run pool (fun () -> 42) : int)));
               ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome)));
      ]
  in
  let subject_rows = measure_ns tests in
  Sched.Pool.shutdown pool;
  let e16_rows = Workloads.Exp_domains.e16_rows () in
  write_bench_domains_json ~subject_rows ~e16_rows "BENCH_domains.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) subject_rows
  in
  Workloads.Table.make ~id:"domains"
    ~title:"wall-clock: domain-pool offload machinery"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "the full Pool.run round trip (suspend fiber, ship closure to a worker domain, \
         inject the wakeup back) next to the spin kernel it ships (docs/DOMAINS.md); \
         results + E16 fibers-vs-domains figures written to BENCH_domains.json";
      ]
    table_rows

(* --- transport bench + BENCH_transport.json ------------------------- *)

(* Round-trip cost over each transport backend (docs/TRANSPORT.md): a
   raw frame echo (transport machinery only) and a full typed RPC
   (codec + stream layer + guardian dispatch on top), over the
   simulated net and over a real loopback TCP socket. The sim subjects
   cost no wall-clock wire time — they price the scheduler + stream
   machinery itself; the tcp subjects add two real kernel crossings per
   hop. E17's prediction-vs-measurement rows ride along in the JSON. *)

module Tr = Transport_tcp

let tcp_available =
  lazy
    (match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
        match
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          Unix.listen fd 1
        with
        | () ->
            Unix.close fd;
            true
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            false))

(* One raw frame to the echoing peer and back, per run. *)
let bench_echo ~sched ~(a : Transport.t) ~(b : Transport.t) =
  let waiter = ref None in
  b.Transport.set_receiver (fun ~src frame -> b.Transport.send ~dst:src frame);
  a.Transport.set_receiver (fun ~src:_ _ ->
      match !waiter with Some w -> ignore (Sched.Scheduler.wake w () : bool) | None -> ());
  Staged.stage (fun () ->
      ignore
        (Sched.Scheduler.spawn sched (fun () ->
             a.Transport.send ~dst:b.Transport.addr "ping-frame";
             Sched.Scheduler.suspend sched (fun w -> waiter := Some w)));
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome))

(* One typed RPC through the full stack, per run. *)
let bench_rpc ~sched ~client_hub ~server_addr =
  let ag =
    Core.Agent.create client_hub ~name:"bench-rpc" ~config:Cstream.Chanhub.rpc_config ()
  in
  let h = Core.Remote.bind ag ~dst:server_addr ~gid:"main" Workloads.Fixtures.work_sig in
  Staged.stage (fun () ->
      ignore
        (Sched.Scheduler.spawn sched (fun () ->
             ignore (Core.Remote.rpc h 41 : (int, Core.Sigs.nothing) P.outcome)));
      ignore (Sched.Scheduler.run sched : Sched.Scheduler.outcome))

let transport_group_cfg =
  Cstream.Group_config.(default |> with_reply_config Cstream.Chanhub.rpc_config)

let make_transport_tests () =
  (* sim worlds: zero wire latency so the subjects price machinery, not
     modelled (virtual) waiting *)
  let echo_sim =
    let sched = Sched.Scheduler.create () in
    let net = Net.create sched { Net.default_config with Net.wire_latency = 0.0 } in
    let a = Transport_sim.endpoint net (Net.add_node net ~name:"a") in
    let b = Transport_sim.endpoint net (Net.add_node net ~name:"b") in
    bench_echo ~sched ~a ~b
  in
  let rpc_sim =
    let sched = Sched.Scheduler.create () in
    let net = Net.create sched { Net.default_config with Net.wire_latency = 0.0 } in
    let cn = Net.add_node net ~name:"client" in
    let sn = Net.add_node net ~name:"server" in
    let client_hub = Cstream.Chanhub.create_hub ~net:(net, cn) () in
    let server = Argus.Guardian.create (Cstream.Chanhub.create_hub ~net:(net, sn) ()) ~name:"server" in
    Argus.Guardian.register_group server ~group:"main" ~config:transport_group_cfg ();
    Argus.Guardian.register server ~group:"main" Workloads.Fixtures.work_sig (fun _ctx n ->
        Ok (n + 1));
    bench_rpc ~sched ~client_hub ~server_addr:(Net.address sn)
  in
  let sim_tests =
    [
      Test.make ~name:"frame echo round-trip (sim)" echo_sim;
      Test.make ~name:"typed RPC round-trip (sim)" rpc_sim;
    ]
  in
  if not (Lazy.force tcp_available) then (sim_tests, [], fun () -> ())
  else
    let echo_fab =
      let sched = Sched.Scheduler.create () in
      let fab = Tr.create sched in
      let a = Tr.endpoint fab ~addr:0 ~name:"a" () in
      let b = Tr.endpoint fab ~addr:1 ~name:"b" () in
      Tr.set_peer fab ~addr:0 (Tr.listen_loopback fab ~addr:0);
      Tr.set_peer fab ~addr:1 (Tr.listen_loopback fab ~addr:1);
      (fab, bench_echo ~sched ~a ~b)
    in
    let rpc_fab =
      let sched = Sched.Scheduler.create () in
      let fab = Tr.create sched in
      let client_tr = Tr.endpoint fab ~addr:0 ~name:"client" () in
      let server_tr = Tr.endpoint fab ~addr:1 ~name:"server" () in
      let client_hub = Cstream.Chanhub.create_hub ~transport:client_tr () in
      let server =
        Argus.Guardian.create (Cstream.Chanhub.create_hub ~transport:server_tr ()) ~name:"server"
      in
      Argus.Guardian.register_group server ~group:"main" ~config:transport_group_cfg ();
      Argus.Guardian.register server ~group:"main" Workloads.Fixtures.work_sig (fun _ctx n ->
          Ok (n + 1));
      Tr.set_peer fab ~addr:1 (Tr.listen_loopback fab ~addr:1);
      (fab, bench_rpc ~sched ~client_hub ~server_addr:1)
    in
    let tcp_tests =
      [
        Test.make ~name:"frame echo round-trip (loopback tcp)" (snd echo_fab);
        Test.make ~name:"typed RPC round-trip (loopback tcp)" (snd rpc_fab);
      ]
    in
    ( sim_tests,
      tcp_tests,
      fun () ->
        Tr.close (fst echo_fab);
        Tr.close (fst rpc_fab) )

let write_bench_transport_json ~tcp_ok ~subject_rows ~e17_rows path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"transport\",\n";
  write_machine_stanza oc;
  out "  \"tcp_available\": %b,\n" tcp_ok;
  out "  \"units\": { \"subjects\": \"ns/op\", \"e17\": \"per run\" },\n";
  out "  \"subjects\": [\n";
  let n_subj = List.length subject_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    { \"subject\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = n_subj - 1 then "" else ","))
    subject_rows;
  out "  ],\n";
  out "  \"e17\": [\n";
  let n_rows = List.length e17_rows in
  List.iteri
    (fun i (r : Workloads.Exp_transport.row) ->
      out
        "    { \"workload\": \"%s\", \"backend\": \"%s\", \"calls\": %d, \"ok\": %b, \
         \"completion_ms\": %s, \"msgs\": %d, \"bytes\": %d }%s\n"
        (json_escape r.r_workload) (json_escape r.r_backend) r.r_calls r.r_ok
        (if r.r_ok then Printf.sprintf "%.3f" (r.r_time *. 1e3) else "null")
        r.r_msgs r.r_bytes
        (if i = n_rows - 1 then "" else ","))
    e17_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_transport () =
  let sim_tests, tcp_tests, cleanup = make_transport_tests () in
  let tcp_ok = tcp_tests <> [] in
  if not tcp_ok then
    print_endline "note: loopback sockets unavailable here; tcp subjects skipped";
  let subject_rows = measure_ns (Test.make_grouped ~name:"transport" (sim_tests @ tcp_tests)) in
  cleanup ();
  let e17_rows = Workloads.Exp_transport.e17_rows () in
  write_bench_transport_json ~tcp_ok ~subject_rows ~e17_rows "BENCH_transport.json";
  let table_rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns" ns ]) subject_rows
  in
  Workloads.Table.make ~id:"transport"
    ~title:"wall-clock: round trips over the simulated and real transports"
    ~header:[ "subject"; "time/op" ]
    ~notes:
      [
        "one round trip per op: a raw frame echo (transport machinery only) and a typed RPC \
         (codec + stream layer + guardian dispatch), over the simulated net and over a real \
         loopback TCP socket (docs/TRANSPORT.md); results + E17's \
         prediction-vs-measurement figures written to BENCH_transport.json";
      ]
    table_rows

(* --- main ---------------------------------------------------------- *)

(* Named groups so CI and quick local runs can pick one with --only
   instead of paying for the whole suite. *)
let groups : (string * string * string option * (unit -> unit)) list =
  [
    ( "experiments",
      "simulated-time experiments (deterministic)",
      None,
      fun () -> List.iter Workloads.Table.print (Workloads.Experiments.run_all ()) );
    ( "e10",
      "wall-clock microbenchmarks (E10, Bechamel)",
      None,
      fun () -> Workloads.Table.print (run_e10 ()) );
    ( "wire",
      "wall-clock wire codec (Bechamel)",
      Some "BENCH_wire.json",
      fun () -> Workloads.Table.print (run_wire ()) );
    ( "pipeline",
      "wall-clock pipelining machinery (Bechamel)",
      Some "BENCH_pipeline.json",
      fun () -> Workloads.Table.print (run_pipeline ()) );
    ( "shard",
      "wall-clock sharded-dispatch machinery (Bechamel)",
      Some "BENCH_shard.json",
      fun () -> Workloads.Table.print (run_shard ()) );
    ( "overload",
      "wall-clock overload-survival machinery (Bechamel)",
      Some "BENCH_overload.json",
      fun () -> Workloads.Table.print (run_overload ()) );
    ( "domains",
      "wall-clock domain-pool offload + E16 fibers vs domains (Bechamel)",
      Some "BENCH_domains.json",
      fun () -> Workloads.Table.print (run_domains ()) );
    ( "transport",
      "wall-clock sim-vs-loopback-TCP round trips + E17 (Bechamel)",
      Some "BENCH_transport.json",
      fun () -> Workloads.Table.print (run_transport ()) );
  ]

let () =
  let selected = ref [] in
  let group_names = List.map (fun (n, _, _, _) -> n) groups in
  let spec =
    [
      ( "--only",
        Arg.String (fun s -> selected := s :: !selected),
        "GROUP run only the named group (repeatable); groups: "
        ^ String.concat ", " group_names );
    ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "main.exe [--only GROUP]...";
  List.iter
    (fun n ->
      if not (List.mem n group_names) then (
        Printf.eprintf "unknown bench group %S (have: %s)\n" n
          (String.concat ", " group_names);
        exit 2))
    !selected;
  let want n = match !selected with [] -> true | l -> List.mem n l in
  print_endline "Promises (Liskov & Shrira, PLDI 1988) -- reproduction benchmarks";
  List.iter
    (fun (name, title, _, f) ->
      if want name then (
        print_endline (title ^ ":");
        print_newline ();
        f ()))
    groups;
  match
    List.filter_map (fun (name, _, json, _) -> if want name then json else None) groups
  with
  | [] -> ()
  | written -> print_endline ("wrote " ^ String.concat ", " written)
